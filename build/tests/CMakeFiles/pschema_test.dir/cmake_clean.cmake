file(REMOVE_RECURSE
  "CMakeFiles/pschema_test.dir/pschema_test.cc.o"
  "CMakeFiles/pschema_test.dir/pschema_test.cc.o.d"
  "pschema_test"
  "pschema_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pschema_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
