# Empty dependencies file for pschema_test.
# This may be replaced when dependencies are built.
