# Empty dependencies file for compare_ops_test.
# This may be replaced when dependencies are built.
