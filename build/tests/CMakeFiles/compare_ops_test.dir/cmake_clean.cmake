file(REMOVE_RECURSE
  "CMakeFiles/compare_ops_test.dir/compare_ops_test.cc.o"
  "CMakeFiles/compare_ops_test.dir/compare_ops_test.cc.o.d"
  "compare_ops_test"
  "compare_ops_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compare_ops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
