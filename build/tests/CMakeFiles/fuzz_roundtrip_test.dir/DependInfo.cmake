
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/fuzz_roundtrip_test.cc" "tests/CMakeFiles/fuzz_roundtrip_test.dir/fuzz_roundtrip_test.cc.o" "gcc" "tests/CMakeFiles/fuzz_roundtrip_test.dir/fuzz_roundtrip_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/legodb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/imdb/CMakeFiles/legodb_imdb.dir/DependInfo.cmake"
  "/root/repo/build/src/auction/CMakeFiles/legodb_auction.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/legodb_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/legodb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/translate/CMakeFiles/legodb_translate.dir/DependInfo.cmake"
  "/root/repo/build/src/optimizer/CMakeFiles/legodb_optimizer.dir/DependInfo.cmake"
  "/root/repo/build/src/mapping/CMakeFiles/legodb_mapping.dir/DependInfo.cmake"
  "/root/repo/build/src/pschema/CMakeFiles/legodb_pschema.dir/DependInfo.cmake"
  "/root/repo/build/src/xquery/CMakeFiles/legodb_xquery.dir/DependInfo.cmake"
  "/root/repo/build/src/xschema/CMakeFiles/legodb_xschema.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/legodb_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/legodb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/legodb_relational.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
