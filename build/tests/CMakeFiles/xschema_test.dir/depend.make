# Empty dependencies file for xschema_test.
# This may be replaced when dependencies are built.
