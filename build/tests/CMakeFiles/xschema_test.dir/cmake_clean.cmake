file(REMOVE_RECURSE
  "CMakeFiles/xschema_test.dir/xschema_test.cc.o"
  "CMakeFiles/xschema_test.dir/xschema_test.cc.o.d"
  "xschema_test"
  "xschema_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xschema_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
