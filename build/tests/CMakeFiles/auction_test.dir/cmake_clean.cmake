file(REMOVE_RECURSE
  "CMakeFiles/auction_test.dir/auction_test.cc.o"
  "CMakeFiles/auction_test.dir/auction_test.cc.o.d"
  "auction_test"
  "auction_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auction_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
