# Empty dependencies file for auction_test.
# This may be replaced when dependencies are built.
