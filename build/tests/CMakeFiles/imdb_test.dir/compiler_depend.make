# Empty compiler generated dependencies file for imdb_test.
# This may be replaced when dependencies are built.
