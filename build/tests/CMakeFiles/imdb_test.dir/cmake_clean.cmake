file(REMOVE_RECURSE
  "CMakeFiles/imdb_test.dir/imdb_test.cc.o"
  "CMakeFiles/imdb_test.dir/imdb_test.cc.o.d"
  "imdb_test"
  "imdb_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imdb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
