file(REMOVE_RECURSE
  "liblegodb_translate.a"
)
