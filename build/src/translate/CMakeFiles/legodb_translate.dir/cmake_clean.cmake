file(REMOVE_RECURSE
  "CMakeFiles/legodb_translate.dir/translate.cc.o"
  "CMakeFiles/legodb_translate.dir/translate.cc.o.d"
  "liblegodb_translate.a"
  "liblegodb_translate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/legodb_translate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
