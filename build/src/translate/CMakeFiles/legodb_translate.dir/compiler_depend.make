# Empty compiler generated dependencies file for legodb_translate.
# This may be replaced when dependencies are built.
