file(REMOVE_RECURSE
  "CMakeFiles/legodb_storage.dir/database.cc.o"
  "CMakeFiles/legodb_storage.dir/database.cc.o.d"
  "CMakeFiles/legodb_storage.dir/reconstruct.cc.o"
  "CMakeFiles/legodb_storage.dir/reconstruct.cc.o.d"
  "CMakeFiles/legodb_storage.dir/shredder.cc.o"
  "CMakeFiles/legodb_storage.dir/shredder.cc.o.d"
  "liblegodb_storage.a"
  "liblegodb_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/legodb_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
