# Empty compiler generated dependencies file for legodb_storage.
# This may be replaced when dependencies are built.
