file(REMOVE_RECURSE
  "liblegodb_storage.a"
)
