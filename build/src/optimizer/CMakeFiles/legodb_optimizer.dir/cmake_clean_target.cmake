file(REMOVE_RECURSE
  "liblegodb_optimizer.a"
)
