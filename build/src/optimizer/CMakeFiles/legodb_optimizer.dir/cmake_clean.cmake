file(REMOVE_RECURSE
  "CMakeFiles/legodb_optimizer.dir/optimizer.cc.o"
  "CMakeFiles/legodb_optimizer.dir/optimizer.cc.o.d"
  "CMakeFiles/legodb_optimizer.dir/plan.cc.o"
  "CMakeFiles/legodb_optimizer.dir/plan.cc.o.d"
  "liblegodb_optimizer.a"
  "liblegodb_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/legodb_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
