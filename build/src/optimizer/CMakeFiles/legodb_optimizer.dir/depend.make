# Empty dependencies file for legodb_optimizer.
# This may be replaced when dependencies are built.
