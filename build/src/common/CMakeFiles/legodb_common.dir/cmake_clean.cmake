file(REMOVE_RECURSE
  "CMakeFiles/legodb_common.dir/rng.cc.o"
  "CMakeFiles/legodb_common.dir/rng.cc.o.d"
  "CMakeFiles/legodb_common.dir/status.cc.o"
  "CMakeFiles/legodb_common.dir/status.cc.o.d"
  "CMakeFiles/legodb_common.dir/str_util.cc.o"
  "CMakeFiles/legodb_common.dir/str_util.cc.o.d"
  "CMakeFiles/legodb_common.dir/table_printer.cc.o"
  "CMakeFiles/legodb_common.dir/table_printer.cc.o.d"
  "CMakeFiles/legodb_common.dir/value.cc.o"
  "CMakeFiles/legodb_common.dir/value.cc.o.d"
  "liblegodb_common.a"
  "liblegodb_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/legodb_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
