# Empty dependencies file for legodb_common.
# This may be replaced when dependencies are built.
