file(REMOVE_RECURSE
  "liblegodb_common.a"
)
