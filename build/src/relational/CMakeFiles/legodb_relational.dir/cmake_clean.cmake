file(REMOVE_RECURSE
  "CMakeFiles/legodb_relational.dir/catalog.cc.o"
  "CMakeFiles/legodb_relational.dir/catalog.cc.o.d"
  "liblegodb_relational.a"
  "liblegodb_relational.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/legodb_relational.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
