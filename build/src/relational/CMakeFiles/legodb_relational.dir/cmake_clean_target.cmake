file(REMOVE_RECURSE
  "liblegodb_relational.a"
)
