# Empty compiler generated dependencies file for legodb_relational.
# This may be replaced when dependencies are built.
