# Empty dependencies file for legodb_imdb.
# This may be replaced when dependencies are built.
