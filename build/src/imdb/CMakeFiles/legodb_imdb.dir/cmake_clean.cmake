file(REMOVE_RECURSE
  "CMakeFiles/legodb_imdb.dir/imdb.cc.o"
  "CMakeFiles/legodb_imdb.dir/imdb.cc.o.d"
  "liblegodb_imdb.a"
  "liblegodb_imdb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/legodb_imdb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
