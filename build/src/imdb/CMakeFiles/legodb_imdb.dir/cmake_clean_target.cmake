file(REMOVE_RECURSE
  "liblegodb_imdb.a"
)
