# Empty compiler generated dependencies file for legodb_xschema.
# This may be replaced when dependencies are built.
