file(REMOVE_RECURSE
  "CMakeFiles/legodb_xschema.dir/annotate.cc.o"
  "CMakeFiles/legodb_xschema.dir/annotate.cc.o.d"
  "CMakeFiles/legodb_xschema.dir/schema.cc.o"
  "CMakeFiles/legodb_xschema.dir/schema.cc.o.d"
  "CMakeFiles/legodb_xschema.dir/schema_parser.cc.o"
  "CMakeFiles/legodb_xschema.dir/schema_parser.cc.o.d"
  "CMakeFiles/legodb_xschema.dir/stats.cc.o"
  "CMakeFiles/legodb_xschema.dir/stats.cc.o.d"
  "CMakeFiles/legodb_xschema.dir/stats_collector.cc.o"
  "CMakeFiles/legodb_xschema.dir/stats_collector.cc.o.d"
  "CMakeFiles/legodb_xschema.dir/type.cc.o"
  "CMakeFiles/legodb_xschema.dir/type.cc.o.d"
  "CMakeFiles/legodb_xschema.dir/validator.cc.o"
  "CMakeFiles/legodb_xschema.dir/validator.cc.o.d"
  "liblegodb_xschema.a"
  "liblegodb_xschema.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/legodb_xschema.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
