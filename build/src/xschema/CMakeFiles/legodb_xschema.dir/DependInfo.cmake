
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xschema/annotate.cc" "src/xschema/CMakeFiles/legodb_xschema.dir/annotate.cc.o" "gcc" "src/xschema/CMakeFiles/legodb_xschema.dir/annotate.cc.o.d"
  "/root/repo/src/xschema/schema.cc" "src/xschema/CMakeFiles/legodb_xschema.dir/schema.cc.o" "gcc" "src/xschema/CMakeFiles/legodb_xschema.dir/schema.cc.o.d"
  "/root/repo/src/xschema/schema_parser.cc" "src/xschema/CMakeFiles/legodb_xschema.dir/schema_parser.cc.o" "gcc" "src/xschema/CMakeFiles/legodb_xschema.dir/schema_parser.cc.o.d"
  "/root/repo/src/xschema/stats.cc" "src/xschema/CMakeFiles/legodb_xschema.dir/stats.cc.o" "gcc" "src/xschema/CMakeFiles/legodb_xschema.dir/stats.cc.o.d"
  "/root/repo/src/xschema/stats_collector.cc" "src/xschema/CMakeFiles/legodb_xschema.dir/stats_collector.cc.o" "gcc" "src/xschema/CMakeFiles/legodb_xschema.dir/stats_collector.cc.o.d"
  "/root/repo/src/xschema/type.cc" "src/xschema/CMakeFiles/legodb_xschema.dir/type.cc.o" "gcc" "src/xschema/CMakeFiles/legodb_xschema.dir/type.cc.o.d"
  "/root/repo/src/xschema/validator.cc" "src/xschema/CMakeFiles/legodb_xschema.dir/validator.cc.o" "gcc" "src/xschema/CMakeFiles/legodb_xschema.dir/validator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/legodb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/legodb_xml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
