file(REMOVE_RECURSE
  "liblegodb_xschema.a"
)
