# Empty dependencies file for legodb_core.
# This may be replaced when dependencies are built.
