file(REMOVE_RECURSE
  "liblegodb_core.a"
)
