file(REMOVE_RECURSE
  "CMakeFiles/legodb_core.dir/cost.cc.o"
  "CMakeFiles/legodb_core.dir/cost.cc.o.d"
  "CMakeFiles/legodb_core.dir/legodb.cc.o"
  "CMakeFiles/legodb_core.dir/legodb.cc.o.d"
  "CMakeFiles/legodb_core.dir/search.cc.o"
  "CMakeFiles/legodb_core.dir/search.cc.o.d"
  "CMakeFiles/legodb_core.dir/transforms.cc.o"
  "CMakeFiles/legodb_core.dir/transforms.cc.o.d"
  "CMakeFiles/legodb_core.dir/workload.cc.o"
  "CMakeFiles/legodb_core.dir/workload.cc.o.d"
  "liblegodb_core.a"
  "liblegodb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/legodb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
