file(REMOVE_RECURSE
  "CMakeFiles/legodb_xquery.dir/ast.cc.o"
  "CMakeFiles/legodb_xquery.dir/ast.cc.o.d"
  "CMakeFiles/legodb_xquery.dir/evaluator.cc.o"
  "CMakeFiles/legodb_xquery.dir/evaluator.cc.o.d"
  "CMakeFiles/legodb_xquery.dir/parser.cc.o"
  "CMakeFiles/legodb_xquery.dir/parser.cc.o.d"
  "CMakeFiles/legodb_xquery.dir/result.cc.o"
  "CMakeFiles/legodb_xquery.dir/result.cc.o.d"
  "liblegodb_xquery.a"
  "liblegodb_xquery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/legodb_xquery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
