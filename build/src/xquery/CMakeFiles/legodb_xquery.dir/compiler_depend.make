# Empty compiler generated dependencies file for legodb_xquery.
# This may be replaced when dependencies are built.
