
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xquery/ast.cc" "src/xquery/CMakeFiles/legodb_xquery.dir/ast.cc.o" "gcc" "src/xquery/CMakeFiles/legodb_xquery.dir/ast.cc.o.d"
  "/root/repo/src/xquery/evaluator.cc" "src/xquery/CMakeFiles/legodb_xquery.dir/evaluator.cc.o" "gcc" "src/xquery/CMakeFiles/legodb_xquery.dir/evaluator.cc.o.d"
  "/root/repo/src/xquery/parser.cc" "src/xquery/CMakeFiles/legodb_xquery.dir/parser.cc.o" "gcc" "src/xquery/CMakeFiles/legodb_xquery.dir/parser.cc.o.d"
  "/root/repo/src/xquery/result.cc" "src/xquery/CMakeFiles/legodb_xquery.dir/result.cc.o" "gcc" "src/xquery/CMakeFiles/legodb_xquery.dir/result.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/legodb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/legodb_xml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
