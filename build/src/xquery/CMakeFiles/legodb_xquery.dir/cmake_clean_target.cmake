file(REMOVE_RECURSE
  "liblegodb_xquery.a"
)
