file(REMOVE_RECURSE
  "CMakeFiles/legodb_mapping.dir/mapping.cc.o"
  "CMakeFiles/legodb_mapping.dir/mapping.cc.o.d"
  "liblegodb_mapping.a"
  "liblegodb_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/legodb_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
