file(REMOVE_RECURSE
  "liblegodb_mapping.a"
)
