# Empty dependencies file for legodb_mapping.
# This may be replaced when dependencies are built.
