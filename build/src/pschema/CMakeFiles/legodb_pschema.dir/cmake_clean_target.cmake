file(REMOVE_RECURSE
  "liblegodb_pschema.a"
)
