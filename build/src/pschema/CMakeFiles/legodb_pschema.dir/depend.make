# Empty dependencies file for legodb_pschema.
# This may be replaced when dependencies are built.
