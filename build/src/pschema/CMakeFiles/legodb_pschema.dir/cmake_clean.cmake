file(REMOVE_RECURSE
  "CMakeFiles/legodb_pschema.dir/pschema.cc.o"
  "CMakeFiles/legodb_pschema.dir/pschema.cc.o.d"
  "liblegodb_pschema.a"
  "liblegodb_pschema.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/legodb_pschema.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
