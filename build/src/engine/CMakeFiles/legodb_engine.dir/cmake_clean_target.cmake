file(REMOVE_RECURSE
  "liblegodb_engine.a"
)
