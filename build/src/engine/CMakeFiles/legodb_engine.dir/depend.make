# Empty dependencies file for legodb_engine.
# This may be replaced when dependencies are built.
