file(REMOVE_RECURSE
  "CMakeFiles/legodb_engine.dir/executor.cc.o"
  "CMakeFiles/legodb_engine.dir/executor.cc.o.d"
  "liblegodb_engine.a"
  "liblegodb_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/legodb_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
