file(REMOVE_RECURSE
  "liblegodb_xml.a"
)
