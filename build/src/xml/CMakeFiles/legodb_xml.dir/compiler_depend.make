# Empty compiler generated dependencies file for legodb_xml.
# This may be replaced when dependencies are built.
