file(REMOVE_RECURSE
  "CMakeFiles/legodb_xml.dir/dom.cc.o"
  "CMakeFiles/legodb_xml.dir/dom.cc.o.d"
  "CMakeFiles/legodb_xml.dir/parser.cc.o"
  "CMakeFiles/legodb_xml.dir/parser.cc.o.d"
  "CMakeFiles/legodb_xml.dir/writer.cc.o"
  "CMakeFiles/legodb_xml.dir/writer.cc.o.d"
  "liblegodb_xml.a"
  "liblegodb_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/legodb_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
