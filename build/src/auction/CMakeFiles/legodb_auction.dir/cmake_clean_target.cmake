file(REMOVE_RECURSE
  "liblegodb_auction.a"
)
