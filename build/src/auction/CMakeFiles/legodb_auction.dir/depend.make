# Empty dependencies file for legodb_auction.
# This may be replaced when dependencies are built.
