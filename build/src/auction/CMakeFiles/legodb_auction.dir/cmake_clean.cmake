file(REMOVE_RECURSE
  "CMakeFiles/legodb_auction.dir/auction.cc.o"
  "CMakeFiles/legodb_auction.dir/auction.cc.o.d"
  "liblegodb_auction.a"
  "liblegodb_auction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/legodb_auction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
