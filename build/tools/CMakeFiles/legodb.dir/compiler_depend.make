# Empty compiler generated dependencies file for legodb.
# This may be replaced when dependencies are built.
