file(REMOVE_RECURSE
  "CMakeFiles/legodb.dir/legodb_cli.cc.o"
  "CMakeFiles/legodb.dir/legodb_cli.cc.o.d"
  "legodb"
  "legodb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/legodb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
