# Empty dependencies file for legodb.
# This may be replaced when dependencies are built.
