file(REMOVE_RECURSE
  "CMakeFiles/untyped_documents.dir/untyped_documents.cpp.o"
  "CMakeFiles/untyped_documents.dir/untyped_documents.cpp.o.d"
  "untyped_documents"
  "untyped_documents.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/untyped_documents.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
