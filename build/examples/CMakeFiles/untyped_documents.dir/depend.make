# Empty dependencies file for untyped_documents.
# This may be replaced when dependencies are built.
