file(REMOVE_RECURSE
  "CMakeFiles/web_lookup_service.dir/web_lookup_service.cpp.o"
  "CMakeFiles/web_lookup_service.dir/web_lookup_service.cpp.o.d"
  "web_lookup_service"
  "web_lookup_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/web_lookup_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
