# Empty compiler generated dependencies file for web_lookup_service.
# This may be replaced when dependencies are built.
