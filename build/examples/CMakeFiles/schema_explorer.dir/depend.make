# Empty dependencies file for schema_explorer.
# This may be replaced when dependencies are built.
