# Empty dependencies file for movie_catalog_publishing.
# This may be replaced when dependencies are built.
