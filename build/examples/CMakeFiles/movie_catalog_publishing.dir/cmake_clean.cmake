file(REMOVE_RECURSE
  "CMakeFiles/movie_catalog_publishing.dir/movie_catalog_publishing.cpp.o"
  "CMakeFiles/movie_catalog_publishing.dir/movie_catalog_publishing.cpp.o.d"
  "movie_catalog_publishing"
  "movie_catalog_publishing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/movie_catalog_publishing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
