# Empty compiler generated dependencies file for ablation_updates.
# This may be replaced when dependencies are built.
