file(REMOVE_RECURSE
  "CMakeFiles/ablation_updates.dir/ablation_updates.cc.o"
  "CMakeFiles/ablation_updates.dir/ablation_updates.cc.o.d"
  "ablation_updates"
  "ablation_updates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_updates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
