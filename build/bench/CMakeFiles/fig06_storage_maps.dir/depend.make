# Empty dependencies file for fig06_storage_maps.
# This may be replaced when dependencies are built.
