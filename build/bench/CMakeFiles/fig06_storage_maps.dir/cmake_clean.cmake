file(REMOVE_RECURSE
  "CMakeFiles/fig06_storage_maps.dir/fig06_storage_maps.cc.o"
  "CMakeFiles/fig06_storage_maps.dir/fig06_storage_maps.cc.o.d"
  "fig06_storage_maps"
  "fig06_storage_maps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_storage_maps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
