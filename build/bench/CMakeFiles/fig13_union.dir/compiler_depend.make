# Empty compiler generated dependencies file for fig13_union.
# This may be replaced when dependencies are built.
