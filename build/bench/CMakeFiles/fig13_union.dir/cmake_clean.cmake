file(REMOVE_RECURSE
  "CMakeFiles/fig13_union.dir/fig13_union.cc.o"
  "CMakeFiles/fig13_union.dir/fig13_union.cc.o.d"
  "fig13_union"
  "fig13_union.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_union.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
