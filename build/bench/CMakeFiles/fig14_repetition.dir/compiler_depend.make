# Empty compiler generated dependencies file for fig14_repetition.
# This may be replaced when dependencies are built.
