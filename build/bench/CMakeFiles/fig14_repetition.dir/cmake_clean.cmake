file(REMOVE_RECURSE
  "CMakeFiles/fig14_repetition.dir/fig14_repetition.cc.o"
  "CMakeFiles/fig14_repetition.dir/fig14_repetition.cc.o.d"
  "fig14_repetition"
  "fig14_repetition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_repetition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
