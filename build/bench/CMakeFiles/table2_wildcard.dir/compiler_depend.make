# Empty compiler generated dependencies file for table2_wildcard.
# This may be replaced when dependencies are built.
