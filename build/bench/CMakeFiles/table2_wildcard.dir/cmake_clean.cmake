file(REMOVE_RECURSE
  "CMakeFiles/table2_wildcard.dir/table2_wildcard.cc.o"
  "CMakeFiles/table2_wildcard.dir/table2_wildcard.cc.o.d"
  "table2_wildcard"
  "table2_wildcard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_wildcard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
