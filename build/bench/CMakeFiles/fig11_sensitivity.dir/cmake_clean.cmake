file(REMOVE_RECURSE
  "CMakeFiles/fig11_sensitivity.dir/fig11_sensitivity.cc.o"
  "CMakeFiles/fig11_sensitivity.dir/fig11_sensitivity.cc.o.d"
  "fig11_sensitivity"
  "fig11_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
