# Empty dependencies file for fig11_sensitivity.
# This may be replaced when dependencies are built.
