file(REMOVE_RECURSE
  "CMakeFiles/ablation_indexes.dir/ablation_indexes.cc.o"
  "CMakeFiles/ablation_indexes.dir/ablation_indexes.cc.o.d"
  "ablation_indexes"
  "ablation_indexes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_indexes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
