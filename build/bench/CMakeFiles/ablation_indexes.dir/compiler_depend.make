# Empty compiler generated dependencies file for ablation_indexes.
# This may be replaced when dependencies are built.
