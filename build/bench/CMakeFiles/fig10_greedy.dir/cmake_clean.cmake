file(REMOVE_RECURSE
  "CMakeFiles/fig10_greedy.dir/fig10_greedy.cc.o"
  "CMakeFiles/fig10_greedy.dir/fig10_greedy.cc.o.d"
  "fig10_greedy"
  "fig10_greedy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_greedy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
