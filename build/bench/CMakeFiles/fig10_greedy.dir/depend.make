# Empty dependencies file for fig10_greedy.
# This may be replaced when dependencies are built.
