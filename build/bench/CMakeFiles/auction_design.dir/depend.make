# Empty dependencies file for auction_design.
# This may be replaced when dependencies are built.
