file(REMOVE_RECURSE
  "CMakeFiles/auction_design.dir/auction_design.cc.o"
  "CMakeFiles/auction_design.dir/auction_design.cc.o.d"
  "auction_design"
  "auction_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auction_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
