// Lookup scenario (the paper's W2 motivation: "lookup queries issued to a
// movie-information web site, like the IMDB itself"):
//
//  1. tune the storage for the interactive lookup workload,
//  2. load data,
//  3. serve parameterized lookups through the relational engine, comparing
//     against direct XQuery-over-DOM evaluation,
//  4. show the optimizer's plan for one lookup.
//
//   ./examples/web_lookup_service
#include <cstdio>

#include "core/legodb.h"
#include "engine/executor.h"
#include "imdb/imdb.h"
#include "optimizer/optimizer.h"
#include "storage/shredder.h"
#include "translate/translate.h"
#include "xquery/evaluator.h"
#include "xquery/parser.h"

using namespace legodb;

int main() {
  core::MappingEngine engine;
  if (!engine.LoadSchemaText(imdb::SchemaText()).ok() ||
      !engine.LoadStatsText(imdb::StatsText()).ok()) {
    return 1;
  }
  auto workload = imdb::MakeWorkload("lookup");
  if (!workload.ok()) return 1;
  engine.SetWorkload(std::move(workload).value());
  auto result = engine.FindBestConfiguration(core::GreedySoOptions());
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  const map::Mapping& mapping = result->mapping;
  std::printf("lookup-tuned configuration: %zu tables\n\n",
              mapping.catalog().size());

  imdb::ImdbScale scale;
  scale.shows = 150;
  scale.directors = 40;
  scale.actors = 80;
  xml::Document doc = imdb::Generate(scale);
  store::Database db(mapping.catalog());
  if (!store::ShredDocument(doc, mapping, &db).ok()) return 1;

  // Serve a few lookups, with engine-vs-DOM cross-checking.
  struct Request {
    const char* query;
    const char* param;
    Value value;
  };
  Request requests[] = {
      {"Q1", "c1", Value::Str("title7")},
      {"Q3", "c1", Value::Int(1995)},
      {"Q8", "c1", Value::Str("person9")},
  };
  opt::Optimizer optimizer(mapping.catalog());
  for (const Request& req : requests) {
    auto query = xq::ParseQuery(imdb::QueryText(req.query));
    auto rq = xlat::TranslateQuery(query.value(), mapping);
    auto planned = optimizer.PlanQuery(rq.value());
    std::vector<opt::PhysicalPlanPtr> plans;
    for (const auto& b : planned->blocks) plans.push_back(b.plan);
    std::map<std::string, Value> params = {{req.param, req.value}};
    engine::Executor exec(&db, params);
    auto rows = exec.ExecuteQuery(rq.value(), plans);
    auto reference = xq::EvaluateOnDocument(query.value(), doc, params);
    if (!rows.ok() || !reference.ok()) return 1;
    std::printf("%s(%s = %s): %zu rows, estimated cost %.1f, %s\n",
                req.query, req.param, req.value.ToString().c_str(),
                rows->rows.size(), planned->total_cost,
                rows->SameRows(reference.value())
                    ? "matches DOM evaluation"
                    : "MISMATCH vs DOM evaluation!");
    for (const auto& row : rows->rows) {
      std::printf("   ");
      for (const auto& v : row) std::printf(" | %s", v.ToString().c_str());
      std::printf("\n");
    }
  }

  // Show the plan chosen for Q1.
  auto query = xq::ParseQuery(imdb::QueryText("Q1"));
  auto rq = xlat::TranslateQuery(query.value(), mapping);
  auto planned = optimizer.PlanQuery(rq.value());
  std::printf("\nSQL for Q1:\n%s\n\nplan:\n", rq->ToSql().c_str());
  for (size_t i = 0; i < planned->blocks.size(); ++i) {
    std::printf("%s",
                planned->blocks[i].plan->ToString(rq->blocks[i]).c_str());
  }
  return 0;
}
