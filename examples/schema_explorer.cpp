// Schema explorer: walks through the paper's Section-4.1 rewritings one by
// one on the IMDB schema, printing the schema and the derived relational
// configuration before and after each, plus the costs of a probe workload.
// Useful for understanding what each transformation does to the storage.
//
//   ./examples/schema_explorer
#include <cstdio>

#include "core/cost.h"
#include "core/transforms.h"
#include "imdb/imdb.h"
#include "mapping/mapping.h"
#include "pschema/pschema.h"
#include "xschema/annotate.h"

using namespace legodb;

namespace {

void Show(const char* title, const xs::Schema& schema,
          const core::Workload& probe) {
  std::printf("---- %s ----\n%s\n", title, schema.ToString().c_str());
  auto mapping = map::MapSchema(schema);
  if (!mapping.ok()) {
    std::printf("(mapping failed: %s)\n\n",
                mapping.status().ToString().c_str());
    return;
  }
  std::printf("%zu tables, %.1f MB estimated data\n",
              mapping->catalog().size(),
              mapping->catalog().TotalBytes() / 1e6);
  auto cost = core::CostSchema(schema, probe, opt::CostParams{});
  if (cost.ok()) {
    std::printf("probe workload cost: %.1f\n", cost->total);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  auto raw = imdb::Schema();
  auto stats = imdb::Stats();
  if (!raw.ok() || !stats.ok()) return 1;
  xs::Schema annotated = xs::AnnotateSchema(raw.value(), stats.value());
  xs::Schema base = ps::Normalize(annotated);

  core::Workload probe;
  for (const char* q : {"Q1", "Q4", "Q16"}) {
    if (!probe.Add(q, imdb::QueryText(q), 1.0).ok()) return 1;
  }

  Show("initial physical schema PS0 (normalized Appendix B)", base, probe);

  // Enumerate one applicable instance of each structural rewriting and show
  // its effect.
  struct Case {
    core::Transformation::Kind kind;
    const char* title;
  };
  Case cases[] = {
      {core::Transformation::Kind::kInline, "inlining (one step)"},
      {core::Transformation::Kind::kUnionDistribute,
       "union distribution (Show -> Show_Part | Show_Part_2)"},
      {core::Transformation::Kind::kUnionToOptions,
       "union to options (lossy: branches become nullable columns)"},
      {core::Transformation::Kind::kWildcardMaterialize,
       "wildcard materialization (~ == nyt | ~!nyt)"},
  };
  for (const Case& c : cases) {
    core::TransformOptions options;
    options.inline_types = c.kind == core::Transformation::Kind::kInline;
    options.outline_elements = false;
    options.union_distribute =
        c.kind == core::Transformation::Kind::kUnionDistribute;
    options.union_to_options =
        c.kind == core::Transformation::Kind::kUnionToOptions;
    options.wildcard_materialize =
        c.kind == core::Transformation::Kind::kWildcardMaterialize;
    options.wildcard_tags = {"nyt"};
    bool applied = false;
    for (const auto& t : core::EnumerateTransformations(base, options)) {
      if (t.kind != c.kind) continue;
      auto out = core::ApplyTransformation(base, t);
      if (!out.ok()) continue;
      std::printf("==== %s ====\napplied: %s\n\n", c.title,
                  t.Describe(base).c_str());
      Show("resulting schema", out.value(), probe);
      applied = true;
      break;
    }
    if (!applied) std::printf("==== %s ====\n(not applicable)\n\n", c.title);
  }
  return 0;
}
