// Quickstart: the complete LegoDB flow on the paper's IMDB application.
//
// Inputs are purely XML-level (the paper's design principle of
// logical/physical independence): an XML Schema in the algebra notation,
// path statistics, and a weighted XQuery workload. Output is a relational
// storage configuration chosen by cost-based greedy search.
//
//   ./examples/quickstart
#include <cstdio>

#include "core/legodb.h"
#include "imdb/imdb.h"

using namespace legodb;

int main() {
  core::MappingEngine engine;

  // 1. The XML Schema (Appendix B) and data statistics (Appendix A).
  if (!engine.LoadSchemaText(imdb::SchemaText()).ok() ||
      !engine.LoadStatsText(imdb::StatsText()).ok()) {
    std::fprintf(stderr, "failed to load IMDB schema/stats\n");
    return 1;
  }

  // 2. The application workload: a movie-information web site — mostly
  //    interactive lookups, a little publishing.
  struct {
    const char* name;
    double weight;
  } workload[] = {{"Q1", 0.3}, {"Q8", 0.3}, {"Q11", 0.2}, {"Q16", 0.2}};
  for (const auto& q : workload) {
    Status st = engine.AddQuery(q.name, imdb::QueryText(q.name), q.weight);
    if (!st.ok()) {
      std::fprintf(stderr, "bad query %s: %s\n", q.name,
                   st.ToString().c_str());
      return 1;
    }
  }

  // 3. Greedy search for an efficient configuration (Algorithm 4.1).
  auto result = engine.FindBestConfiguration(core::GreedySoOptions());
  if (!result.ok()) {
    std::fprintf(stderr, "search failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("=== search trace ===\n");
  for (const auto& step : result->search.trace) {
    std::printf("iteration %2d: cost %12.1f  %s\n", step.iteration, step.cost,
                step.applied.c_str());
  }

  std::printf("\n=== chosen physical XML schema ===\n%s\n",
              result->search.best_schema.ToString().c_str());

  std::printf("=== derived relational configuration ===\n%s\n",
              result->mapping.catalog().ToDdl().c_str());
  return 0;
}
