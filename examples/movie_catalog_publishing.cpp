// Publishing scenario (the paper's W1 motivation: "a cable company which
// routinely publishes large parts of the database for download"):
//
//  1. tune the storage for the publish-heavy workload,
//  2. shred a synthetic IMDB document into the chosen configuration,
//  3. run the publish query through the relational engine and report the
//     measured work,
//  4. reconstruct one show subtree from rows — the inverse mapping.
//
//   ./examples/movie_catalog_publishing
#include <cstdio>

#include "core/legodb.h"
#include "engine/executor.h"
#include "imdb/imdb.h"
#include "optimizer/optimizer.h"
#include "storage/reconstruct.h"
#include "storage/shredder.h"
#include "translate/translate.h"
#include "xml/writer.h"
#include "xquery/parser.h"

using namespace legodb;

int main() {
  // Tune storage for the publishing workload (Q15-Q17).
  core::MappingEngine engine;
  if (!engine.LoadSchemaText(imdb::SchemaText()).ok() ||
      !engine.LoadStatsText(imdb::StatsText()).ok()) {
    return 1;
  }
  auto workload = imdb::MakeWorkload("publish");
  if (!workload.ok()) return 1;
  engine.SetWorkload(std::move(workload).value());
  auto result = engine.FindBestConfiguration(core::GreedySiOptions());
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  const map::Mapping& mapping = result->mapping;
  std::printf("chosen configuration (%zu tables), search cost %.1f\n\n",
              mapping.catalog().size(), result->search.best_cost);

  // Load data: generate a catalog and shred it.
  imdb::ImdbScale scale;
  scale.shows = 200;
  scale.directors = 50;
  scale.actors = 120;
  xml::Document doc = imdb::Generate(scale);
  store::Database db(mapping.catalog());
  Status st = store::ShredDocument(doc, mapping, &db);
  if (!st.ok()) {
    std::fprintf(stderr, "shred failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("shredded %zu XML nodes into %zu rows across %zu tables\n",
              doc.root->SubtreeSize(), db.TotalRows(),
              db.table_names().size());
  for (const auto& name : db.table_names()) {
    std::printf("  %-12s %6zu rows\n", name.c_str(),
                db.GetTable(name).row_count());
  }

  // Publish all shows through the relational engine.
  auto query = xq::ParseQuery(imdb::QueryText("Q16"));
  auto rq = xlat::TranslateQuery(query.value(), mapping);
  opt::Optimizer optimizer(mapping.catalog());
  auto planned = optimizer.PlanQuery(rq.value());
  std::vector<opt::PhysicalPlanPtr> plans;
  for (const auto& b : planned->blocks) plans.push_back(b.plan);
  engine::Executor exec(&db);
  auto rows = exec.ExecuteQuery(rq.value(), plans);
  if (!rows.ok()) return 1;
  std::printf(
      "\npublish run: %zu blocks, %.0f rows out, %.0f bytes read, "
      "%.0f tuples processed (estimated cost %.1f)\n",
      rq->blocks.size(), exec.stats().rows_out, exec.stats().bytes_read,
      exec.stats().tuples_processed, planned->total_cost);

  // Reconstruct one show subtree from its rows (ids are document order; the
  // first show is the second node shredded after the imdb root).
  for (const auto& [type_name, tm] : mapping.types()) {
    if (tm.virtual_union || tm.table.empty()) continue;
    if (mapping.EntryNames(type_name) ==
        std::vector<std::string>{"show"}) {
      const store::StoredTable& table = db.GetTable(tm.table);
      if (table.row_count() == 0) continue;
      int key = table.meta().ColumnIndex(table.meta().key_column);
      int64_t id = table.rows()[0][key].as_int();
      xml::NodePtr holder = xml::Node::Element("holder");
      if (store::ReconstructInstance(&db, mapping, type_name, id,
                                     holder.get())
              .ok()) {
        std::printf("\nreconstructed <show> (id %lld) from table %s:\n%s",
                    static_cast<long long>(id), tm.table.c_str(),
                    xml::Serialize(*holder->children()[0]).c_str());
      }
      break;
    }
  }
  return 0;
}
