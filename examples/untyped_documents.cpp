// Untyped / semistructured documents (paper Section 3.2): the universal
// type `AnyElement = ~[(AnyElement | AnyScalar)*]` accepts any element-only
// document and maps to a STORED-style overflow relation. This example
// shreds an arbitrary document nobody wrote a schema for, shows the
// resulting rows, and reconstructs the document from them.
//
//   ./examples/untyped_documents
#include <cstdio>

#include "mapping/mapping.h"
#include "pschema/pschema.h"
#include "storage/reconstruct.h"
#include "storage/shredder.h"
#include "xml/parser.h"
#include "xml/writer.h"
#include "xschema/schema_parser.h"

using namespace legodb;

int main() {
  // The universal schema for untyped XML (Section 3.2).
  auto schema = xs::ParseSchema(R"(
    type Root = doc[ AnyElement* ]
    type AnyElement = ~[ (AnyElement | AnyScalar)* ]
    type AnyScalar = String
  )");
  if (!schema.ok()) return 1;
  auto mapping = map::MapSchema(ps::Normalize(schema.value()));
  if (!mapping.ok()) {
    std::fprintf(stderr, "%s\n", mapping.status().ToString().c_str());
    return 1;
  }
  std::printf("=== overflow configuration for untyped XML ===\n%s\n",
              mapping->catalog().ToDdl().c_str());

  // Note: the universal type covers element content only; an attribute
  // would (correctly) be rejected by the shredder, as by the validator.
  const char* text = R"(
    <doc>
      <order>
        <customer><name>Ada</name><city>London</city></customer>
        <lines><line><sku>A-1</sku><qty>2</qty></line>
               <line><sku>B-9</sku><qty>1</qty></line></lines>
      </order>
      <memo>ship fast</memo>
    </doc>)";
  auto doc = xml::ParseDocument(text);
  if (!doc.ok()) return 1;
  store::Database db(mapping->catalog());
  Status st = store::ShredDocument(doc.value(), mapping.value(), &db);
  if (!st.ok()) {
    std::fprintf(stderr, "shred: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("shredded into:\n");
  for (const auto& name : db.table_names()) {
    std::printf("  %-12s %3zu rows\n", name.c_str(),
                db.GetTable(name).row_count());
  }
  const store::StoredTable& any = db.GetTable("AnyElement");
  std::printf("\nAnyElement rows (tag, parent):\n");
  int tilde = any.meta().ColumnIndex("tilde");
  int fk_any = any.meta().ColumnIndex("parent_AnyElement");
  for (const auto& row : any.rows()) {
    std::printf("  %-10s parent=%s\n", row[tilde].ToString().c_str(),
                row[fk_any].ToString().c_str());
  }

  auto rebuilt = store::ReconstructDocument(&db, mapping.value());
  if (!rebuilt.ok()) return 1;
  std::printf("\nreconstructed document:\n%s",
              xml::Serialize(rebuilt.value()).c_str());
  return 0;
}
