// Cost-model calibration: runs the paper's query workloads over synthetic
// IMDB and auction databases, executes every query with per-operator
// profiling enabled, and reports how the optimizer's estimates line up
// with what the pipelined engine actually measured:
//
//  - per operator: estimated vs. actual cardinality as a q-error
//    (max(est/act, act/est), 1.0 = perfect);
//  - per query: estimated plan cost vs. measured wall milliseconds;
//  - per domain: Spearman rank correlation between estimated cost and
//    measured time across the workload — the cost model only has to *rank*
//    alternatives correctly for the search to pick good configurations, so
//    rank correlation is the calibration figure of merit.
//
// The summary statistics are exported through the obs registry as gauges
// (calibration.<domain>.spearman, .median_qerror, .max_qerror) and the
// per-operator q-errors as a histogram (calibration.qerror), so a JSON
// output path captures the whole report in the same format as the other
// BENCH_*.json trajectories:
//
//   calibration [--batch-size=N] [--scale=N] [--reps=N] [--backend=mem|disk]
//               [--pool-pages=N] [--page-size=N] [--require-io]
//               [BENCH_out.json]
//
// --batch-size sets the engine's per-Next() batch size, --scale multiplies
// the synthetic data volume, --reps the timed executions per query.
//
// --backend=disk runs both workloads over the paged storage backend
// (--page-size bytes per page, --pool-pages buffer-pool frames) and sets
// CostParams::page_size to match, so a second calibration axis opens up:
// the optimizer's decomposed seek/byte estimates (PhysicalPlan::est_seeks /
// est_bytes) against the buffer pool's *measured* fault traffic, reported
// as q-errors and Spearman rank correlations per domain
// (calibration.<domain>.seeks_spearman / .bytes_spearman). --require-io
// makes a zero-measured-IO run a hard failure (exit 1) — the disk smoke
// check in tools/check.sh uses it to prove the counters are real.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <numeric>
#include <string>
#include <vector>

#include "auction/auction.h"
#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "engine/executor.h"
#include "mapping/mapping.h"
#include "optimizer/optimizer.h"
#include "storage/shredder.h"
#include "translate/translate.h"
#include "xquery/parser.h"
#include "xschema/stats_collector.h"

using namespace legodb;

namespace {

struct QuerySpec {
  std::string name;
  std::string text;
  std::map<std::string, Value> params;  // bindings for symbolic constants
};

// Tie-averaged ranks (1-based) of `v`.
std::vector<double> Ranks(const std::vector<double>& v) {
  std::vector<size_t> order(v.size());
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return v[a] < v[b]; });
  std::vector<double> ranks(v.size(), 0);
  size_t i = 0;
  while (i < order.size()) {
    size_t j = i;
    while (j + 1 < order.size() && v[order[j + 1]] == v[order[i]]) ++j;
    double rank = (static_cast<double>(i) + static_cast<double>(j)) / 2 + 1;
    for (size_t k = i; k <= j; ++k) ranks[order[k]] = rank;
    i = j + 1;
  }
  return ranks;
}

// Spearman rank correlation: Pearson correlation of the tie-averaged ranks.
double Spearman(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size() || a.size() < 2) return 0;
  std::vector<double> ra = Ranks(a), rb = Ranks(b);
  double n = static_cast<double>(a.size());
  double ma = std::accumulate(ra.begin(), ra.end(), 0.0) / n;
  double mb = std::accumulate(rb.begin(), rb.end(), 0.0) / n;
  double cov = 0, va = 0, vb = 0;
  for (size_t i = 0; i < ra.size(); ++i) {
    cov += (ra[i] - ma) * (rb[i] - mb);
    va += (ra[i] - ma) * (ra[i] - ma);
    vb += (rb[i] - mb) * (rb[i] - mb);
  }
  if (va == 0 || vb == 0) return 0;
  return cov / std::sqrt(va * vb);
}

double Median(std::vector<double> v) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  size_t mid = v.size() / 2;
  return v.size() % 2 ? v[mid] : (v[mid - 1] + v[mid]) / 2;
}

double QError(double est, double act) {
  double lo = std::min(est, act), hi = std::max(est, act);
  if (hi <= 0) return 1.0;
  if (lo <= 0) return hi;  // one side zero: report the magnitude
  return hi / lo;
}

// Runs one domain's workload and prints + exports its calibration report.
// Returns the total measured IO (seeks + bytes) across the workload, so
// main can enforce --require-io.
double RunDomain(const std::string& domain, const map::Mapping& mapping,
                 store::Database* db, const std::vector<QuerySpec>& queries,
                 const opt::CostParams& cost_params, size_t batch_size,
                 int reps) {
  std::printf("== %s ==\n", domain.c_str());
  opt::Optimizer optimizer(mapping.catalog(), cost_params);

  TablePrinter ops_table(
      {"query", "operator", "est_rows", "rows", "q-err", "ms"});
  std::vector<double> est_costs, measured_ms, qerrors;
  std::vector<double> est_seeks, act_seeks, est_bytes, act_bytes;
  std::vector<std::string> qnames;

  for (const QuerySpec& q : queries) {
    auto parsed = xq::ParseQuery(q.text);
    bench::Check(parsed.status(), q.name.c_str());
    auto rq = xlat::TranslateQuery(parsed.value(), mapping);
    bench::Check(rq.status(), q.name.c_str());
    auto planned = optimizer.PlanQuery(rq.value());
    bench::Check(planned.status(), q.name.c_str());
    std::vector<opt::PhysicalPlanPtr> plans;
    double est_cost = 0, q_est_seeks = 0, q_est_bytes = 0;
    for (const auto& b : planned->blocks) {
      plans.push_back(b.plan);
      if (b.plan) {
        est_cost += b.plan->est_cost;
        q_est_seeks += b.plan->est_seeks;
        q_est_bytes += b.plan->est_bytes;
      }
    }

    engine::ExecOptions options;
    options.batch_size = batch_size;
    options.collect_profile = true;
    engine::Executor exec(db, q.params, options);

    // Timed executions; the profile of the last run feeds the q-errors
    // (cardinalities are deterministic, so any run's profile is the same).
    // ExecStats accumulate across runs, so the per-run measured IO is the
    // delta over the loop divided by reps. On the paged backend the first
    // run faults pages in cold and later runs hit the pool, so the average
    // reflects steady-state traffic, exactly what the cost model predicts
    // only when data exceeds the pool — use small --pool-pages to exercise
    // the eviction path.
    engine::ExecStats before = exec.stats();
    int64_t start_ns = obs::NowNanos();
    for (int r = 0; r < reps; ++r) {
      auto result = exec.ExecuteQuery(rq.value(), plans);
      bench::Check(result.status(), q.name.c_str());
    }
    double ms =
        static_cast<double>(obs::NowNanos() - start_ns) / 1e6 / reps;
    double q_act_seeks = (exec.stats().seeks - before.seeks) / reps;
    double q_act_bytes =
        (exec.stats().bytes_read - before.bytes_read) / reps;

    for (const engine::OpActual& op : exec.profile().ops) {
      double qerr = op.QError();
      qerrors.push_back(qerr);
      obs::Observe("calibration.qerror", qerr);
      std::string label(2 * static_cast<size_t>(op.depth), ' ');
      label += op.label;
      ops_table.AddRow({q.name, label, FormatDouble(op.est_rows, 0),
                        std::to_string(op.actual_rows),
                        FormatDouble(qerr, 2), FormatDouble(op.ms, 3)});
    }
    est_costs.push_back(est_cost);
    measured_ms.push_back(ms);
    est_seeks.push_back(q_est_seeks);
    act_seeks.push_back(q_act_seeks);
    est_bytes.push_back(q_est_bytes);
    act_bytes.push_back(q_act_bytes);
    qnames.push_back(q.name);
  }
  ops_table.Print();

  TablePrinter summary({"query", "est_cost", "ms", "est_rank", "ms_rank",
                        "est_seeks", "seeks", "est_bytes", "bytes"});
  std::vector<double> cost_ranks = Ranks(est_costs);
  std::vector<double> ms_ranks = Ranks(measured_ms);
  for (size_t i = 0; i < qnames.size(); ++i) {
    summary.AddRow({qnames[i], FormatDouble(est_costs[i], 1),
                    FormatDouble(measured_ms[i], 3),
                    FormatDouble(cost_ranks[i], 1),
                    FormatDouble(ms_ranks[i], 1),
                    FormatDouble(est_seeks[i], 0),
                    FormatDouble(act_seeks[i], 0),
                    FormatDouble(est_bytes[i], 0),
                    FormatDouble(act_bytes[i], 0)});
    obs::Observe("calibration." + domain + ".query_ms", measured_ms[i]);
  }
  summary.Print();

  double rho = Spearman(est_costs, measured_ms);
  double med_q = Median(qerrors);
  double max_q = qerrors.empty()
                     ? 0
                     : *std::max_element(qerrors.begin(), qerrors.end());
  obs::SetGauge("calibration." + domain + ".spearman", rho);
  obs::SetGauge("calibration." + domain + ".median_qerror", med_q);
  obs::SetGauge("calibration." + domain + ".max_qerror", max_q);

  // IO calibration: the optimizer's decomposed seek/byte predictions
  // against what the engine measured — real buffer-pool fault traffic on
  // the paged backend, the modeled per-operator charges on memory.
  double seeks_rho = Spearman(est_seeks, act_seeks);
  double bytes_rho = Spearman(est_bytes, act_bytes);
  std::vector<double> seeks_qerrs, bytes_qerrs;
  double io_total = 0;
  for (size_t i = 0; i < qnames.size(); ++i) {
    seeks_qerrs.push_back(QError(est_seeks[i], act_seeks[i]));
    bytes_qerrs.push_back(QError(est_bytes[i], act_bytes[i]));
    io_total += act_seeks[i] + act_bytes[i];
  }
  obs::SetGauge("calibration." + domain + ".seeks_spearman", seeks_rho);
  obs::SetGauge("calibration." + domain + ".bytes_spearman", bytes_rho);
  obs::SetGauge("calibration." + domain + ".seeks_median_qerror",
                Median(seeks_qerrs));
  obs::SetGauge("calibration." + domain + ".bytes_median_qerror",
                Median(bytes_qerrs));
  std::printf(
      "spearman(est_cost, measured_ms) = %.3f over %zu queries; "
      "cardinality q-error median %.2f, max %.2f\n"
      "spearman(est_seeks, seeks) = %.3f, spearman(est_bytes, bytes) = %.3f; "
      "seek q-error median %.2f, byte q-error median %.2f\n\n",
      rho, qnames.size(), med_q, max_q, seeks_rho, bytes_rho,
      Median(seeks_qerrs), Median(bytes_qerrs));
  return io_total;
}

}  // namespace

int main(int argc, char** argv) {
  bench::ObsSession obs_session("calibration");
  size_t batch_size = 1024;
  int scale = 1;
  int reps = 20;
  bool disk = false;
  bool require_io = false;
  size_t pool_pages = 16;
  size_t page_size = 4096;
  std::string json_out;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--batch-size=", 13) == 0) {
      batch_size = static_cast<size_t>(std::atol(argv[i] + 13));
    } else if (std::strncmp(argv[i], "--scale=", 8) == 0) {
      scale = std::atoi(argv[i] + 8);
    } else if (std::strncmp(argv[i], "--reps=", 7) == 0) {
      reps = std::atoi(argv[i] + 7);
    } else if (std::strncmp(argv[i], "--backend=", 10) == 0) {
      disk = std::strcmp(argv[i] + 10, "disk") == 0;
    } else if (std::strncmp(argv[i], "--pool-pages=", 13) == 0) {
      pool_pages = static_cast<size_t>(std::atol(argv[i] + 13));
    } else if (std::strncmp(argv[i], "--page-size=", 12) == 0) {
      page_size = static_cast<size_t>(std::atol(argv[i] + 12));
    } else if (std::strcmp(argv[i], "--require-io") == 0) {
      require_io = true;
    } else {
      json_out = argv[i];
    }
  }
  if (batch_size == 0) batch_size = 1;
  if (scale < 1) scale = 1;
  if (reps < 1) reps = 1;
  if (pool_pages == 0) pool_pages = 1;
  store::StorageOptions storage =
      disk ? store::StorageOptions::Paged(page_size, pool_pages)
           : store::StorageOptions::Memory();
  opt::CostParams cost_params;
  if (disk) cost_params.page_size = static_cast<double>(page_size);
  {
    engine::ExecOptions options;
    options.batch_size = batch_size;
    bench::StampEngineMeta(&obs_session, options);
  }
  obs_session.SetMeta("backend", disk ? "disk" : "mem");
  std::printf(
      "Cost-model calibration: estimated vs. measured per operator and per\n"
      "query (batch_size=%zu, scale=%d, reps=%d, backend=%s",
      batch_size, scale, reps, disk ? "disk" : "mem");
  if (disk) {
    std::printf(", page_size=%zu, pool_pages=%zu", page_size, pool_pages);
  }
  std::printf(").\n\n");
  double measured_io = 0;

  // --- IMDB: the fig10 lookup + publish and fig13 workload queries. -------
  {
    imdb::ImdbScale data_scale;
    data_scale.shows = 120 * scale;
    data_scale.directors = 50 * scale;
    data_scale.actors = 150 * scale;
    xml::Document doc = imdb::Generate(data_scale);
    xs::Schema config = ps::AllInlined(bench::AnnotatedImdb());
    auto mapping = bench::Unwrap(map::MapSchema(config), "map imdb");
    store::Database db(mapping.catalog(), storage);
    bench::Check(store::ShredDocument(doc, mapping, &db), "shred imdb");
    bench::Check(db.PrewarmIndexes(), "prewarm imdb");

    std::map<std::string, Value> params = {
        {"c1", Value::Str("title1")},
        {"c2", Value::Str("title2")},
        {"c4", Value::Str("person3")},
    };
    std::vector<QuerySpec> queries;
    for (const char* name : {"Q4", "Q5", "Q6", "Q7", "Q8", "Q9", "Q11",
                             "Q12", "Q13", "Q15", "Q16", "Q17"}) {
      queries.push_back({name, imdb::QueryText(name), params});
    }
    measured_io +=
        RunDomain("imdb", mapping, &db, queries, cost_params, batch_size,
                  reps);
  }

  // --- Auction: the bidding + export workload queries. --------------------
  {
    auction::AuctionScale data_scale;
    data_scale.people = 150 * scale;
    data_scale.open_auctions = 90 * scale;
    data_scale.closed_auctions = 60 * scale;
    xml::Document doc = auction::Generate(data_scale);
    auto schema = bench::Unwrap(auction::Schema(), "auction schema");
    xs::StatsCollector collector;
    collector.AddDocument(doc);
    xs::Schema config =
        ps::AllInlined(xs::AnnotateSchema(schema, collector.Finish()));
    auto mapping = bench::Unwrap(map::MapSchema(config), "map auction");
    store::Database db(mapping.catalog(), storage);
    bench::Check(store::ShredDocument(doc, mapping, &db), "shred auction");
    bench::Check(db.PrewarmIndexes(), "prewarm auction");

    // A3 and A5 look up auction/category ids, the rest person ids, so the
    // shared parameter c1 is bound per query.
    std::vector<QuerySpec> queries;
    for (const char* name : {"A1", "A2", "A3", "A4", "A5", "A6", "A7",
                             "A8"}) {
      std::map<std::string, Value> params = {{"c1", Value::Str("person3")}};
      if (std::strcmp(name, "A3") == 0) params["c1"] = Value::Str("open2");
      if (std::strcmp(name, "A5") == 0) {
        params["c1"] = Value::Str("category2");
      }
      queries.push_back({name, auction::QueryText(name), params});
    }
    measured_io +=
        RunDomain("auction", mapping, &db, queries, cost_params, batch_size,
                  reps);
  }

  if (!json_out.empty()) obs_session.WriteJson(json_out);
  if (require_io && measured_io <= 0) {
    std::fprintf(stderr,
                 "--require-io: no IO was measured across the workloads "
                 "(seeks + bytes == 0); storage counters are not wired up\n");
    return 1;
  }
  return 0;
}
