// Google-benchmark microbenchmarks of the substrate components: XML
// parsing, validation, shredding, reconstruction, and query execution.
//
// The reference-vs-batched executor equality check runs unconditionally in
// main() before any benchmark (even with --benchmark_filter), and a
// mismatch exits nonzero. `--obs-out=FILE` writes the run's obs::Report
// (provenance-stamped; see bench::ObsSession) there as JSON.
#include <benchmark/benchmark.h>

#include <cstring>
#include <optional>
#include <string>

#include "bench/bench_util.h"
#include "engine/executor.h"
#include "engine/reference_executor.h"
#include "imdb/imdb.h"
#include "mapping/mapping.h"
#include "optimizer/optimizer.h"
#include "storage/reconstruct.h"
#include "storage/shredder.h"
#include "translate/translate.h"
#include "xml/parser.h"
#include "xml/writer.h"
#include "xquery/parser.h"
#include "xschema/validator.h"

namespace {

using namespace legodb;

imdb::ImdbScale SmallScale() {
  imdb::ImdbScale scale;
  scale.shows = 100;
  scale.directors = 40;
  scale.actors = 60;
  return scale;
}

void BM_XmlParse(benchmark::State& state) {
  std::string text = xml::Serialize(imdb::Generate(SmallScale()));
  for (auto _ : state) {
    auto doc = xml::ParseDocument(text);
    benchmark::DoNotOptimize(doc);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_XmlParse);

void BM_Validate(benchmark::State& state) {
  xml::Document doc = imdb::Generate(SmallScale());
  xs::Schema schema = bench::RawImdb();
  for (auto _ : state) {
    Status st = xs::ValidateDocument(doc, schema);
    benchmark::DoNotOptimize(st);
  }
}
BENCHMARK(BM_Validate);

void BM_Shred(benchmark::State& state) {
  xml::Document doc = imdb::Generate(SmallScale());
  xs::Schema config = ps::Normalize(bench::AnnotatedImdb());
  auto mapping = bench::Unwrap(map::MapSchema(config), "map");
  for (auto _ : state) {
    store::Database db(mapping.catalog());
    Status st = store::ShredDocument(doc, mapping, &db);
    benchmark::DoNotOptimize(st);
  }
}
BENCHMARK(BM_Shred);

void BM_Reconstruct(benchmark::State& state) {
  xml::Document doc = imdb::Generate(SmallScale());
  xs::Schema config = ps::Normalize(bench::AnnotatedImdb());
  auto mapping = bench::Unwrap(map::MapSchema(config), "map");
  store::Database db(mapping.catalog());
  bench::Check(store::ShredDocument(doc, mapping, &db), "shred");
  for (auto _ : state) {
    auto rebuilt = store::ReconstructDocument(&db, mapping);
    benchmark::DoNotOptimize(rebuilt);
  }
}
BENCHMARK(BM_Reconstruct);

// A prepared fig10 workload (lookup Q8/Q9/Q11/Q12/Q13 + publish
// Q15/Q16/Q17) over the all-inlined IMDB configuration, shared by the
// executor comparison benchmarks below.
struct Fig10Workload {
  store::Database db;
  std::vector<opt::RelQuery> queries;
  std::vector<std::vector<opt::PhysicalPlanPtr>> plans;
  std::map<std::string, Value> params;

  explicit Fig10Workload(const map::Mapping& mapping) : db(mapping.catalog()) {
    imdb::ImdbScale scale;
    scale.shows = 300;
    scale.directors = 120;
    scale.actors = 400;
    xml::Document doc = imdb::Generate(scale);
    bench::Check(store::ShredDocument(doc, mapping, &db), "shred");
    bench::Check(db.PrewarmIndexes(), "prewarm");
    params = {{"c1", Value::Str("title1")},
              {"c2", Value::Str("title2")},
              {"c4", Value::Str("person3")}};
    opt::Optimizer optimizer(mapping.catalog());
    for (const char* name :
         {"Q8", "Q9", "Q11", "Q12", "Q13", "Q15", "Q16", "Q17"}) {
      auto q = bench::Unwrap(xq::ParseQuery(imdb::QueryText(name)), "parse");
      auto rq = bench::Unwrap(xlat::TranslateQuery(q, mapping), "translate");
      auto planned = bench::Unwrap(optimizer.PlanQuery(rq), "plan");
      std::vector<opt::PhysicalPlanPtr> query_plans;
      for (const auto& b : planned.blocks) query_plans.push_back(b.plan);
      queries.push_back(std::move(rq));
      plans.push_back(std::move(query_plans));
    }
  }
};

Fig10Workload& SharedFig10() {
  static auto* mapping = new map::Mapping(bench::Unwrap(
      map::MapSchema(ps::AllInlined(bench::AnnotatedImdb())), "map"));
  static auto* workload = new Fig10Workload(*mapping);
  return *workload;
}

// Both executors must agree row for row before any timing counts. Called
// from main() so the check runs even when --benchmark_filter excludes the
// benchmarks that use the workload; exits nonzero on mismatch.
void VerifyFig10() {
  Fig10Workload& w = SharedFig10();
  for (size_t i = 0; i < w.queries.size(); ++i) {
    engine::ReferenceExecutor ref(&w.db, w.params);
    engine::Executor batched(&w.db, w.params);
    auto expected = ref.ExecuteQuery(w.queries[i], w.plans[i]);
    auto actual = batched.ExecuteQuery(w.queries[i], w.plans[i]);
    bench::Check(expected.status(), "reference execute");
    bench::Check(actual.status(), "batched execute");
    if (!(expected->rows == actual->rows)) {
      std::fprintf(stderr, "FATAL: executor mismatch on fig10 query %zu\n",
                   i);
      std::exit(1);
    }
  }
}

// The seed materializing interpreter over the fig10 workload: the "before"
// side of the pipelined-executor speedup claim.
void BM_Fig10Reference(benchmark::State& state) {
  Fig10Workload& w = SharedFig10();
  for (auto _ : state) {
    for (size_t i = 0; i < w.queries.size(); ++i) {
      engine::ReferenceExecutor exec(&w.db, w.params);
      auto result = exec.ExecuteQuery(w.queries[i], w.plans[i]);
      benchmark::DoNotOptimize(result);
    }
  }
}
BENCHMARK(BM_Fig10Reference);

// The pipelined batch executor over the same workload, at the batch size
// given by the benchmark argument.
void BM_Fig10Batched(benchmark::State& state) {
  Fig10Workload& w = SharedFig10();
  engine::ExecOptions options;
  options.batch_size = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    for (size_t i = 0; i < w.queries.size(); ++i) {
      engine::Executor exec(&w.db, w.params, options);
      auto result = exec.ExecuteQuery(w.queries[i], w.plans[i]);
      benchmark::DoNotOptimize(result);
    }
  }
}
BENCHMARK(BM_Fig10Batched)->Arg(1)->Arg(64)->Arg(1024)->Arg(4096);

void BM_ExecuteLookup(benchmark::State& state) {
  xml::Document doc = imdb::Generate(SmallScale());
  xs::Schema config = ps::AllInlined(bench::AnnotatedImdb());
  auto mapping = bench::Unwrap(map::MapSchema(config), "map");
  store::Database db(mapping.catalog());
  bench::Check(store::ShredDocument(doc, mapping, &db), "shred");
  auto query = bench::Unwrap(xq::ParseQuery(imdb::QueryText("Q1")), "parse");
  auto rq = bench::Unwrap(xlat::TranslateQuery(query, mapping), "translate");
  opt::Optimizer optimizer(mapping.catalog());
  auto planned = bench::Unwrap(optimizer.PlanQuery(rq), "plan");
  std::vector<opt::PhysicalPlanPtr> plans;
  for (const auto& b : planned.blocks) plans.push_back(b.plan);
  std::map<std::string, Value> params = {{"c1", Value::Str("title1")}};
  for (auto _ : state) {
    engine::Executor exec(&db, params);
    auto result = exec.ExecuteQuery(rq, plans);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_ExecuteLookup);

}  // namespace

// Custom main instead of BENCHMARK_MAIN so the correctness gate always runs
// and the obs report can be written after the benchmarks.
int main(int argc, char** argv) {
  // Strip --obs-out before google-benchmark sees the arguments (it rejects
  // flags it does not know).
  std::string obs_out;
  int out_argc = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--obs-out=", 10) == 0) {
      obs_out = argv[i] + 10;
    } else {
      argv[out_argc++] = argv[i];
    }
  }
  argc = out_argc;

  // Ambient metrics only when a report was asked for: the per-operator
  // timing wrappers activate whenever a registry is installed, and that
  // overhead must not leak into the default benchmark numbers.
  std::optional<bench::ObsSession> obs_session;
  if (!obs_out.empty()) {
    obs_session.emplace("micro_engine");
    // The trajectory signal is the histograms/counters; cap the raw trace
    // so thousands of benchmark iterations don't bloat the report (the
    // first iterations stay inspectable).
    obs_session->registry()->set_max_spans(2048);
    // Stamp the engine configuration the unparameterized benchmarks and the
    // correctness gate ran with (BM_Fig10Batched additionally sweeps its
    // batch-size argument); report consumers need it to compare runs.
    bench::StampEngineMeta(&*obs_session, engine::ExecOptions{});
  }

  VerifyFig10();

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  if (!obs_out.empty()) obs_session->WriteJson(obs_out);
  return 0;
}
