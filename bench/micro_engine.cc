// Google-benchmark microbenchmarks of the substrate components: XML
// parsing, validation, shredding, reconstruction, and query execution.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "engine/executor.h"
#include "imdb/imdb.h"
#include "mapping/mapping.h"
#include "optimizer/optimizer.h"
#include "storage/reconstruct.h"
#include "storage/shredder.h"
#include "translate/translate.h"
#include "xml/parser.h"
#include "xml/writer.h"
#include "xquery/parser.h"
#include "xschema/validator.h"

namespace {

using namespace legodb;

imdb::ImdbScale SmallScale() {
  imdb::ImdbScale scale;
  scale.shows = 100;
  scale.directors = 40;
  scale.actors = 60;
  return scale;
}

void BM_XmlParse(benchmark::State& state) {
  std::string text = xml::Serialize(imdb::Generate(SmallScale()));
  for (auto _ : state) {
    auto doc = xml::ParseDocument(text);
    benchmark::DoNotOptimize(doc);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_XmlParse);

void BM_Validate(benchmark::State& state) {
  xml::Document doc = imdb::Generate(SmallScale());
  xs::Schema schema = bench::RawImdb();
  for (auto _ : state) {
    Status st = xs::ValidateDocument(doc, schema);
    benchmark::DoNotOptimize(st);
  }
}
BENCHMARK(BM_Validate);

void BM_Shred(benchmark::State& state) {
  xml::Document doc = imdb::Generate(SmallScale());
  xs::Schema config = ps::Normalize(bench::AnnotatedImdb());
  auto mapping = bench::Unwrap(map::MapSchema(config), "map");
  for (auto _ : state) {
    store::Database db(mapping.catalog());
    Status st = store::ShredDocument(doc, mapping, &db);
    benchmark::DoNotOptimize(st);
  }
}
BENCHMARK(BM_Shred);

void BM_Reconstruct(benchmark::State& state) {
  xml::Document doc = imdb::Generate(SmallScale());
  xs::Schema config = ps::Normalize(bench::AnnotatedImdb());
  auto mapping = bench::Unwrap(map::MapSchema(config), "map");
  store::Database db(mapping.catalog());
  bench::Check(store::ShredDocument(doc, mapping, &db), "shred");
  for (auto _ : state) {
    auto rebuilt = store::ReconstructDocument(&db, mapping);
    benchmark::DoNotOptimize(rebuilt);
  }
}
BENCHMARK(BM_Reconstruct);

void BM_ExecuteLookup(benchmark::State& state) {
  xml::Document doc = imdb::Generate(SmallScale());
  xs::Schema config = ps::AllInlined(bench::AnnotatedImdb());
  auto mapping = bench::Unwrap(map::MapSchema(config), "map");
  store::Database db(mapping.catalog());
  bench::Check(store::ShredDocument(doc, mapping, &db), "shred");
  auto query = bench::Unwrap(xq::ParseQuery(imdb::QueryText("Q1")), "parse");
  auto rq = bench::Unwrap(xlat::TranslateQuery(query, mapping), "translate");
  opt::Optimizer optimizer(mapping.catalog());
  auto planned = bench::Unwrap(optimizer.PlanQuery(rq), "plan");
  std::vector<opt::PhysicalPlanPtr> plans;
  for (const auto& b : planned.blocks) plans.push_back(b.plan);
  std::map<std::string, Value> params = {{"c1", Value::Str("title1")}};
  for (auto _ : state) {
    engine::Executor exec(&db, params);
    auto result = exec.ExecuteQuery(rq, plans);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_ExecuteLookup);

}  // namespace

BENCHMARK_MAIN();
