// Reproduces Figure 14: cost of an all-inlined vs a repetition-split
// configuration while the total number of <aka> elements grows, for a
// lookup query (alternate titles of one show) and a publishing query
// (all shows). The split rewrites Aka{1,10} == Aka, Aka{0,9} and inlines
// the first occurrence into the Show table.
//
// Paper reference: the split wins for both queries; the reduction is larger
// for the publishing query (the lookup pushes its title selection before
// the show-aka join); the gap narrows as the Aka table outgrows Show.
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "common/table_printer.h"

using namespace legodb;

namespace {

// The paper's Figure-2(b) Show type has Aka{1,10}; Appendix B relaxed it to
// {0,*}. The split needs min >= 1, so this experiment uses the Figure-2(b)
// bound.
xs::Schema RawImdbAkaRequired() {
  std::string text = imdb::SchemaText();
  size_t pos = text.find("aka[ String ]{0,10}");
  if (pos == std::string::npos) {
    std::fprintf(stderr, "FATAL: aka pattern not found in schema\n");
    std::exit(1);
  }
  text.replace(pos, 19, "aka[ String ]{1,10}");
  return bench::Unwrap(xs::ParseSchema(text), "parse aka{1,10} schema");
}

double LookupCost(const xs::Schema& config, const opt::CostParams& params) {
  core::Workload w;
  bench::Check(w.Add("aka_lookup",
                     R"(FOR $v IN document("imdbdata")/imdb/show
                        WHERE $v/title = c1
                        RETURN $v/aka)",
                     1.0),
               "parse aka lookup");
  return bench::Unwrap(core::CostSchema(config, w, params), "cost").total;
}

}  // namespace

int main() {
  std::printf(
      "Figure 14: all-inlined vs repetition-split cost while the total\n"
      "number of akas grows (34798 shows; split = first aka inlined).\n\n");
  xs::Schema raw = RawImdbAkaRequired();
  opt::CostParams params;
  // The paper's lookup analysis pushes the title selection ("especially in
  // the presence of appropriate indexes", Section 5.3(b)); give the
  // selection columns indexes so both configurations probe rather than scan.
  params.index_on_predicates = true;

  TablePrinter table({"total akas", "lookup inlined", "lookup split",
                      "split/inlined", "publish inlined", "publish split",
                      "split/inlined"});
  for (int64_t akas : {40000L, 80000L, 160000L, 320000L, 640000L}) {
    std::string extra = "([\"imdb\";\"show\";\"aka\"], STcnt(" +
                        std::to_string(akas) + "));\n";
    xs::StatsSet stats = bench::ImdbStats(extra);
    xs::Schema inlined = bench::AllInlinedConfig(raw, stats);
    // Split the Aka repetition on the annotated configuration: the split
    // carries the occurrence statistics over (first occurrence required,
    // remainder averages count-1), so the rest-of-akas table shrinks.
    xs::Schema split = ps::AllInlined(bench::ApplyFirst(
        inlined, core::Transformation::Kind::kRepetitionSplit, "Show"));

    double li = LookupCost(inlined, params);
    double ls = LookupCost(split, params);
    double pi = bench::QueryCost(inlined, "Q16", params);
    double psplit = bench::QueryCost(split, "Q16", params);
    table.AddRow({std::to_string(akas), FormatDouble(li, 0),
                  FormatDouble(ls, 0), FormatDouble(ls / li),
                  FormatDouble(pi, 0), FormatDouble(psplit, 0),
                  FormatDouble(psplit / pi)});
  }
  table.Print();
  return 0;
}
