// Ablation: search-strategy variants proposed by the paper's Section 7 —
// beam search ("dynamic programming search strategies"), the early-stop
// threshold (Section 5.2's observation that improvements taper), and the
// cost-estimate cache ("reuse partial results from one evaluation to the
// next"). Reports final cost, iterations and optimizer work for each
// variant on the lookup workload.
#include <chrono>
#include <cstdio>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "core/search.h"

using namespace legodb;

int main() {
  std::printf(
      "Ablation: search strategies on the IMDB lookup workload.\n\n");
  xs::Schema annotated = bench::AnnotatedImdb();
  core::Workload lookup = bench::Unwrap(imdb::MakeWorkload("lookup"), "wl");
  opt::CostParams params;

  struct Variant {
    const char* name;
    core::SearchOptions options;
  };
  core::SearchOptions base = core::GreedySoOptions();
  core::SearchOptions no_cache = base;
  no_cache.cache_query_costs = false;
  core::SearchOptions beam3 = base;
  beam3.beam_width = 3;
  core::SearchOptions threshold = base;
  threshold.min_relative_improvement = 0.05;
  core::SearchOptions structural = base;
  structural.transforms.union_distribute = true;
  structural.transforms.repetition_split = true;
  structural.transforms.wildcard_materialize = true;
  structural.transforms.wildcard_tags = {"nyt"};

  Variant variants[] = {
      {"greedy-so (paper)", base},
      {"greedy-so, no cost cache", no_cache},
      {"beam width 3", beam3},
      {"5% improvement threshold", threshold},
      {"greedy-so + structural moves", structural},
  };

  TablePrinter table({"variant", "final cost", "iterations",
                      "optimizer calls", "cache hits", "wall ms"});
  for (const Variant& v : variants) {
    auto start = std::chrono::steady_clock::now();
    core::SearchResult r = bench::Unwrap(
        core::GreedySearch(annotated, lookup, params, v.options), "search");
    auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                  std::chrono::steady_clock::now() - start)
                  .count();
    table.AddRow({v.name, FormatDouble(r.best_cost, 0),
                  std::to_string(r.trace.size() - 1),
                  std::to_string(r.stats.cost_evaluations),
                  std::to_string(r.stats.cache_hits),
                  std::to_string(ms)});
  }
  table.Print();
  return 0;
}
