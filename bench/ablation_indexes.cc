// Ablation (design-choice study, not a paper artifact): how the
// availability of indexes on selection columns changes the cost landscape
// and the greedy search's inlining decisions. Section 5.3(b) of the paper
// observes that highly selective predicates make lean, non-inlined
// relations attractive "especially in the presence of appropriate indexes";
// this bench quantifies that in our cost model.
#include <cstdio>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "core/search.h"

using namespace legodb;

int main() {
  std::printf(
      "Ablation: effect of predicate-column indexes on lookup costs and on\n"
      "the configuration chosen by the greedy search.\n\n");
  xs::Schema annotated = bench::AnnotatedImdb();
  core::Workload lookup = bench::Unwrap(imdb::MakeWorkload("lookup"), "wl");

  TablePrinter table({"indexes on predicates", "ALL-INLINED cost",
                      "searched cost", "searched tables",
                      "search iterations"});
  for (bool with_indexes : {false, true}) {
    opt::CostParams params;
    params.index_on_predicates = with_indexes;
    xs::Schema inlined = ps::AllInlined(annotated);
    double inlined_cost =
        bench::Unwrap(core::CostSchema(inlined, lookup, params), "cost")
            .total;
    core::SearchResult sr = bench::Unwrap(
        core::GreedySearch(annotated, lookup, params,
                           core::GreedySoOptions()),
        "search");
    table.AddRow({with_indexes ? "yes" : "no", FormatDouble(inlined_cost, 0),
                  FormatDouble(sr.best_cost, 0),
                  std::to_string(sr.best_schema.size()),
                  std::to_string(sr.trace.size() - 1)});
  }
  table.Print();
  std::printf(
      "\nWith predicate indexes, selections probe instead of scan, so wide\n"
      "inlined relations lose their scan penalty and the gap between\n"
      "ALL-INLINED and the searched configuration narrows.\n");
  return 0;
}
