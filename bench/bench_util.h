#ifndef LEGODB_BENCH_BENCH_UTIL_H_
#define LEGODB_BENCH_BENCH_UTIL_H_

// Shared helpers for the paper-reproduction benchmark harnesses: builders
// for the three storage configurations of Figure 4 and statistics variants
// for the parameter sweeps.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/cost.h"
#include "core/transforms.h"
#include "engine/executor.h"
#include "imdb/imdb.h"
#include "obs/obs.h"
#include "pschema/pschema.h"
#include "xschema/annotate.h"
#include "xschema/schema_parser.h"

namespace legodb::bench {

inline void Check(const Status& st, const char* what) {
  if (!st.ok()) {
    std::fprintf(stderr, "FATAL %s: %s\n", what, st.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T Unwrap(StatusOr<T> v, const char* what) {
  if (!v.ok()) {
    std::fprintf(stderr, "FATAL %s: %s\n", what, v.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(v).value();
}

// Best-effort git revision of the working tree ("describe --always
// --dirty"), or "unknown" outside a checkout / without git. Shelling out is
// fine here: this runs once per bench process, not per measurement.
inline std::string GitDescribe() {
  std::string out;
#if !defined(_WIN32)
  if (FILE* pipe =
          popen("git describe --always --dirty 2>/dev/null", "r")) {
    char buf[128];
    while (fgets(buf, sizeof(buf), pipe) != nullptr) out += buf;
    pclose(pipe);
  }
#endif
  while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) {
    out.pop_back();
  }
  return out.empty() ? "unknown" : out;
}

inline const char* BuildType() {
#ifdef NDEBUG
  return "release";
#else
  return "debug";
#endif
}

// Installs an obs::Registry for the harness's lifetime, so spans / counters
// / histograms recorded anywhere in the pipeline (search iterations,
// optimizer planning time, translation time) accumulate here. WriteJson
// dumps the obs::Report in the same format `legodb --metrics-out` emits —
// BENCH_*.json trajectories get phase-level timings, not just totals.
//
// Every report is stamped with run provenance (workload name, git revision,
// build type, hardware threads) so `bench_report` can merge and compare
// trajectories across commits; SetMeta adds or overrides entries.
class ObsSession {
 public:
  explicit ObsSession(std::string workload = "") : scope_(&registry_) {
    SetMeta("workload", std::move(workload));
    SetMeta("git", GitDescribe());
    SetMeta("build", BuildType());
    SetMeta("hardware_threads",
            std::to_string(std::thread::hardware_concurrency()));
  }

  obs::Registry* registry() { return &registry_; }

  void SetMeta(const std::string& key, std::string value) {
    for (auto& kv : meta_) {
      if (kv.first == key) {
        kv.second = std::move(value);
        return;
      }
    }
    meta_.emplace_back(key, std::move(value));
  }

  obs::Report Snapshot() const {
    obs::Report report = registry_.Snapshot();
    for (const auto& kv : meta_) report.SetMeta(kv.first, kv.second);
    return report;
  }

  void WriteJson(const std::string& path) const {
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "FATAL: cannot write %s\n", path.c_str());
      std::exit(1);
    }
    out << Snapshot().ToJson();
    std::printf("metrics report written to %s\n", path.c_str());
  }

 private:
  obs::Registry registry_;
  obs::ScopedRegistry scope_;
  std::vector<std::pair<std::string, std::string>> meta_;
};

// Stamps the engine configuration an engine-driving bench ran with —
// batch_size, vector_size, and the client thread count(s) — so
// `bench_report` consumers can compare trajectories like-for-like. Every
// driver that executes queries should call this instead of hand-stamping a
// subset (micro_engine used to stamp vector_size while calibration stamped
// nothing). `threads` is free-form so sweep drivers can record "1,4,8".
inline void StampEngineMeta(ObsSession* session,
                            const engine::ExecOptions& options,
                            const std::string& threads = "1") {
  session->SetMeta("batch_size", std::to_string(options.batch_size));
  session->SetMeta("vector_size",
                   std::to_string(options.EffectiveVectorSize()));
  session->SetMeta("threads", threads);
}

// Raw IMDB schema (un-annotated).
inline xs::Schema RawImdb() {
  return Unwrap(imdb::Schema(), "parse IMDB schema");
}

// Appendix-A statistics, optionally extended with extra entries in the same
// notation (later entries override earlier ones per path+kind).
inline xs::StatsSet ImdbStats(const std::string& extra = "") {
  return Unwrap(xs::ParseStats(std::string(imdb::StatsText()) + extra),
                "parse IMDB stats");
}

inline xs::Schema AnnotatedImdb(const std::string& extra_stats = "") {
  return xs::AnnotateSchema(RawImdb(), ImdbStats(extra_stats));
}

// Applies the first enumerated transformation of `kind` (optionally
// restricted to type `in_type`); aborts if none applies.
inline xs::Schema ApplyFirst(const xs::Schema& schema,
                             core::Transformation::Kind kind,
                             const std::string& in_type = "",
                             const std::string& tag = "") {
  core::TransformOptions options;
  options.inline_types = false;
  options.outline_elements = false;
  options.union_distribute = kind == core::Transformation::Kind::kUnionDistribute;
  options.union_to_options = kind == core::Transformation::Kind::kUnionToOptions;
  options.repetition_split = kind == core::Transformation::Kind::kRepetitionSplit;
  options.repetition_merge = kind == core::Transformation::Kind::kRepetitionMerge;
  options.wildcard_materialize =
      kind == core::Transformation::Kind::kWildcardMaterialize;
  if (!tag.empty()) options.wildcard_tags.push_back(tag);
  for (const auto& t : core::EnumerateTransformations(schema, options)) {
    if (t.kind != kind) continue;
    if (!in_type.empty() && t.type_name != in_type) continue;
    return Unwrap(core::ApplyTransformation(schema, t), "apply transformation");
  }
  std::fprintf(stderr, "FATAL: no applicable transformation found\n");
  std::exit(1);
}

// --- The three storage maps of Figure 4 -----------------------------------
//
// Configurations are built structurally from the raw schema and annotated
// with statistics as the final step, so every occurrence count / branch
// presence is statistics-driven.

// Map 1 (Fig. 4(a)): everything inlined, unions flattened to nullable
// columns — the inline-as-much-as-possible heuristic of [19].
inline xs::Schema AllInlinedConfig(const xs::Schema& raw,
                                   const xs::StatsSet& stats) {
  return xs::AnnotateSchema(ps::AllInlined(raw), stats);
}

// Map 2 (Fig. 4(b)): all-inlined, with the review wildcard partitioned into
// an <nyt> reviews table and an others table. Built by materializing the
// tag inside the Reviews type and then distributing the resulting union
// across the reviews element, so each review lands in exactly one of two
// tables (the paper's NYT'Reviews / Reviews pair).
inline xs::Schema WildcardConfig(const xs::Schema& raw,
                                 const xs::StatsSet& stats,
                                 const std::string& tag = "nyt") {
  xs::Schema base = ps::AllInlined(raw);
  xs::Schema materialized = ApplyFirst(
      base, core::Transformation::Kind::kWildcardMaterialize, "", tag);
  xs::Schema distributed = ApplyFirst(
      materialized, core::Transformation::Kind::kUnionDistribute, "Reviews");
  return xs::AnnotateSchema(distributed, stats);
}

// Map 3 (Fig. 4(c)): all-inlined, with the (Movie | TV) union distributed —
// Show horizontally partitioned into Show_Part1 / Show_Part2.
inline xs::Schema UnionDistributedConfig(const xs::Schema& raw,
                                         const xs::StatsSet& stats) {
  xs::Schema normalized = ps::Normalize(raw);
  xs::Schema distributed = ApplyFirst(
      normalized, core::Transformation::Kind::kUnionDistribute, "Show");
  xs::Schema inlined = ps::AllInlined(distributed, /*flatten_unions=*/false);
  return xs::AnnotateSchema(inlined, stats);
}

// Cost of one named IMDB query under a configuration.
inline double QueryCost(const xs::Schema& config, const std::string& qname,
                        const opt::CostParams& params) {
  core::Workload w;
  Check(w.Add(qname, imdb::QueryText(qname), 1.0), "parse query");
  return Unwrap(core::CostSchema(config, w, params), "cost query").total;
}

}  // namespace legodb::bench

#endif  // LEGODB_BENCH_BENCH_UTIL_H_
