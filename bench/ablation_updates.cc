// Ablation (Section-7 extension): how update operations in the workload
// shift the storage design. Sweeps the update weight mixed into the lookup
// workload and reports the cost of ALL-INLINED, ALL-OUTLINED and the
// searched configuration, plus how many types the searched design keeps.
//
// Observed shape: subtree inserts (a whole show with its akas/reviews)
// favor inlined designs — one wide row beats many narrow rows each paying
// per-index maintenance — so the searched configuration inlines more as
// updates dominate (table count drops), and ALL-OUTLINED falls far behind.
// At extreme update weights the greedy search (which cannot inline
// multi-valued content) lands slightly above ALL-INLINED, showing the cost
// ceiling of the restricted move set.
#include <cstdio>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "core/search.h"

using namespace legodb;

int main() {
  std::printf(
      "Ablation: update operations in the workload (insert show / insert\n"
      "review / insert played credit), sweeping the update share.\n\n");
  xs::Schema annotated = bench::AnnotatedImdb();
  core::Workload lookup = bench::Unwrap(imdb::MakeWorkload("lookup"), "wl");
  opt::CostParams params;

  TablePrinter table({"update weight", "ALL-INLINED", "ALL-OUTLINED",
                      "searched", "searched/inlined", "searched tables"});
  for (double update_weight : {0.0, 10.0, 100.0, 1000.0, 10000.0}) {
    core::Workload mixed = lookup;
    if (update_weight > 0) {
      mixed.AddUpdate("insert_show", core::UpdateOp::Kind::kInsert,
                      "imdb/show", update_weight);
      mixed.AddUpdate("insert_review", core::UpdateOp::Kind::kInsert,
                      "imdb/show/reviews", update_weight * 3);
      mixed.AddUpdate("insert_played", core::UpdateOp::Kind::kInsert,
                      "imdb/actor/played", update_weight * 3);
    }
    double inlined = bench::Unwrap(
        core::CostSchema(ps::AllInlined(annotated), mixed, params), "cost")
                         .total;
    double outlined = bench::Unwrap(
        core::CostSchema(ps::AllOutlined(annotated), mixed, params), "cost")
                          .total;
    core::SearchResult searched = bench::Unwrap(
        core::GreedySearch(annotated, mixed, params, core::GreedySoOptions()),
        "search");
    table.AddRow({FormatDouble(update_weight, 0), FormatDouble(inlined, 0),
                  FormatDouble(outlined, 0),
                  FormatDouble(searched.best_cost, 0),
                  FormatDouble(searched.best_cost / inlined),
                  std::to_string(searched.best_schema.size())});
  }
  table.Print();
  return 0;
}
