// Parallel candidate-evaluation microbenchmark: wall time of the Fig. 10
// greedy-so run (lookup workload) as a function of the worker-thread count,
// so the speedup trajectory of the candidate-evaluation pipeline can be
// tracked across PRs. Verifies along the way that every thread count
// produces the identical search result (schema fingerprint, cost, trace).
//
// With a file argument the obs metrics (including the per-iteration
// `search.parallel_speedup` histogram of the last run) are written there
// as JSON, e.g. `micro_search_parallel BENCH_micro_search_parallel.json`.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "core/parallel.h"
#include "core/search.h"
#include "obs/obs.h"
#include "xschema/fingerprint.h"

using namespace legodb;

int main(int argc, char** argv) {
  bench::ObsSession obs_session("micro_search_parallel");
  std::printf(
      "Greedy-so search on the IMDB lookup workload: wall time vs worker\n"
      "threads (hardware concurrency: %d). Identical results at every\n"
      "thread count; speedup is relative to threads=1.\n\n",
      core::ResolveThreads(0));
  xs::Schema annotated = bench::AnnotatedImdb();
  core::Workload workload =
      bench::Unwrap(imdb::MakeWorkload("lookup"), "workload");
  opt::CostParams params;

  TablePrinter table({"threads", "wall_ms", "speedup", "cost", "iterations",
                      "hit_rate"});
  double base_ms = 0;
  uint64_t base_fp = 0;
  double base_cost = 0;
  for (int threads : {1, 2, 4, 8}) {
    core::SearchOptions options = core::GreedySoOptions();
    options.threads = threads;
    int64_t t0 = obs::NowNanos();
    core::SearchResult result = bench::Unwrap(
        core::GreedySearch(annotated, workload, params, options), "search");
    double wall_ms = static_cast<double>(obs::NowNanos() - t0) / 1e6;
    uint64_t fp = xs::FingerprintSchema(result.best_schema);
    if (threads == 1) {
      base_ms = wall_ms;
      base_fp = fp;
      base_cost = result.best_cost;
    } else if (fp != base_fp || result.best_cost != base_cost) {
      std::fprintf(stderr,
                   "FATAL: threads=%d diverged from the serial result\n",
                   threads);
      return 1;
    }
    double hits = static_cast<double>(result.stats.cache_hits);
    double lookups =
        hits + static_cast<double>(result.stats.cost_evaluations);
    table.AddRow({std::to_string(threads), FormatDouble(wall_ms, 1),
                  FormatDouble(base_ms / wall_ms, 2) + "x",
                  FormatDouble(result.best_cost, 1),
                  std::to_string(result.trace.size() - 1),
                  FormatDouble(lookups == 0 ? 0 : hits / lookups, 3)});
    obs::Observe("bench.search_wall_ms", wall_ms);
  }
  table.Print();
  if (argc > 1) obs_session.WriteJson(argv[1]);
  return 0;
}
