// Google-benchmark microbenchmarks of the mapping-engine components: schema
// mapping, query translation, optimizer planning, transformation
// enumeration, and one full GetPSchemaCost evaluation — the inner-loop
// operations whose latency bounds greedy-search time (the paper reports
// ~3 seconds per iteration on 2001 hardware).
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "core/cost.h"
#include "core/transforms.h"
#include "imdb/imdb.h"
#include "mapping/mapping.h"
#include "optimizer/optimizer.h"
#include "translate/translate.h"
#include "xquery/parser.h"

namespace {

using namespace legodb;

void BM_MapSchema(benchmark::State& state) {
  xs::Schema config = ps::Normalize(bench::AnnotatedImdb());
  for (auto _ : state) {
    auto mapping = map::MapSchema(config);
    benchmark::DoNotOptimize(mapping);
  }
}
BENCHMARK(BM_MapSchema);

void BM_TranslateLookup(benchmark::State& state) {
  xs::Schema config = ps::Normalize(bench::AnnotatedImdb());
  auto mapping = bench::Unwrap(map::MapSchema(config), "map");
  auto query = bench::Unwrap(xq::ParseQuery(imdb::QueryText("Q13")), "parse");
  for (auto _ : state) {
    auto rq = xlat::TranslateQuery(query, mapping);
    benchmark::DoNotOptimize(rq);
  }
}
BENCHMARK(BM_TranslateLookup);

void BM_PlanJoinQuery(benchmark::State& state) {
  xs::Schema config = ps::Normalize(bench::AnnotatedImdb());
  auto mapping = bench::Unwrap(map::MapSchema(config), "map");
  auto query = bench::Unwrap(xq::ParseQuery(imdb::QueryText("Q13")), "parse");
  auto rq = bench::Unwrap(xlat::TranslateQuery(query, mapping), "translate");
  opt::Optimizer optimizer(mapping.catalog());
  for (auto _ : state) {
    auto planned = optimizer.PlanQuery(rq);
    benchmark::DoNotOptimize(planned);
  }
}
BENCHMARK(BM_PlanJoinQuery);

void BM_PlanPublishQuery(benchmark::State& state) {
  xs::Schema config = ps::AllOutlined(bench::AnnotatedImdb());
  auto mapping = bench::Unwrap(map::MapSchema(config), "map");
  auto query = bench::Unwrap(xq::ParseQuery(imdb::QueryText("Q16")), "parse");
  auto rq = bench::Unwrap(xlat::TranslateQuery(query, mapping), "translate");
  opt::Optimizer optimizer(mapping.catalog());
  for (auto _ : state) {
    auto planned = optimizer.PlanQuery(rq);
    benchmark::DoNotOptimize(planned);
  }
}
BENCHMARK(BM_PlanPublishQuery);

void BM_EnumerateTransformations(benchmark::State& state) {
  xs::Schema config = ps::AllOutlined(bench::AnnotatedImdb());
  core::TransformOptions options;
  options.inline_types = true;
  options.outline_elements = true;
  for (auto _ : state) {
    auto t = core::EnumerateTransformations(config, options);
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_EnumerateTransformations);

void BM_GetPSchemaCost(benchmark::State& state) {
  xs::Schema config = ps::AllInlined(bench::AnnotatedImdb());
  core::Workload workload =
      bench::Unwrap(imdb::MakeWorkload("lookup"), "workload");
  opt::CostParams params;
  for (auto _ : state) {
    auto cost = core::CostSchema(config, workload, params);
    benchmark::DoNotOptimize(cost);
  }
}
BENCHMARK(BM_GetPSchemaCost);

}  // namespace

BENCHMARK_MAIN();
