// Reproduces Figure 11: sensitivity of configurations to workload shifts.
// Workloads mix lookup and publish queries in ratio k:(1-k). Configurations
// C[0.25], C[0.50], C[0.75] are tuned by the greedy search at those mixes
// and then evaluated across the whole spectrum, alongside the ALL-INLINED
// heuristic configuration and OPT (a fresh search at every k).
//
// Paper reference: C[0.25] tracks OPT on the publish-heavy region and
// C[0.75] on the lookup-heavy region, crossing at k ~ 0.55 at a small
// angle; ALL-INLINED is 2x-5x worse than OPT.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "core/search.h"

using namespace legodb;

namespace {

core::Workload MixAt(double k) {
  static core::Workload lookup =
      bench::Unwrap(imdb::MakeWorkload("lookup"), "lookup");
  static core::Workload publish =
      bench::Unwrap(imdb::MakeWorkload("publish"), "publish");
  return core::Workload::Mix(lookup, publish, k);
}

}  // namespace

int main() {
  std::printf(
      "Figure 11: cost across the lookup-fraction spectrum k (cost of a\n"
      "configuration = weighted per-query cost of the k:(1-k) mix),\n"
      "normalized by OPT at each k.\n\n");
  xs::Schema annotated = bench::AnnotatedImdb();
  opt::CostParams params;

  auto tune = [&](double k) {
    return bench::Unwrap(core::GreedySearch(annotated, MixAt(k), params,
                                            core::GreedySoOptions()),
                         "greedy search")
        .best_schema;
  };
  xs::Schema c25 = tune(0.25);
  xs::Schema c50 = tune(0.50);
  xs::Schema c75 = tune(0.75);
  xs::Schema all_inlined = ps::AllInlined(annotated);

  std::vector<double> ks = {0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.55,
                            0.6, 0.7, 0.8, 0.9, 1.0};
  TablePrinter table({"k", "C[0.25]", "C[0.50]", "C[0.75]", "ALL-INLINED",
                      "OPT (abs cost)"});
  for (double k : ks) {
    core::Workload mix = MixAt(k);
    auto cost = [&](const xs::Schema& config) {
      return bench::Unwrap(core::CostSchema(config, mix, params), "cost")
          .total;
    };
    double opt = cost(tune(k));
    table.AddRow({FormatDouble(k), FormatDouble(cost(c25) / opt),
                  FormatDouble(cost(c50) / opt),
                  FormatDouble(cost(c75) / opt),
                  FormatDouble(cost(all_inlined) / opt),
                  FormatDouble(opt, 0)});
  }
  table.Print();
  std::printf(
      "\n(1.00 in a column means that configuration is optimal at that "
      "k.)\n");
  return 0;
}
