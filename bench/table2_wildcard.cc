// Reproduces Table 2: cost of "find the NYTimes reviews for all shows
// produced in 1999" on the all-inlined configuration (Query 1: join with
// the single reviews table, selecting on the tag column) vs the
// wildcard-transformed configuration (Query 2: join with the dedicated
// nyt_reviews table), while the NYT share of reviews and the total review
// count vary.
//
// Paper reference (Table 2):
//   total=10,000:  inlined 5.42 constant; wild 6.3 / 5.1 / 4.4
//   total=100,000: inlined 48 constant;   wild 26.3 / 15 / 9.4
// i.e. the inlined cost is independent of the NYT share, while the
// wildcard-transformed cost shrinks with the nyt_reviews table.
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "common/table_printer.h"

using namespace legodb;

int main() {
  std::printf(
      "Table 2: all-inlined vs wildcard-transformed cost for the NYT-review\n"
      "lookup, varying total reviews and NYT share.\n\n");
  xs::Schema raw = bench::RawImdb();
  opt::CostParams params;

  for (int64_t total : {10000L, 100000L}) {
    std::printf("total reviews = %lld\n", static_cast<long long>(total));
    TablePrinter table({"NYT share", "inlined", "wild", "wild/inlined"});
    for (double share : {0.5, 0.25, 0.125}) {
      int64_t nyt = static_cast<int64_t>(static_cast<double>(total) * share);
      std::string extra =
          "([\"imdb\";\"show\";\"reviews\"], STcnt(" + std::to_string(total) +
          "));\n([\"imdb\";\"show\";\"reviews\";\"nyt\"], STcnt(" +
          std::to_string(nyt) +
          "));\n([\"imdb\";\"show\";\"reviews\";\"nyt\"], STsize(800));\n" +
          "([\"imdb\";\"show\";\"reviews\";\"TILDE\"], STcnt(" +
          std::to_string(total - nyt) + "));\n";
      xs::StatsSet stats = bench::ImdbStats(extra);
      xs::Schema inlined = bench::AllInlinedConfig(raw, stats);
      xs::Schema wild = bench::WildcardConfig(raw, stats);
      double ci = bench::QueryCost(inlined, "S2Q1", params);
      double cw = bench::QueryCost(wild, "S2Q1", params);
      table.AddRow({FormatDouble(100 * share, 1) + "%", FormatDouble(ci, 0),
                    FormatDouble(cw, 0), FormatDouble(cw / ci)});
    }
    table.Print();
    std::printf("\n");
  }
  return 0;
}
