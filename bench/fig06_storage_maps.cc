// Reproduces Figure 6: estimated costs of the Section-2 queries Q1-Q4 and
// workloads W1/W2 on the three storage maps of Figure 4, normalized by
// Storage Map 1 (all-inlined).
//
// Paper reference (Figure 6):
//            Map1   Map2   Map3
//   Q1       1.00   0.83   1.27
//   Q2       1.00   0.50   0.48
//   Q3       1.00   1.00   0.17
//   Q4       1.00   1.19   0.40
//   W1       1.00   0.75   0.75
//   W2       1.00   1.01   0.40
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/table_printer.h"

using namespace legodb;

int main() {
  std::printf(
      "Figure 6: estimated costs of queries and workloads on the three\n"
      "storage maps of Figure 4, normalized by Storage Map 1.\n\n");

  // The paper assumes a noticeable NYT share among reviews; Appendix A has
  // no per-source counts, so we fix 25%% NYT (Table 2's middle setting).
  const char* extra_stats = R"(
(["imdb";"show";"reviews";"nyt"], STcnt(2812));
(["imdb";"show";"reviews";"nyt"], STsize(800));
(["imdb";"show";"reviews";"TILDE"], STcnt(8438));
)";
  xs::Schema raw = bench::RawImdb();
  xs::StatsSet stats = bench::ImdbStats(extra_stats);

  xs::Schema map1 = bench::AllInlinedConfig(raw, stats);
  xs::Schema map2 = bench::WildcardConfig(raw, stats);
  xs::Schema map3 = bench::UnionDistributedConfig(raw, stats);

  opt::CostParams params;
  const char* queries[] = {"S2Q1", "S2Q2", "S2Q3", "S2Q4"};
  std::vector<std::vector<double>> costs;  // per query: map1..map3
  for (const char* q : queries) {
    costs.push_back({bench::QueryCost(map1, q, params),
                     bench::QueryCost(map2, q, params),
                     bench::QueryCost(map3, q, params)});
  }
  // W1/W2 weights over Q1..Q4 (Section 2).
  double w1[] = {0.4, 0.4, 0.1, 0.1};
  double w2[] = {0.1, 0.1, 0.4, 0.4};
  std::vector<double> w1_cost(3, 0), w2_cost(3, 0);
  for (int m = 0; m < 3; ++m) {
    for (int q = 0; q < 4; ++q) {
      w1_cost[m] += w1[q] * costs[q][m];
      w2_cost[m] += w2[q] * costs[q][m];
    }
  }

  TablePrinter table({"", "Storage Map 1", "Storage Map 2", "Storage Map 3",
                      "paper (1/2/3)"});
  const char* paper[] = {"1.00 / 0.83 / 1.27", "1.00 / 0.50 / 0.48",
                         "1.00 / 1.00 / 0.17", "1.00 / 1.19 / 0.40",
                         "1.00 / 0.75 / 0.75", "1.00 / 1.01 / 0.40"};
  auto add_row = [&](const std::string& label,
                     const std::vector<double>& row, const char* ref) {
    table.AddRow({label, FormatDouble(row[0] / row[0]),
                  FormatDouble(row[1] / row[0]),
                  FormatDouble(row[2] / row[0]), ref});
  };
  for (int q = 0; q < 4; ++q) {
    add_row("Q" + std::to_string(q + 1), costs[q], paper[q]);
  }
  add_row("W1", w1_cost, paper[4]);
  add_row("W2", w2_cost, paper[5]);
  table.Print();
  return 0;
}
