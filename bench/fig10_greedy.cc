// Reproduces Figure 10: configuration cost after each greedy-search
// iteration, for the greedy-so (start all-outlined, apply inlinings) and
// greedy-si (start all-inlined, apply outlinings) variants, on the lookup
// workload (Q8, Q9, Q11, Q12, Q13) and the publish workload (Q15-Q17).
//
// Paper reference: greedy-so starts much higher (many joins) and converges
// in more iterations for publish than for lookup; greedy-si converges
// faster for publish; both variants end at similar costs.
// With a file argument, the obs metrics of the whole run (per-iteration
// search spans, optimizer/translate timings, cache counters) are written
// there as JSON, e.g. `fig10_greedy BENCH_fig10_greedy.json`; `--threads=N`
// sets the candidate-evaluation worker count (0 = hardware concurrency).
#include <cstdio>
#include <cstring>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "core/search.h"

using namespace legodb;

int main(int argc, char** argv) {
  bench::ObsSession obs_session("fig10_greedy");
  int threads = 0;  // 0 = hardware concurrency
  std::string json_out;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = std::atoi(argv[i] + 10);
    } else {
      json_out = argv[i];
    }
  }
  std::printf(
      "Figure 10: cost at each greedy iteration (normalized by the final\n"
      "cost of greedy-so on that workload), for lookup and publish "
      "workloads.\n\n");
  xs::Schema annotated = bench::AnnotatedImdb();
  opt::CostParams params;

  for (const char* wname : {"lookup", "publish"}) {
    core::Workload workload =
        bench::Unwrap(imdb::MakeWorkload(wname), "workload");
    core::SearchOptions so_options = core::GreedySoOptions();
    so_options.threads = threads;
    core::SearchOptions si_options = core::GreedySiOptions();
    si_options.threads = threads;
    core::SearchResult so = bench::Unwrap(
        core::GreedySearch(annotated, workload, params, so_options),
        "greedy-so");
    core::SearchResult si = bench::Unwrap(
        core::GreedySearch(annotated, workload, params, si_options),
        "greedy-si");
    double norm = so.best_cost;
    std::printf("workload: %s\n", wname);
    TablePrinter table({"iteration", "greedy-so", "greedy-si", "so move",
                        "si move"});
    size_t rows = std::max(so.trace.size(), si.trace.size());
    for (size_t i = 0; i < rows; ++i) {
      auto cell = [&](const core::SearchResult& r,
                      bool move) -> std::string {
        if (i >= r.trace.size()) return "";
        return move ? r.trace[i].applied
                    : FormatDouble(r.trace[i].cost / norm);
      };
      table.AddRow({std::to_string(i), cell(so, false), cell(si, false),
                    cell(so, true), cell(si, true)});
    }
    table.Print();
    std::printf(
        "final cost: greedy-so=%.1f (%zu tables), greedy-si=%.1f (%zu "
        "tables)\n\n",
        so.best_cost, ps::Normalize(so.best_schema).size(), si.best_cost,
        ps::Normalize(si.best_schema).size());
  }
  if (!json_out.empty()) obs_session.WriteJson(json_out);
  return 0;
}
