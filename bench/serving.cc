// Concurrent serving benchmark: hammers the fig10 workload through
// serving::QueryServer from N client threads and reports steady-state
// latency quantiles and throughput per thread count.
//
// The run has three parts:
//
//  1. a correctness gate — every workload query is executed uncached
//     (parse/translate/optimize/execute, the pre-serving path) and served
//     twice (cache miss, then cache hit); all three row sets must be
//     bit-identical or the bench exits nonzero before timing anything;
//  2. a canonicalization check — literal-variant queries (same shape,
//     different comparison literals) must collapse into one cache entry;
//  3. the timed sweep — for each thread count, N client threads issue
//     `--requests` round-robin requests against a prewarmed server and the
//     merged per-request latencies yield exact p50/p99 plus QPS.
//
// Latencies also feed the obs serving.request_ms histogram, and the sweep
// results are exported as gauges (serving.tN.{p50_ms,p99_ms,qps}), so a
// JSON output path captures the trajectory in the usual BENCH format:
//
// Requests rejected with Status::Unavailable (possible once
// --max-inflight bounds admission) are not dropped: they retry through
// serving::ServeWithRetry with bounded exponential backoff, and the sweep
// reports total retries in the obs meta (retries.tN) and gauges.
//
//   serving [--threads=1,4,8] [--requests=N] [--scale=N]
//           [--batch-size=N] [--cache-shards=N] [--cache-capacity=N]
//           [--max-inflight=N] [BENCH_out.json]
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "engine/executor.h"
#include "mapping/mapping.h"
#include "optimizer/optimizer.h"
#include "serving/retry.h"
#include "serving/server.h"
#include "storage/shredder.h"
#include "translate/translate.h"
#include "xquery/parser.h"

using namespace legodb;

namespace {

// The fig10 lookup + publish texts, plus literal variants of Q8 that must
// all canonicalize into one cached plan.
std::vector<std::string> WorkloadTexts() {
  std::vector<std::string> texts;
  for (const char* name :
       {"Q8", "Q9", "Q11", "Q12", "Q13", "Q15", "Q16", "Q17"}) {
    texts.push_back(imdb::QueryText(name));
  }
  for (int i = 1; i <= 4; ++i) {
    texts.push_back(
        "FOR $v IN document(\"imdbdata\")/imdb/actor WHERE $v/name = "
        "\"person" +
        std::to_string(i) + "\" RETURN $v/biography/birthday");
  }
  return texts;
}

std::map<std::string, Value> WorkloadParams() {
  return {{"c1", Value::Str("title1")},
          {"c2", Value::Str("title2")},
          {"c4", Value::Str("person3")}};
}

// The pre-serving path: full front end on every execution.
xq::ResultSet ExecuteUncached(store::Database* db, const map::Mapping& mapping,
                              const std::string& text,
                              const std::map<std::string, Value>& params,
                              const engine::ExecOptions& exec) {
  auto query = bench::Unwrap(xq::ParseQuery(text), "parse");
  auto rq = bench::Unwrap(xlat::TranslateQuery(query, mapping), "translate");
  opt::Optimizer optimizer(mapping.catalog());
  auto planned = bench::Unwrap(optimizer.PlanQuery(rq), "plan");
  std::vector<opt::PhysicalPlanPtr> plans;
  for (const auto& b : planned.blocks) plans.push_back(b.plan);
  engine::Executor executor(db, params, exec);
  return bench::Unwrap(executor.ExecuteQuery(rq, plans), "execute");
}

// Correctness gate: served results (miss and hit) must match the uncached
// path row for row. Runs before any timing; exits nonzero on mismatch.
void VerifyServing(store::Database* db, const map::Mapping& mapping,
                   const std::vector<std::string>& texts,
                   const engine::ExecOptions& exec) {
  serving::ServerOptions options;
  options.exec = exec;
  serving::QueryServer server(db, &mapping, options);
  bench::Check(server.Prewarm(), "prewarm");
  serving::RequestOptions request;
  request.params = WorkloadParams();
  for (const std::string& text : texts) {
    xq::ResultSet expected =
        ExecuteUncached(db, mapping, text, request.params, exec);
    auto miss = bench::Unwrap(server.Serve(text, request), "serve miss");
    auto hit = bench::Unwrap(server.Serve(text, request), "serve hit");
    if (!hit.cache_hit) {
      std::fprintf(stderr, "FATAL: second serve missed the plan cache\n");
      std::exit(1);
    }
    if (!(miss.result.rows == expected.rows) ||
        !(hit.result.rows == expected.rows)) {
      std::fprintf(stderr, "FATAL: served results differ from uncached\n");
      std::exit(1);
    }
  }
}

double Quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  double pos = q * static_cast<double>(sorted.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  size_t hi = std::min(lo + 1, sorted.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

}  // namespace

int main(int argc, char** argv) {
  bench::ObsSession obs_session("serving");
  std::vector<int> thread_counts = {1, 4, 8};
  int requests = 400;  // per client thread
  int scale = 1;
  size_t batch_size = 1024;
  size_t cache_shards = 8;
  size_t cache_capacity = 64;
  size_t max_inflight = 0;  // 0 = unbounded (no Unavailable, no retries)
  std::string json_out;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      thread_counts.clear();
      for (const char* p = argv[i] + 10; *p != '\0';) {
        thread_counts.push_back(std::atoi(p));
        while (*p != '\0' && *p != ',') ++p;
        if (*p == ',') ++p;
      }
    } else if (std::strncmp(argv[i], "--requests=", 11) == 0) {
      requests = std::atoi(argv[i] + 11);
    } else if (std::strncmp(argv[i], "--scale=", 8) == 0) {
      scale = std::atoi(argv[i] + 8);
    } else if (std::strncmp(argv[i], "--batch-size=", 13) == 0) {
      batch_size = static_cast<size_t>(std::atol(argv[i] + 13));
    } else if (std::strncmp(argv[i], "--cache-shards=", 15) == 0) {
      cache_shards = static_cast<size_t>(std::atol(argv[i] + 15));
    } else if (std::strncmp(argv[i], "--cache-capacity=", 17) == 0) {
      cache_capacity = static_cast<size_t>(std::atol(argv[i] + 17));
    } else if (std::strncmp(argv[i], "--max-inflight=", 15) == 0) {
      max_inflight = static_cast<size_t>(std::atol(argv[i] + 15));
    } else {
      json_out = argv[i];
    }
  }
  if (requests < 1) requests = 1;
  if (scale < 1) scale = 1;
  if (batch_size == 0) batch_size = 1;

  engine::ExecOptions exec;
  exec.batch_size = batch_size;
  {
    std::string threads_meta;
    for (int n : thread_counts) {
      if (!threads_meta.empty()) threads_meta += ",";
      threads_meta += std::to_string(n);
    }
    bench::StampEngineMeta(&obs_session, exec, threads_meta);
  }

  // Shred the fig10 database (all-inlined IMDB, micro_engine's scale).
  xs::Schema config = ps::AllInlined(bench::AnnotatedImdb());
  auto mapping = bench::Unwrap(map::MapSchema(config), "map");
  store::Database db(mapping.catalog());
  {
    imdb::ImdbScale data_scale;
    data_scale.shows = 300 * scale;
    data_scale.directors = 120 * scale;
    data_scale.actors = 400 * scale;
    xml::Document doc = imdb::Generate(data_scale);
    bench::Check(store::ShredDocument(doc, mapping, &db), "shred");
  }
  std::vector<std::string> texts = WorkloadTexts();

  VerifyServing(&db, mapping, texts, exec);
  std::printf(
      "serving bench: %zu workload texts, results bit-identical cached vs. "
      "uncached\n\n",
      texts.size());

  TablePrinter table({"threads", "requests", "p50_ms", "p99_ms", "qps",
                      "hit_rate", "fe_hit_us"});
  for (int nthreads : thread_counts) {
    if (nthreads < 1) continue;
    // Fresh server per thread count so the reported hit rate covers exactly
    // this sweep (one warmup pass populates the cache).
    serving::ServerOptions options;
    options.exec = exec;
    options.cache_shards = cache_shards;
    options.cache_capacity_per_shard = cache_capacity;
    options.max_inflight = max_inflight;
    serving::QueryServer server(&db, &mapping, options);
    bench::Check(server.Prewarm(), "prewarm");
    serving::RequestOptions request;
    request.params = WorkloadParams();
    for (const std::string& text : texts) {
      bench::Check(server.Serve(text, request).status(), "warmup");
    }

    std::vector<std::vector<double>> latencies(
        static_cast<size_t>(nthreads));
    std::vector<double> hit_front_end_ms(static_cast<size_t>(nthreads), 0);
    std::vector<int64_t> hit_counts(static_cast<size_t>(nthreads), 0);
    std::vector<serving::RetryStats> retry_stats(
        static_cast<size_t>(nthreads));
    int64_t sweep_start = obs::NowNanos();
    std::vector<std::thread> clients;
    for (int t = 0; t < nthreads; ++t) {
      clients.emplace_back([&, t] {
        // Share the session registry from every client thread so
        // histograms/counters aggregate across the whole fleet.
        obs::ScopedRegistry scoped(obs_session.registry());
        // Per-thread deterministic jitter stream: shed requests back off
        // instead of being dropped from the measurement.
        serving::RetryPolicy retry;
        retry.seed = static_cast<uint64_t>(t) + 1;
        std::vector<double>& lat = latencies[static_cast<size_t>(t)];
        lat.reserve(static_cast<size_t>(requests));
        for (int r = 0; r < requests; ++r) {
          const std::string& text =
              texts[static_cast<size_t>(t + r) % texts.size()];
          int64_t start = obs::NowNanos();
          auto response = serving::ServeWithRetry(
              &server, text, request, retry,
              &retry_stats[static_cast<size_t>(t)]);
          bench::Check(response.status(), "serve");
          lat.push_back(static_cast<double>(obs::NowNanos() - start) / 1e6);
          if (response->cache_hit) {
            hit_front_end_ms[static_cast<size_t>(t)] +=
                response->front_end_ms;
            ++hit_counts[static_cast<size_t>(t)];
          }
        }
      });
    }
    for (std::thread& c : clients) c.join();
    double sweep_s =
        static_cast<double>(obs::NowNanos() - sweep_start) / 1e9;

    std::vector<double> all;
    for (const auto& lat : latencies) {
      all.insert(all.end(), lat.begin(), lat.end());
    }
    std::sort(all.begin(), all.end());
    double p50 = Quantile(all, 0.50);
    double p99 = Quantile(all, 0.99);
    double qps = sweep_s == 0 ? 0 : static_cast<double>(all.size()) / sweep_s;
    serving::PlanCache::Stats stats = server.CacheStats();
    double fe_ms = 0;
    int64_t hits = 0;
    for (size_t t = 0; t < hit_counts.size(); ++t) {
      fe_ms += hit_front_end_ms[t];
      hits += hit_counts[t];
    }
    double fe_hit_us = hits == 0 ? 0 : fe_ms / static_cast<double>(hits) * 1e3;

    int64_t total_retries = 0;
    double total_backoff_ms = 0;
    for (const serving::RetryStats& rs : retry_stats) {
      total_retries += rs.retries;
      total_backoff_ms += rs.backoff_ms;
    }

    std::string prefix = "serving.t" + std::to_string(nthreads);
    obs::SetGauge(prefix + ".p50_ms", p50);
    obs::SetGauge(prefix + ".p99_ms", p99);
    obs::SetGauge(prefix + ".qps", qps);
    obs::SetGauge(prefix + ".hit_rate", stats.HitRate());
    obs::SetGauge(prefix + ".retries", static_cast<double>(total_retries));
    obs::SetGauge(prefix + ".retry_backoff_ms", total_backoff_ms);
    obs_session.SetMeta("retries.t" + std::to_string(nthreads),
                        std::to_string(total_retries));
    table.AddRow({std::to_string(nthreads), std::to_string(all.size()),
                  FormatDouble(p50, 3), FormatDouble(p99, 3),
                  FormatDouble(qps, 0), FormatDouble(stats.HitRate(), 3),
                  FormatDouble(fe_hit_us, 1)});
  }
  table.Print();
  std::printf(
      "\nfe_hit_us = mean front-end (canonicalize + cache lookup) per "
      "cache-hit request; parse/translate/optimize are skipped entirely on "
      "hits.\n");

  if (!json_out.empty()) obs_session.WriteJson(json_out);
  return 0;
}
