// Second-domain study (ours, not a paper artifact): the mapping engine on
// the XMark-style auction application. Shows that the chosen storage design
// is workload-specific on a schema shape quite different from IMDB (deep
// optional nesting, reference attributes, bid histories).
#include <cstdio>

#include "auction/auction.h"
#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "core/search.h"
#include "xschema/annotate.h"
#include "xschema/stats_collector.h"

using namespace legodb;

int main() {
  std::printf(
      "Auction domain: designs chosen for the bidding (lookup) and export\n"
      "(publishing) workloads, with cross-workload costs.\n\n");
  auction::AuctionScale scale;
  scale.people = 500;
  scale.open_auctions = 300;
  scale.closed_auctions = 200;
  xml::Document doc = auction::Generate(scale);
  xs::StatsCollector collector;
  collector.AddDocument(doc);
  xs::Schema annotated = xs::AnnotateSchema(
      bench::Unwrap(auction::Schema(), "schema"), collector.Finish());

  core::Workload bidding =
      bench::Unwrap(auction::MakeWorkload("bidding"), "bidding");
  core::Workload exporting =
      bench::Unwrap(auction::MakeWorkload("export"), "export");
  opt::CostParams params;

  core::SearchResult for_bidding = bench::Unwrap(
      core::GreedySearch(annotated, bidding, params, core::GreedySoOptions()),
      "search");
  core::SearchResult for_export = bench::Unwrap(
      core::GreedySearch(annotated, exporting, params,
                         core::GreedySoOptions()),
      "search");
  xs::Schema all_inlined = ps::AllInlined(annotated);

  auto cost = [&](const xs::Schema& config, const core::Workload& w) {
    return bench::Unwrap(core::CostSchema(config, w, params), "cost").total;
  };
  TablePrinter table({"configuration", "tables", "bidding cost",
                      "export cost"});
  table.AddRow({"tuned for bidding",
                std::to_string(for_bidding.best_schema.size()),
                FormatDouble(cost(for_bidding.best_schema, bidding), 1),
                FormatDouble(cost(for_bidding.best_schema, exporting), 1)});
  table.AddRow({"tuned for export",
                std::to_string(for_export.best_schema.size()),
                FormatDouble(cost(for_export.best_schema, bidding), 1),
                FormatDouble(cost(for_export.best_schema, exporting), 1)});
  table.AddRow({"ALL-INLINED", std::to_string(all_inlined.size()),
                FormatDouble(cost(all_inlined, bidding), 1),
                FormatDouble(cost(all_inlined, exporting), 1)});
  table.Print();

  std::printf("\nbidding-tuned physical schema:\n%s\n",
              for_bidding.best_schema.ToString().c_str());
  return 0;
}
