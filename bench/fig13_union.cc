// Reproduces Figure 13: cost of the union-transformed configuration (the
// (Movie|TV) union distributed over Show, Figure 4(c)) as a percentage of
// the all-inlined configuration (Figure 4(a)), for the queries of
// Figure 12: Q4, Q5, Q6, Q7, Q13, Q16, Q19.
//
// Paper reference: the union-transformed configuration is cheaper for ALL
// of these queries — including Q6, which touches both movie and TV content
// and is rewritten into a union of two narrower sub-queries.
#include <cstdio>

#include "bench/bench_util.h"
#include "common/table_printer.h"

using namespace legodb;

int main() {
  std::printf(
      "Figure 13: union-transformed configuration cost as %% of the\n"
      "all-inlined configuration.\n\n");
  xs::Schema raw = bench::RawImdb();
  xs::StatsSet stats = bench::ImdbStats();
  xs::Schema inlined = bench::AllInlinedConfig(raw, stats);
  xs::Schema distributed = bench::UnionDistributedConfig(raw, stats);

  opt::CostParams params;
  TablePrinter table(
      {"query", "what it touches", "union-transformed (% of all-inlined)"});
  struct Row {
    const char* name;
    const char* note;
  };
  const Row rows[] = {
      {"Q4", "description (TV only)"},
      {"Q5", "box_office (movies only)"},
      {"Q6", "description + box_office (both)"},
      {"Q7", "episodes (TV only)"},
      {"Q13", "actor/director/show join + akas"},
      {"Q16", "publish all shows"},
      {"Q19", "publish one show by title"},
  };
  for (const Row& r : rows) {
    double base, transformed;
    if (std::string(r.name) == "Q6") {
      // Q6 touches attributes from both branches. Under strict projection
      // no show has both, so — like the paper — we evaluate its rewriting
      // into the union of the two partial projections:
      //   Π{title,description}(σ) ∪ Π{title,box_office}(σ),
      // i.e. the sum of Q4 and Q5.
      base = bench::QueryCost(inlined, "Q4", params) +
             bench::QueryCost(inlined, "Q5", params);
      transformed = bench::QueryCost(distributed, "Q4", params) +
                    bench::QueryCost(distributed, "Q5", params);
    } else {
      base = bench::QueryCost(inlined, r.name, params);
      transformed = bench::QueryCost(distributed, r.name, params);
    }
    table.AddRow({r.name, r.note,
                  FormatDouble(100.0 * transformed / base, 1) + "%"});
  }
  table.Print();
  return 0;
}
