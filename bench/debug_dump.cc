// Developer utility: dumps the relational configurations and translated SQL
// for the three Figure-4 storage maps. Not a paper artifact, but useful for
// inspecting what the mapping engine produces.
#include <cstdio>

#include "bench/bench_util.h"
#include "optimizer/optimizer.h"
#include "translate/translate.h"
#include "xquery/parser.h"

using namespace legodb;

int main() {
  const char* extra_stats = R"(
(["imdb";"show";"reviews";"nyt"], STcnt(2812));
(["imdb";"show";"reviews";"TILDE"], STcnt(8438));
)";
  xs::Schema raw = bench::RawImdb();
  xs::StatsSet stats = bench::ImdbStats(extra_stats);

  struct Config {
    const char* name;
    xs::Schema schema;
  };
  Config configs[] = {
      {"MAP1 all-inlined", bench::AllInlinedConfig(raw, stats)},
      {"MAP2 wildcard", bench::WildcardConfig(raw, stats)},
      {"MAP3 union-distributed",
       bench::UnionDistributedConfig(raw, stats)},
  };
  for (const auto& c : configs) {
    std::printf("==== %s ====\n%s\n", c.name, c.schema.ToString().c_str());
    auto mapping = bench::Unwrap(map::MapSchema(c.schema), "map");
    std::printf("%s\n", mapping.catalog().ToDdl().c_str());
    for (const char* qn : {"S2Q1", "S2Q3"}) {
      auto q = bench::Unwrap(xq::ParseQuery(imdb::QueryText(qn)), "parse");
      auto rq = xlat::TranslateQuery(q, mapping);
      if (!rq.ok()) {
        std::printf("-- %s: %s\n", qn, rq.status().ToString().c_str());
        continue;
      }
      std::printf("-- %s (%zu blocks):\n%s\n", qn, rq->blocks.size(),
                  rq->ToSql().c_str());
      opt::Optimizer o(mapping.catalog());
      auto planned = o.PlanQuery(rq.value());
      if (planned.ok()) {
        std::printf("-- cost %.1f\n", planned->total_cost);
        for (size_t i = 0; i < planned->blocks.size(); ++i) {
          std::printf("%s",
                      planned->blocks[i]
                          .plan->ToString(rq->blocks[i])
                          .c_str());
        }
      }
    }
  }
  return 0;
}
