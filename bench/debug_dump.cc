// Developer utility: runs the mapping engine on the built-in IMDB workloads
// and dumps the instrumented greedy-search trajectory — the per-iteration
// explain table (cost, candidates, elapsed ms, chosen transformation), the
// span tree, and the metrics registry — plus the winning configuration's
// DDL. Not a paper artifact, but the quickest way to see where search time
// and cost go.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/explain.h"
#include "core/legodb.h"
#include "imdb/imdb.h"

using namespace legodb;

int main() {
  for (const char* wname : {"lookup", "publish"}) {
    core::MappingEngine engine;
    bench::Check(engine.LoadSchemaText(imdb::SchemaText()), "load schema");
    bench::Check(engine.LoadStatsText(imdb::StatsText()), "load stats");
    engine.SetWorkload(
        bench::Unwrap(imdb::MakeWorkload(wname), "make workload"));

    auto result = bench::Unwrap(
        engine.FindBestConfiguration(core::GreedySoOptions()), "search");
    std::printf("==== greedy-so on the IMDB %s workload ====\n", wname);
    std::printf("%s\n", core::SearchSummary(result.search).c_str());
    std::printf("%s\n", core::ExplainSearchTable(result.search).c_str());
    std::printf("-- trace --\n%s\n", result.report.SpanTable().c_str());
    std::printf("-- metrics --\n%s\n", result.report.MetricsTable().c_str());
    std::printf("-- winning configuration --\n%s\n",
                result.mapping.catalog().ToDdl().c_str());
  }
  return 0;
}
