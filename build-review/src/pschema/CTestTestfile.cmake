# CMake generated Testfile for 
# Source directory: /root/repo/src/pschema
# Build directory: /root/repo/build-review/src/pschema
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
