# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-review/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("obs")
subdirs("xml")
subdirs("xschema")
subdirs("pschema")
subdirs("relational")
subdirs("mapping")
subdirs("xquery")
subdirs("optimizer")
subdirs("translate")
subdirs("storage")
subdirs("engine")
subdirs("serving")
subdirs("core")
subdirs("imdb")
subdirs("auction")
