// bench_report — the bench-trajectory pipeline's merge/compare step.
//
// Usage:
//   bench_report merge OUT IN.json...    # merge obs reports into OUT
//   bench_report compare OLD NEW         # regression table OLD -> NEW
//
// `merge` validates every input as an obs::Report (exit 2 on unreadable or
// invalid JSON) and writes OUT as a single obs::Report whose blobs are the
// input reports verbatim, keyed by their stamped workload name (falling
// back to the file name); run provenance (git revision, build type) is
// lifted into the merged report's meta. OUT is therefore itself a valid
// obs::Report: `compare` accepts either merged files or single bench
// reports.
//
// `compare` prints one table of histogram p50/p99 shifts (Δ% computed from
// the log-bucket quantile estimates) and one of gauge shifts, for every
// metric present in both reports. Blobs are flattened first — a metric
// `exec.block_ms` inside blob `calibration` compares as
// `calibration.exec.block_ms` — so trajectories merged from several
// benches diff in one call. Exit 0 on success (comparison never fails the
// build by itself; thresholding is the caller's policy).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/table_printer.h"
#include "obs/obs.h"

using namespace legodb;

namespace {

constexpr int kExitConfigError = 2;

StatusOr<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

int Usage() {
  std::fprintf(stderr,
               "usage: bench_report merge OUT IN.json...\n"
               "       bench_report compare OLD.json NEW.json\n");
  return kExitConfigError;
}

// Strips directories and a trailing ".json" so files make usable blob keys.
std::string BaseName(const std::string& path) {
  size_t slash = path.find_last_of('/');
  std::string name = slash == std::string::npos ? path : path.substr(slash + 1);
  if (name.size() > 5 && name.compare(name.size() - 5, 5, ".json") == 0) {
    name.resize(name.size() - 5);
  }
  return name;
}

StatusOr<obs::Report> LoadReport(const std::string& path) {
  LEGODB_ASSIGN_OR_RETURN(std::string text, ReadFile(path));
  auto report = obs::ReportFromJson(text);
  if (!report.ok()) {
    return Status::InvalidArgument(path + ": " + report.status().ToString());
  }
  return report;
}

int Merge(const std::string& out_path,
          const std::vector<std::string>& inputs) {
  obs::Report merged;
  merged.SetMeta("tool", "bench_report");
  merged.SetMeta("inputs", std::to_string(inputs.size()));
  for (const std::string& path : inputs) {
    auto report = LoadReport(path);
    if (!report.ok()) {
      std::fprintf(stderr, "error: %s\n", report.status().ToString().c_str());
      return kExitConfigError;
    }
    std::string key = report->MetaValue("workload");
    if (key.empty()) key = BaseName(path);
    // Provenance should agree across the inputs of one trajectory point;
    // last writer wins, which is harmless when they do.
    for (const char* k : {"git", "build"}) {
      std::string v = report->MetaValue(k);
      if (!v.empty()) merged.SetMeta(k, v);
    }
    // Re-serialize (rather than pasting the input bytes) so the blob is
    // exactly the parsed report — a second validation for free.
    merged.AddBlob(key, report->ToJson());
  }
  std::string json = merged.ToJson();
  Status valid = obs::ValidateJsonText(json);
  if (!valid.ok()) {
    std::fprintf(stderr, "error: merged report is not valid JSON: %s\n",
                 valid.ToString().c_str());
    return 1;
  }
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return kExitConfigError;
  }
  out << json;
  if (!out.good()) {
    std::fprintf(stderr, "error: short write to %s\n", out_path.c_str());
    return 1;
  }
  std::printf("merged %zu report(s) into %s\n", inputs.size(),
              out_path.c_str());
  return 0;
}

// A merged file's metrics live inside its blobs; flatten them (prefixed
// with the blob key) next to any top-level metrics so compare sees one
// namespace either way. Blobs that are not obs::Reports (e.g. EXPLAIN
// ANALYZE arrays) are skipped.
struct FlatMetrics {
  std::vector<std::pair<std::string, obs::Report::HistogramEntry>> histograms;
  std::vector<std::pair<std::string, double>> gauges;
};

FlatMetrics Flatten(const obs::Report& report) {
  FlatMetrics flat;
  auto add = [&flat](const std::string& prefix, const obs::Report& r) {
    for (const auto& h : r.histograms) {
      flat.histograms.emplace_back(prefix + h.name, h);
    }
    for (const auto& g : r.gauges) {
      flat.gauges.emplace_back(prefix + g.name, g.value);
    }
  };
  add("", report);
  for (const auto& blob : report.blobs) {
    auto sub = obs::ReportFromJson(blob.second);
    if (sub.ok()) add(blob.first + ".", sub.value());
  }
  return flat;
}

std::string DeltaPercent(double old_value, double new_value) {
  if (old_value == 0) return new_value == 0 ? "0.0%" : "n/a";
  double delta = (new_value - old_value) / old_value * 100.0;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%+.1f%%", delta);
  return buf;
}

int Compare(const std::string& old_path, const std::string& new_path) {
  auto old_report = LoadReport(old_path);
  auto new_report = LoadReport(new_path);
  for (const auto* r : {&old_report, &new_report}) {
    if (!r->ok()) {
      std::fprintf(stderr, "error: %s\n", r->status().ToString().c_str());
      return kExitConfigError;
    }
  }
  FlatMetrics old_flat = Flatten(old_report.value());
  FlatMetrics new_flat = Flatten(new_report.value());

  std::printf("old: %s (git %s, %s)\nnew: %s (git %s, %s)\n\n",
              old_path.c_str(), old_report->MetaValue("git").c_str(),
              old_report->MetaValue("build").c_str(), new_path.c_str(),
              new_report->MetaValue("git").c_str(),
              new_report->MetaValue("build").c_str());

  TablePrinter hist_table({"histogram", "p50_old", "p50_new", "Δp50",
                           "p99_old", "p99_new", "Δp99"});
  size_t shared = 0;
  for (const auto& [name, old_h] : old_flat.histograms) {
    for (const auto& [new_name, new_h] : new_flat.histograms) {
      if (new_name != name) continue;
      double old_p50 = old_h.Quantile(0.5), new_p50 = new_h.Quantile(0.5);
      double old_p99 = old_h.Quantile(0.99), new_p99 = new_h.Quantile(0.99);
      hist_table.AddRow({name, FormatDouble(old_p50, 4),
                         FormatDouble(new_p50, 4),
                         DeltaPercent(old_p50, new_p50),
                         FormatDouble(old_p99, 4), FormatDouble(new_p99, 4),
                         DeltaPercent(old_p99, new_p99)});
      ++shared;
      break;
    }
  }
  if (shared > 0) hist_table.Print();

  TablePrinter gauge_table({"gauge", "old", "new", "Δ"});
  size_t shared_gauges = 0;
  for (const auto& [name, old_v] : old_flat.gauges) {
    for (const auto& [new_name, new_v] : new_flat.gauges) {
      if (new_name != name) continue;
      gauge_table.AddRow({name, FormatDouble(old_v, 4), FormatDouble(new_v, 4),
                          DeltaPercent(old_v, new_v)});
      ++shared_gauges;
      break;
    }
  }
  if (shared_gauges > 0) {
    if (shared > 0) std::printf("\n");
    gauge_table.Print();
  }
  std::printf("\n%zu shared histogram(s), %zu shared gauge(s)\n", shared,
              shared_gauges);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string mode = argv[1];
  if (mode == "merge") {
    if (argc < 4) return Usage();
    std::vector<std::string> inputs(argv + 3, argv + argc);
    return Merge(argv[2], inputs);
  }
  if (mode == "compare") {
    if (argc != 4) return Usage();
    return Compare(argv[2], argv[3]);
  }
  std::fprintf(stderr, "unknown mode: %s\n", mode.c_str());
  return Usage();
}
