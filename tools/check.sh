#!/usr/bin/env bash
# Tier-1 verification: configure + build + ctest, mirroring the ROADMAP
# verify line. Extra arguments are forwarded to CMake, e.g.
#
#   tools/check.sh                           # plain build + tests
#   tools/check.sh -DLEGODB_SANITIZE=address # ASan build + tests
#   tools/check.sh --tsan                    # TSan pass over the parallel
#                                            # candidate-evaluation path
#   tools/check.sh --release-checks          # Release (NDEBUG) build of the
#                                            # invariant/malformed-input suites
#
# --tsan builds into build-tsan with -DLEGODB_SANITIZE=thread and runs the
# tests exercising the parallel search (search_test, plus the transform and
# pipeline suites that feed it, and robustness_test for budget cancellation
# and failpoints under threads) and the concurrent query serving path
# (engine_equivalence_test races executors over one Database's index
# registry) with halt_on_error=1, so any reported data race fails the
# script.
#
# --release-checks builds into build-release with -DCMAKE_BUILD_TYPE=Release
# and runs the suites covering invariant checks and malformed inputs. This
# proves LEGODB_CHECK still aborts (death tests) and the malformed-input
# paths return clean Statuses with asserts compiled out.
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--tsan" ]]; then
  shift
  cmake -B build-tsan -S . -DLEGODB_SANITIZE=thread "$@"
  cmake --build build-tsan -j"$(nproc)" --target \
    search_test transforms_test pipeline_test robustness_test \
    engine_equivalence_test
  export TSAN_OPTIONS="halt_on_error=1${TSAN_OPTIONS:+:$TSAN_OPTIONS}"
  ctest --test-dir build-tsan --output-on-failure -j"$(nproc)" \
    -R 'search_test|transforms_test|pipeline_test|robustness_test|engine_equivalence_test'
  exit 0
fi

if [[ "${1:-}" == "--release-checks" ]]; then
  shift
  cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release "$@"
  cmake --build build-release -j"$(nproc)" --target \
    robustness_test search_test common_test relational_test \
    storage_test mapping_test
  ctest --test-dir build-release --output-on-failure -j"$(nproc)" \
    -R 'robustness_test|search_test|common_test|relational_test|storage_test|mapping_test'
  exit 0
fi

cmake -B build -S . "$@"
cmake --build build -j"$(nproc)"
ctest --test-dir build --output-on-failure -j"$(nproc)"
# Calibration smoke: the estimated-vs-measured report must run end to end
# (low rep count; the numbers are not checked here, only that it works).
./build/bench/calibration --reps=2 > /dev/null
