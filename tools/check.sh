#!/usr/bin/env bash
# Tier-1 verification: configure + build + ctest, mirroring the ROADMAP
# verify line. Extra arguments are forwarded to CMake, e.g.
#
#   tools/check.sh                           # plain build + tests
#   tools/check.sh -DLEGODB_SANITIZE=address # ASan build + tests
#   tools/check.sh --tsan                    # TSan pass over the parallel
#                                            # candidate-evaluation path
#   tools/check.sh --release-checks          # Release (NDEBUG) build of the
#                                            # invariant/malformed-input suites
#   tools/check.sh --bench-json              # small-scale bench run merged
#                                            # into build/BENCH_results.json
#   tools/check.sh --vectorized              # ASan/UBSan build of the
#                                            # columnar executor + expr VM:
#                                            # reference-equality gates, then
#                                            # a bench baseline via
#                                            # bench_report
#   tools/check.sh --serving                 # ASan/UBSan build of the
#                                            # serving layer: serving_test +
#                                            # the concurrent serving bench's
#                                            # bit-identity gate, report
#                                            # merged + compared against the
#                                            # committed BENCH_results.json
#   tools/check.sh --chaos                   # TSan build of the online-
#                                            # reconfiguration path: the
#                                            # migration chaos harness
#                                            # (serving threads vs. looping
#                                            # migrations with failpoints)
#                                            # plus serving_test and the
#                                            # registry/drain storage suites
#   tools/check.sh --disk                    # ASan/UBSan build of the paged
#                                            # storage backend: pager/buffer-
#                                            # pool suites, disk-vs-memory
#                                            # bit-identity gates, serving on
#                                            # disk, then a disk calibration
#                                            # smoke that must observe real
#                                            # buffer-pool IO (--require-io)
#
# --tsan builds into build-tsan with -DLEGODB_SANITIZE=thread and runs the
# tests exercising the parallel search (search_test, plus the transform and
# pipeline suites that feed it, and robustness_test for budget cancellation
# and failpoints under threads) and the concurrent query serving path
# (engine_equivalence_test races executors over one Database's index
# registry; serving_test races 8 clients through the sharded plan cache)
# with halt_on_error=1, so any reported data race fails the script.
#
# --release-checks builds into build-release with -DCMAKE_BUILD_TYPE=Release
# and runs the suites covering invariant checks and malformed inputs. This
# proves LEGODB_CHECK still aborts (death tests) and the malformed-input
# paths return clean Statuses with asserts compiled out.
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--tsan" ]]; then
  shift
  cmake -B build-tsan -S . -DLEGODB_SANITIZE=thread "$@"
  cmake --build build-tsan -j"$(nproc)" --target \
    search_test transforms_test pipeline_test robustness_test \
    engine_equivalence_test serving_test
  export TSAN_OPTIONS="halt_on_error=1${TSAN_OPTIONS:+:$TSAN_OPTIONS}"
  ctest --test-dir build-tsan --output-on-failure -j"$(nproc)" \
    -R 'search_test|transforms_test|pipeline_test|robustness_test|engine_equivalence_test|serving_test'
  exit 0
fi

# --chaos: the online-reconfiguration path under ThreadSanitizer. Builds
# the migration chaos harness (8 serving threads racing a migration loop
# with failpoints armed at every migrate.* site), serving_test (which
# carries the stale-plan-cache, cancellation, and deadline-mid-execution
# regressions), and storage_test (DbRegistry publish/drain and NextId
# concurrency) into build-tsan, then runs them with halt_on_error=1 so any
# data race — or any non-bit-identical response under migration fire —
# fails the script.
if [[ "${1:-}" == "--chaos" ]]; then
  shift
  cmake -B build-tsan -S . -DLEGODB_SANITIZE=thread "$@"
  cmake --build build-tsan -j"$(nproc)" --target \
    migration_chaos_test serving_test storage_test
  export TSAN_OPTIONS="halt_on_error=1${TSAN_OPTIONS:+:$TSAN_OPTIONS}"
  ctest --test-dir build-tsan --output-on-failure -j"$(nproc)" \
    -R 'migration_chaos_test|serving_test|storage_test'
  exit 0
fi

if [[ "${1:-}" == "--release-checks" ]]; then
  shift
  cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release "$@"
  cmake --build build-release -j"$(nproc)" --target \
    robustness_test search_test common_test relational_test \
    storage_test mapping_test
  ctest --test-dir build-release --output-on-failure -j"$(nproc)" \
    -R 'robustness_test|search_test|common_test|relational_test|storage_test|mapping_test'
  exit 0
fi

# --vectorized: the columnar-execution equality gates under
# address+undefined sanitizers. Builds the vectorized executor, expression
# VM, and their suites into build-vec, runs the reference-vs-vectorized
# bit-identity tests (engine_equivalence_test across batch sizes and under
# concurrency, engine_test for operator semantics, expr_vm_test for the
# bytecode) plus micro_engine's always-on equality gate, and captures the
# run's bench baseline into build-vec/BENCH_results.json via bench_report.
# Any sanitizer report or result mismatch fails the script.
if [[ "${1:-}" == "--vectorized" ]]; then
  shift
  cmake -B build-vec -S . -DLEGODB_SANITIZE=address,undefined "$@"
  cmake --build build-vec -j"$(nproc)" --target \
    engine_equivalence_test engine_test expr_vm_test micro_engine bench_report
  ctest --test-dir build-vec --output-on-failure -j"$(nproc)" \
    -R 'engine_equivalence_test|engine_test|expr_vm_test'
  # micro_engine verifies reference-vs-vectorized equality on startup and
  # exits nonzero on any mismatch; one quick benchmark keeps the obs report
  # non-empty for the baseline merge.
  ./build-vec/bench/micro_engine --benchmark_filter=BM_Fig10Batched/1024 \
    --benchmark_min_time=0.05 --obs-out=build-vec/BENCH_micro_engine.json \
    > /dev/null
  ./build-vec/tools/bench_report merge build-vec/BENCH_results.json \
    build-vec/BENCH_micro_engine.json
  echo "vectorized equality gates passed; baseline in build-vec/BENCH_results.json"
  exit 0
fi

# --serving: the concurrent serving layer under address+undefined
# sanitizers. Builds the serving tests and bench into build-serving, runs
# serving_test (canonicalization, plan cache, admission control, 8-thread
# bit-identity), then the serving bench at smoke scale — its startup gate
# re-proves cached results bit-identical to the uncached front end before
# any timing. The bench's obs report (cache hit/miss counters, latency
# histograms, per-thread-count gauges) is merged into
# build-serving/BENCH_results.json and compared against the committed
# baseline so serving-path regressions show up as a table, not silently.
if [[ "${1:-}" == "--serving" ]]; then
  shift
  cmake -B build-serving -S . -DLEGODB_SANITIZE=address,undefined "$@"
  cmake --build build-serving -j"$(nproc)" --target \
    serving_test serving bench_report
  ctest --test-dir build-serving --output-on-failure -j"$(nproc)" \
    -R 'serving_test'
  ./build-serving/bench/serving --threads=1,4,8 --requests=100 \
    build-serving/BENCH_serving.json
  ./build-serving/tools/bench_report merge build-serving/BENCH_results.json \
    build-serving/BENCH_serving.json
  ./build-serving/tools/bench_report compare BENCH_results.json \
    build-serving/BENCH_results.json
  echo "serving checks passed; report in build-serving/BENCH_results.json"
  exit 0
fi

# --disk: the disk-backed storage path under address+undefined sanitizers.
# Builds the pager/buffer-pool suite, the storage suite, the disk-vs-memory
# bit-identity gates in engine_equivalence_test (including forced hash-join
# spills and 8-thread concurrent serving on a paged database), and
# serving_test into build-disk; then runs the calibration bench on the disk
# backend with a deliberately small pool so estimates are checked against
# *real* buffer-pool faults — --require-io makes the run fail if no page
# traffic was measured (i.e. if the backend silently fell back to memory).
if [[ "${1:-}" == "--disk" ]]; then
  shift
  cmake -B build-disk -S . -DLEGODB_SANITIZE=address,undefined "$@"
  cmake --build build-disk -j"$(nproc)" --target \
    pager_test storage_test engine_equivalence_test serving_test calibration
  ctest --test-dir build-disk --output-on-failure -j"$(nproc)" \
    -R 'pager_test|storage_test|engine_equivalence_test|serving_test'
  ./build-disk/bench/calibration --reps=2 --backend=disk --pool-pages=8 \
    --page-size=1024 --require-io build-disk/BENCH_calibration_disk.json \
    > /dev/null
  echo "disk backend checks passed; calibration in build-disk/BENCH_calibration_disk.json"
  exit 0
fi

# --bench-json: the bench-trajectory pipeline at smoke scale. Runs
# micro_engine (executor-equality gate + one quick benchmark) and
# calibration with their obs reports enabled, merges them with bench_report
# into build/BENCH_results.json, and double-checks the merged file parses
# as an obs report (merge already validates; the compare call proves the
# file is consumable downstream). Any invalid JSON fails the script.
if [[ "${1:-}" == "--bench-json" ]]; then
  shift
  cmake -B build -S . "$@"
  cmake --build build -j"$(nproc)" --target micro_engine calibration bench_report
  ./build/bench/micro_engine --benchmark_filter=BM_XmlParse \
    --benchmark_min_time=0.05 --obs-out=build/BENCH_micro_engine.json \
    > /dev/null
  ./build/bench/calibration --reps=2 build/BENCH_calibration.json > /dev/null
  ./build/tools/bench_report merge build/BENCH_results.json \
    build/BENCH_micro_engine.json build/BENCH_calibration.json
  ./build/tools/bench_report compare build/BENCH_results.json \
    build/BENCH_results.json > /dev/null
  echo "bench trajectory written to build/BENCH_results.json"
  exit 0
fi

cmake -B build -S . "$@"
cmake --build build -j"$(nproc)"
ctest --test-dir build --output-on-failure -j"$(nproc)"
# Calibration smoke: the estimated-vs-measured report must run end to end
# (low rep count; the numbers are not checked here, only that it works).
./build/bench/calibration --reps=2 > /dev/null
