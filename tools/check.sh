#!/usr/bin/env bash
# Tier-1 verification: configure + build + ctest, mirroring the ROADMAP
# verify line. Extra arguments are forwarded to CMake, e.g.
#
#   tools/check.sh                           # plain build + tests
#   tools/check.sh -DLEGODB_SANITIZE=address # ASan build + tests
#   tools/check.sh --tsan                    # TSan pass over the parallel
#                                            # candidate-evaluation path
#
# --tsan builds into build-tsan with -DLEGODB_SANITIZE=thread and runs the
# tests exercising the parallel search (search_test, plus the transform and
# pipeline suites that feed it) with halt_on_error=1, so any reported data
# race fails the script.
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--tsan" ]]; then
  shift
  cmake -B build-tsan -S . -DLEGODB_SANITIZE=thread "$@"
  cmake --build build-tsan -j"$(nproc)" --target \
    search_test transforms_test pipeline_test
  export TSAN_OPTIONS="halt_on_error=1${TSAN_OPTIONS:+:$TSAN_OPTIONS}"
  ctest --test-dir build-tsan --output-on-failure -j"$(nproc)" \
    -R 'search_test|transforms_test|pipeline_test'
  exit 0
fi

cmake -B build -S . "$@"
cmake --build build -j"$(nproc)"
ctest --test-dir build --output-on-failure -j"$(nproc)"
