#!/usr/bin/env bash
# Tier-1 verification: configure + build + ctest, mirroring the ROADMAP
# verify line. Extra arguments are forwarded to CMake, e.g.
#
#   tools/check.sh                           # plain build + tests
#   tools/check.sh -DLEGODB_SANITIZE=address # ASan build + tests
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S . "$@"
cmake --build build -j"$(nproc)"
ctest --test-dir build --output-on-failure -j"$(nproc)"
