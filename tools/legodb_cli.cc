// legodb — command-line front end to the mapping engine.
//
// Usage:
//   legodb --schema schema.xalg --stats stats.st
//          --query 'Q1:0.4:FOR $v IN ...' [--query ...]
//          [--update 'add_review:2.0:imdb/show/reviews']
//          [--start so|si] [--beam N] [--threads N] [--threshold F]
//          [--budget-ms N] [--max-iterations N] [--max-candidates N]
//          [--failpoints SPEC] [--explain] [--explain-search]
//          [--explain-analyze] [--serve N] [--migrate-to so|si]
//          [--xml FILE] [--param NAME=VALUE] [--trace]
//          [--backend mem|disk] [--pool-pages N] [--page-size N]
//          [--metrics-out=FILE] [--trace-out=FILE]
//   legodb --demo imdb|auction       # run on the built-in applications
//
// Exit codes: 0 success, 2 configuration error (bad flags, unreadable or
// malformed input files), 3 runtime error (search/output failure).
//
// Prints the search summary, the chosen physical XML schema and the derived
// relational DDL. --explain-search dumps the per-iteration greedy-search
// trajectory (cost, candidates, elapsed ms, chosen transformation); --trace
// dumps the span tree and metrics of the run; --metrics-out writes the full
// obs::Report as JSON; --explain shows the SQL and plan for each query.
// --explain-analyze shreds a document into the chosen configuration (a
// synthetic one for the demos, the --xml file otherwise) and, for every
// workload query, executes the plan with per-operator profiling and prints
// the EXPLAIN ANALYZE tree (est vs actual rows, q-error, batches, seeks,
// self/total time); the trees also land as structured JSON blocks in the
// --metrics-out report. --param binds symbolic query constants for that
// execution. --serve N shreds the same document, stands up a
// serving::QueryServer over it, and serves each workload query N times
// through the prepared-plan cache, printing per-query latency and
// cache-hit columns plus the cache's hit/miss/eviction totals.
// --trace-out writes the whole run (search iterations and
// executor open/next phases) as Chrome-trace JSON loadable by
// chrome://tracing or Perfetto. --migrate-to so|si (with --serve) runs an
// online migration to the fully-outlined/fully-inlined configuration on a
// background thread *while* the serving loop is running, then prints the
// migration report and the plan cache's stale-recompile count — a live
// demonstration of the shadow-shred / verify / swap pipeline.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "auction/auction.h"
#include "common/failpoint.h"
#include "serving/migrator.h"
#include "serving/server.h"
#include "core/explain.h"
#include "core/legodb.h"
#include "engine/executor.h"
#include "engine/explain_analyze.h"
#include "imdb/imdb.h"
#include "pschema/pschema.h"
#include "storage/database.h"
#include "storage/db_registry.h"
#include "storage/shredder.h"
#include "xml/parser.h"
#include "xschema/stats_collector.h"
#include "optimizer/optimizer.h"
#include "translate/translate.h"

using namespace legodb;

namespace {

// Distinct exit codes so scripts can tell bad inputs from engine faults.
constexpr int kExitConfigError = 2;
constexpr int kExitRuntimeError = 3;

StatusOr<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// Splits "name:weight:rest" (rest may contain ':').
StatusOr<std::tuple<std::string, double, std::string>> ParseSpec(
    const std::string& spec) {
  size_t first = spec.find(':');
  size_t second = first == std::string::npos ? first : spec.find(':', first + 1);
  if (second == std::string::npos) {
    return Status::InvalidArgument("expected name:weight:text, got " + spec);
  }
  std::string name = spec.substr(0, first);
  double weight = std::strtod(spec.substr(first + 1, second - first - 1).c_str(),
                              nullptr);
  return std::tuple<std::string, double, std::string>{
      name, weight, spec.substr(second + 1)};
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: legodb --schema FILE --stats FILE --query NAME:W:XQUERY...\n"
      "              [--update NAME:W:path/to/element]... [--start so|si]\n"
      "              [--beam N] [--threads N] [--threshold F] [--explain]\n"
      "              [--explain-search] [--explain-analyze] [--serve N]\n"
      "              [--migrate-to so|si]\n"
      "              [--xml FILE] [--param NAME=VALUE]... [--trace]\n"
      "              [--metrics-out=FILE] [--trace-out=FILE] [--budget-ms N]\n"
      "              [--max-iterations N] [--max-candidates N]\n"
      "              [--failpoints SPEC]\n"
      "              [--backend mem|disk] [--pool-pages N] [--page-size N]\n"
      "       legodb --demo imdb|auction [--explain] [--explain-search]\n"
      "              [--explain-analyze] [--serve N] [--trace]\n"
      "              [--metrics-out=FILE] [--trace-out=FILE]\n");
  return kExitConfigError;
}

// Splits "name=value"; values that parse wholly as integers bind as ints,
// everything else as strings.
StatusOr<std::pair<std::string, Value>> ParseParam(const std::string& spec) {
  size_t eq = spec.find('=');
  if (eq == std::string::npos || eq == 0) {
    return Status::InvalidArgument("expected NAME=VALUE, got " + spec);
  }
  std::string name = spec.substr(0, eq);
  std::string text = spec.substr(eq + 1);
  char* end = nullptr;
  long long n = std::strtoll(text.c_str(), &end, 10);
  if (!text.empty() && end != nullptr && *end == '\0') {
    return std::pair<std::string, Value>{name, Value::Int(n)};
  }
  return std::pair<std::string, Value>{name, Value::Str(text)};
}

Status WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) return Status::InvalidArgument("cannot write " + path);
  out << content;
  return out.good() ? Status::OK()
                    : Status::Internal("short write to " + path);
}

}  // namespace

int main(int argc, char** argv) {
  fp::EnableFromEnvOnce();
  // One registry for the whole invocation: FindBestConfiguration records its
  // search spans here, and --explain-analyze adds executor spans, so
  // --trace/--metrics-out/--trace-out see the complete run.
  obs::Registry run_registry;
  obs::ScopedRegistry run_scope(&run_registry);
  core::MappingEngine engine;
  core::SearchOptions options = core::GreedySoOptions();
  bool explain = false;
  bool explain_search = false;
  bool explain_analyze = false;
  int serve_reps = 0;
  // Raw query texts by workload name: serving re-enters through the lexical
  // canonicalizer, so it needs the original text, not the parsed AST.
  std::map<std::string, std::string> query_texts;
  bool trace = false;
  std::string metrics_out;
  std::string trace_out;
  std::string xml_path;
  std::string migrate_to;  // "", "so", or "si"
  bool disk = false;       // --backend disk: paged storage + buffer pool
  long pool_pages = 256;
  long page_size = 8192;
  std::map<std::string, Value> params;
  bool have_schema = false;
  std::string demo;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    Status st;
    std::string st_context;  // names the offending file/flag in errors
    if (arg == "--demo") {
      const char* v = next();
      if (!v) return Usage();
      demo = v;
    } else if (arg == "--schema") {
      const char* v = next();
      if (!v) return Usage();
      auto text = ReadFile(v);
      st = text.ok() ? engine.LoadSchemaText(text.value()) : text.status();
      st_context = std::string("schema file ") + v;
      have_schema = true;
    } else if (arg == "--stats") {
      const char* v = next();
      if (!v) return Usage();
      auto text = ReadFile(v);
      st = text.ok() ? engine.LoadStatsText(text.value()) : text.status();
      st_context = std::string("stats file ") + v;
    } else if (arg == "--query") {
      const char* v = next();
      if (!v) return Usage();
      auto spec = ParseSpec(v);
      if (!spec.ok()) {
        st = spec.status();
      } else {
        auto [name, weight, text] = spec.value();
        st = engine.AddQuery(name, text, weight);
        if (st.ok()) query_texts[name] = text;
      }
    } else if (arg == "--update") {
      const char* v = next();
      if (!v) return Usage();
      auto spec = ParseSpec(v);
      if (!spec.ok()) {
        st = spec.status();
      } else {
        auto [name, weight, path] = spec.value();
        core::Workload w = engine.workload();
        w.AddUpdate(name, core::UpdateOp::Kind::kInsert, path, weight);
        engine.SetWorkload(std::move(w));
      }
    } else if (arg == "--start") {
      const char* v = next();
      if (!v) return Usage();
      options = std::strcmp(v, "si") == 0 ? core::GreedySiOptions()
                                          : core::GreedySoOptions();
    } else if (arg == "--beam") {
      const char* v = next();
      if (!v) return Usage();
      options.beam_width = std::atoi(v);
    } else if (arg == "--threads") {
      const char* v = next();
      if (!v) return Usage();
      options.threads = std::atoi(v);
    } else if (arg == "--threshold") {
      const char* v = next();
      if (!v) return Usage();
      options.min_relative_improvement = std::strtod(v, nullptr);
    } else if (arg == "--budget-ms") {
      const char* v = next();
      if (!v) return Usage();
      options.budget_ms = std::atoll(v);
    } else if (arg == "--max-iterations") {
      const char* v = next();
      if (!v) return Usage();
      options.max_iterations = std::atoi(v);
    } else if (arg == "--max-candidates") {
      const char* v = next();
      if (!v) return Usage();
      options.max_candidates = std::atoll(v);
    } else if (arg == "--failpoints") {
      const char* v = next();
      if (!v) return Usage();
      st = fp::Enable(v);
      st_context = "--failpoints";
    } else if (arg == "--explain") {
      explain = true;
    } else if (arg == "--explain-search") {
      explain_search = true;
    } else if (arg == "--explain-analyze") {
      explain_analyze = true;
    } else if (arg == "--serve") {
      const char* v = next();
      if (!v) return Usage();
      serve_reps = std::atoi(v);
      if (serve_reps < 1) return Usage();
    } else if (arg == "--migrate-to") {
      const char* v = next();
      if (!v) return Usage();
      migrate_to = v;
      if (migrate_to != "so" && migrate_to != "si") {
        std::fprintf(stderr, "--migrate-to expects so or si\n");
        return Usage();
      }
    } else if (arg == "--xml") {
      const char* v = next();
      if (!v) return Usage();
      xml_path = v;
    } else if (arg == "--param") {
      const char* v = next();
      if (!v) return Usage();
      auto param = ParseParam(v);
      if (!param.ok()) {
        st = param.status();
        st_context = "--param";
      } else {
        params[param->first] = param->second;
      }
    } else if (arg == "--backend") {
      const char* v = next();
      if (!v) return Usage();
      if (std::strcmp(v, "disk") == 0) {
        disk = true;
      } else if (std::strcmp(v, "mem") == 0) {
        disk = false;
      } else {
        std::fprintf(stderr, "--backend expects mem or disk\n");
        return Usage();
      }
    } else if (arg == "--pool-pages") {
      const char* v = next();
      if (!v) return Usage();
      pool_pages = std::atol(v);
    } else if (arg == "--page-size") {
      const char* v = next();
      if (!v) return Usage();
      page_size = std::atol(v);
    } else if (arg == "--trace") {
      trace = true;
    } else if (arg.rfind("--metrics-out=", 0) == 0) {
      metrics_out = arg.substr(std::strlen("--metrics-out="));
      if (metrics_out.empty()) return Usage();
    } else if (arg == "--metrics-out") {
      const char* v = next();
      if (!v) return Usage();
      metrics_out = v;
    } else if (arg.rfind("--trace-out=", 0) == 0) {
      trace_out = arg.substr(std::strlen("--trace-out="));
      if (trace_out.empty()) return Usage();
    } else if (arg == "--trace-out") {
      const char* v = next();
      if (!v) return Usage();
      trace_out = v;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return Usage();
    }
    if (!st.ok()) {
      std::fprintf(stderr, "error: %s%s%s\n", st_context.c_str(),
                   st_context.empty() ? "" : ": ", st.ToString().c_str());
      return kExitConfigError;
    }
  }

  // On the disk backend the cost model prices page-granular IO, matching
  // what the buffer pool will actually measure.
  if (disk) {
    engine.mutable_cost_params()->page_size =
        static_cast<double>(std::max(512L, page_size));
  }

  if (demo == "imdb") {
    if (!engine.LoadSchemaText(imdb::SchemaText()).ok() ||
        !engine.LoadStatsText(imdb::StatsText()).ok()) {
      return kExitRuntimeError;
    }
    for (const char* q : {"Q1", "Q3", "Q8", "Q16"}) {
      (void)engine.AddQuery(q, imdb::QueryText(q), 0.25);
      query_texts[q] = imdb::QueryText(q);
    }
    have_schema = true;
  } else if (demo == "auction") {
    auto schema = auction::Schema();
    auto workload = auction::MakeWorkload("bidding");
    if (!schema.ok() || !workload.ok()) return kExitRuntimeError;
    auction::AuctionScale scale;
    xml::Document doc = auction::Generate(scale);
    xs::StatsCollector collector;
    collector.AddDocument(doc);
    engine.SetSchema(std::move(schema).value());
    engine.SetStats(collector.Finish());
    engine.SetWorkload(std::move(workload).value());
    for (const auto& wq : engine.workload().queries) {
      if (const char* text = auction::QueryText(wq.name)) {
        query_texts[wq.name] = text;
      }
    }
    have_schema = true;
  } else if (!demo.empty()) {
    std::fprintf(stderr, "unknown demo: %s\n", demo.c_str());
    return Usage();
  }
  if (!have_schema || engine.workload().queries.empty()) return Usage();

  auto result = engine.FindBestConfiguration(options);
  if (!result.ok()) {
    std::fprintf(stderr, "search failed: %s\n",
                 result.status().ToString().c_str());
    return kExitRuntimeError;
  }
  std::printf("=== search: %s ===\n",
              core::SearchSummary(result->search).c_str());
  if (explain_search) {
    std::printf("%s", core::ExplainSearchTable(result->search).c_str());
  } else {
    for (const auto& step : result->search.trace) {
      std::printf("  %2d  %14.1f  %s\n", step.iteration, step.cost,
                  step.applied.c_str());
    }
  }
  std::printf("\n=== physical XML schema ===\n%s\n",
              result->search.best_schema.ToString().c_str());
  std::printf("=== relational configuration ===\n%s\n",
              result->mapping.catalog().ToDdl().c_str());

  if (explain) {
    opt::Optimizer optimizer(result->mapping.catalog(),
                             *engine.mutable_cost_params());
    for (const auto& wq : engine.workload().queries) {
      auto rq = xlat::TranslateQuery(wq.query, result->mapping);
      if (!rq.ok()) continue;
      std::printf("=== %s ===\n%s\n", wq.name.c_str(), rq->ToSql().c_str());
      auto planned = optimizer.PlanQuery(rq.value());
      if (planned.ok()) {
        for (size_t i = 0; i < planned->blocks.size(); ++i) {
          std::printf("%s", planned->blocks[i]
                                .plan->ToString(rq->blocks[i])
                                .c_str());
        }
      }
      std::printf("\n");
    }
  }

  // --explain-analyze: shred a document into the chosen configuration and
  // run every workload query with per-operator profiling. Blobs collected
  // here land in the final metrics report.
  std::vector<std::pair<std::string, std::string>> explain_blobs;
  if (explain_analyze || serve_reps > 0) {
    StatusOr<xml::Document> doc = [&]() -> StatusOr<xml::Document> {
      if (!xml_path.empty()) {
        LEGODB_ASSIGN_OR_RETURN(std::string text, ReadFile(xml_path));
        return xml::ParseDocument(text);
      }
      if (demo == "imdb") return imdb::Generate(imdb::ImdbScale{});
      if (demo == "auction") return auction::Generate(auction::AuctionScale{});
      return Status::InvalidArgument(
          "execution needs a document: pass --xml FILE or use --demo");
    }();
    if (!doc.ok()) {
      std::fprintf(stderr, "error: %s: %s\n",
                   explain_analyze ? "--explain-analyze" : "--serve",
                   doc.status().ToString().c_str());
      return kExitConfigError;
    }
    // Demo parameter defaults; explicit --param bindings win.
    if (demo == "imdb") {
      params.emplace("c1", Value::Str("title1"));
      params.emplace("c2", Value::Str("title2"));
      params.emplace("c4", Value::Str("person3"));
    } else if (demo == "auction") {
      params.emplace("c1", Value::Str("person3"));
    }

    store::StorageOptions storage =
        disk ? store::StorageOptions::Paged(
                   static_cast<size_t>(std::max(512L, page_size)),
                   static_cast<size_t>(std::max(1L, pool_pages)))
             : store::StorageOptions::Memory();
    store::Database db(result->mapping.catalog(), storage);
    Status st = store::ShredDocument(doc.value(), result->mapping, &db);
    if (st.ok()) st = db.PrewarmIndexes();
    if (!st.ok()) {
      std::fprintf(stderr, "error: shred/prewarm: %s\n",
                   st.ToString().c_str());
      return kExitRuntimeError;
    }

    if (explain_analyze) {
      opt::Optimizer optimizer(result->mapping.catalog(),
                               *engine.mutable_cost_params());
      engine::ExecOptions exec_options;
      exec_options.collect_profile = true;
      engine::Executor exec(&db, params, exec_options);
      for (const auto& wq : engine.workload().queries) {
        auto rq = xlat::TranslateQuery(wq.query, result->mapping);
        if (!rq.ok()) {
          std::printf("=== EXPLAIN ANALYZE %s ===\n  (not executable: %s)\n\n",
                      wq.name.c_str(), rq.status().ToString().c_str());
          continue;
        }
        auto planned = optimizer.PlanQuery(rq.value());
        if (!planned.ok()) {
          std::fprintf(stderr, "error: plan %s: %s\n", wq.name.c_str(),
                       planned.status().ToString().c_str());
          return kExitRuntimeError;
        }
        std::vector<opt::PhysicalPlanPtr> plans;
        for (const auto& b : planned->blocks) plans.push_back(b.plan);
        auto rows = exec.ExecuteQuery(rq.value(), plans);
        if (!rows.ok()) {
          std::fprintf(stderr, "error: execute %s: %s\n", wq.name.c_str(),
                       rows.status().ToString().c_str());
          return kExitRuntimeError;
        }
        std::printf("=== EXPLAIN ANALYZE %s (%zu rows) ===\n%s\n",
                    wq.name.c_str(), rows->rows.size(),
                    engine::ExplainAnalyzeTable(exec.profile()).c_str());
        explain_blobs.emplace_back("explain_analyze." + wq.name,
                                   engine::ExplainAnalyzeJson(exec.profile()));
      }
    }

    // --serve N: every workload query through the prepared-plan cache. The
    // first request per query misses (parse/translate/optimize/compile);
    // the remaining N-1 bind parameters into the cached templates.
    if (serve_reps > 0) {
      // Serving goes through a versioned registry so --migrate-to can swap
      // the configuration underneath the loop. The initial version borrows
      // the stack-owned mapping/db (no-op deleters); migrated versions are
      // owned by the registry.
      store::DbRegistry registry(
          std::shared_ptr<const map::Mapping>(&result->mapping,
                                              [](const map::Mapping*) {}),
          std::shared_ptr<store::Database>(&db, [](store::Database*) {}));
      serving::QueryServer server(&registry);
      Status prewarm = server.Prewarm();
      if (!prewarm.ok()) {
        std::fprintf(stderr, "error: --serve prewarm: %s\n",
                     prewarm.ToString().c_str());
        return kExitRuntimeError;
      }

      // --migrate-to: shadow-shred / verify / swap on a background thread
      // while the serving loop below keeps answering queries.
      std::thread migration_thread;
      StatusOr<serving::MigrationReport> migration_report =
          Status::Unavailable("migration not run");
      serving::Migrator migrator(&registry, &doc.value());
      if (!migrate_to.empty()) {
        xs::Schema target = migrate_to == "si"
                                ? ps::AllInlined(result->search.best_schema)
                                : ps::AllOutlined(result->search.best_schema);
        std::vector<serving::MigrationQuery> verify_queries;
        for (const auto& [name, text] : query_texts) {
          verify_queries.push_back({name, text});
        }
        serving::MigrationOptions migration_options;
        migration_options.params = params;
        // Everything the thread reads is moved/copied in: the enclosing
        // block exits while the migration is still running. The ambient
        // obs registry is thread-local, so the thread re-installs the
        // run's registry (the core::ParallelFor worker pattern) — without
        // it every migration.* metric and migrate.* span would vanish.
        obs::Registry* run_registry_ptr = obs::Current();
        migration_thread = std::thread(
            [&migrator, &migration_report, run_registry_ptr,
             target = std::move(target),
             verify_queries = std::move(verify_queries),
             migration_options = std::move(migration_options)] {
              obs::ScopedRegistry scoped(run_registry_ptr);
              migration_report = migrator.MigrateTo(target, verify_queries,
                                                    migration_options);
            });
      }

      serving::RequestOptions request;
      request.params = params;
      std::printf("=== serving (%d requests per query) ===\n", serve_reps);
      std::printf("  %-10s %8s %6s %12s %12s\n", "query", "rows", "hits",
                  "first_ms", "cached_ms");
      for (const auto& wq : engine.workload().queries) {
        auto text_it = query_texts.find(wq.name);
        if (text_it == query_texts.end()) {
          std::printf("  %-10s (no source text; skipped)\n",
                      wq.name.c_str());
          continue;
        }
        size_t rows = 0;
        int hits = 0;
        double first_ms = 0, cached_ms = 0;
        bool failed = false;
        for (int r = 0; r < serve_reps && !failed; ++r) {
          int64_t t0 = obs::NowNanos();
          auto response = server.Serve(text_it->second, request);
          double ms = static_cast<double>(obs::NowNanos() - t0) / 1e6;
          if (!response.ok()) {
            std::printf("  %-10s (failed: %s)\n", wq.name.c_str(),
                        response.status().ToString().c_str());
            failed = true;
            break;
          }
          rows = response->result.rows.size();
          if (response->cache_hit) {
            ++hits;
            cached_ms += ms;
          } else {
            first_ms = ms;
          }
        }
        if (failed) continue;
        std::printf("  %-10s %8zu %6d %12.3f %12.3f\n", wq.name.c_str(),
                    rows, hits, first_ms,
                    hits == 0 ? 0 : cached_ms / hits);
      }
      if (migration_thread.joinable()) migration_thread.join();
      if (!migrate_to.empty()) {
        if (migration_report.ok()) {
          std::printf("=== migration (--migrate-to %s) ===\n%s\n",
                      migrate_to.c_str(),
                      migration_report->ToString().c_str());
        } else {
          std::printf(
              "=== migration (--migrate-to %s) ===\nrolled back: %s\n",
              migrate_to.c_str(),
              migration_report.status().ToString().c_str());
        }
        std::printf("serving generation now %llu\n",
                    static_cast<unsigned long long>(registry.generation()));
      }
      serving::PlanCache::Stats stats = server.CacheStats();
      std::printf(
          "plan cache: %zu entries, %lld hits / %lld misses (rate %.3f), "
          "%lld evictions, %lld collisions, %lld stale recompiles\n\n",
          stats.entries, static_cast<long long>(stats.hits),
          static_cast<long long>(stats.misses), stats.HitRate(),
          static_cast<long long>(stats.evictions),
          static_cast<long long>(stats.collisions),
          static_cast<long long>(stats.stale));
    }
  }

  // Final report: a fresh snapshot of the run registry sees the search
  // spans (FindBestConfiguration recorded into the ambient registry) plus
  // any execution spans from --explain-analyze.
  obs::Report report = run_registry.Snapshot();
  report.SetMeta("tool", "legodb_cli");
  if (!demo.empty()) report.SetMeta("workload", demo);
  for (auto& blob : explain_blobs) {
    report.AddBlob(blob.first, blob.second);
  }
  if (trace) {
    std::printf("\n=== trace ===\n%s\n=== metrics ===\n%s",
                report.SpanTable().c_str(), report.MetricsTable().c_str());
  }
  if (!metrics_out.empty()) {
    Status st = WriteFile(metrics_out, report.ToJson());
    if (!st.ok()) {
      std::fprintf(stderr, "error: metrics file %s: %s\n",
                   metrics_out.c_str(), st.ToString().c_str());
      return kExitRuntimeError;
    }
    std::printf("metrics report written to %s\n", metrics_out.c_str());
  }
  if (!trace_out.empty()) {
    Status st = WriteFile(trace_out, report.ToChromeTrace());
    if (!st.ok()) {
      std::fprintf(stderr, "error: trace file %s: %s\n", trace_out.c_str(),
                   st.ToString().c_str());
      return kExitRuntimeError;
    }
    std::printf("chrome trace written to %s (load in chrome://tracing)\n",
                trace_out.c_str());
  }
  return 0;
}
