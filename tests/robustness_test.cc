// Robustness suite: release-mode invariant macros, the failpoint framework,
// malformed-input hardening of the MappingEngine facade, and the budgeted /
// gracefully degrading greedy search. Runs in Release builds too (see
// tools/check.sh --release-checks): nothing here may depend on `assert`.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/check.h"
#include "common/failpoint.h"
#include "common/status.h"
#include "core/explain.h"
#include "core/legodb.h"
#include "core/parallel.h"
#include "core/search.h"
#include "imdb/imdb.h"
#include "mapping/mapping.h"
#include "relational/catalog.h"

namespace legodb {
namespace {

core::MappingEngine ImdbEngine() {
  core::MappingEngine engine;
  EXPECT_TRUE(engine.LoadSchemaText(imdb::SchemaText()).ok());
  EXPECT_TRUE(engine.LoadStatsText(imdb::StatsText()).ok());
  for (const char* q : {"Q1", "Q3", "Q8", "Q16"}) {
    EXPECT_TRUE(engine.AddQuery(q, imdb::QueryText(q), 0.25).ok());
  }
  return engine;
}

// ---- LEGODB_CHECK / LEGODB_DCHECK ----

TEST(CheckTest, PassingCheckIsANoOp) {
  LEGODB_CHECK(1 + 1 == 2);
  LEGODB_CHECK(true, "never printed");
  int evaluations = 0;
  LEGODB_CHECK(++evaluations == 1, "evaluated exactly once");
  EXPECT_EQ(evaluations, 1);
}

TEST(CheckDeathTest, FailingCheckAbortsInEveryBuildMode) {
  EXPECT_DEATH(LEGODB_CHECK(false, "boom"), "LEGODB_CHECK failed");
  EXPECT_DEATH(LEGODB_CHECK(2 + 2 == 5), "2 \\+ 2 == 5");
}

TEST(CheckTest, DcheckCompilesAgainstUnusedVariables) {
  int x = 3;
  LEGODB_DCHECK(x == 3, "x must be 3");  // armed only in debug builds
#ifdef NDEBUG
  // Under NDEBUG the condition must not be evaluated.
  int evaluations = 0;
  LEGODB_DCHECK(++evaluations == 1);
  EXPECT_EQ(evaluations, 0);
#endif
}

// ---- StatusOr hardening ----

TEST(StatusOrDeathTest, ValueOnErrorAbortsUnconditionally) {
  StatusOr<int> err(Status::InvalidArgument("bad"));
  EXPECT_FALSE(err.ok());
  EXPECT_DEATH((void)err.value(), "StatusOr::value called on error");
  EXPECT_DEATH((void)*err, "StatusOr::value called on error");
}

TEST(StatusOrDeathTest, ConstructionFromOkStatusAborts) {
  EXPECT_DEATH(StatusOr<int>{Status::OK()},
               "StatusOr constructed from OK status");
}

// ---- Failpoint framework ----

class FailpointTest : public ::testing::Test {
 protected:
  void TearDown() override { fp::DisableAll(); }
};

TEST_F(FailpointTest, RejectsMalformedSpecs) {
  EXPECT_FALSE(fp::Enable("site=").ok());
  EXPECT_FALSE(fp::Enable("site=0").ok());
  EXPECT_FALSE(fp::Enable("site=-3").ok());
  EXPECT_FALSE(fp::Enable("site=pbogus").ok());
  EXPECT_FALSE(fp::Enable("site=p1.5").ok());
  EXPECT_FALSE(fp::Enable("site=p0.5@notanumber").ok());
  EXPECT_FALSE(fp::Enable("=3").ok());
}

TEST_F(FailpointTest, AlwaysModeFiresOnEveryHit) {
  EXPECT_FALSE(fp::AnyActive());
  ASSERT_TRUE(fp::Enable("my.site").ok());
  EXPECT_TRUE(fp::AnyActive());
  EXPECT_TRUE(fp::Triggered("my.site"));
  EXPECT_TRUE(fp::Triggered("my.site"));
  EXPECT_FALSE(fp::Triggered("other.site"));
  EXPECT_EQ(fp::HitCount("my.site"), 2);
  EXPECT_EQ(fp::HitCount("other.site"), 0);
  fp::Disable("my.site");
  EXPECT_FALSE(fp::AnyActive());
  EXPECT_FALSE(fp::Triggered("my.site"));
}

TEST_F(FailpointTest, NthHitModes) {
  ASSERT_TRUE(fp::Enable("once=3; from=2+").ok());
  std::vector<bool> once, from;
  for (int i = 0; i < 5; ++i) {
    once.push_back(fp::Triggered("once"));
    from.push_back(fp::Triggered("from"));
  }
  EXPECT_EQ(once, (std::vector<bool>{false, false, true, false, false}));
  EXPECT_EQ(from, (std::vector<bool>{false, true, true, true, true}));
}

TEST_F(FailpointTest, ProbabilityModeIsSeededAndDeterministic) {
  auto sample = [](const std::string& spec) {
    EXPECT_TRUE(fp::Enable(spec).ok());  // re-arming resets the hit counter
    std::vector<bool> fires;
    for (int i = 0; i < 64; ++i) fires.push_back(fp::Triggered("p.site"));
    return fires;
  };
  std::vector<bool> a = sample("p.site=p0.5@42");
  std::vector<bool> b = sample("p.site=p0.5@42");
  EXPECT_EQ(a, b);  // same seed: bit-for-bit replay
  int fired = 0;
  for (bool f : a) fired += f ? 1 : 0;
  EXPECT_GT(fired, 0);
  EXPECT_LT(fired, 64);
  EXPECT_NE(a, sample("p.site=p0.5@43"));  // different seed: different run
  for (bool f : sample("p.site=p0@1")) EXPECT_FALSE(f);
  for (bool f : sample("p.site=p1@1")) EXPECT_TRUE(f);
}

TEST_F(FailpointTest, CheckReturnsInternalWithSiteName) {
  ASSERT_TRUE(fp::Enable("err.site").ok());
  Status st = fp::Check("err.site");
  EXPECT_EQ(st.code(), Status::Code::kInternal);
  EXPECT_NE(st.message().find("err.site"), std::string::npos);
  EXPECT_TRUE(fp::Check("unarmed.site").ok());
}

TEST_F(FailpointTest, ScopedFailpointsDisarmOnExit) {
  {
    fp::ScopedFailpoints scoped("a.site; b.site=2");
    ASSERT_TRUE(scoped.status().ok());
    EXPECT_EQ(fp::ActiveSites(), (std::vector<std::string>{"a.site", "b.site"}));
  }
  EXPECT_FALSE(fp::AnyActive());
  fp::ScopedFailpoints bad("c.site=0");
  EXPECT_FALSE(bad.status().ok());
}

// ---- Malformed inputs through the MappingEngine facade ----

TEST(MalformedInputTest, GarbageSchemaTextReturnsStatus) {
  core::MappingEngine engine;
  Status st = engine.LoadSchemaText("@@@ not a schema !!!");
  EXPECT_FALSE(st.ok());
  EXPECT_FALSE(engine.LoadSchemaText("").ok());
}

TEST(MalformedInputTest, TruncatedSchemaTextReturnsStatus) {
  std::string text = imdb::SchemaText();
  ASSERT_TRUE(core::MappingEngine().LoadSchemaText(text).ok());
  // Cut mid-definition: every prefix must fail cleanly, never crash.
  core::MappingEngine engine;
  for (size_t len : {text.size() / 4, text.size() / 2, text.size() - 5}) {
    Status st = engine.LoadSchemaText(text.substr(0, len));
    EXPECT_FALSE(st.ok()) << "prefix of " << len << " bytes parsed?";
  }
}

TEST(MalformedInputTest, GarbageStatsTextReturnsStatus) {
  core::MappingEngine engine;
  EXPECT_FALSE(engine.LoadStatsText("### {{{ 12 garbage").ok());
}

TEST(MalformedInputTest, StatsOverUndefinedPathsAreHandledCleanly) {
  core::MappingEngine engine = ImdbEngine();
  // Statistics naming elements the schema does not define must not crash
  // annotation or search: either they are ignored and the search runs, or
  // a clean Status surfaces through the facade.
  std::string stats = imdb::StatsText();
  stats += "\n([\"imdb\";\"no_such_element\"], STcnt(42));\n";
  stats += "([\"imdb\";\"ghost\";\"child\"], STcnt(7));\n";
  Status st = engine.LoadStatsText(stats);
  if (st.ok()) {
    auto result = engine.FindBestConfiguration(core::GreedySoOptions());
    EXPECT_TRUE(result.ok()) << result.status().ToString();
  } else {
    EXPECT_FALSE(st.message().empty());
  }
}

TEST(MalformedInputTest, GarbageQueryTextReturnsStatus) {
  core::MappingEngine engine = ImdbEngine();
  EXPECT_FALSE(engine.AddQuery("bad", "NOT AN XQUERY AT ALL", 1.0).ok());
  EXPECT_FALSE(engine.AddQuery("empty", "", 1.0).ok());
}

TEST(MalformedInputTest, QueryOverUnboundVariableFailsCleanly) {
  core::MappingEngine engine = ImdbEngine();
  // Parses fine but $ghost is never bound: translation of the initial
  // configuration must surface a clean error, not crash.
  ASSERT_TRUE(engine
                  .AddQuery("bad",
                            R"(FOR $v IN document("imdbdata")/imdb/show,
                                   $w IN $ghost/episode
                               RETURN $w/name)",
                            1.0)
                  .ok());
  auto result = engine.FindBestConfiguration(core::GreedySoOptions());
  EXPECT_FALSE(result.ok());
  EXPECT_FALSE(result.status().message().empty());
}

TEST(MalformedInputTest, QueryOverMissingElementIsEmptyNotFatal) {
  core::MappingEngine engine = ImdbEngine();
  // XQuery semantics: navigating to an element the schema does not define
  // yields the empty sequence, so the query is valid (and free) rather
  // than an error. The search must complete normally.
  ASSERT_TRUE(engine
                  .AddQuery("empty",
                            R"(FOR $v IN document("imdbdata")/imdb/nope
                               RETURN $v/title)",
                            1.0)
                  .ok());
  auto result = engine.FindBestConfiguration(core::GreedySoOptions());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->search.degraded);
}

TEST(MalformedInputTest, DuplicateCatalogTableIsRecoverable) {
  rel::Table t;
  t.name = "T";
  t.key_column = "T_id";
  rel::Catalog catalog;
  EXPECT_TRUE(catalog.AddTable(t).ok());
  Status st = catalog.AddTable(t);
  EXPECT_EQ(st.code(), Status::Code::kInvalidArgument);
  EXPECT_NE(st.message().find("T"), std::string::npos);
  EXPECT_EQ(catalog.size(), 1u);
}

// ---- ParallelFor cancellation ----

TEST(ParallelForTest, PreCancelledTokenRunsNothing) {
  core::CancelToken cancel;
  cancel.Cancel();
  int calls = 0;
  core::ParallelFor(16, 1, [&](size_t) { ++calls; }, &cancel);
  core::ParallelFor(16, 4, [&](size_t) { ++calls; }, &cancel);
  EXPECT_EQ(calls, 0);
}

TEST(ParallelForTest, CancellingMidRunStopsFurtherClaims) {
  core::CancelToken cancel;
  int calls = 0;
  core::ParallelFor(
      100, 1,
      [&](size_t i) {
        ++calls;
        if (i == 2) cancel.Cancel();
      },
      &cancel);
  EXPECT_EQ(calls, 3);  // serial path: indices 0..2, then the claim stops
}

// ---- Budgeted, degradable search ----

// Acceptance shape: a 1-candidate budget produces a valid (mappable,
// costed) result, degraded, with matching stats — at 1 and 8 threads, with
// identical outcomes (candidate budgets are deterministic).
TEST(DegradedSearchTest, OneCandidateBudgetIsValidDegradedAndDeterministic) {
  double cost_at_1 = 0;
  for (int threads : {1, 8}) {
    core::MappingEngine engine = ImdbEngine();
    core::SearchOptions options = core::GreedySoOptions();
    options.threads = threads;
    options.max_candidates = 1;
    auto result = engine.FindBestConfiguration(options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    const core::SearchResult& search = result->search;
    EXPECT_TRUE(search.degraded);
    EXPECT_NE(search.degraded_reason.find("candidate budget"),
              std::string::npos);
    // Exactly the initial configuration plus one candidate were costed.
    EXPECT_EQ(search.stats.schemas_costed, 2);
    EXPECT_EQ(search.stats.candidates_failed, 0);
    // The returned configuration is fully mapped (engine result carries the
    // catalog) and its cost is real.
    EXPECT_GT(result->mapping.catalog().size(), 0u);
    EXPECT_GT(search.best_cost, 0);
    EXPECT_TRUE(map::MapSchema(search.best_schema).ok());
    // Summary/explain surface the degradation.
    EXPECT_NE(core::SearchSummary(search).find("degraded"),
              std::string::npos);
    EXPECT_NE(core::ExplainSearchTable(search).find("degraded"),
              std::string::npos);
    if (threads == 1) {
      cost_at_1 = search.best_cost;
    } else {
      EXPECT_DOUBLE_EQ(search.best_cost, cost_at_1);  // bit-for-bit
    }
  }
}

// Acceptance shape: a failpoint-forced optimizer fault on a candidate is
// skipped (counted), the search completes, and the result is degraded but
// valid — at 1 and 8 threads.
TEST(DegradedSearchTest, FailpointForcedOptimizerFaultSkipsCandidate) {
  for (int threads : {1, 8}) {
    core::MappingEngine engine = ImdbEngine();
    core::SearchOptions options = core::GreedySoOptions();
    options.threads = threads;
    // The 2nd full configuration costing (= the first candidate) fails.
    options.failpoints = "search.cost_schema=2";
    auto result = engine.FindBestConfiguration(options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    const core::SearchResult& search = result->search;
    EXPECT_TRUE(search.degraded);
    EXPECT_NE(search.degraded_reason.find("skipped"), std::string::npos);
    EXPECT_EQ(search.stats.candidates_failed, 1);
    EXPECT_GT(search.stats.schemas_costed, 0);
    EXPECT_TRUE(map::MapSchema(search.best_schema).ok());
    EXPECT_GT(search.best_cost, 0);
    // SearchStats and the run's metric counters agree.
    EXPECT_EQ(result->report.CounterValue("search.candidates_failed"),
              search.stats.candidates_failed);
    EXPECT_EQ(result->report.CounterValue("search.degraded"), 1);
    // The failpoint was disarmed when the search returned.
    EXPECT_FALSE(fp::AnyActive());
  }
}

TEST(DegradedSearchTest, OptimizerFailpointAfterInitialCostIsSkipped) {
  core::MappingEngine engine = ImdbEngine();
  core::SearchOptions options = core::GreedySoOptions();
  options.threads = 1;
  options.cache_query_costs = false;  // every schema costs 4 plan calls
  // Plan calls 1..4 cost the initial configuration; the 5th (first
  // candidate's first query) fails.
  options.failpoints = "optimizer.plan_query=5";
  auto result = engine.FindBestConfiguration(options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->search.degraded);
  EXPECT_EQ(result->search.stats.candidates_failed, 1);
  EXPECT_NE(result->search.degraded_reason.find("optimizer.plan_query"),
            std::string::npos);
  EXPECT_TRUE(map::MapSchema(result->search.best_schema).ok());
}

TEST(DegradedSearchTest, TransformFailpointIsSkippedNotFatal) {
  core::MappingEngine engine = ImdbEngine();
  core::SearchOptions options = core::GreedySoOptions();
  options.threads = 1;
  options.failpoints = "transforms.apply=1";
  auto result = engine.FindBestConfiguration(options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->search.degraded);
  EXPECT_EQ(result->search.stats.candidates_failed, 1);
}

TEST(DegradedSearchTest, InvalidFailpointSpecFailsTheSearch) {
  core::MappingEngine engine = ImdbEngine();
  core::SearchOptions options = core::GreedySoOptions();
  options.failpoints = "site=0";
  auto result = engine.FindBestConfiguration(options);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), Status::Code::kInvalidArgument);
}

TEST(DegradedSearchTest, IterationBudgetDegradesGracefully) {
  core::MappingEngine engine = ImdbEngine();
  core::SearchOptions options = core::GreedySoOptions();
  options.threads = 1;
  options.max_iterations = 1;  // greedy-so needs many more to converge
  auto result = engine.FindBestConfiguration(options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->search.degraded);
  EXPECT_NE(result->search.degraded_reason.find("iteration budget"),
            std::string::npos);
  EXPECT_LE(result->search.trace.size(), 2u);
  EXPECT_TRUE(map::MapSchema(result->search.best_schema).ok());
}

TEST(DegradedSearchTest, WallClockBudgetReturnsBestSoFar) {
  core::MappingEngine engine = ImdbEngine();
  core::SearchOptions options = core::GreedySoOptions();
  options.threads = 1;
  options.budget_ms = 1;  // almost certainly exhausted mid-search
  auto result = engine.FindBestConfiguration(options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Timing-dependent whether the budget tripped before convergence, but
  // the contract holds either way: a valid, costed configuration.
  EXPECT_TRUE(map::MapSchema(result->search.best_schema).ok());
  EXPECT_GT(result->search.best_cost, 0);
  if (result->search.degraded) {
    EXPECT_NE(result->search.degraded_reason.find("wall-clock"),
              std::string::npos);
  }
}

TEST(DegradedSearchTest, UnbudgetedSearchIsNotDegraded) {
  core::MappingEngine engine = ImdbEngine();
  auto result = engine.FindBestConfiguration(core::GreedySoOptions());
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->search.degraded);
  EXPECT_TRUE(result->search.degraded_reason.empty());
  EXPECT_EQ(result->search.stats.candidates_failed, 0);
  EXPECT_EQ(result->report.CounterValue("search.degraded"), 0);
}

TEST(DegradedSearchTest, ForceSerialFailpointPreservesResults) {
  core::MappingEngine engine = ImdbEngine();
  core::SearchOptions serial = core::GreedySoOptions();
  serial.threads = 1;
  auto baseline = engine.FindBestConfiguration(serial);
  ASSERT_TRUE(baseline.ok());

  core::SearchOptions starved = core::GreedySoOptions();
  starved.threads = 8;
  starved.failpoints = "parallel.force_serial";  // pool degraded to serial
  auto degraded_pool = engine.FindBestConfiguration(starved);
  ASSERT_TRUE(degraded_pool.ok());
  EXPECT_DOUBLE_EQ(degraded_pool->search.best_cost,
                   baseline->search.best_cost);
  EXPECT_EQ(degraded_pool->search.trace.size(),
            baseline->search.trace.size());
  EXPECT_FALSE(degraded_pool->search.degraded);
}

}  // namespace
}  // namespace legodb
