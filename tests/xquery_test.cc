// Unit tests for the XQuery subset: parser coverage of Appendix C,
// DOM-evaluation semantics, and result-set utilities.
#include <gtest/gtest.h>

#include "imdb/imdb.h"
#include "xml/parser.h"
#include "xquery/evaluator.h"
#include "xquery/parser.h"
#include "xquery/result.h"

namespace legodb::xq {
namespace {

// ---- Parser ----

TEST(QueryParser, SimpleLookup) {
  auto q = ParseQuery(
      "FOR $v IN document(\"d\")/imdb/show WHERE $v/title = c1 "
      "RETURN $v/title, $v/year");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->fors.size(), 1u);
  EXPECT_TRUE(q->fors[0].from_document);
  EXPECT_EQ(q->fors[0].steps, (std::vector<std::string>{"imdb", "show"}));
  ASSERT_EQ(q->where.size(), 1u);
  EXPECT_EQ(q->where[0].rhs_const.symbol, "c1");
  EXPECT_EQ(q->ret.size(), 2u);
}

TEST(QueryParser, KeywordsAreCaseInsensitive) {
  auto q = ParseQuery("for $v in document(\"d\")/a return $v/x");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
}

TEST(QueryParser, MultipleBindingsAndConjunction) {
  auto q = ParseQuery(
      "FOR $i IN document(\"d\")/imdb FOR $a IN $i/actor, $d IN $i/director "
      "WHERE $a/name = $d/name AND $a/name = \"x\" RETURN $a/name");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->fors.size(), 3u);
  EXPECT_EQ(q->fors[1].source_var, "i");
  EXPECT_TRUE(q->where[0].rhs_is_path);
  EXPECT_FALSE(q->where[1].rhs_is_path);
  EXPECT_EQ(q->where[1].rhs_const.string_value, "x");
}

TEST(QueryParser, IntegerAndStringConstants) {
  auto q = ParseQuery(
      "FOR $v IN document(\"d\")/a WHERE $v/year = 1999 RETURN $v/year");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->where[0].rhs_const.kind, Constant::Kind::kInt);
  EXPECT_EQ(q->where[0].rhs_const.int_value, 1999);
}

TEST(QueryParser, NestedSubqueryInReturn) {
  auto q = ParseQuery(
      "FOR $v IN document(\"d\")/imdb/show RETURN $v/title, "
      "FOR $e IN $v/episodes WHERE $e/guest_director = c1 RETURN $e/name");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->ret.size(), 2u);
  EXPECT_EQ(q->ret[1].kind, ReturnItem::Kind::kSubquery);
  EXPECT_EQ(q->ret[1].subquery->fors[0].source_var, "v");
}

TEST(QueryParser, ElementConstructor) {
  auto q = ParseQuery(
      "FOR $a IN document(\"d\")/imdb/actor RETURN "
      "<result> $a/name $a/name </result>");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->ret.size(), 1u);
  EXPECT_EQ(q->ret[0].kind, ReturnItem::Kind::kElement);
  EXPECT_EQ(q->ret[0].element_name, "result");
  EXPECT_EQ(q->ret[0].children.size(), 2u);
  // Flattening sees through constructors.
  EXPECT_EQ(q->FlatReturnItems().size(), 2u);
}

TEST(QueryParser, BarePublishVariable) {
  auto q = ParseQuery("FOR $s IN document(\"d\")/imdb/show RETURN $s");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->IsPublish());
}

TEST(QueryParser, AttributeSteps) {
  auto q = ParseQuery("FOR $v IN document(\"d\")/a RETURN $v/@type");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->ret[0].path.steps, (std::vector<std::string>{"@type"}));
}

TEST(QueryParser, AllPaperQueriesParse) {
  const char* names[] = {"Q1",  "Q2",  "Q3",  "Q4",  "Q5",  "Q6",
                         "Q7",  "Q8",  "Q9",  "Q10", "Q11", "Q12",
                         "Q13", "Q14", "Q15", "Q16", "Q17", "Q18",
                         "Q19", "Q20", "S2Q1", "S2Q2", "S2Q3", "S2Q4"};
  for (const char* name : names) {
    const char* text = imdb::QueryText(name);
    ASSERT_NE(text, nullptr) << name;
    auto q = ParseQuery(text);
    EXPECT_TRUE(q.ok()) << name << ": " << q.status().ToString();
  }
}

TEST(QueryParser, UnknownQueryNameIsNull) {
  EXPECT_EQ(imdb::QueryText("Q999"), nullptr);
}

TEST(QueryParser, Errors) {
  EXPECT_FALSE(ParseQuery("").ok());
  EXPECT_FALSE(ParseQuery("RETURN $v").ok());
  EXPECT_FALSE(ParseQuery("FOR $v IN document(\"d\")/a").ok());  // no RETURN
  EXPECT_FALSE(ParseQuery("FOR $v document(\"d\")/a RETURN $v").ok());
  EXPECT_FALSE(
      ParseQuery("FOR $v IN document(\"d\")/a WHERE $v RETURN $v").ok());
}

TEST(QueryParser, ToStringRoundTripsThroughParser) {
  auto q1 = ParseQuery(imdb::QueryText("Q13"));
  ASSERT_TRUE(q1.ok());
  auto q2 = ParseQuery(q1->ToString());
  ASSERT_TRUE(q2.ok()) << q2.status().ToString() << "\n" << q1->ToString();
  EXPECT_EQ(q1->ToString(), q2->ToString());
}

// ---- Evaluator ----

xml::Document Doc() {
  auto doc = xml::ParseDocument(R"(
    <imdb>
      <show type="Movie"><title>alpha</title><year>1999</year>
        <aka>a1</aka><aka>a2</aka>
        <box_office>10</box_office><video_sales>20</video_sales></show>
      <show type="TV series"><title>beta</title><year>2001</year>
        <seasons>3</seasons><description>desc</description>
        <episodes><name>e1</name><guest_director>gd1</guest_director></episodes>
        <episodes><name>e2</name><guest_director>gd2</guest_director></episodes>
      </show>
    </imdb>)");
  EXPECT_TRUE(doc.ok()) << doc.status().ToString();
  return std::move(doc).value();
}

ResultSet Eval(const char* text,
               const std::map<std::string, Value>& params = {}) {
  auto q = ParseQuery(text);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  auto r = EvaluateOnDocument(q.value(), Doc(), params);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

TEST(Evaluator, SimpleSelection) {
  ResultSet r = Eval(
      "FOR $v IN document(\"d\")/imdb/show WHERE $v/year = 1999 "
      "RETURN $v/title");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0], Value::Str("alpha"));
}

TEST(Evaluator, IntegerComparisonIsNumeric) {
  ResultSet r = Eval(
      "FOR $v IN document(\"d\")/imdb/show WHERE $v/year = 2001 "
      "RETURN $v/year");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0], Value::Int(2001));
}

TEST(Evaluator, AttributeFallback) {
  ResultSet r = Eval(
      "FOR $v IN document(\"d\")/imdb/show WHERE $v/title = \"alpha\" "
      "RETURN $v/type");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0], Value::Str("Movie"));
}

TEST(Evaluator, MultiValuedReturnExpandsRows) {
  ResultSet r = Eval(
      "FOR $v IN document(\"d\")/imdb/show WHERE $v/title = \"alpha\" "
      "RETURN $v/title, $v/aka");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][1], Value::Str("a1"));
  EXPECT_EQ(r.rows[1][1], Value::Str("a2"));
}

TEST(Evaluator, StrictProjectionDropsRowsWithMissingPaths) {
  // Only the TV show has a description.
  ResultSet r = Eval(
      "FOR $v IN document(\"d\")/imdb/show RETURN $v/title, $v/description");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0], Value::Str("beta"));
}

TEST(Evaluator, SymbolicParametersBind) {
  ResultSet r = Eval(
      "FOR $v IN document(\"d\")/imdb/show WHERE $v/title = c1 "
      "RETURN $v/year",
      {{"c1", Value::Str("beta")}});
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0], Value::Int(2001));
}

TEST(Evaluator, UnboundParameterIsAnError) {
  auto q = ParseQuery(
      "FOR $v IN document(\"d\")/imdb/show WHERE $v/title = c9 RETURN $v/title");
  ASSERT_TRUE(q.ok());
  auto r = EvaluateOnDocument(q.value(), Doc(), {});
  EXPECT_FALSE(r.ok());
}

TEST(Evaluator, SubqueryWithWhereFiltersOuter) {
  ResultSet r = Eval(
      "FOR $v IN document(\"d\")/imdb/show RETURN $v/title, "
      "FOR $e IN $v/episodes WHERE $e/guest_director = \"gd1\" "
      "RETURN $e/name");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0], Value::Str("beta"));
  EXPECT_EQ(r.rows[0][1], Value::Str("e1"));
}

TEST(Evaluator, SubqueryWithoutWhereIsLeftOuter) {
  ResultSet r = Eval(
      "FOR $v IN document(\"d\")/imdb/show RETURN $v/title, "
      "FOR $e IN $v/episodes RETURN $e/name");
  // Movie has no episodes: kept with NULL; TV yields one row per episode.
  ASSERT_EQ(r.rows.size(), 3u);
  r.SortRows();
  EXPECT_TRUE(r.rows[0][1].is_null() || r.rows[1][1].is_null() ||
              r.rows[2][1].is_null());
}

TEST(Evaluator, ValueJoinAcrossVariables) {
  ResultSet r = Eval(
      "FOR $a IN document(\"d\")/imdb/show, $b IN document(\"d\")/imdb/show "
      "WHERE $a/title = $b/title RETURN $a/title");
  EXPECT_EQ(r.rows.size(), 2u);  // each show joins itself only
}

TEST(Evaluator, PublishSerializesSubtree) {
  ResultSet r = Eval(
      "FOR $v IN document(\"d\")/imdb/show WHERE $v/year = 1999 RETURN $v");
  ASSERT_EQ(r.rows.size(), 1u);
  const std::string& xml_text = r.rows[0][0].as_string();
  EXPECT_NE(xml_text.find("<title>alpha</title>"), std::string::npos);
}

TEST(Evaluator, LabelsFollowReturnStructure) {
  auto q = ParseQuery(
      "FOR $v IN document(\"d\")/imdb/show RETURN <r> $v/title "
      "FOR $e IN $v/episodes RETURN $e/name </r>");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(QueryLabels(q.value()),
            (std::vector<std::string>{"$v/title", "$e/name"}));
}

TEST(Evaluator, MissingBindingPathYieldsNoRows) {
  ResultSet r = Eval("FOR $v IN document(\"d\")/imdb/nothing RETURN $v/x");
  EXPECT_TRUE(r.rows.empty());
}

TEST(Evaluator, WrongRootNameYieldsNoRows) {
  ResultSet r = Eval("FOR $v IN document(\"d\")/wrong/show RETURN $v/title");
  EXPECT_TRUE(r.rows.empty());
}

// ---- CanonicalValue / ResultSet ----

TEST(CanonicalValueTest, IntegersParse) {
  EXPECT_EQ(CanonicalValue("42"), Value::Int(42));
  EXPECT_EQ(CanonicalValue("  -7 "), Value::Int(-7));
  EXPECT_EQ(CanonicalValue("4 2"), Value::Str("4 2"));
  EXPECT_EQ(CanonicalValue("abc"), Value::Str("abc"));
  EXPECT_EQ(CanonicalValue(""), Value::Str(""));
}

TEST(ResultSetTest, SameRowsIsOrderInsensitive) {
  ResultSet a, b;
  a.rows = {{Value::Int(1)}, {Value::Int(2)}};
  b.rows = {{Value::Int(2)}, {Value::Int(1)}};
  EXPECT_TRUE(a.SameRows(b));
  b.rows.push_back({Value::Int(2)});
  EXPECT_FALSE(a.SameRows(b));
}

TEST(ResultSetTest, SameRowsIsMultisetSensitive) {
  ResultSet a, b;
  a.rows = {{Value::Int(1)}, {Value::Int(1)}, {Value::Int(2)}};
  b.rows = {{Value::Int(1)}, {Value::Int(2)}, {Value::Int(2)}};
  EXPECT_FALSE(a.SameRows(b));
}

TEST(ResultSetTest, ToStringIncludesLabelsAndNulls) {
  ResultSet r;
  r.labels = {"x", "y"};
  r.rows = {{Value::Int(1), Value::MakeNull()}};
  std::string s = r.ToString();
  EXPECT_NE(s.find("x | y"), std::string::npos);
  EXPECT_NE(s.find("1 | NULL"), std::string::npos);
}

}  // namespace
}  // namespace legodb::xq
