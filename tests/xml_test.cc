// Unit tests for the XML substrate: DOM operations, parser (including
// entities, CDATA, comments, error reporting) and serializer round-trips.
#include <gtest/gtest.h>

#include "xml/dom.h"
#include "xml/parser.h"
#include "xml/writer.h"

namespace legodb::xml {
namespace {

TEST(Dom, BuildTree) {
  NodePtr root = Node::Element("show");
  root->SetAttribute("type", "Movie");
  root->AddElement("title", "The Fugitive");
  Node* year = root->AddElement("year");
  year->AddText("1993");

  EXPECT_TRUE(root->is_element());
  EXPECT_EQ(root->name(), "show");
  ASSERT_NE(root->FindAttribute("type"), nullptr);
  EXPECT_EQ(*root->FindAttribute("type"), "Movie");
  EXPECT_EQ(root->FindAttribute("missing"), nullptr);
  EXPECT_EQ(root->children().size(), 2u);
  EXPECT_EQ(root->FirstChildNamed("year")->TextContent(), "1993");
}

TEST(Dom, ChildrenNamedReturnsInOrder) {
  NodePtr root = Node::Element("r");
  root->AddElement("a", "1");
  root->AddElement("b", "x");
  root->AddElement("a", "2");
  auto matches = root->ChildrenNamed("a");
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_EQ(matches[0]->TextContent(), "1");
  EXPECT_EQ(matches[1]->TextContent(), "2");
}

TEST(Dom, TextContentConcatenatesDescendants) {
  NodePtr root = Node::Element("r");
  root->AddText("a");
  root->AddElement("c", "b");
  root->AddText("c");
  EXPECT_EQ(root->TextContent(), "abc");
}

TEST(Dom, SubtreeSizeCountsAllNodes) {
  NodePtr root = Node::Element("r");
  root->AddElement("a", "text");  // element + text node
  EXPECT_EQ(root->SubtreeSize(), 3u);
}

TEST(Dom, ReleaseChildDetaches) {
  NodePtr root = Node::Element("r");
  root->AddElement("a");
  root->AddElement("b");
  NodePtr a = root->ReleaseChild(0);
  EXPECT_EQ(a->name(), "a");
  ASSERT_EQ(root->children().size(), 1u);
  EXPECT_EQ(root->children()[0]->name(), "b");
}

TEST(Parser, SimpleDocument) {
  auto doc = ParseDocument("<a><b>hi</b><c x='1'/></a>");
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->root->name(), "a");
  EXPECT_EQ(doc->root->FirstChildNamed("b")->TextContent(), "hi");
  EXPECT_EQ(*doc->root->FirstChildNamed("c")->FindAttribute("x"), "1");
}

TEST(Parser, SkipsPrologAndComments) {
  auto doc = ParseDocument(
      "<?xml version=\"1.0\"?><!DOCTYPE a [<!ELEMENT a (#PCDATA)>]>"
      "<!-- comment --><a>x<!-- inner --></a><!-- after -->");
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->root->TextContent(), "x");
}

TEST(Parser, DecodesPredefinedEntities) {
  auto doc = ParseDocument("<a x=\"&lt;&amp;&gt;\">&quot;&apos;</a>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(*doc->root->FindAttribute("x"), "<&>");
  EXPECT_EQ(doc->root->TextContent(), "\"'");
}

TEST(Parser, DecodesNumericCharacterReferences) {
  auto doc = ParseDocument("<a>&#65;&#x42;</a>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->root->TextContent(), "AB");
}

TEST(Parser, DecodesMultibyteCharacterReference) {
  auto doc = ParseDocument("<a>&#233;</a>");  // é
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->root->TextContent(), "\xC3\xA9");
}

TEST(Parser, Cdata) {
  auto doc = ParseDocument("<a><![CDATA[<not> &markup;]]></a>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->root->TextContent(), "<not> &markup;");
}

TEST(Parser, WhitespaceOnlyTextIsDropped) {
  auto doc = ParseDocument("<a>\n  <b>x</b>\n  </a>");
  ASSERT_TRUE(doc.ok());
  // Only the <b> element child; formatting whitespace is not data.
  EXPECT_EQ(doc->root->children().size(), 1u);
}

TEST(Parser, MixedContentPreserved) {
  auto doc = ParseDocument("<a>before<b/>after</a>");
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ(doc->root->children().size(), 3u);
  EXPECT_TRUE(doc->root->children()[0]->is_text());
  EXPECT_TRUE(doc->root->children()[1]->is_element());
  EXPECT_TRUE(doc->root->children()[2]->is_text());
}

TEST(Parser, RejectsMismatchedTags) {
  auto doc = ParseDocument("<a><b></a></b>");
  EXPECT_FALSE(doc.ok());
  EXPECT_EQ(doc.status().code(), Status::Code::kParseError);
}

TEST(Parser, RejectsUnterminatedElement) {
  EXPECT_FALSE(ParseDocument("<a><b>").ok());
}

TEST(Parser, RejectsTrailingContent) {
  EXPECT_FALSE(ParseDocument("<a/><b/>").ok());
}

TEST(Parser, RejectsUnknownEntity) {
  EXPECT_FALSE(ParseDocument("<a>&nope;</a>").ok());
}

TEST(Parser, RejectsMissingAttributeQuotes) {
  EXPECT_FALSE(ParseDocument("<a x=1/>").ok());
}

TEST(Parser, ErrorsIncludeLineNumbers) {
  auto doc = ParseDocument("<a>\n<b>\n</c>\n</a>");
  ASSERT_FALSE(doc.ok());
  EXPECT_NE(doc.status().message().find("line 3"), std::string::npos);
}

TEST(Parser, SingleQuotedAttributes) {
  auto doc = ParseDocument("<a x='va\"lue'/>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(*doc->root->FindAttribute("x"), "va\"lue");
}

TEST(Parser, NamesWithDotsAndDashes) {
  auto doc = ParseDocument("<ns:a-b.c><d_e/></ns:a-b.c>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->root->name(), "ns:a-b.c");
}

TEST(Writer, EscapesSpecialCharacters) {
  EXPECT_EQ(EscapeText("a<b>&\"'"), "a&lt;b&gt;&amp;&quot;&apos;");
}

TEST(Writer, SerializeCompact) {
  NodePtr root = Node::Element("a");
  root->SetAttribute("k", "v");
  root->AddElement("b", "x");
  EXPECT_EQ(Serialize(*root, /*pretty=*/false), "<a k=\"v\"><b>x</b></a>");
}

TEST(Writer, SelfClosingEmptyElement) {
  NodePtr root = Node::Element("empty");
  EXPECT_EQ(Serialize(*root, false), "<empty/>");
}

class RoundTripTest : public ::testing::TestWithParam<const char*> {};

TEST_P(RoundTripTest, ParseSerializeParseIsStable) {
  auto doc1 = ParseDocument(GetParam());
  ASSERT_TRUE(doc1.ok()) << doc1.status().ToString();
  std::string text1 = Serialize(doc1.value());
  auto doc2 = ParseDocument(text1);
  ASSERT_TRUE(doc2.ok()) << doc2.status().ToString();
  EXPECT_EQ(text1, Serialize(doc2.value()));
}

INSTANTIATE_TEST_SUITE_P(
    Documents, RoundTripTest,
    ::testing::Values(
        "<a/>", "<a>text</a>", "<a x=\"1\" y=\"2\"><b/><b>t</b></a>",
        "<show type=\"Movie\"><title>Fugitive &amp; more</title>"
        "<year>1993</year><aka>Auf der Flucht</aka></show>",
        "<r><deep><deeper><deepest>v</deepest></deeper></deep></r>"));

}  // namespace
}  // namespace legodb::xml
