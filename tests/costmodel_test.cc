// Cost-model validation: the paper checked its optimizer estimates against
// Microsoft SQL Server 6.5 and found ~10% agreement on most queries. We
// check the analogous property against our own execution engine: across
// queries and configurations, estimated cost must rank-order and roughly
// track the measured work (same weighted resources: seeks, bytes read,
// bytes written, tuples).
//
// Estimates use catalog statistics for a *large* hypothetical database, so
// we measure on a shredded database and compare SHAPES on the same dataset:
// the catalog statistics here are collected from the very documents we
// execute against, making estimate and measurement commensurable.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "engine/executor.h"
#include "imdb/imdb.h"
#include "mapping/mapping.h"
#include "optimizer/optimizer.h"
#include "pschema/pschema.h"
#include "storage/shredder.h"
#include "translate/translate.h"
#include "xquery/parser.h"
#include "xschema/annotate.h"
#include "xschema/stats_collector.h"

namespace legodb {
namespace {

struct Measurement {
  std::string query;
  double estimated = 0;
  double measured = 0;
};

class CostModelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    imdb::ImdbScale scale;
    scale.shows = 300;
    scale.directors = 60;
    scale.actors = 100;
    doc_ = imdb::Generate(scale);
    // Statistics collected from the actual data -> catalog matches reality.
    xs::StatsCollector collector;
    collector.AddDocument(doc_);
    stats_ = collector.Finish();
  }

  // Runs one query on one configuration; returns (estimate, measured cost
  // with the same resource weights).
  Measurement Run(const xs::Schema& config, const std::string& qname) {
    auto mapping = map::MapSchema(config);
    EXPECT_TRUE(mapping.ok()) << mapping.status().ToString();
    store::Database db(mapping->catalog());
    EXPECT_TRUE(store::ShredDocument(doc_, mapping.value(), &db).ok());

    auto query = xq::ParseQuery(imdb::QueryText(qname));
    EXPECT_TRUE(query.ok());
    auto rq = xlat::TranslateQuery(query.value(), mapping.value());
    EXPECT_TRUE(rq.ok()) << rq.status().ToString();
    opt::CostParams params;
    opt::Optimizer optimizer(mapping->catalog(), params);
    auto planned = optimizer.PlanQuery(rq.value());
    EXPECT_TRUE(planned.ok()) << planned.status().ToString();

    std::vector<opt::PhysicalPlanPtr> plans;
    for (const auto& b : planned->blocks) plans.push_back(b.plan);
    std::map<std::string, Value> bindings = {
        {"c1", Value::Str("title1")},
        {"c2", Value::Str("title2")},
        {"c4", Value::Str("person3")},
    };
    engine::Executor exec(&db, bindings);
    auto result = exec.ExecuteQuery(rq.value(), plans);
    EXPECT_TRUE(result.ok()) << result.status().ToString();

    Measurement m;
    m.query = qname;
    m.estimated = planned->total_cost;
    m.measured = exec.stats().WeightedCost(
        params.seek_cost, params.read_per_byte, params.write_per_byte,
        params.cpu_per_tuple);
    return m;
  }

  xs::Schema Config() {
    auto schema = imdb::Schema();
    EXPECT_TRUE(schema.ok());
    return ps::Normalize(xs::AnnotateSchema(schema.value(), stats_));
  }

  xml::Document doc_;
  xs::StatsSet stats_;
};

TEST_F(CostModelTest, EstimatesTrackMeasurementsWithinFactor) {
  xs::Schema config = Config();
  // Scan- and join-dominated queries where estimates are meaningful.
  for (const char* q : {"Q2", "Q3", "Q7", "Q8", "Q16"}) {
    Measurement m = Run(config, q);
    ASSERT_GT(m.measured, 0) << q;
    double ratio = m.estimated / m.measured;
    // The paper reports ~10%; with a synthetic engine we accept a factor
    // of 4 — the point is the estimates are calibrated, not exact.
    EXPECT_GT(ratio, 0.25) << q << " est=" << m.estimated
                           << " meas=" << m.measured;
    EXPECT_LT(ratio, 4.0) << q << " est=" << m.estimated
                          << " meas=" << m.measured;
  }
}

TEST_F(CostModelTest, EstimatesRankOrderQueries) {
  xs::Schema config = Config();
  std::vector<Measurement> ms;
  for (const char* q : {"Q2", "Q16", "Q7"}) ms.push_back(Run(config, q));
  // Kendall-style agreement: every pair ordered the same way by estimate
  // and by measurement.
  for (size_t i = 0; i < ms.size(); ++i) {
    for (size_t j = i + 1; j < ms.size(); ++j) {
      bool est_less = ms[i].estimated < ms[j].estimated;
      bool meas_less = ms[i].measured < ms[j].measured;
      EXPECT_EQ(est_less, meas_less)
          << ms[i].query << " vs " << ms[j].query;
    }
  }
}

TEST_F(CostModelTest, ConfigurationRankingAgreesForPublish) {
  // The cheaper configuration by estimate must be cheaper by measurement
  // for the publish query (Q16) across outlined vs inlined configurations.
  auto schema = imdb::Schema();
  ASSERT_TRUE(schema.ok());
  xs::Schema annotated = xs::AnnotateSchema(schema.value(), stats_);
  Measurement inlined = Run(ps::AllInlined(annotated), "Q16");
  Measurement outlined = Run(ps::AllOutlined(annotated), "Q16");
  bool est_prefers_inlined = inlined.estimated < outlined.estimated;
  bool meas_prefers_inlined = inlined.measured < outlined.measured;
  EXPECT_EQ(est_prefers_inlined, meas_prefers_inlined)
      << "inlined est/meas=" << inlined.estimated << "/" << inlined.measured
      << " outlined est/meas=" << outlined.estimated << "/"
      << outlined.measured;
}

}  // namespace
}  // namespace legodb
