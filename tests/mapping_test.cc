// Unit tests for the fixed mapping rel(ps) — Table 1 of the paper: table
// and column derivation, key/foreign-key generation, virtual union types,
// recursive types and wildcards, and statistics propagation.
#include <gtest/gtest.h>

#include "imdb/imdb.h"
#include "mapping/mapping.h"
#include "pschema/pschema.h"
#include "xschema/annotate.h"
#include "xschema/schema_parser.h"

namespace legodb::map {
namespace {

using xs::ParseSchema;

Mapping M(const char* text) {
  auto schema = ParseSchema(text);
  EXPECT_TRUE(schema.ok()) << schema.status().ToString();
  auto mapping = MapSchema(ps::Normalize(schema.value()));
  EXPECT_TRUE(mapping.ok()) << mapping.status().ToString();
  return std::move(mapping).value();
}

TEST(MapSchemaTest, OneTablePerNamedType) {
  Mapping m = M("type A = a[ B* ] type B = b[ String ]");
  EXPECT_TRUE(m.catalog().HasTable("A"));
  EXPECT_TRUE(m.catalog().HasTable("B"));
  EXPECT_EQ(m.catalog().size(), 2u);
}

TEST(MapSchemaTest, KeyColumnNamedAfterType) {
  Mapping m = M("type A = a[ String ]");
  const rel::Table& t = m.catalog().GetTable("A");
  EXPECT_EQ(t.key_column, "A_id");
  ASSERT_NE(t.FindColumn("A_id"), nullptr);
  EXPECT_EQ(t.FindColumn("A_id")->type.kind, rel::SqlType::Kind::kInt);
}

TEST(MapSchemaTest, ScalarContentNamedAfterRootElement) {
  // `type Aka = aka[ String ]` maps to TABLE Aka (Aka_id, aka, ...)
  // — the paper's Figure 3.
  Mapping m = M("type Show = show[ Aka* ] type Aka = aka[ String ]");
  const rel::Table& aka = m.catalog().GetTable("Aka");
  EXPECT_NE(aka.FindColumn("aka"), nullptr);
  EXPECT_NE(aka.FindColumn("parent_Show"), nullptr);
  ASSERT_EQ(aka.foreign_keys.size(), 1u);
  EXPECT_EQ(aka.foreign_keys[0].parent_table, "Show");
}

TEST(MapSchemaTest, NestedSingletonContentFlattensWithPrefixes) {
  Mapping m = M("type A = a[ bio[ birthday[ String ], text[ String ] ] ]");
  const rel::Table& t = m.catalog().GetTable("A");
  EXPECT_NE(t.FindColumn("bio_birthday"), nullptr);
  EXPECT_NE(t.FindColumn("bio_text"), nullptr);
}

TEST(MapSchemaTest, AttributesMapToColumns) {
  Mapping m = M("type A = a[ @type[ String ], title[ String ] ]");
  const rel::Table& t = m.catalog().GetTable("A");
  EXPECT_NE(t.FindColumn("type"), nullptr);
  EXPECT_NE(t.FindColumn("title"), nullptr);
}

TEST(MapSchemaTest, DuplicateColumnNamesAreUniquified) {
  Mapping m = M("type A = a[ @x[ String ], x[ Integer ] ]");
  const rel::Table& t = m.catalog().GetTable("A");
  EXPECT_NE(t.FindColumn("x"), nullptr);
  EXPECT_NE(t.FindColumn("x_2"), nullptr);
}

TEST(MapSchemaTest, OptionalContentIsNullable) {
  Mapping m = M("type A = a[ b[ String ]?, c[ Integer ] ]");
  const rel::Table& t = m.catalog().GetTable("A");
  EXPECT_TRUE(t.FindColumn("b")->nullable);
  EXPECT_FALSE(t.FindColumn("c")->nullable);
}

TEST(MapSchemaTest, WildcardsGetTildeColumn) {
  // The paper's Reviews example: reviews[ ~[String] ] maps to
  // (tilde, reviews) columns.
  Mapping m = M("type Show = show[ Reviews* ] "
                "type Reviews = reviews[ ~[ String ] ]");
  const rel::Table& t = m.catalog().GetTable("Reviews");
  EXPECT_NE(t.FindColumn("tilde"), nullptr);
  EXPECT_NE(t.FindColumn("reviews"), nullptr);
}

TEST(MapSchemaTest, BareScalarBodyGetsDataColumn) {
  Mapping m = M("type A = a[ B* ] type B = (~[ String ])");
  const rel::Table& t = m.catalog().GetTable("B");
  EXPECT_NE(t.FindColumn("tilde"), nullptr);
  EXPECT_NE(t.FindColumn("_data"), nullptr);
}

TEST(MapSchemaTest, VirtualUnionTypesHaveNoTable) {
  Mapping m = M("type A = a[ S* ] type S = (S1 | S2) "
                "type S1 = s[ x[ String ] ] type S2 = s[ y[ String ] ]");
  EXPECT_FALSE(m.catalog().HasTable("S"));
  EXPECT_TRUE(m.GetType("S").virtual_union);
  // FKs skip the virtual type and point at the concrete parent A.
  EXPECT_NE(m.catalog().GetTable("S1").FindColumn("parent_A"), nullptr);
  EXPECT_NE(m.catalog().GetTable("S2").FindColumn("parent_A"), nullptr);
}

TEST(MapSchemaTest, SharedTypeGetsOneFkPerParent) {
  Mapping m = M("type R = r[ A*, B* ] type A = a[ C* ] type B = b[ C* ] "
                "type C = c[ String ]");
  const rel::Table& c = m.catalog().GetTable("C");
  EXPECT_NE(c.FindColumn("parent_A"), nullptr);
  EXPECT_NE(c.FindColumn("parent_B"), nullptr);
  EXPECT_TRUE(c.FindColumn("parent_A")->nullable);
  EXPECT_EQ(c.foreign_keys.size(), 2u);
}

TEST(MapSchemaTest, RecursiveTypeSelfFk) {
  // Recursive types map fine: the child FK references the same table.
  Mapping m = M("type N = n[ v[ Integer ], N* ]");
  const rel::Table& n = m.catalog().GetTable("N");
  EXPECT_NE(n.FindColumn("parent_N"), nullptr);
  ASSERT_EQ(n.foreign_keys.size(), 1u);
  EXPECT_EQ(n.foreign_keys[0].parent_table, "N");
}

TEST(MapSchemaTest, AnyElementSchemaFromSection32) {
  // The paper's untyped-document type: AnyElement = ~[(AnyElement |
  // AnyScalar)*]. The derived configuration resembles STORED's overflow
  // relation.
  auto schema = ParseSchema(
      "type Root = root[ AnyElement* ] "
      "type AnyElement = ~[ (AnyElement | AnyScalar)* ] "
      "type AnyScalar = String");
  ASSERT_TRUE(schema.ok()) << schema.status().ToString();
  auto mapping = MapSchema(ps::Normalize(schema.value()));
  ASSERT_TRUE(mapping.ok()) << mapping.status().ToString();
  const rel::Table& any = mapping->catalog().GetTable("AnyElement");
  EXPECT_NE(any.FindColumn("tilde"), nullptr);
  EXPECT_NE(any.FindColumn("parent_AnyElement"), nullptr);
  EXPECT_NE(any.FindColumn("parent_Root"), nullptr);
  EXPECT_NE(
      mapping->catalog().GetTable("AnyScalar").FindColumn("_data"), nullptr);
}

TEST(MapSchemaTest, RejectsNonPhysicalSchema) {
  auto schema = ParseSchema("type A = a[ b[ String ]* ]");
  ASSERT_TRUE(schema.ok());
  EXPECT_FALSE(MapSchema(schema.value()).ok());
}

// ---- statistics propagation ----

xs::Schema AnnotatedImdb() {
  auto schema = imdb::Schema();
  EXPECT_TRUE(schema.ok());
  auto stats = imdb::Stats();
  EXPECT_TRUE(stats.ok());
  return xs::AnnotateSchema(schema.value(), stats.value());
}

TEST(MapStats, RowCountsFollowAppendixA) {
  auto mapping = MapSchema(ps::Normalize(AnnotatedImdb()));
  ASSERT_TRUE(mapping.ok()) << mapping.status().ToString();
  const rel::Catalog& c = mapping->catalog();
  EXPECT_NEAR(c.GetTable("Show").row_count, 34798, 1);
  EXPECT_NEAR(c.GetTable("Director").row_count, 26251, 1);
  EXPECT_NEAR(c.GetTable("Actor").row_count, 165786, 1);
  EXPECT_NEAR(c.GetTable("Aka").row_count, 13641, 1);
  EXPECT_NEAR(c.GetTable("Reviews").row_count, 11250, 1);
  EXPECT_NEAR(c.GetTable("Played").row_count, 663144, 2);
  EXPECT_NEAR(c.GetTable("Directed").row_count, 105004, 1);
  EXPECT_NEAR(c.GetTable("Episodes").row_count, 31250, 40);
}

TEST(MapStats, ColumnStatisticsPropagate) {
  auto mapping = MapSchema(ps::Normalize(AnnotatedImdb()));
  ASSERT_TRUE(mapping.ok());
  const rel::Table& show = mapping->catalog().GetTable("Show");
  const rel::Column* title = show.FindColumn("title");
  ASSERT_NE(title, nullptr);
  EXPECT_EQ(title->type.kind, rel::SqlType::Kind::kChar);
  EXPECT_DOUBLE_EQ(title->type.width, 50);
  EXPECT_DOUBLE_EQ(title->distincts, 34798);
  const rel::Column* year = show.FindColumn("year");
  ASSERT_NE(year, nullptr);
  EXPECT_EQ(year->min, 1800);
  EXPECT_EQ(year->max, 2100);
  EXPECT_DOUBLE_EQ(year->distincts, 300);
}

TEST(MapStats, FkDistinctsBoundedByParentRows) {
  auto mapping = MapSchema(ps::Normalize(AnnotatedImdb()));
  ASSERT_TRUE(mapping.ok());
  const rel::Column* fk =
      mapping->catalog().GetTable("Aka").FindColumn("parent_Show");
  ASSERT_NE(fk, nullptr);
  EXPECT_LE(fk->distincts, 34798);
  EXPECT_LE(fk->distincts, 13641);
}

TEST(MapStats, RecursiveCountsConverge) {
  // Recursive repetition with avg < 1 converges geometrically: total nodes
  // = root * 1/(1-avg).
  auto schema = ParseSchema("type N = n[ v[ Integer ], N{0,*}<#0> ]");
  ASSERT_TRUE(schema.ok());
  // Manually annotate the recursion factor via the parsed form:
  auto schema2 = ParseSchema("type R = r[ N ] type N = n[ N{0,1}<#0> ]");
  ASSERT_TRUE(schema2.ok());
  auto mapping = MapSchema(ps::Normalize(schema2.value()));
  ASSERT_TRUE(mapping.ok());
  // presence defaults to 0.5: N rows = 1/(1-0.5) = 2.
  EXPECT_NEAR(mapping->catalog().GetTable("N").row_count, 2, 0.1);
}

TEST(MapStats, TotalBytesIsPositive) {
  auto mapping = MapSchema(ps::Normalize(AnnotatedImdb()));
  ASSERT_TRUE(mapping.ok());
  EXPECT_GT(mapping->catalog().TotalBytes(), 1e6);
}

// ---- navigation metadata ----

TEST(MappingMeta, EntryNamesDescendVirtualUnions) {
  Mapping m = M("type A = a[ S* ] type S = (S1 | S2) "
                "type S1 = s1[ x[ String ] ] type S2 = s2[ y[ String ] ]");
  auto entries = m.EntryNames("S");
  EXPECT_EQ(entries, (std::vector<std::string>{"s1", "s2"}));
}

TEST(MappingMeta, SlotsRecordOptionality) {
  Mapping m = M("type A = a[ b[ String ]? ]");
  const TypeMapping& tm = m.GetType("A");
  ASSERT_EQ(tm.slots.size(), 1u);
  EXPECT_TRUE(tm.slots[0].optional);
  EXPECT_LT(tm.slots[0].presence, 1.0);
}

TEST(MappingMeta, ChildRefsCarryCardinality) {
  Mapping m = M("type A = a[ B{2,5} ] type B = b[ String ]");
  const TypeMapping& tm = m.GetType("A");
  ASSERT_EQ(tm.children.size(), 1u);
  EXPECT_EQ(tm.children[0].min_occurs, 2u);
  EXPECT_EQ(tm.children[0].max_occurs, 5u);
  EXPECT_DOUBLE_EQ(tm.children[0].expected_per_parent, 3.5);
}

TEST(MappingMeta, DdlRendersAllTables) {
  auto mapping = MapSchema(ps::Normalize(AnnotatedImdb()));
  ASSERT_TRUE(mapping.ok());
  std::string ddl = mapping->catalog().ToDdl();
  EXPECT_NE(ddl.find("TABLE Show"), std::string::npos);
  EXPECT_NE(ddl.find("PRIMARY KEY"), std::string::npos);
  EXPECT_NE(ddl.find("FOREIGN KEY (parent_Show) REFERENCES Show"),
            std::string::npos);
}

}  // namespace
}  // namespace legodb::map
