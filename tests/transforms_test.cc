// Unit and property tests for the schema transformations of Section 4.1.
// The central property: every transformation (except the deliberately lossy
// union-to-options) preserves the set of valid documents.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "core/transforms.h"
#include "imdb/imdb.h"
#include "pschema/pschema.h"
#include "xml/parser.h"
#include "xschema/schema_parser.h"
#include "xschema/validator.h"

namespace legodb::core {
namespace {

using xs::ParseSchema;
using xs::Schema;

Schema S(const char* text) {
  auto schema = ParseSchema(text);
  EXPECT_TRUE(schema.ok()) << schema.status().ToString();
  return ps::Normalize(schema.value());
}

std::vector<Transformation> Enumerate(const Schema& s, bool all = true) {
  TransformOptions options;
  options.inline_types = all;
  options.outline_elements = all;
  options.union_distribute = all;
  options.union_to_options = all;
  options.repetition_split = all;
  options.repetition_merge = all;
  options.wildcard_materialize = all;
  options.wildcard_tags = {"nyt"};
  return EnumerateTransformations(s, options);
}

const Transformation* FindKind(const std::vector<Transformation>& ts,
                               Transformation::Kind kind) {
  for (const auto& t : ts) {
    if (t.kind == kind) return &t;
  }
  return nullptr;
}

// ---- Union distribution ----

TEST(UnionDistribute, PartitionsTheType) {
  Schema s = S("type R = r[ S* ] "
               "type S = s[ common[ String ], (M | T) ] "
               "type M = box[ Integer ] type T = seasons[ Integer ]");
  auto ts = Enumerate(s);
  const Transformation* t = FindKind(ts, Transformation::Kind::kUnionDistribute);
  ASSERT_NE(t, nullptr);
  auto out = ApplyTransformation(s, *t);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_TRUE(out->Has("S_Part"));
  EXPECT_TRUE(out->Has("S_Part_2"));
  // S becomes a virtual union; the alternatives' content is folded in.
  EXPECT_EQ(out->Get("S")->kind, xs::Type::Kind::kUnion);
  std::string part1 = out->Get("S_Part")->ToString();
  EXPECT_NE(part1.find("box"), std::string::npos);
  EXPECT_NE(part1.find("common"), std::string::npos);
  EXPECT_FALSE(out->Has("M"));  // folded into the part
}

TEST(UnionDistribute, MatchesPaperShowExample) {
  Schema s = ps::Normalize(*imdb::Schema());
  auto ts = Enumerate(s);
  const Transformation* t = nullptr;
  for (const auto& cand : ts) {
    if (cand.kind == Transformation::Kind::kUnionDistribute &&
        cand.type_name == "Show") {
      t = &cand;
    }
  }
  ASSERT_NE(t, nullptr);
  auto out = ApplyTransformation(s, *t);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  // Show = (Show_Part | Show_Part_2), one with box_office, one with seasons.
  std::string p1 = out->Get("Show_Part")->ToString();
  std::string p2 = out->Get("Show_Part_2")->ToString();
  EXPECT_NE(p1.find("box_office"), std::string::npos);
  EXPECT_EQ(p1.find("seasons"), std::string::npos);
  EXPECT_NE(p2.find("seasons"), std::string::npos);
  EXPECT_EQ(p2.find("box_office"), std::string::npos);
}

// ---- Union to options ----

TEST(UnionToOptions, InlinesBranchesAsOptionals) {
  Schema s = S("type R = r[ (M | T) ] "
               "type M = box[ Integer ] type T = seasons[ Integer ]");
  auto ts = Enumerate(s);
  const Transformation* t = FindKind(ts, Transformation::Kind::kUnionToOptions);
  ASSERT_NE(t, nullptr);
  auto out = ApplyTransformation(s, *t);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  std::string body = out->Get("R")->ToString();
  EXPECT_NE(body.find("box[ Integer ]?"), std::string::npos);
  EXPECT_NE(body.find("seasons[ Integer ]?"), std::string::npos);
  EXPECT_FALSE(out->Has("M"));
}

TEST(UnionToOptions, IsLossyButGeneralizes) {
  // (M | T) ⊂ (M?, T?): every document valid before stays valid after.
  Schema before = S("type R = r[ (M | T) ] "
                    "type M = box[ Integer ] type T = seasons[ Integer ]");
  auto ts = Enumerate(before);
  auto out = ApplyTransformation(
      before, *FindKind(ts, Transformation::Kind::kUnionToOptions));
  ASSERT_TRUE(out.ok());
  auto doc_m = xml::ParseDocument("<r><box>1</box></r>");
  auto doc_both = xml::ParseDocument("<r><box>1</box><seasons>2</seasons></r>");
  EXPECT_TRUE(xs::ValidateDocument(doc_m.value(), before).ok());
  EXPECT_TRUE(xs::ValidateDocument(doc_m.value(), out.value()).ok());
  // The lossy direction: both branches together only valid AFTER.
  EXPECT_FALSE(xs::ValidateDocument(doc_both.value(), before).ok());
  EXPECT_TRUE(xs::ValidateDocument(doc_both.value(), out.value()).ok());
}

// ---- Repetition split / merge ----

TEST(RepetitionSplit, PeelsFirstOccurrence) {
  Schema s = S("type R = r[ Aka{1,10} ] type Aka = aka[ String ]");
  auto ts = Enumerate(s);
  const Transformation* t =
      FindKind(ts, Transformation::Kind::kRepetitionSplit);
  ASSERT_NE(t, nullptr);
  auto out = ApplyTransformation(s, *t);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  std::string body = out->Get("R")->ToString();
  EXPECT_NE(body.find("aka[ String ], Aka{0,9}"), std::string::npos);
}

TEST(RepetitionSplit, UnboundedStaysUnbounded) {
  Schema s = S("type R = r[ Aka+ ] type Aka = aka[ String ]");
  auto ts = Enumerate(s);
  auto out = ApplyTransformation(
      s, *FindKind(ts, Transformation::Kind::kRepetitionSplit));
  ASSERT_TRUE(out.ok());
  EXPECT_NE(out->Get("R")->ToString().find("aka[ String ], Aka*"),
            std::string::npos);
}

TEST(RepetitionSplit, NotOfferedForOptionalRepetitions) {
  Schema s = S("type R = r[ Aka{0,10} ] type Aka = aka[ String ]");
  auto ts = Enumerate(s);
  EXPECT_EQ(FindKind(ts, Transformation::Kind::kRepetitionSplit), nullptr);
}

TEST(RepetitionMerge, InvertsSplit) {
  Schema s = S("type R = r[ Aka{1,10} ] type Aka = aka[ String ]");
  auto ts = Enumerate(s);
  auto split = ApplyTransformation(
      s, *FindKind(ts, Transformation::Kind::kRepetitionSplit));
  ASSERT_TRUE(split.ok());
  auto ts2 = Enumerate(split.value());
  const Transformation* merge =
      FindKind(ts2, Transformation::Kind::kRepetitionMerge);
  ASSERT_NE(merge, nullptr);
  auto back = ApplyTransformation(split.value(), *merge);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_TRUE(
      xs::TypeEqualsIgnoringStats(back->Get("R"), s.Get("R")));
}

// ---- Wildcard materialization ----

TEST(WildcardMaterialize, SplitsTagFromRest) {
  Schema s = S("type R = r[ Rev* ] type Rev = rev[ ~[ String ] ]");
  auto ts = Enumerate(s);
  const Transformation* t =
      FindKind(ts, Transformation::Kind::kWildcardMaterialize);
  ASSERT_NE(t, nullptr);
  auto out = ApplyTransformation(s, *t);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_TRUE(out->Has("Nyt"));
  ASSERT_TRUE(out->Has("OtherNyt"));
  EXPECT_EQ(out->Get("Nyt")->name.name, "nyt");
  EXPECT_EQ(out->Get("OtherNyt")->name.kind,
            xs::NameClass::Kind::kAnyExcept);
}

TEST(WildcardMaterialize, NotOfferedForExclusionWildcards) {
  Schema s = S("type R = r[ W ] type W = ~!x[ String ]");
  auto ts = Enumerate(s);
  EXPECT_EQ(FindKind(ts, Transformation::Kind::kWildcardMaterialize), nullptr);
}

// ---- Enumeration hygiene ----

TEST(Enumeration, RespectsOptionFlags) {
  Schema s = ps::Normalize(*imdb::Schema());
  TransformOptions none;
  none.inline_types = false;
  none.outline_elements = false;
  EXPECT_TRUE(EnumerateTransformations(s, none).empty());
}

TEST(Enumeration, RootTypeNeverDistributed) {
  Schema s = S("type R = (A | B) type A = a[ String ] type B = b[ String ]");
  auto ts = Enumerate(s);
  EXPECT_EQ(FindKind(ts, Transformation::Kind::kUnionDistribute), nullptr);
}

TEST(Enumeration, DescriptionsAreInformative) {
  Schema s = ps::Normalize(*imdb::Schema());
  std::set<std::string> signatures;
  for (const auto& t : Enumerate(s)) {
    EXPECT_FALSE(t.Describe(s).empty());
    EXPECT_FALSE(t.Signature().empty());
    // Signatures are a stable identity: distinct descriptors, distinct keys.
    EXPECT_TRUE(signatures.insert(t.Signature()).second) << t.Signature();
  }
}

// ---- The preservation property ----
//
// For every applicable transformation (except union-to-options, which only
// guarantees one direction), documents valid under the original schema are
// valid under the transformed schema and vice versa. We check the forward
// direction on generated IMDB documents and the structure of candidates.
TEST(Preservation, AllTransformationsPreserveImdbValidity) {
  Schema s = ps::Normalize(*imdb::Schema());
  imdb::ImdbScale scale;
  scale.shows = 8;
  scale.directors = 3;
  scale.actors = 4;
  xml::Document doc = imdb::Generate(scale);
  ASSERT_TRUE(xs::ValidateDocument(doc, s).ok());

  int applied = 0;
  for (const auto& t : Enumerate(s)) {
    auto out = ApplyTransformation(s, t);
    if (!out.ok()) continue;  // some enumerated moves can be inapplicable
    ++applied;
    EXPECT_TRUE(ps::CheckPhysical(out.value()).ok()) << t.Describe(s);
    EXPECT_TRUE(xs::ValidateDocument(doc, out.value()).ok())
        << t.Describe(s) << "\n"
        << out->ToString();
  }
  EXPECT_GT(applied, 10);
}

TEST(Preservation, ChainsOfTransformationsPreserveValidity) {
  // Apply five transformations in sequence, checking validity after each.
  Schema s = ps::Normalize(*imdb::Schema());
  imdb::ImdbScale scale;
  scale.shows = 6;
  scale.directors = 2;
  scale.actors = 3;
  scale.seed = 99;
  xml::Document doc = imdb::Generate(scale);
  for (int step = 0; step < 5; ++step) {
    auto ts = Enumerate(s);
    ASSERT_FALSE(ts.empty());
    // Pick a deterministic but varied candidate.
    const Transformation& t = ts[(step * 7) % ts.size()];
    auto out = ApplyTransformation(s, t);
    if (!out.ok()) continue;
    std::string desc = t.Describe(s);
    s = std::move(out).value();
    ASSERT_TRUE(xs::ValidateDocument(doc, s).ok())
        << "after step " << step << ": " << desc;
  }
}

}  // namespace
}  // namespace legodb::core
