// End-to-end pipeline tests: IMDB schema -> p-schema -> relations ->
// translation -> optimization -> execution, validated against direct
// XQuery-over-DOM evaluation and shred/reconstruct round-trips.
#include <gtest/gtest.h>

#include "core/cost.h"
#include "core/legodb.h"
#include "core/search.h"
#include "engine/executor.h"
#include "imdb/imdb.h"
#include "mapping/mapping.h"
#include "optimizer/optimizer.h"
#include "pschema/pschema.h"
#include "storage/reconstruct.h"
#include "storage/shredder.h"
#include "translate/translate.h"
#include "xml/writer.h"
#include "xquery/evaluator.h"
#include "xquery/parser.h"
#include "xschema/annotate.h"
#include "xschema/validator.h"

namespace legodb {
namespace {

xs::Schema AnnotatedImdb() {
  auto schema = imdb::Schema();
  EXPECT_TRUE(schema.ok()) << schema.status().ToString();
  auto stats = imdb::Stats();
  EXPECT_TRUE(stats.ok()) << stats.status().ToString();
  return xs::AnnotateSchema(schema.value(), stats.value());
}

TEST(Pipeline, ImdbSchemaParsesAndValidates) {
  auto schema = imdb::Schema();
  ASSERT_TRUE(schema.ok()) << schema.status().ToString();
  EXPECT_TRUE(schema->Validate().ok());
  EXPECT_EQ(schema->root_type(), "IMDB");
}

TEST(Pipeline, GeneratedDocumentIsValid) {
  auto schema = imdb::Schema();
  ASSERT_TRUE(schema.ok());
  imdb::ImdbScale scale;
  scale.shows = 12;
  scale.directors = 5;
  scale.actors = 8;
  xml::Document doc = imdb::Generate(scale);
  Status st = xs::ValidateDocument(doc, schema.value());
  EXPECT_TRUE(st.ok()) << st.ToString();
}

TEST(Pipeline, NormalizeYieldsPhysicalSchema) {
  xs::Schema annotated = AnnotatedImdb();
  xs::Schema normalized = ps::Normalize(annotated);
  EXPECT_TRUE(ps::CheckPhysical(normalized).ok());
  // Multi-valued content must have been outlined.
  EXPECT_GT(normalized.size(), annotated.size());
}

TEST(Pipeline, AllVariantsArePhysical) {
  xs::Schema annotated = AnnotatedImdb();
  for (const xs::Schema& s :
       {ps::AllInlined(annotated), ps::AllOutlined(annotated)}) {
    Status st = ps::CheckPhysical(s);
    EXPECT_TRUE(st.ok()) << st.ToString() << "\n" << s.ToString();
  }
}

TEST(Pipeline, MapSchemaProducesCatalog) {
  xs::Schema normalized = ps::Normalize(AnnotatedImdb());
  auto mapping = map::MapSchema(normalized);
  ASSERT_TRUE(mapping.ok()) << mapping.status().ToString();
  const rel::Catalog& catalog = mapping->catalog();
  ASSERT_TRUE(catalog.HasTable("Show"));
  const rel::Table& show = catalog.GetTable("Show");
  EXPECT_NEAR(show.row_count, 34798, 1);
  EXPECT_NE(show.FindColumn("title"), nullptr);
  EXPECT_NE(show.FindColumn("year"), nullptr);
  EXPECT_NE(show.FindColumn("type"), nullptr);
}

TEST(Pipeline, TranslateAndPlanLookupQuery) {
  xs::Schema normalized = ps::Normalize(AnnotatedImdb());
  auto mapping = map::MapSchema(normalized);
  ASSERT_TRUE(mapping.ok());
  auto query = xq::ParseQuery(imdb::QueryText("Q1"));
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  auto rq = xlat::TranslateQuery(query.value(), mapping.value());
  ASSERT_TRUE(rq.ok()) << rq.status().ToString();
  ASSERT_FALSE(rq->blocks.empty());
  opt::Optimizer optimizer(mapping->catalog());
  auto planned = optimizer.PlanQuery(rq.value());
  ASSERT_TRUE(planned.ok()) << planned.status().ToString();
  EXPECT_GT(planned->total_cost, 0);
}

TEST(Pipeline, ShredAndReconstructRoundTrip) {
  xs::Schema normalized = ps::Normalize(AnnotatedImdb());
  auto mapping = map::MapSchema(normalized);
  ASSERT_TRUE(mapping.ok()) << mapping.status().ToString();
  imdb::ImdbScale scale;
  scale.shows = 10;
  scale.directors = 4;
  scale.actors = 6;
  xml::Document doc = imdb::Generate(scale);

  store::Database db(mapping->catalog());
  Status st = store::ShredDocument(doc, mapping.value(), &db);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_GT(db.TotalRows(), 10u);

  auto rebuilt = store::ReconstructDocument(&db, mapping.value());
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().ToString();
  EXPECT_EQ(xml::Serialize(doc), xml::Serialize(rebuilt.value()));
}

// The core correctness property: for every configuration, executing the
// translated relational query returns the same rows as evaluating the
// XQuery directly on the document.
class EquivalenceTest : public ::testing::TestWithParam<const char*> {};

void CheckEquivalence(const xs::Schema& pschema, const std::string& qname,
                      const xml::Document& doc,
                      const std::map<std::string, Value>& params) {
  auto mapping = map::MapSchema(pschema);
  ASSERT_TRUE(mapping.ok()) << mapping.status().ToString();
  store::Database db(mapping->catalog());
  Status st = store::ShredDocument(doc, mapping.value(), &db);
  ASSERT_TRUE(st.ok()) << qname << ": " << st.ToString();

  auto query = xq::ParseQuery(imdb::QueryText(qname));
  ASSERT_TRUE(query.ok()) << query.status().ToString();

  auto expected = xq::EvaluateOnDocument(query.value(), doc, params);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();

  auto rq = xlat::TranslateQuery(query.value(), mapping.value());
  ASSERT_TRUE(rq.ok()) << qname << ": " << rq.status().ToString();
  opt::Optimizer optimizer(mapping->catalog());
  auto planned = optimizer.PlanQuery(rq.value());
  ASSERT_TRUE(planned.ok()) << qname << ": " << planned.status().ToString();

  std::vector<opt::PhysicalPlanPtr> plans;
  for (const auto& b : planned->blocks) plans.push_back(b.plan);
  engine::Executor exec(&db, params);
  auto actual = exec.ExecuteQuery(rq.value(), plans);
  ASSERT_TRUE(actual.ok()) << qname << ": " << actual.status().ToString();

  EXPECT_TRUE(expected->SameRows(actual.value()))
      << qname << "\nexpected:\n"
      << expected->ToString() << "\nactual:\n"
      << actual->ToString() << "\nSQL:\n"
      << rq->ToSql();
}

TEST_P(EquivalenceTest, NormalizedConfiguration) {
  xs::Schema annotated = AnnotatedImdb();
  imdb::ImdbScale scale;
  scale.shows = 20;
  scale.directors = 8;
  scale.actors = 12;
  xml::Document doc = imdb::Generate(scale);
  std::map<std::string, Value> params = {
      {"c1", Value::Str("title1")},
      {"c2", Value::Str("title2")},
      {"c4", Value::Str("person3")},
  };
  CheckEquivalence(ps::Normalize(annotated), GetParam(), doc, params);
}

TEST_P(EquivalenceTest, AllInlinedConfiguration) {
  xs::Schema annotated = AnnotatedImdb();
  imdb::ImdbScale scale;
  scale.shows = 20;
  scale.directors = 8;
  scale.actors = 12;
  xml::Document doc = imdb::Generate(scale);
  std::map<std::string, Value> params = {
      {"c1", Value::Str("title1")},
      {"c2", Value::Str("title2")},
      {"c4", Value::Str("person3")},
  };
  CheckEquivalence(ps::AllInlined(annotated), GetParam(), doc, params);
}

TEST_P(EquivalenceTest, AllOutlinedConfiguration) {
  xs::Schema annotated = AnnotatedImdb();
  imdb::ImdbScale scale;
  scale.shows = 20;
  scale.directors = 8;
  scale.actors = 12;
  xml::Document doc = imdb::Generate(scale);
  std::map<std::string, Value> params = {
      {"c1", Value::Str("title1")},
      {"c2", Value::Str("title2")},
      {"c4", Value::Str("person3")},
  };
  CheckEquivalence(ps::AllOutlined(annotated), GetParam(), doc, params);
}

INSTANTIATE_TEST_SUITE_P(ScalarQueries, EquivalenceTest,
                         ::testing::Values("Q1", "Q2", "Q3", "Q4", "Q5", "Q6",
                                           "Q7", "Q8"));

TEST(Pipeline, GreedySearchImprovesLookupWorkload) {
  xs::Schema annotated = AnnotatedImdb();
  auto workload = imdb::MakeWorkload("lookup");
  ASSERT_TRUE(workload.ok()) << workload.status().ToString();
  opt::CostParams params;
  auto result = core::GreedySearch(annotated, workload.value(), params,
                                   core::GreedySoOptions());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_FALSE(result->trace.empty());
  EXPECT_LE(result->best_cost, result->trace.front().cost);
}

}  // namespace
}  // namespace legodb
