// Tests for the greedy search (Algorithm 4.1), the cost function, workload
// utilities, the candidate-evaluation pipeline (descriptors, fingerprint
// cache, parallel costing), and the MappingEngine facade.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "auction/auction.h"
#include "core/cost.h"
#include "core/legodb.h"
#include "core/search.h"
#include "imdb/imdb.h"
#include "mapping/mapping.h"
#include "pschema/pschema.h"
#include "translate/translate.h"
#include "xml/dom.h"
#include "xquery/parser.h"
#include "xschema/annotate.h"
#include "xschema/fingerprint.h"
#include "xschema/schema_parser.h"
#include "xschema/stats_collector.h"

namespace legodb::core {
namespace {

xs::Schema AnnotatedImdb() {
  auto schema = imdb::Schema();
  EXPECT_TRUE(schema.ok());
  auto stats = imdb::Stats();
  EXPECT_TRUE(stats.ok());
  return xs::AnnotateSchema(schema.value(), stats.value());
}

Workload Lookup() {
  auto w = imdb::MakeWorkload("lookup");
  EXPECT_TRUE(w.ok());
  return std::move(w).value();
}

// ---- Workload ----

TEST(WorkloadTest, AddRejectsBadQueries) {
  Workload w;
  EXPECT_FALSE(w.Add("bad", "FOR FOR FOR", 1).ok());
  EXPECT_TRUE(w.Add("ok", imdb::QueryText("Q1"), 0.5).ok());
  EXPECT_DOUBLE_EQ(w.TotalWeight(), 0.5);
}

TEST(WorkloadTest, MixNormalizesAndInterpolates) {
  Workload a, b;
  ASSERT_TRUE(a.Add("A", imdb::QueryText("Q1"), 2).ok());
  ASSERT_TRUE(b.Add("B", imdb::QueryText("Q16"), 4).ok());
  Workload mix = Workload::Mix(a, b, 0.25);
  ASSERT_EQ(mix.queries.size(), 2u);
  EXPECT_DOUBLE_EQ(mix.queries[0].weight, 0.25);
  EXPECT_DOUBLE_EQ(mix.queries[1].weight, 0.75);
  EXPECT_NEAR(mix.TotalWeight(), 1.0, 1e-12);
}

TEST(WorkloadTest, PathStepNamesCoverAllClauses) {
  Workload w;
  ASSERT_TRUE(w.Add("Q7", imdb::QueryText("Q7"), 1).ok());
  auto steps = w.PathStepNames();
  auto has = [&](const char* s) {
    return std::find(steps.begin(), steps.end(), s) != steps.end();
  };
  EXPECT_TRUE(has("episodes"));
  EXPECT_TRUE(has("guest_director"));  // from the nested WHERE
  EXPECT_TRUE(has("title"));
}

// ---- CostSchema ----

TEST(CostSchemaTest, WeightsScaleTotal) {
  xs::Schema config = ps::AllInlined(AnnotatedImdb());
  opt::CostParams params;
  Workload w1, w2;
  ASSERT_TRUE(w1.Add("Q1", imdb::QueryText("Q1"), 1).ok());
  ASSERT_TRUE(w2.Add("Q1", imdb::QueryText("Q1"), 3).ok());
  auto c1 = CostSchema(config, w1, params);
  auto c2 = CostSchema(config, w2, params);
  ASSERT_TRUE(c1.ok());
  ASSERT_TRUE(c2.ok());
  EXPECT_NEAR(c2->total, 3 * c1->total, 1e-6);
  EXPECT_EQ(c1->per_query.size(), 1u);
}

TEST(CostSchemaTest, PublishCostsMoreThanLookup) {
  xs::Schema config = ps::AllInlined(AnnotatedImdb());
  opt::CostParams params;
  Workload lookup, publish;
  ASSERT_TRUE(lookup.Add("Q2", imdb::QueryText("Q2"), 1).ok());
  ASSERT_TRUE(publish.Add("Q16", imdb::QueryText("Q16"), 1).ok());
  auto cl = CostSchema(config, lookup, params);
  auto cp = CostSchema(config, publish, params);
  ASSERT_TRUE(cl.ok());
  ASSERT_TRUE(cp.ok());
  EXPECT_GT(cp->total, cl->total);
}

// ---- Greedy search ----

TEST(GreedySearchTest, TraceIsMonotonicallyImproving) {
  opt::CostParams params;
  auto result =
      GreedySearch(AnnotatedImdb(), Lookup(), params, GreedySoOptions());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_GE(result->trace.size(), 2u);
  for (size_t i = 1; i < result->trace.size(); ++i) {
    EXPECT_LT(result->trace[i].cost, result->trace[i - 1].cost);
    EXPECT_FALSE(result->trace[i].applied.empty());
    EXPECT_GT(result->trace[i].candidates, 0);
  }
  EXPECT_DOUBLE_EQ(result->best_cost, result->trace.back().cost);
}

TEST(GreedySearchTest, BestSchemaIsPhysical) {
  opt::CostParams params;
  auto result =
      GreedySearch(AnnotatedImdb(), Lookup(), params, GreedySiOptions());
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(ps::CheckPhysical(result->best_schema).ok());
}

TEST(GreedySearchTest, SiAndSoConvergeToSimilarCosts) {
  // The paper observes both variants converge to similar costs (Fig. 10).
  opt::CostParams params;
  auto so = GreedySearch(AnnotatedImdb(), Lookup(), params, GreedySoOptions());
  auto si = GreedySearch(AnnotatedImdb(), Lookup(), params, GreedySiOptions());
  ASSERT_TRUE(so.ok());
  ASSERT_TRUE(si.ok());
  double ratio = so->best_cost / si->best_cost;
  EXPECT_GT(ratio, 0.8);
  EXPECT_LT(ratio, 1.25);
}

TEST(GreedySearchTest, ImprovementThresholdStopsEarly) {
  opt::CostParams params;
  SearchOptions strict = GreedySoOptions();
  auto full = GreedySearch(AnnotatedImdb(), Lookup(), params, strict);
  SearchOptions lax = GreedySoOptions();
  lax.min_relative_improvement = 0.25;  // stop below 25% improvement
  auto early = GreedySearch(AnnotatedImdb(), Lookup(), params, lax);
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(early.ok());
  EXPECT_LE(early->trace.size(), full->trace.size());
  EXPECT_GE(early->best_cost, full->best_cost);
}

TEST(GreedySearchTest, MaxIterationsRespected) {
  opt::CostParams params;
  SearchOptions options = GreedySoOptions();
  options.max_iterations = 1;
  auto result = GreedySearch(AnnotatedImdb(), Lookup(), params, options);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->trace.size(), 2u);
}

TEST(GreedySearchTest, SearchedBeatsAllInlinedOnLookups) {
  // The headline Section-5.3 claim: cost-based search beats the
  // inline-everything heuristic for lookup workloads.
  opt::CostParams params;
  xs::Schema annotated = AnnotatedImdb();
  auto searched = GreedySearch(annotated, Lookup(), params, GreedySoOptions());
  ASSERT_TRUE(searched.ok());
  auto inlined = CostSchema(ps::AllInlined(annotated), Lookup(), params);
  ASSERT_TRUE(inlined.ok());
  EXPECT_LT(searched->best_cost, inlined->total);
}

TEST(GreedySearchTest, CostCacheReducesOptimizerCalls) {
  opt::CostParams params;
  SearchOptions with_cache = GreedySoOptions();
  SearchOptions without_cache = GreedySoOptions();
  without_cache.cache_query_costs = false;
  auto cached = GreedySearch(AnnotatedImdb(), Lookup(), params, with_cache);
  auto plain = GreedySearch(AnnotatedImdb(), Lookup(), params, without_cache);
  ASSERT_TRUE(cached.ok());
  ASSERT_TRUE(plain.ok());
  // Identical result, fewer optimizer invocations.
  EXPECT_DOUBLE_EQ(cached->best_cost, plain->best_cost);
  EXPECT_GT(cached->stats.cache_hits, 0);
  EXPECT_LT(cached->stats.cost_evaluations, plain->stats.cost_evaluations);
  EXPECT_EQ(plain->stats.cache_hits, 0);
}

TEST(GreedySearchTest, BeamSearchNeverWorseThanGreedy) {
  opt::CostParams params;
  SearchOptions greedy = GreedySoOptions();
  SearchOptions beam = GreedySoOptions();
  beam.beam_width = 3;
  auto g = GreedySearch(AnnotatedImdb(), Lookup(), params, greedy);
  auto b = GreedySearch(AnnotatedImdb(), Lookup(), params, beam);
  ASSERT_TRUE(g.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_LE(b->best_cost, g->best_cost * (1 + 1e-9));
  EXPECT_TRUE(ps::CheckPhysical(b->best_schema).ok());
}

TEST(GreedySearchTest, StructuralMovesCanJoinTheSearch) {
  // Allow union distribution in the move set: the search must remain
  // well-formed and no worse than the inline/outline-only search.
  opt::CostParams params;
  SearchOptions options = GreedySoOptions();
  options.transforms.union_distribute = true;
  options.transforms.wildcard_materialize = true;
  options.transforms.wildcard_tags = {"nyt"};
  Workload lookups = Lookup();
  auto plain = GreedySearch(AnnotatedImdb(), lookups, params,
                            GreedySoOptions());
  auto rich = GreedySearch(AnnotatedImdb(), lookups, params, options);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(rich.ok());
  EXPECT_LE(rich->best_cost, plain->best_cost * (1 + 1e-9));
  EXPECT_TRUE(ps::CheckPhysical(rich->best_schema).ok());
}

// ---- Candidate-evaluation pipeline ----

// Regression for the pre-fingerprint cost-cache key. That key appended,
// per touched table, the SUM of the per-column distinct counts (and null
// fractions) to the translated SQL, so two configurations whose columns
// merely swap their distinct counts produced byte-identical keys: the
// second configuration costed would silently be served the first one's
// cached cost. CostCacheFingerprint hashes every column individually.
TEST(CostCacheTest, FingerprintSeparatesSwappedColumnStats) {
  auto make = [](int x_distincts, int y_distincts) {
    std::string text =
        "type DB = db[ R*<#1000> ] "
        "type R = r[ x[ String<#8,#" + std::to_string(x_distincts) +
        "> ], y[ String<#8,#" + std::to_string(y_distincts) + "> ] ]";
    auto parsed = xs::ParseSchema(text);
    EXPECT_TRUE(parsed.ok());
    return ps::Normalize(parsed.value());
  };
  xs::Schema a = make(400, 2);
  xs::Schema b = make(2, 400);

  auto map_a = map::MapSchema(a);
  auto map_b = map::MapSchema(b);
  ASSERT_TRUE(map_a.ok());
  ASSERT_TRUE(map_b.ok());
  auto query = xq::ParseQuery(
      "FOR $v IN document(\"d\")/db/r WHERE $v/x = c1 RETURN $v/y");
  ASSERT_TRUE(query.ok());
  auto rq_a = xlat::TranslateQuery(query.value(), map_a.value());
  auto rq_b = xlat::TranslateQuery(query.value(), map_b.value());
  ASSERT_TRUE(rq_a.ok());
  ASSERT_TRUE(rq_b.ok());

  // Identical SQL, identical per-table distinct SUMS: exactly the inputs
  // the old string key collapsed into one entry.
  EXPECT_EQ(rq_a->ToSql(), rq_b->ToSql());
  const rel::Table& ta = map_a->catalog().GetTable("R");
  const rel::Table& tb = map_b->catalog().GetTable("R");
  double sum_a = 0, sum_b = 0;
  for (const auto& col : ta.columns) sum_a += col.distincts;
  for (const auto& col : tb.columns) sum_b += col.distincts;
  EXPECT_EQ(sum_a, sum_b);

  // The fingerprints differ, and they had better: the two configurations
  // genuinely cost differently (selectivity of x = c1 is 1/400 vs 1/2).
  EXPECT_NE(CostCacheFingerprint(rq_a.value(), map_a->catalog()),
            CostCacheFingerprint(rq_b.value(), map_b->catalog()));
  Workload w;
  ASSERT_TRUE(
      w.Add("Q", "FOR $v IN document(\"d\")/db/r WHERE $v/x = c1 RETURN $v/y",
            1.0)
          .ok());
  auto cost_a = CostSchema(a, w, opt::CostParams{});
  auto cost_b = CostSchema(b, w, opt::CostParams{});
  ASSERT_TRUE(cost_a.ok());
  ASSERT_TRUE(cost_b.ok());
  EXPECT_NE(cost_a->total, cost_b->total);
}

// Every (configuration, query) pair is either planned or served from the
// fingerprint cache, exactly once — so the counters tie out against the
// number of configurations costed, at any thread count. The obs counters
// must agree with the SearchStats kept by the search itself.
TEST(GreedySearchTest, StatsInvariantHoldsAtAnyThreadCount) {
  opt::CostParams params;
  Workload workload = Lookup();
  for (int threads : {1, 4}) {
    obs::Registry registry;
    SearchStats stats;
    {
      obs::ScopedRegistry scoped(&registry);
      SearchOptions options = GreedySoOptions();
      options.threads = threads;
      auto result = GreedySearch(AnnotatedImdb(), workload, params, options);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      stats = result->stats;
    }
    EXPECT_EQ(stats.threads_used, threads);
    EXPECT_GT(stats.schemas_costed, 0);
    EXPECT_GT(stats.descriptors_enumerated, 0);
    EXPECT_EQ(stats.cost_evaluations + stats.cache_hits,
              stats.schemas_costed *
                  static_cast<int64_t>(workload.queries.size()))
        << "threads=" << threads;

    obs::Report report = registry.Snapshot();
    EXPECT_EQ(report.CounterValue("search.cost_evaluations"),
              stats.cost_evaluations);
    EXPECT_EQ(report.CounterValue("search.cache_hits"), stats.cache_hits);
    EXPECT_EQ(report.CounterValue("search.schemas_costed"),
              stats.schemas_costed);
    EXPECT_EQ(report.CounterValue("search.descriptors_enumerated"),
              stats.descriptors_enumerated);
    EXPECT_EQ(report.CounterValue("search.dedup_hits"), stats.dedup_hits);
  }
}

// The search result must be identical for every thread count: same best
// schema, same cost, same iteration log (modulo wall-clock fields).
void ExpectIdenticalSearches(const SearchResult& serial,
                             const SearchResult& parallel) {
  EXPECT_EQ(serial.best_schema.ToString(), parallel.best_schema.ToString());
  EXPECT_EQ(xs::FingerprintSchema(serial.best_schema),
            xs::FingerprintSchema(parallel.best_schema));
  EXPECT_DOUBLE_EQ(serial.best_cost, parallel.best_cost);
  ASSERT_EQ(serial.trace.size(), parallel.trace.size());
  for (size_t i = 0; i < serial.trace.size(); ++i) {
    EXPECT_EQ(serial.trace[i].iteration, parallel.trace[i].iteration);
    EXPECT_DOUBLE_EQ(serial.trace[i].cost, parallel.trace[i].cost);
    EXPECT_EQ(serial.trace[i].applied, parallel.trace[i].applied) << i;
    EXPECT_EQ(serial.trace[i].candidates, parallel.trace[i].candidates);
    EXPECT_EQ(serial.trace[i].descriptors, parallel.trace[i].descriptors);
  }
}

TEST(GreedySearchTest, DeterministicAcrossThreadCountsImdb) {
  opt::CostParams params;
  xs::Schema annotated = AnnotatedImdb();
  Workload workload = Lookup();
  // Beam > 1 exercises the multi-entry frontier, where nondeterministic
  // candidate ordering would be most visible.
  SearchOptions serial_options = GreedySoOptions();
  serial_options.beam_width = 2;
  serial_options.threads = 1;
  SearchOptions parallel_options = serial_options;
  parallel_options.threads = 8;
  auto serial = GreedySearch(annotated, workload, params, serial_options);
  auto parallel = GreedySearch(annotated, workload, params, parallel_options);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  EXPECT_EQ(serial->stats.threads_used, 1);
  EXPECT_EQ(parallel->stats.threads_used, 8);
  ExpectIdenticalSearches(serial.value(), parallel.value());
}

TEST(GreedySearchTest, DeterministicAcrossThreadCountsAuction) {
  // Second corpus: the auction schema annotated with stats collected from
  // a generated document, searched under the bidding workload.
  auto schema = auction::Schema();
  ASSERT_TRUE(schema.ok());
  xml::Document doc = auction::Generate(auction::AuctionScale{});
  xs::StatsCollector collector;
  collector.AddDocument(doc);
  xs::Schema annotated =
      xs::AnnotateSchema(schema.value(), collector.Finish());
  auto workload = auction::MakeWorkload("bidding");
  ASSERT_TRUE(workload.ok());

  opt::CostParams params;
  SearchOptions serial_options = GreedySiOptions();
  serial_options.threads = 1;
  SearchOptions parallel_options = serial_options;
  parallel_options.threads = 8;
  auto serial =
      GreedySearch(annotated, workload.value(), params, serial_options);
  auto parallel =
      GreedySearch(annotated, workload.value(), params, parallel_options);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  ASSERT_TRUE(parallel.ok());
  ExpectIdenticalSearches(serial.value(), parallel.value());
}

// ---- MappingEngine facade ----

TEST(MappingEngineTest, EndToEnd) {
  MappingEngine engine;
  ASSERT_TRUE(engine.LoadSchemaText(imdb::SchemaText()).ok());
  ASSERT_TRUE(engine.LoadStatsText(imdb::StatsText()).ok());
  ASSERT_TRUE(engine.AddQuery("Q1", imdb::QueryText("Q1"), 0.5).ok());
  ASSERT_TRUE(engine.AddQuery("Q16", imdb::QueryText("Q16"), 0.5).ok());
  auto result = engine.FindBestConfiguration(GreedySoOptions());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->mapping.catalog().size(), 3u);
  EXPECT_GT(result->search.best_cost, 0);
  std::string ddl = result->mapping.catalog().ToDdl();
  EXPECT_NE(ddl.find("TABLE"), std::string::npos);
}

TEST(MappingEngineTest, ReportConsistentWithSearchStats) {
  MappingEngine engine;
  ASSERT_TRUE(engine.LoadSchemaText(imdb::SchemaText()).ok());
  ASSERT_TRUE(engine.LoadStatsText(imdb::StatsText()).ok());
  ASSERT_TRUE(engine.AddQuery("Q1", imdb::QueryText("Q1"), 0.5).ok());
  ASSERT_TRUE(engine.AddQuery("Q8", imdb::QueryText("Q8"), 0.5).ok());
  auto result = engine.FindBestConfiguration(GreedySoOptions());
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // The obs counters wired through CachedCoster must agree with the ad-hoc
  // SearchStats the search has always maintained.
  const obs::Report& report = result->report;
  const SearchStats& stats = result->search.stats;
  EXPECT_EQ(report.CounterValue("search.cost_evaluations"),
            stats.cost_evaluations);
  EXPECT_EQ(report.CounterValue("search.cache_hits"), stats.cache_hits);
  EXPECT_GT(stats.cache_hits + stats.cost_evaluations, 0);

  // Every successful cost evaluation went through the optimizer; planning
  // attempts can exceed successes (failed plans are skipped by the search).
  EXPECT_GE(report.CounterValue("optimizer.queries_planned"),
            stats.cost_evaluations);

  // Phase spans and timing histograms are populated.
  EXPECT_GT(report.SpanTotalMillis("search"), 0.0);
  EXPECT_GT(report.SpanTotalMillis("find_best_configuration"), 0.0);
  const auto* plan_ms = report.FindHistogram("optimizer.plan_ms");
  ASSERT_NE(plan_ms, nullptr);
  EXPECT_GE(plan_ms->count, stats.cost_evaluations);
  ASSERT_NE(report.FindHistogram("translate.ms"), nullptr);

  // Per-iteration wall times are recorded in the trace.
  ASSERT_FALSE(result->search.trace.empty());
  for (const auto& step : result->search.trace) {
    EXPECT_GE(step.elapsed_ms, 0.0);
  }
  // One search.iteration span per executed iteration (improving iterations
  // plus the final non-improving one), matching the counter.
  int64_t iteration_spans = 0;
  for (const auto& span : report.spans) {
    if (span.name == "search.iteration") ++iteration_spans;
  }
  EXPECT_EQ(iteration_spans, report.CounterValue("search.iterations"));
  EXPECT_GE(iteration_spans,
            static_cast<int64_t>(result->search.trace.size()) - 1);

  // The report round-trips through its JSON export.
  auto parsed = obs::ReportFromJson(report.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->CounterValue("search.cache_hits"), stats.cache_hits);
}

TEST(MappingEngineTest, RejectsBadInputs) {
  MappingEngine engine;
  EXPECT_FALSE(engine.LoadSchemaText("type = broken").ok());
  EXPECT_FALSE(engine.LoadStatsText("garbage").ok());
  EXPECT_FALSE(engine.AddQuery("bad", "NOT A QUERY", 1).ok());
}

TEST(MappingEngineTest, CostConfigurationMatchesCostSchema) {
  MappingEngine engine;
  ASSERT_TRUE(engine.LoadSchemaText(imdb::SchemaText()).ok());
  ASSERT_TRUE(engine.LoadStatsText(imdb::StatsText()).ok());
  ASSERT_TRUE(engine.AddQuery("Q1", imdb::QueryText("Q1"), 1).ok());
  auto annotated = engine.AnnotatedSchema();
  ASSERT_TRUE(annotated.ok());
  xs::Schema config = ps::AllInlined(annotated.value());
  auto via_engine = engine.CostConfiguration(config);
  auto direct = CostSchema(config, engine.workload(), opt::CostParams{});
  ASSERT_TRUE(via_engine.ok());
  ASSERT_TRUE(direct.ok());
  EXPECT_DOUBLE_EQ(via_engine->total, direct->total);
}

}  // namespace
}  // namespace legodb::core
