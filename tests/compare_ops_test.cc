// End-to-end tests for the comparison operators (<, <=, >, >=, !=) — the
// "extend the supported XQuery subset" item of the paper's Section 7 —
// covering the parser, the value semantics, DOM evaluation, range
// selectivity estimation, and engine-vs-DOM equivalence.
#include <gtest/gtest.h>

#include "engine/executor.h"
#include "imdb/imdb.h"
#include "mapping/mapping.h"
#include "optimizer/optimizer.h"
#include "pschema/pschema.h"
#include "storage/shredder.h"
#include "xml/parser.h"
#include "translate/translate.h"
#include "xquery/evaluator.h"
#include "xquery/parser.h"
#include "xschema/annotate.h"
#include "xschema/stats_collector.h"

namespace legodb {
namespace {

TEST(CompareOps, ParserRecognizesAllOperators) {
  struct Case {
    const char* text;
    xq::CompareOp op;
  };
  Case cases[] = {
      {"=", xq::CompareOp::kEq},  {"!=", xq::CompareOp::kNe},
      {"<", xq::CompareOp::kLt},  {"<=", xq::CompareOp::kLe},
      {">", xq::CompareOp::kGt},  {">=", xq::CompareOp::kGe},
  };
  for (const Case& c : cases) {
    std::string text = std::string("FOR $v IN document(\"d\")/a WHERE $v/x ") +
                       c.text + " 5 RETURN $v/x";
    auto q = xq::ParseQuery(text);
    ASSERT_TRUE(q.ok()) << text << ": " << q.status().ToString();
    EXPECT_EQ(q->where[0].op, c.op) << text;
  }
}

TEST(CompareOps, ApplyCompareSemantics) {
  using xq::ApplyCompare;
  using xq::CompareOp;
  EXPECT_TRUE(ApplyCompare(CompareOp::kLt, Value::Int(1), Value::Int(2)));
  EXPECT_FALSE(ApplyCompare(CompareOp::kLt, Value::Int(2), Value::Int(2)));
  EXPECT_TRUE(ApplyCompare(CompareOp::kLe, Value::Int(2), Value::Int(2)));
  EXPECT_TRUE(ApplyCompare(CompareOp::kGt, Value::Str("b"), Value::Str("a")));
  EXPECT_TRUE(ApplyCompare(CompareOp::kNe, Value::Int(1), Value::Int(2)));
  EXPECT_FALSE(ApplyCompare(CompareOp::kNe, Value::Int(1), Value::Int(1)));
  // Mixed kinds / NULLs satisfy nothing (including !=).
  EXPECT_FALSE(ApplyCompare(CompareOp::kNe, Value::Int(1), Value::Str("1")));
  EXPECT_FALSE(ApplyCompare(CompareOp::kLt, Value::MakeNull(), Value::Int(1)));
  // Equality stays exact typed equality.
  EXPECT_TRUE(ApplyCompare(CompareOp::kEq, Value::Str("x"), Value::Str("x")));
  EXPECT_FALSE(ApplyCompare(CompareOp::kEq, Value::Int(1), Value::Str("1")));
}

TEST(CompareOps, DomEvaluatorRangeFilter) {
  auto doc = xml::ParseDocument(
      "<imdb><show><title>a</title><year>1985</year></show>"
      "<show><title>b</title><year>1995</year></show>"
      "<show><title>c</title><year>2005</year></show></imdb>");
  ASSERT_TRUE(doc.ok());
  auto q = xq::ParseQuery(
      "FOR $v IN document(\"d\")/imdb/show WHERE $v/year >= 1995 "
      "RETURN $v/title");
  ASSERT_TRUE(q.ok());
  auto r = xq::EvaluateOnDocument(q.value(), doc.value());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 2u);
}

TEST(CompareOps, RangeSelectivityUsesMinMax) {
  rel::Catalog catalog;
  rel::Table t;
  t.name = "T";
  t.key_column = "T_id";
  t.row_count = 1000;
  rel::Column id, year;
  id.name = "T_id";
  id.type = rel::SqlType::Int();
  id.distincts = 1000;
  year.name = "year";
  year.type = rel::SqlType::Int();
  year.distincts = 100;
  year.min = 1900;
  year.max = 2100;
  t.columns = {id, year};
  catalog.AddTable(t);
  opt::Optimizer optimizer(catalog);

  opt::QueryBlock b;
  b.rels.push_back(opt::BaseRel{"T", "t"});
  b.output.push_back(opt::ColumnRef{0, "year", ""});
  // year > 2050: (2100-2050)/(2100-1900) = 25% of rows.
  b.filters.push_back(opt::FilterPred{0, "year", xq::CompareOp::kGt,
                                      xq::Constant::Int(2050)});
  auto planned = optimizer.PlanBlock(b);
  ASSERT_TRUE(planned.ok());
  EXPECT_NEAR(planned->rows, 250, 5);

  // year < 1950: also 25%.
  b.filters[0].op = xq::CompareOp::kLt;
  b.filters[0].value = xq::Constant::Int(1950);
  planned = optimizer.PlanBlock(b);
  ASSERT_TRUE(planned.ok());
  EXPECT_NEAR(planned->rows, 250, 5);

  // != keeps nearly everything.
  b.filters[0].op = xq::CompareOp::kNe;
  planned = optimizer.PlanBlock(b);
  ASSERT_TRUE(planned.ok());
  EXPECT_GT(planned->rows, 900);
}

TEST(CompareOps, RangePredicateNeverDrivesHashIndex) {
  rel::Catalog catalog;
  rel::Table t;
  t.name = "T";
  t.key_column = "T_id";
  t.row_count = 1000;
  rel::Column id;
  id.name = "T_id";
  id.type = rel::SqlType::Int();
  id.distincts = 1000;
  id.min = 1;
  id.max = 1000;
  t.columns = {id};
  catalog.AddTable(t);
  opt::Optimizer optimizer(catalog);
  opt::QueryBlock b;
  b.rels.push_back(opt::BaseRel{"T", "t"});
  b.output.push_back(opt::ColumnRef{0, "T_id", ""});
  b.filters.push_back(opt::FilterPred{0, "T_id", xq::CompareOp::kGt,
                                      xq::Constant::Int(500)});
  auto planned = optimizer.PlanBlock(b);
  ASSERT_TRUE(planned.ok());
  EXPECT_EQ(planned->plan->child->kind, opt::PhysicalPlan::Kind::kSeqScan);
}

// Engine vs DOM equivalence for range queries on shredded IMDB data.
class CompareOpsEquivalence : public ::testing::TestWithParam<const char*> {};

TEST_P(CompareOpsEquivalence, EngineMatchesDom) {
  imdb::ImdbScale scale;
  scale.shows = 30;
  scale.directors = 10;
  scale.actors = 15;
  xml::Document doc = imdb::Generate(scale);
  xs::StatsCollector collector;
  collector.AddDocument(doc);
  auto schema = imdb::Schema();
  ASSERT_TRUE(schema.ok());
  xs::Schema config =
      ps::AllInlined(xs::AnnotateSchema(schema.value(), collector.Finish()));
  auto mapping = map::MapSchema(config);
  ASSERT_TRUE(mapping.ok());
  store::Database db(mapping->catalog());
  ASSERT_TRUE(store::ShredDocument(doc, mapping.value(), &db).ok());

  auto query = xq::ParseQuery(GetParam());
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  auto expected = xq::EvaluateOnDocument(query.value(), doc);
  ASSERT_TRUE(expected.ok());
  auto rq = xlat::TranslateQuery(query.value(), mapping.value());
  ASSERT_TRUE(rq.ok()) << rq.status().ToString();
  opt::Optimizer optimizer(mapping->catalog());
  auto planned = optimizer.PlanQuery(rq.value());
  ASSERT_TRUE(planned.ok());
  std::vector<opt::PhysicalPlanPtr> plans;
  for (const auto& b : planned->blocks) plans.push_back(b.plan);
  engine::Executor exec(&db);
  auto actual = exec.ExecuteQuery(rq.value(), plans);
  ASSERT_TRUE(actual.ok()) << actual.status().ToString();
  EXPECT_TRUE(expected->SameRows(actual.value()))
      << GetParam() << "\nexpected:\n"
      << expected->ToString() << "\nactual:\n"
      << actual->ToString();
}

INSTANTIATE_TEST_SUITE_P(
    RangeQueries, CompareOpsEquivalence,
    ::testing::Values(
        R"(FOR $v IN document("d")/imdb/show WHERE $v/year > 2000
           RETURN $v/title, $v/year)",
        R"(FOR $v IN document("d")/imdb/show WHERE $v/year <= 1990
           RETURN $v/title)",
        R"(FOR $v IN document("d")/imdb/show
           WHERE $v/year >= 1990 AND $v/year < 2010 RETURN $v/year)",
        R"(FOR $v IN document("d")/imdb/show WHERE $v/title != "title1"
           RETURN $v/title)",
        R"(FOR $a IN document("d")/imdb/actor, $p IN $a/played
           WHERE $p/order_of_appearance < 50 RETURN $a/name, $p/title)"));

TEST(CompareOps, NonEqualityValueJoinsRejected) {
  auto schema = imdb::Schema();
  ASSERT_TRUE(schema.ok());
  auto stats = imdb::Stats();
  ASSERT_TRUE(stats.ok());
  auto mapping = map::MapSchema(
      ps::Normalize(xs::AnnotateSchema(schema.value(), stats.value())));
  ASSERT_TRUE(mapping.ok());
  auto q = xq::ParseQuery(
      R"(FOR $a IN document("d")/imdb/show, $b IN document("d")/imdb/show
         WHERE $a/year < $b/year RETURN $a/title)");
  ASSERT_TRUE(q.ok());
  auto rq = xlat::TranslateQuery(q.value(), mapping.value());
  EXPECT_FALSE(rq.ok());
  EXPECT_EQ(rq.status().code(), Status::Code::kUnsupported);
}

}  // namespace
}  // namespace legodb
