// Cross-configuration equivalence: for every storage configuration the
// transformations produce, executing the translated relational query over
// the shredded database must return exactly the rows the direct XQuery
// evaluation returns on the document. This is the system-level correctness
// property behind the paper's claim that all configurations in the search
// space are equivalent storage mappings.
#include <gtest/gtest.h>

#include "core/transforms.h"
#include "engine/executor.h"
#include "imdb/imdb.h"
#include "mapping/mapping.h"
#include "optimizer/optimizer.h"
#include "pschema/pschema.h"
#include "storage/reconstruct.h"
#include "storage/shredder.h"
#include "xml/writer.h"
#include "translate/translate.h"
#include "xquery/evaluator.h"
#include "xquery/parser.h"
#include "xschema/annotate.h"

namespace legodb {
namespace {

struct NamedConfig {
  std::string name;
  xs::Schema schema;
};

xs::Schema ApplyFirstKind(const xs::Schema& s, core::Transformation::Kind kind,
                          const std::string& tag = "") {
  core::TransformOptions options;
  options.inline_types = false;
  options.outline_elements = false;
  options.union_distribute =
      kind == core::Transformation::Kind::kUnionDistribute;
  options.repetition_split =
      kind == core::Transformation::Kind::kRepetitionSplit;
  options.wildcard_materialize =
      kind == core::Transformation::Kind::kWildcardMaterialize;
  if (!tag.empty()) options.wildcard_tags.push_back(tag);
  for (const auto& t : core::EnumerateTransformations(s, options)) {
    auto out = core::ApplyTransformation(s, t);
    if (out.ok()) return std::move(out).value();
  }
  ADD_FAILURE() << "no applicable transformation";
  return s;
}

std::vector<NamedConfig> AllConfigs() {
  auto schema = imdb::Schema();
  EXPECT_TRUE(schema.ok());
  auto stats = imdb::Stats();
  EXPECT_TRUE(stats.ok());
  xs::Schema annotated = xs::AnnotateSchema(schema.value(), stats.value());
  xs::Schema normalized = ps::Normalize(annotated);
  std::vector<NamedConfig> configs;
  configs.push_back({"normalized", normalized});
  configs.push_back({"all-inlined", ps::AllInlined(annotated)});
  configs.push_back({"all-outlined", ps::AllOutlined(annotated)});
  configs.push_back(
      {"union-distributed",
       ApplyFirstKind(normalized,
                      core::Transformation::Kind::kUnionDistribute)});
  configs.push_back(
      {"wildcard-materialized",
       ApplyFirstKind(normalized,
                      core::Transformation::Kind::kWildcardMaterialize,
                      "nyt")});
  return configs;
}

class CrossConfigEquivalence : public ::testing::TestWithParam<const char*> {
 protected:
  static const xml::Document& Doc() {
    static xml::Document* doc = [] {
      imdb::ImdbScale scale;
      scale.shows = 25;
      scale.directors = 10;
      scale.actors = 15;
      scale.seed = 1234;
      return new xml::Document(imdb::Generate(scale));
    }();
    return *doc;
  }
};

TEST_P(CrossConfigEquivalence, AllConfigurationsAgreeWithDom) {
  const char* qname = GetParam();
  auto query = xq::ParseQuery(imdb::QueryText(qname));
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  std::map<std::string, Value> params = {
      {"c1", Value::Str("title1")},
      {"c2", Value::Str("title2")},
      {"c4", Value::Str("person3")},
  };
  auto expected = xq::EvaluateOnDocument(query.value(), Doc(), params);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();

  for (const NamedConfig& config : AllConfigs()) {
    auto mapping = map::MapSchema(config.schema);
    ASSERT_TRUE(mapping.ok())
        << config.name << ": " << mapping.status().ToString();
    store::Database db(mapping->catalog());
    ASSERT_TRUE(store::ShredDocument(Doc(), mapping.value(), &db).ok())
        << config.name;

    auto rq = xlat::TranslateQuery(query.value(), mapping.value());
    ASSERT_TRUE(rq.ok()) << config.name << ": " << rq.status().ToString();
    opt::Optimizer optimizer(mapping->catalog());
    auto planned = optimizer.PlanQuery(rq.value());
    ASSERT_TRUE(planned.ok())
        << config.name << ": " << planned.status().ToString();
    std::vector<opt::PhysicalPlanPtr> plans;
    for (const auto& b : planned->blocks) plans.push_back(b.plan);
    engine::Executor exec(&db, params);
    auto actual = exec.ExecuteQuery(rq.value(), plans);
    ASSERT_TRUE(actual.ok()) << config.name << ": "
                             << actual.status().ToString();
    EXPECT_TRUE(expected->SameRows(actual.value()))
        << qname << " on " << config.name << "\nexpected:\n"
        << expected->ToString() << "\nactual:\n"
        << actual->ToString() << "\nSQL:\n"
        << rq->ToSql();
  }
}

INSTANTIATE_TEST_SUITE_P(PaperQueries, CrossConfigEquivalence,
                         ::testing::Values("Q1", "Q2", "Q3", "Q4", "Q5",
                                           "Q6", "Q7", "Q8", "Q9", "Q10",
                                           "Q11", "Q12", "Q13", "Q14", "S2Q1",
                                           "S2Q3", "S2Q4"));

// Shred/reconstruct round trip across every configuration: the inverse
// mapping recovers the exact document regardless of storage design.
TEST(CrossConfigRoundTrip, AllConfigurationsReconstruct) {
  imdb::ImdbScale scale;
  scale.shows = 15;
  scale.directors = 6;
  scale.actors = 8;
  scale.seed = 77;
  xml::Document doc = imdb::Generate(scale);
  std::string original = xml::Serialize(doc);
  for (const NamedConfig& config : AllConfigs()) {
    auto mapping = map::MapSchema(config.schema);
    ASSERT_TRUE(mapping.ok()) << config.name;
    store::Database db(mapping->catalog());
    ASSERT_TRUE(store::ShredDocument(doc, mapping.value(), &db).ok())
        << config.name;
    auto rebuilt = store::ReconstructDocument(&db, mapping.value());
    ASSERT_TRUE(rebuilt.ok())
        << config.name << ": " << rebuilt.status().ToString();
    EXPECT_EQ(original, xml::Serialize(rebuilt.value())) << config.name;
  }
}

}  // namespace
}  // namespace legodb
