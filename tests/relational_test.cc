// Unit tests for the relational catalog: SQL types, row width accounting,
// column lookup, DDL rendering and catalog totals.
#include <gtest/gtest.h>

#include "relational/catalog.h"

namespace legodb::rel {
namespace {

TEST(SqlTypeTest, Rendering) {
  EXPECT_EQ(SqlType::Int().ToString(), "INT");
  EXPECT_EQ(SqlType::Char(40).ToString(), "CHAR(40)");
  EXPECT_EQ(SqlType::Varchar(100).ToString(), "STRING");
}

TEST(SqlTypeTest, Widths) {
  EXPECT_DOUBLE_EQ(SqlType::Int().width, 4);
  EXPECT_DOUBLE_EQ(SqlType::Char(40).width, 40);
  EXPECT_DOUBLE_EQ(SqlType::Varchar(123).width, 123);
}

Table MakeTable() {
  Table t;
  t.name = "Show";
  t.key_column = "Show_id";
  t.row_count = 100;
  Column id, title, desc, fk;
  id.name = "Show_id";
  id.type = SqlType::Int();
  title.name = "title";
  title.type = SqlType::Char(50);
  desc.name = "description";
  desc.type = SqlType::Char(120);
  desc.nullable = true;
  desc.null_fraction = 0.5;
  fk.name = "parent_IMDB";
  fk.type = SqlType::Int();
  t.columns = {id, title, desc, fk};
  t.foreign_keys = {ForeignKey{"parent_IMDB", "IMDB"}};
  return t;
}

TEST(TableTest, RowWidthAccountsForNullFractions) {
  Table t = MakeTable();
  // overhead 8 + id 4 + title 50 + desc 120*0.5 + null byte 1 + fk 4.
  EXPECT_DOUBLE_EQ(t.RowWidth(), 8 + 4 + 50 + 60 + 1 + 4);
}

TEST(TableTest, ColumnLookup) {
  Table t = MakeTable();
  EXPECT_NE(t.FindColumn("title"), nullptr);
  EXPECT_EQ(t.FindColumn("nope"), nullptr);
  EXPECT_EQ(t.ColumnIndex("Show_id"), 0);
  EXPECT_EQ(t.ColumnIndex("parent_IMDB"), 3);
  EXPECT_EQ(t.ColumnIndex("nope"), -1);
}

TEST(CatalogTest, AddAndFind) {
  Catalog c;
  c.AddTable(MakeTable());
  EXPECT_TRUE(c.HasTable("Show"));
  EXPECT_FALSE(c.HasTable("Nope"));
  EXPECT_EQ(c.FindTable("Nope"), nullptr);
  EXPECT_EQ(c.GetTable("Show").row_count, 100);
  EXPECT_EQ(c.size(), 1u);
  EXPECT_EQ(c.table_names(), (std::vector<std::string>{"Show"}));
}

TEST(CatalogTest, TotalBytes) {
  Catalog c;
  c.AddTable(MakeTable());
  EXPECT_DOUBLE_EQ(c.TotalBytes(), 100 * (8 + 4 + 50 + 60 + 1 + 4));
}

TEST(CatalogTest, DdlListsKeysAndConstraints) {
  Catalog c;
  c.AddTable(MakeTable());
  std::string ddl = c.ToDdl();
  EXPECT_NE(ddl.find("TABLE Show"), std::string::npos);
  EXPECT_NE(ddl.find("Show_id INT PRIMARY KEY"), std::string::npos);
  EXPECT_NE(ddl.find("description CHAR(120) NULL"), std::string::npos);
  EXPECT_NE(ddl.find("FOREIGN KEY (parent_IMDB) REFERENCES IMDB"),
            std::string::npos);
  EXPECT_NE(ddl.find("100 rows"), std::string::npos);
}

}  // namespace
}  // namespace legodb::rel
