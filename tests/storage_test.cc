// Unit tests for the storage layer: heap tables and hash indexes, the
// shredder (optionals, unions, wildcards, backtracking, rollback), and the
// reconstructor (inverse mapping, ordering, presence of optional content).
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "mapping/mapping.h"
#include "pschema/pschema.h"
#include "storage/database.h"
#include "storage/db_registry.h"
#include "storage/reconstruct.h"
#include "storage/shredder.h"
#include "xml/parser.h"
#include "xml/writer.h"
#include "xschema/schema_parser.h"

namespace legodb::store {
namespace {

map::Mapping MapText(const char* schema_text) {
  auto schema = xs::ParseSchema(schema_text);
  EXPECT_TRUE(schema.ok()) << schema.status().ToString();
  auto mapping = map::MapSchema(ps::Normalize(schema.value()));
  EXPECT_TRUE(mapping.ok()) << mapping.status().ToString();
  return std::move(mapping).value();
}

Database Shred(const map::Mapping& m, const char* xml_text) {
  Database db(m.catalog());
  auto doc = xml::ParseDocument(xml_text);
  EXPECT_TRUE(doc.ok()) << doc.status().ToString();
  Status st = ShredDocument(doc.value(), m, &db);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return db;
}

// ---- StoredTable / Database ----

TEST(StoredTable, InsertAndIndex) {
  rel::Table meta;
  meta.name = "T";
  meta.key_column = "T_id";
  rel::Column id, x;
  id.name = "T_id";
  x.name = "x";
  meta.columns = {id, x};
  StoredTable t(meta);
  t.Insert({Value::Int(1), Value::Str("a")});
  t.Insert({Value::Int(2), Value::Str("a")});
  t.Insert({Value::Int(3), Value::MakeNull()});
  t.EnsureIndex("x");
  const auto* hits = t.Probe("x", Value::Str("a"));
  ASSERT_NE(hits, nullptr);
  EXPECT_EQ(hits->size(), 2u);
  // NULLs are not indexed.
  EXPECT_TRUE(t.Probe("x", Value::MakeNull())->empty());
}

TEST(StoredTable, InsertInvalidatesIndexes) {
  rel::Table meta;
  meta.name = "T";
  meta.key_column = "T_id";
  rel::Column id;
  id.name = "T_id";
  meta.columns = {id};
  StoredTable t(meta);
  t.Insert({Value::Int(1)});
  t.EnsureIndex("T_id");
  EXPECT_TRUE(t.HasIndex("T_id"));
  t.Insert({Value::Int(2)});
  EXPECT_FALSE(t.HasIndex("T_id"));
  t.EnsureIndex("T_id");
  EXPECT_EQ(t.Probe("T_id", Value::Int(2))->size(), 1u);
}

TEST(DatabaseTest, CreatesAllTablesEmpty) {
  map::Mapping m = MapText("type A = a[ B* ] type B = b[ String ]");
  Database db(m.catalog());
  EXPECT_EQ(db.table_names().size(), 2u);
  EXPECT_EQ(db.TotalRows(), 0u);
  EXPECT_NE(db.FindTable("A"), nullptr);
  EXPECT_EQ(db.FindTable("Zzz"), nullptr);
}

TEST(DatabaseTest, NextIdMonotonic) {
  map::Mapping m = MapText("type A = a[ String ]");
  Database db(m.catalog());
  int64_t a = db.NextId();
  int64_t b = db.NextId();
  EXPECT_LT(a, b);
}

// ---- Shredder ----

TEST(Shredder, ScalarColumnsCanonicalized) {
  map::Mapping m = MapText("type A = a[ x[ String ], y[ Integer ] ]");
  Database db = Shred(m, "<a><x>123</x><y>45</y></a>");
  const StoredTable& t = db.GetTable("A");
  ASSERT_EQ(t.row_count(), 1u);
  int xi = t.meta().ColumnIndex("x");
  int yi = t.meta().ColumnIndex("y");
  // Integer-looking strings canonicalize to Int (matching the evaluator).
  EXPECT_EQ(t.rows()[0][xi], Value::Int(123));
  EXPECT_EQ(t.rows()[0][yi], Value::Int(45));
}

TEST(Shredder, ParentForeignKeysLinkRows) {
  map::Mapping m = MapText("type A = a[ B* ] type B = b[ String ]");
  Database db = Shred(m, "<a><b>x</b><b>y</b></a>");
  const StoredTable& a = db.GetTable("A");
  const StoredTable& b = db.GetTable("B");
  ASSERT_EQ(a.row_count(), 1u);
  ASSERT_EQ(b.row_count(), 2u);
  int key = a.meta().ColumnIndex("A_id");
  int fk = b.meta().ColumnIndex("parent_A");
  EXPECT_EQ(b.rows()[0][fk], a.rows()[0][key]);
  EXPECT_EQ(b.rows()[1][fk], a.rows()[0][key]);
}

TEST(Shredder, OptionalAbsenceStoresNull) {
  map::Mapping m = MapText("type A = a[ x[ String ]?, y[ String ] ]");
  Database db = Shred(m, "<a><y>present</y></a>");
  const StoredTable& t = db.GetTable("A");
  EXPECT_TRUE(t.rows()[0][t.meta().ColumnIndex("x")].is_null());
  EXPECT_EQ(t.rows()[0][t.meta().ColumnIndex("y")], Value::Str("present"));
}

TEST(Shredder, UnionPicksMatchingAlternative) {
  map::Mapping m = MapText(
      "type A = a[ (B | C) ] type B = b[ String ] type C = c[ Integer ]");
  Database db = Shred(m, "<a><c>9</c></a>");
  EXPECT_EQ(db.GetTable("B").row_count(), 0u);
  EXPECT_EQ(db.GetTable("C").row_count(), 1u);
}

TEST(Shredder, UnionBacktrackingRollsBackRows) {
  // First alternative B = b[x?] matches <b> prefix but the document needs
  // B2 = b[x?, z]; greedy failure inside an alternative must not leave rows.
  map::Mapping m = MapText(
      "type A = a[ (B | B2) ] type B = b[ x[ String ]? ] "
      "type B2 = b[ x[ String ]?, z[ String ] ]");
  Database db = Shred(m, "<a><b><x>1</x><z>2</z></b></a>");
  EXPECT_EQ(db.GetTable("B").row_count(), 0u);
  EXPECT_EQ(db.GetTable("B2").row_count(), 1u);
}

TEST(Shredder, WildcardStoresTagName) {
  map::Mapping m = MapText("type A = a[ R* ] type R = r[ ~[ String ] ]");
  Database db = Shred(m, "<a><r><nyt>great</nyt></r><r><sun>meh</sun></r></a>");
  const StoredTable& r = db.GetTable("R");
  ASSERT_EQ(r.row_count(), 2u);
  int tilde = r.meta().ColumnIndex("tilde");
  EXPECT_EQ(r.rows()[0][tilde], Value::Str("nyt"));
  EXPECT_EQ(r.rows()[1][tilde], Value::Str("sun"));
}

TEST(Shredder, WildcardExclusionRespected) {
  map::Mapping m = MapText("type A = a[ W ] type W = ~!x[ String ]");
  Database db(MapText("type A = a[ W ] type W = ~!x[ String ]").catalog());
  auto doc = xml::ParseDocument("<a><x>v</x></a>");
  ASSERT_TRUE(doc.ok());
  EXPECT_FALSE(ShredDocument(doc.value(), m, &db).ok());
}

TEST(Shredder, RepetitionBoundsEnforced) {
  map::Mapping m = MapText("type A = a[ B{1,2} ] type B = b[ String ]");
  {
    Database db(m.catalog());
    auto doc = xml::ParseDocument("<a/>");
    ASSERT_TRUE(doc.ok());
    EXPECT_FALSE(ShredDocument(doc.value(), m, &db).ok());
    EXPECT_EQ(db.TotalRows(), 0u);  // nothing leaked on failure
  }
  {
    Database db(m.catalog());
    auto doc = xml::ParseDocument("<a><b>1</b><b>2</b><b>3</b></a>");
    ASSERT_TRUE(doc.ok());
    EXPECT_FALSE(ShredDocument(doc.value(), m, &db).ok());
  }
}

TEST(Shredder, RejectsUnknownElements) {
  map::Mapping m = MapText("type A = a[ x[ String ] ]");
  Database db(m.catalog());
  auto doc = xml::ParseDocument("<a><x>1</x><intruder/></a>");
  ASSERT_TRUE(doc.ok());
  EXPECT_FALSE(ShredDocument(doc.value(), m, &db).ok());
}

TEST(Shredder, RecursiveTypes) {
  map::Mapping m = MapText("type N = n[ v[ Integer ], N* ]");
  Database db = Shred(m, "<n><v>1</v><n><v>2</v></n><n><v>3</v></n></n>");
  const StoredTable& n = db.GetTable("N");
  ASSERT_EQ(n.row_count(), 3u);
  int fk = n.meta().ColumnIndex("parent_N");
  int present = 0;
  for (const auto& row : n.rows()) present += row[fk].is_null() ? 0 : 1;
  EXPECT_EQ(present, 2);  // two children reference the root
}

TEST(Shredder, MultipleDocumentsAccumulate) {
  map::Mapping m = MapText("type A = a[ x[ String ] ]");
  Database db(m.catalog());
  for (int i = 0; i < 3; ++i) {
    auto doc = xml::ParseDocument("<a><x>v</x></a>");
    ASSERT_TRUE(ShredDocument(doc.value(), m, &db).ok());
  }
  EXPECT_EQ(db.GetTable("A").row_count(), 3u);
}

TEST(Shredder, RejectsUndeclaredAttributes) {
  // Mirrors the validator: an element carrying an attribute the schema does
  // not declare must not shred (it would silently drop data).
  map::Mapping m = MapText("type A = a[ x[ String ] ]");
  Database db(m.catalog());
  auto doc = xml::ParseDocument("<a undeclared=\"v\"><x>1</x></a>");
  ASSERT_TRUE(doc.ok());
  EXPECT_FALSE(ShredDocument(doc.value(), m, &db).ok());
  EXPECT_EQ(db.TotalRows(), 0u);
}

TEST(Shredder, AttributesRequiredWhenDeclared) {
  map::Mapping m = MapText("type A = a[ @k[ String ], x[ String ] ]");
  Database db(m.catalog());
  auto doc = xml::ParseDocument("<a><x>1</x></a>");
  ASSERT_TRUE(doc.ok());
  EXPECT_FALSE(ShredDocument(doc.value(), m, &db).ok());
}

// ---- Reconstruction ----

void ExpectRoundTrip(const char* schema_text, const char* xml_text) {
  map::Mapping m = MapText(schema_text);
  Database db = Shred(m, xml_text);
  auto rebuilt = ReconstructDocument(&db, m);
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().ToString();
  auto original = xml::ParseDocument(xml_text);
  EXPECT_EQ(xml::Serialize(original.value()), xml::Serialize(rebuilt.value()))
      << schema_text;
}

TEST(Reconstruct, ScalarAndAttribute) {
  ExpectRoundTrip("type A = a[ @k[ String ], x[ String ], y[ Integer ] ]",
                  "<a k=\"v\"><x>s</x><y>7</y></a>");
}

TEST(Reconstruct, OptionalPresentAndAbsent) {
  ExpectRoundTrip("type A = a[ x[ String ]?, y[ String ] ]",
                  "<a><x>1</x><y>2</y></a>");
  ExpectRoundTrip("type A = a[ x[ String ]?, y[ String ] ]", "<a><y>2</y></a>");
}

TEST(Reconstruct, OptionalGroup) {
  ExpectRoundTrip("type A = a[ (x[ String ], y[ String ])?, z[ String ] ]",
                  "<a><x>1</x><y>2</y><z>3</z></a>");
  ExpectRoundTrip("type A = a[ (x[ String ], y[ String ])?, z[ String ] ]",
                  "<a><z>3</z></a>");
}

TEST(Reconstruct, RepeatedChildrenKeepDocumentOrder) {
  ExpectRoundTrip("type A = a[ B* ] type B = b[ String ]",
                  "<a><b>1</b><b>2</b><b>3</b></a>");
}

TEST(Reconstruct, InterleavedUnionRepetition) {
  // Children from different alternatives must interleave by document order.
  ExpectRoundTrip(
      "type A = a[ (B | C)* ] type B = b[ String ] type C = c[ String ]",
      "<a><b>1</b><c>2</c><b>3</b></a>");
}

TEST(Reconstruct, WildcardTags) {
  ExpectRoundTrip("type A = a[ R* ] type R = r[ ~[ String ] ]",
                  "<a><r><nyt>x</nyt></r><r><sun>y</sun></r></a>");
}

TEST(Reconstruct, RecursiveNesting) {
  ExpectRoundTrip("type N = n[ v[ Integer ], N* ]",
                  "<n><v>1</v><n><v>2</v><n><v>3</v></n></n><n><v>4</v></n></n>");
}

TEST(Reconstruct, NestedSingletonStructure) {
  ExpectRoundTrip("type A = a[ bio[ birth[ String ], text[ String ] ] ]",
                  "<a><bio><birth>1970</birth><text>hi</text></bio></a>");
}

TEST(Reconstruct, SingleInstanceSubtree) {
  map::Mapping m = MapText("type A = a[ B* ] type B = b[ x[ String ] ]");
  Database db = Shred(m, "<a><b><x>first</x></b><b><x>second</x></b></a>");
  // Reconstruct just the second b (id 3: ids are assigned in document
  // order: a=1, b=2, b=3).
  xml::NodePtr holder = xml::Node::Element("h");
  ASSERT_TRUE(ReconstructInstance(&db, m, "B", 3, holder.get()).ok());
  EXPECT_EQ(xml::Serialize(*holder->children()[0], false),
            "<b><x>second</x></b>");
}

TEST(Reconstruct, UntypedDocumentViaAnyElementSchema) {
  // Section 3.2's universal type for untyped XML: AnyElement =
  // ~[(AnyElement | AnyScalar)*]. Its configuration is the STORED-style
  // overflow relation; any element-only document shreds into it and comes
  // back intact.
  map::Mapping m = MapText(
      "type Root = doc[ AnyElement* ] "
      "type AnyElement = ~[ (AnyElement | AnyScalar)* ] "
      "type AnyScalar = String");
  const char* text =
      "<doc><anything><nested>deep</nested><more>text</more></anything>"
      "<other/></doc>";
  Database db = Shred(m, text);
  EXPECT_GT(db.GetTable("AnyElement").row_count(), 3u);
  auto rebuilt = ReconstructDocument(&db, m);
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().ToString();
  auto original = xml::ParseDocument(text);
  EXPECT_EQ(xml::Serialize(original.value()), xml::Serialize(rebuilt.value()));
}

TEST(Reconstruct, EmptyDatabaseFails) {
  map::Mapping m = MapText("type A = a[ String ]");
  Database db(m.catalog());
  EXPECT_FALSE(ReconstructDocument(&db, m).ok());
}

// ---- Id allocation under concurrency ----

TEST(DatabaseTest, NextIdIsUniqueAcrossThreads) {
  map::Mapping m = MapText("type A = a[ String ]");
  Database db(m.catalog());
  constexpr int kThreads = 8, kPerThread = 10000;
  std::vector<std::vector<int64_t>> ids(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ids[t].reserve(kPerThread);
      for (int i = 0; i < kPerThread; ++i) ids[t].push_back(db.NextId());
    });
  }
  for (auto& t : threads) t.join();
  std::set<int64_t> unique;
  for (const auto& v : ids) unique.insert(v.begin(), v.end());
  // Every allocation distinct, and the range is dense: no id was ever
  // handed out twice or skipped.
  EXPECT_EQ(unique.size(), size_t{kThreads} * kPerThread);
  EXPECT_EQ(*unique.begin(), 1);
  EXPECT_EQ(*unique.rbegin(), int64_t{kThreads} * kPerThread);
}

// ---- DbRegistry ----

TEST(DbRegistry, PublishBumpsGenerationAndSwapsCurrent) {
  map::Mapping m = MapText("type A = a[ String ]");
  auto mapping = std::make_shared<const map::Mapping>(std::move(m));
  auto db1 = std::make_shared<Database>(mapping->catalog());
  DbRegistry registry(mapping, db1);
  EXPECT_EQ(registry.generation(), 1u);

  DbVersionPtr v1 = registry.Current();
  EXPECT_EQ(v1->generation, 1u);
  EXPECT_EQ(v1->db.get(), db1.get());

  auto db2 = std::make_shared<Database>(mapping->catalog());
  DbVersionPtr v2 = registry.Publish(mapping, db2);
  EXPECT_EQ(v2->generation, 2u);
  EXPECT_EQ(registry.generation(), 2u);
  EXPECT_EQ(registry.Current()->db.get(), db2.get());
  // The superseded version stays valid for whoever pinned it.
  EXPECT_EQ(v1->generation, 1u);
  EXPECT_EQ(v1->db.get(), db1.get());
}

TEST(DbRegistry, WaitForDrainReturnsOnceUnpinned) {
  map::Mapping m = MapText("type A = a[ String ]");
  auto mapping = std::make_shared<const map::Mapping>(std::move(m));
  DbRegistry registry(mapping,
                      std::make_shared<Database>(mapping->catalog()));
  DbVersionPtr v1 = registry.Current();
  registry.Publish(mapping, std::make_shared<Database>(mapping->catalog()));

  // A second pin (simulating an in-flight request) keeps the version from
  // draining within the timeout...
  DbVersionPtr pin = v1;
  double waited = DbRegistry::WaitForDrain(v1, /*timeout_ms=*/5);
  EXPECT_GE(waited, 5.0);

  // ...and dropping it lets the drain complete almost immediately.
  pin.reset();
  waited = DbRegistry::WaitForDrain(v1, /*timeout_ms=*/1000);
  EXPECT_LT(waited, 1000.0);
}

TEST(DbRegistry, ConcurrentReadersAlwaysSeeConsistentSnapshots) {
  map::Mapping m = MapText("type A = a[ String ]");
  auto mapping = std::make_shared<const map::Mapping>(std::move(m));
  DbRegistry registry(mapping,
                      std::make_shared<Database>(mapping->catalog()));
  std::atomic<bool> stop{false};
  std::atomic<int> torn{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      uint64_t last = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        DbVersionPtr v = registry.Current();
        // A snapshot is never half-swapped and generations never move
        // backwards from any single reader's point of view.
        if (v->mapping == nullptr || v->db == nullptr || v->generation < last) {
          ++torn;
        }
        last = v->generation;
      }
    });
  }
  for (int i = 0; i < 100; ++i) {
    registry.Publish(mapping, std::make_shared<Database>(mapping->catalog()));
  }
  stop.store(true);
  for (auto& t : readers) t.join();
  EXPECT_EQ(torn, 0);
  EXPECT_EQ(registry.generation(), 101u);
}

}  // namespace
}  // namespace legodb::store
