// Unit tests for the schema/type module: type construction and printing,
// the algebra-notation parser, schema operations, statistics, the document
// validator, and statistics annotation.
#include <gtest/gtest.h>

#include "imdb/imdb.h"
#include "xml/parser.h"
#include "xschema/annotate.h"
#include "xschema/fingerprint.h"
#include "xschema/schema.h"
#include "xschema/schema_parser.h"
#include "xschema/stats.h"
#include "xschema/stats_collector.h"
#include "xschema/type.h"
#include "xschema/validator.h"

namespace legodb::xs {
namespace {

// ---- Type construction & printing ----

TEST(Type, FactoriesNormalize) {
  // Sequences flatten; singleton sequences collapse; empties elide.
  TypePtr t = Type::Sequence(
      {Type::String(), Type::Sequence({Type::Integer(), Type::Empty()})});
  ASSERT_EQ(t->kind, Type::Kind::kSequence);
  EXPECT_EQ(t->children.size(), 2u);

  EXPECT_EQ(Type::Sequence({})->kind, Type::Kind::kEmpty);
  EXPECT_EQ(Type::Sequence({Type::String()})->kind, Type::Kind::kScalar);
  EXPECT_EQ(Type::Union({Type::Ref("A")})->kind, Type::Kind::kTypeRef);
}

TEST(Type, UnionFlattens) {
  TypePtr t = Type::Union(
      {Type::Ref("A"), Type::Union({Type::Ref("B"), Type::Ref("C")})});
  ASSERT_EQ(t->kind, Type::Kind::kUnion);
  EXPECT_EQ(t->children.size(), 3u);
}

TEST(Type, RepetitionOfOneIsIdentity) {
  TypePtr t = Type::Repetition(Type::Ref("A"), 1, 1);
  EXPECT_EQ(t->kind, Type::Kind::kTypeRef);
}

TEST(Type, ExpectedCountPrefersAnnotation) {
  TypePtr t = Type::Repetition(Type::Ref("A"), 0, kUnbounded, 3.5);
  EXPECT_DOUBLE_EQ(t->ExpectedCount(), 3.5);
  TypePtr u = Type::Repetition(Type::Ref("A"), 2, 10);
  EXPECT_DOUBLE_EQ(u->ExpectedCount(), 6.0);  // midpoint
  TypePtr v = Type::Repetition(Type::Ref("A"), 0, kUnbounded);
  EXPECT_DOUBLE_EQ(v->ExpectedCount(), Type::kDefaultUnboundedCount);
}

TEST(Type, NameClassMatching) {
  EXPECT_TRUE(NameClass::Literal("a").Matches("a"));
  EXPECT_FALSE(NameClass::Literal("a").Matches("b"));
  EXPECT_TRUE(NameClass::Any().Matches("anything"));
  EXPECT_TRUE(NameClass::AnyExcept("nyt").Matches("suntimes"));
  EXPECT_FALSE(NameClass::AnyExcept("nyt").Matches("nyt"));
}

TEST(Type, ToStringMatchesPaperNotation) {
  TypePtr show = Type::Element(
      "show", Type::Sequence({Type::Attribute("type", Type::String()),
                              Type::Element("title", Type::String()),
                              Type::Repetition(Type::Ref("Aka"), 1, 10),
                              Type::Union({Type::Ref("Movie"), Type::Ref("TV")})}));
  EXPECT_EQ(show->ToString(),
            "show[ @type[ String ], title[ String ], Aka{1,10}, "
            "(Movie | TV) ]");
}

TEST(Type, ToStringOccurrenceSugar) {
  TypePtr a = Type::Ref("A");
  EXPECT_EQ(Type::Repetition(a, 0, kUnbounded)->ToString(), "A*");
  EXPECT_EQ(Type::Repetition(a, 1, kUnbounded)->ToString(), "A+");
  EXPECT_EQ(Type::Repetition(a, 0, 1)->ToString(), "A?");
  EXPECT_EQ(Type::Repetition(a, 2, kUnbounded)->ToString(), "A{2,*}");
}

TEST(Type, EqualityRespectsStats) {
  TypePtr a = Type::String(ScalarStats{50, 0, 0, 100});
  TypePtr b = Type::String(ScalarStats{50, 0, 0, 999});
  EXPECT_FALSE(TypeEquals(a, b));
  EXPECT_TRUE(TypeEqualsIgnoringStats(a, b));
}

// ---- Schema parser ----

TEST(SchemaParser, ParsesImdbSchema) {
  auto schema = ParseSchema(imdb::SchemaText());
  ASSERT_TRUE(schema.ok()) << schema.status().ToString();
  EXPECT_EQ(schema->root_type(), "IMDB");
  EXPECT_TRUE(schema->Has("Show"));
  EXPECT_TRUE(schema->Has("Movie"));
  EXPECT_TRUE(schema->Validate().ok());
}

TEST(SchemaParser, ScalarStatistics) {
  auto t = ParseType("Integer<#4,#1800,#2100,#300>");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->scalar_stats.size, 4);
  EXPECT_EQ((*t)->scalar_stats.min, 1800);
  EXPECT_EQ((*t)->scalar_stats.max, 2100);
  EXPECT_EQ((*t)->scalar_stats.distincts, 300);

  auto s = ParseType("String<#50,#34798>");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ((*s)->scalar_stats.size, 50);
  EXPECT_EQ((*s)->scalar_stats.distincts, 34798);
}

TEST(SchemaParser, OccurrenceAnnotations) {
  auto t = ParseType("Review*<#10>");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->kind, Type::Kind::kRepetition);
  EXPECT_DOUBLE_EQ((*t)->avg_count, 10);
}

TEST(SchemaParser, UnionHasLowerPrecedenceThanSequence) {
  auto t = ParseType("a[ String ], b[ String ] | c[ String ]");
  ASSERT_TRUE(t.ok());
  ASSERT_EQ((*t)->kind, Type::Kind::kUnion);
  EXPECT_EQ((*t)->children[0]->kind, Type::Kind::kSequence);
  EXPECT_EQ((*t)->children[1]->kind, Type::Kind::kElement);
}

TEST(SchemaParser, WildcardForms) {
  auto t = ParseType("~[ String ]");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->name.kind, NameClass::Kind::kAny);

  auto e = ParseType("~!nyt[ String ]");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->name.kind, NameClass::Kind::kAnyExcept);
  EXPECT_EQ((*e)->name.name, "nyt");

  auto tilde = ParseType("TILDE[ String ]");  // Appendix-B spelling
  ASSERT_TRUE(tilde.ok());
  EXPECT_EQ((*tilde)->name.kind, NameClass::Kind::kAny);
}

TEST(SchemaParser, ElementVsTypeRefDisambiguation) {
  auto t = ParseType("aka[ String ], Aka{1,10}");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->children[0]->kind, Type::Kind::kElement);
  EXPECT_EQ((*t)->children[1]->kind, Type::Kind::kRepetition);
  EXPECT_EQ((*t)->children[1]->child->ref_name, "Aka");
}

TEST(SchemaParser, EmptyContentForms) {
  EXPECT_EQ((*ParseType("()"))->kind, Type::Kind::kEmpty);
  EXPECT_EQ((*ParseType("a[ ]"))->child->kind, Type::Kind::kEmpty);
}

TEST(SchemaParser, LineComments) {
  auto schema = ParseSchema("// header comment\ntype A = a[ String ] // end");
  ASSERT_TRUE(schema.ok());
  EXPECT_TRUE(schema->Has("A"));
}

TEST(SchemaParser, Errors) {
  EXPECT_FALSE(ParseSchema("").ok());
  EXPECT_FALSE(ParseSchema("type = a[ String ]").ok());
  EXPECT_FALSE(ParseSchema("type A = a[ String").ok());
  EXPECT_FALSE(ParseSchema("type A = a[ String ] type A = b[ String ]").ok());
  EXPECT_FALSE(ParseType("a{2,1}").ok());  // bounds out of order
  EXPECT_FALSE(ParseType("@[ String ]").ok());
}

// Property: printing a parsed schema and re-parsing yields an equal schema.
class ParsePrintFixpointTest : public ::testing::TestWithParam<const char*> {
};

TEST_P(ParsePrintFixpointTest, Holds) {
  auto schema1 = ParseSchema(GetParam());
  ASSERT_TRUE(schema1.ok()) << schema1.status().ToString();
  std::string printed = schema1->ToString();
  auto schema2 = ParseSchema(printed);
  ASSERT_TRUE(schema2.ok()) << schema2.status().ToString() << "\n" << printed;
  ASSERT_EQ(schema1->type_names(), schema2->type_names());
  for (const auto& name : schema1->type_names()) {
    EXPECT_TRUE(TypeEquals(schema1->Get(name), schema2->Get(name)))
        << name << ": " << schema1->Get(name)->ToString() << " vs "
        << schema2->Get(name)->ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Schemas, ParsePrintFixpointTest,
    ::testing::Values(
        "type A = a[ String<#10,#5> ]",
        "type A = a[ @k[ String ], (B | C)* ] type B = b[ Integer ] "
        "type C = c[ String ]",
        "type R = r[ R? ]",  // recursive
        "type W = ~!x[ String ]{2,7}<#3>",
        "type Root = root[ x[ y[ z[ Integer<#4,#-5,#5,#11> ] ] ]? ]"));

TEST(ParsePrintFixpoint, ImdbSchema) {
  auto schema1 = ParseSchema(imdb::SchemaText());
  ASSERT_TRUE(schema1.ok());
  auto schema2 = ParseSchema(schema1->ToString());
  ASSERT_TRUE(schema2.ok()) << schema2.status().ToString();
  for (const auto& name : schema1->type_names()) {
    EXPECT_TRUE(TypeEquals(schema1->Get(name), schema2->Get(name))) << name;
  }
}

// ---- Schema operations ----

TEST(Schema, ReferencedTypesAndParents) {
  auto schema = *ParseSchema(
      "type A = a[ B, C* ] type B = b[ String ] type C = c[ B? ]");
  auto refs = Schema::ReferencedTypes(schema.Get("A"));
  EXPECT_EQ(refs, (std::vector<std::string>{"B", "C"}));
  auto parents = schema.ParentMap();
  EXPECT_EQ(parents["B"], (std::vector<std::string>{"A", "C"}));
  EXPECT_EQ(parents["C"], (std::vector<std::string>{"A"}));
}

TEST(Schema, ReachableAndGarbageCollect) {
  auto schema = *ParseSchema(
      "type A = a[ B ] type B = b[ String ] type Z = z[ String ]");
  EXPECT_EQ(schema.ReachableFromRoot(),
            (std::vector<std::string>{"A", "B"}));
  schema.GarbageCollect();
  EXPECT_FALSE(schema.Has("Z"));
  EXPECT_TRUE(schema.Has("B"));
}

TEST(Schema, RecursionDetection) {
  auto schema = *ParseSchema(
      "type A = a[ B? ] type B = b[ A? ] type C = c[ String ]");
  EXPECT_TRUE(schema.IsRecursive("A"));
  EXPECT_TRUE(schema.IsRecursive("B"));
  EXPECT_FALSE(schema.IsRecursive("C"));
}

TEST(Schema, FreshTypeName) {
  auto schema = *ParseSchema("type A = a[ String ]");
  EXPECT_EQ(schema.FreshTypeName("B"), "B");
  EXPECT_EQ(schema.FreshTypeName("A"), "A_2");
}

TEST(Schema, ValidateCatchesDanglingRefs) {
  Schema schema;
  schema.Define("A", Type::Element("a", Type::Ref("Missing")));
  EXPECT_FALSE(schema.Validate().ok());
}

// ---- Statistics ----

TEST(Stats, ParseAppendixNotation) {
  auto stats = ParseStats(
      "([\"imdb\";\"show\"], STcnt(34798));\n"
      "([\"imdb\";\"show\";\"title\"], STsize(50));\n"
      "([\"imdb\";\"show\";\"year\"], STbase(1800,2100,300));\n");
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->Count({"imdb", "show"}), 34798);
  EXPECT_EQ(stats->Size({"imdb", "show", "title"}), 50);
  const PathStat* year = stats->Find({"imdb", "show", "year"});
  ASSERT_NE(year, nullptr);
  ASSERT_TRUE(year->base.has_value());
  EXPECT_EQ(year->base->min, 1800);
  EXPECT_EQ(year->base->max, 2100);
  EXPECT_EQ(year->base->distincts, 300);
}

TEST(Stats, EntriesForSamePathMerge) {
  auto stats = ParseStats(
      "([\"a\"], STcnt(5)); ([\"a\"], STsize(10));");
  ASSERT_TRUE(stats.ok());
  const PathStat* s = stats->Find({"a"});
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(*s->count, 5);
  EXPECT_EQ(*s->size, 10);
}

TEST(Stats, ParseFullAppendixA) {
  auto stats = ParseStats(imdb::StatsText());
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->Count({"imdb", "actor", "played"}), 663144);
  EXPECT_EQ(stats->Count({"imdb", "show", "reviews"}), 11250);
  EXPECT_EQ(stats->Size({"imdb", "show", "reviews", "TILDE"}), 800);
}

TEST(Stats, PrintParseRoundTrip) {
  auto stats1 = ParseStats(imdb::StatsText());
  ASSERT_TRUE(stats1.ok());
  auto stats2 = ParseStats(stats1->ToString());
  ASSERT_TRUE(stats2.ok()) << stats2.status().ToString();
  EXPECT_EQ(stats1->size(), stats2->size());
  for (const auto& [path, stat] : stats1->entries()) {
    const PathStat* other = stats2->Find(path);
    ASSERT_NE(other, nullptr);
    EXPECT_EQ(stat.count, other->count);
    EXPECT_EQ(stat.base, other->base);
  }
}

TEST(Stats, ParseErrors) {
  EXPECT_FALSE(ParseStats("([\"a\"], STwhat(1));").ok());
  EXPECT_FALSE(ParseStats("([\"a\", STcnt(1));").ok());
  EXPECT_FALSE(ParseStats("([\"a\"], STbase(1,2));").ok());
}

// ---- Statistics collector ----

TEST(StatsCollector, CountsSizesAndRanges) {
  auto doc = xml::ParseDocument(
      "<imdb><show><title>ab</title><year>1993</year></show>"
      "<show><title>cdef</title><year>2001</year></show></imdb>");
  ASSERT_TRUE(doc.ok());
  StatsCollector collector;
  collector.AddDocument(doc.value());
  StatsSet stats = collector.Finish();

  EXPECT_EQ(stats.Count({"imdb"}), 1);
  EXPECT_EQ(stats.Count({"imdb", "show"}), 2);
  EXPECT_EQ(stats.Size({"imdb", "show", "title"}), 3);  // avg(2,4)
  const PathStat* year = stats.Find({"imdb", "show", "year"});
  ASSERT_NE(year, nullptr);
  ASSERT_TRUE(year->base.has_value());
  EXPECT_EQ(year->base->min, 1993);
  EXPECT_EQ(year->base->max, 2001);
  EXPECT_EQ(year->base->distincts, 2);
}

TEST(StatsCollector, AttributesAndTildeAggregate) {
  auto doc = xml::ParseDocument(
      "<r><rev source=\"x\"><nyt>t1</nyt></rev><rev><sun>t2</sun></rev></r>");
  ASSERT_TRUE(doc.ok());
  StatsCollector collector;
  collector.AddDocument(doc.value());
  StatsSet stats = collector.Finish();
  EXPECT_EQ(stats.Count({"r", "rev", "source"}), 1);
  EXPECT_EQ(stats.Count({"r", "rev", "nyt"}), 1);
  // TILDE aggregates all children of rev regardless of tag.
  EXPECT_EQ(stats.Count({"r", "rev", "TILDE"}), 2);
}

// ---- Validator ----

Schema ImdbSchema() {
  auto schema = imdb::Schema();
  EXPECT_TRUE(schema.ok());
  return std::move(schema).value();
}

TEST(Validator, AcceptsGeneratedDocuments) {
  imdb::ImdbScale scale;
  scale.shows = 8;
  scale.directors = 3;
  scale.actors = 4;
  for (uint64_t seed : {1u, 2u, 3u}) {
    scale.seed = seed;
    xml::Document doc = imdb::Generate(scale);
    EXPECT_TRUE(ValidateDocument(doc, ImdbSchema()).ok()) << "seed " << seed;
  }
}

TEST(Validator, RejectsWrongRootName) {
  auto doc = xml::ParseDocument("<not_imdb/>");
  ASSERT_TRUE(doc.ok());
  EXPECT_FALSE(ValidateDocument(doc.value(), ImdbSchema()).ok());
}

TEST(Validator, RejectsMissingRequiredChild) {
  // show requires a title.
  auto doc = xml::ParseDocument(
      "<imdb><show type=\"Movie\"><year>1990</year>"
      "<box_office>1</box_office><video_sales>2</video_sales></show></imdb>");
  ASSERT_TRUE(doc.ok());
  EXPECT_FALSE(ValidateDocument(doc.value(), ImdbSchema()).ok());
}

TEST(Validator, RejectsNonIntegerContent) {
  auto doc = xml::ParseDocument(
      "<imdb><show type=\"Movie\"><title>t</title><year>not_a_year</year>"
      "<box_office>1</box_office><video_sales>2</video_sales></show></imdb>");
  ASSERT_TRUE(doc.ok());
  EXPECT_FALSE(ValidateDocument(doc.value(), ImdbSchema()).ok());
}

TEST(Validator, RejectsUndeclaredAttribute) {
  auto doc = xml::ParseDocument(
      "<imdb><show type=\"Movie\" extra=\"x\"><title>t</title>"
      "<year>1990</year><box_office>1</box_office>"
      "<video_sales>2</video_sales></show></imdb>");
  ASSERT_TRUE(doc.ok());
  EXPECT_FALSE(ValidateDocument(doc.value(), ImdbSchema()).ok());
}

TEST(Validator, RepetitionBounds) {
  auto schema = *ParseSchema("type A = a[ b[ String ]{2,3} ]");
  auto ok = xml::ParseDocument("<a><b>1</b><b>2</b></a>");
  EXPECT_TRUE(ValidateDocument(*ok, schema).ok());
  auto too_few = xml::ParseDocument("<a><b>1</b></a>");
  EXPECT_FALSE(ValidateDocument(*too_few, schema).ok());
  auto too_many = xml::ParseDocument("<a><b>1</b><b>2</b><b>3</b><b>4</b></a>");
  EXPECT_FALSE(ValidateDocument(*too_many, schema).ok());
}

TEST(Validator, UnionAlternatives) {
  auto schema = *ParseSchema(
      "type A = a[ (B | C) ] type B = b[ String ] type C = c[ Integer ]");
  EXPECT_TRUE(
      ValidateDocument(*xml::ParseDocument("<a><b>x</b></a>"), schema).ok());
  EXPECT_TRUE(
      ValidateDocument(*xml::ParseDocument("<a><c>5</c></a>"), schema).ok());
  EXPECT_FALSE(
      ValidateDocument(*xml::ParseDocument("<a><d>5</d></a>"), schema).ok());
  EXPECT_FALSE(ValidateDocument(*xml::ParseDocument("<a/>"), schema).ok());
}

TEST(Validator, WildcardExclusion) {
  auto schema = *ParseSchema("type A = a[ ~!nyt[ String ] ]");
  EXPECT_TRUE(
      ValidateDocument(*xml::ParseDocument("<a><sun>x</sun></a>"), schema)
          .ok());
  EXPECT_FALSE(
      ValidateDocument(*xml::ParseDocument("<a><nyt>x</nyt></a>"), schema)
          .ok());
}

TEST(Validator, RecursiveType) {
  auto schema = *ParseSchema("type N = n[ v[ Integer ], N* ]");
  EXPECT_TRUE(ValidateDocument(
                  *xml::ParseDocument(
                      "<n><v>1</v><n><v>2</v></n><n><v>3</v></n></n>"),
                  schema)
                  .ok());
  EXPECT_FALSE(ValidateDocument(
                   *xml::ParseDocument("<n><n><v>2</v></n></n>"), schema)
                   .ok());
}

TEST(Validator, BacktracksOverOptionals) {
  // (b?, b) requires matching the optional lazily.
  auto schema = *ParseSchema("type A = a[ b[ String ]?, b[ String ] ]");
  EXPECT_TRUE(
      ValidateDocument(*xml::ParseDocument("<a><b>1</b></a>"), schema).ok());
  EXPECT_TRUE(
      ValidateDocument(*xml::ParseDocument("<a><b>1</b><b>2</b></a>"), schema)
          .ok());
  EXPECT_FALSE(ValidateDocument(*xml::ParseDocument("<a/>"), schema).ok());
}

// ---- Annotation ----

TEST(Annotate, WeavesStatisticsIntoImdbSchema) {
  auto schema = ImdbSchema();
  auto stats = *ParseStats(imdb::StatsText());
  Schema annotated = AnnotateSchema(schema, stats);

  // Show: show[ @type[...], title[ String<#50,#34798> ], ... ].
  TypePtr show = annotated.Get("Show");
  TypePtr title = show->child->children[1];  // after the @type attribute
  ASSERT_EQ(title->name.name, "title");
  EXPECT_EQ(title->child->scalar_stats.size, 50);
  EXPECT_EQ(title->child->scalar_stats.distincts, 34798);

  // IMDB: Show* gets avg occurrences 34798 (one imdb root).
  TypePtr imdb_body = annotated.Get("IMDB");
  TypePtr shows_rep = imdb_body->child->children[0];
  ASSERT_EQ(shows_rep->kind, Type::Kind::kRepetition);
  EXPECT_DOUBLE_EQ(shows_rep->avg_count, 34798);
}

TEST(Annotate, UnionBranchWeightsFromStatistics) {
  auto schema = ImdbSchema();
  auto stats = *ParseStats(imdb::StatsText());
  Schema annotated = AnnotateSchema(schema, stats);
  TypePtr show = annotated.Get("Show");
  const TypePtr& union_node = show->child->children.back();
  ASSERT_EQ(union_node->kind, Type::Kind::kUnion);
  // Movie: min singleton count 7000 (box_office); TV: 3500 (seasons).
  EXPECT_NEAR(union_node->children[0]->ref_weight, 7000.0 / 10500, 1e-9);
  EXPECT_NEAR(union_node->children[1]->ref_weight, 3500.0 / 10500, 1e-9);
}

TEST(Annotate, RepetitionAveragesAreBranchLocal) {
  auto schema = ImdbSchema();
  auto stats = *ParseStats(imdb::StatsText());
  Schema annotated = AnnotateSchema(schema, stats);
  // Episodes live in the TV branch; their average is per TV show, not per
  // show: 31250 episodes / (34798 * tv_weight).
  TypePtr tv = annotated.Get("TV");
  const TypePtr& episodes_rep = tv->children.back();
  ASSERT_EQ(episodes_rep->kind, Type::Kind::kRepetition);
  double tv_instances = 34798 * (3500.0 / 10500);
  EXPECT_NEAR(episodes_rep->avg_count, 31250 / tv_instances, 1e-6);
}

TEST(Annotate, CollectorDrivenAnnotationIsConsistent) {
  auto schema = ImdbSchema();
  imdb::ImdbScale scale;
  scale.shows = 30;
  scale.directors = 10;
  scale.actors = 15;
  xml::Document doc = imdb::Generate(scale);
  StatsCollector collector;
  collector.AddDocument(doc);
  Schema annotated = AnnotateSchema(schema, collector.Finish());
  // Title sizes/distincts must reflect the generated data.
  TypePtr title = annotated.Get("Show")->child->children[1];
  EXPECT_GT(title->child->scalar_stats.size, 0);
  EXPECT_GT(title->child->scalar_stats.distincts, 0);
  EXPECT_LE(title->child->scalar_stats.distincts, 30);
}

// ---- Schema fingerprints ----

TEST(Fingerprint, StableAcrossIdenticalParses) {
  auto a = ParseSchema(imdb::SchemaText());
  auto b = ParseSchema(imdb::SchemaText());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(FingerprintSchema(a.value()), FingerprintSchema(b.value()));
  EXPECT_EQ(FingerprintType(a->Get("Show")), FingerprintType(b->Get("Show")));
}

TEST(Fingerprint, SensitiveToStructureNamesAndStats) {
  auto base = ParseSchema("type R = r[ a[ String<#8,#100> ], B* ] "
                          "type B = b[ Integer<#4,#0,#9,#10> ]");
  ASSERT_TRUE(base.ok());
  uint64_t fp = FingerprintSchema(base.value());

  // A statistics-only change (distincts 100 -> 101) changes the print AND
  // the fingerprint: stats feed the cost model.
  auto stats = ParseSchema("type R = r[ a[ String<#8,#101> ], B* ] "
                           "type B = b[ Integer<#4,#0,#9,#10> ]");
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(fp, FingerprintSchema(stats.value()));

  // A structural change (a -> a?) changes the fingerprint.
  auto opt = ParseSchema("type R = r[ a[ String<#8,#100> ]?, B* ] "
                         "type B = b[ Integer<#4,#0,#9,#10> ]");
  ASSERT_TRUE(opt.ok());
  EXPECT_NE(fp, FingerprintSchema(opt.value()));

  // A renamed type changes the fingerprint (names become relations).
  auto renamed = ParseSchema("type R = r[ a[ String<#8,#100> ], C* ] "
                             "type C = b[ Integer<#4,#0,#9,#10> ]");
  ASSERT_TRUE(renamed.ok());
  EXPECT_NE(fp, FingerprintSchema(renamed.value()));
}

TEST(Fingerprint, IgnoresUnreachableAndDeclarationOrder) {
  auto base = ParseSchema("type R = r[ A ] type A = a[ String ]");
  ASSERT_TRUE(base.ok());

  // An unreachable definition does not affect the fingerprint.
  Schema with_junk = base.value();
  with_junk.Define("Junk", Type::Element("junk", Type::String()));
  EXPECT_EQ(FingerprintSchema(base.value()), FingerprintSchema(with_junk));

  // Reordered declarations (same root) fingerprint identically.
  Schema reordered;
  reordered.Define("A", base->Get("A"));
  reordered.Define("R", base->Get("R"));
  reordered.set_root_type("R");
  EXPECT_EQ(FingerprintSchema(base.value()), FingerprintSchema(reordered));
}

}  // namespace
}  // namespace legodb::xs

