// Unit tests for the common module: Status/StatusOr, Value, string
// utilities, RNG determinism, table printing.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/status.h"
#include "common/str_util.h"
#include "common/table_printer.h"
#include "common/value.h"

namespace legodb {
namespace {

TEST(Status, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status st = Status::ParseError("bad token");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), Status::Code::kParseError);
  EXPECT_EQ(st.message(), "bad token");
  EXPECT_EQ(st.ToString(), "ParseError: bad token");
}

TEST(Status, AllCodesRender) {
  EXPECT_EQ(Status::InvalidArgument("x").ToString(), "InvalidArgument: x");
  EXPECT_EQ(Status::NotFound("x").ToString(), "NotFound: x");
  EXPECT_EQ(Status::Unsupported("x").ToString(), "Unsupported: x");
  EXPECT_EQ(Status::Internal("x").ToString(), "Internal: x");
}

StatusOr<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

TEST(StatusOr, HoldsValue) {
  StatusOr<int> v = ParsePositive(7);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 7);
  EXPECT_EQ(*v, 7);
}

TEST(StatusOr, HoldsError) {
  StatusOr<int> v = ParsePositive(-1);
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), Status::Code::kInvalidArgument);
}

StatusOr<int> Doubled(int x) {
  LEGODB_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

TEST(StatusOr, AssignOrReturnPropagates) {
  EXPECT_EQ(Doubled(21).value(), 42);
  EXPECT_FALSE(Doubled(0).ok());
}

TEST(Value, NullByDefault) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.ToString(), "NULL");
  EXPECT_EQ(v.ByteSize(), 1u);
}

TEST(Value, IntRoundTrip) {
  Value v = Value::Int(-42);
  EXPECT_TRUE(v.is_int());
  EXPECT_EQ(v.as_int(), -42);
  EXPECT_EQ(v.ToString(), "-42");
  EXPECT_EQ(v.ByteSize(), 8u);
}

TEST(Value, StringRoundTrip) {
  Value v = Value::Str("hello");
  EXPECT_TRUE(v.is_string());
  EXPECT_EQ(v.as_string(), "hello");
  EXPECT_EQ(v.ByteSize(), 5u);
}

TEST(Value, EqualityIsTyped) {
  EXPECT_EQ(Value::Int(1), Value::Int(1));
  EXPECT_NE(Value::Int(1), Value::Str("1"));
  EXPECT_NE(Value::Int(1), Value::MakeNull());
  EXPECT_EQ(Value::MakeNull(), Value::MakeNull());
}

TEST(Value, TotalOrderNullIntString) {
  EXPECT_LT(Value::MakeNull(), Value::Int(0));
  EXPECT_LT(Value::Int(5), Value::Str("a"));
  EXPECT_LT(Value::Int(1), Value::Int(2));
  EXPECT_LT(Value::Str("a"), Value::Str("b"));
  EXPECT_FALSE(Value::Str("a") < Value::Str("a"));
}

TEST(Value, HashDistinguishesKinds) {
  ValueHash h;
  EXPECT_EQ(h(Value::Int(3)), h(Value::Int(3)));
  EXPECT_EQ(h(Value::Str("x")), h(Value::Str("x")));
}

TEST(StrUtil, SplitKeepsEmptyPieces) {
  EXPECT_EQ(StrSplit("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(StrSplit("", ','), (std::vector<std::string>{""}));
}

TEST(StrUtil, JoinInvertsSplit) {
  std::vector<std::string> pieces = {"x", "y", "z"};
  EXPECT_EQ(StrJoin(pieces, "/"), "x/y/z");
  EXPECT_EQ(StrSplit("x/y/z", '/'), pieces);
}

TEST(StrUtil, Trim) {
  EXPECT_EQ(StrTrim("  hi \n\t"), "hi");
  EXPECT_EQ(StrTrim("hi"), "hi");
  EXPECT_EQ(StrTrim("   "), "");
  EXPECT_EQ(StrTrim(""), "");
}

TEST(StrUtil, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("parent_Show", "parent_"));
  EXPECT_FALSE(StartsWith("pa", "parent_"));
  EXPECT_TRUE(EndsWith("Show_id", "_id"));
  EXPECT_FALSE(EndsWith("id", "_id"));
}

TEST(StrUtil, IsInteger) {
  EXPECT_TRUE(IsInteger("123"));
  EXPECT_TRUE(IsInteger("-5"));
  EXPECT_TRUE(IsInteger("+7"));
  EXPECT_FALSE(IsInteger(""));
  EXPECT_FALSE(IsInteger("-"));
  EXPECT_FALSE(IsInteger("12a"));
  EXPECT_FALSE(IsInteger("1 2"));
}

TEST(Rng, DeterministicForSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  EXPECT_NE(a.Next(), b.Next());
}

TEST(Rng, UniformInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.Uniform(10);
    EXPECT_LT(v, 10u);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(Rng, RandomStringIsLowercase) {
  Rng rng(11);
  std::string s = rng.RandomString(64);
  EXPECT_EQ(s.size(), 64u);
  for (char c : s) {
    EXPECT_GE(c, 'a');
    EXPECT_LE(c, 'z');
  }
}

TEST(TablePrinter, AlignsColumns) {
  TablePrinter t({"a", "long_header"});
  t.AddRow({"xxxx", "1"});
  std::string out = t.ToString();
  EXPECT_NE(out.find("| a    | long_header |"), std::string::npos);
  EXPECT_NE(out.find("| xxxx | 1           |"), std::string::npos);
}

TEST(TablePrinter, PadsShortRows) {
  TablePrinter t({"a", "b", "c"});
  t.AddRow({"1"});
  std::string out = t.ToString();
  EXPECT_NE(out.find("| 1 |"), std::string::npos);
}

TEST(TablePrinter, FormatsDoubleRows) {
  TablePrinter t({"label", "x", "y"});
  t.AddRow("row", {1.2345, 2.0});
  EXPECT_NE(t.ToString().find("1.23"), std::string::npos);
  EXPECT_NE(t.ToString().find("2.00"), std::string::npos);
}

TEST(FormatDoubleTest, Precision) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(3.14159, 0), "3");
  EXPECT_EQ(FormatDouble(-1.5, 1), "-1.5");
}

}  // namespace
}  // namespace legodb
