// Property tests over randomly generated schemas and documents:
//  - generated documents validate against their schema,
//  - schema print -> parse is a fixpoint,
//  - for each derived configuration (normalized / all-inlined /
//    all-outlined), shred -> reconstruct is the identity,
//  - transformations preserve validity of the generated documents.
//
// The generator produces locally unambiguous content models (distinct
// element names per container), matching the shredder's greedy matching
// contract.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "core/transforms.h"
#include "mapping/mapping.h"
#include "pschema/pschema.h"
#include "storage/reconstruct.h"
#include "storage/shredder.h"
#include "xml/writer.h"
#include "xschema/schema.h"
#include "xschema/schema_parser.h"
#include "xschema/validator.h"

namespace legodb {
namespace {

using xs::Schema;
using xs::Type;
using xs::TypePtr;

// ---- random schema generation ----

class SchemaFuzzer {
 public:
  explicit SchemaFuzzer(uint64_t seed) : rng_(seed) {}

  Schema Generate() {
    Schema schema;
    int n_types = 1 + static_cast<int>(rng_.Uniform(4));
    // Define leaf-most types first; type i may reference types > i only
    // (guarantees finite documents).
    std::vector<std::string> names;
    for (int i = n_types - 1; i >= 0; --i) {
      std::string name = "T" + std::to_string(i);
      std::vector<std::string> refs = names;  // already-defined types
      TypePtr body =
          Type::Element(FreshName(), GenContent(2, refs, /*top=*/true));
      schema.Define(name, body);
      names.push_back(name);
    }
    // The last defined type is the most "root-like"; make it the root.
    schema.set_root_type("T0");
    // Drop unreachable definitions so every type participates.
    schema.GarbageCollect();
    return schema;
  }

  // Generates a document valid under `schema` by construction.
  xml::NodePtr GenerateDocument(const Schema& schema) {
    TypePtr body = schema.Get(schema.root_type());
    xml::NodePtr holder = xml::Node::Element("__holder__");
    EmitType(schema, body, holder.get(), 0);
    EXPECT_EQ(holder->children().size(), 1u);
    return holder->ReleaseChild(0);
  }

 private:
  std::string FreshName() {
    return "e" + std::to_string(name_counter_++);
  }

  TypePtr GenContent(int depth, const std::vector<std::string>& refs,
                     bool top) {
    // Sequences of distinct items; depth bounds nesting.
    int n_items = 1 + static_cast<int>(rng_.Uniform(top ? 4 : 3));
    std::vector<TypePtr> items;
    for (int i = 0; i < n_items; ++i) {
      items.push_back(GenItem(depth, refs));
    }
    return Type::Sequence(std::move(items));
  }

  TypePtr GenItem(int depth, const std::vector<std::string>& refs) {
    uint64_t pick = rng_.Uniform(10);
    if (pick < 3 || depth == 0) {  // scalar element
      return Type::Element(FreshName(), GenScalar());
    }
    if (pick < 4) {  // attribute
      return Type::Attribute("a" + std::to_string(name_counter_++),
                             GenScalar());
    }
    if (pick < 5) {  // optional element
      return Type::Optional(Type::Element(FreshName(), GenScalar()));
    }
    if (pick < 6) {  // nested structure
      return Type::Element(FreshName(), GenContent(depth - 1, refs, false));
    }
    if (pick < 7) {  // wildcard element
      return Type::Element(xs::NameClass::Any(), GenScalar());
    }
    if (pick < 9 && !refs.empty()) {  // repetition of a type ref
      const std::string& ref = refs[rng_.Uniform(refs.size())];
      uint32_t min = static_cast<uint32_t>(rng_.Uniform(2));
      uint32_t max = min + 1 + static_cast<uint32_t>(rng_.Uniform(3));
      return Type::Repetition(Type::Ref(ref), min, max);
    }
    if (!refs.empty() && refs.size() >= 2 && rng_.Bernoulli(0.5)) {
      // union of two distinct refs
      return Type::Union({Type::Ref(refs[0]), Type::Ref(refs.back())});
    }
    return Type::Element(FreshName(), GenScalar());
  }

  TypePtr GenScalar() {
    return rng_.Bernoulli(0.5) ? Type::String() : Type::Integer();
  }

  // Emits one instance of `t` into `parent`.
  void EmitType(const Schema& schema, const TypePtr& t, xml::Node* parent,
                int depth) {
    if (depth > 24) return;
    switch (t->kind) {
      case Type::Kind::kEmpty:
        return;
      case Type::Kind::kScalar:
        parent->AddText(t->scalar_kind == xs::ScalarKind::kInteger
                            ? std::to_string(rng_.UniformInt(0, 999))
                            : "s" + rng_.RandomString(4));
        return;
      case Type::Kind::kElement: {
        std::string tag;
        switch (t->name.kind) {
          case xs::NameClass::Kind::kLiteral:
            tag = t->name.name;
            break;
          case xs::NameClass::Kind::kAny:
            tag = "w" + rng_.RandomString(3);
            break;
          case xs::NameClass::Kind::kAnyExcept:
            tag = t->name.name + "x";
            break;
        }
        xml::Node* elem = parent->AddChild(xml::Node::Element(tag));
        EmitType(schema, t->child, elem, depth + 1);
        return;
      }
      case Type::Kind::kAttribute:
        parent->SetAttribute(t->name.name,
                             std::to_string(rng_.UniformInt(0, 99)));
        return;
      case Type::Kind::kSequence:
        for (const auto& c : t->children) {
          EmitType(schema, c, parent, depth + 1);
        }
        return;
      case Type::Kind::kUnion: {
        size_t pick = rng_.Uniform(t->children.size());
        EmitType(schema, t->children[pick], parent, depth + 1);
        return;
      }
      case Type::Kind::kRepetition: {
        uint32_t span = t->max_occurs == xs::kUnbounded
                            ? 3
                            : t->max_occurs - t->min_occurs;
        uint32_t count =
            t->min_occurs + static_cast<uint32_t>(rng_.Uniform(span + 1));
        for (uint32_t i = 0; i < count; ++i) {
          EmitType(schema, t->child, parent, depth + 1);
        }
        return;
      }
      case Type::Kind::kTypeRef:
        EmitType(schema, schema.Get(t->ref_name), parent, depth + 1);
        return;
    }
  }

  Rng rng_;
  int name_counter_ = 0;
};

class FuzzRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzRoundTrip, GeneratedDocumentsValidate) {
  SchemaFuzzer fuzzer(GetParam());
  Schema schema = fuzzer.Generate();
  ASSERT_TRUE(schema.Validate().ok()) << schema.ToString();
  xml::Document doc;
  doc.root = fuzzer.GenerateDocument(schema);
  Status st = xs::ValidateDocument(doc, schema);
  EXPECT_TRUE(st.ok()) << st.ToString() << "\nschema:\n"
                       << schema.ToString() << "\ndoc:\n"
                       << xml::Serialize(doc);
}

TEST_P(FuzzRoundTrip, PrintParseFixpoint) {
  SchemaFuzzer fuzzer(GetParam());
  Schema schema = fuzzer.Generate();
  auto reparsed = xs::ParseSchema(schema.ToString());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString() << "\n"
                             << schema.ToString();
  for (const auto& name : schema.type_names()) {
    EXPECT_TRUE(xs::TypeEquals(schema.Get(name), reparsed->Get(name)))
        << name;
  }
}

TEST_P(FuzzRoundTrip, ShredReconstructIdentityAcrossConfigs) {
  SchemaFuzzer fuzzer(GetParam());
  Schema schema = fuzzer.Generate();
  xml::Document doc;
  doc.root = fuzzer.GenerateDocument(schema);
  std::string original = xml::Serialize(doc);

  const Schema configs[] = {ps::Normalize(schema), ps::AllInlined(schema),
                            ps::AllOutlined(schema)};
  for (const Schema& config : configs) {
    ASSERT_TRUE(ps::CheckPhysical(config).ok()) << config.ToString();
    auto mapping = map::MapSchema(config);
    ASSERT_TRUE(mapping.ok()) << mapping.status().ToString();
    store::Database db(mapping->catalog());
    Status st = store::ShredDocument(doc, mapping.value(), &db);
    ASSERT_TRUE(st.ok()) << st.ToString() << "\nconfig:\n"
                         << config.ToString() << "\ndoc:\n"
                         << original;
    auto rebuilt = store::ReconstructDocument(&db, mapping.value());
    ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().ToString();
    EXPECT_EQ(original, xml::Serialize(rebuilt.value()))
        << "config:\n"
        << config.ToString();
  }
}

TEST_P(FuzzRoundTrip, TransformationsPreserveValidity) {
  SchemaFuzzer fuzzer(GetParam());
  Schema schema = fuzzer.Generate();
  xml::Document doc;
  doc.root = fuzzer.GenerateDocument(schema);
  Schema normalized = ps::Normalize(schema);
  ASSERT_TRUE(xs::ValidateDocument(doc, normalized).ok());

  core::TransformOptions options;
  options.union_distribute = true;
  options.repetition_split = true;
  options.repetition_merge = true;
  for (const auto& t : core::EnumerateTransformations(normalized, options)) {
    auto out = core::ApplyTransformation(normalized, t);
    if (!out.ok()) continue;
    EXPECT_TRUE(xs::ValidateDocument(doc, out.value()).ok())
        << t.Describe(normalized) << "\nbefore:\n"
        << normalized.ToString() << "\nafter:\n"
        << out->ToString() << "\ndoc:\n"
        << xml::Serialize(doc);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzRoundTrip,
                         ::testing::Range<uint64_t>(1, 33));

}  // namespace
}  // namespace legodb
