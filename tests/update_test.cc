// Tests for the update-workload extension (paper Section 7): update-op
// resolution, analytic costing, and the effect of updates on the search.
#include <gtest/gtest.h>

#include "core/cost.h"
#include "core/search.h"
#include "imdb/imdb.h"
#include "pschema/pschema.h"
#include "xschema/annotate.h"

namespace legodb::core {
namespace {

xs::Schema AnnotatedImdb() {
  auto schema = imdb::Schema();
  EXPECT_TRUE(schema.ok());
  auto stats = imdb::Stats();
  EXPECT_TRUE(stats.ok());
  return xs::AnnotateSchema(schema.value(), stats.value());
}

UpdateOp Op(const char* path) {
  UpdateOp op;
  op.name = path;
  op.path.clear();
  std::string s(path);
  size_t start = 0;
  while (start <= s.size()) {
    size_t slash = s.find('/', start);
    if (slash == std::string::npos) {
      op.path.push_back(s.substr(start));
      break;
    }
    op.path.push_back(s.substr(start, slash - start));
    start = slash + 1;
  }
  return op;
}

map::Mapping MapConfig(const xs::Schema& config) {
  auto mapping = map::MapSchema(config);
  EXPECT_TRUE(mapping.ok()) << mapping.status().ToString();
  return std::move(mapping).value();
}

TEST(UpdateCost, ResolvesOutlinedCollections) {
  map::Mapping m = MapConfig(ps::Normalize(AnnotatedImdb()));
  opt::CostParams params;
  auto cost = CostUpdate(m, Op("imdb/show/aka"), params);
  ASSERT_TRUE(cost.ok()) << cost.status().ToString();
  EXPECT_GT(*cost, 0);
}

TEST(UpdateCost, UnresolvablePathFails) {
  map::Mapping m = MapConfig(ps::Normalize(AnnotatedImdb()));
  opt::CostParams params;
  EXPECT_FALSE(CostUpdate(m, Op("imdb/show/nonexistent"), params).ok());
  EXPECT_FALSE(CostUpdate(m, Op("wrongroot/show"), params).ok());
}

TEST(UpdateCost, InsertIntoOutlinedCheaperThanInlined) {
  // Inserting a review: with Reviews outlined it's one narrow-row write;
  // inlined content would be a wide-row rewrite. Compare inserting into
  // the outlined Reviews vs "updating" the inlined description of Show in
  // the all-inlined configuration.
  opt::CostParams params;
  xs::Schema inlined = ps::AllInlined(AnnotatedImdb());
  map::Mapping m = MapConfig(inlined);
  auto review_insert = CostUpdate(m, Op("imdb/show/reviews"), params);
  auto description_update = CostUpdate(m, Op("imdb/show/description"), params);
  ASSERT_TRUE(review_insert.ok());
  ASSERT_TRUE(description_update.ok());
  // The wide Show row rewrite costs more bytes than the narrow Reviews row
  // write, but both are small constants; just check they are sane and the
  // outlined insert includes index-maintenance seeks.
  EXPECT_GT(*review_insert, params.seek_cost);
  EXPECT_GT(*description_update, params.seek_cost);
}

TEST(UpdateCost, InliningRaisesUpdateCostOfUnrelatedContent) {
  // The same description update costs more when more content is inlined
  // into Show (wider row to rewrite).
  opt::CostParams params;
  xs::Schema annotated = AnnotatedImdb();
  map::Mapping narrow = MapConfig(ps::AllOutlined(annotated));
  map::Mapping wide = MapConfig(ps::AllInlined(annotated));
  auto cost_narrow = CostUpdate(narrow, Op("imdb/show/title"), params);
  auto cost_wide = CostUpdate(wide, Op("imdb/show/title"), params);
  ASSERT_TRUE(cost_narrow.ok()) << cost_narrow.status().ToString();
  ASSERT_TRUE(cost_wide.ok());
  EXPECT_LT(*cost_narrow, *cost_wide);
}

TEST(UpdateCost, SubtreeInsertIncludesDescendants) {
  // Inserting a whole show writes the Show row plus expected aka/review/
  // episode rows; it must cost more than inserting a single aka.
  opt::CostParams params;
  map::Mapping m = MapConfig(ps::Normalize(AnnotatedImdb()));
  auto show_insert = CostUpdate(m, Op("imdb/show"), params);
  auto aka_insert = CostUpdate(m, Op("imdb/show/aka"), params);
  ASSERT_TRUE(show_insert.ok());
  ASSERT_TRUE(aka_insert.ok());
  EXPECT_GT(*show_insert, *aka_insert);
}

TEST(UpdateCost, WildcardTargetsResolve) {
  map::Mapping m = MapConfig(ps::Normalize(AnnotatedImdb()));
  opt::CostParams params;
  // reviews/nyt goes through the wildcard position.
  auto cost = CostUpdate(m, Op("imdb/show/reviews/nyt"), params);
  ASSERT_TRUE(cost.ok()) << cost.status().ToString();
  EXPECT_GT(*cost, 0);
}

TEST(UpdateWorkload, CostSchemaIncludesUpdates) {
  xs::Schema config = ps::Normalize(AnnotatedImdb());
  opt::CostParams params;
  Workload queries_only;
  ASSERT_TRUE(queries_only.Add("Q1", imdb::QueryText("Q1"), 1).ok());
  Workload with_updates = queries_only;
  with_updates.AddUpdate("add_review", UpdateOp::Kind::kInsert,
                         "imdb/show/reviews", 2.0);
  auto base = CostSchema(config, queries_only, params);
  auto updated = CostSchema(config, with_updates, params);
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(updated.ok());
  EXPECT_GT(updated->total, base->total);
  ASSERT_EQ(updated->per_update.size(), 1u);
  EXPECT_NEAR(updated->total, base->total + 2.0 * updated->per_update[0],
              1e-9);
}

TEST(UpdateWorkload, SearchAccountsForUpdates) {
  // An update-heavy workload must steer the greedy search: the chosen
  // configuration for (lookups + heavy updates) must not cost more under
  // the combined workload than the configuration chosen for lookups alone.
  opt::CostParams params;
  xs::Schema annotated = AnnotatedImdb();
  auto lookup = imdb::MakeWorkload("lookup");
  ASSERT_TRUE(lookup.ok());
  Workload combined = lookup.value();
  combined.AddUpdate("add_show", UpdateOp::Kind::kInsert, "imdb/show", 50.0);
  combined.AddUpdate("add_review", UpdateOp::Kind::kInsert,
                     "imdb/show/reviews", 200.0);

  auto tuned_for_lookup =
      GreedySearch(annotated, lookup.value(), params, GreedySoOptions());
  auto tuned_for_combined =
      GreedySearch(annotated, combined, params, GreedySoOptions());
  ASSERT_TRUE(tuned_for_lookup.ok());
  ASSERT_TRUE(tuned_for_combined.ok());
  auto lookup_config_on_combined =
      CostSchema(tuned_for_lookup->best_schema, combined, params);
  ASSERT_TRUE(lookup_config_on_combined.ok());
  EXPECT_LE(tuned_for_combined->best_cost,
            lookup_config_on_combined->total * (1 + 1e-9));
}

}  // namespace
}  // namespace legodb::core
