// Unit tests for the execution engine: operator semantics (scans, index
// lookups, hash and index-nested-loop joins, outer joins, NOT NULL and
// equality filters), parameter binding, and work counters.
#include <gtest/gtest.h>

#include "engine/executor.h"
#include "engine/explain_analyze.h"
#include "engine/reference_executor.h"
#include "obs/obs.h"
#include "mapping/mapping.h"
#include "optimizer/optimizer.h"
#include "pschema/pschema.h"
#include "storage/database.h"
#include "storage/shredder.h"
#include "xml/parser.h"
#include "xschema/schema_parser.h"

namespace legodb::engine {
namespace {

using opt::PhysicalPlan;

// Fixture: Parent(2 rows) / Child(3 rows) shredded from a tiny document.
class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto schema = xs::ParseSchema(
        "type P = p[ C* ] "
        "type C = c[ name[ String ], size[ Integer ]? ]");
    ASSERT_TRUE(schema.ok());
    auto mapping = map::MapSchema(ps::Normalize(schema.value()));
    ASSERT_TRUE(mapping.ok()) << mapping.status().ToString();
    mapping_ = std::make_unique<map::Mapping>(std::move(mapping).value());
    db_ = std::make_unique<store::Database>(mapping_->catalog());
    auto doc = xml::ParseDocument(
        "<p>"
        "<c><name>alpha</name><size>10</size></c>"
        "<c><name>beta</name></c>"
        "<c><name>alpha</name><size>30</size></c>"
        "</p>");
    ASSERT_TRUE(doc.ok());
    ASSERT_TRUE(store::ShredDocument(doc.value(), *mapping_, db_.get()).ok());
  }

  // A one-table scan block over C outputting `name`.
  opt::QueryBlock ChildBlock() {
    opt::QueryBlock b;
    b.rels.push_back(opt::BaseRel{"C", "c"});
    b.output.push_back(opt::ColumnRef{0, "name", "name"});
    return b;
  }

  xq::ResultSet Execute(const opt::QueryBlock& block,
                        std::map<std::string, Value> params = {}) {
    opt::Optimizer optimizer(mapping_->catalog());
    auto planned = optimizer.PlanBlock(block);
    EXPECT_TRUE(planned.ok()) << planned.status().ToString();
    Executor exec(db_.get(), std::move(params));
    auto result = exec.ExecuteBlock(block, planned->plan);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    last_stats_ = exec.stats();
    return std::move(result).value();
  }

  std::unique_ptr<map::Mapping> mapping_;
  std::unique_ptr<store::Database> db_;
  ExecStats last_stats_;
};

TEST_F(EngineTest, SeqScanReturnsAllRows) {
  xq::ResultSet r = Execute(ChildBlock());
  EXPECT_EQ(r.rows.size(), 3u);
  EXPECT_EQ(r.labels, (std::vector<std::string>{"name"}));
  EXPECT_GT(last_stats_.tuples_processed, 2);
  EXPECT_GT(last_stats_.bytes_read, 0);
}

TEST_F(EngineTest, EqualityFilter) {
  opt::QueryBlock b = ChildBlock();
  b.filters.push_back(opt::FilterPred{0, "name", xq::CompareOp::kEq, xq::Constant::Str("alpha")});
  xq::ResultSet r = Execute(b);
  EXPECT_EQ(r.rows.size(), 2u);
}

TEST_F(EngineTest, SymbolicParameterBinds) {
  opt::QueryBlock b = ChildBlock();
  b.filters.push_back(
      opt::FilterPred{0, "name", xq::CompareOp::kEq, xq::Constant::Symbol("c1")});
  xq::ResultSet r = Execute(b, {{"c1", Value::Str("beta")}});
  EXPECT_EQ(r.rows.size(), 1u);
}

TEST_F(EngineTest, UnboundParameterErrors) {
  opt::QueryBlock b = ChildBlock();
  b.filters.push_back(opt::FilterPred{0, "name", xq::CompareOp::kEq, xq::Constant::Symbol("c9")});
  opt::Optimizer optimizer(mapping_->catalog());
  auto planned = optimizer.PlanBlock(b);
  ASSERT_TRUE(planned.ok());
  Executor exec(db_.get());
  EXPECT_FALSE(exec.ExecuteBlock(b, planned->plan).ok());
}

TEST_F(EngineTest, NotNullFilter) {
  opt::QueryBlock b = ChildBlock();
  opt::FilterPred f;
  f.rel = 0;
  f.column = "size";
  f.not_null = true;
  b.filters.push_back(f);
  xq::ResultSet r = Execute(b);
  EXPECT_EQ(r.rows.size(), 2u);  // beta's size is NULL
}

TEST_F(EngineTest, IntegerFilterComparesNumerically) {
  opt::QueryBlock b = ChildBlock();
  b.filters.push_back(opt::FilterPred{0, "size", xq::CompareOp::kEq, xq::Constant::Int(30)});
  xq::ResultSet r = Execute(b);
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0], Value::Str("alpha"));
}

opt::QueryBlock JoinBlock(bool outer) {
  opt::QueryBlock b;
  b.rels.push_back(opt::BaseRel{"P", "p"});
  b.rels.push_back(opt::BaseRel{"C", "c"});
  b.joins.push_back(opt::JoinEdge{0, "P_id", 1, "parent_P", outer});
  b.output.push_back(opt::ColumnRef{1, "name", "name"});
  return b;
}

TEST_F(EngineTest, InnerJoinMatchesFks) {
  xq::ResultSet r = Execute(JoinBlock(false));
  EXPECT_EQ(r.rows.size(), 3u);
}

TEST_F(EngineTest, JoinWithFilterOnChild) {
  opt::QueryBlock b = JoinBlock(false);
  b.filters.push_back(opt::FilterPred{1, "size", xq::CompareOp::kEq, xq::Constant::Int(10)});
  xq::ResultSet r = Execute(b);
  EXPECT_EQ(r.rows.size(), 1u);
}

TEST_F(EngineTest, LeftOuterJoinKeepsUnmatchedOuter) {
  // Filter children to none; the parent row must survive with NULL name.
  opt::QueryBlock b = JoinBlock(true);
  b.filters.push_back(
      opt::FilterPred{1, "name", xq::CompareOp::kEq, xq::Constant::Str("nonexistent")});
  xq::ResultSet r = Execute(b);
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_TRUE(r.rows[0][0].is_null());
}

TEST_F(EngineTest, ExplicitIndexNlJoinPlanExecutes) {
  // Hand-build an IndexNLJoin plan: scan P, probe C.parent_P.
  opt::QueryBlock b = JoinBlock(false);
  auto scan = std::make_shared<PhysicalPlan>();
  scan->kind = PhysicalPlan::Kind::kSeqScan;
  scan->rel = 0;
  auto join = std::make_shared<PhysicalPlan>();
  join->kind = PhysicalPlan::Kind::kIndexNLJoin;
  join->left = scan;
  join->rel = 1;
  join->index_column = "parent_P";
  join->left_join_rel = 0;
  join->left_join_column = "P_id";
  join->right_join_rel = 1;
  join->right_join_column = "parent_P";
  auto project = std::make_shared<PhysicalPlan>();
  project->kind = PhysicalPlan::Kind::kProject;
  project->child = join;
  Executor exec(db_.get());
  auto r = exec.ExecuteBlock(b, project);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows.size(), 3u);
  EXPECT_GT(exec.stats().seeks, 0);
}

TEST_F(EngineTest, ExplicitIndexLookupPlanExecutes) {
  opt::QueryBlock b = ChildBlock();
  b.filters.push_back(opt::FilterPred{0, "C_id", xq::CompareOp::kEq, xq::Constant::Int(3)});
  auto lookup = std::make_shared<PhysicalPlan>();
  lookup->kind = PhysicalPlan::Kind::kIndexLookup;
  lookup->rel = 0;
  lookup->index_column = "C_id";
  lookup->filters = b.filters;
  auto project = std::make_shared<PhysicalPlan>();
  project->kind = PhysicalPlan::Kind::kProject;
  project->child = lookup;
  Executor exec(db_.get());
  auto r = exec.ExecuteBlock(b, project);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows.size(), 1u);
}

TEST_F(EngineTest, NullLiteralOutputColumn) {
  opt::QueryBlock b = ChildBlock();
  opt::ColumnRef null_col;
  null_col.rel = -1;
  null_col.label = "missing";
  b.output.push_back(null_col);
  xq::ResultSet r = Execute(b);
  ASSERT_EQ(r.rows.size(), 3u);
  EXPECT_TRUE(r.rows[0][1].is_null());
}

TEST_F(EngineTest, StatsAccumulateAcrossBlocks) {
  Executor exec(db_.get());
  opt::Optimizer optimizer(mapping_->catalog());
  opt::QueryBlock b = ChildBlock();
  auto planned = optimizer.PlanBlock(b);
  ASSERT_TRUE(planned.ok());
  ASSERT_TRUE(exec.ExecuteBlock(b, planned->plan).ok());
  double first = exec.stats().tuples_processed;
  ASSERT_TRUE(exec.ExecuteBlock(b, planned->plan).ok());
  EXPECT_NEAR(exec.stats().tuples_processed, 2 * first, 1e-9);
  exec.ResetStats();
  EXPECT_EQ(exec.stats().tuples_processed, 0);
}

TEST_F(EngineTest, WeightedCostCombinesCounters) {
  ExecStats s;
  s.seeks = 2;
  s.bytes_read = 100;
  s.bytes_out = 50;
  s.tuples_processed = 10;
  EXPECT_DOUBLE_EQ(s.WeightedCost(10, 0.5, 1, 0.1), 20 + 50 + 50 + 1);
}

TEST_F(EngineTest, RejectsPlanWithoutProjection) {
  auto scan = std::make_shared<PhysicalPlan>();
  scan->kind = PhysicalPlan::Kind::kSeqScan;
  scan->rel = 0;
  Executor exec(db_.get());
  EXPECT_FALSE(exec.ExecuteBlock(ChildBlock(), scan).ok());
}

// --- Unknown-column regression --------------------------------------------
// A filter or residual naming a column the catalog doesn't have means the
// translator and catalog drifted apart; the seed executor silently dropped
// every row. Both executors must fail loudly, naming the table and column.

opt::PhysicalPlanPtr ScanProjectPlan(
    int rel, const std::vector<opt::FilterPred>& filters) {
  auto scan = std::make_shared<PhysicalPlan>();
  scan->kind = PhysicalPlan::Kind::kSeqScan;
  scan->rel = rel;
  scan->filters = filters;
  auto project = std::make_shared<PhysicalPlan>();
  project->kind = PhysicalPlan::Kind::kProject;
  project->child = scan;
  return project;
}

TEST_F(EngineTest, UnknownFilterColumnIsAnErrorNotEmptyResult) {
  opt::QueryBlock b = ChildBlock();
  b.filters.push_back(
      opt::FilterPred{0, "bogus", xq::CompareOp::kEq, xq::Constant::Str("x")});
  opt::PhysicalPlanPtr plan = ScanProjectPlan(0, b.filters);

  Executor exec(db_.get());
  auto r = exec.ExecuteBlock(b, plan);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("C.bogus"), std::string::npos)
      << r.status().ToString();

  ReferenceExecutor ref(db_.get());
  auto rr = ref.ExecuteBlock(b, plan);
  ASSERT_FALSE(rr.ok());
  EXPECT_NE(rr.status().ToString().find("C.bogus"), std::string::npos)
      << rr.status().ToString();
}

// Hand-built hash join P (probe) x C (build) on P_id = parent_P.
opt::PhysicalPlanPtr HashJoinPlan(bool left_outer,
                                  std::vector<opt::JoinEdge> residuals,
                                  std::vector<opt::FilterPred> build_filters =
                                      {}) {
  auto probe = std::make_shared<PhysicalPlan>();
  probe->kind = PhysicalPlan::Kind::kSeqScan;
  probe->rel = 0;
  auto build = std::make_shared<PhysicalPlan>();
  build->kind = PhysicalPlan::Kind::kSeqScan;
  build->rel = 1;
  build->filters = std::move(build_filters);
  auto join = std::make_shared<PhysicalPlan>();
  join->kind = PhysicalPlan::Kind::kHashJoin;
  join->left = probe;
  join->right = build;
  join->left_join_rel = 0;
  join->left_join_column = "P_id";
  join->right_join_rel = 1;
  join->right_join_column = "parent_P";
  join->left_outer = left_outer;
  join->residual_joins = std::move(residuals);
  auto project = std::make_shared<PhysicalPlan>();
  project->kind = PhysicalPlan::Kind::kProject;
  project->child = join;
  return project;
}

TEST_F(EngineTest, UnknownResidualColumnIsAnErrorNotEmptyResult) {
  opt::QueryBlock b = JoinBlock(false);
  opt::PhysicalPlanPtr plan =
      HashJoinPlan(false, {opt::JoinEdge{0, "bogus", 1, "parent_P", false}});

  Executor exec(db_.get());
  auto r = exec.ExecuteBlock(b, plan);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("P.bogus"), std::string::npos)
      << r.status().ToString();

  ReferenceExecutor ref(db_.get());
  auto rr = ref.ExecuteBlock(b, plan);
  ASSERT_FALSE(rr.ok());
  EXPECT_NE(rr.status().ToString().find("P.bogus"), std::string::npos)
      << rr.status().ToString();
}

// --- Outer join vs. residual predicates -----------------------------------
// When every hash match fails the residual predicate, the probe row must
// be preserved exactly once (not once per failed match, not dropped).

TEST_F(EngineTest, OuterJoinPreservesRowOnceWhenAllResidualsFail) {
  opt::QueryBlock b = JoinBlock(true);
  // P_id (1) never equals C.size (10, NULL, 30): every one of the three
  // hash matches fails the residual.
  opt::PhysicalPlanPtr plan =
      HashJoinPlan(true, {opt::JoinEdge{0, "P_id", 1, "size", false}});

  for (size_t batch_size : {size_t{1}, size_t{4}, size_t{1024}}) {
    ExecOptions options;
    options.batch_size = batch_size;
    Executor exec(db_.get(), {}, options);
    auto r = exec.ExecuteBlock(b, plan);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ASSERT_EQ(r->rows.size(), 1u) << "batch_size=" << batch_size;
    EXPECT_TRUE(r->rows[0][0].is_null());
  }

  ReferenceExecutor ref(db_.get());
  auto rr = ref.ExecuteBlock(b, plan);
  ASSERT_TRUE(rr.ok()) << rr.status().ToString();
  ASSERT_EQ(rr->rows.size(), 1u);
  EXPECT_TRUE(rr->rows[0][0].is_null());
}

TEST_F(EngineTest, OuterJoinResidualFailureWithMaterializedBuildSide) {
  // A filter on the build side forces the materializing (non-shared-index)
  // hash-join path; the outer row must still survive exactly once.
  opt::QueryBlock b = JoinBlock(true);
  opt::FilterPred not_null;
  not_null.rel = 1;
  not_null.column = "size";
  not_null.not_null = true;
  opt::PhysicalPlanPtr plan =
      HashJoinPlan(true, {opt::JoinEdge{0, "P_id", 1, "size", false}},
                   {not_null});

  Executor exec(db_.get());
  auto r = exec.ExecuteBlock(b, plan);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_TRUE(r->rows[0][0].is_null());
}

TEST_F(EngineTest, OuterJoinStillEmitsMatchesThatPassResiduals) {
  // A residual that compares a column to itself passes on every match:
  // all three children join, no NULL-preserved row appears.
  opt::QueryBlock b = JoinBlock(true);
  opt::PhysicalPlanPtr plan =
      HashJoinPlan(true, {opt::JoinEdge{1, "name", 1, "name", false}});
  Executor exec(db_.get());
  auto r = exec.ExecuteBlock(b, plan);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows.size(), 3u);
  for (const auto& row : r->rows) EXPECT_FALSE(row[0].is_null());
}

TEST_F(EngineTest, ExplainAnalyzeRendersProfiledExecution) {
  opt::QueryBlock block = JoinBlock(false);
  opt::Optimizer optimizer(mapping_->catalog());
  auto planned = optimizer.PlanBlock(block);
  ASSERT_TRUE(planned.ok()) << planned.status().ToString();
  ExecOptions options;
  options.collect_profile = true;
  Executor exec(db_.get(), {}, options);
  auto r = exec.ExecuteBlock(block, planned->plan);
  ASSERT_TRUE(r.ok()) << r.status().ToString();

  const ExecProfile& profile = exec.profile();
  ASSERT_GE(profile.ops.size(), 2u);  // project + at least one input
  for (size_t i = 0; i < profile.ops.size(); ++i) {
    const OpActual& op = profile.ops[i];
    // Every operator answered at least its EOS batch, and exclusive time
    // never exceeds inclusive time.
    EXPECT_GE(op.batches, 1) << op.label;
    EXPECT_LE(SelfMillis(profile, i), op.ms + 1e-9) << op.label;
    EXPECT_GE(SelfMillis(profile, i), 0.0) << op.label;
  }
  // The root is the projection; its inclusive seeks cover the whole tree,
  // so no descendant can exceed it.
  EXPECT_EQ(profile.ops[0].depth, 0);
  for (const OpActual& op : profile.ops) {
    EXPECT_LE(op.seeks, profile.ops[0].seeks) << op.label;
  }

  std::string table = ExplainAnalyzeTable(profile);
  EXPECT_NE(table.find("operator"), std::string::npos);
  EXPECT_NE(table.find("q-err"), std::string::npos);
  EXPECT_NE(table.find("Project"), std::string::npos);

  std::string json = ExplainAnalyzeJson(profile);
  EXPECT_TRUE(obs::ValidateJsonText(json).ok()) << json;
}

TEST_F(EngineTest, ExplainAnalyzeOnEmptyProfileIsValid) {
  ExecProfile empty;
  EXPECT_NE(ExplainAnalyzeTable(empty).find("operator"), std::string::npos);
  EXPECT_EQ(ExplainAnalyzeJson(empty), "[]");
  EXPECT_TRUE(obs::ValidateJsonText(ExplainAnalyzeJson(empty)).ok());
}

}  // namespace
}  // namespace legodb::engine
