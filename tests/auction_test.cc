// Tests for the auction application domain: schema/document validity,
// round trips, engine-vs-DOM equivalence, and workload-driven search —
// the whole system exercised on a second schema shape (deep optional
// nesting, reference attributes, wildcard annotations).
#include <gtest/gtest.h>

#include "auction/auction.h"
#include "core/cost.h"
#include "core/search.h"
#include "engine/executor.h"
#include "mapping/mapping.h"
#include "optimizer/optimizer.h"
#include "pschema/pschema.h"
#include "storage/reconstruct.h"
#include "storage/shredder.h"
#include "translate/translate.h"
#include "xml/writer.h"
#include "xquery/evaluator.h"
#include "xquery/parser.h"
#include "xschema/annotate.h"
#include "xschema/stats_collector.h"
#include "xschema/validator.h"

namespace legodb {
namespace {

xs::Schema AnnotatedAuction(const xml::Document& doc) {
  auto schema = auction::Schema();
  EXPECT_TRUE(schema.ok()) << schema.status().ToString();
  xs::StatsCollector collector;
  collector.AddDocument(doc);
  return xs::AnnotateSchema(schema.value(), collector.Finish());
}

xml::Document SmallDoc(uint64_t seed = 7) {
  auction::AuctionScale scale;
  scale.people = 25;
  scale.open_auctions = 15;
  scale.closed_auctions = 10;
  scale.seed = seed;
  return auction::Generate(scale);
}

TEST(Auction, SchemaParsesAndValidates) {
  auto schema = auction::Schema();
  ASSERT_TRUE(schema.ok()) << schema.status().ToString();
  EXPECT_TRUE(schema->Validate().ok());
  EXPECT_EQ(schema->root_type(), "Site");
}

TEST(Auction, GeneratedDocumentsValidate) {
  auto schema = auction::Schema();
  ASSERT_TRUE(schema.ok());
  for (uint64_t seed : {1u, 5u, 9u}) {
    xml::Document doc = SmallDoc(seed);
    Status st = xs::ValidateDocument(doc, schema.value());
    EXPECT_TRUE(st.ok()) << "seed " << seed << ": " << st.ToString();
  }
}

TEST(Auction, AllQueriesParse) {
  for (const char* name :
       {"A1", "A2", "A3", "A4", "A5", "A6", "A7", "A8"}) {
    ASSERT_NE(auction::QueryText(name), nullptr) << name;
    auto q = xq::ParseQuery(auction::QueryText(name));
    EXPECT_TRUE(q.ok()) << name << ": " << q.status().ToString();
  }
}

TEST(Auction, RoundTripAcrossConfigurations) {
  xml::Document doc = SmallDoc();
  xs::Schema annotated = AnnotatedAuction(doc);
  std::string original = xml::Serialize(doc);
  for (const xs::Schema& config :
       {ps::Normalize(annotated), ps::AllInlined(annotated),
        ps::AllOutlined(annotated)}) {
    auto mapping = map::MapSchema(config);
    ASSERT_TRUE(mapping.ok()) << mapping.status().ToString();
    store::Database db(mapping->catalog());
    ASSERT_TRUE(store::ShredDocument(doc, mapping.value(), &db).ok());
    auto rebuilt = store::ReconstructDocument(&db, mapping.value());
    ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().ToString();
    EXPECT_EQ(original, xml::Serialize(rebuilt.value()));
  }
}

class AuctionEquivalence : public ::testing::TestWithParam<const char*> {};

TEST_P(AuctionEquivalence, EngineMatchesDom) {
  xml::Document doc = SmallDoc();
  xs::Schema annotated = AnnotatedAuction(doc);
  std::map<std::string, Value> params = {{"c1", Value::Str("person3")}};
  if (std::string(GetParam()) == "A3") params["c1"] = Value::Str("open2");
  if (std::string(GetParam()) == "A5") params["c1"] = Value::Str("category2");

  auto query = xq::ParseQuery(auction::QueryText(GetParam()));
  ASSERT_TRUE(query.ok());
  auto expected = xq::EvaluateOnDocument(query.value(), doc, params);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();

  for (const xs::Schema& config :
       {ps::Normalize(annotated), ps::AllInlined(annotated)}) {
    auto mapping = map::MapSchema(config);
    ASSERT_TRUE(mapping.ok());
    store::Database db(mapping->catalog());
    ASSERT_TRUE(store::ShredDocument(doc, mapping.value(), &db).ok());
    auto rq = xlat::TranslateQuery(query.value(), mapping.value());
    ASSERT_TRUE(rq.ok()) << GetParam() << ": " << rq.status().ToString();
    opt::Optimizer optimizer(mapping->catalog());
    auto planned = optimizer.PlanQuery(rq.value());
    ASSERT_TRUE(planned.ok()) << planned.status().ToString();
    std::vector<opt::PhysicalPlanPtr> plans;
    for (const auto& b : planned->blocks) plans.push_back(b.plan);
    engine::Executor exec(&db, params);
    auto actual = exec.ExecuteQuery(rq.value(), plans);
    ASSERT_TRUE(actual.ok()) << actual.status().ToString();
    EXPECT_TRUE(expected->SameRows(actual.value()))
        << GetParam() << "\nexpected:\n"
        << expected->ToString() << "\nactual:\n"
        << actual->ToString() << "\nSQL:\n"
        << rq->ToSql();
  }
}

INSTANTIATE_TEST_SUITE_P(Queries, AuctionEquivalence,
                         ::testing::Values("A1", "A2", "A3", "A4", "A5",
                                           "A8"));

TEST(Auction, SearchFindsWorkloadSpecificDesigns) {
  xml::Document doc = SmallDoc();
  xs::Schema annotated = AnnotatedAuction(doc);
  opt::CostParams params;
  auto bidding = auction::MakeWorkload("bidding");
  auto exporting = auction::MakeWorkload("export");
  ASSERT_TRUE(bidding.ok());
  ASSERT_TRUE(exporting.ok());

  auto for_bidding = core::GreedySearch(annotated, bidding.value(), params,
                                        core::GreedySoOptions());
  auto for_export = core::GreedySearch(annotated, exporting.value(), params,
                                       core::GreedySoOptions());
  ASSERT_TRUE(for_bidding.ok()) << for_bidding.status().ToString();
  ASSERT_TRUE(for_export.ok());
  // Each tuned design must be at least as good as the other design under
  // its own workload.
  auto cross = core::CostSchema(for_export->best_schema, bidding.value(),
                                params);
  ASSERT_TRUE(cross.ok());
  EXPECT_LE(for_bidding->best_cost, cross->total * (1 + 1e-9));
}

TEST(Auction, SearchBeatsAllInlinedForBidding) {
  xml::Document doc = SmallDoc();
  xs::Schema annotated = AnnotatedAuction(doc);
  opt::CostParams params;
  auto bidding = auction::MakeWorkload("bidding");
  ASSERT_TRUE(bidding.ok());
  auto searched = core::GreedySearch(annotated, bidding.value(), params,
                                     core::GreedySoOptions());
  ASSERT_TRUE(searched.ok());
  auto inlined = core::CostSchema(ps::AllInlined(annotated), bidding.value(),
                                  params);
  ASSERT_TRUE(inlined.ok());
  EXPECT_LE(searched->best_cost, inlined->total * (1 + 1e-9));
}

}  // namespace
}  // namespace legodb
