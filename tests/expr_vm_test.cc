// Unit tests for the compiled-predicate bytecode (engine/expr_vm.h):
// comparison semantics against columnar storage shadows, NULL and
// unbound-lane handling, compile-time diagnostics (unknown columns,
// out-of-range relations, unbound parameters), builder-level And/Or
// programs, stack validation, and bytecode determinism.
#include "engine/expr_vm.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "optimizer/plan.h"
#include "storage/database.h"
#include "xquery/ast.h"

namespace legodb::engine {
namespace {

using store::StoredTable;

// One table "T"(T_id int, x int, s string) with a NULL in each column.
StoredTable MakeT() {
  rel::Table meta;
  meta.name = "T";
  meta.key_column = "T_id";
  rel::Column id, x, s;
  id.name = "T_id";
  x.name = "x";
  s.name = "s";
  meta.columns = {id, x, s};
  StoredTable t(meta);
  t.Insert({Value::Int(1), Value::Int(10), Value::Str("alpha")});
  t.Insert({Value::Int(2), Value::Int(20), Value::Str("beta")});
  t.Insert({Value::Int(3), Value::MakeNull(), Value::MakeNull()});
  t.Insert({Value::Int(4), Value::Int(30), Value::Str("alpha")});
  return t;
}

// Second table "U"(U_id int, y int) for residual-join programs.
StoredTable MakeU() {
  rel::Table meta;
  meta.name = "U";
  meta.key_column = "U_id";
  rel::Column id, y;
  id.name = "U_id";
  y.name = "y";
  meta.columns = {id, y};
  StoredTable t(meta);
  t.Insert({Value::Int(1), Value::Int(10)});
  t.Insert({Value::Int(2), Value::MakeNull()});
  t.Insert({Value::Int(3), Value::Int(30)});
  return t;
}

opt::FilterPred IntFilter(const char* column, xq::CompareOp op, int64_t v) {
  opt::FilterPred f;
  f.rel = 0;
  f.column = column;
  f.op = op;
  f.value = xq::Constant::Int(v);
  return f;
}

class ExprVmTest : public ::testing::Test {
 protected:
  ExprVmTest() : t_(MakeT()), u_(MakeU()) {
    env_.tables = {&t_, &u_};
  }

  // Compiles `filters` against relation 0 and evaluates over all rows of T.
  std::vector<uint8_t> EvalT(const std::vector<opt::FilterPred>& filters,
                             const std::map<std::string, Value>& params = {}) {
    auto program = CompileFilters(env_, 0, filters, params);
    EXPECT_TRUE(program.ok()) << program.status().ToString();
    std::vector<int32_t> rows(t_.row_count());
    for (size_t i = 0; i < rows.size(); ++i) rows[i] = static_cast<int32_t>(i);
    std::vector<uint8_t> mask(rows.size(), 0xee);
    program.value().EvalRows(0, rows.data(), rows.size(), mask.data());
    return mask;
  }

  StoredTable t_;
  StoredTable u_;
  ExprEnv env_;
};

TEST_F(ExprVmTest, AllComparisonOpsOverIntColumn) {
  // x = {10, 20, NULL, 30} compared against 20. NULL satisfies no
  // comparison, including "not equal".
  using Op = xq::CompareOp;
  struct Case {
    Op op;
    std::vector<uint8_t> expect;
  };
  const Case cases[] = {
      {Op::kEq, {0, 1, 0, 0}}, {Op::kNe, {1, 0, 0, 1}},
      {Op::kLt, {1, 0, 0, 0}}, {Op::kLe, {1, 1, 0, 0}},
      {Op::kGt, {0, 0, 0, 1}}, {Op::kGe, {0, 1, 0, 1}},
  };
  for (const Case& c : cases) {
    EXPECT_EQ(EvalT({IntFilter("x", c.op, 20)}), c.expect)
        << "op " << xq::CompareOpName(c.op);
  }
}

TEST_F(ExprVmTest, StringEqualityFallsBackToGenericLoop) {
  opt::FilterPred f;
  f.rel = 0;
  f.column = "s";
  f.op = xq::CompareOp::kEq;
  f.value = xq::Constant::Str("alpha");
  EXPECT_EQ(EvalT({f}), (std::vector<uint8_t>{1, 0, 0, 1}));
}

TEST_F(ExprVmTest, NotNullFilter) {
  opt::FilterPred f;
  f.rel = 0;
  f.column = "x";
  f.not_null = true;
  EXPECT_EQ(EvalT({f}), (std::vector<uint8_t>{1, 1, 0, 1}));
}

TEST_F(ExprVmTest, ConjunctionOfFilters) {
  // x >= 20 AND x <= 20 selects only the x=20 row.
  EXPECT_EQ(EvalT({IntFilter("x", xq::CompareOp::kGe, 20),
                   IntFilter("x", xq::CompareOp::kLe, 20)}),
            (std::vector<uint8_t>{0, 1, 0, 0}));
}

TEST_F(ExprVmTest, FiltersForOtherRelationsAreSkipped) {
  // A filter on relation 1 compiles to an empty program for relation 0,
  // which selects every lane.
  opt::FilterPred other = IntFilter("y", xq::CompareOp::kEq, 10);
  other.rel = 1;
  auto program = CompileFilters(env_, 0, {other}, {});
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  EXPECT_TRUE(program.value().empty());
  EXPECT_EQ(program.value().Disassemble(), "(empty)");
  EXPECT_EQ(EvalT({other}), (std::vector<uint8_t>{1, 1, 1, 1}));
}

TEST_F(ExprVmTest, UnboundLaneEvaluatesToNull) {
  // Row index -1 (outer-join miss) fails comparisons and NOT NULL alike.
  auto eq = CompileFilters(env_, 0, {IntFilter("x", xq::CompareOp::kEq, 10)},
                           {});
  ASSERT_TRUE(eq.ok());
  opt::FilterPred nn;
  nn.rel = 0;
  nn.column = "x";
  nn.not_null = true;
  auto notnull = CompileFilters(env_, 0, {nn}, {});
  ASSERT_TRUE(notnull.ok());
  const int32_t rows[] = {0, -1};
  uint8_t mask[2] = {0xee, 0xee};
  eq.value().EvalRows(0, rows, 2, mask);
  EXPECT_EQ(mask[0], 1);
  EXPECT_EQ(mask[1], 0);
  notnull.value().EvalRows(0, rows, 2, mask);
  EXPECT_EQ(mask[0], 1);
  EXPECT_EQ(mask[1], 0);
}

TEST_F(ExprVmTest, UnknownColumnFailsAtCompileTime) {
  auto program =
      CompileFilters(env_, 0, {IntFilter("bogus", xq::CompareOp::kEq, 1)}, {});
  ASSERT_FALSE(program.ok());
  EXPECT_NE(program.status().message().find(
                "filter references unknown column 'T.bogus' "
                "(translator/catalog drift)"),
            std::string::npos)
      << program.status().ToString();
}

TEST_F(ExprVmTest, OutOfRangeRelationFailsAtCompileTime) {
  opt::JoinEdge edge;
  edge.left_rel = 0;
  edge.left_column = "x";
  edge.right_rel = 5;
  edge.right_column = "y";
  auto program = CompileResiduals(env_, {edge});
  ASSERT_FALSE(program.ok());
  EXPECT_NE(
      program.status().message().find("references relation #5 outside the block"),
      std::string::npos)
      << program.status().ToString();
}

TEST_F(ExprVmTest, UnboundParameterFailsAtCompileTime) {
  opt::FilterPred f;
  f.rel = 0;
  f.column = "x";
  f.op = xq::CompareOp::kEq;
  f.value = xq::Constant::Symbol("c9");
  auto program = CompileFilters(env_, 0, {f}, {});
  ASSERT_FALSE(program.ok());
  EXPECT_NE(program.status().message().find("unbound query parameter 'c9'"),
            std::string::npos)
      << program.status().ToString();
}

TEST_F(ExprVmTest, ResidualJoinRequiresBothSidesNonNullAndEqual) {
  opt::JoinEdge edge;
  edge.left_rel = 0;
  edge.left_column = "x";
  edge.right_rel = 1;
  edge.right_column = "y";
  auto program = CompileResiduals(env_, {edge});
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  // Lanes pair T rows {0,1,2,3,0} with U rows {0,2,1,2,-1}:
  //   (10,10)=1  (20,30)=0  (NULL,NULL)=0  (30,30)=1  (10,unbound)=0
  const int32_t trows[] = {0, 1, 2, 3, 0};
  const int32_t urows[] = {0, 2, 1, 2, -1};
  const int32_t* by_rel[] = {trows, urows};
  uint8_t mask[5] = {0xee, 0xee, 0xee, 0xee, 0xee};
  program.value().Eval(LaneView{by_rel, 2, 5}, mask);
  EXPECT_EQ(std::vector<uint8_t>(mask, mask + 5),
            (std::vector<uint8_t>{1, 0, 0, 1, 0}));
}

TEST_F(ExprVmTest, BuilderOrProgram) {
  // x = 10 OR x = 30 — Or is builder-only today (the translator never
  // emits disjunctions), but the bytecode must support it.
  auto xcol = t_.GetOrBuildColumn("x");
  ASSERT_TRUE(xcol.ok());
  ExprProgramBuilder b;
  int slot = b.AddColumn(0, xcol.value(), "T.x");
  int ten = b.AddConst(Value::Int(10));
  int thirty = b.AddConst(Value::Int(30));
  b.LoadCol(slot).LoadConst(ten).Cmp(xq::CompareOp::kEq);
  b.LoadCol(slot).LoadConst(thirty).Cmp(xq::CompareOp::kEq);
  b.Or();
  auto program = std::move(b).Build();
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  const int32_t rows[] = {0, 1, 2, 3};
  uint8_t mask[4];
  program.value().EvalRows(0, rows, 4, mask);
  EXPECT_EQ(std::vector<uint8_t>(mask, mask + 4),
            (std::vector<uint8_t>{1, 0, 0, 1}));
}

TEST_F(ExprVmTest, MalformedProgramsFailAtBuildTime) {
  {
    ExprProgramBuilder b;
    b.Cmp(xq::CompareOp::kEq);  // nothing on the stack
    auto program = std::move(b).Build();
    ASSERT_FALSE(program.ok());
    EXPECT_NE(program.status().message().find("cmp needs two operands"),
              std::string::npos);
  }
  {
    // A bare column load is not a mask.
    auto xcol = t_.GetOrBuildColumn("x");
    ASSERT_TRUE(xcol.ok());
    ExprProgramBuilder b;
    b.LoadCol(b.AddColumn(0, xcol.value(), "T.x"));
    auto program = std::move(b).Build();
    ASSERT_FALSE(program.ok());
    EXPECT_NE(
        program.status().message().find("must leave exactly one mask"),
        std::string::npos);
  }
}

TEST_F(ExprVmTest, BytecodeIsDeterministic) {
  std::vector<opt::FilterPred> filters = {
      IntFilter("x", xq::CompareOp::kGe, 10),
      IntFilter("x", xq::CompareOp::kLe, 30)};
  opt::FilterPred nn;
  nn.rel = 0;
  nn.column = "s";
  nn.not_null = true;
  filters.push_back(nn);
  auto a = CompileFilters(env_, 0, filters, {});
  auto b = CompileFilters(env_, 0, filters, {});
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a.value().Disassemble(), b.value().Disassemble());
  // (load,const,cmp) + (load,const,cmp,and) + (load,test_not_null,and).
  EXPECT_EQ(a.value().num_instructions(), 10u);
  // The rendering names every piece of the predicate.
  std::string dis = a.value().Disassemble();
  EXPECT_NE(dis.find("load_col T.x"), std::string::npos) << dis;
  EXPECT_NE(dis.find("cmp >="), std::string::npos) << dis;
  EXPECT_NE(dis.find("test_not_null"), std::string::npos) << dis;
  EXPECT_NE(dis.find("and"), std::string::npos) << dis;
}

}  // namespace
}  // namespace legodb::engine
