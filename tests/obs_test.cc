// Tests for the observability subsystem: span nesting, counter/histogram
// aggregation, registry snapshots, and the JSON round trip of obs::Report.
#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "obs/obs.h"

namespace legodb::obs {
namespace {

// Burns a little CPU so nested spans get strictly positive durations
// without sleeping.
void Work() {
  volatile double x = 1.0;
  for (int i = 0; i < 1000; ++i) x = x * 1.0000001 + 0.1;
}

TEST(SpanTest, NestedSpansRecordParentAndDepth) {
  Registry registry;
  {
    Span outer("outer", &registry);
    Work();
    {
      Span inner("inner", &registry);
      Work();
      { Span leaf("leaf", &registry); Work(); }
    }
    { Span sibling("sibling", &registry); Work(); }
  }
  Report report = registry.Snapshot();
  ASSERT_EQ(report.spans.size(), 4u);

  const SpanRecord& outer = report.spans[0];
  const SpanRecord& inner = report.spans[1];
  const SpanRecord& leaf = report.spans[2];
  const SpanRecord& sibling = report.spans[3];
  EXPECT_EQ(outer.name, "outer");
  EXPECT_EQ(outer.parent, -1);
  EXPECT_EQ(outer.depth, 0);
  EXPECT_EQ(inner.parent, 0);
  EXPECT_EQ(inner.depth, 1);
  EXPECT_EQ(leaf.parent, 1);
  EXPECT_EQ(leaf.depth, 2);
  EXPECT_EQ(sibling.name, "sibling");
  EXPECT_EQ(sibling.parent, 0);
  EXPECT_EQ(sibling.depth, 1);

  // Timing: children start no earlier than their parent, fit inside it,
  // and every duration is positive.
  for (const SpanRecord& s : report.spans) {
    EXPECT_GT(s.duration_ns, 0) << s.name;
  }
  EXPECT_GE(inner.start_ns, outer.start_ns);
  EXPECT_LE(inner.start_ns + inner.duration_ns,
            outer.start_ns + outer.duration_ns);
  EXPECT_GE(outer.duration_ns,
            inner.duration_ns + sibling.duration_ns);
  EXPECT_GE(inner.duration_ns, leaf.duration_ns);
  // Sibling starts after inner finished.
  EXPECT_GE(sibling.start_ns, inner.start_ns + inner.duration_ns);
}

TEST(SpanTest, NoRegistryIsANoOp) {
  ASSERT_EQ(Current(), nullptr);
  Span span("orphan");  // must not crash or record anywhere
  Count("orphan.counter");
  Observe("orphan.histogram", 1.0);
  ScopedTimer timer("orphan.timer");
}

TEST(SpanTest, AmbientRegistryNestsAndRestores) {
  Registry a, b;
  EXPECT_EQ(Current(), nullptr);
  {
    ScopedRegistry sa(&a);
    EXPECT_EQ(Current(), &a);
    Count("hits");
    {
      ScopedRegistry sb(&b);
      EXPECT_EQ(Current(), &b);
      Count("hits");
      Count("hits");
    }
    EXPECT_EQ(Current(), &a);
  }
  EXPECT_EQ(Current(), nullptr);
  EXPECT_EQ(a.Snapshot().CounterValue("hits"), 1);
  EXPECT_EQ(b.Snapshot().CounterValue("hits"), 2);
}

TEST(SpanTest, SpanCapDropsButStaysBalanced) {
  Registry registry;
  registry.set_max_spans(2);
  {
    ScopedRegistry scoped(&registry);
    Span a("a");
    Span b("b");
    Span c("c");  // dropped
    Span d("d");  // dropped
  }
  Report report = registry.Snapshot();
  EXPECT_EQ(report.spans.size(), 2u);
  EXPECT_EQ(report.dropped_spans, 2);
  // A fresh span after the dropped ones still nests correctly.
  registry.set_max_spans(100);
  {
    ScopedRegistry scoped(&registry);
    Span e("e");
  }
  report = registry.Snapshot();
  ASSERT_EQ(report.spans.size(), 3u);
  EXPECT_EQ(report.spans[2].parent, -1);
}

TEST(CounterTest, ConcurrentAddsAreExact) {
  Registry registry;
  constexpr int kThreads = 4;
  constexpr int kAdds = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      // Each thread installs the registry as its own ambient registry.
      ScopedRegistry scoped(&registry);
      for (int i = 0; i < kAdds; ++i) Count("parallel.adds");
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(registry.Snapshot().CounterValue("parallel.adds"),
            kThreads * kAdds);
}

TEST(HistogramTest, AggregatesCountSumMinMax) {
  Registry registry;
  ScopedRegistry scoped(&registry);
  for (double v : {4.0, 1.0, 9.0, 2.0}) Observe("h", v);
  Report report = registry.Snapshot();
  const Report::HistogramEntry* h = report.FindHistogram("h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 4);
  EXPECT_DOUBLE_EQ(h->sum, 16.0);
  EXPECT_DOUBLE_EQ(h->min, 1.0);
  EXPECT_DOUBLE_EQ(h->max, 9.0);
  EXPECT_EQ(report.FindHistogram("missing"), nullptr);
}

TEST(HistogramTest, ScopedTimerObservesMilliseconds) {
  Registry registry;
  {
    ScopedRegistry scoped(&registry);
    ScopedTimer timer("timed.ms");
    Work();
  }
  Report report = registry.Snapshot();
  const auto* h = report.FindHistogram("timed.ms");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 1);
  EXPECT_GT(h->sum, 0.0);
}

Report MakeSampleReport() {
  Registry registry;
  ScopedRegistry scoped(&registry);
  {
    Span outer("phase \"one\"");  // quote exercises JSON escaping
    Span inner("phase.inner");
    Count("candidates", 42);
    Count("cache_hits", 7);
    SetGauge("calibration.spearman", 0.75);
    SetGauge("calibration.spearman", 0.875);  // last value wins
    Observe("plan_ms", 0.125);
    Observe("plan_ms", 3.5);
    Observe("memo_size", 17);
  }
  return registry.Snapshot();
}

TEST(ReportTest, JsonRoundTrip) {
  Report report = MakeSampleReport();
  auto parsed = ReportFromJson(report.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();

  ASSERT_EQ(parsed->spans.size(), report.spans.size());
  for (size_t i = 0; i < report.spans.size(); ++i) {
    EXPECT_EQ(parsed->spans[i].name, report.spans[i].name);
    EXPECT_EQ(parsed->spans[i].start_ns, report.spans[i].start_ns);
    EXPECT_EQ(parsed->spans[i].duration_ns, report.spans[i].duration_ns);
    EXPECT_EQ(parsed->spans[i].parent, report.spans[i].parent);
    EXPECT_EQ(parsed->spans[i].depth, report.spans[i].depth);
  }
  ASSERT_EQ(parsed->counters.size(), report.counters.size());
  for (size_t i = 0; i < report.counters.size(); ++i) {
    EXPECT_EQ(parsed->counters[i].name, report.counters[i].name);
    EXPECT_EQ(parsed->counters[i].value, report.counters[i].value);
  }
  ASSERT_EQ(parsed->gauges.size(), report.gauges.size());
  for (size_t i = 0; i < report.gauges.size(); ++i) {
    EXPECT_EQ(parsed->gauges[i].name, report.gauges[i].name);
    EXPECT_DOUBLE_EQ(parsed->gauges[i].value, report.gauges[i].value);
  }
  ASSERT_EQ(parsed->histograms.size(), report.histograms.size());
  for (size_t i = 0; i < report.histograms.size(); ++i) {
    EXPECT_EQ(parsed->histograms[i].name, report.histograms[i].name);
    EXPECT_EQ(parsed->histograms[i].count, report.histograms[i].count);
    EXPECT_DOUBLE_EQ(parsed->histograms[i].sum, report.histograms[i].sum);
    EXPECT_DOUBLE_EQ(parsed->histograms[i].min, report.histograms[i].min);
    EXPECT_DOUBLE_EQ(parsed->histograms[i].max, report.histograms[i].max);
  }
  EXPECT_EQ(parsed->dropped_spans, report.dropped_spans);
  // A second encode of the parse is byte-identical (fixpoint).
  EXPECT_EQ(parsed->ToJson(), report.ToJson());
}

TEST(ReportTest, EmptyReportRoundTrips) {
  Report empty;
  auto parsed = ReportFromJson(empty.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed->spans.empty());
  EXPECT_TRUE(parsed->counters.empty());
  EXPECT_TRUE(parsed->gauges.empty());
  EXPECT_TRUE(parsed->histograms.empty());
}

TEST(ReportTest, RejectsMalformedJson) {
  EXPECT_FALSE(ReportFromJson("").ok());
  EXPECT_FALSE(ReportFromJson("not json").ok());
  EXPECT_FALSE(ReportFromJson("{\"spans\": [").ok());
  EXPECT_FALSE(ReportFromJson("{\"unexpected\": 1}").ok());
  EXPECT_FALSE(ReportFromJson("{} trailing").ok());
}

TEST(ReportTest, LookupHelpersAndTables) {
  Report report = MakeSampleReport();
  EXPECT_EQ(report.CounterValue("candidates"), 42);
  EXPECT_EQ(report.CounterValue("cache_hits"), 7);
  EXPECT_EQ(report.CounterValue("nonexistent"), 0);
  EXPECT_DOUBLE_EQ(report.GaugeValue("calibration.spearman"), 0.875);
  EXPECT_DOUBLE_EQ(report.GaugeValue("nonexistent"), 0.0);
  EXPECT_GT(report.SpanTotalMillis("phase \"one\""), 0.0);
  EXPECT_DOUBLE_EQ(report.SpanTotalMillis("nonexistent"), 0.0);

  std::string spans = report.SpanTable();
  EXPECT_NE(spans.find("phase.inner"), std::string::npos);
  std::string metrics = report.MetricsTable();
  EXPECT_NE(metrics.find("candidates"), std::string::npos);
  EXPECT_NE(metrics.find("calibration.spearman"), std::string::npos);
  EXPECT_NE(metrics.find("plan_ms"), std::string::npos);
}

TEST(ReportTest, SnapshotClosesOpenSpans) {
  Registry registry;
  Span open("still.open", &registry);
  Work();
  Report report = registry.Snapshot();
  ASSERT_EQ(report.spans.size(), 1u);
  EXPECT_GT(report.spans[0].duration_ns, 0);
}

}  // namespace
}  // namespace legodb::obs
