// Tests for the observability subsystem: span nesting, counter/histogram
// aggregation, registry snapshots, and the JSON round trip of obs::Report.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <thread>
#include <utility>
#include <vector>

#include "obs/obs.h"

namespace legodb::obs {
namespace {

// Burns a little CPU so nested spans get strictly positive durations
// without sleeping.
void Work() {
  volatile double x = 1.0;
  for (int i = 0; i < 1000; ++i) x = x * 1.0000001 + 0.1;
}

TEST(SpanTest, NestedSpansRecordParentAndDepth) {
  Registry registry;
  {
    Span outer("outer", &registry);
    Work();
    {
      Span inner("inner", &registry);
      Work();
      { Span leaf("leaf", &registry); Work(); }
    }
    { Span sibling("sibling", &registry); Work(); }
  }
  Report report = registry.Snapshot();
  ASSERT_EQ(report.spans.size(), 4u);

  const SpanRecord& outer = report.spans[0];
  const SpanRecord& inner = report.spans[1];
  const SpanRecord& leaf = report.spans[2];
  const SpanRecord& sibling = report.spans[3];
  EXPECT_EQ(outer.name, "outer");
  EXPECT_EQ(outer.parent, -1);
  EXPECT_EQ(outer.depth, 0);
  EXPECT_EQ(inner.parent, 0);
  EXPECT_EQ(inner.depth, 1);
  EXPECT_EQ(leaf.parent, 1);
  EXPECT_EQ(leaf.depth, 2);
  EXPECT_EQ(sibling.name, "sibling");
  EXPECT_EQ(sibling.parent, 0);
  EXPECT_EQ(sibling.depth, 1);

  // Timing: children start no earlier than their parent, fit inside it,
  // and every duration is positive.
  for (const SpanRecord& s : report.spans) {
    EXPECT_GT(s.duration_ns, 0) << s.name;
  }
  EXPECT_GE(inner.start_ns, outer.start_ns);
  EXPECT_LE(inner.start_ns + inner.duration_ns,
            outer.start_ns + outer.duration_ns);
  EXPECT_GE(outer.duration_ns,
            inner.duration_ns + sibling.duration_ns);
  EXPECT_GE(inner.duration_ns, leaf.duration_ns);
  // Sibling starts after inner finished.
  EXPECT_GE(sibling.start_ns, inner.start_ns + inner.duration_ns);
}

TEST(SpanTest, NoRegistryIsANoOp) {
  ASSERT_EQ(Current(), nullptr);
  Span span("orphan");  // must not crash or record anywhere
  Count("orphan.counter");
  Observe("orphan.histogram", 1.0);
  ScopedTimer timer("orphan.timer");
}

TEST(SpanTest, AmbientRegistryNestsAndRestores) {
  Registry a, b;
  EXPECT_EQ(Current(), nullptr);
  {
    ScopedRegistry sa(&a);
    EXPECT_EQ(Current(), &a);
    Count("hits");
    {
      ScopedRegistry sb(&b);
      EXPECT_EQ(Current(), &b);
      Count("hits");
      Count("hits");
    }
    EXPECT_EQ(Current(), &a);
  }
  EXPECT_EQ(Current(), nullptr);
  EXPECT_EQ(a.Snapshot().CounterValue("hits"), 1);
  EXPECT_EQ(b.Snapshot().CounterValue("hits"), 2);
}

TEST(SpanTest, SpanCapDropsButStaysBalanced) {
  Registry registry;
  registry.set_max_spans(2);
  {
    ScopedRegistry scoped(&registry);
    Span a("a");
    Span b("b");
    Span c("c");  // dropped
    Span d("d");  // dropped
  }
  Report report = registry.Snapshot();
  EXPECT_EQ(report.spans.size(), 2u);
  EXPECT_EQ(report.dropped_spans, 2);
  // A fresh span after the dropped ones still nests correctly.
  registry.set_max_spans(100);
  {
    ScopedRegistry scoped(&registry);
    Span e("e");
  }
  report = registry.Snapshot();
  ASSERT_EQ(report.spans.size(), 3u);
  EXPECT_EQ(report.spans[2].parent, -1);
}

TEST(CounterTest, ConcurrentAddsAreExact) {
  Registry registry;
  constexpr int kThreads = 4;
  constexpr int kAdds = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      // Each thread installs the registry as its own ambient registry.
      ScopedRegistry scoped(&registry);
      for (int i = 0; i < kAdds; ++i) Count("parallel.adds");
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(registry.Snapshot().CounterValue("parallel.adds"),
            kThreads * kAdds);
}

TEST(HistogramTest, AggregatesCountSumMinMax) {
  Registry registry;
  ScopedRegistry scoped(&registry);
  for (double v : {4.0, 1.0, 9.0, 2.0}) Observe("h", v);
  Report report = registry.Snapshot();
  const Report::HistogramEntry* h = report.FindHistogram("h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 4);
  EXPECT_DOUBLE_EQ(h->sum, 16.0);
  EXPECT_DOUBLE_EQ(h->min, 1.0);
  EXPECT_DOUBLE_EQ(h->max, 9.0);
  EXPECT_EQ(report.FindHistogram("missing"), nullptr);
}

TEST(HistogramTest, ScopedTimerObservesMilliseconds) {
  Registry registry;
  {
    ScopedRegistry scoped(&registry);
    ScopedTimer timer("timed.ms");
    Work();
  }
  Report report = registry.Snapshot();
  const auto* h = report.FindHistogram("timed.ms");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 1);
  EXPECT_GT(h->sum, 0.0);
}

Report MakeSampleReport() {
  Registry registry;
  ScopedRegistry scoped(&registry);
  {
    Span outer("phase \"one\"");  // quote exercises JSON escaping
    Span inner("phase.inner");
    Count("candidates", 42);
    Count("cache_hits", 7);
    SetGauge("calibration.spearman", 0.75);
    SetGauge("calibration.spearman", 0.875);  // last value wins
    Observe("plan_ms", 0.125);
    Observe("plan_ms", 3.5);
    Observe("memo_size", 17);
  }
  return registry.Snapshot();
}

TEST(ReportTest, JsonRoundTrip) {
  Report report = MakeSampleReport();
  auto parsed = ReportFromJson(report.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();

  ASSERT_EQ(parsed->spans.size(), report.spans.size());
  for (size_t i = 0; i < report.spans.size(); ++i) {
    EXPECT_EQ(parsed->spans[i].name, report.spans[i].name);
    EXPECT_EQ(parsed->spans[i].start_ns, report.spans[i].start_ns);
    EXPECT_EQ(parsed->spans[i].duration_ns, report.spans[i].duration_ns);
    EXPECT_EQ(parsed->spans[i].parent, report.spans[i].parent);
    EXPECT_EQ(parsed->spans[i].depth, report.spans[i].depth);
  }
  ASSERT_EQ(parsed->counters.size(), report.counters.size());
  for (size_t i = 0; i < report.counters.size(); ++i) {
    EXPECT_EQ(parsed->counters[i].name, report.counters[i].name);
    EXPECT_EQ(parsed->counters[i].value, report.counters[i].value);
  }
  ASSERT_EQ(parsed->gauges.size(), report.gauges.size());
  for (size_t i = 0; i < report.gauges.size(); ++i) {
    EXPECT_EQ(parsed->gauges[i].name, report.gauges[i].name);
    EXPECT_DOUBLE_EQ(parsed->gauges[i].value, report.gauges[i].value);
  }
  ASSERT_EQ(parsed->histograms.size(), report.histograms.size());
  for (size_t i = 0; i < report.histograms.size(); ++i) {
    EXPECT_EQ(parsed->histograms[i].name, report.histograms[i].name);
    EXPECT_EQ(parsed->histograms[i].count, report.histograms[i].count);
    EXPECT_DOUBLE_EQ(parsed->histograms[i].sum, report.histograms[i].sum);
    EXPECT_DOUBLE_EQ(parsed->histograms[i].min, report.histograms[i].min);
    EXPECT_DOUBLE_EQ(parsed->histograms[i].max, report.histograms[i].max);
  }
  EXPECT_EQ(parsed->dropped_spans, report.dropped_spans);
  // A second encode of the parse is byte-identical (fixpoint).
  EXPECT_EQ(parsed->ToJson(), report.ToJson());
}

TEST(ReportTest, EmptyReportRoundTrips) {
  Report empty;
  auto parsed = ReportFromJson(empty.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed->spans.empty());
  EXPECT_TRUE(parsed->counters.empty());
  EXPECT_TRUE(parsed->gauges.empty());
  EXPECT_TRUE(parsed->histograms.empty());
}

TEST(ReportTest, RejectsMalformedJson) {
  EXPECT_FALSE(ReportFromJson("").ok());
  EXPECT_FALSE(ReportFromJson("not json").ok());
  EXPECT_FALSE(ReportFromJson("{\"spans\": [").ok());
  EXPECT_FALSE(ReportFromJson("{\"unexpected\": 1}").ok());
  EXPECT_FALSE(ReportFromJson("{} trailing").ok());
}

TEST(ReportTest, LookupHelpersAndTables) {
  Report report = MakeSampleReport();
  EXPECT_EQ(report.CounterValue("candidates"), 42);
  EXPECT_EQ(report.CounterValue("cache_hits"), 7);
  EXPECT_EQ(report.CounterValue("nonexistent"), 0);
  EXPECT_DOUBLE_EQ(report.GaugeValue("calibration.spearman"), 0.875);
  EXPECT_DOUBLE_EQ(report.GaugeValue("nonexistent"), 0.0);
  EXPECT_GT(report.SpanTotalMillis("phase \"one\""), 0.0);
  EXPECT_DOUBLE_EQ(report.SpanTotalMillis("nonexistent"), 0.0);

  std::string spans = report.SpanTable();
  EXPECT_NE(spans.find("phase.inner"), std::string::npos);
  std::string metrics = report.MetricsTable();
  EXPECT_NE(metrics.find("candidates"), std::string::npos);
  EXPECT_NE(metrics.find("calibration.spearman"), std::string::npos);
  EXPECT_NE(metrics.find("plan_ms"), std::string::npos);
}

TEST(ReportTest, SnapshotClosesOpenSpans) {
  Registry registry;
  Span open("still.open", &registry);
  Work();
  Report report = registry.Snapshot();
  ASSERT_EQ(report.spans.size(), 1u);
  EXPECT_GT(report.spans[0].duration_ns, 0);
}

// --- Quantile buckets ------------------------------------------------------

TEST(HistogramBucketTest, IndexAndBoundsAgree) {
  // Buckets are half-open on the left: bucket b covers (lower(b),
  // upper(b)]. Interior values must land in a regular bucket whose bounds
  // bracket them.
  for (double v : {2.5e-7, 0.0015, 0.999, 1.5, 42.0, 1.1e4, 9.9e8}) {
    int b = HistogramBucketIndex(v);
    EXPECT_GT(b, 0) << v;
    EXPECT_LT(b, kHistogramNumBuckets - 1) << v;
    EXPECT_LT(HistogramBucketLowerBound(b), v) << v;
    EXPECT_GE(HistogramBucketUpperBound(b), v) << v;
  }
  // A value exactly on a boundary belongs to the bucket it closes.
  for (int b : {1, 8, 72, kHistogramNumBuckets - 2}) {
    EXPECT_EQ(HistogramBucketIndex(HistogramBucketUpperBound(b)), b);
  }
  // Underflow bucket: zero, negatives, NaN, and anything at or below the
  // smallest bound.
  EXPECT_EQ(HistogramBucketIndex(0.0), 0);
  EXPECT_EQ(HistogramBucketIndex(-5.0), 0);
  EXPECT_EQ(HistogramBucketIndex(1e-12), 0);
  EXPECT_EQ(HistogramBucketIndex(std::nan("")), 0);
  // Overflow bucket: anything above the largest bound.
  EXPECT_EQ(HistogramBucketIndex(2e9), kHistogramNumBuckets - 1);
  EXPECT_EQ(HistogramBucketIndex(1e300), kHistogramNumBuckets - 1);
  EXPECT_EQ(HistogramBucketIndex(std::numeric_limits<double>::infinity()),
            kHistogramNumBuckets - 1);
  EXPECT_TRUE(std::isinf(
      HistogramBucketUpperBound(kHistogramNumBuckets - 1)));
  // Buckets tile the range: adjacent bounds coincide and grow strictly.
  for (int b = 1; b < kHistogramNumBuckets - 1; ++b) {
    EXPECT_DOUBLE_EQ(HistogramBucketUpperBound(b),
                     HistogramBucketLowerBound(b + 1));
    EXPECT_LT(HistogramBucketLowerBound(b), HistogramBucketUpperBound(b));
  }
}

TEST(HistogramBucketTest, QuantilesWithinOneBucket) {
  Registry registry;
  ScopedRegistry scoped(&registry);
  // 1..1000 uniformly: exact p-quantile (rank ceil(p*n)) is just the rank.
  for (int i = 1; i <= 1000; ++i) Observe("latency", static_cast<double>(i));
  Report report = registry.Snapshot();
  const Report::HistogramEntry* h = report.FindHistogram("latency");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 1000);
  // One log bucket spans a 10^(1/8) ~ 1.334x ratio, so the estimate must be
  // within that factor of the exact order statistic.
  for (auto [q, exact] : {std::pair<double, double>{0.5, 500.0},
                          {0.95, 950.0},
                          {0.99, 990.0}}) {
    double est = h->Quantile(q);
    double ratio = est > exact ? est / exact : exact / est;
    EXPECT_LE(ratio, 1.34) << "q=" << q << " est=" << est;
  }
  // Extremes are exact: clamped to the observed min/max.
  EXPECT_DOUBLE_EQ(h->Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h->Quantile(1.0), 1000.0);
  // Monotone in q.
  double prev = 0;
  for (double q : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    double v = h->Quantile(q);
    EXPECT_GE(v, prev) << "q=" << q;
    prev = v;
  }
}

TEST(HistogramBucketTest, SingleObservationIsExactAndEmptyIsZero) {
  Registry registry;
  ScopedRegistry scoped(&registry);
  Observe("one", 7.3);
  Report report = registry.Snapshot();
  const Report::HistogramEntry* h = report.FindHistogram("one");
  ASSERT_NE(h, nullptr);
  for (double q : {0.0, 0.5, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(h->Quantile(q), 7.3) << q;
  }
  Report::HistogramEntry empty;
  EXPECT_DOUBLE_EQ(empty.Quantile(0.5), 0.0);
}

TEST(HistogramBucketTest, LegacyEntryWithoutBucketsInterpolates) {
  // Reports parsed from pre-bucket JSON have no bucket data; Quantile falls
  // back to linear interpolation between min and max.
  Report::HistogramEntry h;
  h.count = 10;
  h.min = 0.0;
  h.max = 100.0;
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 50.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 100.0);
}

TEST(ReportTest, JsonRoundTripPreservesBuckets) {
  Registry registry;
  {
    ScopedRegistry scoped(&registry);
    for (int i = 1; i <= 100; ++i) Observe("ms", 0.1 * i);
  }
  Report report = registry.Snapshot();
  std::string json = report.ToJson();
  auto parsed = ReportFromJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const Report::HistogramEntry* a = report.FindHistogram("ms");
  const Report::HistogramEntry* b = parsed->FindHistogram("ms");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  ASSERT_EQ(a->buckets.size(), b->buckets.size());
  for (size_t i = 0; i < a->buckets.size(); ++i) {
    EXPECT_EQ(a->buckets[i].bucket, b->buckets[i].bucket);
    EXPECT_EQ(a->buckets[i].count, b->buckets[i].count);
  }
  for (double q : {0.5, 0.95, 0.99}) {
    EXPECT_DOUBLE_EQ(a->Quantile(q), b->Quantile(q));
  }
  // Fixpoint: re-encoding the parse reproduces the bytes.
  EXPECT_EQ(parsed->ToJson(), json);
}

// --- Non-finite values in JSON (satellite: NaN Spearman gauge) -------------

TEST(ReportTest, NonFiniteGaugesRoundTrip) {
  Registry registry;
  {
    ScopedRegistry scoped(&registry);
    SetGauge("spearman", std::nan(""));
    SetGauge("pos", std::numeric_limits<double>::infinity());
    SetGauge("neg", -std::numeric_limits<double>::infinity());
  }
  Report report = registry.Snapshot();
  std::string json = report.ToJson();
  ASSERT_TRUE(ValidateJsonText(json).ok()) << json;
  auto parsed = ReportFromJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(std::isnan(parsed->GaugeValue("spearman")));
  EXPECT_EQ(parsed->GaugeValue("pos"),
            std::numeric_limits<double>::infinity());
  EXPECT_EQ(parsed->GaugeValue("neg"),
            -std::numeric_limits<double>::infinity());
  EXPECT_EQ(parsed->ToJson(), json);
}

TEST(ReportTest, NullGaugeParsesAsNaN) {
  auto parsed = ReportFromJson(
      "{\"spans\": [], \"counters\": {}, \"gauges\": {\"rho\": null}, "
      "\"histograms\": {}, \"dropped_spans\": 0}");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(std::isnan(parsed->GaugeValue("rho")));
}

// --- Open spans (satellite) ------------------------------------------------

TEST(ReportTest, SpanTableRendersOpenSpans) {
  Report report;
  report.spans.push_back({"finished", 0, 5'000'000, -1, 0, 0});
  report.spans.push_back({"still.going", 1'000'000, -1, 0, 1, 0});
  std::string table = report.SpanTable();
  EXPECT_NE(table.find("open"), std::string::npos) << table;
  EXPECT_EQ(table.find("-0.0"), std::string::npos) << table;
}

// --- Chrome trace ----------------------------------------------------------

TEST(ChromeTraceTest, GoldenOutput) {
  Report report;
  report.spans.push_back({"outer \"q\"", 1'000, 10'000, -1, 0, 0});
  report.spans.push_back({"inner", 2'000, 3'000, 0, 1, 0});
  report.spans.push_back({"worker", 4'000, -1, -1, 0, 1});  // open, thread 1
  std::string trace = report.ToChromeTrace();
  EXPECT_EQ(trace,
            "{\"traceEvents\": [\n"
            "  {\"ph\": \"M\", \"pid\": 0, \"tid\": 0, \"name\": "
            "\"process_name\", \"args\": {\"name\": \"legodb\"}},\n"
            "  {\"ph\": \"M\", \"pid\": 0, \"tid\": 0, \"name\": "
            "\"thread_name\", \"args\": {\"name\": \"thread 0\"}},\n"
            "  {\"ph\": \"M\", \"pid\": 0, \"tid\": 1, \"name\": "
            "\"thread_name\", \"args\": {\"name\": \"thread 1\"}},\n"
            "  {\"ph\": \"X\", \"pid\": 0, \"tid\": 0, \"name\": "
            "\"outer \\\"q\\\"\", \"cat\": \"span\", \"ts\": 1, \"dur\": 10, "
            "\"args\": {\"depth\": 0}},\n"
            "  {\"ph\": \"X\", \"pid\": 0, \"tid\": 0, \"name\": \"inner\", "
            "\"cat\": \"span\", \"ts\": 2, \"dur\": 3, "
            "\"args\": {\"depth\": 1}},\n"
            "  {\"ph\": \"X\", \"pid\": 0, \"tid\": 1, \"name\": \"worker\", "
            "\"cat\": \"span\", \"ts\": 4, \"dur\": 7, "
            "\"args\": {\"depth\": 0}}\n"
            "], \"displayTimeUnit\": \"ms\"}\n");
  EXPECT_TRUE(ValidateJsonText(trace).ok());
}

TEST(ChromeTraceTest, LiveSnapshotNestsSlices) {
  Registry registry;
  {
    Span outer("outer", &registry);
    Work();
    Span inner("inner", &registry);
    Work();
  }
  Report report = registry.Snapshot();
  std::string trace = report.ToChromeTrace();
  ASSERT_TRUE(ValidateJsonText(trace).ok()) << trace;
  // The inner slice must sit inside the outer one on the timeline.
  ASSERT_EQ(report.spans.size(), 2u);
  const SpanRecord& outer = report.spans[0];
  const SpanRecord& inner = report.spans[1];
  EXPECT_GE(inner.start_ns, outer.start_ns);
  EXPECT_LE(inner.start_ns + inner.duration_ns,
            outer.start_ns + outer.duration_ns);
}

TEST(ChromeTraceTest, ThreadsGetDistinctTrackIds) {
  Registry registry;
  {
    ScopedRegistry scoped(&registry);
    Span main_span("main.work");
    std::thread worker([&registry] {
      ScopedRegistry worker_scope(&registry);
      Span span("worker.work");
      Work();
    });
    worker.join();
  }
  Report report = registry.Snapshot();
  ASSERT_EQ(report.spans.size(), 2u);
  EXPECT_NE(report.spans[0].tid, report.spans[1].tid);
}

// --- Meta + blobs ----------------------------------------------------------

TEST(ReportTest, MetaAndBlobsRoundTrip) {
  Report report;
  report.SetMeta("workload", "calibration");
  report.SetMeta("git", "abc123-dirty");
  report.SetMeta("workload", "fig10");  // last write wins
  report.AddBlob("explain.Q1", "[{\"op\": \"SeqScan\", \"rows\": 3}]");
  EXPECT_EQ(report.MetaValue("workload"), "fig10");
  EXPECT_EQ(report.MetaValue("missing"), "");

  std::string json = report.ToJson();
  auto parsed = ReportFromJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->MetaValue("workload"), "fig10");
  EXPECT_EQ(parsed->MetaValue("git"), "abc123-dirty");
  const std::string* blob = parsed->FindBlob("explain.Q1");
  ASSERT_NE(blob, nullptr);
  EXPECT_EQ(*blob, "[{\"op\": \"SeqScan\", \"rows\": 3}]");
  EXPECT_EQ(parsed->FindBlob("missing"), nullptr);
  EXPECT_EQ(parsed->ToJson(), json);
}

TEST(ReportTest, InvalidBlobIsDroppedNotEmitted) {
  Report report;
  report.AddBlob("bad", "{not json");
  std::string json = report.ToJson();
  EXPECT_TRUE(ValidateJsonText(json).ok()) << json;
  auto parsed = ReportFromJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const std::string* blob = parsed->FindBlob("bad");
  ASSERT_NE(blob, nullptr);
  EXPECT_NE(blob->find("invalid blob"), std::string::npos);
}

TEST(ValidateJsonTextTest, AcceptsValuesRejectsGarbage) {
  EXPECT_TRUE(ValidateJsonText("{\"a\": [1, 2.5, null, true, \"x\"]}").ok());
  EXPECT_TRUE(ValidateJsonText("[]").ok());
  EXPECT_FALSE(ValidateJsonText("{\"a\": }").ok());
  EXPECT_FALSE(ValidateJsonText("{} trailing").ok());
  EXPECT_FALSE(ValidateJsonText("").ok());
}

}  // namespace
}  // namespace legodb::obs
