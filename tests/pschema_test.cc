// Unit tests for the p-schema module: stratification checking,
// normalization, initial configurations, node addressing, and the
// inline/outline primitives.
#include <gtest/gtest.h>

#include "imdb/imdb.h"
#include "pschema/pschema.h"
#include "xml/parser.h"
#include "xschema/schema_parser.h"
#include "xschema/validator.h"

namespace legodb::ps {
namespace {

using xs::ParseSchema;
using xs::Schema;
using xs::Type;
using xs::TypePtr;

Schema S(const char* text) {
  auto schema = ParseSchema(text);
  EXPECT_TRUE(schema.ok()) << schema.status().ToString();
  return std::move(schema).value();
}

// ---- CheckPhysical ----

TEST(CheckPhysical, AcceptsStratifiedSchema) {
  Schema s = S("type A = a[ @k[ String ], x[ Integer ], B*, (C | D)? ] "
               "type B = b[ String ] type C = c[ String ] "
               "type D = d[ Integer ]");
  EXPECT_TRUE(CheckPhysical(s).ok());
}

TEST(CheckPhysical, RejectsRepetitionOverElements) {
  Schema s = S("type A = a[ b[ String ]* ]");
  EXPECT_FALSE(CheckPhysical(s).ok());
}

TEST(CheckPhysical, RejectsUnionOverElements) {
  Schema s = S("type A = a[ (b[ String ] | c[ String ]) ]");
  EXPECT_FALSE(CheckPhysical(s).ok());
}

TEST(CheckPhysical, AcceptsOptionalElementContent) {
  Schema s = S("type A = a[ (b[ String ], c[ Integer ])? ]");
  EXPECT_TRUE(CheckPhysical(s).ok());
}

TEST(CheckPhysical, RejectsImdbBeforeNormalization) {
  auto schema = imdb::Schema();
  ASSERT_TRUE(schema.ok());
  EXPECT_FALSE(CheckPhysical(schema.value()).ok());
}

// ---- Normalize ----

TEST(Normalize, OutlinesMultiValuedElements) {
  Schema s = S("type A = a[ b[ String ]* ]");
  Schema n = Normalize(s);
  EXPECT_TRUE(CheckPhysical(n).ok());
  EXPECT_TRUE(n.Has("B"));  // outlined type named after the element
  TypePtr body = n.Get("A");
  EXPECT_EQ(body->child->kind, Type::Kind::kRepetition);
  EXPECT_EQ(body->child->child->ref_name, "B");
}

TEST(Normalize, OutlinesUnionAlternatives) {
  Schema s = S("type A = a[ (b[ String ] | c[ String ]) ]");
  Schema n = Normalize(s);
  EXPECT_TRUE(CheckPhysical(n).ok());
  EXPECT_TRUE(n.Has("B"));
  EXPECT_TRUE(n.Has("C"));
}

TEST(Normalize, IsIdempotent) {
  Schema n1 = Normalize(*imdb::Schema());
  Schema n2 = Normalize(n1);
  EXPECT_EQ(n1.type_names(), n2.type_names());
  for (const auto& name : n1.type_names()) {
    EXPECT_TRUE(xs::TypeEquals(n1.Get(name), n2.Get(name))) << name;
  }
}

TEST(Normalize, PreservesDocumentValidity) {
  auto schema = *imdb::Schema();
  Schema normalized = Normalize(schema);
  imdb::ImdbScale scale;
  scale.shows = 10;
  scale.directors = 4;
  scale.actors = 5;
  xml::Document doc = imdb::Generate(scale);
  EXPECT_TRUE(xs::ValidateDocument(doc, schema).ok());
  EXPECT_TRUE(xs::ValidateDocument(doc, normalized).ok());
}

TEST(Normalize, FreshNamesAvoidCollisions) {
  Schema s = S("type A = a[ b[ String ]* ] type B = other[ Integer ]");
  Schema n = Normalize(s);
  EXPECT_TRUE(CheckPhysical(n).ok());
  // The existing B is untouched; the outlined b element gets B_2.
  EXPECT_EQ(n.Get("B")->name.name, "other");
  EXPECT_TRUE(n.Has("B_2"));
}

// ---- Initial configurations ----

TEST(AllOutlinedTest, EveryNestedElementBecomesAType) {
  Schema s = S("type A = a[ b[ c[ String ] ], d[ Integer ] ]");
  Schema out = AllOutlined(s);
  EXPECT_TRUE(CheckPhysical(out).ok());
  // b, c, d each get their own type.
  EXPECT_EQ(out.size(), 4u);
}

TEST(AllOutlinedTest, ImdbValidityPreserved) {
  Schema out = AllOutlined(*imdb::Schema());
  imdb::ImdbScale scale;
  scale.shows = 6;
  scale.directors = 2;
  scale.actors = 3;
  xml::Document doc = imdb::Generate(scale);
  EXPECT_TRUE(xs::ValidateDocument(doc, out).ok());
}

TEST(AllInlinedTest, CollapsesSingletonTypes) {
  Schema s = S("type A = a[ B, C* ] type B = b[ String ] type C = c[ Integer ]");
  Schema in = AllInlined(s);
  EXPECT_TRUE(CheckPhysical(in).ok());
  EXPECT_FALSE(in.Has("B"));  // singleton inlined
  EXPECT_TRUE(in.Has("C"));   // multi-valued must stay
}

TEST(AllInlinedTest, FlattensUnionsToOptions) {
  Schema in = AllInlined(*imdb::Schema());
  // Movie/TV content ends up as nullable inline content of Show.
  EXPECT_FALSE(in.Has("Movie"));
  EXPECT_FALSE(in.Has("TV"));
  std::string show = in.Get("Show")->ToString();
  EXPECT_NE(show.find("box_office"), std::string::npos);
  EXPECT_NE(show.find("seasons"), std::string::npos);
}

TEST(AllInlinedTest, KeepUnionsWhenAsked) {
  Schema in = AllInlined(*imdb::Schema(), /*flatten_unions=*/false);
  EXPECT_TRUE(CheckPhysical(in).ok());
  EXPECT_TRUE(in.Has("Movie"));
  EXPECT_TRUE(in.Has("TV"));
}

TEST(AllInlinedTest, RecursiveTypesSurvive) {
  Schema s = S("type N = n[ v[ Integer ], N* ]");
  Schema in = AllInlined(s);
  EXPECT_TRUE(CheckPhysical(in).ok());
  EXPECT_TRUE(in.Has("N"));
}

// ---- Node addressing ----

TEST(NodePathTest, NodeAtNavigates) {
  Schema s = S("type A = a[ b[ String ], c[ Integer ] ]");
  TypePtr body = s.Get("A");
  // body = element a; child = sequence; children[1] = element c.
  TypePtr c = NodeAt(body, {0, 1});
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->name.name, "c");
  EXPECT_EQ(NodeAt(body, {0, 5}), nullptr);
  EXPECT_EQ(NodeAt(body, {}), body);
}

TEST(NodePathTest, ReplaceAtRebuildsSpine) {
  Schema s = S("type A = a[ b[ String ], c[ Integer ] ]");
  TypePtr body = s.Get("A");
  TypePtr replaced = ReplaceAt(body, {0, 1}, Type::Ref("C"));
  EXPECT_EQ(NodeAt(replaced, {0, 1})->kind, Type::Kind::kTypeRef);
  // Untouched siblings are shared, not copied.
  EXPECT_EQ(NodeAt(replaced, {0, 0}), NodeAt(body, {0, 0}));
}

// ---- Inline / outline primitives ----

TEST(OutlineAtTest, MovesElementToNewType) {
  Schema s = S("type A = a[ b[ String ], c[ Integer ] ]");
  std::string new_type;
  auto out = OutlineAt(s, "A", {0, 1}, &new_type);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(new_type, "C");
  EXPECT_EQ(NodeAt(out->Get("A"), {0, 1})->ref_name, "C");
  EXPECT_EQ(out->Get("C")->name.name, "c");
}

TEST(OutlineAtTest, RejectsBodyRootAndNonElements) {
  Schema s = S("type A = a[ b[ String ] ]");
  EXPECT_FALSE(OutlineAt(s, "A", {}).ok());       // body root
  EXPECT_FALSE(OutlineAt(s, "A", {0, 0}).ok());   // scalar node
  EXPECT_FALSE(OutlineAt(s, "Zzz", {0}).ok());    // unknown type
}

TEST(InlineTypeTest, ElidesSingletonType) {
  Schema s = S("type A = a[ B ] type B = b[ String ]");
  auto out = InlineType(s, "B");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_FALSE(out->Has("B"));
  EXPECT_EQ(NodeAt(out->Get("A"), {0})->name.name, "b");
}

TEST(InlineTypeTest, RefusesRoot) {
  Schema s = S("type A = a[ String ]");
  EXPECT_FALSE(InlineType(s, "A").ok());
}

TEST(InlineTypeTest, RefusesShared) {
  Schema s = S("type A = a[ B, c[ B ] ] type B = b[ String ]");
  EXPECT_FALSE(InlineType(s, "B").ok());
}

TEST(InlineTypeTest, RefusesMultiValuedPosition) {
  Schema s = S("type A = a[ B* ] type B = b[ String ]");
  EXPECT_FALSE(InlineType(s, "B").ok());
}

TEST(InlineTypeTest, RefusesUnionAlternative) {
  Schema s = S("type A = a[ (B | C) ] type B = b[ String ] "
               "type C = c[ String ]");
  EXPECT_FALSE(InlineType(s, "B").ok());
}

TEST(InlineTypeTest, RefusesRecursive) {
  Schema s = S("type A = a[ B? ] type B = b[ B? ]");
  EXPECT_FALSE(InlineType(s, "B").ok());
}

TEST(InlineTypeTest, AllowsOptionalPosition) {
  Schema s = S("type A = a[ B? ] type B = b[ String ]");
  auto out = InlineType(s, "B");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_TRUE(CheckPhysical(out.value()).ok());
}

TEST(InlineOutline, AreInverse) {
  Schema s = Normalize(S("type A = a[ b[ String ], c[ Integer ] ]"));
  std::string new_type;
  Schema outlined = *OutlineAt(s, "A", {0, 1}, &new_type);
  Schema back = *InlineType(outlined, new_type);
  EXPECT_TRUE(xs::TypeEquals(back.Get("A"), s.Get("A")));
}

TEST(Candidates, OutlineEnumerationCoversNestedElements) {
  Schema s = Normalize(S("type A = a[ b[ c[ String ] ] ]"));
  auto candidates = EnumerateOutlineCandidates(s);
  // b and c (not the root element a).
  EXPECT_EQ(candidates.size(), 2u);
}

TEST(Candidates, InlineEnumerationRespectsConstraints) {
  Schema s = S("type A = a[ B, C*, (D | E) ] type B = b[ String ] "
               "type C = c[ String ] type D = d[ String ] "
               "type E = e[ String ]");
  auto candidates = EnumerateInlineCandidates(s);
  EXPECT_EQ(candidates, (std::vector<std::string>{"B"}));
}

TEST(Candidates, MoveSetsShrinkToFixpoint) {
  // Applying all inline candidates repeatedly terminates.
  Schema s = AllOutlined(*imdb::Schema());
  int steps = 0;
  while (true) {
    auto candidates = EnumerateInlineCandidates(s);
    if (candidates.empty()) break;
    auto next = InlineType(s, candidates[0]);
    ASSERT_TRUE(next.ok());
    s = std::move(next).value();
    ASSERT_LT(++steps, 200);
  }
  EXPECT_GT(steps, 5);
  EXPECT_TRUE(CheckPhysical(s).ok());
}

}  // namespace
}  // namespace legodb::ps
