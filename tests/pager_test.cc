// Tests for the paged storage stack: Pager page IO and its failpoint
// sites, BufferPool pin/eviction invariants, the slotted-page StoredTable,
// and failure recovery (shredder rollback, flush errors, write-back
// retries).
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "mapping/mapping.h"
#include "pschema/pschema.h"
#include "storage/backend.h"
#include "storage/buffer_pool.h"
#include "storage/database.h"
#include "storage/pager.h"
#include "storage/reconstruct.h"
#include "storage/shredder.h"
#include "xml/parser.h"
#include "xml/writer.h"
#include "xschema/schema_parser.h"

namespace legodb::store {
namespace {

std::unique_ptr<Pager> OpenPager(size_t page_size = 512) {
  Pager::Options o;
  o.page_size = page_size;
  auto p = Pager::Open(o);
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  return std::move(p).value();
}

map::Mapping MapText(const char* schema_text) {
  auto schema = xs::ParseSchema(schema_text);
  EXPECT_TRUE(schema.ok()) << schema.status().ToString();
  auto mapping = map::MapSchema(ps::Normalize(schema.value()));
  EXPECT_TRUE(mapping.ok()) << mapping.status().ToString();
  return std::move(mapping).value();
}

rel::Table SimpleMeta() {
  rel::Table meta;
  meta.name = "T";
  meta.key_column = "T_id";
  rel::Column id, x;
  id.name = "T_id";
  x.name = "x";
  meta.columns = {id, x};
  return meta;
}

// ---- Pager ----

TEST(Pager, RejectsOutOfRangePageSize) {
  Pager::Options o;
  o.page_size = 100;
  EXPECT_FALSE(Pager::Open(o).ok());
  o.page_size = 1 << 20;
  EXPECT_FALSE(Pager::Open(o).ok());
}

TEST(Pager, WriteReadRoundtripAndFreshPagesAreZero) {
  auto pager = OpenPager();
  auto p0 = pager->Allocate();
  auto p1 = pager->Allocate();
  ASSERT_TRUE(p0.ok() && p1.ok());
  EXPECT_NE(p0.value(), p1.value());

  std::vector<char> page(pager->page_size(), '\0');
  ASSERT_TRUE(pager->Read(p1.value(), page.data()).ok());
  for (char c : page) ASSERT_EQ(c, 0);  // never-written page reads zeros

  std::memset(page.data(), 0x5a, page.size());
  ASSERT_TRUE(pager->Write(p0.value(), page.data()).ok());
  std::vector<char> back(pager->page_size(), '\0');
  ASSERT_TRUE(pager->Read(p0.value(), back.data()).ok());
  EXPECT_EQ(std::memcmp(page.data(), back.data(), page.size()), 0);

  Pager::Stats stats = pager->stats();
  EXPECT_EQ(stats.pages_written, 1u);
  EXPECT_EQ(stats.pages_read, 2u);
}

TEST(Pager, FreedPagesAreRecycledBeforeGrowth) {
  auto pager = OpenPager();
  uint32_t a = pager->Allocate().value();
  uint32_t b = pager->Allocate().value();
  (void)a;
  pager->Free(b);
  EXPECT_EQ(pager->Allocate().value(), b);
  EXPECT_EQ(pager->page_count(), 2u);  // the file never grew past 2 pages
}

TEST(Pager, FailpointSitesFireAndRecover) {
  auto pager = OpenPager();
  uint32_t p = pager->Allocate().value();
  std::vector<char> buf(pager->page_size(), 'x');
  {
    fp::ScopedFailpoints fps("storage.write");
    ASSERT_TRUE(fps.status().ok());
    EXPECT_EQ(pager->Write(p, buf.data()).code(), Status::Code::kInternal);
  }
  ASSERT_TRUE(pager->Write(p, buf.data()).ok());  // disarmed: recovers
  {
    fp::ScopedFailpoints fps("storage.read");
    EXPECT_EQ(pager->Read(p, buf.data()).code(), Status::Code::kInternal);
  }
  ASSERT_TRUE(pager->Read(p, buf.data()).ok());
  EXPECT_EQ(buf[0], 'x');
  {
    fp::ScopedFailpoints fps("storage.flush");
    EXPECT_EQ(pager->Sync().code(), Status::Code::kInternal);
  }
  EXPECT_TRUE(pager->Sync().ok());
}

// ---- BufferPool ----

TEST(BufferPool, FaultThenHitAccounting) {
  auto pager = OpenPager();
  uint32_t p = pager->Allocate().value();
  BufferPool pool(pager.get(), 4);
  {
    auto g1 = pool.Pin(p);
    ASSERT_TRUE(g1.ok());
    EXPECT_TRUE(g1->faulted());  // first pin reads from disk
    auto g2 = pool.Pin(p);
    ASSERT_TRUE(g2.ok());
    EXPECT_FALSE(g2->faulted());  // second pin shares the frame
  }
  BufferPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.faults, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.bytes_read, pager->page_size());
  EXPECT_EQ(stats.resident, 1u);
  EXPECT_EQ(stats.pinned, 0u);  // both guards released
}

TEST(BufferPool, EvictsLruWithDirtyWriteBack) {
  auto pager = OpenPager();
  uint32_t a = pager->Allocate().value();
  uint32_t b = pager->Allocate().value();
  uint32_t c = pager->Allocate().value();
  BufferPool pool(pager.get(), 2);
  {
    auto g = pool.PinNew(a);
    ASSERT_TRUE(g.ok());
    g->data()[0] = 'A';
    g->MarkDirty();
  }
  ASSERT_TRUE(pool.Pin(b).ok());  // pool now holds {a, b}
  ASSERT_TRUE(pool.Pin(c).ok());  // evicts a (LRU), writing it back
  BufferPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.bytes_written, pager->page_size());
  // The write-back preserved the dirty byte: re-faulting a reads it.
  auto g = pool.Pin(a);
  ASSERT_TRUE(g.ok());
  EXPECT_TRUE(g->faulted());
  EXPECT_EQ(g->data()[0], 'A');
}

TEST(BufferPool, PinnedFramesAreNeverEvicted) {
  auto pager = OpenPager();
  uint32_t a = pager->Allocate().value();
  uint32_t b = pager->Allocate().value();
  uint32_t c = pager->Allocate().value();
  BufferPool pool(pager.get(), 2);
  auto ga = pool.Pin(a);
  ASSERT_TRUE(ga.ok());
  ASSERT_TRUE(pool.Pin(b).ok());  // unpinned immediately
  // Pinning c must evict b, not the pinned a.
  ASSERT_TRUE(pool.Pin(c).ok());
  EXPECT_FALSE(pool.Pin(a)->faulted());  // a stayed resident
  ga->Release();
}

TEST(BufferPool, AllFramesPinnedIsUnavailable) {
  auto pager = OpenPager();
  uint32_t a = pager->Allocate().value();
  uint32_t b = pager->Allocate().value();
  BufferPool pool(pager.get(), 1);
  auto ga = pool.Pin(a);
  ASSERT_TRUE(ga.ok());
  auto gb = pool.Pin(b);
  EXPECT_EQ(gb.status().code(), Status::Code::kUnavailable);
  ga->Release();
  EXPECT_TRUE(pool.Pin(b).ok());  // capacity freed: works again
}

TEST(BufferPool, FailedWriteBackKeepsDirtyFrameResident) {
  auto pager = OpenPager();
  uint32_t a = pager->Allocate().value();
  uint32_t b = pager->Allocate().value();
  BufferPool pool(pager.get(), 1);
  {
    auto g = pool.PinNew(a);
    ASSERT_TRUE(g.ok());
    g->data()[0] = 'A';
    g->MarkDirty();
  }
  {
    fp::ScopedFailpoints fps("storage.write");
    // Evicting a requires writing it back, which fails — a must survive.
    EXPECT_FALSE(pool.Pin(b).ok());
  }
  auto g = pool.Pin(a);
  ASSERT_TRUE(g.ok());
  EXPECT_FALSE(g->faulted());  // still resident, data intact
  EXPECT_EQ(g->data()[0], 'A');
  g->Release();
  EXPECT_TRUE(pool.Pin(b).ok());  // disarmed: eviction succeeds now
}

TEST(BufferPool, FailedFaultLeavesPoolClean) {
  auto pager = OpenPager();
  uint32_t a = pager->Allocate().value();
  BufferPool pool(pager.get(), 2);
  {
    fp::ScopedFailpoints fps("storage.read");
    EXPECT_FALSE(pool.Pin(a).ok());
  }
  EXPECT_EQ(pool.stats().resident, 0u);
  auto g = pool.Pin(a);
  ASSERT_TRUE(g.ok());
  EXPECT_TRUE(g->faulted());
}

// ---- Paged StoredTable ----

TEST(PagedTable, InsertReadRemoveAcrossPages) {
  auto backend =
      OpenBackend(StorageOptions::Paged(/*page_size=*/512, /*pool_pages=*/2));
  ASSERT_TRUE(backend.ok()) << backend.status().ToString();
  StoredTable t(SimpleMeta(), backend->get());
  ASSERT_TRUE(t.paged());

  // ~60 bytes per row: several pages' worth.
  constexpr int kRows = 100;
  for (int i = 0; i < kRows; ++i) {
    Row row = {Value::Int(i), Value::Str("payload_" + std::to_string(i) +
                                         std::string(32, 'x'))};
    ASSERT_TRUE(t.Insert(std::move(row)).ok()) << i;
  }
  EXPECT_EQ(t.row_count(), static_cast<size_t>(kRows));
  EXPECT_EQ(t.mutation_count(), static_cast<uint64_t>(kRows));
  EXPECT_GT(t.pager()->page_count(), 4u);  // really spans pages

  for (int i : {0, 1, kRows / 2, kRows - 1}) {
    auto row = t.ReadRow(static_cast<size_t>(i));
    ASSERT_TRUE(row.ok()) << row.status().ToString();
    EXPECT_EQ((*row)[0], Value::Int(i));
    EXPECT_EQ((*row)[1].as_string().substr(0, 8), "payload_");
  }

  // NULL values round-trip through the slotted encoding.
  ASSERT_TRUE(t.Insert({Value::Int(kRows), Value::MakeNull()}).ok());
  auto row = t.ReadRow(kRows);
  ASSERT_TRUE(row.ok());
  EXPECT_TRUE((*row)[1].is_null());

  // LIFO removal unwinds whole pages and keeps the survivors readable.
  ASSERT_TRUE(t.RemoveLastRows(kRows / 2 + 1).ok());
  EXPECT_EQ(t.row_count(), static_cast<size_t>(kRows / 2));
  auto last = t.ReadRow(t.row_count() - 1);
  ASSERT_TRUE(last.ok());
  EXPECT_EQ((*last)[0], Value::Int(kRows / 2 - 1));
}

TEST(PagedTable, IndexesAndColumnsWorkOverPages) {
  auto backend = OpenBackend(StorageOptions::Paged(512, 2));
  ASSERT_TRUE(backend.ok());
  StoredTable t(SimpleMeta(), backend->get());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(t.Insert({Value::Int(i), Value::Str(i % 2 ? "odd" : "even")})
                    .ok());
  }
  t.EnsureIndex("x");
  const auto* hits = t.Probe("x", Value::Str("odd"));
  ASSERT_NE(hits, nullptr);
  EXPECT_EQ(hits->size(), 10u);
  auto col = t.GetOrBuildColumn("T_id");
  ASSERT_TRUE(col.ok());
  ASSERT_EQ((*col)->size(), 20u);
  EXPECT_EQ((*col)->value(7), Value::Int(7));
}

TEST(PagedTable, FetchRowRangeChargesOnlyFaults) {
  auto backend = OpenBackend(StorageOptions::Paged(512, /*pool_pages=*/1));
  ASSERT_TRUE(backend.ok());
  StoredTable t(SimpleMeta(), backend->get());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(
        t.Insert({Value::Int(i), Value::Str(std::string(40, 'p'))}).ok());
  }
  auto io = t.FetchRowRange(0, t.row_count());
  ASSERT_TRUE(io.ok()) << io.status().ToString();
  // A 1-frame pool re-faults every page of a full scan: one seek per page,
  // page_size bytes each.
  EXPECT_GT(io->seeks, 1.0);
  EXPECT_EQ(io->bytes, io->seeks * 512);
  // With everything evicted but the tail, a second scan re-faults again.
  auto io2 = t.FetchRowRange(0, t.row_count());
  ASSERT_TRUE(io2.ok());
  EXPECT_GT(io2->seeks, 0.0);
}

TEST(PagedTable, RowTooLargeForPageIsRejected) {
  auto backend = OpenBackend(StorageOptions::Paged(512, 2));
  ASSERT_TRUE(backend.ok());
  StoredTable t(SimpleMeta(), backend->get());
  Status st = t.Insert({Value::Int(1), Value::Str(std::string(600, 'x'))});
  EXPECT_EQ(st.code(), Status::Code::kInternal);
  EXPECT_EQ(t.row_count(), 0u);  // failed insert leaves no trace
  EXPECT_TRUE(t.Insert({Value::Int(1), Value::Str("fits")}).ok());
}

// ---- Paged Database end-to-end ----

constexpr const char* kSchema =
    "type A = a[ B* ] type B = b[ x[ String ], y[ Integer ] ]";
constexpr const char* kDoc =
    "<a><b><x>alpha</x><y>1</y></b><b><x>beta</x><y>2</y></b>"
    "<b><x>gamma</x><y>3</y></b></a>";

TEST(PagedDatabase, ShredReconstructMatchesMemoryBackend) {
  map::Mapping m = MapText(kSchema);
  auto doc = xml::ParseDocument(kDoc);
  ASSERT_TRUE(doc.ok());

  Database mem_db(m.catalog());
  ASSERT_TRUE(ShredDocument(doc.value(), m, &mem_db).ok());
  Database disk_db(m.catalog(), StorageOptions::Paged(512, 2));
  ASSERT_TRUE(disk_db.paged());
  ASSERT_TRUE(ShredDocument(doc.value(), m, &disk_db).ok());

  EXPECT_EQ(mem_db.TotalRows(), disk_db.TotalRows());
  auto from_mem = ReconstructDocument(&mem_db, m);
  auto from_disk = ReconstructDocument(&disk_db, m);
  ASSERT_TRUE(from_mem.ok()) << from_mem.status().ToString();
  ASSERT_TRUE(from_disk.ok()) << from_disk.status().ToString();
  EXPECT_EQ(xml::Serialize(from_mem.value()),
            xml::Serialize(from_disk.value()));
  // The load actually went through the pager.
  EXPECT_GT(disk_db.pager()->stats().pages_written, 0u);
}

TEST(PagedDatabase, WriteFailureDuringShredRollsBack) {
  map::Mapping m = MapText(kSchema);
  auto doc = xml::ParseDocument(kDoc);
  ASSERT_TRUE(doc.ok());
  // A 1-frame pool forces a dirty eviction (a pager write) as soon as the
  // load touches a second page; fire the first such write only, so the
  // rollback path itself runs clean.
  Database db(m.catalog(), StorageOptions::Paged(512, 1));
  {
    fp::ScopedFailpoints fps("storage.write=1");
    ASSERT_TRUE(fps.status().ok());
    Status st = ShredDocument(doc.value(), m, &db);
    EXPECT_FALSE(st.ok());
  }
  EXPECT_EQ(db.TotalRows(), 0u);  // rollback removed every applied row
  // The database stays usable: the same document loads fine afterwards.
  ASSERT_TRUE(ShredDocument(doc.value(), m, &db).ok());
  EXPECT_GT(db.TotalRows(), 0u);
}

TEST(PagedDatabase, FlushFailureSurfacesFromLoad) {
  map::Mapping m = MapText(kSchema);
  auto doc = xml::ParseDocument(kDoc);
  ASSERT_TRUE(doc.ok());
  Database db(m.catalog(), StorageOptions::Paged(512, 4));
  fp::ScopedFailpoints fps("storage.flush");
  Status st = ShredDocument(doc.value(), m, &db);
  EXPECT_EQ(st.code(), Status::Code::kInternal);
}

TEST(PagedDatabase, PrewarmBuildsIndexesAndColumns) {
  map::Mapping m = MapText(kSchema);
  auto doc = xml::ParseDocument(kDoc);
  ASSERT_TRUE(doc.ok());
  Database db(m.catalog(), StorageOptions::Paged(512, 4));
  ASSERT_TRUE(ShredDocument(doc.value(), m, &db).ok());
  EXPECT_TRUE(db.PrewarmIndexes().ok());
  EXPECT_TRUE(db.PrewarmColumns().ok());
  StoredTable& b = db.GetTable("B");
  EXPECT_TRUE(b.HasIndex("B_id"));
}

}  // namespace
}  // namespace legodb::store
