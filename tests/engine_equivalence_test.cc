// Pipelined-vs-reference executor equivalence: across the fig10 (lookup +
// publish), fig13 (union-distribution), and fig14 (repetition) workload
// queries, the batched pipelined Executor must return *bit-identical*
// ResultSets to the seed materializing ReferenceExecutor — same labels,
// same rows, same row order — at every batch size, and when many executors
// serve the same Database concurrently (run under --tsan to check the
// index registry's synchronization).
#include <gtest/gtest.h>

#include <thread>

#include "engine/executor.h"
#include "engine/reference_executor.h"
#include "imdb/imdb.h"
#include "mapping/mapping.h"
#include "optimizer/optimizer.h"
#include "pschema/pschema.h"
#include "storage/shredder.h"
#include "translate/translate.h"
#include "xquery/parser.h"
#include "xschema/annotate.h"

namespace legodb {
namespace {

// The union of the fig10 (Q8, Q9, Q11-Q13 lookup; Q15-Q17 publish), fig13
// (Q4-Q7, Q13, Q16, Q19), and fig14 (aka lookup, Q16) workload queries.
struct WorkloadQuery {
  const char* name;
  std::string text;
};

std::vector<WorkloadQuery> WorkloadQueries() {
  std::vector<WorkloadQuery> queries;
  for (const char* name : {"Q4", "Q5", "Q6", "Q7", "Q8", "Q9", "Q11", "Q12",
                           "Q13", "Q15", "Q16", "Q17", "Q19"}) {
    queries.push_back({name, imdb::QueryText(name)});
  }
  queries.push_back({"aka_lookup",
                     R"(FOR $v IN document("imdbdata")/imdb/show
                        WHERE $v/title = c1
                        RETURN $v/aka)"});
  return queries;
}

// One prepared query: translated and planned against the shared mapping.
struct PreparedQuery {
  std::string name;
  opt::RelQuery rq;
  std::vector<opt::PhysicalPlanPtr> plans;
};

class ExecutorEquivalenceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto schema = imdb::Schema();
    ASSERT_TRUE(schema.ok());
    auto stats = imdb::Stats();
    ASSERT_TRUE(stats.ok());
    xs::Schema config =
        ps::AllInlined(xs::AnnotateSchema(schema.value(), stats.value()));
    auto mapping = map::MapSchema(config);
    ASSERT_TRUE(mapping.ok()) << mapping.status().ToString();
    mapping_ = new map::Mapping(std::move(mapping).value());

    imdb::ImdbScale scale;
    scale.shows = 80;
    scale.directors = 30;
    scale.actors = 60;
    scale.seed = 99;
    doc_ = new xml::Document(imdb::Generate(scale));

    opt::Optimizer optimizer(mapping_->catalog());
    prepared_ = new std::vector<PreparedQuery>();
    for (const WorkloadQuery& wq : WorkloadQueries()) {
      auto query = xq::ParseQuery(wq.text);
      ASSERT_TRUE(query.ok()) << wq.name << ": "
                              << query.status().ToString();
      auto rq = xlat::TranslateQuery(query.value(), *mapping_);
      ASSERT_TRUE(rq.ok()) << wq.name << ": " << rq.status().ToString();
      auto planned = optimizer.PlanQuery(rq.value());
      ASSERT_TRUE(planned.ok()) << wq.name << ": "
                                << planned.status().ToString();
      PreparedQuery p;
      p.name = wq.name;
      p.rq = std::move(rq).value();
      for (const auto& b : planned->blocks) p.plans.push_back(b.plan);
      prepared_->push_back(std::move(p));
    }
  }

  static void TearDownTestSuite() {
    delete prepared_;
    prepared_ = nullptr;
    delete doc_;
    doc_ = nullptr;
    delete mapping_;
    mapping_ = nullptr;
  }

  // A freshly shredded database (per test, so index-registry state starts
  // empty and concurrent tests exercise lazy builds).
  std::unique_ptr<store::Database> FreshDatabase() {
    auto db = std::make_unique<store::Database>(mapping_->catalog());
    EXPECT_TRUE(store::ShredDocument(*doc_, *mapping_, db.get()).ok());
    return db;
  }

  // Same document on the paged backend, with a pool small enough that the
  // workload actually faults and evicts (the reference executor only runs
  // on memory tables, so disk tests compare against a separate memory
  // database shredded from the same document).
  std::unique_ptr<store::Database> FreshDiskDatabase() {
    auto db = std::make_unique<store::Database>(
        mapping_->catalog(),
        store::StorageOptions::Paged(/*page_size=*/1024, /*pool_pages=*/4));
    EXPECT_TRUE(store::ShredDocument(*doc_, *mapping_, db.get()).ok());
    EXPECT_TRUE(db->paged());
    return db;
  }

  static std::map<std::string, Value> Params() {
    return {{"c1", Value::Str("title1")},
            {"c2", Value::Str("title2")},
            {"c4", Value::Str("person3")}};
  }

  // Executes every prepared query with the reference executor.
  static std::vector<xq::ResultSet> ReferenceResults(store::Database* db) {
    std::vector<xq::ResultSet> results;
    for (const PreparedQuery& p : *prepared_) {
      engine::ReferenceExecutor exec(db, Params());
      auto r = exec.ExecuteQuery(p.rq, p.plans);
      EXPECT_TRUE(r.ok()) << p.name << ": " << r.status().ToString();
      results.push_back(std::move(r).value());
    }
    return results;
  }

  static void ExpectIdentical(const xq::ResultSet& expected,
                              const xq::ResultSet& actual,
                              const std::string& context) {
    EXPECT_EQ(expected.labels, actual.labels) << context;
    ASSERT_EQ(expected.rows.size(), actual.rows.size()) << context;
    for (size_t i = 0; i < expected.rows.size(); ++i) {
      ASSERT_EQ(expected.rows[i].size(), actual.rows[i].size())
          << context << " row " << i;
      for (size_t j = 0; j < expected.rows[i].size(); ++j) {
        EXPECT_TRUE(expected.rows[i][j] == actual.rows[i][j])
            << context << " row " << i << " col " << j << ": "
            << expected.rows[i][j].ToString() << " vs "
            << actual.rows[i][j].ToString();
      }
    }
  }

  static map::Mapping* mapping_;
  static xml::Document* doc_;
  static std::vector<PreparedQuery>* prepared_;
};

map::Mapping* ExecutorEquivalenceTest::mapping_ = nullptr;
xml::Document* ExecutorEquivalenceTest::doc_ = nullptr;
std::vector<PreparedQuery>* ExecutorEquivalenceTest::prepared_ = nullptr;

TEST_F(ExecutorEquivalenceTest, BitIdenticalAcrossBatchSizes) {
  auto db = FreshDatabase();
  std::vector<xq::ResultSet> expected = ReferenceResults(db.get());
  // Powers of two plus a non-power-of-two vector size, so partial final
  // vectors and mid-stream all-filtered vectors are both exercised.
  for (size_t batch_size :
       {size_t{1}, size_t{64}, size_t{1000}, size_t{1024}, size_t{4096}}) {
    engine::ExecOptions options;
    options.batch_size = batch_size;
    for (size_t i = 0; i < prepared_->size(); ++i) {
      const PreparedQuery& p = (*prepared_)[i];
      engine::Executor exec(db.get(), Params(), options);
      auto actual = exec.ExecuteQuery(p.rq, p.plans);
      ASSERT_TRUE(actual.ok()) << p.name << ": "
                               << actual.status().ToString();
      ExpectIdentical(expected[i], actual.value(),
                      p.name + " at batch_size=" +
                          std::to_string(batch_size));
    }
  }
}

TEST_F(ExecutorEquivalenceTest, BitIdenticalWithProfilingEnabled) {
  // collect_profile forces the materializing hash-join path and per-op
  // timing; results must not change, and the profile must cover every
  // operator with sane actuals.
  auto db = FreshDatabase();
  std::vector<xq::ResultSet> expected = ReferenceResults(db.get());
  engine::ExecOptions options;
  options.collect_profile = true;
  for (size_t i = 0; i < prepared_->size(); ++i) {
    const PreparedQuery& p = (*prepared_)[i];
    engine::Executor exec(db.get(), Params(), options);
    auto actual = exec.ExecuteQuery(p.rq, p.plans);
    ASSERT_TRUE(actual.ok()) << p.name;
    ExpectIdentical(expected[i], actual.value(), p.name + " profiled");
    EXPECT_FALSE(exec.profile().ops.empty()) << p.name;
    int64_t projected = 0;
    for (const engine::OpActual& op : exec.profile().ops) {
      EXPECT_GE(op.actual_rows, 0) << p.name << " " << op.label;
      EXPECT_GE(op.QError(), 1.0) << p.name << " " << op.label;
      if (op.kind == opt::PhysicalPlan::Kind::kProject) {
        projected += op.actual_rows;
      }
    }
    EXPECT_EQ(projected, static_cast<int64_t>(actual->rows.size()))
        << p.name;
  }
}

// Eight executors serve one Database concurrently over a cold index
// registry: every thread must see bit-identical results while hash-index
// builds race. This is the test `tools/check.sh --tsan` leans on to verify
// the storage registry's locking.
TEST_F(ExecutorEquivalenceTest, ConcurrentServingIsBitIdentical) {
  // Reference results come from a separate (deterministically identical)
  // database so the served database's index registry stays cold until the
  // threads race to populate it.
  auto reference_db = FreshDatabase();
  std::vector<xq::ResultSet> expected = ReferenceResults(reference_db.get());
  auto db = FreshDatabase();

  constexpr int kThreads = 8;
  // Vary batch size per thread so pipelines interleave differently.
  const size_t batch_sizes[kThreads] = {1, 64, 4096, 1024, 7, 256, 2, 512};
  std::vector<std::string> failures(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      engine::ExecOptions options;
      options.batch_size = batch_sizes[t];
      for (size_t i = 0; i < prepared_->size(); ++i) {
        const PreparedQuery& p = (*prepared_)[i];
        engine::Executor exec(db.get(), Params(), options);
        auto actual = exec.ExecuteQuery(p.rq, p.plans);
        if (!actual.ok()) {
          failures[t] = p.name + ": " + actual.status().ToString();
          return;
        }
        if (!(expected[i].rows == actual->rows) ||
            expected[i].labels != actual->labels) {
          failures[t] = p.name + ": result mismatch";
          return;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_TRUE(failures[t].empty())
        << "thread " << t << ": " << failures[t];
  }
}

// Same concurrency shape against a prewarmed registry: PrewarmIndexes must
// cover every index the workload needs, so no thread triggers a build.
TEST_F(ExecutorEquivalenceTest, PrewarmedConcurrentServing) {
  auto db = FreshDatabase();
  ASSERT_TRUE(db->PrewarmIndexes().ok());
  std::vector<xq::ResultSet> expected = ReferenceResults(db.get());

  constexpr int kThreads = 8;
  std::vector<std::string> failures(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (size_t i = 0; i < prepared_->size(); ++i) {
        const PreparedQuery& p = (*prepared_)[i];
        engine::Executor exec(db.get(), Params());
        auto actual = exec.ExecuteQuery(p.rq, p.plans);
        if (!actual.ok()) {
          failures[t] = p.name + ": " + actual.status().ToString();
          return;
        }
        if (!(expected[i].rows == actual->rows)) {
          failures[t] = p.name + ": result mismatch";
          return;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_TRUE(failures[t].empty())
        << "thread " << t << ": " << failures[t];
  }
}

// The tentpole's gate: the paged backend must return bit-identical results
// to the memory backend (and hence to the reference executor) across batch
// sizes, with a pool far smaller than the data so faults and evictions are
// on the hot path.
TEST_F(ExecutorEquivalenceTest, DiskBackendBitIdenticalToMemory) {
  auto mem_db = FreshDatabase();
  std::vector<xq::ResultSet> expected = ReferenceResults(mem_db.get());
  auto disk_db = FreshDiskDatabase();
  for (size_t batch_size : {size_t{1}, size_t{64}, size_t{1024}}) {
    engine::ExecOptions options;
    options.batch_size = batch_size;
    for (size_t i = 0; i < prepared_->size(); ++i) {
      const PreparedQuery& p = (*prepared_)[i];
      engine::Executor exec(disk_db.get(), Params(), options);
      auto actual = exec.ExecuteQuery(p.rq, p.plans);
      ASSERT_TRUE(actual.ok()) << p.name << ": "
                               << actual.status().ToString();
      ExpectIdentical(expected[i], actual.value(),
                      p.name + " on disk at batch_size=" +
                          std::to_string(batch_size));
    }
  }
  // The workload drove real page traffic through the pool.
  store::BufferPool::Stats stats = disk_db->buffer_pool()->stats();
  EXPECT_GT(stats.faults, 0u);
  EXPECT_GT(stats.evictions, 0u);
}

// Measured IO on the paged backend is real: ExecStats seeks/bytes must come
// from buffer-pool faults, move when the pool is cold vs warm, and be zero
// only when everything is resident.
TEST_F(ExecutorEquivalenceTest, DiskExecStatsReflectPoolFaults) {
  auto disk_db = FreshDiskDatabase();
  // Prewarm indexes and column shadows: their lazy builds scan pages, and
  // that traffic belongs to warmup, not to the query being measured.
  ASSERT_TRUE(disk_db->PrewarmIndexes().ok());
  ASSERT_TRUE(disk_db->PrewarmColumns().ok());
  const PreparedQuery* scan = nullptr;
  for (const PreparedQuery& p : *prepared_) {
    if (p.name == "Q16") scan = &p;  // publish: scans every table
  }
  ASSERT_NE(scan, nullptr);
  uint64_t faults_before = disk_db->buffer_pool()->stats().faults;
  engine::Executor exec(disk_db.get(), Params());
  auto r = exec.ExecuteQuery(scan->rq, scan->plans);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  uint64_t fault_delta =
      disk_db->buffer_pool()->stats().faults - faults_before;
  EXPECT_GT(exec.stats().seeks, 0.0);
  EXPECT_GT(fault_delta, 0u);
  // Every charged seek is a pool fault of one whole page.
  EXPECT_EQ(exec.stats().seeks, static_cast<double>(fault_delta));
  EXPECT_EQ(exec.stats().bytes_read, exec.stats().seeks * 1024);
}

// Forcing the hash-join build side to spill to temp pages must not change
// results.
TEST_F(ExecutorEquivalenceTest, DiskSpilledJoinsBitIdentical) {
  auto mem_db = FreshDatabase();
  std::vector<xq::ResultSet> expected = ReferenceResults(mem_db.get());
  auto disk_db = FreshDiskDatabase();
  engine::ExecOptions options;
  options.spill_build_bytes = 1;  // every build side spills
  bool spilled = false;
  for (size_t i = 0; i < prepared_->size(); ++i) {
    const PreparedQuery& p = (*prepared_)[i];
    engine::Executor exec(disk_db.get(), Params(), options);
    auto actual = exec.ExecuteQuery(p.rq, p.plans);
    ASSERT_TRUE(actual.ok()) << p.name << ": " << actual.status().ToString();
    ExpectIdentical(expected[i], actual.value(), p.name + " spilled");
    spilled |= exec.stats().bytes_spilled > 0;
  }
  EXPECT_TRUE(spilled);  // at least one join actually took the spill path
}

// Concurrent serving over one paged database: pin/unpin and the shared
// pool must stay consistent while eight executors fault pages in and out.
TEST_F(ExecutorEquivalenceTest, ConcurrentDiskServingIsBitIdentical) {
  auto mem_db = FreshDatabase();
  std::vector<xq::ResultSet> expected = ReferenceResults(mem_db.get());
  auto disk_db = std::make_unique<store::Database>(
      mapping_->catalog(),
      store::StorageOptions::Paged(/*page_size=*/1024, /*pool_pages=*/16));
  ASSERT_TRUE(store::ShredDocument(*doc_, *mapping_, disk_db.get()).ok());
  ASSERT_TRUE(disk_db->PrewarmIndexes().ok());

  constexpr int kThreads = 8;
  const size_t batch_sizes[kThreads] = {1, 64, 4096, 1024, 7, 256, 2, 512};
  std::vector<std::string> failures(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      engine::ExecOptions options;
      options.batch_size = batch_sizes[t];
      for (size_t i = 0; i < prepared_->size(); ++i) {
        const PreparedQuery& p = (*prepared_)[i];
        engine::Executor exec(disk_db.get(), Params(), options);
        auto actual = exec.ExecuteQuery(p.rq, p.plans);
        if (!actual.ok()) {
          failures[t] = p.name + ": " + actual.status().ToString();
          return;
        }
        if (!(expected[i].rows == actual->rows) ||
            expected[i].labels != actual->labels) {
          failures[t] = p.name + ": result mismatch";
          return;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_TRUE(failures[t].empty())
        << "thread " << t << ": " << failures[t];
  }
}

}  // namespace
}  // namespace legodb
