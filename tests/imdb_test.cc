// Tests for the IMDB application module: schema/stats fidelity to the
// paper's appendices, workload construction, and statistical shape of the
// synthetic generator.
#include <gtest/gtest.h>

#include <set>

#include "imdb/imdb.h"
#include "xml/dom.h"
#include "xschema/stats_collector.h"

namespace legodb::imdb {
namespace {

TEST(ImdbSchema, HasAllAppendixBTypes) {
  auto schema = Schema();
  ASSERT_TRUE(schema.ok());
  for (const char* type : {"IMDB", "Show", "Movie", "TV", "Director",
                           "Actor"}) {
    EXPECT_TRUE(schema->Has(type)) << type;
  }
}

TEST(ImdbStats, MatchesAppendixAHeadlineNumbers) {
  auto stats = Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->Count({"imdb"}), 1);
  EXPECT_EQ(stats->Count({"imdb", "show"}), 34798);
  EXPECT_EQ(stats->Count({"imdb", "director"}), 26251);
  EXPECT_EQ(stats->Count({"imdb", "actor"}), 165786);
  EXPECT_EQ(stats->Count({"imdb", "show", "episodes"}), 31250);
  const xs::PathStat* year = stats->Find({"imdb", "show", "year"});
  ASSERT_NE(year, nullptr);
  ASSERT_TRUE(year->base.has_value());
  EXPECT_EQ(year->base->min, 1800);
  EXPECT_EQ(year->base->max, 2100);
}

TEST(ImdbWorkloads, ComposeAsInSection52) {
  auto lookup = MakeWorkload("lookup");
  ASSERT_TRUE(lookup.ok());
  EXPECT_EQ(lookup->queries.size(), 5u);  // Q8, Q9, Q11, Q12, Q13
  auto publish = MakeWorkload("publish");
  ASSERT_TRUE(publish.ok());
  EXPECT_EQ(publish->queries.size(), 3u);  // Q15-Q17
  for (const auto& q : publish->queries) {
    EXPECT_TRUE(q.query.IsPublish()) << q.name;
  }
  auto w1 = MakeWorkload("w1");
  ASSERT_TRUE(w1.ok());
  EXPECT_DOUBLE_EQ(w1->queries[0].weight, 0.4);
  EXPECT_DOUBLE_EQ(w1->queries[3].weight, 0.1);
  EXPECT_FALSE(MakeWorkload("nope").ok());
}

TEST(ImdbGenerator, DeterministicForSeed) {
  ImdbScale scale;
  scale.shows = 10;
  scale.directors = 4;
  scale.actors = 5;
  xml::Document a = Generate(scale);
  xml::Document b = Generate(scale);
  EXPECT_EQ(a.root->SubtreeSize(), b.root->SubtreeSize());
}

TEST(ImdbGenerator, ScaleControlsCounts) {
  ImdbScale scale;
  scale.shows = 40;
  scale.directors = 15;
  scale.actors = 25;
  xml::Document doc = Generate(scale);
  EXPECT_EQ(doc.root->ChildrenNamed("show").size(), 40u);
  EXPECT_EQ(doc.root->ChildrenNamed("director").size(), 15u);
  EXPECT_EQ(doc.root->ChildrenNamed("actor").size(), 25u);
}

TEST(ImdbGenerator, ShapeTracksScaleRatios) {
  ImdbScale scale;
  scale.shows = 300;
  scale.directors = 60;
  scale.actors = 100;
  xml::Document doc = Generate(scale);
  xs::StatsCollector collector;
  collector.AddDocument(doc);
  xs::StatsSet stats = collector.Finish();

  // TV fraction ~ 0.2: seasons count should be well below show count.
  auto shows = stats.Count({"imdb", "show"});
  auto seasons = stats.Count({"imdb", "show", "seasons"});
  ASSERT_TRUE(shows.has_value());
  ASSERT_TRUE(seasons.has_value());
  double tv_fraction = static_cast<double>(*seasons) / *shows;
  EXPECT_GT(tv_fraction, 0.05);
  EXPECT_LT(tv_fraction, 0.4);

  // Movies carry box_office; movies + tv = shows.
  auto box_office = stats.Count({"imdb", "show", "box_office"});
  ASSERT_TRUE(box_office.has_value());
  EXPECT_EQ(*box_office + *seasons, *shows);

  // played per actor ~ 4.
  auto actors = stats.Count({"imdb", "actor"});
  auto played = stats.Count({"imdb", "actor", "played"});
  ASSERT_TRUE(actors.has_value());
  ASSERT_TRUE(played.has_value());
  double per_actor = static_cast<double>(*played) / *actors;
  EXPECT_GT(per_actor, 2.0);
  EXPECT_LT(per_actor, 6.0);
}

TEST(ImdbGenerator, ReviewTagsMixNytAndOthers) {
  ImdbScale scale;
  scale.shows = 200;
  scale.review_mean = 2.0;  // plenty of reviews
  xml::Document doc = Generate(scale);
  int nyt = 0, other = 0;
  for (const auto* show : doc.root->ChildrenNamed("show")) {
    for (const auto* reviews : show->ChildrenNamed("reviews")) {
      for (const auto& child : reviews->children()) {
        if (!child->is_element()) continue;
        (child->name() == "nyt" ? nyt : other) += 1;
      }
    }
  }
  EXPECT_GT(nyt, 10);
  EXPECT_GT(other, 10);
}

TEST(ImdbGenerator, JoinKeysOverlapForQ12StyleQueries) {
  // Actor and director name pools overlap so name-equality joins match.
  ImdbScale scale;
  scale.shows = 50;
  scale.directors = 20;
  scale.actors = 30;
  xml::Document doc = Generate(scale);
  std::set<std::string> director_names, actor_names;
  for (const auto* d : doc.root->ChildrenNamed("director")) {
    director_names.insert(d->FirstChildNamed("name")->TextContent());
  }
  for (const auto* a : doc.root->ChildrenNamed("actor")) {
    actor_names.insert(a->FirstChildNamed("name")->TextContent());
  }
  int overlap = 0;
  for (const auto& name : actor_names) overlap += director_names.count(name);
  EXPECT_GT(overlap, 0);
}

}  // namespace
}  // namespace legodb::imdb
