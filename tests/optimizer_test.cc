// Unit tests for the relational optimizer: cardinality estimation, access
// path selection, join ordering and method choice, and cost-model
// monotonicity properties — over hand-built synthetic catalogs.
#include <gtest/gtest.h>

#include "optimizer/optimizer.h"
#include "relational/catalog.h"

namespace legodb::opt {
namespace {

rel::Column Col(const std::string& name, rel::SqlType type, double distincts,
                double null_frac = 0) {
  rel::Column c;
  c.name = name;
  c.type = type;
  c.distincts = distincts;
  c.null_fraction = null_frac;
  c.nullable = null_frac > 0;
  return c;
}

// A two-table parent/child catalog: Parent(10k rows), Child(100k rows) with
// an FK to Parent.
rel::Catalog MakeCatalog() {
  rel::Catalog catalog;
  rel::Table parent;
  parent.name = "Parent";
  parent.key_column = "Parent_id";
  parent.row_count = 10000;
  parent.columns = {Col("Parent_id", rel::SqlType::Int(), 10000),
                    Col("name", rel::SqlType::Char(40), 10000),
                    Col("kind", rel::SqlType::Char(8), 4)};
  catalog.AddTable(parent);

  rel::Table child;
  child.name = "Child";
  child.key_column = "Child_id";
  child.row_count = 100000;
  child.columns = {Col("Child_id", rel::SqlType::Int(), 100000),
                   Col("value", rel::SqlType::Char(100), 50000),
                   Col("parent_Parent", rel::SqlType::Int(), 10000)};
  child.foreign_keys = {rel::ForeignKey{"parent_Parent", "Parent"}};
  catalog.AddTable(child);
  return catalog;
}

QueryBlock ScanBlock(const std::string& table) {
  QueryBlock b;
  b.rels.push_back(BaseRel{table, table});
  b.output.push_back(ColumnRef{0, table + "_id", ""});
  return b;
}

TEST(Optimizer, SeqScanForUnfilteredTable) {
  rel::Catalog catalog = MakeCatalog();
  Optimizer opt(catalog);
  auto planned = opt.PlanBlock(ScanBlock("Parent"));
  ASSERT_TRUE(planned.ok()) << planned.status().ToString();
  EXPECT_EQ(planned->plan->child->kind, PhysicalPlan::Kind::kSeqScan);
  EXPECT_NEAR(planned->rows, 10000, 1);
}

TEST(Optimizer, KeyLookupUsesIndex) {
  rel::Catalog catalog = MakeCatalog();
  Optimizer opt(catalog);
  QueryBlock b = ScanBlock("Parent");
  b.filters.push_back(FilterPred{0, "Parent_id", xq::CompareOp::kEq, xq::Constant::Int(5)});
  auto planned = opt.PlanBlock(b);
  ASSERT_TRUE(planned.ok());
  EXPECT_EQ(planned->plan->child->kind, PhysicalPlan::Kind::kIndexLookup);
  EXPECT_NEAR(planned->rows, 1, 0.01);
}

TEST(Optimizer, NonIndexedFilterScansByDefault) {
  rel::Catalog catalog = MakeCatalog();
  Optimizer opt(catalog);
  QueryBlock b = ScanBlock("Parent");
  b.filters.push_back(FilterPred{0, "name", xq::CompareOp::kEq, xq::Constant::Symbol("c1")});
  auto planned = opt.PlanBlock(b);
  ASSERT_TRUE(planned.ok());
  EXPECT_EQ(planned->plan->child->kind, PhysicalPlan::Kind::kSeqScan);
}

TEST(Optimizer, PredicateIndexOptionEnablesLookup) {
  rel::Catalog catalog = MakeCatalog();
  CostParams params;
  params.index_on_predicates = true;
  Optimizer opt(catalog, params);
  QueryBlock b = ScanBlock("Parent");
  b.filters.push_back(FilterPred{0, "name", xq::CompareOp::kEq, xq::Constant::Symbol("c1")});
  auto planned = opt.PlanBlock(b);
  ASSERT_TRUE(planned.ok());
  EXPECT_EQ(planned->plan->child->kind, PhysicalPlan::Kind::kIndexLookup);
}

TEST(Optimizer, SelectivityReducesCardinality) {
  rel::Catalog catalog = MakeCatalog();
  Optimizer opt(catalog);
  QueryBlock b = ScanBlock("Parent");
  b.filters.push_back(FilterPred{0, "kind", xq::CompareOp::kEq, xq::Constant::Symbol("c1")});
  auto planned = opt.PlanBlock(b);
  ASSERT_TRUE(planned.ok());
  EXPECT_NEAR(planned->rows, 10000.0 / 4, 1);  // 4 distinct kinds
}

TEST(Optimizer, NotNullSelectivityUsesNullFraction) {
  rel::Catalog catalog;
  rel::Table t;
  t.name = "T";
  t.key_column = "T_id";
  t.row_count = 1000;
  t.columns = {Col("T_id", rel::SqlType::Int(), 1000),
               Col("opt", rel::SqlType::Char(10), 100, /*null_frac=*/0.75)};
  catalog.AddTable(t);
  Optimizer opt(catalog);
  QueryBlock b = ScanBlock("T");
  FilterPred f{0, "opt", xq::CompareOp::kEq, xq::Constant::Symbol("_"), /*not_null=*/true};
  b.filters.push_back(f);
  auto planned = opt.PlanBlock(b);
  ASSERT_TRUE(planned.ok());
  EXPECT_NEAR(planned->rows, 250, 1);
}

QueryBlock JoinBlock() {
  QueryBlock b;
  b.rels.push_back(BaseRel{"Parent", "p"});
  b.rels.push_back(BaseRel{"Child", "c"});
  b.joins.push_back(JoinEdge{0, "Parent_id", 1, "parent_Parent", false});
  b.output.push_back(ColumnRef{1, "value", ""});
  return b;
}

TEST(Optimizer, FkJoinCardinalityIsChildCount) {
  rel::Catalog catalog = MakeCatalog();
  Optimizer opt(catalog);
  auto planned = opt.PlanBlock(JoinBlock());
  ASSERT_TRUE(planned.ok());
  EXPECT_NEAR(planned->rows, 100000, 100);
}

TEST(Optimizer, SelectiveJoinPrefersIndexNestedLoops) {
  rel::Catalog catalog = MakeCatalog();
  Optimizer opt(catalog);
  QueryBlock b = JoinBlock();
  b.filters.push_back(FilterPred{0, "Parent_id", xq::CompareOp::kEq, xq::Constant::Int(7)});
  auto planned = opt.PlanBlock(b);
  ASSERT_TRUE(planned.ok());
  // One parent row drives probes into the child's FK index.
  EXPECT_EQ(planned->plan->child->kind, PhysicalPlan::Kind::kIndexNLJoin);
  EXPECT_NEAR(planned->rows, 10, 0.5);
}

TEST(Optimizer, UnselectiveJoinPrefersHashJoin) {
  rel::Catalog catalog = MakeCatalog();
  Optimizer opt(catalog);
  auto planned = opt.PlanBlock(JoinBlock());
  ASSERT_TRUE(planned.ok());
  EXPECT_EQ(planned->plan->child->kind, PhysicalPlan::Kind::kHashJoin);
}

TEST(Optimizer, LeftOuterJoinCardinalityAtLeastOuter) {
  rel::Catalog catalog = MakeCatalog();
  Optimizer opt(catalog);
  QueryBlock b;
  b.rels.push_back(BaseRel{"Child", "c"});
  b.rels.push_back(BaseRel{"Parent", "p"});
  // Left-outer from Child to a filtered Parent: every child row survives...
  b.joins.push_back(JoinEdge{0, "parent_Parent", 1, "Parent_id", true});
  b.output.push_back(ColumnRef{0, "value", ""});
  auto planned = opt.PlanBlock(b);
  ASSERT_TRUE(planned.ok());
  EXPECT_GE(planned->rows, 100000 * 0.99);
}

TEST(Optimizer, CostGrowsWithTableSize) {
  double costs[2] = {0, 0};
  double scales[2] = {1.0, 10.0};
  for (int i = 0; i < 2; ++i) {
    rel::Catalog catalog;
    rel::Table t;
    t.name = "T";
    t.key_column = "T_id";
    t.row_count = 1000 * scales[i];
    t.columns = {Col("T_id", rel::SqlType::Int(), t.row_count),
                 Col("x", rel::SqlType::Char(50), t.row_count)};
    catalog.AddTable(t);
    Optimizer opt(catalog);
    auto planned = opt.PlanBlock(ScanBlock("T"));
    ASSERT_TRUE(planned.ok());
    costs[i] = planned->cost;
  }
  EXPECT_GT(costs[1], costs[0] * 5);
}

TEST(Optimizer, FiveWayChainJoinPlans) {
  // A -> B -> C -> D -> E chain; DP must find a connected order.
  rel::Catalog catalog;
  std::string prev;
  for (const char* name : {"A", "B", "C", "D", "E"}) {
    rel::Table t;
    t.name = name;
    t.key_column = std::string(name) + "_id";
    t.row_count = 1000;
    t.columns = {Col(t.key_column, rel::SqlType::Int(), 1000)};
    if (!prev.empty()) {
      t.columns.push_back(
          Col("parent_" + prev, rel::SqlType::Int(), 1000));
      t.foreign_keys = {rel::ForeignKey{"parent_" + prev, prev}};
    }
    catalog.AddTable(t);
    prev = name;
  }
  QueryBlock b;
  for (int i = 0; i < 5; ++i) {
    std::string name(1, static_cast<char>('A' + i));
    b.rels.push_back(BaseRel{name, name});
    if (i > 0) {
      std::string parent(1, static_cast<char>('A' + i - 1));
      b.joins.push_back(
          JoinEdge{i - 1, parent + "_id", i, "parent_" + parent, false});
    }
  }
  b.output.push_back(ColumnRef{4, "E_id", ""});
  Optimizer opt(catalog);
  auto planned = opt.PlanBlock(b);
  ASSERT_TRUE(planned.ok()) << planned.status().ToString();
  EXPECT_GT(planned->cost, 0);
  EXPECT_NEAR(planned->rows, 1000, 10);
}

TEST(Optimizer, GreedyKicksInAboveDpLimit) {
  // 14 tables in a chain with dp_rel_limit 4 exercises the greedy path.
  rel::Catalog catalog;
  QueryBlock b;
  std::string prev;
  for (int i = 0; i < 14; ++i) {
    std::string name = "T" + std::to_string(i);
    rel::Table t;
    t.name = name;
    t.key_column = name + "_id";
    t.row_count = 100;
    t.columns = {Col(t.key_column, rel::SqlType::Int(), 100)};
    if (!prev.empty()) {
      t.columns.push_back(Col("parent_" + prev, rel::SqlType::Int(), 100));
      t.foreign_keys = {rel::ForeignKey{"parent_" + prev, prev}};
    }
    catalog.AddTable(t);
    b.rels.push_back(BaseRel{name, name});
    if (i > 0) {
      b.joins.push_back(
          JoinEdge{i - 1, prev + "_id", i, "parent_" + prev, false});
    }
    prev = name;
  }
  b.output.push_back(ColumnRef{0, "T0_id", ""});
  CostParams params;
  params.dp_rel_limit = 4;
  Optimizer opt(catalog, params);
  auto planned = opt.PlanBlock(b);
  ASSERT_TRUE(planned.ok()) << planned.status().ToString();
  EXPECT_GT(planned->cost, 0);
}

TEST(Optimizer, EmptyBlockRejected) {
  rel::Catalog catalog = MakeCatalog();
  Optimizer opt(catalog);
  EXPECT_FALSE(opt.PlanBlock(QueryBlock{}).ok());
}

TEST(Optimizer, UnknownTableRejected) {
  rel::Catalog catalog = MakeCatalog();
  Optimizer opt(catalog);
  EXPECT_FALSE(opt.PlanBlock(ScanBlock("Nope")).ok());
}

TEST(Optimizer, PlanQuerySumsBlockCosts) {
  rel::Catalog catalog = MakeCatalog();
  Optimizer opt(catalog);
  RelQuery q;
  q.blocks.push_back(ScanBlock("Parent"));
  q.blocks.push_back(ScanBlock("Child"));
  auto planned = opt.PlanQuery(q);
  ASSERT_TRUE(planned.ok());
  EXPECT_EQ(planned->blocks.size(), 2u);
  EXPECT_NEAR(planned->total_cost,
              planned->blocks[0].cost + planned->blocks[1].cost, 1e-6);
}

TEST(Optimizer, WiderOutputCostsMore) {
  rel::Catalog catalog = MakeCatalog();
  Optimizer opt(catalog);
  QueryBlock narrow = ScanBlock("Child");
  QueryBlock wide = ScanBlock("Child");
  wide.output.push_back(ColumnRef{0, "value", ""});
  auto p_narrow = opt.PlanBlock(narrow);
  auto p_wide = opt.PlanBlock(wide);
  ASSERT_TRUE(p_narrow.ok());
  ASSERT_TRUE(p_wide.ok());
  EXPECT_GT(p_wide->cost, p_narrow->cost);
}

TEST(Optimizer, PlanToStringRendersTree) {
  rel::Catalog catalog = MakeCatalog();
  Optimizer opt(catalog);
  QueryBlock b = JoinBlock();
  auto planned = opt.PlanBlock(b);
  ASSERT_TRUE(planned.ok());
  std::string s = planned->plan->ToString(b);
  EXPECT_NE(s.find("Project"), std::string::npos);
  EXPECT_NE(s.find("HashJoin"), std::string::npos);
}

TEST(QueryBlockSql, RendersSelectFromWhere) {
  QueryBlock b = JoinBlock();
  b.filters.push_back(FilterPred{0, "name", xq::CompareOp::kEq, xq::Constant::Symbol("c1")});
  std::string sql = b.ToSql();
  EXPECT_NE(sql.find("SELECT c.value"), std::string::npos);
  EXPECT_NE(sql.find("FROM Parent p, Child c"), std::string::npos);
  EXPECT_NE(sql.find("p.Parent_id = c.parent_Parent"), std::string::npos);
  EXPECT_NE(sql.find("p.name = c1"), std::string::npos);
}

}  // namespace
}  // namespace legodb::opt
