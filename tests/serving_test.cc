// Unit and concurrency tests for the serving layer: lexical
// canonicalization (literal -> parameter extraction, fingerprint sharing,
// collision resistance), the sharded LRU plan cache (hits, eviction at
// capacity, fingerprint-collision downgrade), admission control and
// request budgets, the cache-path failpoint, and bit-identical results
// cached vs. uncached under 8-thread concurrent serving (the test the
// --tsan runner leans on).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "common/hash.h"
#include "engine/executor.h"
#include "mapping/mapping.h"
#include "obs/obs.h"
#include "optimizer/optimizer.h"
#include "pschema/pschema.h"
#include "serving/canonicalize.h"
#include "serving/plan_cache.h"
#include "serving/retry.h"
#include "serving/server.h"
#include "storage/db_registry.h"
#include "storage/shredder.h"
#include "translate/translate.h"
#include "xml/parser.h"
#include "xquery/parser.h"
#include "xschema/schema_parser.h"

namespace legodb::serving {
namespace {

// --- Canonicalization ------------------------------------------------------

TEST(Canonicalize, ComparisonLiteralsBecomeParameters) {
  CanonicalQuery a = Canonicalize(
      "FOR $v IN document(\"d\")/p/c WHERE $v/name = \"alpha\" "
      "RETURN $v/name");
  CanonicalQuery b = Canonicalize(
      "FOR $v IN document(\"d\")/p/c WHERE $v/name = \"omega\" "
      "RETURN $v/name");
  EXPECT_EQ(a.text, b.text);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  ASSERT_EQ(a.bindings.size(), 1u);
  ASSERT_EQ(b.bindings.size(), 1u);
  EXPECT_EQ(a.bindings.begin()->second, Value::Str("alpha"));
  EXPECT_EQ(b.bindings.begin()->second, Value::Str("omega"));
}

TEST(Canonicalize, NumberLiteralsAfterRangeOps) {
  CanonicalQuery a = Canonicalize(
      "FOR $v IN document(\"d\")/p/c WHERE $v/size > 10 RETURN $v/name");
  CanonicalQuery b = Canonicalize(
      "FOR $v IN document(\"d\")/p/c WHERE $v/size > 250 RETURN $v/name");
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  ASSERT_EQ(a.bindings.size(), 1u);
  EXPECT_EQ(a.bindings.begin()->second, Value::Int(10));
  EXPECT_EQ(b.bindings.begin()->second, Value::Int(250));
}

TEST(Canonicalize, DocumentNameStaysLiteral) {
  // The document("...") string follows "(" — not a comparison position — so
  // it must survive canonicalization verbatim and produce no binding.
  CanonicalQuery c =
      Canonicalize("FOR $v IN document(\"d\")/p/c RETURN $v/name");
  EXPECT_NE(c.text.find("\"d\""), std::string::npos);
  EXPECT_TRUE(c.bindings.empty());
}

TEST(Canonicalize, SymbolicParamsAreIdentity) {
  CanonicalQuery c = Canonicalize(
      "FOR $v IN document(\"d\")/p/c WHERE $v/name = c1 RETURN $v/name");
  EXPECT_TRUE(c.bindings.empty());
  EXPECT_NE(c.text.find("c1"), std::string::npos);
}

TEST(Canonicalize, FingerprintCollisionResistance) {
  // 1000 structurally distinct parameterized queries must all land on
  // distinct fingerprints (and literal variants of each must not add any).
  std::set<uint64_t> fps;
  size_t n = 0;
  for (int v = 0; v < 250; ++v) {
    for (const char* col : {"name", "size"}) {
      for (const char* op : {"=", "<"}) {
        std::string text = "FOR $v" + std::to_string(v) +
                           " IN document(\"d\")/p/c WHERE $v" +
                           std::to_string(v) + "/" + col + " " + op +
                           " \"k\" RETURN $v" + std::to_string(v) + "/" + col;
        fps.insert(Canonicalize(text).fingerprint);
        ++n;
        // A different literal must NOT mint a new fingerprint.
        std::string variant = text;
        variant.replace(variant.find("\"k\""), 3, "\"other\"");
        fps.insert(Canonicalize(variant).fingerprint);
      }
    }
  }
  EXPECT_EQ(fps.size(), n);
}

// --- Plan cache ------------------------------------------------------------

std::shared_ptr<const PreparedPlan> DummyPlan(const std::string& text) {
  auto plan = std::make_shared<PreparedPlan>();
  plan->canonical_text = text;
  plan->fingerprint = common::HashString(text);
  return plan;
}

TEST(PlanCache, HitMissAndLruEvictionAtCapacity) {
  PlanCache cache(/*shards=*/1, /*capacity_per_shard=*/2);
  auto a = DummyPlan("a"), b = DummyPlan("b"), c = DummyPlan("c");
  EXPECT_EQ(cache.Find(a->fingerprint, "a", 0), nullptr);
  cache.Insert(a);
  cache.Insert(b);
  EXPECT_NE(cache.Find(a->fingerprint, "a", 0), nullptr);  // a now MRU
  cache.Insert(c);                                      // evicts b (LRU)
  EXPECT_EQ(cache.Find(b->fingerprint, "b", 0), nullptr);
  EXPECT_NE(cache.Find(a->fingerprint, "a", 0), nullptr);
  EXPECT_NE(cache.Find(c->fingerprint, "c", 0), nullptr);

  PlanCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.evictions, 1);
  EXPECT_EQ(stats.hits, 3);
  EXPECT_EQ(stats.misses, 2);
}

TEST(PlanCache, FingerprintCollisionDegradesToMiss) {
  PlanCache cache(4, 4);
  auto a = DummyPlan("a");
  cache.Insert(a);
  // Same fingerprint, different canonical text: must not serve a's plan.
  EXPECT_EQ(cache.Find(a->fingerprint, "not-a", 0), nullptr);
  PlanCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.collisions, 1);
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.hits, 0);
}

TEST(PlanCache, ReinsertReplacesWithoutGrowth) {
  PlanCache cache(1, 4);
  cache.Insert(DummyPlan("a"));
  cache.Insert(DummyPlan("a"));
  PlanCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.evictions, 0);
}

// --- Admission control -----------------------------------------------------

TEST(AdmissionController, BoundsInflightRequests) {
  AdmissionController ac(2);
  EXPECT_TRUE(ac.TryAdmit());
  EXPECT_TRUE(ac.TryAdmit());
  EXPECT_FALSE(ac.TryAdmit());
  EXPECT_EQ(ac.inflight(), 2u);
  ac.Release();
  EXPECT_TRUE(ac.TryAdmit());
  ac.Release();
  ac.Release();
  EXPECT_EQ(ac.inflight(), 0u);
}

TEST(AdmissionController, ZeroMeansUnboundedButCounted) {
  AdmissionController ac(0);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(ac.TryAdmit());
  EXPECT_EQ(ac.inflight(), 100u);
}

#ifndef NDEBUG
TEST(AdmissionControllerDeathTest, ReleaseWithoutAdmitIsCaught) {
  // An unpaired Release would wrap the unsigned in-flight counter and
  // silently disable admission control; the DCHECK must trip instead.
  AdmissionController ac(2);
  EXPECT_DEATH(ac.Release(), "Release without admit");
}
#endif

// --- Retry policy ----------------------------------------------------------

TEST(RetryPolicy, BackoffIsDeterministicJitteredAndCapped) {
  RetryPolicy policy;
  policy.seed = 42;
  double nominal = policy.initial_backoff_ms;
  for (int attempt = 0; attempt < 12; ++attempt) {
    double capped = std::min(nominal, policy.max_backoff_ms);
    double b = BackoffMs(policy, attempt);
    // Jitter factor lives in [0.5, 1.0) of the capped nominal backoff.
    EXPECT_GE(b, 0.5 * capped) << attempt;
    EXPECT_LT(b, capped) << attempt;
    // Pure function of (policy, attempt): replays bit-for-bit.
    EXPECT_EQ(b, BackoffMs(policy, attempt)) << attempt;
    nominal *= policy.backoff_multiplier;
  }
  // A different seed decorrelates the schedule.
  RetryPolicy other = policy;
  other.seed = 43;
  bool any_differ = false;
  for (int attempt = 0; attempt < 12; ++attempt) {
    any_differ |= BackoffMs(policy, attempt) != BackoffMs(other, attempt);
  }
  EXPECT_TRUE(any_differ);
}

// --- End-to-end serving ----------------------------------------------------

// Fixture: Parent/Child tables shredded from a generated document, plus an
// uncached reference path (fresh parse/translate/optimize/execute).
class ServingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto schema = xs::ParseSchema(
        "type P = p[ C* ] "
        "type C = c[ name[ String ], size[ Integer ]? ]");
    ASSERT_TRUE(schema.ok());
    auto mapping = map::MapSchema(ps::Normalize(schema.value()));
    ASSERT_TRUE(mapping.ok()) << mapping.status().ToString();
    mapping_ = std::make_unique<map::Mapping>(std::move(mapping).value());
    db_ = std::make_unique<store::Database>(mapping_->catalog());
    std::string text = "<p>";
    for (int i = 0; i < 200; ++i) {
      text += "<c><name>n" + std::to_string(i % 40) + "</name><size>" +
              std::to_string(i) + "</size></c>";
    }
    text += "</p>";
    auto doc = xml::ParseDocument(text);
    ASSERT_TRUE(doc.ok());
    ASSERT_TRUE(store::ShredDocument(doc.value(), *mapping_, db_.get()).ok());
  }

  std::unique_ptr<QueryServer> MakeServer(ServerOptions options = {}) {
    auto server =
        std::make_unique<QueryServer>(db_.get(), mapping_.get(), options);
    EXPECT_TRUE(server->Prewarm().ok());
    return server;
  }

  xq::ResultSet Uncached(const std::string& text,
                         const std::map<std::string, Value>& params = {}) {
    auto q = xq::ParseQuery(text);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    auto rq = xlat::TranslateQuery(q.value(), *mapping_);
    EXPECT_TRUE(rq.ok()) << rq.status().ToString();
    opt::Optimizer optimizer(mapping_->catalog());
    auto planned = optimizer.PlanQuery(rq.value());
    EXPECT_TRUE(planned.ok()) << planned.status().ToString();
    std::vector<opt::PhysicalPlanPtr> plans;
    for (const auto& b : planned->blocks) plans.push_back(b.plan);
    engine::Executor exec(db_.get(), params);
    auto result = exec.ExecuteQuery(rq.value(), plans);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return std::move(result).value();
  }

  std::unique_ptr<map::Mapping> mapping_;
  std::unique_ptr<store::Database> db_;
};

TEST_F(ServingTest, HitSkipsFrontEndAndMatchesUncached) {
  auto server = MakeServer();
  const std::string q =
      "FOR $v IN document(\"d\")/p/c WHERE $v/name = \"n7\" RETURN $v/size";
  xq::ResultSet expected = Uncached(q);
  ASSERT_FALSE(expected.rows.empty());

  auto miss = server->Serve(q);
  ASSERT_TRUE(miss.ok()) << miss.status().ToString();
  EXPECT_FALSE(miss->cache_hit);
  EXPECT_TRUE(miss->result.rows == expected.rows);

  auto hit = server->Serve(q);
  ASSERT_TRUE(hit.ok()) << hit.status().ToString();
  EXPECT_TRUE(hit->cache_hit);
  EXPECT_TRUE(hit->result.rows == expected.rows);

  PlanCache::Stats stats = server->CacheStats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 1);
}

TEST_F(ServingTest, LiteralVariantsShareOneCachedPlan) {
  auto server = MakeServer();
  for (const char* name : {"n1", "n2", "n3", "n17"}) {
    std::string q = "FOR $v IN document(\"d\")/p/c WHERE $v/name = \"" +
                    std::string(name) + "\" RETURN $v/size";
    auto response = server->Serve(q);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_TRUE(response->result.rows == Uncached(q).rows);
  }
  PlanCache::Stats stats = server->CacheStats();
  EXPECT_EQ(stats.misses, 1);  // first literal compiled the shared entry
  EXPECT_EQ(stats.hits, 3);
  EXPECT_EQ(stats.entries, 1u);
}

TEST_F(ServingTest, SymbolicParamsBindPerRequest) {
  auto server = MakeServer();
  const std::string q =
      "FOR $v IN document(\"d\")/p/c WHERE $v/name = c1 RETURN $v/size";
  for (const char* name : {"n5", "n9"}) {
    RequestOptions request;
    request.params = {{"c1", Value::Str(name)}};
    auto response = server->Serve(q, request);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_TRUE(response->result.rows == Uncached(q, request.params).rows);
    ASSERT_FALSE(response->result.rows.empty());
  }
  EXPECT_EQ(server->CacheStats().hits, 1);
}

TEST_F(ServingTest, UnboundParameterIsGracefullyRejected) {
  auto server = MakeServer();
  const std::string q =
      "FOR $v IN document(\"d\")/p/c WHERE $v/name = c1 RETURN $v/size";
  auto response = server->Serve(q);  // no c1 binding
  ASSERT_FALSE(response.ok());
  EXPECT_NE(response.status().message().find("unbound query parameter"),
            std::string::npos)
      << response.status().ToString();
  // And the cached entry (the miss still compiled one) serves a bound
  // request fine afterwards.
  RequestOptions request;
  request.params = {{"c1", Value::Str("n5")}};
  EXPECT_TRUE(server->Serve(q, request).ok());
}

TEST_F(ServingTest, RequestBudgetDeadline) {
  ServerOptions options;
  options.request_budget_ms = 1e-9;  // expires before execution starts
  auto server = MakeServer(options);
  const std::string q =
      "FOR $v IN document(\"d\")/p/c RETURN $v/name";
  auto response = server->Serve(q);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), Status::Code::kDeadlineExceeded);
  // A per-request override of 0 disables the deadline.
  RequestOptions request;
  request.budget_ms = 0;
  EXPECT_TRUE(server->Serve(q, request).ok());
}

TEST_F(ServingTest, CacheLookupFailpoint) {
  auto server = MakeServer();
  const std::string q =
      "FOR $v IN document(\"d\")/p/c RETURN $v/name";
  {
    fp::ScopedFailpoints failpoints("serving.cache_lookup");
    ASSERT_TRUE(failpoints.status().ok());
    auto response = server->Serve(q);
    ASSERT_FALSE(response.ok());
    EXPECT_EQ(response.status().code(), Status::Code::kInternal);
  }
  EXPECT_TRUE(server->Serve(q).ok());  // disarmed: back to normal
}

TEST_F(ServingTest, OverloadedServerRejectsGracefully) {
  ServerOptions options;
  options.max_inflight = 1;
  auto server = MakeServer(options);
  const std::string q =
      "FOR $v IN document(\"d\")/p/c RETURN $v/name";
  ASSERT_TRUE(server->Serve(q).ok());  // warm the cache serially
  std::atomic<int> ok{0}, overloaded{0}, other{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 50; ++i) {
        auto response = server->Serve(q);
        if (response.ok()) {
          ++ok;
        } else if (response.status().code() == Status::Code::kUnavailable) {
          ++overloaded;
        } else {
          ++other;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  // Every request either succeeded or was shed with Unavailable — nothing
  // crashed, hung, or failed with an unexpected code.
  EXPECT_EQ(ok + overloaded, 400);
  EXPECT_EQ(other, 0);
  EXPECT_GT(ok, 0);
  EXPECT_EQ(server->inflight(), 0u);
}

TEST_F(ServingTest, ConcurrentServingIsBitIdentical) {
  auto server = MakeServer();
  struct Case {
    std::string text;
    std::map<std::string, Value> params;
  };
  std::vector<Case> cases = {
      {"FOR $v IN document(\"d\")/p/c WHERE $v/name = \"n3\" "
       "RETURN $v/size",
       {}},
      {"FOR $v IN document(\"d\")/p/c WHERE $v/name = \"n21\" "
       "RETURN $v/size",
       {}},
      {"FOR $v IN document(\"d\")/p/c WHERE $v/name = c1 RETURN $v/size",
       {{"c1", Value::Str("n11")}}},
      {"FOR $v IN document(\"d\")/p/c RETURN $v/name", {}},
  };
  std::vector<xq::ResultSet> expected;
  for (const Case& c : cases) expected.push_back(Uncached(c.text, c.params));

  std::atomic<int> mismatches{0}, failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 50; ++i) {
        size_t k = static_cast<size_t>(t + i) % cases.size();
        RequestOptions request;
        request.params = cases[k].params;
        auto response = server->Serve(cases[k].text, request);
        if (!response.ok()) {
          ++failures;
        } else if (!(response->result.rows == expected[k].rows)) {
          ++mismatches;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures, 0);
  EXPECT_EQ(mismatches, 0);
  PlanCache::Stats stats = server->CacheStats();
  EXPECT_EQ(stats.collisions, 0);
  EXPECT_GT(stats.HitRate(), 0.9);
}

TEST_F(ServingTest, PrewarmBuildsColumnShadows) {
  // PrewarmColumns is what QueryServer::Prewarm runs; standalone it must be
  // idempotent and OK on a loaded database.
  EXPECT_TRUE(db_->PrewarmColumns().ok());
  EXPECT_TRUE(db_->PrewarmColumns().ok());
}

// --- Generations and cancellation ------------------------------------------

TEST_F(ServingTest, StalePlanCacheHitRecompilesAfterPublish) {
  // Wrap the fixture database in a registry so a new generation can be
  // published underneath the server (the same physical data is fine: the
  // point is the generation tag, not the layout).
  std::shared_ptr<const map::Mapping> mapping(mapping_.get(),
                                              [](const map::Mapping*) {});
  std::shared_ptr<store::Database> db(db_.get(), [](store::Database*) {});
  store::DbRegistry registry(mapping, db);
  QueryServer server(&registry);
  ASSERT_TRUE(server.Prewarm().ok());

  const std::string q =
      "FOR $v IN document(\"d\")/p/c WHERE $v/name = \"n7\" RETURN $v/size";
  xq::ResultSet expected = Uncached(q);

  auto miss = server.Serve(q);
  ASSERT_TRUE(miss.ok());
  EXPECT_FALSE(miss->cache_hit);
  EXPECT_EQ(miss->generation, 1u);

  auto hit = server.Serve(q);
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit->cache_hit);

  registry.Publish(mapping, db);  // generation 1 -> 2

  // The cached plan was compiled against generation 1: the lookup must
  // degrade to a stale miss + recompile, never serve the old plan.
  auto stale = server.Serve(q);
  ASSERT_TRUE(stale.ok()) << stale.status().ToString();
  EXPECT_FALSE(stale->cache_hit);
  EXPECT_EQ(stale->generation, 2u);
  EXPECT_TRUE(stale->result.rows == expected.rows);
  PlanCache::Stats stats = server.CacheStats();
  EXPECT_EQ(stats.stale, 1);
  EXPECT_EQ(stats.misses, 2);

  // The recompiled entry is a first-class hit at the new generation.
  auto rehit = server.Serve(q);
  ASSERT_TRUE(rehit.ok());
  EXPECT_TRUE(rehit->cache_hit);
  EXPECT_EQ(rehit->generation, 2u);
}

TEST_F(ServingTest, PreCancelledTokenIsRejectedBeforeExecution) {
  auto server = MakeServer();
  const std::string q = "FOR $v IN document(\"d\")/p/c RETURN $v/name";
  ASSERT_TRUE(server->Serve(q).ok());  // warm the cache

  common::CancelToken token;
  token.Cancel();
  RequestOptions request;
  request.cancel = &token;
  auto response = server->Serve(q, request);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), Status::Code::kCancelled);
  EXPECT_NE(response.status().message().find("before execution"),
            std::string::npos)
      << response.status().ToString();
  EXPECT_EQ(server->inflight(), 0u);  // the admission slot was released

  // A fresh (uncancelled) token serves normally.
  common::CancelToken fresh;
  request.cancel = &fresh;
  EXPECT_TRUE(server->Serve(q, request).ok());
}

TEST_F(ServingTest, ServeWithRetryPassesThroughTerminalOutcomes) {
  auto server = MakeServer();
  const std::string q = "FOR $v IN document(\"d\")/p/c RETURN $v/name";
  RetryPolicy policy;
  RetryStats stats;

  // Immediate success: one attempt, no sleeping.
  auto response = ServeWithRetry(server.get(), q, {}, policy, &stats);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(stats.attempts, 1);
  EXPECT_EQ(stats.retries, 0);
  EXPECT_EQ(stats.backoff_ms, 0);

  // Non-retryable failure (Internal from the cache failpoint): returned
  // immediately, no retries burned.
  fp::ScopedFailpoints failpoints("serving.cache_lookup=1+");
  ASSERT_TRUE(failpoints.status().ok());
  stats = RetryStats();
  response = ServeWithRetry(server.get(), q, {}, policy, &stats);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), Status::Code::kInternal);
  EXPECT_EQ(stats.attempts, 1);
  EXPECT_EQ(stats.retries, 0);
}

TEST_F(ServingTest, ServeWithRetryHonorsOneAbsoluteDeadline) {
  ServerOptions options;
  options.max_inflight = 1;
  auto server = MakeServer(options);
  const std::string q = "FOR $v IN document(\"d\")/p/c RETURN $v/name";
  ASSERT_TRUE(server->Serve(q).ok());  // warm the cache serially

  // Occupy the only admission slot for the whole test so every attempt is
  // shed with Unavailable — the retryable outcome.
  ASSERT_TRUE(server->admission_for_test().TryAdmit());

  // The budget, not the attempt count, must stop the loop. The old loop
  // re-derived the deadline from budget_ms on every attempt (restarting the
  // clock) and slept full backoffs even when the budget could not survive
  // them, so this configuration retried for minutes.
  RetryPolicy policy;
  policy.max_attempts = 1000000;
  policy.initial_backoff_ms = 5.0;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_ms = 1000.0;
  RetryStats stats;
  RequestOptions request;
  request.budget_ms = 20;  // one absolute deadline across ALL attempts
  int64_t start_ns = obs::NowNanos();
  auto response = ServeWithRetry(server.get(), q, request, policy, &stats);
  double elapsed_ms = (obs::NowNanos() - start_ns) / 1e6;
  server->admission_for_test().Release();

  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), Status::Code::kDeadlineExceeded);
  // Generous wall-clock bound: the 20 ms budget plus scheduler slack. The
  // broken loop needed max_attempts * backoff, far beyond this.
  EXPECT_LT(elapsed_ms, 2000.0);
  // The loop never sleeps past the deadline, so total backoff stays under
  // the budget (jitter included).
  EXPECT_LT(stats.backoff_ms, 40.0);
  EXPECT_GE(stats.attempts, 1);

  // With the slot free again the same request succeeds within its budget.
  auto ok = ServeWithRetry(server.get(), q, request, policy, &stats);
  EXPECT_TRUE(ok.ok()) << ok.status().ToString();
}

TEST_F(ServingTest, PreparedPlanStalenessIsDetectedAfterTableMutation) {
  auto server = MakeServer();
  const std::string q =
      "FOR $v IN document(\"d\")/p/c WHERE $v/name = \"n7\" RETURN $v/size";
  ASSERT_TRUE(server->Serve(q).ok());  // compiles + caches the prepared plan

  // Mutate the backing table out from under the cached prepared programs:
  // Insert clears the index/column registries, dangling the resolved
  // pointers the prepared state holds.
  store::StoredTable& table = db_->GetTable("C");
  auto row = table.ReadRow(0);
  ASSERT_TRUE(row.ok());
  ASSERT_TRUE(table.Insert(std::move(row).value()).ok());

  // The executor must refuse the stale prepared state (naming the table)
  // instead of chasing freed pointers.
  auto response = server->Serve(q);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), Status::Code::kInternal);
  EXPECT_NE(
      response.status().message().find("prepared plan is stale: table 'C'"),
      std::string::npos)
      << response.status().ToString();

  // A fresh prepare against the mutated table serves normally.
  auto fresh = MakeServer();
  EXPECT_TRUE(fresh->Serve(q).ok());
}

// --- Deadlines and cancellation during execution ---------------------------

// A table large enough that a vector-at-a-time scan takes comfortably
// longer than the budgets below; vector_size=1 maximizes interrupt-check
// granularity (one check per row).
class SlowScanTest : public ::testing::Test {
 protected:
  static constexpr int kRows = 60000;

  void SetUp() override {
    auto schema = xs::ParseSchema(
        "type P = p[ C* ] "
        "type C = c[ name[ String ], size[ Integer ]? ]");
    ASSERT_TRUE(schema.ok());
    auto mapping = map::MapSchema(ps::Normalize(schema.value()));
    ASSERT_TRUE(mapping.ok());
    mapping_ = std::make_unique<map::Mapping>(std::move(mapping).value());
    db_ = std::make_unique<store::Database>(mapping_->catalog());
    std::string text = "<p>";
    for (int i = 0; i < kRows; ++i) {
      text += "<c><name>n" + std::to_string(i % 997) + "</name><size>" +
              std::to_string(i) + "</size></c>";
    }
    text += "</p>";
    auto doc = xml::ParseDocument(text);
    ASSERT_TRUE(doc.ok());
    ASSERT_TRUE(store::ShredDocument(doc.value(), *mapping_, db_.get()).ok());
    ASSERT_TRUE(db_->PrewarmColumns().ok());
  }

  // The scan query: a selective filter that still visits every row.
  const std::string query_ =
      "FOR $v IN document(\"d\")/p/c WHERE $v/name = \"n13\" RETURN $v/size";

  StatusOr<xq::ResultSet> Execute(const engine::ExecOptions& exec_options) {
    LEGODB_ASSIGN_OR_RETURN(xq::Query q, xq::ParseQuery(query_));
    LEGODB_ASSIGN_OR_RETURN(opt::RelQuery rq,
                            xlat::TranslateQuery(q, *mapping_));
    opt::Optimizer optimizer(mapping_->catalog());
    LEGODB_ASSIGN_OR_RETURN(opt::PlannedQuery planned, optimizer.PlanQuery(rq));
    std::vector<opt::PhysicalPlanPtr> plans;
    for (const auto& b : planned.blocks) plans.push_back(b.plan);
    engine::Executor exec(db_.get(), {}, exec_options);
    return exec.ExecuteQuery(rq, plans);
  }

  std::unique_ptr<map::Mapping> mapping_;
  std::unique_ptr<store::Database> db_;
};

TEST_F(SlowScanTest, ExecutorStopsAtExpiredDeadlineDuringExecution) {
  engine::ExecOptions exec_options;
  exec_options.vector_size = 1;
  exec_options.deadline_ns = obs::NowNanos() - 1;  // already expired
  auto result = Execute(exec_options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), Status::Code::kDeadlineExceeded);
  EXPECT_NE(result.status().message().find("during execution"),
            std::string::npos)
      << result.status().ToString();
  // Without the deadline the same execution completes.
  exec_options.deadline_ns = 0;
  EXPECT_TRUE(Execute(exec_options).ok());
}

TEST_F(SlowScanTest, ExecutorStopsAtCancelledTokenDuringExecution) {
  common::CancelToken token;
  token.Cancel();
  engine::ExecOptions exec_options;
  exec_options.vector_size = 1;
  exec_options.cancel = &token;
  auto result = Execute(exec_options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), Status::Code::kCancelled);
  EXPECT_NE(result.status().message().find("during execution"),
            std::string::npos)
      << result.status().ToString();
}

TEST_F(SlowScanTest, ServeDeadlineFiresDuringExecutionNotBefore) {
  ServerOptions options;
  options.exec.vector_size = 1;  // one interrupt check per row
  QueryServer server(db_.get(), mapping_.get(), options);
  ASSERT_TRUE(server.Prewarm().ok());
  ASSERT_TRUE(server.Serve(query_).ok());  // warm the cache, no deadline

  // On a cache hit the front end is microseconds, so a 0.5 ms budget
  // survives it — but a 60k-row tuple-at-a-time scan cannot finish in
  // 0.5 ms, so the deadline must fire *during* execution.
  RequestOptions request;
  request.budget_ms = 0.5;
  auto response = server.Serve(query_, request);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), Status::Code::kDeadlineExceeded);
  EXPECT_NE(response.status().message().find("during execution"),
            std::string::npos)
      << response.status().ToString();
  EXPECT_EQ(server.inflight(), 0u);
}

TEST_F(SlowScanTest, ServeWithRetryRidesOutTransientOverload) {
  ServerOptions options;
  options.max_inflight = 1;
  options.exec.vector_size = 1;
  QueryServer server(db_.get(), mapping_.get(), options);
  ASSERT_TRUE(server.Prewarm().ok());
  ASSERT_TRUE(server.Serve(query_).ok());  // warm the cache serially

  // One slow request occupies the single admission slot; a retrying
  // client must back off until the slot frees instead of failing.
  std::thread occupant([&] { EXPECT_TRUE(server.Serve(query_).ok()); });
  while (server.inflight() == 0) std::this_thread::yield();

  RetryPolicy policy;
  policy.max_attempts = 4000;  // bounded, but far beyond the occupant's time
  policy.initial_backoff_ms = 0.1;
  policy.backoff_multiplier = 1.0;
  policy.seed = 7;
  RetryStats stats;
  auto response = ServeWithRetry(&server, query_, {}, policy, &stats);
  occupant.join();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_GE(stats.attempts, 1);
  EXPECT_EQ(stats.retries, stats.attempts - 1);
  if (stats.retries > 0) {
    EXPECT_GT(stats.backoff_ms, 0);
  }
  EXPECT_EQ(server.inflight(), 0u);
}

}  // namespace
}  // namespace legodb::serving
