// Unit tests for the XQuery -> relational translation: join derivation,
// union expansion, wildcard tilde predicates, strict-projection NOT NULL
// filters, branch pruning, value joins, and publish block shapes.
#include <gtest/gtest.h>

#include "imdb/imdb.h"
#include "mapping/mapping.h"
#include "pschema/pschema.h"
#include "translate/translate.h"
#include "xquery/parser.h"
#include "xschema/annotate.h"
#include "xschema/schema_parser.h"

namespace legodb::xlat {
namespace {

map::Mapping MapOf(const xs::Schema& pschema) {
  auto mapping = map::MapSchema(pschema);
  EXPECT_TRUE(mapping.ok()) << mapping.status().ToString();
  return std::move(mapping).value();
}

map::Mapping MapText(const char* schema_text) {
  auto schema = xs::ParseSchema(schema_text);
  EXPECT_TRUE(schema.ok()) << schema.status().ToString();
  return MapOf(ps::Normalize(schema.value()));
}

opt::RelQuery Translate(const map::Mapping& m, const char* query_text) {
  auto q = xq::ParseQuery(query_text);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  auto rq = TranslateQuery(q.value(), m);
  EXPECT_TRUE(rq.ok()) << rq.status().ToString();
  return std::move(rq).value();
}

bool SqlContains(const opt::RelQuery& rq, const std::string& needle) {
  return rq.ToSql().find(needle) != std::string::npos;
}

TEST(Translate, InlineColumnAccessNeedsNoJoin) {
  map::Mapping m = MapText("type A = a[ x[ String ] ]");
  opt::RelQuery rq = Translate(
      m, "FOR $v IN document(\"d\")/a RETURN $v/x");
  ASSERT_EQ(rq.blocks.size(), 1u);
  EXPECT_EQ(rq.blocks[0].rels.size(), 1u);
  EXPECT_EQ(rq.blocks[0].output[0].column, "x");
}

TEST(Translate, CrossingTypeRefAddsFkJoin) {
  map::Mapping m =
      MapText("type A = a[ B* ] type B = b[ x[ String ] ]");
  opt::RelQuery rq =
      Translate(m, "FOR $v IN document(\"d\")/a, $b IN $v/b RETURN $b/x");
  ASSERT_EQ(rq.blocks.size(), 1u);
  EXPECT_EQ(rq.blocks[0].rels.size(), 2u);
  ASSERT_EQ(rq.blocks[0].joins.size(), 1u);
  EXPECT_EQ(rq.blocks[0].joins[0].left_column, "A_id");
  EXPECT_EQ(rq.blocks[0].joins[0].right_column, "parent_A");
}

TEST(Translate, PredicateBecomesFilter) {
  map::Mapping m = MapText("type A = a[ x[ String ], y[ Integer ] ]");
  opt::RelQuery rq = Translate(
      m, "FOR $v IN document(\"d\")/a WHERE $v/y = 7 RETURN $v/x");
  ASSERT_EQ(rq.blocks.size(), 1u);
  ASSERT_EQ(rq.blocks[0].filters.size(), 1u);
  EXPECT_EQ(rq.blocks[0].filters[0].column, "y");
  EXPECT_EQ(rq.blocks[0].filters[0].value.int_value, 7);
}

TEST(Translate, NestedInlineContentUsesPrefixedColumn) {
  map::Mapping m =
      MapText("type A = a[ bio[ birthday[ String ] ] ]");
  opt::RelQuery rq = Translate(
      m, "FOR $v IN document(\"d\")/a RETURN $v/bio/birthday");
  EXPECT_EQ(rq.blocks[0].output[0].column, "bio_birthday");
}

TEST(Translate, AttributeStepResolves) {
  map::Mapping m = MapText("type A = a[ @type[ String ], x[ String ] ]");
  opt::RelQuery rq1 =
      Translate(m, "FOR $v IN document(\"d\")/a RETURN $v/@type");
  EXPECT_EQ(rq1.blocks[0].output[0].column, "type");
  // Plain-name fallback, as the paper's Q1 writes $v/type.
  opt::RelQuery rq2 =
      Translate(m, "FOR $v IN document(\"d\")/a RETURN $v/type");
  EXPECT_EQ(rq2.blocks[0].output[0].column, "type");
}

TEST(Translate, UnionBindingExpandsToUnionAll) {
  map::Mapping m = MapText(
      "type R = r[ S* ] type S = (S1 | S2) "
      "type S1 = s[ x[ String ], common[ String ] ] "
      "type S2 = s[ y[ String ], common[ String ] ]");
  opt::RelQuery rq = Translate(
      m, "FOR $v IN document(\"d\")/r/s RETURN $v/common");
  EXPECT_EQ(rq.blocks.size(), 2u);  // one block per alternative
}

TEST(Translate, BranchWithoutPredicatePathIsPruned) {
  map::Mapping m = MapText(
      "type R = r[ S* ] type S = (S1 | S2) "
      "type S1 = s[ x[ String ] ] type S2 = s[ y[ String ] ]");
  opt::RelQuery rq = Translate(
      m, "FOR $v IN document(\"d\")/r/s WHERE $v/x = c1 RETURN $v/x");
  ASSERT_EQ(rq.blocks.size(), 1u);
  EXPECT_EQ(rq.blocks[0].rels[1].table, "S1");
}

TEST(Translate, BranchWithoutReturnPathIsPruned) {
  map::Mapping m = MapText(
      "type R = r[ S* ] type S = (S1 | S2) "
      "type S1 = s[ x[ String ] ] type S2 = s[ y[ String ] ]");
  opt::RelQuery rq =
      Translate(m, "FOR $v IN document(\"d\")/r/s RETURN $v/y");
  ASSERT_EQ(rq.blocks.size(), 1u);
  EXPECT_EQ(rq.blocks[0].rels[1].table, "S2");
}

TEST(Translate, WildcardStepAddsTildePredicate) {
  map::Mapping m = MapText(
      "type Show = show[ Reviews* ] type Reviews = reviews[ ~[ String ] ]");
  opt::RelQuery rq = Translate(
      m, "FOR $v IN document(\"d\")/show RETURN $v/reviews/nyt");
  ASSERT_EQ(rq.blocks.size(), 1u);
  ASSERT_EQ(rq.blocks[0].filters.size(), 1u);
  EXPECT_EQ(rq.blocks[0].filters[0].column, "tilde");
  EXPECT_EQ(rq.blocks[0].filters[0].value.string_value, "nyt");
}

TEST(Translate, MaterializedWildcardSkipsExcludedBranch) {
  map::Mapping m = MapText(
      "type Show = show[ Reviews* ] "
      "type Reviews = reviews[ (Nyt | Other) ] "
      "type Nyt = nyt[ String ] type Other = ~!nyt[ String ]");
  opt::RelQuery rq = Translate(
      m, "FOR $v IN document(\"d\")/show RETURN $v/reviews/nyt");
  // Only the Nyt branch matches the literal step; no tilde filter needed.
  ASSERT_EQ(rq.blocks.size(), 1u);
  EXPECT_TRUE(SqlContains(rq, "Nyt"));
  EXPECT_TRUE(rq.blocks[0].filters.empty());
  // A non-nyt tag goes to the Other branch with a tilde predicate.
  opt::RelQuery rq2 = Translate(
      m, "FOR $v IN document(\"d\")/show RETURN $v/reviews/suntimes");
  ASSERT_EQ(rq2.blocks.size(), 1u);
  EXPECT_TRUE(SqlContains(rq2, "Other"));
  ASSERT_EQ(rq2.blocks[0].filters.size(), 1u);
  EXPECT_EQ(rq2.blocks[0].filters[0].value.string_value, "suntimes");
}

TEST(Translate, StrictProjectionAddsNotNull) {
  map::Mapping m = MapText("type A = a[ x[ String ]?, y[ String ] ]");
  opt::RelQuery rq =
      Translate(m, "FOR $v IN document(\"d\")/a RETURN $v/x");
  ASSERT_EQ(rq.blocks.size(), 1u);
  ASSERT_EQ(rq.blocks[0].filters.size(), 1u);
  EXPECT_TRUE(rq.blocks[0].filters[0].not_null);
  // Required columns need no NOT NULL filter.
  opt::RelQuery rq2 =
      Translate(m, "FOR $v IN document(\"d\")/a RETURN $v/y");
  EXPECT_TRUE(rq2.blocks[0].filters.empty());
}

TEST(Translate, ValueJoinBecomesJoinEdge) {
  map::Mapping m = MapText(
      "type R = r[ A*, B* ] type A = a[ n[ String ] ] "
      "type B = b[ n[ String ] ]");
  opt::RelQuery rq = Translate(
      m,
      "FOR $r IN document(\"d\")/r FOR $a IN $r/a, $b IN $r/b "
      "WHERE $a/n = $b/n RETURN $a/n");
  ASSERT_EQ(rq.blocks.size(), 1u);
  // Two FK joins (R->A, R->B) plus the value join on n.
  EXPECT_EQ(rq.blocks[0].joins.size(), 3u);
}

TEST(Translate, SubqueryWithWhereSharesBlock) {
  map::Mapping m = MapText(
      "type Show = show[ t[ String ], Episodes* ] "
      "type Episodes = episodes[ gd[ String ] ]");
  opt::RelQuery rq = Translate(
      m,
      "FOR $v IN document(\"d\")/show RETURN $v/t, "
      "FOR $e IN $v/episodes WHERE $e/gd = c1 RETURN $e/gd");
  ASSERT_EQ(rq.blocks.size(), 1u);
  EXPECT_EQ(rq.blocks[0].rels.size(), 2u);
  ASSERT_EQ(rq.blocks[0].joins.size(), 1u);
  EXPECT_FALSE(rq.blocks[0].joins[0].left_outer);  // inner: WHERE present
}

TEST(Translate, SubqueryWithoutWhereIsLeftOuter) {
  map::Mapping m = MapText(
      "type Show = show[ t[ String ], Episodes* ] "
      "type Episodes = episodes[ gd[ String ] ]");
  opt::RelQuery rq = Translate(
      m,
      "FOR $v IN document(\"d\")/show RETURN $v/t, "
      "FOR $e IN $v/episodes RETURN $e/gd");
  ASSERT_EQ(rq.blocks.size(), 1u);
  ASSERT_EQ(rq.blocks[0].joins.size(), 1u);
  EXPECT_TRUE(rq.blocks[0].joins[0].left_outer);
}

TEST(Translate, UnfilteredPublishScansEachTableOnce) {
  map::Mapping m = MapText(
      "type Show = show[ t[ String ], Aka*, Episodes* ] "
      "type Aka = aka[ String ] type Episodes = episodes[ n[ String ] ]");
  opt::RelQuery rq =
      Translate(m, "FOR $v IN document(\"d\")/show RETURN $v");
  EXPECT_TRUE(rq.publish);
  // One scan block per table: Show, Aka, Episodes.
  ASSERT_EQ(rq.blocks.size(), 3u);
  for (const auto& b : rq.blocks) {
    EXPECT_EQ(b.rels.size(), 1u);
    EXPECT_TRUE(b.joins.empty());
  }
}

TEST(Translate, FilteredPublishJoinsDescendantChains) {
  map::Mapping m = MapText(
      "type Show = show[ t[ String ], Aka* ] type Aka = aka[ String ]");
  opt::RelQuery rq = Translate(
      m, "FOR $v IN document(\"d\")/show WHERE $v/t = c1 RETURN $v");
  EXPECT_TRUE(rq.publish);
  ASSERT_EQ(rq.blocks.size(), 2u);  // main + Aka chain
  // The Aka block restricts by the show filter via the FK join.
  const opt::QueryBlock& aka_block = rq.blocks[1];
  EXPECT_EQ(aka_block.rels.back().table, "Aka");
  EXPECT_FALSE(aka_block.joins.empty());
  EXPECT_FALSE(aka_block.filters.empty());
}

TEST(Translate, SharedChildTablesDumpedOnceAcrossPartitions) {
  map::Mapping m = MapText(
      "type R = r[ S* ] type S = (S1 | S2) "
      "type S1 = s[ x[ String ], Aka* ] type S2 = s[ y[ String ], Aka* ] "
      "type Aka = aka[ String ]");
  opt::RelQuery rq = Translate(m, "FOR $v IN document(\"d\")/r/s RETURN $v");
  // Blocks: S1, Aka, S2 — Aka only once despite two partitions.
  int aka_blocks = 0;
  for (const auto& b : rq.blocks) {
    if (b.rels[0].table == "Aka") ++aka_blocks;
  }
  EXPECT_EQ(aka_blocks, 1);
}

TEST(Translate, RecursiveNavigationJoinsSameTableTwice) {
  map::Mapping m = MapText("type N = n[ v[ Integer ], N* ]");
  opt::RelQuery rq = Translate(
      m, "FOR $a IN document(\"d\")/n, $b IN $a/n RETURN $b/v");
  ASSERT_EQ(rq.blocks.size(), 1u);
  EXPECT_EQ(rq.blocks[0].rels.size(), 2u);
  EXPECT_EQ(rq.blocks[0].rels[0].table, "N");
  EXPECT_EQ(rq.blocks[0].rels[1].table, "N");
  EXPECT_NE(rq.blocks[0].rels[0].alias, rq.blocks[0].rels[1].alias);
}

TEST(Translate, ImpossibleBindingYieldsNoBlocks) {
  map::Mapping m = MapText("type A = a[ x[ String ] ]");
  opt::RelQuery rq =
      Translate(m, "FOR $v IN document(\"d\")/a/zzz RETURN $v/x");
  EXPECT_TRUE(rq.blocks.empty());
}

TEST(Translate, ImdbQ13ProducesSixWayJoin) {
  auto annotated =
      xs::AnnotateSchema(*imdb::Schema(), *imdb::Stats());
  map::Mapping m = MapOf(ps::Normalize(annotated));
  opt::RelQuery rq = Translate(m, imdb::QueryText("Q13"));
  ASSERT_GE(rq.blocks.size(), 1u);
  // imdb, show, actor, played, director, directed, aka = 7 rels.
  EXPECT_EQ(rq.blocks[0].rels.size(), 7u);
  EXPECT_GE(rq.blocks[0].joins.size(), 6u);
}

}  // namespace
}  // namespace legodb::xlat
