// Chaos harness for online reconfiguration: 8 serving threads hammer a
// versioned registry while a migration loop repeatedly shadow-shreds the
// document into alternating storage configurations with failpoints armed
// probabilistically at every migration site (migrate.shred / migrate.verify
// / migrate.swap). The invariants under fire:
//
//  - every served response succeeds and is bit-identical (as a row
//    multiset) to the DOM evaluator's answer, regardless of which
//    generation the request happened to pin;
//  - failed migrations roll back completely: the registry keeps serving
//    the old version and the next migration starts clean;
//  - plan-cache entries compiled against superseded generations degrade to
//    stale-miss + recompile, never to executing a wrong-catalog plan.
//
// The failpoint firing sequence is a pure function of (seed, hit index)
// and only the single migration thread hits migrate.* sites, so the
// success/rollback pattern replays deterministically. The suite is the
// primary target of `tools/check.sh --chaos` (TSan build).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "mapping/mapping.h"
#include "obs/obs.h"
#include "pschema/pschema.h"
#include "serving/migrator.h"
#include "serving/retry.h"
#include "serving/server.h"
#include "storage/db_registry.h"
#include "storage/shredder.h"
#include "xml/parser.h"
#include "xquery/evaluator.h"
#include "xquery/parser.h"
#include "xschema/schema_parser.h"

namespace legodb::serving {
namespace {

// `info` is a nested element, so Normalize / AllOutlined / AllInlined
// yield genuinely different relational layouts (inlined columns vs. an
// outlined child table with FK joins) — exactly what a migration swaps.
constexpr char kSchemaText[] =
    "type P = p[ C* ] "
    "type C = c[ name[ String ], "
    "info[ size[ Integer ], rating[ Integer ]? ] ]";

xml::Document MakeDocument(int n) {
  std::string text = "<p>";
  for (int i = 0; i < n; ++i) {
    text += "<c><name>n" + std::to_string(i % 40) + "</name><info><size>" +
            std::to_string(i) + "</size>";
    if (i % 3 != 0) {
      text += "<rating>" + std::to_string(i % 10) + "</rating>";
    }
    text += "</info></c>";
  }
  text += "</p>";
  auto doc = xml::ParseDocument(text);
  EXPECT_TRUE(doc.ok());
  return std::move(doc).value();
}

struct Case {
  std::string text;
  std::map<std::string, Value> params;
};

// Scalar-return queries only: their results are configuration-independent
// (the cross-config equivalence property), so every generation must answer
// them identically.
std::vector<Case> WorkloadCases() {
  return {
      {"FOR $v IN document(\"d\")/p/c WHERE $v/name = \"n3\" "
       "RETURN $v/info/size",
       {}},
      {"FOR $v IN document(\"d\")/p/c WHERE $v/info/size < 50 "
       "RETURN $v/name",
       {}},
      {"FOR $v IN document(\"d\")/p/c WHERE $v/name = c1 "
       "RETURN $v/info/rating",
       {{"c1", Value::Str("n7")}}},
      {"FOR $v IN document(\"d\")/p/c RETURN $v/name", {}},
  };
}

class MigrationChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto schema = xs::ParseSchema(kSchemaText);
    ASSERT_TRUE(schema.ok());
    configs_ = {ps::Normalize(schema.value()),
                ps::AllOutlined(schema.value()),
                ps::AllInlined(schema.value())};
    doc_ = std::make_unique<xml::Document>(MakeDocument(400));

    auto mapping = map::MapSchema(configs_[0]);
    ASSERT_TRUE(mapping.ok()) << mapping.status().ToString();
    auto mapping_ptr =
        std::make_shared<map::Mapping>(std::move(mapping).value());
    auto db = std::make_shared<store::Database>(mapping_ptr->catalog());
    ASSERT_TRUE(store::ShredDocument(*doc_, *mapping_ptr, db.get()).ok());
    registry_ = std::make_unique<store::DbRegistry>(mapping_ptr, db);

    for (const Case& c : WorkloadCases()) {
      auto query = xq::ParseQuery(c.text);
      ASSERT_TRUE(query.ok());
      auto expected = xq::EvaluateOnDocument(query.value(), *doc_, c.params);
      ASSERT_TRUE(expected.ok()) << expected.status().ToString();
      expected_.push_back(std::move(expected).value());
    }
  }

  std::vector<MigrationQuery> MigrationWorkload() const {
    std::vector<MigrationQuery> workload;
    int i = 0;
    for (const Case& c : WorkloadCases()) {
      workload.push_back({"q" + std::to_string(i++), c.text});
    }
    return workload;
  }

  std::vector<xs::Schema> configs_;
  std::unique_ptr<xml::Document> doc_;
  std::unique_ptr<store::DbRegistry> registry_;
  std::vector<xq::ResultSet> expected_;
};

TEST_F(MigrationChaosTest, ServingStaysBitIdenticalUnderMigrationFire) {
  QueryServer server(registry_.get());
  ASSERT_TRUE(server.Prewarm().ok());
  std::vector<Case> cases = WorkloadCases();

  std::atomic<bool> stop{false};
  std::atomic<int64_t> served{0};
  std::atomic<int> failures{0}, mismatches{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 8; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; !stop.load(std::memory_order_relaxed); ++i) {
        size_t k = static_cast<size_t>(t + i) % cases.size();
        RequestOptions request;
        request.params = cases[k].params;
        auto response = server.Serve(cases[k].text, request);
        if (!response.ok()) {
          ++failures;
        } else if (!expected_[k].SameRows(response->result)) {
          ++mismatches;
        }
        ++served;
      }
    });
  }

  // Migration loop: alternate outlined/inlined targets with every
  // migration site armed probabilistically. The workload params must bind
  // c1 for the parameterized verification query.
  MigrationOptions options;
  options.params = {{"c1", Value::Str("n7")}};
  Migrator migrator(registry_.get(), doc_.get());
  std::vector<MigrationQuery> workload = MigrationWorkload();
  int successes = 0, rollbacks = 0;
  {
    fp::ScopedFailpoints failpoints(
        "migrate.shred=p0.4@1;migrate.verify=p0.3@2;migrate.swap=p0.3@3");
    ASSERT_TRUE(failpoints.status().ok());
    for (int i = 0; i < 24; ++i) {
      const xs::Schema& target = configs_[1 + (i % 2)];
      auto report = migrator.MigrateTo(target, workload, options);
      if (report.ok()) {
        ++successes;
        EXPECT_EQ(report->verified_queries, workload.size());
        EXPECT_EQ(report->skipped_queries, 0u);
      } else {
        // Only injected faults can fail here; rollback leaves the old
        // generation serving.
        EXPECT_EQ(report.status().code(), Status::Code::kInternal)
            << report.status().ToString();
        ++rollbacks;
      }
    }
  }
  // With p in {0.3, 0.4} per site over 24 runs, both outcomes occur in any
  // plausible deterministic sequence.
  EXPECT_GT(successes, 0);
  EXPECT_GT(rollbacks, 0);

  // Let the serving fleet overlap plenty of post-migration traffic before
  // stopping (bounded by a wall-clock cap so the test cannot hang).
  int64_t deadline = obs::NowNanos() + 2'000'000'000LL;
  while (served.load() < 4000 && obs::NowNanos() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  stop.store(true);
  for (std::thread& c : clients) c.join();

  EXPECT_EQ(failures, 0);
  EXPECT_EQ(mismatches, 0);
  EXPECT_GT(served.load(), 0);
  // Successful migrations bumped the generation, so cached plans from
  // earlier generations must have degraded to stale recompiles (never to
  // wrong results, per the mismatch count above).
  PlanCache::Stats stats = server.CacheStats();
  EXPECT_GT(stats.stale, 0);
  EXPECT_EQ(registry_->generation(), 1u + static_cast<uint64_t>(successes));
}

TEST_F(MigrationChaosTest, EveryFailpointSiteRollsBackCleanly) {
  QueryServer server(registry_.get());
  ASSERT_TRUE(server.Prewarm().ok());
  MigrationOptions options;
  options.params = {{"c1", Value::Str("n7")}};
  Migrator migrator(registry_.get(), doc_.get());
  std::vector<MigrationQuery> workload = MigrationWorkload();
  std::vector<Case> cases = WorkloadCases();

  for (const char* site : {"migrate.shred", "migrate.verify", "migrate.swap"}) {
    fp::ScopedFailpoints failpoints(site);
    ASSERT_TRUE(failpoints.status().ok());
    auto report = migrator.MigrateTo(configs_[1], workload, options);
    ASSERT_FALSE(report.ok()) << site;
    EXPECT_EQ(report.status().code(), Status::Code::kInternal) << site;
    EXPECT_NE(report.status().message().find(site), std::string::npos)
        << report.status().ToString();
    // Rollback contract: generation unchanged, serving still correct.
    EXPECT_EQ(registry_->generation(), 1u) << site;
    for (size_t k = 0; k < cases.size(); ++k) {
      RequestOptions request;
      request.params = cases[k].params;
      auto response = server.Serve(cases[k].text, request);
      ASSERT_TRUE(response.ok()) << response.status().ToString();
      EXPECT_TRUE(expected_[k].SameRows(response->result));
      EXPECT_EQ(response->generation, 1u);
    }
  }

  // Disarmed: the same migration commits, and cached generation-1 plans
  // recompile as stale misses with identical answers.
  auto report = migrator.MigrateTo(configs_[1], workload, options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->from_generation, 1u);
  EXPECT_EQ(report->to_generation, 2u);
  EXPECT_EQ(report->verified_queries, workload.size());
  int64_t stale_before = server.CacheStats().stale;
  for (size_t k = 0; k < cases.size(); ++k) {
    RequestOptions request;
    request.params = cases[k].params;
    auto response = server.Serve(cases[k].text, request);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_FALSE(response->cache_hit);  // stale entry forced a recompile
    EXPECT_EQ(response->generation, 2u);
    EXPECT_TRUE(expected_[k].SameRows(response->result));
  }
  EXPECT_EQ(server.CacheStats().stale,
            stale_before + static_cast<int64_t>(cases.size()));
}

TEST_F(MigrationChaosTest, ConcurrentMigrationsAreSerializedGracefully) {
  MigrationOptions options;
  options.params = {{"c1", Value::Str("n7")}};
  Migrator migrator(registry_.get(), doc_.get());
  std::vector<MigrationQuery> workload = MigrationWorkload();

  // Fire several MigrateTo calls at once: exactly the winners of the
  // try-lock run (>= 1); the rest bounce with Unavailable — the retry
  // layer's cue, never a crash or a half-applied swap.
  std::atomic<int> ok{0}, unavailable{0}, other{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      auto report =
          migrator.MigrateTo(configs_[1 + (t % 2)], workload, options);
      if (report.ok()) {
        ++ok;
      } else if (report.status().code() == Status::Code::kUnavailable) {
        ++unavailable;
      } else {
        ++other;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_GE(ok.load(), 1);
  EXPECT_EQ(other.load(), 0);
  EXPECT_EQ(ok + unavailable, 4);
  EXPECT_EQ(registry_->generation(), 1u + static_cast<uint64_t>(ok.load()));
}

}  // namespace
}  // namespace legodb::serving
