#include "relational/catalog.h"

#include <cmath>

#include "common/check.h"

namespace legodb::rel {

std::string SqlType::ToString() const {
  switch (kind) {
    case Kind::kInt:
      return "INT";
    case Kind::kChar:
      return "CHAR(" + std::to_string(static_cast<int64_t>(width)) + ")";
    case Kind::kVarchar:
      return "STRING";
  }
  return "?";
}

double Table::RowWidth() const {
  double width = kRowOverheadBytes;
  for (const auto& col : columns) {
    width += col.type.width * (1.0 - col.null_fraction) +
             (col.nullable ? 1 : 0);  // null bitmap byte
  }
  return width;
}

const Column* Table::FindColumn(const std::string& name) const {
  for (const auto& col : columns) {
    if (col.name == name) return &col;
  }
  return nullptr;
}

int Table::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

Status Catalog::AddTable(Table table) {
  if (tables_.count(table.name) > 0) {
    return Status::InvalidArgument("duplicate table '" + table.name + "'");
  }
  names_.push_back(table.name);
  tables_[table.name] = std::move(table);
  return Status::OK();
}

const Table* Catalog::FindTable(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : &it->second;
}

const Table& Catalog::GetTable(const std::string& name) const {
  const Table* t = FindTable(name);
  LEGODB_CHECK(t != nullptr, "Catalog::GetTable: unknown table");
  return *t;
}

bool Catalog::HasTable(const std::string& name) const {
  return tables_.count(name) > 0;
}

double Catalog::TotalBytes() const {
  double total = 0;
  for (const auto& [name, table] : tables_) {
    total += table.row_count * table.RowWidth();
  }
  return total;
}

std::string Catalog::ToDdl() const {
  std::string out;
  for (const auto& name : names_) {
    const Table& t = tables_.at(name);
    out += "TABLE " + t.name + " (";
    for (size_t i = 0; i < t.columns.size(); ++i) {
      const Column& c = t.columns[i];
      if (i > 0) out += ",";
      out += "\n  " + c.name + " " + c.type.ToString();
      if (c.nullable) out += " NULL";
      if (c.name == t.key_column) out += " PRIMARY KEY";
    }
    for (const auto& fk : t.foreign_keys) {
      out += ",\n  FOREIGN KEY (" + fk.column + ") REFERENCES " +
             fk.parent_table;
    }
    out += "\n)  -- " + std::to_string(static_cast<int64_t>(t.row_count)) +
           " rows, width " +
           std::to_string(static_cast<int64_t>(std::llround(t.RowWidth()))) +
           "\n";
  }
  return out;
}

}  // namespace legodb::rel
