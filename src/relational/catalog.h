#ifndef LEGODB_RELATIONAL_CATALOG_H_
#define LEGODB_RELATIONAL_CATALOG_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"

namespace legodb::rel {

// SQL column types produced by the fixed mapping (Table 1 of the paper).
struct SqlType {
  enum class Kind { kInt, kChar, kVarchar };

  static SqlType Int() { return SqlType{Kind::kInt, 4}; }
  static SqlType Char(double size) { return SqlType{Kind::kChar, size}; }
  static SqlType Varchar(double avg_size) {
    return SqlType{Kind::kVarchar, avg_size};
  }

  std::string ToString() const;

  Kind kind = Kind::kInt;
  // Storage width in bytes (average width for varchar).
  double width = 4;

  bool operator==(const SqlType&) const = default;
};

// Per-column statistics used by the optimizer's cardinality estimation.
struct Column {
  std::string name;
  SqlType type;
  bool nullable = false;
  // Fraction of rows where the column is NULL.
  double null_fraction = 0;
  // Number of distinct non-null values (>= 1 when the table is non-empty).
  double distincts = 1;
  // Value range, meaningful for integer columns.
  int64_t min = 0;
  int64_t max = 0;
};

// A foreign key column referencing the key of a parent table.
struct ForeignKey {
  std::string column;        // e.g. "parent_Show"
  std::string parent_table;  // e.g. "Show"
};

struct Table {
  std::string name;
  // Primary key column (always "<name>_id").
  std::string key_column;
  std::vector<Column> columns;  // includes key and FK columns
  std::vector<ForeignKey> foreign_keys;
  double row_count = 0;

  // Sum of column widths (plus a fixed per-row overhead).
  double RowWidth() const;

  const Column* FindColumn(const std::string& name) const;
  int ColumnIndex(const std::string& name) const;  // -1 if absent

  static constexpr double kRowOverheadBytes = 8;
};

// The relational configuration rel(ps): schema plus statistics, i.e. the
// "relational catalog" box of Figure 7.
class Catalog {
 public:
  Catalog() = default;

  // Rejects duplicate table names with InvalidArgument (reachable from
  // ingestion via the mapper, so recoverable rather than a crash).
  Status AddTable(Table table);
  const Table* FindTable(const std::string& name) const;
  // Aborts (LEGODB_CHECK, all build modes) on an unknown table: callers on
  // fallible paths must use FindTable/HasTable.
  const Table& GetTable(const std::string& name) const;
  bool HasTable(const std::string& name) const;

  const std::vector<std::string>& table_names() const { return names_; }
  size_t size() const { return names_.size(); }

  // Total data size in bytes across all tables.
  double TotalBytes() const;

  // CREATE TABLE statements for the whole configuration.
  std::string ToDdl() const;

 private:
  std::vector<std::string> names_;
  std::map<std::string, Table> tables_;
};

}  // namespace legodb::rel

#endif  // LEGODB_RELATIONAL_CATALOG_H_
