#include "optimizer/optimizer.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <map>

#include "common/failpoint.h"
#include "obs/obs.h"

namespace legodb::opt {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct Entry {
  double cost = kInf;
  double rows = 0;
  double width = 0;  // bytes per intermediate tuple
  double seeks = 0;  // predicted seeks, inclusive of inputs
  double bytes = 0;  // predicted bytes read, inclusive of inputs
  PhysicalPlanPtr plan;

  bool valid() const { return plan != nullptr; }
};

// Plans one SPJ block: access paths, join order, join methods.
class BlockPlanner {
 public:
  BlockPlanner(const rel::Catalog& catalog, const CostParams& p,
               const QueryBlock& block)
      : catalog_(catalog), p_(p), block_(block) {}

  StatusOr<PlannedBlock> Plan() {
    size_t n = block_.rels.size();
    if (n == 0) return Status::InvalidArgument("query block has no relations");
    if (n > 62) return Status::Unsupported("too many relations in block");
    obs::Count("optimizer.blocks_planned");
    obs::Observe("optimizer.block_rels", static_cast<double>(n));
    for (size_t i = 0; i < n; ++i) {
      const rel::Table* table = catalog_.FindTable(block_.rels[i].table);
      if (!table) {
        return Status::NotFound("table '" + block_.rels[i].table +
                                "' not in catalog");
      }
      tables_.push_back(table);
    }

    Entry best = n <= static_cast<size_t>(p_.dp_rel_limit) ? PlanDp()
                                                           : PlanGreedy();
    if (!best.valid()) {
      return Status::Internal("no plan found for block");
    }

    // Root projection: producing the result counts as writing.
    auto root = std::make_shared<PhysicalPlan>();
    root->kind = PhysicalPlan::Kind::kProject;
    root->child = best.plan;
    root->outputs = block_.output;
    double out_width = OutputWidth();
    root->est_rows = best.rows;
    root->est_cost = best.cost + best.rows * out_width * p_.write_per_byte +
                     best.rows * p_.cpu_per_tuple;
    root->est_seeks = best.seeks;  // output writing adds no read IO
    root->est_bytes = best.bytes;
    root->vectorized = true;
    return PlannedBlock{root, root->est_cost, root->est_rows};
  }

 private:
  // ---- IO-term helpers ----
  //
  // At page_size == 0 (the historical default) these are identities that
  // reproduce the exact-byte cost formulas every golden was computed with.
  // At page_size > 0 they quantize the same terms to page granularity, the
  // unit the paged backend's buffer pool measures.

  // Bytes actually transferred to read `bytes` of payload.
  double PagedBytes(double bytes) const {
    if (p_.page_size <= 0) return bytes;
    return std::ceil(bytes / p_.page_size) * p_.page_size;
  }

  // Seeks for a sequential scan over `bytes` of payload: the classic single
  // positioning seek, or one pool fault per page on the paged backend.
  double ScanSeeks(double bytes) const {
    if (p_.page_size <= 0) return 1.0;
    return std::max(1.0, std::ceil(bytes / p_.page_size));
  }

  // Bytes read to fetch one matched row of `width` via an index probe: the
  // row itself, or the whole page holding it.
  double ProbeBytes(double width) const {
    return p_.page_size > 0 ? p_.page_size : width;
  }

  // ---- statistics helpers ----

  const rel::Column* Col(int rel, const std::string& name) const {
    return tables_[rel]->FindColumn(name);
  }

  double ColDistincts(int rel, const std::string& name) const {
    const rel::Column* c = Col(rel, name);
    return c ? std::max(1.0, c->distincts) : 1.0;
  }

  double ColNullFrac(int rel, const std::string& name) const {
    const rel::Column* c = Col(rel, name);
    return c ? std::clamp(c->null_fraction, 0.0, 1.0) : 0.0;
  }

  double BaseRows(int rel) const {
    return std::max(1.0, tables_[rel]->row_count);
  }

  double RowWidth(int rel) const { return tables_[rel]->RowWidth(); }

  double FilterSelectivity(const FilterPred& f) const {
    double nn = 1.0 - ColNullFrac(f.rel, f.column);
    if (f.not_null) return std::clamp(nn, 1e-9, 1.0);
    double d = ColDistincts(f.rel, f.column);
    double sel;
    switch (f.op) {
      case xq::CompareOp::kEq:
        sel = 1.0 / d;
        break;
      case xq::CompareOp::kNe:
        sel = 1.0 - 1.0 / d;
        break;
      default:
        sel = RangeSelectivity(f);
        break;
    }
    return std::clamp(nn * sel, 1e-9, 1.0);
  }

  // Range selectivity from the column's min/max statistics when the bound
  // is a known integer literal; System-R's 1/3 otherwise.
  double RangeSelectivity(const FilterPred& f) const {
    const rel::Column* c = Col(f.rel, f.column);
    if (!c || c->type.kind != rel::SqlType::Kind::kInt ||
        f.value.kind != xq::Constant::Kind::kInt || c->max <= c->min) {
      return 1.0 / 3.0;
    }
    double lo = static_cast<double>(c->min);
    double hi = static_cast<double>(c->max);
    double bound = std::clamp(static_cast<double>(f.value.int_value), lo, hi);
    double below = (bound - lo) / (hi - lo);
    switch (f.op) {
      case xq::CompareOp::kLt:
      case xq::CompareOp::kLe:
        return below;
      case xq::CompareOp::kGt:
      case xq::CompareOp::kGe:
        return 1.0 - below;
      default:
        return 1.0 / 3.0;
    }
  }

  double FilteredRows(int rel) const {
    double rows = BaseRows(rel);
    for (const auto& f : block_.filters) {
      if (f.rel == rel) rows *= FilterSelectivity(f);
    }
    return std::max(rows, 1e-6);
  }

  // Effective distinct count of a join column among the filtered rows.
  double EffDistincts(int rel, const std::string& column) const {
    return std::max(1.0,
                    std::min(ColDistincts(rel, column), FilteredRows(rel)));
  }

  bool Indexed(int rel, const std::string& column) const {
    const rel::Table* t = tables_[rel];
    if (column == t->key_column) return true;
    for (const auto& fk : t->foreign_keys) {
      if (fk.column == column) return true;
    }
    return p_.index_on_predicates && t->FindColumn(column) != nullptr;
  }

  double OutputWidth() const {
    double w = 0;
    for (const auto& out : block_.output) {
      if (out.rel < 0) {  // NULL-literal column
        w += 1.0;
        continue;
      }
      const rel::Column* c = Col(out.rel, out.column);
      w += c ? c->type.width : 8.0;
    }
    return std::max(w, 1.0);
  }

  // Estimated cardinality of joining the relations in `mask`: product of
  // filtered cardinalities discounted by each internal join edge.
  double Card(uint64_t mask) {
    auto it = card_memo_.find(mask);
    if (it != card_memo_.end()) return it->second;
    double rows = 1;
    for (size_t i = 0; i < block_.rels.size(); ++i) {
      if (mask & (1ull << i)) rows *= FilteredRows(static_cast<int>(i));
    }
    for (const auto& e : block_.joins) {
      if (!(mask & (1ull << e.left_rel)) || !(mask & (1ull << e.right_rel))) {
        continue;
      }
      double dl = EffDistincts(e.left_rel, e.left_column);
      double dr = EffDistincts(e.right_rel, e.right_column);
      double sel = 1.0 / std::max(dl, dr);
      sel *= (1.0 - ColNullFrac(e.left_rel, e.left_column)) *
             (1.0 - ColNullFrac(e.right_rel, e.right_column));
      if (e.left_outer) {
        // A preserved outer row always survives: at least one row per outer
        // row, i.e. the edge cannot reduce cardinality below 1 match.
        double inner_rows = FilteredRows(e.right_rel);
        sel = std::max(sel, 1.0 / inner_rows);
      }
      rows *= std::clamp(sel, 1e-12, 1.0);
    }
    rows = std::max(rows, 1e-6);
    card_memo_[mask] = rows;
    return rows;
  }

  // ---- leaf access paths ----

  Entry AccessPath(int rel) {
    std::vector<FilterPred> filters;
    for (const auto& f : block_.filters) {
      if (f.rel == rel) filters.push_back(f);
    }
    double base = BaseRows(rel);
    double width = RowWidth(rel);
    double out_rows = FilteredRows(rel);

    Entry best;
    {  // sequential scan
      double seeks = ScanSeeks(base * width);
      double bytes = PagedBytes(base * width);
      auto plan = std::make_shared<PhysicalPlan>();
      plan->kind = PhysicalPlan::Kind::kSeqScan;
      plan->rel = rel;
      plan->filters = filters;
      plan->est_rows = out_rows;
      plan->est_cost = seeks * p_.seek_cost + bytes * p_.read_per_byte +
                       base * p_.cpu_per_tuple;
      plan->est_seeks = seeks;
      plan->est_bytes = bytes;
      plan->vectorized = true;
      best = Entry{plan->est_cost, out_rows, width, seeks, bytes, plan};
    }
    // Index lookup on the most selective indexed filter column (hash
    // indexes serve equality probes only).
    for (const auto& f : filters) {
      if (f.not_null || f.op != xq::CompareOp::kEq ||
          !Indexed(rel, f.column)) {
        continue;
      }
      double matches = base * FilterSelectivity(f);
      double seeks = p_.index_probe_seeks + matches;
      double bytes = matches * ProbeBytes(width);
      double cost = seeks * p_.seek_cost + bytes * p_.read_per_byte +
                    matches * p_.cpu_per_tuple;
      if (cost < best.cost) {
        auto plan = std::make_shared<PhysicalPlan>();
        plan->kind = PhysicalPlan::Kind::kIndexLookup;
        plan->rel = rel;
        plan->index_column = f.column;
        plan->filters = filters;  // residuals re-checked cheaply
        plan->est_rows = out_rows;
        plan->est_cost = cost;
        plan->est_seeks = seeks;
        plan->est_bytes = bytes;
        plan->vectorized = true;
        best = Entry{cost, out_rows, width, seeks, bytes, plan};
      }
    }
    return best;
  }

  // ---- join combination ----

  std::vector<const JoinEdge*> EdgesBetween(uint64_t a, uint64_t b) const {
    std::vector<const JoinEdge*> edges;
    for (const auto& e : block_.joins) {
      uint64_t lm = 1ull << e.left_rel;
      uint64_t rm = 1ull << e.right_rel;
      if (((lm & a) && (rm & b)) || ((lm & b) && (rm & a))) {
        edges.push_back(&e);
      }
    }
    return edges;
  }

  // Combines two planned subsets. `single_b_rel` >= 0 when the right subset
  // is one base relation (enables index nested loops).
  Entry Combine(const Entry& a, uint64_t mask_a, const Entry& b,
                uint64_t mask_b, int single_b_rel) {
    uint64_t mask = mask_a | mask_b;
    double out_rows = Card(mask);
    double width = a.width + b.width;
    std::vector<const JoinEdge*> edges = EdgesBetween(mask_a, mask_b);
    bool outer = false;
    for (const auto* e : edges) outer |= e->left_outer;

    Entry best;
    // Hash join: build the smaller side.
    for (int build_right = 0; build_right < 2; ++build_right) {
      const Entry& probe = build_right ? a : b;
      const Entry& build = build_right ? b : a;
      if (outer) {
        // Left-outer joins preserve the left (probe=a) side; only the
        // build_right orientation is valid.
        if (!build_right) continue;
      }
      if (edges.empty()) continue;
      double cost = probe.cost + build.cost +
                    build.rows * (p_.cpu_per_probe +
                                  build.width * 0.0) +  // build
                    probe.rows * p_.cpu_per_probe +     // probe
                    out_rows * p_.cpu_per_tuple;
      double seeks = probe.seeks + build.seeks;  // joins add CPU, not IO
      double bytes = probe.bytes + build.bytes;
      if (cost < best.cost) {
        auto plan = std::make_shared<PhysicalPlan>();
        plan->kind = PhysicalPlan::Kind::kHashJoin;
        plan->left = probe.plan;
        plan->right = build.plan;
        const JoinEdge* e = edges[0];
        bool e_left_in_probe =
            ((1ull << e->left_rel) & (build_right ? mask_a : mask_b)) != 0;
        plan->left_join_rel = e_left_in_probe ? e->left_rel : e->right_rel;
        plan->left_join_column =
            e_left_in_probe ? e->left_column : e->right_column;
        plan->right_join_rel = e_left_in_probe ? e->right_rel : e->left_rel;
        plan->right_join_column =
            e_left_in_probe ? e->right_column : e->left_column;
        plan->left_outer = outer;
        for (size_t k = 1; k < edges.size(); ++k) {
          plan->residual_joins.push_back(*edges[k]);
        }
        plan->est_rows = out_rows;
        plan->est_cost = cost;
        plan->est_seeks = seeks;
        plan->est_bytes = bytes;
        plan->vectorized = true;
        best = Entry{cost, out_rows, width, seeks, bytes, plan};
      }
    }
    // Index nested loops: inner side must be a single base relation with an
    // index on its join column.
    if (single_b_rel >= 0) {
      for (const auto* e : edges) {
        bool inner_is_right = e->right_rel == single_b_rel;
        int inner_rel = single_b_rel;
        const std::string& inner_col =
            inner_is_right ? e->right_column : e->left_column;
        int outer_rel = inner_is_right ? e->left_rel : e->right_rel;
        const std::string& outer_col =
            inner_is_right ? e->left_column : e->right_column;
        if (e->left_outer && !inner_is_right) continue;  // must preserve left
        if (!Indexed(inner_rel, inner_col)) continue;
        double matches_per_probe =
            BaseRows(inner_rel) * (1.0 - ColNullFrac(inner_rel, inner_col)) /
            EffDistinctsBase(inner_rel, inner_col);
        double seeks_added =
            a.rows * (p_.index_probe_seeks + matches_per_probe);
        double bytes_added =
            a.rows * matches_per_probe * ProbeBytes(RowWidth(inner_rel));
        double cost = a.cost + seeks_added * p_.seek_cost +
                      bytes_added * p_.read_per_byte +
                      a.rows * matches_per_probe * p_.cpu_per_tuple +
                      out_rows * p_.cpu_per_tuple;
        if (cost < best.cost) {
          auto plan = std::make_shared<PhysicalPlan>();
          plan->kind = PhysicalPlan::Kind::kIndexNLJoin;
          plan->left = a.plan;
          plan->rel = inner_rel;
          plan->index_column = inner_col;
          for (const auto& f : block_.filters) {
            if (f.rel == inner_rel) plan->filters.push_back(f);
          }
          plan->left_join_rel = outer_rel;
          plan->left_join_column = outer_col;
          plan->right_join_rel = inner_rel;
          plan->right_join_column = inner_col;
          plan->left_outer = e->left_outer;
          for (const auto* other : edges) {
            if (other != e) plan->residual_joins.push_back(*other);
          }
          plan->est_rows = out_rows;
          plan->est_cost = cost;
          plan->est_seeks = a.seeks + seeks_added;
          plan->est_bytes = a.bytes + bytes_added;
          plan->vectorized = true;
          best = Entry{cost,
                       out_rows,
                       a.width + RowWidth(inner_rel),
                       a.seeks + seeks_added,
                       a.bytes + bytes_added,
                       plan};
        }
      }
    }
    return best;
  }

  // Distincts over the unfiltered base table (for index probe fan-out).
  double EffDistinctsBase(int rel, const std::string& column) const {
    return std::max(1.0, std::min(ColDistincts(rel, column), BaseRows(rel)));
  }

  Entry PlanDp() {
    size_t n = block_.rels.size();
    std::map<uint64_t, Entry> best;
    for (size_t i = 0; i < n; ++i) {
      best[1ull << i] = AccessPath(static_cast<int>(i));
    }
    uint64_t full = n == 64 ? ~0ull : (1ull << n) - 1;
    // Enumerate subsets in increasing size.
    std::vector<uint64_t> masks;
    for (uint64_t m = 1; m <= full; ++m) {
      if (std::popcount(m) >= 2) masks.push_back(m);
    }
    std::sort(masks.begin(), masks.end(), [](uint64_t a, uint64_t b) {
      int pa = std::popcount(a), pb = std::popcount(b);
      return pa != pb ? pa < pb : a < b;
    });
    obs::Count("optimizer.dp_plans");
    for (uint64_t mask : masks) {
      Entry entry;
      bool found_connected = false;
      for (int pass = 0; pass < 2 && !entry.valid(); ++pass) {
        bool allow_cartesian = pass == 1;
        // Enumerate proper sub-splits.
        for (uint64_t sub = (mask - 1) & mask; sub; sub = (sub - 1) & mask) {
          uint64_t rest = mask ^ sub;
          if (sub > rest) continue;  // each split once; Combine tries both
          auto a_it = best.find(sub);
          auto b_it = best.find(rest);
          if (a_it == best.end() || b_it == best.end()) continue;
          if (!a_it->second.valid() || !b_it->second.valid()) continue;
          bool connected = !EdgesBetween(sub, rest).empty();
          if (!connected && !allow_cartesian) continue;
          if (connected) found_connected = true;
          if (!connected) {
            // Cartesian product via (degenerate) hash join is not modeled;
            // skip — translation never produces disconnected blocks.
            continue;
          }
          for (int dir = 0; dir < 2; ++dir) {
            uint64_t ma = dir ? rest : sub;
            uint64_t mb = dir ? sub : rest;
            const Entry& ea = best[ma];
            const Entry& eb = best[mb];
            int single = std::popcount(mb) == 1
                             ? std::countr_zero(mb)
                             : -1;
            Entry cand = Combine(ea, ma, eb, mb, single);
            if (cand.valid() && cand.cost < entry.cost) entry = cand;
          }
        }
        if (found_connected) break;
      }
      if (entry.valid()) best[mask] = entry;
    }
    obs::Observe("optimizer.memo_size", static_cast<double>(best.size()));
    auto it = best.find(full);
    return it == best.end() ? Entry{} : it->second;
  }

  Entry PlanGreedy() {
    obs::Count("optimizer.greedy_plans");
    size_t n = block_.rels.size();
    std::vector<uint64_t> masks;
    std::vector<Entry> entries;
    for (size_t i = 0; i < n; ++i) {
      masks.push_back(1ull << i);
      entries.push_back(AccessPath(static_cast<int>(i)));
    }
    while (entries.size() > 1) {
      double best_cost = kInf;
      size_t bi = 0, bj = 0;
      Entry best_entry;
      for (size_t i = 0; i < entries.size(); ++i) {
        for (size_t j = 0; j < entries.size(); ++j) {
          if (i == j) continue;
          if (EdgesBetween(masks[i], masks[j]).empty()) continue;
          int single = std::popcount(masks[j]) == 1
                           ? std::countr_zero(masks[j])
                           : -1;
          Entry cand =
              Combine(entries[i], masks[i], entries[j], masks[j], single);
          if (cand.valid() && cand.cost < best_cost) {
            best_cost = cand.cost;
            best_entry = cand;
            bi = i;
            bj = j;
          }
        }
      }
      if (!best_entry.valid()) return Entry{};  // disconnected
      uint64_t merged = masks[bi] | masks[bj];
      size_t lo = std::min(bi, bj), hi = std::max(bi, bj);
      masks.erase(masks.begin() + hi);
      entries.erase(entries.begin() + hi);
      masks[lo] = merged;
      entries[lo] = best_entry;
    }
    return entries[0];
  }

  const rel::Catalog& catalog_;
  const CostParams& p_;
  const QueryBlock& block_;
  std::vector<const rel::Table*> tables_;
  std::map<uint64_t, double> card_memo_;
};

}  // namespace

StatusOr<PlannedBlock> Optimizer::PlanBlock(const QueryBlock& block) const {
  return BlockPlanner(catalog_, params_, block).Plan();
}

StatusOr<PlannedQuery> Optimizer::PlanQuery(const RelQuery& query) const {
  LEGODB_FAILPOINT("optimizer.plan_query");
  obs::ScopedTimer timer("optimizer.plan_ms");
  obs::Count("optimizer.queries_planned");
  PlannedQuery result;
  for (const auto& block : query.blocks) {
    LEGODB_ASSIGN_OR_RETURN(PlannedBlock pb, PlanBlock(block));
    result.total_cost += pb.cost;
    result.blocks.push_back(std::move(pb));
  }
  return result;
}

}  // namespace legodb::opt
