#ifndef LEGODB_OPTIMIZER_PLAN_H_
#define LEGODB_OPTIMIZER_PLAN_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/value.h"
#include "xquery/ast.h"

namespace legodb::opt {

// A base relation occurrence in a query block (aliases disambiguate multiple
// occurrences of the same table).
struct BaseRel {
  std::string table;
  std::string alias;
};

// A column of a base relation, identified by the relation's index in the
// owning QueryBlock.
struct ColumnRef {
  int rel = -1;
  std::string column;
  // Display label for the output (defaults to alias.column).
  std::string label;
};

// An equi-join edge between two base relations. `left_outer` preserves the
// left side (used for optional child tables in publish/return joins).
struct JoinEdge {
  int left_rel = -1;
  std::string left_column;
  int right_rel = -1;
  std::string right_column;
  bool left_outer = false;
};

// A filter on a base relation: either equality with a constant
// (`rel.column = value`; symbolic constants bind at execution time) or a
// NOT NULL test (strict projection over nullable inlined columns).
struct FilterPred {
  int rel = -1;
  std::string column;
  xq::CompareOp op = xq::CompareOp::kEq;
  xq::Constant value;
  bool not_null = false;  // when set, `op`/`value` are ignored
};

// A select-project-join block: the unit the optimizer plans.
struct QueryBlock {
  std::vector<BaseRel> rels;
  std::vector<JoinEdge> joins;
  std::vector<FilterPred> filters;
  std::vector<ColumnRef> output;

  std::string ToSql() const;  // display-only SQL rendering
};

// A translated XQuery: one or more blocks. For scalar queries the blocks
// are UNION ALL branches (one per union-distributed schema alternative);
// for publish queries there is one block per reachable descendant table
// (the outer-union publishing strategy).
struct RelQuery {
  std::vector<QueryBlock> blocks;
  bool publish = false;
  std::vector<std::string> labels;

  std::string ToSql() const;
};

// --- Physical plans -------------------------------------------------------

struct PhysicalPlan;
using PhysicalPlanPtr = std::shared_ptr<const PhysicalPlan>;

// A physical operator tree produced by the optimizer and interpreted by the
// execution engine.
struct PhysicalPlan {
  enum class Kind {
    kSeqScan,      // scan base rel, apply residual filters
    kIndexLookup,  // probe index on filter column, apply residual filters
    kHashJoin,     // build right, probe left
    kIndexNLJoin,  // for each left row, probe index on inner base rel
    kProject,      // root projection (counts output writing)
  };
  Kind kind = Kind::kSeqScan;

  // kSeqScan / kIndexLookup / inner side of kIndexNLJoin.
  int rel = -1;
  std::vector<FilterPred> filters;   // residual filters on this rel
  std::string index_column;          // kIndexLookup / kIndexNLJoin

  // kHashJoin / kIndexNLJoin.
  PhysicalPlanPtr left;   // probe / outer side
  PhysicalPlanPtr right;  // build side (kHashJoin only)
  int left_join_rel = -1;
  std::string left_join_column;
  int right_join_rel = -1;
  std::string right_join_column;
  bool left_outer = false;
  // When several join edges connect the two sides, one drives the
  // hash/index probe and the rest are checked per candidate pair.
  std::vector<JoinEdge> residual_joins;

  // kProject.
  PhysicalPlanPtr child;
  std::vector<ColumnRef> outputs;

  // Estimates filled by the optimizer.
  double est_rows = 0;
  double est_cost = 0;
  // Decomposed physical-IO estimates (inclusive of inputs, like est_cost):
  // predicted seeks and bytes read. At CostParams::page_size > 0 these are
  // page-granular and directly comparable to the buffer pool's measured
  // fault traffic (bench/calibration correlates the two).
  double est_seeks = 0;
  double est_bytes = 0;

  // The executor runs this operator vector-at-a-time with compiled
  // predicate bytecode (see engine/expr_vm.h). Set by the optimizer for
  // every operator it emits today; kept per node so future operators that
  // fall back to row-at-a-time execution surface that in EXPLAIN.
  bool vectorized = false;

  // Indented operator-tree rendering for debugging and EXPLAIN output.
  std::string ToString(const QueryBlock& block, int indent = 0) const;
};

}  // namespace legodb::opt

#endif  // LEGODB_OPTIMIZER_PLAN_H_
