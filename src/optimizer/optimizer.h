#ifndef LEGODB_OPTIMIZER_OPTIMIZER_H_
#define LEGODB_OPTIMIZER_OPTIMIZER_H_

#include <vector>

#include "common/status.h"
#include "optimizer/cost_model.h"
#include "optimizer/plan.h"
#include "relational/catalog.h"

namespace legodb::opt {

// A planned query block: the chosen physical plan with its estimates.
struct PlannedBlock {
  PhysicalPlanPtr plan;
  double cost = 0;
  double rows = 0;
};

struct PlannedQuery {
  std::vector<PlannedBlock> blocks;
  double total_cost = 0;
};

// A System-R / Volcano-style cost-based optimizer over SPJ blocks, standing
// in for the paper's "relational optimizer" component (Figure 7): access
// path selection (seq scan vs index lookup), join ordering (dynamic
// programming up to CostParams::dp_rel_limit relations, greedy beyond), and
// join method selection (hash join vs index nested loops). Cost estimates
// count seeks, bytes read, bytes written and CPU.
class Optimizer {
 public:
  Optimizer(const rel::Catalog& catalog, CostParams params = {})
      : catalog_(catalog), params_(params) {}

  StatusOr<PlannedBlock> PlanBlock(const QueryBlock& block) const;

  // Plans all blocks of a translated query; total cost is their sum (UNION
  // ALL branches and publish blocks all execute).
  StatusOr<PlannedQuery> PlanQuery(const RelQuery& query) const;

  const CostParams& params() const { return params_; }

 private:
  const rel::Catalog& catalog_;
  CostParams params_;
};

}  // namespace legodb::opt

#endif  // LEGODB_OPTIMIZER_OPTIMIZER_H_
