#include "optimizer/plan.h"

namespace legodb::opt {

namespace {
std::string QualifiedName(const QueryBlock& block, int rel,
                          const std::string& column) {
  if (rel < 0 || rel >= static_cast<int>(block.rels.size())) return column;
  return block.rels[rel].alias + "." + column;
}
}  // namespace

std::string QueryBlock::ToSql() const {
  std::string sql = "SELECT ";
  if (output.empty()) {
    sql += "*";
  } else {
    for (size_t i = 0; i < output.size(); ++i) {
      if (i > 0) sql += ", ";
      sql += QualifiedName(*this, output[i].rel, output[i].column);
    }
  }
  sql += "\nFROM ";
  for (size_t i = 0; i < rels.size(); ++i) {
    if (i > 0) sql += ", ";
    sql += rels[i].table;
    if (rels[i].alias != rels[i].table) sql += " " + rels[i].alias;
  }
  bool first = true;
  auto add_cond = [&](const std::string& cond) {
    sql += first ? "\nWHERE " : "\n  AND ";
    first = false;
    sql += cond;
  };
  for (const auto& j : joins) {
    std::string cond = QualifiedName(*this, j.left_rel, j.left_column) +
                       " = " + QualifiedName(*this, j.right_rel, j.right_column);
    if (j.left_outer) cond += " (+)";  // Oracle-style outer marker, display only
    add_cond(cond);
  }
  for (const auto& f : filters) {
    add_cond(QualifiedName(*this, f.rel, f.column) +
             (f.not_null ? " IS NOT NULL"
                         : std::string(" ") + xq::CompareOpName(f.op) + " " +
                               f.value.ToString()));
  }
  return sql;
}

std::string RelQuery::ToSql() const {
  std::string sql;
  for (size_t i = 0; i < blocks.size(); ++i) {
    if (i > 0) sql += publish ? "\n-- next publish block --\n" : "\nUNION ALL\n";
    sql += blocks[i].ToSql();
  }
  return sql;
}

std::string PhysicalPlan::ToString(const QueryBlock& block, int indent) const {
  std::string pad(2 * indent, ' ');
  std::string out = pad;
  auto rel_name = [&](int r) {
    return r >= 0 && r < static_cast<int>(block.rels.size())
               ? block.rels[r].alias
               : "?";
  };
  auto filters_str = [&]() {
    std::string s;
    for (const auto& f : filters) {
      s += " [" + f.column +
           (f.not_null ? " NOT NULL]"
                       : std::string(xq::CompareOpName(f.op)) +
                             f.value.ToString() + "]");
    }
    return s;
  };
  switch (kind) {
    case Kind::kSeqScan:
      out += "SeqScan(" + rel_name(rel) + ")" + filters_str();
      break;
    case Kind::kIndexLookup:
      out += "IndexLookup(" + rel_name(rel) + "." + index_column + ")" +
             filters_str();
      break;
    case Kind::kHashJoin:
      out += std::string("HashJoin") + (left_outer ? "[left-outer]" : "") +
             "(" + rel_name(left_join_rel) + "." + left_join_column + " = " +
             rel_name(right_join_rel) + "." + right_join_column + ")";
      break;
    case Kind::kIndexNLJoin:
      out += std::string("IndexNLJoin") + (left_outer ? "[left-outer]" : "") +
             "(" + rel_name(left_join_rel) + "." + left_join_column + " -> " +
             rel_name(rel) + "." + index_column + ")" + filters_str();
      break;
    case Kind::kProject:
      out += "Project";
      break;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "  {rows=%.0f cost=%.1f%s}", est_rows,
                est_cost, vectorized ? " vec" : "");
  out += buf;
  out += "\n";
  if (left) out += left->ToString(block, indent + 1);
  if (right) out += right->ToString(block, indent + 1);
  if (child) out += child->ToString(block, indent + 1);
  return out;
}

}  // namespace legodb::opt
