#ifndef LEGODB_OPTIMIZER_COST_MODEL_H_
#define LEGODB_OPTIMIZER_COST_MODEL_H_

namespace legodb::opt {

// Cost-model parameters. Per Section 5 of the paper, the cost of a query is
// estimated from the number of seeks, the amount of data read, the amount of
// data written, and CPU time for in-memory processing.
struct CostParams {
  // Cost of one random I/O (seek + rotational latency), in abstract units.
  double seek_cost = 40.0;
  // Cost per byte read sequentially.
  double read_per_byte = 0.002;
  // Cost per byte written (query results count as writes).
  double write_per_byte = 0.004;
  // CPU cost per tuple processed by an operator.
  double cpu_per_tuple = 0.02;
  // CPU cost per hash-table insert/probe.
  double cpu_per_probe = 0.03;
  // B-tree descent cost for one index probe, expressed in seeks.
  double index_probe_seeks = 1.0;

  // Indexes always exist on primary keys and foreign keys. When set,
  // indexes also exist on columns used in equality predicates (the "in the
  // presence of appropriate indexes" scenario of Section 5.3(b); explored by
  // bench/ablation_indexes).
  bool index_on_predicates = false;

  // Join-order search switches from dynamic programming to a greedy
  // heuristic above this many relations.
  int dp_rel_limit = 12;

  // Storage page size in bytes for the paged backend; 0 models exact-byte
  // sequential IO (the historical default — every golden cost is computed
  // at 0). When set, scans seek once per page and read whole pages, and
  // each index probe reads one page: the terms the disk backend's buffer
  // pool actually measures, so estimated seeks/bytes become comparable to
  // the pool's fault counters in bench/calibration.
  double page_size = 0;
};

}  // namespace legodb::opt

#endif  // LEGODB_OPTIMIZER_COST_MODEL_H_
