#ifndef LEGODB_AUCTION_AUCTION_H_
#define LEGODB_AUCTION_AUCTION_H_

#include <string>

#include "common/status.h"
#include "core/workload.h"
#include "xml/dom.h"
#include "xschema/schema.h"

namespace legodb::auction {

// A second application domain beyond the paper's IMDB: an XMark-style
// online-auction site (people with optional profiles, open auctions with
// bid histories, closed auctions with wildcard annotations, categories).
// Demonstrates that the mapping engine is not specialized to one schema and
// exercises deeper optional nesting than IMDB.
const char* SchemaText();

StatusOr<xs::Schema> Schema();

// Canned queries, XMark-inspired:
//   "A1"  person by id (name, email)
//   "A2"  current price of open auctions above a bound (range predicate)
//   "A3"  bidders of one auction (nested collection lookup)
//   "A4"  sellers' person records joined via reference value (value join)
//   "A5"  income of people interested in a given category
//   "A6"  publish all open auctions
//   "A7"  publish one person by id
//   "A8"  closed-auction annotations from a given source (wildcard step)
const char* QueryText(const std::string& name);

// Workloads: "bidding" (interactive lookups A1-A5, A8) and "export"
// (publishing A6, A7).
StatusOr<core::Workload> MakeWorkload(const std::string& name);

struct AuctionScale {
  int people = 100;
  int open_auctions = 60;
  int closed_auctions = 40;
  int categories = 10;
  double bids_per_auction = 4.0;
  double profile_prob = 0.6;
  double address_prob = 0.7;
  double interests_per_profile = 1.5;
  uint64_t seed = 7;
};

// Generates a document valid under Schema().
xml::Document Generate(const AuctionScale& scale);

}  // namespace legodb::auction

#endif  // LEGODB_AUCTION_AUCTION_H_
