#include "auction/auction.h"

#include <map>

#include "common/rng.h"
#include "xschema/schema_parser.h"

namespace legodb::auction {

const char* SchemaText() {
  return R"(
type Site = site [ People, OpenAuctions, ClosedAuctions, Categories ]

type People = people [ Person{0,*} ]

type Person = person [ @id[ String ],
                       name[ String ],
                       emailaddress[ String ],
                       phone[ String ]?,
                       address[ street[ String ], city[ String ],
                                country[ String ] ]?,
                       profile[ interest[ @category[ String ] ]{0,*},
                                education[ String ]?,
                                income[ Integer ]? ]? ]

type OpenAuctions = open_auctions [ OpenAuction{0,*} ]

type OpenAuction = open_auction [ @id[ String ],
                                  initial[ Integer ],
                                  current[ Integer ],
                                  Bid{0,*},
                                  itemref[ @item[ String ] ],
                                  seller[ @person[ String ] ],
                                  quantity[ Integer ],
                                  ends[ String ] ]

type Bid = bidder [ date[ String ],
                    personref[ @person[ String ] ],
                    increase[ Integer ] ]

type ClosedAuctions = closed_auctions [ ClosedAuction{0,*} ]

type ClosedAuction = closed_auction [ seller[ @person[ String ] ],
                                      buyer[ @person[ String ] ],
                                      itemref[ @item[ String ] ],
                                      price[ Integer ],
                                      date[ String ],
                                      quantity[ Integer ],
                                      annotation[ ~[ String ] ]? ]

type Categories = categories [ Category{0,*} ]

type Category = category [ @id[ String ], name[ String ],
                           description[ ~[ String ] ] ]
)";
}

StatusOr<xs::Schema> Schema() { return xs::ParseSchema(SchemaText()); }

const char* QueryText(const std::string& name) {
  static const std::map<std::string, const char*> kQueries = {
      {"A1", R"(FOR $p IN document("auction")/site/people/person
                WHERE $p/id = c1
                RETURN $p/name, $p/emailaddress)"},
      {"A2", R"(FOR $a IN document("auction")/site/open_auctions/open_auction
                WHERE $a/current > 1000
                RETURN $a/id, $a/current)"},
      {"A3", R"(FOR $a IN document("auction")/site/open_auctions/open_auction
                WHERE $a/id = c1
                RETURN $a/id,
                  FOR $b IN $a/bidder
                  RETURN $b/personref/person, $b/increase)"},
      {"A4", R"(FOR $a IN document("auction")/site/open_auctions/open_auction,
                    $p IN document("auction")/site/people/person
                WHERE $a/seller/person = $p/id
                RETURN $a/id, $p/name)"},
      {"A5", R"(FOR $p IN document("auction")/site/people/person,
                    $i IN $p/profile/interest
                WHERE $i/category = c1
                RETURN $p/name, $p/profile/income)"},
      {"A6", R"(FOR $a IN document("auction")/site/open_auctions/open_auction
                RETURN $a)"},
      {"A7", R"(FOR $p IN document("auction")/site/people/person
                WHERE $p/id = c1 RETURN $p)"},
      {"A8", R"(FOR $c IN
                  document("auction")/site/closed_auctions/closed_auction
                RETURN $c/price, $c/annotation/happiness)"},
  };
  auto it = kQueries.find(name);
  return it == kQueries.end() ? nullptr : it->second;
}

StatusOr<core::Workload> MakeWorkload(const std::string& name) {
  core::Workload workload;
  std::vector<std::pair<const char*, double>> entries;
  if (name == "bidding") {
    entries = {{"A1", 0.3}, {"A2", 0.2}, {"A3", 0.2},
               {"A4", 0.1}, {"A5", 0.1}, {"A8", 0.1}};
  } else if (name == "export") {
    entries = {{"A6", 0.7}, {"A7", 0.3}};
  } else {
    return Status::NotFound("unknown auction workload '" + name + "'");
  }
  for (const auto& [qname, weight] : entries) {
    const char* text = QueryText(qname);
    if (!text) return Status::Internal("missing query");
    LEGODB_RETURN_IF_ERROR(workload.Add(qname, text, weight));
  }
  return workload;
}

xml::Document Generate(const AuctionScale& scale) {
  Rng rng(scale.seed);
  xml::Document doc;
  doc.root = xml::Node::Element("site");
  xml::Node* site = doc.root.get();

  auto person_id = [](int i) { return "person" + std::to_string(i); };
  auto item_id = [](int i) { return "item" + std::to_string(i); };
  auto category_id = [&](int i) {
    return "category" + std::to_string(i % std::max(1, scale.categories));
  };

  xml::Node* people = site->AddElement("people");
  for (int i = 0; i < scale.people; ++i) {
    xml::Node* person = people->AddElement("person");
    person->SetAttribute("id", person_id(i));
    person->AddElement("name", "name" + std::to_string(i));
    person->AddElement("emailaddress",
                       "mail" + std::to_string(i) + "@example.com");
    if (rng.Bernoulli(0.5)) {
      person->AddElement("phone", std::to_string(1000000 + i));
    }
    if (rng.Bernoulli(scale.address_prob)) {
      xml::Node* address = person->AddElement("address");
      address->AddElement("street", std::to_string(i) + " main st");
      address->AddElement("city", "city" + std::to_string(i % 7));
      address->AddElement("country", i % 3 ? "US" : "DE");
    }
    if (rng.Bernoulli(scale.profile_prob)) {
      xml::Node* profile = person->AddElement("profile");
      int interests = static_cast<int>(
          rng.Uniform(static_cast<uint64_t>(scale.interests_per_profile * 2) +
                      1));
      for (int k = 0; k < interests; ++k) {
        profile->AddElement("interest")->SetAttribute(
            "category", category_id(static_cast<int>(rng.Uniform(64))));
      }
      if (rng.Bernoulli(0.5)) {
        profile->AddElement("education", "degree");
      }
      // Always emit an income so the profile is never a fully empty
      // optional element: the fixed mapping cannot distinguish an absent
      // optional from a present-but-empty one (same limitation as the
      // paper's mapping — all its columns would be NULL either way).
      profile->AddElement("income",
                          std::to_string(rng.UniformInt(10000, 200000)));
    }
  }

  xml::Node* open = site->AddElement("open_auctions");
  for (int i = 0; i < scale.open_auctions; ++i) {
    xml::Node* a = open->AddElement("open_auction");
    a->SetAttribute("id", "open" + std::to_string(i));
    int64_t initial = rng.UniformInt(10, 500);
    a->AddElement("initial", std::to_string(initial));
    // Draw the bids first: the schema puts <current> before the bidders.
    struct BidData {
      std::string date;
      std::string person;
      int64_t increase;
    };
    std::vector<BidData> bids;
    int n_bids = static_cast<int>(
        rng.Uniform(static_cast<uint64_t>(scale.bids_per_auction * 2) + 1));
    int64_t current = initial;
    for (int b = 0; b < n_bids; ++b) {
      BidData bid;
      bid.date = "2001-0" + std::to_string(1 + b % 9) + "-01";
      bid.person = person_id(
          static_cast<int>(rng.Uniform(std::max(1, scale.people))));
      bid.increase = rng.UniformInt(5, 600);
      current += bid.increase;
      bids.push_back(std::move(bid));
    }
    a->AddElement("current", std::to_string(current));
    for (const BidData& bid : bids) {
      xml::Node* bidder = a->AddElement("bidder");
      bidder->AddElement("date", bid.date);
      bidder->AddElement("personref")->SetAttribute("person", bid.person);
      bidder->AddElement("increase", std::to_string(bid.increase));
    }
    a->AddElement("itemref")->SetAttribute("item", item_id(i));
    a->AddElement("seller")
        ->SetAttribute("person", person_id(static_cast<int>(rng.Uniform(
                                     std::max(1, scale.people)))));
    a->AddElement("quantity", "1");
    a->AddElement("ends", "2001-12-31");
  }

  xml::Node* closed = site->AddElement("closed_auctions");
  for (int i = 0; i < scale.closed_auctions; ++i) {
    xml::Node* c = closed->AddElement("closed_auction");
    c->AddElement("seller")->SetAttribute(
        "person",
        person_id(static_cast<int>(rng.Uniform(std::max(1, scale.people)))));
    c->AddElement("buyer")->SetAttribute(
        "person",
        person_id(static_cast<int>(rng.Uniform(std::max(1, scale.people)))));
    c->AddElement("itemref")->SetAttribute("item", item_id(1000 + i));
    c->AddElement("price", std::to_string(rng.UniformInt(20, 2000)));
    c->AddElement("date", "2001-06-15");
    c->AddElement("quantity", "1");
    if (rng.Bernoulli(0.5)) {
      xml::Node* annotation = c->AddElement("annotation");
      annotation->AddElement(rng.Bernoulli(0.5) ? "happiness" : "description",
                             "note " + std::to_string(i));
    }
  }

  xml::Node* categories = site->AddElement("categories");
  for (int i = 0; i < scale.categories; ++i) {
    xml::Node* cat = categories->AddElement("category");
    cat->SetAttribute("id", category_id(i));
    cat->AddElement("name", "catname" + std::to_string(i));
    cat->AddElement("description")
        ->AddElement("text", "all about " + std::to_string(i));
  }
  return doc;
}

}  // namespace legodb::auction
