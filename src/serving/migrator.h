#ifndef LEGODB_SERVING_MIGRATOR_H_
#define LEGODB_SERVING_MIGRATOR_H_

// Online storage reconfiguration: shadow-shred, verify, swap, drain.
//
// The paper's cost-based search picks a storage configuration for an
// observed workload — but workloads drift, and the chosen configuration
// with them. A Migrator moves a live database to a new physical schema
// without stopping query serving:
//
//   1. shadow   — map the target p-schema to its relational configuration
//                 (map::MapSchema) and shred the source document into a
//                 fresh shadow store::Database on the caller's thread,
//                 touching nothing the serving path reads;
//   2. prewarm  — build every index and column shadow of the shadow
//                 database, so the first post-swap requests pay no lazy
//                 builds;
//   3. verify   — execute every workload query against the old (pinned)
//                 version and the shadow, requiring bit-identical result
//                 rows (which subsumes row counts); a mismatch aborts.
//                 Publish queries (whole-element returns like `RETURN $s`,
//                 opt::RelQuery::publish) flatten the subtree differently
//                 per storage layout — see tests/equivalence_test.cc,
//                 which excludes them for the same reason — so they are
//                 configuration-dependent by design and are counted as
//                 skipped, not failed;
//   4. swap     — publish the shadow as the registry's next generation:
//                 one pointer store under the registry mutex. New requests
//                 pin the new version; in-flight requests finish on the
//                 version they pinned;
//   5. drain    — wait (bounded) for the superseded version's pin count to
//                 reach zero, and report how long it took.
//
// Rollback contract: the swap in step 4 is the only side effect the
// serving path can observe. Any failure before it — shred error, prewarm
// error, verification mismatch, a fired failpoint — simply abandons the
// shadow (reported as Rolled back, metric `migration.rolled_back`); the
// current version keeps serving untouched. After the swap the migration
// cannot fail. Plan-cache entries compiled against the old generation are
// invalidated lazily: the generation tag turns the next lookup into a
// miss + recompile (see serving/plan_cache.h).
//
// Failure injection: the phases carry failpoint sites `migrate.shred`,
// `migrate.verify`, and `migrate.swap` (the last fires *before* publish,
// so even a "swap failure" rolls back cleanly). The chaos harness arms
// them probabilistically while serving threads hammer the registry.
//
// Concurrency: one migration at a time per Migrator — a second concurrent
// MigrateTo returns Status::Unavailable (the retry layer's cue). Serving
// threads are never blocked by any phase; they only ever see Publish's
// pointer swap.

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "storage/db_registry.h"
#include "xml/dom.h"
#include "xquery/result.h"
#include "xschema/schema.h"

namespace legodb::serving {

// One workload query used for old-vs-new verification.
struct MigrationQuery {
  std::string name;
  std::string text;
};

struct MigrationOptions {
  // Parameter bindings (c1, c2, ...) shared by every verification query.
  std::map<std::string, Value> params;
  // Bound wait for the superseded version to drain after the swap; the
  // migration still succeeds on timeout (the version drains whenever its
  // last request finishes), drain_ms just reports the cap.
  double drain_timeout_ms = 5000;
  // Build all indexes/column shadows of the shadow database before the
  // swap (step 2). Disable only in tests that measure lazy builds.
  bool prewarm = true;
};

struct MigrationReport {
  uint64_t from_generation = 0;
  uint64_t to_generation = 0;  // == from_generation + n on success
  size_t shadow_rows = 0;      // total rows shredded into the shadow
  size_t verified_queries = 0;
  // Publish (whole-subtree) workload queries: their relational flattening
  // is configuration-dependent, so they are not comparable old-vs-new —
  // not counted as verified, and not as failures either.
  size_t skipped_queries = 0;
  double shred_ms = 0;
  double prewarm_ms = 0;
  double verify_ms = 0;
  double swap_ms = 0;   // Publish() latency: the only serving-visible step
  double drain_ms = 0;  // how long the old version stayed pinned post-swap

  std::string ToString() const;
};

class Migrator {
 public:
  // `registry` is the live database being reconfigured; `doc` is the
  // source document to shadow-shred (both non-owned, must outlive the
  // Migrator). The document must be the same one the current version was
  // loaded from, or verification will (correctly) fail.
  Migrator(store::DbRegistry* registry, const xml::Document* doc)
      : registry_(registry), doc_(doc) {}

  // Migrates the registry to the configuration `target` maps to,
  // verifying with `workload`. On any pre-swap failure the registry is
  // untouched and the error is returned (metric `migration.rolled_back`).
  // Thread-safe; concurrent calls beyond the first get Unavailable.
  StatusOr<MigrationReport> MigrateTo(
      const xs::Schema& target,
      const std::vector<MigrationQuery>& workload,
      const MigrationOptions& options = {});

 private:
  StatusOr<MigrationReport> RunPhases(const xs::Schema& target,
                                      const std::vector<MigrationQuery>& workload,
                                      const MigrationOptions& options);

  store::DbRegistry* registry_;
  const xml::Document* doc_;
  std::mutex migrate_mu_;  // one migration at a time
};

// Executes one XQuery text against a pinned version through the full
// relational pipeline (parse, translate, optimize, execute). Exposed for
// the chaos harness, which uses it to cross-check servers against shadow
// configurations. When `publish` is non-null it reports whether the query
// translated to a publish (whole-subtree) query, whose flattening is
// configuration-dependent.
StatusOr<xq::ResultSet> ExecuteAgainstVersion(
    const store::DbVersion& version, const std::string& text,
    const std::map<std::string, Value>& params, bool* publish = nullptr);

}  // namespace legodb::serving

#endif  // LEGODB_SERVING_MIGRATOR_H_
