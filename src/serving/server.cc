#include "serving/server.h"

#include <utility>

#include "common/failpoint.h"
#include "obs/obs.h"
#include "optimizer/optimizer.h"
#include "translate/translate.h"
#include "xquery/parser.h"

namespace legodb::serving {

namespace {

// Releases the admission slot on every exit path of Serve().
class AdmissionGuard {
 public:
  explicit AdmissionGuard(AdmissionController* admission)
      : admission_(admission) {}
  ~AdmissionGuard() { admission_->Release(); }
  AdmissionGuard(const AdmissionGuard&) = delete;
  AdmissionGuard& operator=(const AdmissionGuard&) = delete;

 private:
  AdmissionController* admission_;
};

double MillisSince(int64_t start_ns) {
  return static_cast<double>(obs::NowNanos() - start_ns) / 1e6;
}

}  // namespace

QueryServer::QueryServer(store::DbRegistry* registry, ServerOptions options)
    : registry_(registry),
      options_(options),
      cache_(options.cache_shards, options.cache_capacity_per_shard),
      admission_(options.max_inflight) {}

QueryServer::QueryServer(store::Database* db, const map::Mapping* mapping,
                         ServerOptions options)
    : owned_registry_(std::make_unique<store::DbRegistry>(
          std::shared_ptr<const map::Mapping>(mapping,
                                              [](const map::Mapping*) {}),
          std::shared_ptr<store::Database>(db, [](store::Database*) {}))),
      registry_(owned_registry_.get()),
      options_(options),
      cache_(options.cache_shards, options.cache_capacity_per_shard),
      admission_(options.max_inflight) {}

Status QueryServer::Prewarm() {
  store::DbVersionPtr version = registry_->Current();
  LEGODB_RETURN_IF_ERROR(version->db->PrewarmIndexes());
  return version->db->PrewarmColumns();
}

StatusOr<std::shared_ptr<const PreparedPlan>> QueryServer::PrepareMiss(
    const CanonicalQuery& canonical, const store::DbVersion& version) {
  // The full front end — exactly what every request paid before the cache.
  obs::ScopedTimer timer("serving.prepare_ms");
  LEGODB_ASSIGN_OR_RETURN(xq::Query query, xq::ParseQuery(canonical.text));
  auto plan = std::make_shared<PreparedPlan>();
  plan->canonical_text = canonical.text;
  plan->fingerprint = canonical.fingerprint;
  plan->generation = version.generation;
  LEGODB_ASSIGN_OR_RETURN(plan->query,
                          xlat::TranslateQuery(query, *version.mapping));
  opt::Optimizer optimizer(version.mapping->catalog());
  LEGODB_ASSIGN_OR_RETURN(opt::PlannedQuery planned,
                          optimizer.PlanQuery(plan->query));
  plan->plans.reserve(planned.blocks.size());
  for (const auto& block : planned.blocks) plan->plans.push_back(block.plan);
  LEGODB_ASSIGN_OR_RETURN(plan->programs,
                          engine::PreparedPrograms::Compile(
                              version.db.get(), plan->query, plan->plans));
  return std::shared_ptr<const PreparedPlan>(std::move(plan));
}

StatusOr<Response> QueryServer::Serve(const std::string& query_text,
                                      const RequestOptions& request) {
  obs::Count("serving.requests");
  if (!admission_.TryAdmit()) {
    obs::Count("serving.rejected.overload");
    return Status::Unavailable(
        "server at max in-flight requests (" +
        std::to_string(admission_.max_inflight()) + ")");
  }
  AdmissionGuard guard(&admission_);
  obs::ScopedTimer request_timer("serving.request_ms");
  const int64_t t0 = obs::NowNanos();
  const double budget_ms =
      request.budget_ms < 0 ? options_.request_budget_ms : request.budget_ms;

  // Pin one database version for the whole request: front end, cache key,
  // compilation, and execution all see the same (mapping, db, generation)
  // snapshot even if a migration publishes mid-request. Releasing the pin
  // (end of Serve) is what lets a superseded version drain.
  store::DbVersionPtr version = registry_->Current();

  // Front end: canonicalize, then either hit the cache or pay the full
  // parse/translate/optimize/compile pipeline once for this shape.
  CanonicalQuery canonical = Canonicalize(query_text);
  LEGODB_FAILPOINT("serving.cache_lookup");
  Response response;
  response.generation = version->generation;
  std::shared_ptr<const PreparedPlan> plan =
      cache_.Find(canonical.fingerprint, canonical.text, version->generation);
  if (plan != nullptr) {
    response.cache_hit = true;
  } else {
    LEGODB_ASSIGN_OR_RETURN(plan, PrepareMiss(canonical, *version));
    cache_.Insert(plan);
  }
  response.front_end_ms = MillisSince(t0);
  obs::Observe("serving.front_end_ms", response.front_end_ms);

  // Cancellation / deadline gate between front end and execution: a
  // request that was cancelled or already burned its budget is rejected
  // before it occupies the engine.
  if (request.cancel != nullptr && request.cancel->cancelled()) {
    obs::Count("serving.rejected.cancelled");
    return Status::Cancelled("request cancelled before execution");
  }
  if (budget_ms > 0 && MillisSince(t0) > budget_ms) {
    obs::Count("serving.rejected.deadline");
    return Status::DeadlineExceeded(
        "request exceeded its " + std::to_string(budget_ms) +
        " ms budget before execution");
  }

  // Execute: the request's own parameters plus the canonicalized literal
  // bindings (which take precedence — they *are* the query text). The
  // budget becomes an absolute engine deadline, so DeadlineExceeded can
  // also fire *during* execution, one vector boundary after it expires.
  std::map<std::string, Value> params = request.params;
  for (const auto& [name, value] : canonical.bindings) {
    params[name] = value;
  }
  engine::ExecOptions exec = options_.exec;
  exec.prepared = &plan->programs;
  exec.cancel = request.cancel;
  if (budget_ms > 0) {
    exec.deadline_ns = t0 + static_cast<int64_t>(budget_ms * 1e6);
  }
  engine::Executor executor(version->db.get(), std::move(params), exec);
  const int64_t exec_start = obs::NowNanos();
  LEGODB_ASSIGN_OR_RETURN(response.result,
                          executor.ExecuteQuery(plan->query, plan->plans));
  response.exec_ms = MillisSince(exec_start);
  obs::Observe("serving.exec_ms", response.exec_ms);
  return response;
}

}  // namespace legodb::serving
