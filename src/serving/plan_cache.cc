#include "serving/plan_cache.h"

#include "common/hash.h"
#include "obs/obs.h"

namespace legodb::serving {

PlanCache::PlanCache(size_t shards, size_t capacity_per_shard)
    : capacity_(capacity_per_shard == 0 ? 1 : capacity_per_shard) {
  if (shards == 0) shards = 1;
  shards_.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

PlanCache::Shard& PlanCache::ShardFor(uint64_t fingerprint) {
  // Mix before reducing: FNV fingerprints are well distributed, but a
  // cheap finalize keeps the stripe choice independent of any structure
  // in the low bits.
  return *shards_[common::Mix64(fingerprint) % shards_.size()];
}

std::shared_ptr<const PreparedPlan> PlanCache::Find(
    uint64_t fingerprint, std::string_view canonical_text,
    uint64_t generation) {
  Shard& shard = ShardFor(fingerprint);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(fingerprint);
    if (it != shard.index.end()) {
      const std::shared_ptr<const PreparedPlan>& entry = *it->second;
      if (entry->canonical_text == canonical_text) {
        if (entry->generation == generation) {
          shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
          hits_.fetch_add(1, std::memory_order_relaxed);
          obs::Count("serving.plan_cache.hit");
          return entry;
        }
        // Compiled against a superseded database: its resolved column and
        // index pointers are wrong for the caller's pinned version. Drop
        // it — generations only move forward — and recompile as a miss.
        shard.lru.erase(it->second);
        shard.index.erase(it);
        stale_.fetch_add(1, std::memory_order_relaxed);
        obs::Count("serving.plan_cache.stale");
      } else {
        collisions_.fetch_add(1, std::memory_order_relaxed);
        obs::Count("serving.plan_cache.collision");
      }
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  obs::Count("serving.plan_cache.miss");
  return nullptr;
}

void PlanCache::Insert(std::shared_ptr<const PreparedPlan> plan) {
  Shard& shard = ShardFor(plan->fingerprint);
  int64_t evicted = 0;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(plan->fingerprint);
    if (it != shard.index.end()) {
      // Concurrent sessions that both missed compile the same text; last
      // publication wins and the older entry drains via its shared_ptr.
      shard.lru.erase(it->second);
      shard.index.erase(it);
    }
    shard.lru.push_front(std::move(plan));
    shard.index[shard.lru.front()->fingerprint] = shard.lru.begin();
    while (shard.lru.size() > capacity_) {
      shard.index.erase(shard.lru.back()->fingerprint);
      shard.lru.pop_back();
      ++evicted;
    }
  }
  if (evicted > 0) {
    evictions_.fetch_add(evicted, std::memory_order_relaxed);
    obs::Count("serving.plan_cache.eviction", evicted);
  }
}

PlanCache::Stats PlanCache::GetStats() const {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.collisions = collisions_.load(std::memory_order_relaxed);
  s.stale = stale_.load(std::memory_order_relaxed);
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    s.entries += shard->lru.size();
  }
  return s;
}

}  // namespace legodb::serving
