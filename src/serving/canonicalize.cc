#include "serving/canonicalize.h"

#include <cctype>
#include <cstdlib>

#include "common/hash.h"
#include "xquery/evaluator.h"

namespace legodb::serving {

namespace {

// Mirrors the token classes of the XQuery lexer (xquery/parser.cc). Kept
// deliberately tiny: the serving hot path runs this instead of a parse.
struct Tok {
  enum class Kind { kIdent, kVar, kNumber, kString, kPunct };
  Kind kind = Kind::kPunct;
  std::string_view text;  // literal body for strings (no quotes)
};

class Lexer {
 public:
  explicit Lexer(std::string_view input) : input_(input) {}

  // False at end of input; otherwise fills `out` with the next token.
  bool Next(Tok* out) {
    while (pos_ < input_.size() &&
           std::isspace(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
    if (pos_ >= input_.size()) return false;
    char c = input_[pos_];
    if (c == '$') {
      ++pos_;
      *out = Tok{Tok::Kind::kVar, LexIdent()};
      return true;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      *out = Tok{Tok::Kind::kIdent, LexIdent()};
      return true;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = pos_;
      while (pos_ < input_.size() &&
             std::isdigit(static_cast<unsigned char>(input_[pos_]))) {
        ++pos_;
      }
      *out = Tok{Tok::Kind::kNumber, input_.substr(start, pos_ - start)};
      return true;
    }
    if (c == '"' || c == '\'') {
      char quote = c;
      ++pos_;
      size_t start = pos_;
      while (pos_ < input_.size() && input_[pos_] != quote) ++pos_;
      std::string_view body = input_.substr(start, pos_ - start);
      if (pos_ < input_.size()) ++pos_;
      *out = Tok{Tok::Kind::kString, body};
      return true;
    }
    if (c == '<' && pos_ + 1 < input_.size() && input_[pos_ + 1] == '/') {
      pos_ += 2;
      *out = Tok{Tok::Kind::kPunct, input_.substr(pos_ - 2, 2)};
      return true;
    }
    ++pos_;
    *out = Tok{Tok::Kind::kPunct, input_.substr(pos_ - 1, 1)};
    return true;
  }

 private:
  std::string_view LexIdent() {
    size_t start = pos_;
    while (pos_ < input_.size() &&
           (std::isalnum(static_cast<unsigned char>(input_[pos_])) ||
            input_[pos_] == '_')) {
      ++pos_;
    }
    return input_.substr(start, pos_ - start);
  }

  std::string_view input_;
  size_t pos_ = 0;
};

// A literal is in comparison position iff the previous token ends a
// comparison operator. The grammar's operators are =, !=, <, <=, >, >= —
// lexed as single-character punct tokens, every one of which ends in '=',
// '<' or '>'. `document("...")` follows '(' and never matches.
bool ComparisonPosition(const Tok& prev) {
  return prev.kind == Tok::Kind::kPunct &&
         (prev.text == "=" || prev.text == "<" || prev.text == ">");
}

void AppendQuoted(std::string_view body, std::string* out) {
  // The lexer has no escapes, so a body never contains both quote kinds;
  // pick whichever delimiter the body doesn't use.
  char quote = body.find('"') == std::string_view::npos ? '"' : '\'';
  out->push_back(quote);
  out->append(body);
  out->push_back(quote);
}

}  // namespace

CanonicalQuery Canonicalize(std::string_view query_text) {
  CanonicalQuery out;
  Lexer lex(query_text);
  Tok tok;
  Tok prev;  // starts as empty punct — never comparison position
  bool first = true;
  while (lex.Next(&tok)) {
    if (!first) out.text.push_back(' ');
    first = false;
    bool parameterize = (tok.kind == Tok::Kind::kNumber ||
                         tok.kind == Tok::Kind::kString) &&
                        ComparisonPosition(prev);
    if (parameterize) {
      std::string name = "__p" + std::to_string(out.bindings.size());
      out.text.append(name);
      // Exactly ResolveConstant's literal conversions, so a bound
      // execution is bit-identical to planning the literal text.
      if (tok.kind == Tok::Kind::kNumber) {
        out.bindings.emplace(
            std::move(name),
            Value::Int(std::strtoll(std::string(tok.text).c_str(), nullptr,
                                    10)));
      } else {
        out.bindings.emplace(std::move(name),
                             xq::CanonicalValue(std::string(tok.text)));
      }
    } else {
      switch (tok.kind) {
        case Tok::Kind::kVar:
          out.text.push_back('$');
          out.text.append(tok.text);
          break;
        case Tok::Kind::kString:
          AppendQuoted(tok.text, &out.text);
          break;
        default:
          out.text.append(tok.text);
          break;
      }
    }
    prev = tok;
  }
  out.fingerprint = common::HashString(out.text);
  return out;
}

}  // namespace legodb::serving
