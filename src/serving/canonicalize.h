#ifndef LEGODB_SERVING_CANONICALIZE_H_
#define LEGODB_SERVING_CANONICALIZE_H_

// Lexical query canonicalization for the serving layer's plan cache.
//
// Two textually different requests that differ only in comparison-literal
// constants — `$show/year > 1994` vs `$show/year > 2000` — describe the
// same relational plan shape, and should share one cached entry. Rather
// than parse-then-normalize (which would put a full parse on the cache-hit
// path), Canonicalize() runs a token-level pass with exactly the XQuery
// lexer's rules: every number or string literal that sits in comparison
// position (immediately after a `=`, `<` or `>` token, which terminates
// every comparison operator the grammar admits) is replaced by a generated
// `__pN` bind-parameter identifier, and its value is captured in the
// binding map using the same conversions the executor applies to inline
// literals (ints directly, strings through xq::CanonicalValue) — so a
// cached execution is bit-identical to planning the literal text directly.
// Literals anywhere else — notably the `document("...")` source name,
// which follows a `(` — are structural and stay verbatim.
//
// The canonical text is the token stream re-serialized with single-space
// separators, so whitespace and quote-style differences also collapse into
// one cache entry. The fingerprint is the stable 64-bit hash of that text
// (common/hash.h); cache lookups compare the canonical text on fingerprint
// match to make a 2^-64 collision a miss instead of a wrong answer.

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "common/value.h"

namespace legodb::serving {

struct CanonicalQuery {
  // Canonical text: single-space-joined tokens, comparison literals
  // replaced by __p0, __p1, ... in token order.
  std::string text;
  // Stable hash of `text` — the plan-cache key.
  uint64_t fingerprint = 0;
  // Values of the replaced literals, keyed by their __pN names. Merged
  // into the request's own symbolic parameters at execution time.
  std::map<std::string, Value> bindings;
};

// Never fails: text the parser would reject canonicalizes to something the
// parser rejects identically on the cache-miss path.
CanonicalQuery Canonicalize(std::string_view query_text);

}  // namespace legodb::serving

#endif  // LEGODB_SERVING_CANONICALIZE_H_
