#ifndef LEGODB_SERVING_SERVER_H_
#define LEGODB_SERVING_SERVER_H_

// Concurrent query front end over one versioned store::DbRegistry.
//
// A QueryServer turns raw XQuery text into results through a cached
// prepared-plan pipeline:
//
//   canonicalize (lexical)  ->  plan-cache lookup by fingerprint
//     hit:  bind the request's parameters into the cached plan's compiled
//           templates and execute — no parse, no translate, no optimize
//     miss: parse -> translate -> optimize -> compile templates
//           (engine::PreparedPrograms), publish to the cache, execute
//
// Concurrency model: each request pins one DbVersion (registry->Current())
// for its whole lifetime, so it always sees one consistent
// (mapping, database, generation) snapshot even while a Migrator swaps the
// configuration underneath. Serve() is safe from any number of threads —
// the cache is internally sharded/locked, prepared plans are immutable
// shared_ptrs tagged with the generation they were compiled against (a
// stale entry degrades to a miss + recompile, never a wrong-catalog
// execution), and each request runs its own Executor.
//
// Admission control follows the SearchOptions budget pattern: a bounded
// in-flight request count (exceeding it is a graceful Status::Unavailable,
// the caller's cue to retry — see serving/retry.h — or shed load) and a
// per-request wall-clock budget enforced twice: before execution
// (rejecting a request that burned its budget in the front end) and
// *during* execution, as an absolute deadline the engine polls once per
// exchanged vector (ExecOptions::deadline_ns). Requests may also carry a
// common::CancelToken, polled at the same granularity. The cache path
// carries a failpoint site (`serving.cache_lookup`) so robustness tests
// can force the degraded path.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "common/cancel.h"
#include "common/check.h"
#include "common/status.h"
#include "engine/executor.h"
#include "mapping/mapping.h"
#include "serving/canonicalize.h"
#include "serving/plan_cache.h"
#include "storage/database.h"
#include "storage/db_registry.h"
#include "xquery/result.h"

namespace legodb::serving {

// Bounded in-flight request counter (the "max concurrent sessions" half of
// admission control). Lock-free; usable on its own in tests.
class AdmissionController {
 public:
  // 0 = unbounded (requests are still counted).
  explicit AdmissionController(size_t max_inflight) : max_(max_inflight) {}

  // True and counted when below the bound; false (not counted) otherwise.
  bool TryAdmit() {
    size_t cur = inflight_.load(std::memory_order_relaxed);
    while (true) {
      if (max_ != 0 && cur >= max_) return false;
      if (inflight_.compare_exchange_weak(cur, cur + 1,
                                          std::memory_order_acq_rel)) {
        return true;
      }
    }
  }

  void Release() {
    size_t prev = inflight_.fetch_sub(1, std::memory_order_acq_rel);
    // An unpaired Release would wrap the unsigned counter to ~2^64, which
    // TryAdmit reads as "below any bound" — admission control silently off.
    LEGODB_DCHECK(prev > 0, "AdmissionController::Release without admit");
    (void)prev;
  }

  size_t inflight() const {
    return inflight_.load(std::memory_order_relaxed);
  }
  size_t max_inflight() const { return max_; }

 private:
  size_t max_;
  std::atomic<size_t> inflight_{0};
};

struct ServerOptions {
  // Plan-cache geometry: mutex-striped shards, LRU capacity per shard.
  size_t cache_shards = 8;
  size_t cache_capacity_per_shard = 64;
  // Admission: max concurrently served requests (0 = unbounded) and the
  // default per-request wall-clock budget in ms (0 = no deadline).
  size_t max_inflight = 0;
  double request_budget_ms = 0;
  // Engine knobs for every served execution.
  engine::ExecOptions exec;
};

struct RequestOptions {
  // The caller's symbolic parameter bindings (c1, c2, ...). Names starting
  // with "__p" are reserved for canonicalized literals.
  std::map<std::string, Value> params;
  // Per-request budget override: < 0 uses the server default, 0 disables
  // the deadline, > 0 is a budget in ms.
  double budget_ms = -1;
  // Cooperative cancellation: checked before execution and once per
  // exchanged vector during it (Status::Cancelled). Not owned; must
  // outlive the request.
  const common::CancelToken* cancel = nullptr;
};

struct Response {
  xq::ResultSet result;
  bool cache_hit = false;
  // Database generation this request executed against (the version pinned
  // at admission; see storage/db_registry.h).
  uint64_t generation = 0;
  // Front-end time: canonicalize + cache lookup, plus
  // parse/translate/optimize/template-compile on a miss. The plan cache's
  // whole point is driving this to ~0 on hits.
  double front_end_ms = 0;
  double exec_ms = 0;
};

class QueryServer {
 public:
  // `registry` must hold a loaded (ideally prewarmed) initial version and
  // outlive the server. A Migrator may publish new versions concurrently
  // with serving.
  explicit QueryServer(store::DbRegistry* registry, ServerOptions options = {});

  // Convenience for the common fixed-configuration case: wraps `db` and
  // `mapping` (non-owning; both must outlive the server) in an internal
  // single-version registry.
  QueryServer(store::Database* db, const map::Mapping* mapping,
              ServerOptions options = {});

  // Builds every hash index and column shadow of the *current* version up
  // front so first requests don't pay (or contend on) lazy builds.
  Status Prewarm();

  // Serves one query. Thread-safe. Unavailable when over the in-flight
  // bound; DeadlineExceeded when the wall-clock budget runs out (before or
  // during execution); Cancelled when the request's token fires.
  StatusOr<Response> Serve(const std::string& query_text,
                           const RequestOptions& request = {});

  PlanCache::Stats CacheStats() const { return cache_.GetStats(); }
  size_t inflight() const { return admission_.inflight(); }
  // Direct admission-controller access so tests can occupy in-flight slots
  // and exercise the Unavailable/retry path deterministically.
  AdmissionController& admission_for_test() { return admission_; }
  const ServerOptions& options() const { return options_; }
  store::DbRegistry* registry() const { return registry_; }

 private:
  StatusOr<std::shared_ptr<const PreparedPlan>> PrepareMiss(
      const CanonicalQuery& canonical, const store::DbVersion& version);

  std::unique_ptr<store::DbRegistry> owned_registry_;  // compat ctor only
  store::DbRegistry* registry_;
  ServerOptions options_;
  PlanCache cache_;
  AdmissionController admission_;
};

}  // namespace legodb::serving

#endif  // LEGODB_SERVING_SERVER_H_
