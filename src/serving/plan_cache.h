#ifndef LEGODB_SERVING_PLAN_CACHE_H_
#define LEGODB_SERVING_PLAN_CACHE_H_

// Bounded, sharded LRU cache of prepared query plans, keyed by canonical
// query fingerprint.
//
// Entries are immutable once inserted and handed out as
// shared_ptr<const PreparedPlan>, so a hit can keep executing safely even
// if the entry is evicted (or replaced) mid-flight by another session.
// The key space is striped over N independently locked shards
// (shard = Mix64(fingerprint) % N) so concurrent sessions rarely contend
// on the same mutex; each shard holds at most `capacity` entries and
// evicts its least-recently-used entry on overflow.
//
// A fingerprint match additionally compares the canonical text before
// counting a hit: a 2^-64 fingerprint collision thus degrades to a miss
// (and a `collisions` tick), never to executing the wrong plan.
//
// Entries are also tagged with the database generation they were compiled
// against (see storage/db_registry.h). A lookup passes the generation of
// the version the request pinned; an entry from any other generation is
// *stale* — its compiled programs hold column/index pointers into a
// superseded Database — so the hit degrades to a miss (and a `stale`
// tick), the entry is dropped, and the caller recompiles against the
// pinned version. Generations are monotonic, so a stale entry can never
// become valid again.
//
// Hit/miss/eviction counters are kept locally (always, for tests and
// reports) and mirrored into the ambient obs registry when one is
// installed (serving.plan_cache.{hit,miss,eviction,collision,stale}).

#include <atomic>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "engine/prepared.h"
#include "optimizer/plan.h"

namespace legodb::serving {

// Everything needed to execute a cached query with fresh parameters: the
// translated relational query, its optimized per-block physical plans, and
// the pre-compiled expr-VM templates keyed to those plan nodes. The plans
// member keeps the nodes referenced by `programs` alive.
struct PreparedPlan {
  std::string canonical_text;
  uint64_t fingerprint = 0;
  // Database generation this plan was compiled against; a lookup from any
  // other generation treats the entry as stale (miss + recompile).
  uint64_t generation = 0;
  opt::RelQuery query;
  std::vector<opt::PhysicalPlanPtr> plans;
  engine::PreparedPrograms programs;
};

class PlanCache {
 public:
  struct Stats {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t evictions = 0;
    int64_t collisions = 0;  // fingerprint matched, canonical text didn't
    int64_t stale = 0;       // entry from a superseded database generation
    size_t entries = 0;      // current live entries across all shards

    double HitRate() const {
      int64_t total = hits + misses;
      return total == 0 ? 0 : static_cast<double>(hits) /
                                  static_cast<double>(total);
    }
  };

  // `shards` and `capacity_per_shard` are both clamped to >= 1.
  PlanCache(size_t shards, size_t capacity_per_shard);

  // The cached plan for this canonical query compiled against database
  // `generation`, or nullptr (counted as a miss). A hit moves the entry to
  // the front of its shard's LRU list; an entry whose generation differs
  // is evicted and counted as `stale` (in-flight executions against the
  // old version keep their shared_ptr and finish safely).
  std::shared_ptr<const PreparedPlan> Find(uint64_t fingerprint,
                                           std::string_view canonical_text,
                                           uint64_t generation);

  // Publishes a prepared plan, evicting the shard's LRU entry at capacity.
  // Re-inserting an existing fingerprint replaces the entry (last wins —
  // harmless, both sides compiled the same text).
  void Insert(std::shared_ptr<const PreparedPlan> plan);

  Stats GetStats() const;

  size_t shard_count() const { return shards_.size(); }
  size_t capacity_per_shard() const { return capacity_; }

 private:
  struct Shard {
    std::mutex mu;
    // Front = most recently used.
    std::list<std::shared_ptr<const PreparedPlan>> lru;
    std::map<uint64_t, std::list<std::shared_ptr<const PreparedPlan>>::iterator>
        index;
  };

  Shard& ShardFor(uint64_t fingerprint);

  size_t capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;

  // Lock-free counters so hits never serialize on a shared stats mutex.
  std::atomic<int64_t> hits_{0};
  std::atomic<int64_t> misses_{0};
  std::atomic<int64_t> evictions_{0};
  std::atomic<int64_t> collisions_{0};
  std::atomic<int64_t> stale_{0};
};

}  // namespace legodb::serving

#endif  // LEGODB_SERVING_PLAN_CACHE_H_
