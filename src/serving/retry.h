#ifndef LEGODB_SERVING_RETRY_H_
#define LEGODB_SERVING_RETRY_H_

// Bounded retry with exponential backoff and deterministic jitter for the
// serving layer's load-shedding path.
//
// QueryServer::Serve answers Status::Unavailable in exactly two transient
// situations: the in-flight bound is hit (admission control) or a
// migration holds a resource it will soon release. Both clear on their
// own, so the right client behaviour is to back off briefly and retry a
// bounded number of times — not to drop the request (what bench/serving
// used to do) and not to hammer the server in a tight loop.
//
// The backoff for attempt k is initial_backoff_ms * multiplier^k, capped
// at max_backoff_ms, then scaled by a jitter factor in [0.5, 1.0) derived
// from common::Mix64 over (seed, attempt). The jitter decorrelates competing
// clients (they stop retrying in lockstep) while staying a pure function
// of (seed, attempt) — a fixed seed replays the same backoff schedule
// bit-for-bit, which the chaos harness relies on.
//
// Every other status — including DeadlineExceeded and Cancelled, where the
// caller explicitly gave up — returns immediately without retrying.
//
// The request's wall-clock budget is one absolute deadline across ALL
// attempts: the loop resolves the budget (request override or server
// default) once before the first Serve and passes each attempt only the
// time remaining, so a retried request can never restart its clock. When
// the next backoff would sleep through the deadline, the loop returns
// DeadlineExceeded immediately instead of sleeping into a doomed retry.

#include <cstdint>
#include <string>

#include "common/status.h"
#include "serving/server.h"

namespace legodb::serving {

struct RetryPolicy {
  // Total attempts including the first; values < 1 behave as 1 (no retry).
  int max_attempts = 4;
  double initial_backoff_ms = 0.2;
  double backoff_multiplier = 2.0;
  double max_backoff_ms = 20.0;
  // Seed of the deterministic jitter stream; give each client thread its
  // own seed so their schedules decorrelate.
  uint64_t seed = 0;
};

// What the retry loop actually did, for reporting (bench/serving surfaces
// these in its obs meta).
struct RetryStats {
  int attempts = 0;      // Serve calls issued (>= 1)
  int retries = 0;       // attempts - 1
  double backoff_ms = 0; // total time slept between attempts
};

// Jittered backoff before retry `attempt` (0-based count of failures so
// far), in milliseconds. Pure function of (policy, attempt).
double BackoffMs(const RetryPolicy& policy, int attempt);

// Serves `query_text`, retrying on Status::Unavailable per `policy`.
// Returns the first non-Unavailable outcome, or the last Unavailable once
// attempts are exhausted. `stats` (optional) accumulates across calls.
StatusOr<Response> ServeWithRetry(QueryServer* server,
                                  const std::string& query_text,
                                  const RequestOptions& request,
                                  const RetryPolicy& policy,
                                  RetryStats* stats = nullptr);

}  // namespace legodb::serving

#endif  // LEGODB_SERVING_RETRY_H_
