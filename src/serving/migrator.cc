#include "serving/migrator.h"

#include <memory>
#include <sstream>
#include <utility>

#include "common/failpoint.h"
#include "engine/executor.h"
#include "mapping/mapping.h"
#include "obs/obs.h"
#include "optimizer/optimizer.h"
#include "storage/shredder.h"
#include "translate/translate.h"
#include "xquery/parser.h"

namespace legodb::serving {

namespace {

double MillisSince(int64_t start_ns) {
  return static_cast<double>(obs::NowNanos() - start_ns) / 1e6;
}

}  // namespace

std::string MigrationReport::ToString() const {
  std::ostringstream out;
  out << "migration gen " << from_generation << " -> " << to_generation
      << ": " << shadow_rows << " rows, " << verified_queries
      << " queries verified";
  if (skipped_queries > 0) {
    out << " (" << skipped_queries << " configuration-dependent, skipped)";
  }
  out << " (shred " << shred_ms << " ms, prewarm " << prewarm_ms
      << " ms, verify " << verify_ms << " ms, swap " << swap_ms
      << " ms, drain " << drain_ms << " ms)";
  return out.str();
}

StatusOr<xq::ResultSet> ExecuteAgainstVersion(
    const store::DbVersion& version, const std::string& text,
    const std::map<std::string, Value>& params, bool* publish) {
  LEGODB_ASSIGN_OR_RETURN(xq::Query query, xq::ParseQuery(text));
  LEGODB_ASSIGN_OR_RETURN(opt::RelQuery rq,
                          xlat::TranslateQuery(query, *version.mapping));
  if (publish != nullptr) *publish = rq.publish;
  opt::Optimizer optimizer(version.mapping->catalog());
  LEGODB_ASSIGN_OR_RETURN(opt::PlannedQuery planned, optimizer.PlanQuery(rq));
  std::vector<opt::PhysicalPlanPtr> plans;
  plans.reserve(planned.blocks.size());
  for (const auto& block : planned.blocks) plans.push_back(block.plan);
  engine::Executor executor(version.db.get(), params);
  return executor.ExecuteQuery(rq, plans);
}

StatusOr<MigrationReport> Migrator::MigrateTo(
    const xs::Schema& target, const std::vector<MigrationQuery>& workload,
    const MigrationOptions& options) {
  std::unique_lock<std::mutex> lock(migrate_mu_, std::try_to_lock);
  if (!lock.owns_lock()) {
    return Status::Unavailable("a migration is already in progress");
  }
  obs::Span span("migrate");
  obs::Count("migration.started");
  StatusOr<MigrationReport> report = RunPhases(target, workload, options);
  if (report.ok()) {
    obs::Count("migration.succeeded");
  } else {
    // Nothing was published, so the current version is still serving —
    // "rollback" is simply abandoning the shadow.
    obs::Count("migration.rolled_back");
  }
  return report;
}

StatusOr<MigrationReport> Migrator::RunPhases(
    const xs::Schema& target, const std::vector<MigrationQuery>& workload,
    const MigrationOptions& options) {
  MigrationReport report;
  // Pin the source version for the whole migration: verification compares
  // against exactly the snapshot that was current when we started, even if
  // (impossible here, by the one-at-a-time lock — but cheap to be exact)
  // something else published meanwhile.
  store::DbVersionPtr old_version = registry_->Current();
  report.from_generation = old_version->generation;

  // Phase 1: shadow shred. Builds a complete parallel database; the
  // serving path cannot observe any of it.
  auto mapping = std::make_shared<map::Mapping>();
  auto shadow = std::shared_ptr<store::Database>();
  {
    obs::Span shred_span("migrate.shred");
    const int64_t t0 = obs::NowNanos();
    LEGODB_FAILPOINT("migrate.shred");
    LEGODB_ASSIGN_OR_RETURN(*mapping, map::MapSchema(target));
    // The shadow inherits the serving database's storage backend: a
    // disk-backed deployment must not silently migrate onto the memory
    // backend (or vice versa). It must NOT inherit a named pager path,
    // though — two live pagers on one file would clobber each other — so
    // the shadow always gets its own (anonymous) backing file.
    store::StorageOptions shadow_storage = old_version->db->storage_options();
    shadow_storage.path.clear();
    shadow = std::make_shared<store::Database>(mapping->catalog(),
                                               shadow_storage);
    LEGODB_RETURN_IF_ERROR(
        store::ShredDocument(*doc_, *mapping, shadow.get()));
    report.shred_ms = MillisSince(t0);
  }
  report.shadow_rows = shadow->TotalRows();
  if (old_version->db->TotalRows() > 0 && report.shadow_rows == 0) {
    return Status::Internal(
        "shadow shred produced no rows for a non-empty source");
  }

  // Phase 2: prewarm every index and column shadow, so post-swap requests
  // never pay (or contend on) a first-use build.
  if (options.prewarm) {
    obs::Span prewarm_span("migrate.prewarm");
    const int64_t t0 = obs::NowNanos();
    LEGODB_RETURN_IF_ERROR(shadow->PrewarmIndexes());
    LEGODB_RETURN_IF_ERROR(shadow->PrewarmColumns());
    report.prewarm_ms = MillisSince(t0);
  }

  // Phase 3: verify. Every workload query must return bit-identical rows
  // old-vs-new (the engine preserves document order across configurations,
  // so exact equality is the right bar — and it subsumes row counts).
  {
    obs::Span verify_span("migrate.verify");
    const int64_t t0 = obs::NowNanos();
    LEGODB_FAILPOINT("migrate.verify");
    store::DbVersion shadow_version;
    shadow_version.generation = 0;  // not published yet
    shadow_version.mapping = mapping;
    shadow_version.db = shadow;
    for (const MigrationQuery& wq : workload) {
      bool publish = false;
      LEGODB_ASSIGN_OR_RETURN(
          xq::ResultSet old_rows,
          ExecuteAgainstVersion(*old_version, wq.text, options.params,
                                &publish));
      if (publish) {
        // Whole-subtree return: its flattening into rows is storage-
        // dependent by design (one row per descendant-table row), so
        // old-vs-new comparison is meaningless. Not evidence of
        // corruption; the round-trip reconstruction tests cover these.
        ++report.skipped_queries;
        continue;
      }
      LEGODB_ASSIGN_OR_RETURN(
          xq::ResultSet new_rows,
          ExecuteAgainstVersion(shadow_version, wq.text, options.params));
      if (old_rows.rows.size() != new_rows.rows.size()) {
        return Status::Internal(
            "migration verify failed: query " + wq.name + " returned " +
            std::to_string(old_rows.rows.size()) + " rows old vs " +
            std::to_string(new_rows.rows.size()) + " new");
      }
      if (!(old_rows.rows == new_rows.rows)) {
        return Status::Internal("migration verify failed: query " + wq.name +
                                " rows differ between configurations");
      }
      ++report.verified_queries;
    }
    report.verify_ms = MillisSince(t0);
  }

  // Phase 4: swap — the commit point, and the only serving-visible step.
  // The failpoint fires *before* Publish so an injected "swap failure"
  // still rolls back cleanly; after Publish nothing can fail.
  {
    obs::Span swap_span("migrate.swap");
    const int64_t t0 = obs::NowNanos();
    LEGODB_FAILPOINT("migrate.swap");
    store::DbVersionPtr published =
        registry_->Publish(std::move(mapping), std::move(shadow));
    report.to_generation = published->generation;
    report.swap_ms = MillisSince(t0);
    obs::Observe("migration.swap_ms", report.swap_ms);
  }

  // Phase 5: drain — wait (bounded) for requests pinned to the old version
  // to finish. Purely observational: the version frees itself regardless.
  report.drain_ms =
      store::DbRegistry::WaitForDrain(old_version, options.drain_timeout_ms);
  obs::Observe("migration.drain_ms", report.drain_ms);
  return report;
}

}  // namespace legodb::serving
