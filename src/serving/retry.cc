#include "serving/retry.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/hash.h"
#include "obs/obs.h"

namespace legodb::serving {

double BackoffMs(const RetryPolicy& policy, int attempt) {
  double base = policy.initial_backoff_ms;
  for (int i = 0; i < attempt; ++i) base *= policy.backoff_multiplier;
  base = std::min(base, policy.max_backoff_ms);
  // Jitter factor in [0.5, 1.0): deterministic per (seed, attempt), so a
  // fixed seed replays the same schedule while distinct seeds decorrelate.
  uint64_t h = common::Mix64(policy.seed ^
                             (0x9e3779b97f4a7c15ULL * (attempt + 1)));
  double unit = static_cast<double>(h >> 11) / 9007199254740992.0;  // 2^53
  return base * (0.5 + 0.5 * unit);
}

StatusOr<Response> ServeWithRetry(QueryServer* server,
                                  const std::string& query_text,
                                  const RequestOptions& request,
                                  const RetryPolicy& policy,
                                  RetryStats* stats) {
  const int max_attempts = std::max(policy.max_attempts, 1);
  for (int attempt = 0;; ++attempt) {
    StatusOr<Response> response = server->Serve(query_text, request);
    if (stats != nullptr) ++stats->attempts;
    if (response.ok() ||
        response.status().code() != Status::Code::kUnavailable ||
        attempt + 1 >= max_attempts) {
      if (!response.ok() &&
          response.status().code() == Status::Code::kUnavailable) {
        obs::Count("serving.retry.exhausted");
      }
      return response;
    }
    double backoff = BackoffMs(policy, attempt);
    obs::Count("serving.retry.attempt");
    obs::Observe("serving.retry.backoff_ms", backoff);
    if (stats != nullptr) {
      ++stats->retries;
      stats->backoff_ms += backoff;
    }
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(backoff));
  }
}

}  // namespace legodb::serving
