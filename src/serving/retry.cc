#include "serving/retry.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/hash.h"
#include "obs/obs.h"

namespace legodb::serving {

double BackoffMs(const RetryPolicy& policy, int attempt) {
  double base = policy.initial_backoff_ms;
  for (int i = 0; i < attempt; ++i) base *= policy.backoff_multiplier;
  base = std::min(base, policy.max_backoff_ms);
  // Jitter factor in [0.5, 1.0): deterministic per (seed, attempt), so a
  // fixed seed replays the same schedule while distinct seeds decorrelate.
  uint64_t h = common::Mix64(policy.seed ^
                             (0x9e3779b97f4a7c15ULL * (attempt + 1)));
  double unit = static_cast<double>(h >> 11) / 9007199254740992.0;  // 2^53
  return base * (0.5 + 0.5 * unit);
}

StatusOr<Response> ServeWithRetry(QueryServer* server,
                                  const std::string& query_text,
                                  const RequestOptions& request,
                                  const RetryPolicy& policy,
                                  RetryStats* stats) {
  const int max_attempts = std::max(policy.max_attempts, 1);
  // Resolve the wall-clock budget ONCE, before the first attempt. Serve()
  // stamps its deadline from the time it is called, so passing the original
  // request to every retry would restart the clock per attempt and a
  // retried request could run arbitrarily past its budget. Instead the loop
  // owns one absolute deadline and hands each attempt only what is left.
  double budget_ms = request.budget_ms;
  if (budget_ms < 0) budget_ms = server->options().request_budget_ms;
  const uint64_t deadline_ns =
      budget_ms > 0
          ? obs::NowNanos() + static_cast<uint64_t>(budget_ms * 1e6)
          : 0;
  RequestOptions attempt_request = request;
  for (int attempt = 0;; ++attempt) {
    if (deadline_ns != 0) {
      uint64_t now = obs::NowNanos();
      if (now >= deadline_ns) {
        obs::Count("serving.retry.deadline");
        return Status::DeadlineExceeded("retry budget exhausted after " +
                                        std::to_string(attempt) +
                                        " attempt(s)");
      }
      attempt_request.budget_ms =
          static_cast<double>(deadline_ns - now) / 1e6;
    }
    StatusOr<Response> response = server->Serve(query_text, attempt_request);
    if (stats != nullptr) ++stats->attempts;
    if (response.ok() ||
        response.status().code() != Status::Code::kUnavailable ||
        attempt + 1 >= max_attempts) {
      if (!response.ok() &&
          response.status().code() == Status::Code::kUnavailable) {
        obs::Count("serving.retry.exhausted");
      }
      return response;
    }
    double backoff = BackoffMs(policy, attempt);
    if (deadline_ns != 0) {
      double remaining_ms =
          (static_cast<double>(deadline_ns) -
           static_cast<double>(obs::NowNanos())) /
          1e6;
      // Sleeping through the deadline only to be rejected on wake is a
      // doomed retry; report the budget as exceeded instead of Unavailable.
      if (remaining_ms <= backoff) {
        obs::Count("serving.retry.deadline");
        return Status::DeadlineExceeded(
            "retry backoff would overrun the request budget (attempt " +
            std::to_string(attempt + 1) + ")");
      }
    }
    obs::Count("serving.retry.attempt");
    obs::Observe("serving.retry.backoff_ms", backoff);
    if (stats != nullptr) {
      ++stats->retries;
      stats->backoff_ms += backoff;
    }
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(backoff));
  }
}

}  // namespace legodb::serving
