#include "translate/translate.h"

#include <algorithm>
#include <functional>
#include <set>

#include "common/failpoint.h"
#include "common/str_util.h"
#include "obs/obs.h"
#include "xquery/evaluator.h"

namespace legodb::xlat {
namespace {

using map::ChildRef;
using map::Mapping;
using map::RelPath;
using map::Slot;
using map::TypeMapping;

// A navigation position: a base relation in the block under construction, the
// named type it instantiates, and the inline path inside that type's body.
struct Pos {
  int rel = -1;  // -1: unbound (outer-join miss), yields NULLs
  std::string type;
  RelPath path;
};

// One UNION ALL branch under construction.
struct World {
  opt::QueryBlock block;
  std::map<std::string, Pos> vars;
  std::vector<opt::ColumnRef> outputs;
  std::vector<std::string> publish_vars;
  bool dead = false;
};

bool PathHasPrefix(const RelPath& path, const RelPath& prefix) {
  if (path.size() < prefix.size()) return false;
  return std::equal(prefix.begin(), prefix.end(), path.begin());
}

// Scalar (non-tilde) slot exactly at `path`.
const Slot* ScalarSlotAt(const TypeMapping& tm, const RelPath& path) {
  for (const auto& slot : tm.slots) {
    if (!slot.is_tilde && slot.path == path) return &slot;
  }
  return nullptr;
}

const Slot* TildeSlotAt(const TypeMapping& tm, const RelPath& path) {
  for (const auto& slot : tm.slots) {
    if (slot.is_tilde && slot.path == path) return &slot;
  }
  return nullptr;
}

// Any slot or child reference strictly inside `prefix`?
bool HasContentUnder(const TypeMapping& tm, const RelPath& prefix) {
  for (const auto& slot : tm.slots) {
    if (PathHasPrefix(slot.path, prefix)) return true;
  }
  for (const auto& child : tm.children) {
    if (PathHasPrefix(child.path, prefix)) return true;
  }
  return false;
}

class Translator {
 public:
  Translator(const xq::Query& query, const Mapping& mapping)
      : q_(query), m_(mapping) {}

  StatusOr<opt::RelQuery> Run() {
    std::vector<World> worlds(1);
    LEGODB_RETURN_IF_ERROR(TranslateBody(q_, &worlds, /*outer_mode=*/false));

    opt::RelQuery out;
    out.labels = xq::QueryLabels(q_);
    bool publish = false;
    for (const auto& w : worlds) publish |= !w.publish_vars.empty();
    out.publish = publish;
    std::set<std::string> published;  // types already dumped (see below)

    for (World& w : worlds) {
      if (w.dead || w.block.rels.empty()) continue;
      if (!publish) {
        // Prune union branches in which every returned path is statically
        // absent: the branch contributes no data (e.g. asking for
        // `description` in the Movie partition of a distributed Show).
        bool any_value = w.outputs.empty();
        for (const auto& o : w.outputs) any_value |= o.rel >= 0;
        if (!any_value) continue;
        w.block.output = w.outputs;
        out.blocks.push_back(std::move(w.block));
        continue;
      }
      // Publish: the main block carries the scalar outputs plus the
      // published types' own columns; one extra block per descendant table
      // (the outer-union reconstruction strategy). When the binding context
      // has no filters ("publish everything"), the blocks degenerate to
      // plain table scans — no ancestor joins are needed to identify the
      // published rows.
      bool unfiltered = w.block.filters.empty() && w.outputs.empty();
      opt::QueryBlock base = w.block;  // binding context, no outputs yet
      if (unfiltered) {
        for (const auto& var : w.publish_vars) {
          const Pos& pos = w.vars.at(var);
          if (pos.rel < 0) continue;
          // `published` is shared across union worlds: partitions of one
          // logical type (e.g. Show_Part1/Show_Part2) share child tables,
          // and each table needs dumping only once.
          EmitPublishScans(pos.type, &published, &out.blocks);
        }
        continue;
      }
      opt::QueryBlock main = base;
      main.output = w.outputs;
      std::vector<opt::QueryBlock> extra;
      for (const auto& var : w.publish_vars) {
        const Pos& pos = w.vars.at(var);
        if (pos.rel < 0) continue;
        AppendAllColumns(&main, pos.rel);
        EmitDescendantBlocks(base, pos, &extra);
      }
      out.blocks.push_back(std::move(main));
      for (auto& b : extra) out.blocks.push_back(std::move(b));
    }
    return out;
  }

 private:
  // ---- block building helpers ----

  static int AddRel(opt::QueryBlock* block, const std::string& table) {
    opt::BaseRel rel;
    rel.table = table;
    rel.alias = table + "#" + std::to_string(block->rels.size());
    block->rels.push_back(std::move(rel));
    return static_cast<int>(block->rels.size()) - 1;
  }

  void AppendAllColumns(opt::QueryBlock* block, int rel) const {
    const rel::Table& table =
        m_.catalog().GetTable(block->rels[rel].table);
    for (const auto& col : table.columns) {
      opt::ColumnRef ref;
      ref.rel = rel;
      ref.column = col.name;
      ref.label = block->rels[rel].alias + "." + col.name;
      block->output.push_back(std::move(ref));
    }
  }

  // Joins child type `child` (non-virtual) under `parent_rel` of type
  // `parent_type`; returns the child's new rel index, or -1 when no FK links
  // them (should not happen on well-formed mappings).
  int JoinChild(opt::QueryBlock* block, int parent_rel,
                const std::string& parent_type, const std::string& child,
                bool outer) const {
    const TypeMapping& ctm = m_.GetType(child);
    const std::string* fk = nullptr;
    for (const auto& link : ctm.parents) {
      if (link.parent_type == parent_type) {
        fk = &link.fk_column;
        break;
      }
    }
    if (!fk) return -1;
    int rel = AddRel(block, ctm.table);
    const rel::Table& ptable = m_.catalog().GetTable(
        m_.GetType(parent_type).table);
    opt::JoinEdge edge;
    edge.left_rel = parent_rel;
    edge.left_column = ptable.key_column;
    edge.right_rel = rel;
    edge.right_column = *fk;
    edge.left_outer = outer;
    block->joins.push_back(std::move(edge));
    return rel;
  }

  void AddTildeFilter(World* w, int rel, const std::string& type,
                      const RelPath& tilde_path, const std::string& tag) const {
    const Slot* tilde = TildeSlotAt(m_.GetType(type), tilde_path);
    if (!tilde) return;
    opt::FilterPred pred;
    pred.rel = rel;
    pred.column = tilde->column;
    pred.value = xq::Constant::Str(tag);
    w->block.filters.push_back(std::move(pred));
  }

  // ---- navigation ----

  struct Route {
    World world;
    Pos pos;
  };

  // All ways one step `s` can proceed from `pos` in world `w`. Path
  // components may carry ordinal suffixes ("~#2"); each matching component
  // is its own route.
  std::vector<Route> StepFrom(const World& w, const Pos& pos,
                              const std::string& s, bool outer) const {
    std::vector<Route> routes;
    if (pos.rel < 0) return routes;
    const TypeMapping& tm = m_.GetType(pos.type);

    // Distinct components that extend the current inline path by one step.
    std::set<std::string> comps;
    auto scan = [&](const RelPath& p) {
      if (p.size() > pos.path.size() &&
          std::equal(pos.path.begin(), pos.path.end(), p.begin())) {
        comps.insert(p[pos.path.size()]);
      }
    };
    for (const auto& slot : tm.slots) scan(slot.path);
    for (const auto& child : tm.children) scan(child.path);

    // (1) inline element / attribute / wildcard content.
    bool matched_elem = false;
    for (const std::string& comp : comps) {
      std::string base = map::BaseStep(comp);
      RelPath cand = pos.path;
      cand.push_back(comp);
      if (StartsWith(s, "@")) {
        if (comp == s) {
          routes.push_back(Route{w, Pos{pos.rel, pos.type, cand}});
        }
        continue;
      }
      if (base == s) {
        routes.push_back(Route{w, Pos{pos.rel, pos.type, cand}});
        matched_elem = true;
      } else if (base == "~") {
        const Slot* tilde = TildeSlotAt(tm, cand);
        if (tilde && tilde->wildcard_name.Matches(s)) {
          World w2 = w;
          AddTildeFilter(&w2, pos.rel, pos.type, cand, s);
          routes.push_back(
              Route{std::move(w2), Pos{pos.rel, pos.type, cand}});
        }
      }
    }
    // Plain-name fallback to an attribute (the paper's Q1 writes $v/type).
    if (!StartsWith(s, "@") && !matched_elem && comps.count("@" + s)) {
      RelPath cand = pos.path;
      cand.push_back("@" + s);
      routes.push_back(Route{w, Pos{pos.rel, pos.type, cand}});
    }

    // (2) cross into child types referenced at this position.
    if (!StartsWith(s, "@")) {
      for (const ChildRef* child : ChildRefsAt(tm, pos.path)) {
        EnterChild(w, pos.rel, pos.type, child->type_name, s, outer,
                   /*depth=*/0, &routes);
      }
    }
    return routes;
  }

  std::vector<const ChildRef*> ChildRefsAt(const TypeMapping& tm,
                                           const RelPath& path) const {
    std::vector<const ChildRef*> out;
    for (const auto& child : tm.children) {
      if (child.path == path) out.push_back(&child);
    }
    return out;
  }

  // Tries to enter child type `child` with step `s` from `parent_rel`
  // (of non-virtual type `parent_type`), expanding virtual unions and
  // hopping through top-level references.
  void EnterChild(const World& w, int parent_rel,
                  const std::string& parent_type, const std::string& child,
                  const std::string& s, bool outer, int depth,
                  std::vector<Route>* routes) const {
    if (depth > 8) return;
    const TypeMapping& ctm = m_.GetType(child);
    if (ctm.virtual_union) {
      for (const auto& alt : ctm.union_alternatives) {
        EnterChild(w, parent_rel, parent_type, alt, s, outer, depth + 1,
                   routes);
      }
      return;
    }
    // Direct entry: a top-level component of the child matches `s`
    // (components may carry ordinal suffixes).
    std::set<std::string> tried;
    auto try_entry = [&](const std::string& comp) {
      if (!tried.insert(comp).second) return;
      std::string base = map::BaseStep(comp);
      if (base == "~") {
        const Slot* tilde = TildeSlotAt(ctm, {comp});
        if (!tilde || !tilde->wildcard_name.Matches(s)) return;
        World w2 = w;
        int rel = JoinChild(&w2.block, parent_rel, parent_type, child, outer);
        if (rel < 0) return;
        AddTildeFilter(&w2, rel, child, {comp}, s);
        routes->push_back(Route{std::move(w2), Pos{rel, child, {comp}}});
      } else if (base == s) {
        World w2 = w;
        int rel = JoinChild(&w2.block, parent_rel, parent_type, child, outer);
        if (rel < 0) return;
        routes->push_back(Route{std::move(w2), Pos{rel, child, {comp}}});
      }
    };
    for (const auto& slot : ctm.slots) {
      if (!slot.path.empty() && !StartsWith(slot.path[0], "@")) {
        try_entry(slot.path[0]);
      }
    }
    for (const auto& cref : ctm.children) {
      if (!cref.path.empty()) {
        try_entry(cref.path[0]);
      } else {
        // Top-level reference inside the child: join the child, then try to
        // enter the grandchild.
        World w2 = w;
        int rel = JoinChild(&w2.block, parent_rel, parent_type, child, outer);
        if (rel < 0) continue;
        EnterChild(w2, rel, child, cref.type_name, s, outer, depth + 1,
                   routes);
      }
    }
  }

  // Navigates a multi-step path; each element of the result is one complete
  // route (its own world branch).
  std::vector<Route> NavigatePath(const World& w, const Pos& start,
                                  const std::vector<std::string>& steps,
                                  bool outer) const {
    std::vector<Route> current = {Route{w, start}};
    for (const auto& step : steps) {
      std::vector<Route> next;
      for (const auto& route : current) {
        std::vector<Route> expanded =
            StepFrom(route.world, route.pos, step, outer);
        next.insert(next.end(), expanded.begin(), expanded.end());
      }
      current = std::move(next);
      if (current.empty()) break;
    }
    return current;
  }

  // Navigates to a scalar value: the terminal position must hold a scalar
  // slot (the element's own content).
  struct ScalarRoute {
    World world;
    int rel;
    std::string column;
    bool nullable = false;
  };
  std::vector<ScalarRoute> NavigateToScalar(
      const World& w, const xq::PathExpr& path) const {
    std::vector<ScalarRoute> out;
    auto it = w.vars.find(path.var);
    if (it == w.vars.end()) return out;
    for (auto& route : NavigatePath(w, it->second, path.steps,
                                    /*outer=*/false)) {
      if (route.pos.rel < 0) continue;
      const Slot* slot =
          ScalarSlotAt(m_.GetType(route.pos.type), route.pos.path);
      if (!slot) continue;
      out.push_back(ScalarRoute{std::move(route.world), route.pos.rel,
                                slot->column, slot->optional});
    }
    return out;
  }

  // ---- clause translation ----

  Status BindFor(const xq::ForBinding& b, std::vector<World>* worlds,
                 bool outer_mode) const {
    std::vector<World> next;
    for (World& w : *worlds) {
      if (w.dead) continue;
      std::vector<Route> routes;
      if (b.from_document) {
        if (b.steps.empty()) {
          return Status::Unsupported("document() binding needs a path");
        }
        const std::string& root = m_.schema().root_type();
        const TypeMapping& rtm = m_.GetType(root);
        if (rtm.virtual_union) {
          return Status::Unsupported("virtual root type");
        }
        World w2 = w;
        int rel = AddRel(&w2.block, rtm.table);
        // The first step names the root element itself.
        RelPath entry = {b.steps[0]};
        if (ScalarSlotAt(rtm, entry) || HasContentUnder(rtm, entry) ||
            !ChildRefsAt(rtm, entry).empty()) {
          Pos pos{rel, root, entry};
          std::vector<std::string> rest(b.steps.begin() + 1, b.steps.end());
          routes = NavigatePath(w2, pos, rest, /*outer=*/outer_mode);
        }
      } else {
        auto it = w.vars.find(b.source_var);
        if (it == w.vars.end()) {
          return Status::InvalidArgument("unbound variable $" + b.source_var);
        }
        routes = NavigatePath(w, it->second, b.steps, outer_mode);
      }
      if (routes.empty()) {
        if (outer_mode) {
          // Left outer: keep the world, variable is unbound (NULL columns).
          World w2 = w;
          w2.vars[b.var] = Pos{-1, "", {}};
          next.push_back(std::move(w2));
        }
        // Inner: binding can never match in this branch; world dropped.
        continue;
      }
      for (auto& route : routes) {
        World w2 = std::move(route.world);
        w2.vars[b.var] = route.pos;
        next.push_back(std::move(w2));
      }
    }
    *worlds = std::move(next);
    return Status::OK();
  }

  Status ApplyPredicate(const xq::Predicate& p,
                        std::vector<World>* worlds) const {
    std::vector<World> next;
    for (World& w : *worlds) {
      if (w.dead) continue;
      std::vector<ScalarRoute> lhs = NavigateToScalar(w, p.lhs);
      for (auto& route : lhs) {
        if (!p.rhs_is_path) {
          World w2 = std::move(route.world);
          opt::FilterPred pred;
          pred.rel = route.rel;
          pred.column = route.column;
          pred.op = p.op;
          pred.value = p.rhs_const;
          w2.block.filters.push_back(std::move(pred));
          next.push_back(std::move(w2));
          continue;
        }
        if (p.op != xq::CompareOp::kEq) {
          return Status::Unsupported("non-equality value joins");
        }
        // Value join: navigate the right-hand path inside this route.
        std::vector<ScalarRoute> rhs =
            NavigateToScalar(route.world, p.rhs_path);
        for (auto& rroute : rhs) {
          World w2 = std::move(rroute.world);
          opt::JoinEdge edge;
          edge.left_rel = route.rel;
          edge.left_column = route.column;
          edge.right_rel = rroute.rel;
          edge.right_column = rroute.column;
          w2.block.joins.push_back(std::move(edge));
          next.push_back(std::move(w2));
        }
      }
      // No routes: predicate unsatisfiable in this branch; world dropped.
    }
    *worlds = std::move(next);
    return Status::OK();
  }

  Status EmitReturnPath(const xq::PathExpr& path, std::vector<World>* worlds,
                        bool outer_mode) const {
    std::string label = path.ToString();
    std::vector<World> next;
    for (World& w : *worlds) {
      if (w.dead) continue;
      auto it = w.vars.find(path.var);
      std::vector<ScalarRoute> routes;
      if (it != w.vars.end() && it->second.rel >= 0) {
        // Strict projection semantics: a return path is an inner join; a
        // union branch where the path is statically absent dies. Inside an
        // outer-joined subquery the joins preserve the outer rows instead.
        for (auto& route :
             NavigatePath(w, it->second, path.steps, /*outer=*/outer_mode)) {
          if (route.pos.rel < 0) continue;
          const Slot* slot =
              ScalarSlotAt(m_.GetType(route.pos.type), route.pos.path);
          if (!slot) continue;
          routes.push_back(ScalarRoute{std::move(route.world), route.pos.rel,
                                       slot->column, slot->optional});
        }
      }
      if (routes.empty()) {
        if (outer_mode) {
          // Keep the outer row; the missing value renders as NULL.
          World w2 = std::move(w);
          opt::ColumnRef ref;
          ref.rel = -1;
          ref.label = label;
          w2.outputs.push_back(std::move(ref));
          next.push_back(std::move(w2));
        }
        // Strict mode: branch produces no rows; world dropped.
        continue;
      }
      for (auto& route : routes) {
        World w2 = std::move(route.world);
        opt::ColumnRef ref;
        ref.rel = route.rel;
        ref.column = route.column;
        ref.label = label;
        // Strict projection over a nullable inlined column: rows where the
        // value is absent are filtered out (IS NOT NULL).
        if (!outer_mode && route.nullable) {
          opt::FilterPred pred;
          pred.rel = route.rel;
          pred.column = route.column;
          pred.not_null = true;
          w2.block.filters.push_back(std::move(pred));
        }
        w2.outputs.push_back(std::move(ref));
        next.push_back(std::move(w2));
      }
    }
    *worlds = std::move(next);
    return Status::OK();
  }

  Status TranslateBody(const xq::Query& q, std::vector<World>* worlds,
                       bool outer_mode) const {
    for (const auto& b : q.fors) {
      LEGODB_RETURN_IF_ERROR(BindFor(b, worlds, outer_mode));
    }
    for (const auto& p : q.where) {
      LEGODB_RETURN_IF_ERROR(ApplyPredicate(p, worlds));
    }
    for (const xq::ReturnItem* item : q.FlatReturnItems()) {
      switch (item->kind) {
        case xq::ReturnItem::Kind::kPath:
          if (item->path.steps.empty()) {
            for (World& w : *worlds) {
              if (!w.dead) w.publish_vars.push_back(item->path.var);
            }
          } else {
            LEGODB_RETURN_IF_ERROR(
                EmitReturnPath(item->path, worlds, outer_mode));
          }
          break;
        case xq::ReturnItem::Kind::kSubquery: {
          bool sub_outer = item->subquery->where.empty();
          LEGODB_RETURN_IF_ERROR(
              TranslateBody(*item->subquery, worlds, sub_outer));
          break;
        }
        case xq::ReturnItem::Kind::kElement:
          return Status::Internal("element items are pre-flattened");
      }
    }
    return Status::OK();
  }

  // ---- publish ----

  // Unfiltered publish: one single-table scan block per concrete type
  // reachable from `type` (including itself), each type emitted once.
  void EmitPublishScans(const std::string& type, std::set<std::string>* done,
                        std::vector<opt::QueryBlock>* out) const {
    std::function<void(const std::string&, int)> visit =
        [&](const std::string& name, int depth) {
          if (depth > 16 || !done->insert(name).second) return;
          const TypeMapping& tm = m_.GetType(name);
          if (!tm.virtual_union) {
            opt::QueryBlock block;
            int rel = AddRel(&block, tm.table);
            AppendAllColumns(&block, rel);
            out->push_back(std::move(block));
          }
          for (const auto& child : tm.children) {
            visit(child.type_name, depth + 1);
          }
        };
    visit(type, 0);
  }

  // Emits one block per descendant table of the published position:
  // binding context + inner joins down the chain + all columns of the leaf.
  void EmitDescendantBlocks(const opt::QueryBlock& base, const Pos& pos,
                            std::vector<opt::QueryBlock>* out) const {
    struct Frame {
      opt::QueryBlock block;
      int rel;
      std::string type;
      int depth;
    };
    std::vector<Frame> stack;
    stack.push_back(Frame{base, pos.rel, pos.type, 0});
    int emitted = 0;
    while (!stack.empty() && emitted < 256) {
      Frame f = std::move(stack.back());
      stack.pop_back();
      if (f.depth > 8) continue;
      const TypeMapping& tm = m_.GetType(f.type);
      std::function<void(const std::string&, int)> descend =
          [&](const std::string& child, int vdepth) {
            const TypeMapping& ctm = m_.GetType(child);
            if (ctm.virtual_union) {
              if (vdepth > 8) return;
              for (const auto& alt : ctm.union_alternatives) {
                descend(alt, vdepth + 1);
              }
              return;
            }
            opt::QueryBlock block = f.block;
            int rel = JoinChild(&block, f.rel, f.type, child, /*outer=*/false);
            if (rel < 0) return;
            opt::QueryBlock leaf = block;
            AppendAllColumns(&leaf, rel);
            out->push_back(std::move(leaf));
            ++emitted;
            stack.push_back(Frame{std::move(block), rel, child, f.depth + 1});
          };
      for (const auto& child : tm.children) descend(child.type_name, 0);
    }
  }

  const xq::Query& q_;
  const Mapping& m_;
};

}  // namespace

StatusOr<opt::RelQuery> TranslateQuery(const xq::Query& query,
                                       const Mapping& mapping) {
  LEGODB_FAILPOINT("translate.query");
  obs::ScopedTimer timer("translate.ms");
  obs::Count("translate.queries");
  StatusOr<opt::RelQuery> result = Translator(query, mapping).Run();
  if (result.ok()) {
    obs::Count("translate.blocks",
               static_cast<int64_t>(result->blocks.size()));
  }
  return result;
}

}  // namespace legodb::xlat
