#ifndef LEGODB_TRANSLATE_TRANSLATE_H_
#define LEGODB_TRANSLATE_TRANSLATE_H_

#include "common/status.h"
#include "mapping/mapping.h"
#include "optimizer/plan.h"
#include "xquery/ast.h"

namespace legodb::xlat {

// Translates an XQuery (the supported FLWR subset) into relational query
// blocks against the relational configuration of `mapping` — the
// Query/Schema Translation module of Figure 7.
//
// Semantics (mirroring xquery::EvaluateOnDocument):
//  - each FOR variable binds to a named type; when a binding resolves to a
//    union of types (a union-distributed schema), the query splits into one
//    block per combination of alternatives (UNION ALL);
//  - path steps that stay inside one type's inlined content become column
//    accesses; steps that cross a type reference become foreign-key joins;
//  - steps through wildcard positions add equality predicates on the
//    `tilde` tag-name column;
//  - WHERE predicates become filters (constants) or join edges (path=path);
//    a block whose predicate path cannot exist in its union alternative is
//    pruned;
//  - return paths that cross type references use left outer joins (a
//    missing value yields NULL, like the DOM evaluator); nested FLWR return
//    items translate into the same block — left outer when they have no
//    WHERE clause, inner otherwise;
//  - a bare `$v` return item marks a publish query: the result contains one
//    block per table reachable from the variable's type (the variable's own
//    table plus each descendant), each block joining the binding context
//    down to that table and outputting all its columns. This is the
//    outer-union document-reconstruction strategy.
//
// Known approximations (documented in DESIGN.md): predicate paths that
// cross multi-valued type references use regular joins rather than
// semi-joins, so existential duplicates can arise; FOR bindings to inlined
// optional elements do not filter absent rows.
StatusOr<opt::RelQuery> TranslateQuery(const xq::Query& query,
                                       const map::Mapping& mapping);

}  // namespace legodb::xlat

#endif  // LEGODB_TRANSLATE_TRANSLATE_H_
