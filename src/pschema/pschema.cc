#include "pschema/pschema.h"

#include <cctype>
#include <functional>
#include <map>

#include "common/check.h"

namespace legodb::ps {

using xs::Schema;
using xs::Type;
using xs::TypePtr;

namespace {

bool IsRefOrUnionOfRefs(const TypePtr& t) {
  if (t->kind == Type::Kind::kTypeRef) return true;
  if (t->kind != Type::Kind::kUnion) return false;
  for (const auto& alt : t->children) {
    if (alt->kind != Type::Kind::kTypeRef) return false;
  }
  return true;
}

Status CheckPhysicalType(const std::string& owner, const TypePtr& t) {
  switch (t->kind) {
    case Type::Kind::kEmpty:
    case Type::Kind::kScalar:
    case Type::Kind::kTypeRef:
      return Status::OK();
    case Type::Kind::kElement:
    case Type::Kind::kAttribute:
      return CheckPhysicalType(owner, t->child);
    case Type::Kind::kSequence: {
      for (const auto& c : t->children) {
        LEGODB_RETURN_IF_ERROR(CheckPhysicalType(owner, c));
      }
      return Status::OK();
    }
    case Type::Kind::kUnion: {
      for (const auto& alt : t->children) {
        if (alt->kind != Type::Kind::kTypeRef) {
          return Status::InvalidArgument(
              "type '" + owner +
              "': union alternative is not a type reference: " +
              alt->ToString());
        }
      }
      return Status::OK();
    }
    case Type::Kind::kRepetition: {
      if (t->is_optional_rep()) {
        // Optionals may hold physical content (nullable columns) or refs.
        return CheckPhysicalType(owner, t->child);
      }
      if (!IsRefOrUnionOfRefs(t->child)) {
        return Status::InvalidArgument(
            "type '" + owner +
            "': repetition content is not a type reference: " +
            t->child->ToString());
      }
      return Status::OK();
    }
  }
  return Status::Internal("unreachable");
}

// Derives a readable type name from the content being outlined.
std::string SuggestTypeName(const TypePtr& t) {
  std::function<std::string(const TypePtr&)> first_name =
      [&](const TypePtr& n) -> std::string {
    switch (n->kind) {
      case Type::Kind::kElement:
        if (n->name.kind == xs::NameClass::Kind::kLiteral) {
          return n->name.name;
        }
        return "any";
      case Type::Kind::kAttribute:
        return n->name.name;
      case Type::Kind::kSequence:
      case Type::Kind::kUnion:
        return n->children.empty() ? "" : first_name(n->children[0]);
      case Type::Kind::kRepetition:
        return first_name(n->child);
      case Type::Kind::kTypeRef:
        return n->ref_name;
      case Type::Kind::kScalar:
        return n->scalar_kind == xs::ScalarKind::kInteger ? "int" : "string";
      default:
        return "";
    }
  };
  std::string base = first_name(t);
  if (base.empty()) base = "T";
  base[0] = static_cast<char>(std::toupper(static_cast<unsigned char>(base[0])));
  return base;
}

std::string OutlineInto(Schema* schema, TypePtr body) {
  std::string name = schema->FreshTypeName(SuggestTypeName(body));
  schema->Define(name, std::move(body));
  return name;
}

// Rewrites `t` so unions and non-optional repetitions contain only refs;
// outlined bodies are themselves normalized first (bottom-up).
TypePtr NormalizeType(const TypePtr& t, Schema* schema) {
  switch (t->kind) {
    case Type::Kind::kEmpty:
    case Type::Kind::kScalar:
    case Type::Kind::kTypeRef:
      return t;
    case Type::Kind::kElement:
      return Type::Element(t->name, NormalizeType(t->child, schema));
    case Type::Kind::kAttribute:
      return Type::Attribute(t->name.name, NormalizeType(t->child, schema));
    case Type::Kind::kSequence: {
      std::vector<TypePtr> items;
      items.reserve(t->children.size());
      for (const auto& c : t->children) {
        items.push_back(NormalizeType(c, schema));
      }
      return Type::Sequence(std::move(items));
    }
    case Type::Kind::kUnion: {
      std::vector<TypePtr> alts;
      alts.reserve(t->children.size());
      for (const auto& c : t->children) {
        TypePtr alt = NormalizeType(c, schema);
        if (alt->kind != Type::Kind::kTypeRef) {
          alt = Type::Ref(OutlineInto(schema, alt));
        }
        alts.push_back(std::move(alt));
      }
      return Type::Union(std::move(alts));
    }
    case Type::Kind::kRepetition: {
      TypePtr child = NormalizeType(t->child, schema);
      if (!t->is_optional_rep() && !IsRefOrUnionOfRefs(child)) {
        child = Type::Ref(OutlineInto(schema, child));
      }
      return Type::Repetition(std::move(child), t->min_occurs, t->max_occurs,
                              t->avg_count);
    }
  }
  return t;
}

// Context describing whether a type-reference position permits inlining:
// inlinable iff the reference sits under sequences / elements / optionals
// only (Section 4.1's conditions).
struct RefOccurrence {
  std::string owner;  // type whose body holds the reference
  bool inlinable;
};

std::map<std::string, std::vector<RefOccurrence>> CollectRefOccurrences(
    const Schema& schema) {
  std::map<std::string, std::vector<RefOccurrence>> occ;
  for (const auto& name : schema.type_names()) {
    std::function<void(const TypePtr&, bool)> walk = [&](const TypePtr& t,
                                                         bool inlinable) {
      switch (t->kind) {
        case Type::Kind::kTypeRef:
          occ[t->ref_name].push_back(RefOccurrence{name, inlinable});
          break;
        case Type::Kind::kElement:
        case Type::Kind::kAttribute:
          walk(t->child, inlinable);
          break;
        case Type::Kind::kSequence:
          for (const auto& c : t->children) walk(c, inlinable);
          break;
        case Type::Kind::kUnion:
          for (const auto& c : t->children) walk(c, false);
          break;
        case Type::Kind::kRepetition:
          walk(t->child, inlinable && t->is_optional_rep());
          break;
        default:
          break;
      }
    };
    walk(schema.Get(name), /*inlinable=*/true);
  }
  return occ;
}

// Replaces every reference to `target` in `t` with `body`.
TypePtr SubstituteRef(const TypePtr& t, const std::string& target,
                      const TypePtr& body) {
  switch (t->kind) {
    case Type::Kind::kTypeRef:
      return t->ref_name == target ? body : t;
    case Type::Kind::kElement:
      return Type::Element(t->name, SubstituteRef(t->child, target, body));
    case Type::Kind::kAttribute:
      return Type::Attribute(t->name.name,
                             SubstituteRef(t->child, target, body));
    case Type::Kind::kSequence:
    case Type::Kind::kUnion: {
      std::vector<TypePtr> children;
      children.reserve(t->children.size());
      for (const auto& c : t->children) {
        children.push_back(SubstituteRef(c, target, body));
      }
      return t->kind == Type::Kind::kSequence
                 ? Type::Sequence(std::move(children))
                 : Type::Union(std::move(children));
    }
    case Type::Kind::kRepetition:
      return Type::Repetition(SubstituteRef(t->child, target, body),
                              t->min_occurs, t->max_occurs, t->avg_count);
    default:
      return t;
  }
}

// Union over element structure -> sequence of optionals ("from union to
// options", Section 4.1). Applied recursively. Branch presence statistics
// default to 1/#alternatives.
TypePtr FlattenUnions(const TypePtr& t) {
  switch (t->kind) {
    case Type::Kind::kElement:
      return Type::Element(t->name, FlattenUnions(t->child));
    case Type::Kind::kAttribute:
      return Type::Attribute(t->name.name, FlattenUnions(t->child));
    case Type::Kind::kSequence: {
      std::vector<TypePtr> items;
      for (const auto& c : t->children) items.push_back(FlattenUnions(c));
      return Type::Sequence(std::move(items));
    }
    case Type::Kind::kUnion: {
      // Branch presence: statistics-derived ref weights when available.
      double sum = 0;
      bool weighted = true;
      for (const auto& c : t->children) {
        if (c->kind != Type::Kind::kTypeRef || c->ref_weight <= 0) {
          weighted = false;
          break;
        }
        sum += c->ref_weight;
      }
      std::vector<TypePtr> items;
      for (const auto& c : t->children) {
        double presence = weighted && sum > 0
                              ? c->ref_weight / sum
                              : 1.0 / static_cast<double>(t->children.size());
        items.push_back(Type::Repetition(FlattenUnions(c), 0, 1, presence));
      }
      return Type::Sequence(std::move(items));
    }
    case Type::Kind::kRepetition:
      return Type::Repetition(FlattenUnions(t->child), t->min_occurs,
                              t->max_occurs, t->avg_count);
    default:
      return t;
  }
}

// A type referenced more than once from one body (e.g. `a[ B, c[ B* ] ]`)
// would make the child table's parent FK ambiguous: reconstruction could
// not tell which position a child row belongs to. Later references get an
// aliased type with the same (shared) body, so each reference position owns
// a distinct table. Recursive targets are skipped (aliasing would unfold
// the cycle forever); their reconstruction ambiguity is inherent.
Schema DisambiguateRepeatedRefs(Schema s) {
  std::vector<std::string> work = s.type_names();
  int guard = 0;
  while (!work.empty() && guard++ < 4096) {
    std::string name = work.back();
    work.pop_back();
    if (!s.Has(name)) continue;
    std::map<std::string, int> seen;
    std::function<TypePtr(const TypePtr&)> walk =
        [&](const TypePtr& t) -> TypePtr {
      switch (t->kind) {
        case Type::Kind::kTypeRef: {
          int& n = seen[t->ref_name];
          ++n;
          if (n > 1 && t->ref_name != name && s.Has(t->ref_name) &&
              !s.IsRecursive(t->ref_name)) {
            std::string alias = s.FreshTypeName(t->ref_name);
            s.Define(alias, s.Get(t->ref_name));
            work.push_back(alias);
            return t->ref_weight > 0
                       ? Type::RefWeighted(alias, t->ref_weight)
                       : Type::Ref(alias);
          }
          return t;
        }
        case Type::Kind::kElement:
          return Type::Element(t->name, walk(t->child));
        case Type::Kind::kAttribute:
          return Type::Attribute(t->name.name, walk(t->child));
        case Type::Kind::kSequence:
        case Type::Kind::kUnion: {
          std::vector<TypePtr> children;
          children.reserve(t->children.size());
          for (const auto& c : t->children) children.push_back(walk(c));
          return t->kind == Type::Kind::kSequence
                     ? Type::Sequence(std::move(children))
                     : Type::Union(std::move(children));
        }
        case Type::Kind::kRepetition:
          return Type::Repetition(walk(t->child), t->min_occurs,
                                  t->max_occurs, t->avg_count);
        default:
          return t;
      }
    };
    s.Define(name, walk(s.Get(name)));
  }
  return s;
}

}  // namespace

Status CheckPhysical(const Schema& schema) {
  LEGODB_RETURN_IF_ERROR(schema.Validate());
  for (const auto& name : schema.type_names()) {
    LEGODB_RETURN_IF_ERROR(CheckPhysicalType(name, schema.Get(name)));
  }
  return Status::OK();
}

Schema Normalize(const Schema& schema) {
  Schema out = schema;
  // Iterate over a snapshot: newly outlined types are already normalized.
  std::vector<std::string> names = out.type_names();
  for (const auto& name : names) {
    out.Define(name, NormalizeType(out.Get(name), &out));
  }
  out = DisambiguateRepeatedRefs(std::move(out));
  LEGODB_DCHECK(CheckPhysical(out).ok(),
                "Normalize produced a non-physical schema");
  return out;
}

Schema AllOutlined(const Schema& schema) {
  Schema out = schema;
  // Outline every element strictly inside a type body. The body's own root
  // element (if any) stays, since the named type denotes it.
  std::function<TypePtr(const TypePtr&, Schema*, bool)> walk =
      [&](const TypePtr& t, Schema* s, bool is_body_root) -> TypePtr {
    switch (t->kind) {
      case Type::Kind::kElement: {
        TypePtr content = walk(t->child, s, false);
        TypePtr elem = Type::Element(t->name, std::move(content));
        if (is_body_root) return elem;
        return Type::Ref(OutlineInto(s, std::move(elem)));
      }
      case Type::Kind::kAttribute:
        return t;  // attributes always stay with their element
      case Type::Kind::kSequence: {
        std::vector<TypePtr> items;
        for (const auto& c : t->children) items.push_back(walk(c, s, false));
        return Type::Sequence(std::move(items));
      }
      case Type::Kind::kUnion: {
        std::vector<TypePtr> alts;
        for (const auto& c : t->children) alts.push_back(walk(c, s, false));
        return Type::Union(std::move(alts));
      }
      case Type::Kind::kRepetition:
        return Type::Repetition(walk(t->child, s, false), t->min_occurs,
                                t->max_occurs, t->avg_count);
      default:
        return t;
    }
  };
  std::vector<std::string> names = out.type_names();
  for (const auto& name : names) {
    out.Define(name, walk(out.Get(name), &out, /*is_body_root=*/true));
  }
  return Normalize(out);
}

Schema AllInlined(const Schema& schema, bool flatten_unions) {
  Schema out = Normalize(schema);
  if (flatten_unions) {
    std::vector<std::string> names = out.type_names();
    for (const auto& name : names) {
      out.Define(name, FlattenUnions(out.Get(name)));
    }
    out = Normalize(out);
  }
  // Inline to fixpoint.
  while (true) {
    std::vector<std::string> candidates = EnumerateInlineCandidates(out);
    if (candidates.empty()) break;
    bool progressed = false;
    for (const auto& name : candidates) {
      auto next = InlineType(out, name);
      if (next.ok()) {
        out = std::move(next).value();
        progressed = true;
        break;  // candidate list is stale after a rewrite
      }
    }
    if (!progressed) break;
  }
  out.GarbageCollect();
  // Inlining can fold several references to the same shared type into one
  // body; re-normalize so repeated references get disambiguated.
  return Normalize(out);
}

TypePtr NodeAt(const TypePtr& type, const NodePath& path) {
  TypePtr cur = type;
  for (int idx : path) {
    if (!cur) return nullptr;
    if (cur->child) {
      if (idx != 0) return nullptr;
      cur = cur->child;
    } else if (idx >= 0 && static_cast<size_t>(idx) < cur->children.size()) {
      cur = cur->children[idx];
    } else {
      return nullptr;
    }
  }
  return cur;
}

TypePtr ReplaceAt(const TypePtr& type, const NodePath& path,
                  TypePtr replacement) {
  if (path.empty()) return replacement;
  int idx = path[0];
  NodePath rest(path.begin() + 1, path.end());
  if (type->child) {
    LEGODB_CHECK(idx == 0, "node path steps into a single-child node");
    TypePtr new_child = ReplaceAt(type->child, rest, std::move(replacement));
    switch (type->kind) {
      case Type::Kind::kElement:
        return Type::Element(type->name, std::move(new_child));
      case Type::Kind::kAttribute:
        return Type::Attribute(type->name.name, std::move(new_child));
      case Type::Kind::kRepetition:
        return Type::Repetition(std::move(new_child), type->min_occurs,
                                type->max_occurs, type->avg_count);
      default:
        LEGODB_CHECK(false, "unexpected single-child node");
        return type;
    }
  }
  std::vector<TypePtr> children = type->children;
  LEGODB_CHECK(idx >= 0 && static_cast<size_t>(idx) < children.size(),
               "node path index out of range");
  children[idx] = ReplaceAt(children[idx], rest, std::move(replacement));
  return type->kind == Type::Kind::kSequence ? Type::Sequence(std::move(children))
                                             : Type::Union(std::move(children));
}

StatusOr<Schema> OutlineAt(const Schema& schema, const std::string& type_name,
                           const NodePath& path, std::string* out_new_type) {
  TypePtr body = schema.Find(type_name);
  if (!body) return Status::NotFound("type '" + type_name + "' not defined");
  TypePtr node = NodeAt(body, path);
  if (!node) return Status::InvalidArgument("bad node path");
  if (node->kind != Type::Kind::kElement) {
    return Status::InvalidArgument("can only outline elements");
  }
  if (path.empty()) {
    return Status::InvalidArgument("cannot outline the body root element");
  }
  Schema out = schema;
  std::string new_name = OutlineInto(&out, node);
  out.Define(type_name, ReplaceAt(body, path, Type::Ref(new_name)));
  if (out_new_type) *out_new_type = new_name;
  return out;
}

StatusOr<Schema> InlineType(const Schema& schema,
                            const std::string& type_name) {
  if (type_name == schema.root_type()) {
    return Status::InvalidArgument("cannot inline the root type");
  }
  if (!schema.Has(type_name)) {
    return Status::NotFound("type '" + type_name + "' not defined");
  }
  if (schema.IsRecursive(type_name)) {
    return Status::InvalidArgument("cannot inline recursive type '" +
                                   type_name + "'");
  }
  auto occurrences = CollectRefOccurrences(schema);
  auto it = occurrences.find(type_name);
  if (it == occurrences.end()) {
    return Status::InvalidArgument("type '" + type_name + "' is unreferenced");
  }
  if (it->second.size() != 1) {
    return Status::InvalidArgument("type '" + type_name +
                                   "' is shared; cannot inline");
  }
  const RefOccurrence& occ = it->second[0];
  if (!occ.inlinable) {
    return Status::InvalidArgument(
        "type '" + type_name +
        "' is referenced inside a union or repetition; cannot inline");
  }
  Schema out = schema;
  TypePtr body = schema.Get(type_name);
  out.Define(occ.owner,
             SubstituteRef(schema.Get(occ.owner), type_name, body));
  out.Undefine(type_name);
  return out;
}

std::vector<OutlineCandidate> EnumerateOutlineCandidates(
    const Schema& schema) {
  std::vector<OutlineCandidate> candidates;
  for (const auto& name : schema.type_names()) {
    std::function<void(const TypePtr&, NodePath*)> walk = [&](const TypePtr& t,
                                                              NodePath* path) {
      // Record element nodes strictly below the body root.
      if (t->kind == Type::Kind::kElement && !path->empty()) {
        candidates.push_back(
            OutlineCandidate{name, *path, t->name.ToString()});
      }
      if (t->child) {
        path->push_back(0);
        walk(t->child, path);
        path->pop_back();
      }
      for (size_t i = 0; i < t->children.size(); ++i) {
        path->push_back(static_cast<int>(i));
        walk(t->children[i], path);
        path->pop_back();
      }
    };
    NodePath path;
    walk(schema.Get(name), &path);
  }
  return candidates;
}

std::vector<std::string> EnumerateInlineCandidates(const Schema& schema) {
  std::vector<std::string> result;
  auto occurrences = CollectRefOccurrences(schema);
  for (const auto& name : schema.type_names()) {
    if (name == schema.root_type()) continue;
    auto it = occurrences.find(name);
    if (it == occurrences.end() || it->second.size() != 1) continue;
    if (!it->second[0].inlinable) continue;
    if (schema.IsRecursive(name)) continue;
    result.push_back(name);
  }
  return result;
}

}  // namespace legodb::ps
