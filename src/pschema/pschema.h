#ifndef LEGODB_PSCHEMA_PSCHEMA_H_
#define LEGODB_PSCHEMA_PSCHEMA_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "xschema/schema.h"

namespace legodb::ps {

// --- Stratification (the paper's Figure 9) -------------------------------
//
// A schema is *physical* (a p-schema) when every named type body is a
// physical-type expression:
//   - scalars, attributes, literal/wildcard elements over physical content,
//     and sequences thereof are allowed inline;
//   - repetitions other than {0,1} may contain ONLY type references or
//     unions of type references;
//   - unions may contain ONLY type references;
//   - optionals ({0,1}) may contain physical content (mapped to nullable
//     columns) or type references.
// This guarantees the fixed mapping rel(ps) of Section 3.2 applies.

// Returns OK iff `schema` satisfies the stratified grammar.
Status CheckPhysical(const xs::Schema& schema);

// Rewrites `schema` into an equivalent p-schema by outlining the minimal set
// of sub-terms (every offending repetition/union operand gets a fresh named
// type). This is the constructive proof of the paper's claim that any XML
// Schema has an equivalent physical schema.
xs::Schema Normalize(const xs::Schema& schema);

// --- Initial configurations for the greedy search (Section 5.2) ----------

// All elements outlined (except base types): every nested element inside a
// type body becomes its own named type. Starting point of `greedy-so`.
xs::Schema AllOutlined(const xs::Schema& schema);

// All elements inlined except multi-valued ones (and recursive/shared
// types). Starting point of `greedy-si`. When `flatten_unions` is set,
// unions over element structures are first rewritten into sequences of
// optionals (the paper's "from union to options" rewriting), matching the
// ALL-INLINED configuration of Figure 4(a).
xs::Schema AllInlined(const xs::Schema& schema, bool flatten_unions = true);

// --- Primitive rewrites shared by the search -------------------------------

// A node position inside a type body: child indices from the body root.
// (For kElement/kAttribute/kRepetition nodes the single child is index 0.)
using NodePath = std::vector<int>;

// Returns the node at `path` in `type`, or nullptr if out of range.
xs::TypePtr NodeAt(const xs::TypePtr& type, const NodePath& path);

// Replaces the node at `path` with `replacement`, rebuilding the spine.
xs::TypePtr ReplaceAt(const xs::TypePtr& type, const NodePath& path,
                      xs::TypePtr replacement);

// Outlines the element at `path` inside type `type_name`: the element moves
// to a fresh named type and is replaced by a reference to it. Returns the
// new schema and the generated type name via `out_new_type`.
StatusOr<xs::Schema> OutlineAt(const xs::Schema& schema,
                               const std::string& type_name,
                               const NodePath& path,
                               std::string* out_new_type = nullptr);

// Inlines (elides) named type `type_name`: its single reference is replaced
// by its body and the definition is removed. Fails if the type is the root,
// recursive, referenced more than once, or referenced from a non-inlinable
// position (inside a union or a repetition other than {0,1}).
StatusOr<xs::Schema> InlineType(const xs::Schema& schema,
                                const std::string& type_name);

// Candidate enumeration for the greedy search's move set.
struct OutlineCandidate {
  std::string type_name;
  NodePath path;
  std::string element_name;  // display only
};
std::vector<OutlineCandidate> EnumerateOutlineCandidates(
    const xs::Schema& schema);
std::vector<std::string> EnumerateInlineCandidates(const xs::Schema& schema);

}  // namespace legodb::ps

#endif  // LEGODB_PSCHEMA_PSCHEMA_H_
