#ifndef LEGODB_ENGINE_EXPR_VM_H_
#define LEGODB_ENGINE_EXPR_VM_H_

// Compiled-predicate bytecode for the vectorized executor.
//
// Filters and residual join predicates are compiled once per operator
// Open() into a flat stack-machine bytecode — load-column, load-constant,
// compare, not-null test, and/or — and evaluated vector-at-a-time by a
// dispatch loop: every instruction processes a whole batch of lanes before
// the next instruction runs, writing 0/1 selection masks instead of
// branching per row. This replaces the interpreted per-row predicate
// tree-walk (the old CompileFilters/PassFilters and
// CompileResiduals/ResidualsPass pairs, which were duplicated across the
// hash-join and index-nested-loop paths).
//
// Bytecode grammar (stack effects in brackets):
//
//   program   := instr* ;            final stack = one mask
//   instr     := LoadCol c          [ -> col(c) ]
//              | LoadConst k        [ -> const(k) ]
//              | Cmp op             [ a b -> mask(a op b) ]
//              | TestNotNull        [ a -> mask(a != NULL) ]
//              | And | Or           [ m1 m2 -> m ]
//
// Comparison semantics are exactly the row engine's: a NULL operand (or an
// unbound relation lane) satisfies no comparison, equality is exact typed
// equality, and ordered comparisons additionally require both operands to
// be of the same kind (see xq::ApplyCompare). Columns over all-integer data
// evaluate through a typed int64 fast path; mixed or string columns fall
// back to the generic Value loop.
//
// Compilation resolves column names against the storage catalog up front:
// unknown columns and unbound parameters fail compilation (and therefore
// the operator's Open()) with the same diagnostics the row engine raised —
// they never silently drop rows. The produced bytecode is deterministic:
// compiling the same predicate against the same tables twice yields
// identical instruction streams (see Disassemble).

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "optimizer/plan.h"
#include "storage/database.h"
#include "xquery/ast.h"

namespace legodb::engine {

// The per-lane view a program evaluates over: for each base relation of the
// block, a row-index column (lane -> row position in that relation's
// table), or nullptr when the relation is unbound in every lane. A negative
// row index marks an unbound lane (outer-join miss); column loads treat it
// as NULL.
struct LaneView {
  const int32_t* const* rows_by_rel = nullptr;
  size_t num_rels = 0;
  size_t num_lanes = 0;
};

// One compiled predicate. Immutable after Build(); Eval uses internal
// scratch, so one program instance serves one executor thread at a time
// (operators compile their own copy per Open, matching that model).
class ExprProgram {
 public:
  enum class OpCode : uint8_t {
    kLoadCol,      // push column slot `a`
    kLoadConst,    // push constant slot `a`
    kCmp,          // pop rhs, pop lhs; push comparison mask (`cmp`)
    kTestNotNull,  // pop operand; push not-null mask
    kAnd,          // pop two masks; push conjunction
    kOr,           // pop two masks; push disjunction
  };

  struct Instr {
    OpCode op = OpCode::kLoadCol;
    xq::CompareOp cmp = xq::CompareOp::kEq;
    int32_t a = -1;  // column / constant slot index
  };

  // A column operand: the relation slot it binds lanes through plus the
  // prebuilt columnar shadow of the stored column.
  struct ColumnSlot {
    int rel = -1;
    const store::ColumnVector* column = nullptr;
    std::string name;  // "alias.column", for Disassemble
  };

  bool empty() const { return instrs_.empty(); }
  size_t num_instructions() const { return instrs_.size(); }

  // Evaluates the program over `view`, writing one 0/1 byte per lane into
  // `mask` (which must hold view.num_lanes bytes). An empty program leaves
  // every lane selected.
  void Eval(const LaneView& view, uint8_t* mask);

  // Convenience for single-relation callers (scans): lanes are row indices
  // of relation `rel`.
  void EvalRows(int rel, const int32_t* rows, size_t n, uint8_t* mask);

  // Deterministic textual rendering of the bytecode, one instruction per
  // line (e.g. "load_col c.name | load_const 'alpha' | cmp =").
  std::string Disassemble() const;

  // --- Parameter slots (prepared templates) -------------------------------
  //
  // A program compiled as a *template* (see CompileFilterTemplate) leaves
  // symbolic query constants as named parameter slots instead of baking
  // their values in. Copy the template, then BindParams on the copy with
  // that execution's bindings — the copy is then evaluable with no
  // recompilation. A template with unbound slots must not be Eval'd.

  // Number of unbound parameter slots (0 for directly compiled programs).
  size_t num_params() const { return param_slots_.size(); }

  // Substitutes `params` into every parameter slot. InvalidArgument on a
  // missing binding, with the row engine's "unbound query parameter"
  // diagnostic. Binding does not consume the slots: a copied template can
  // be re-bound, and the original template stays untouched.
  Status BindParams(const std::map<std::string, Value>& params);

 private:
  friend class ExprProgramBuilder;

  // Evaluation stack slot: a loaded operand or a computed mask. Masks index
  // into the scratch pool so buffers are reused across Eval calls.
  struct Slot {
    enum class Kind { kCol, kConst, kMask } kind = Kind::kMask;
    int32_t index = -1;  // column slot / constant slot / scratch mask index
  };

  void EvalCmp(const LaneView& view, xq::CompareOp op, const Slot& lhs,
               const Slot& rhs, uint8_t* out);

  std::vector<Instr> instrs_;
  std::vector<ColumnSlot> columns_;
  std::vector<Value> constants_;
  // (constant slot, parameter name) for slots awaiting BindParams.
  std::vector<std::pair<int32_t, std::string>> param_slots_;
  int max_rel_ = -1;

  // Scratch reused across Eval calls (grown, never shrunk).
  std::vector<std::vector<uint8_t>> scratch_;
  std::vector<Slot> stack_;
  std::vector<const int32_t*> relptrs_;  // EvalRows' single-relation view
};

// Assembles ExprPrograms; the typed compile entry points below use it, and
// tests build arbitrary programs (including Or, which the current
// translator never emits) directly.
class ExprProgramBuilder {
 public:
  // Registers a column operand; returns its slot for LoadCol.
  int AddColumn(int rel, const store::ColumnVector* column, std::string name);
  // Registers a constant; returns its slot for LoadConst.
  int AddConst(Value v);
  // Registers a named parameter slot (a constant whose value arrives via
  // BindParams); returns its slot for LoadConst.
  int AddParam(std::string name);

  ExprProgramBuilder& LoadCol(int slot);
  ExprProgramBuilder& LoadConst(int slot);
  ExprProgramBuilder& Cmp(xq::CompareOp op);
  ExprProgramBuilder& TestNotNull();
  ExprProgramBuilder& And();
  ExprProgramBuilder& Or();

  // Validates stack balance (exactly one mask left, no underflow) and
  // returns the program. Internal error on malformed streams.
  StatusOr<ExprProgram> Build() &&;

 private:
  ExprProgram program_;
};

// The tables of the executed block, in relation order, used to resolve
// column names and fetch columnar shadows at compile time.
struct ExprEnv {
  std::vector<store::StoredTable*> tables;

  // "Table.column" for diagnostics (tolerates out-of-range rels).
  std::string QualifiedColumn(int rel, const std::string& column) const;
};

// Resolves a plan constant to a runtime Value: literal ints/strings
// directly, symbolic parameters through `params` (unbound ones are an
// InvalidArgument, same as the row engine).
StatusOr<Value> ResolveConstant(const std::map<std::string, Value>& params,
                                const xq::Constant& c);

// Resolves `rel.column` to its columnar shadow, with the row engine's
// diagnostics on out-of-range relations and unknown columns (`what` names
// the predicate kind, e.g. "filter" or "hash join").
StatusOr<const store::ColumnVector*> ResolveColumnVector(
    const ExprEnv& env, int rel, const std::string& column, const char* what);

// Compiles the subset of `filters` that applies to relation `rel` into one
// conjunctive program (empty program when none apply). Each equality/order
// filter becomes LoadCol LoadConst Cmp; NOT NULL becomes LoadCol
// TestNotNull; terms are And-chained in filter order.
StatusOr<ExprProgram> CompileFilters(const ExprEnv& env, int rel,
                                     const std::vector<opt::FilterPred>& filters,
                                     const std::map<std::string, Value>& params);

// Like CompileFilters, but compiles a reusable *template*: symbolic
// constants become named parameter slots (literals still bake in), so one
// compilation serves any number of executions — copy the template and
// BindParams the copy with that request's bindings. The serving layer's
// plan cache stores these alongside the physical plan.
StatusOr<ExprProgram> CompileFilterTemplate(
    const ExprEnv& env, int rel, const std::vector<opt::FilterPred>& filters);

// Compiles residual join edges into one conjunctive program of column =
// column equalities (LoadCol LoadCol Cmp=). Unbound lanes on either side
// fail the predicate, matching the row engine's ResidualsPass.
StatusOr<ExprProgram> CompileResiduals(const ExprEnv& env,
                                       const std::vector<opt::JoinEdge>& edges);

}  // namespace legodb::engine

#endif  // LEGODB_ENGINE_EXPR_VM_H_
