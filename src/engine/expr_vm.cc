#include "engine/expr_vm.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "xquery/evaluator.h"

namespace legodb::engine {

namespace {

// Lane -> row map for a column's relation; nullptr = unbound everywhere.
const int32_t* RelRows(const LaneView& view, int rel) {
  if (rel < 0 || static_cast<size_t>(rel) >= view.num_rels) return nullptr;
  return view.rows_by_rel[rel];
}

// Typed int64 comparison loop: NULL lanes (unbound row or NULL value)
// satisfy nothing.
template <typename Cmp>
void CmpIntConst(const int32_t* rows, const store::ColumnVector& col,
                 int64_t want, size_t n, uint8_t* out, Cmp cmp) {
  const int64_t* ints = col.ints();
  const uint8_t* nulls = col.null_mask();
  for (size_t i = 0; i < n; ++i) {
    int32_t r = rows[i];
    out[i] = r >= 0 && !nulls[r] && cmp(ints[r], want);
  }
}

template <typename Cmp>
void CmpIntCols(const int32_t* lrows, const store::ColumnVector& lcol,
                const int32_t* rrows, const store::ColumnVector& rcol,
                size_t n, uint8_t* out, Cmp cmp) {
  const int64_t* li = lcol.ints();
  const int64_t* ri = rcol.ints();
  const uint8_t* ln = lcol.null_mask();
  const uint8_t* rn = rcol.null_mask();
  for (size_t i = 0; i < n; ++i) {
    int32_t l = lrows[i];
    int32_t r = rrows[i];
    out[i] = l >= 0 && r >= 0 && !ln[l] && !rn[r] && cmp(li[l], ri[r]);
  }
}

// Dispatches `op` once, running the typed loop `run` with the matching
// comparator — the per-lane loops stay branch-free on the operator.
template <typename Run>
void WithIntCmp(xq::CompareOp op, Run run) {
  switch (op) {
    case xq::CompareOp::kEq:
      run([](int64_t a, int64_t b) { return a == b; });
      return;
    case xq::CompareOp::kNe:
      run([](int64_t a, int64_t b) { return a != b; });
      return;
    case xq::CompareOp::kLt:
      run([](int64_t a, int64_t b) { return a < b; });
      return;
    case xq::CompareOp::kLe:
      run([](int64_t a, int64_t b) { return a <= b; });
      return;
    case xq::CompareOp::kGt:
      run([](int64_t a, int64_t b) { return a > b; });
      return;
    case xq::CompareOp::kGe:
      run([](int64_t a, int64_t b) { return a >= b; });
      return;
  }
}

}  // namespace

std::string ExprEnv::QualifiedColumn(int rel, const std::string& column) const {
  if (rel < 0 || rel >= static_cast<int>(tables.size())) {
    return "rel#" + std::to_string(rel) + "." + column;
  }
  return tables[rel]->meta().name + "." + column;
}

StatusOr<Value> ResolveConstant(const std::map<std::string, Value>& params,
                                const xq::Constant& c) {
  switch (c.kind) {
    case xq::Constant::Kind::kInt:
      return Value::Int(c.int_value);
    case xq::Constant::Kind::kString:
      return xq::CanonicalValue(c.string_value);
    case xq::Constant::Kind::kSymbol: {
      auto it = params.find(c.symbol);
      if (it == params.end()) {
        return Status::InvalidArgument("unbound query parameter '" + c.symbol +
                                       "'");
      }
      return it->second;
    }
  }
  return Status::Internal("bad constant");
}

StatusOr<const store::ColumnVector*> ResolveColumnVector(
    const ExprEnv& env, int rel, const std::string& column, const char* what) {
  if (rel < 0 || rel >= static_cast<int>(env.tables.size())) {
    return Status::Internal(std::string(what) + " references relation #" +
                            std::to_string(rel) + " outside the block");
  }
  if (env.tables[rel]->meta().ColumnIndex(column) < 0) {
    return Status::Internal(std::string(what) + " references unknown column '" +
                            env.QualifiedColumn(rel, column) +
                            "' (translator/catalog drift)");
  }
  return env.tables[rel]->GetOrBuildColumn(column);
}

// --- ExprProgramBuilder ---------------------------------------------------

int ExprProgramBuilder::AddColumn(int rel, const store::ColumnVector* column,
                                  std::string name) {
  program_.columns_.push_back(
      ExprProgram::ColumnSlot{rel, column, std::move(name)});
  return static_cast<int>(program_.columns_.size()) - 1;
}

int ExprProgramBuilder::AddConst(Value v) {
  program_.constants_.push_back(std::move(v));
  return static_cast<int>(program_.constants_.size()) - 1;
}

int ExprProgramBuilder::AddParam(std::string name) {
  int slot = AddConst(Value::MakeNull());
  program_.param_slots_.emplace_back(slot, std::move(name));
  return slot;
}

ExprProgramBuilder& ExprProgramBuilder::LoadCol(int slot) {
  program_.instrs_.push_back(
      {ExprProgram::OpCode::kLoadCol, xq::CompareOp::kEq, slot});
  return *this;
}

ExprProgramBuilder& ExprProgramBuilder::LoadConst(int slot) {
  program_.instrs_.push_back(
      {ExprProgram::OpCode::kLoadConst, xq::CompareOp::kEq, slot});
  return *this;
}

ExprProgramBuilder& ExprProgramBuilder::Cmp(xq::CompareOp op) {
  program_.instrs_.push_back({ExprProgram::OpCode::kCmp, op, -1});
  return *this;
}

ExprProgramBuilder& ExprProgramBuilder::TestNotNull() {
  program_.instrs_.push_back(
      {ExprProgram::OpCode::kTestNotNull, xq::CompareOp::kEq, -1});
  return *this;
}

ExprProgramBuilder& ExprProgramBuilder::And() {
  program_.instrs_.push_back(
      {ExprProgram::OpCode::kAnd, xq::CompareOp::kEq, -1});
  return *this;
}

ExprProgramBuilder& ExprProgramBuilder::Or() {
  program_.instrs_.push_back({ExprProgram::OpCode::kOr, xq::CompareOp::kEq, -1});
  return *this;
}

StatusOr<ExprProgram> ExprProgramBuilder::Build() && {
  // Type-check the stream once: operands ('o') and masks ('m') must balance
  // so Eval can dispatch without per-instruction validation.
  std::vector<char> kinds;
  auto pop = [&](char want) {
    if (kinds.empty() || kinds.back() != want) return false;
    kinds.pop_back();
    return true;
  };
  for (const ExprProgram::Instr& ins : program_.instrs_) {
    switch (ins.op) {
      case ExprProgram::OpCode::kLoadCol:
        if (ins.a < 0 ||
            ins.a >= static_cast<int32_t>(program_.columns_.size())) {
          return Status::Internal("expr bytecode: bad column slot");
        }
        kinds.push_back('o');
        break;
      case ExprProgram::OpCode::kLoadConst:
        if (ins.a < 0 ||
            ins.a >= static_cast<int32_t>(program_.constants_.size())) {
          return Status::Internal("expr bytecode: bad constant slot");
        }
        kinds.push_back('o');
        break;
      case ExprProgram::OpCode::kCmp:
        if (!pop('o') || !pop('o')) {
          return Status::Internal("expr bytecode: cmp needs two operands");
        }
        kinds.push_back('m');
        break;
      case ExprProgram::OpCode::kTestNotNull:
        if (!pop('o')) {
          return Status::Internal("expr bytecode: not-null needs an operand");
        }
        kinds.push_back('m');
        break;
      case ExprProgram::OpCode::kAnd:
      case ExprProgram::OpCode::kOr:
        if (!pop('m') || !pop('m')) {
          return Status::Internal("expr bytecode: and/or need two masks");
        }
        kinds.push_back('m');
        break;
    }
  }
  if (program_.instrs_.empty()) {
    if (!kinds.empty()) return Status::Internal("expr bytecode: unbalanced");
  } else if (kinds.size() != 1 || kinds[0] != 'm') {
    return Status::Internal(
        "expr bytecode: program must leave exactly one mask");
  }
  for (const ExprProgram::ColumnSlot& c : program_.columns_) {
    program_.max_rel_ = std::max(program_.max_rel_, c.rel);
  }
  return std::move(program_);
}

Status ExprProgram::BindParams(const std::map<std::string, Value>& params) {
  for (const auto& [slot, name] : param_slots_) {
    auto it = params.find(name);
    if (it == params.end()) {
      return Status::InvalidArgument("unbound query parameter '" + name + "'");
    }
    constants_[slot] = it->second;
  }
  return Status::OK();
}

// --- ExprProgram evaluation -----------------------------------------------

void ExprProgram::EvalCmp(const LaneView& view, xq::CompareOp op,
                          const Slot& lhs, const Slot& rhs, uint8_t* out) {
  size_t n = view.num_lanes;
  if (lhs.kind == Slot::Kind::kCol && rhs.kind == Slot::Kind::kConst) {
    const ColumnSlot& cs = columns_[lhs.index];
    const Value& want = constants_[rhs.index];
    const int32_t* rows = RelRows(view, cs.rel);
    if (!rows || want.is_null()) {
      std::memset(out, 0, n);
      return;
    }
    if (cs.column->typed_int() && want.is_int()) {
      WithIntCmp(op, [&](auto cmp) {
        CmpIntConst(rows, *cs.column, want.as_int(), n, out, cmp);
      });
      return;
    }
    const store::ColumnVector& col = *cs.column;
    for (size_t i = 0; i < n; ++i) {
      int32_t r = rows[i];
      out[i] = r >= 0 && !col.is_null(r) &&
               xq::ApplyCompare(op, col.value(r), want);
    }
    return;
  }
  if (lhs.kind == Slot::Kind::kCol && rhs.kind == Slot::Kind::kCol) {
    const ColumnSlot& ls = columns_[lhs.index];
    const ColumnSlot& rs = columns_[rhs.index];
    const int32_t* lrows = RelRows(view, ls.rel);
    const int32_t* rrows = RelRows(view, rs.rel);
    if (!lrows || !rrows) {
      std::memset(out, 0, n);
      return;
    }
    if (ls.column->typed_int() && rs.column->typed_int()) {
      WithIntCmp(op, [&](auto cmp) {
        CmpIntCols(lrows, *ls.column, rrows, *rs.column, n, out, cmp);
      });
      return;
    }
    const store::ColumnVector& lc = *ls.column;
    const store::ColumnVector& rc = *rs.column;
    for (size_t i = 0; i < n; ++i) {
      int32_t l = lrows[i];
      int32_t r = rrows[i];
      out[i] = l >= 0 && r >= 0 && !lc.is_null(l) && !rc.is_null(r) &&
               xq::ApplyCompare(op, lc.value(l), rc.value(r));
    }
    return;
  }
  if (lhs.kind == Slot::Kind::kConst && rhs.kind == Slot::Kind::kCol) {
    // const <op> col: same loops with the comparison's operand order kept.
    const ColumnSlot& cs = columns_[rhs.index];
    const Value& want = constants_[lhs.index];
    const int32_t* rows = RelRows(view, cs.rel);
    if (!rows || want.is_null()) {
      std::memset(out, 0, n);
      return;
    }
    const store::ColumnVector& col = *cs.column;
    for (size_t i = 0; i < n; ++i) {
      int32_t r = rows[i];
      out[i] = r >= 0 && !col.is_null(r) &&
               xq::ApplyCompare(op, want, col.value(r));
    }
    return;
  }
  // const <op> const: broadcast the scalar result.
  const Value& l = constants_[lhs.index];
  const Value& r = constants_[rhs.index];
  uint8_t v = !l.is_null() && !r.is_null() && xq::ApplyCompare(op, l, r);
  std::memset(out, v, n);
}

void ExprProgram::Eval(const LaneView& view, uint8_t* mask) {
  size_t n = view.num_lanes;
  if (instrs_.empty()) {
    std::memset(mask, 1, n);
    return;
  }
  stack_.clear();
  size_t next_scratch = 0;
  auto alloc_mask = [&]() {
    if (next_scratch == scratch_.size()) scratch_.emplace_back();
    scratch_[next_scratch].resize(n);
    return static_cast<int32_t>(next_scratch++);
  };
  for (const Instr& ins : instrs_) {
    switch (ins.op) {
      case OpCode::kLoadCol:
        stack_.push_back(Slot{Slot::Kind::kCol, ins.a});
        break;
      case OpCode::kLoadConst:
        stack_.push_back(Slot{Slot::Kind::kConst, ins.a});
        break;
      case OpCode::kCmp: {
        Slot rhs = stack_.back();
        stack_.pop_back();
        Slot lhs = stack_.back();
        stack_.pop_back();
        int32_t m = alloc_mask();
        EvalCmp(view, ins.cmp, lhs, rhs, scratch_[m].data());
        stack_.push_back(Slot{Slot::Kind::kMask, m});
        break;
      }
      case OpCode::kTestNotNull: {
        Slot a = stack_.back();
        stack_.pop_back();
        int32_t m = alloc_mask();
        uint8_t* out = scratch_[m].data();
        if (a.kind == Slot::Kind::kConst) {
          std::memset(out, !constants_[a.index].is_null(), n);
        } else {
          const ColumnSlot& cs = columns_[a.index];
          const int32_t* rows = RelRows(view, cs.rel);
          if (!rows) {
            std::memset(out, 0, n);
          } else {
            const uint8_t* nulls = cs.column->null_mask();
            for (size_t i = 0; i < n; ++i) {
              int32_t r = rows[i];
              out[i] = r >= 0 && !nulls[r];
            }
          }
        }
        stack_.push_back(Slot{Slot::Kind::kMask, m});
        break;
      }
      case OpCode::kAnd:
      case OpCode::kOr: {
        Slot b = stack_.back();
        stack_.pop_back();
        Slot a = stack_.back();
        stack_.pop_back();
        uint8_t* av = scratch_[a.index].data();
        const uint8_t* bv = scratch_[b.index].data();
        if (ins.op == OpCode::kAnd) {
          for (size_t i = 0; i < n; ++i) av[i] = av[i] & bv[i];
        } else {
          for (size_t i = 0; i < n; ++i) av[i] = av[i] | bv[i];
        }
        stack_.push_back(a);
        break;
      }
    }
  }
  std::memcpy(mask, scratch_[stack_.back().index].data(), n);
}

void ExprProgram::EvalRows(int rel, const int32_t* rows, size_t n,
                           uint8_t* mask) {
  relptrs_.assign(static_cast<size_t>(std::max(rel, max_rel_)) + 1, nullptr);
  relptrs_[rel] = rows;
  Eval(LaneView{relptrs_.data(), relptrs_.size(), n}, mask);
}

std::string ExprProgram::Disassemble() const {
  if (instrs_.empty()) return "(empty)";
  std::string out;
  for (const Instr& ins : instrs_) {
    if (!out.empty()) out += "\n";
    switch (ins.op) {
      case OpCode::kLoadCol:
        out += "load_col " + columns_[ins.a].name;
        break;
      case OpCode::kLoadConst:
        out += "load_const " + constants_[ins.a].ToString();
        break;
      case OpCode::kCmp:
        out += std::string("cmp ") + xq::CompareOpName(ins.cmp);
        break;
      case OpCode::kTestNotNull:
        out += "test_not_null";
        break;
      case OpCode::kAnd:
        out += "and";
        break;
      case OpCode::kOr:
        out += "or";
        break;
    }
  }
  return out;
}

// --- Predicate compilation ------------------------------------------------

StatusOr<ExprProgram> CompileFilters(
    const ExprEnv& env, int rel, const std::vector<opt::FilterPred>& filters,
    const std::map<std::string, Value>& params) {
  ExprProgramBuilder b;
  int terms = 0;
  for (const opt::FilterPred& f : filters) {
    if (f.rel != rel) continue;
    LEGODB_ASSIGN_OR_RETURN(
        const store::ColumnVector* col,
        ResolveColumnVector(env, rel, f.column, "filter"));
    int cslot = b.AddColumn(rel, col, env.QualifiedColumn(rel, f.column));
    if (f.not_null) {
      b.LoadCol(cslot).TestNotNull();
    } else {
      LEGODB_ASSIGN_OR_RETURN(Value want, ResolveConstant(params, f.value));
      b.LoadCol(cslot).LoadConst(b.AddConst(std::move(want))).Cmp(f.op);
    }
    if (++terms > 1) b.And();
  }
  return std::move(b).Build();
}

StatusOr<ExprProgram> CompileFilterTemplate(
    const ExprEnv& env, int rel, const std::vector<opt::FilterPred>& filters) {
  ExprProgramBuilder b;
  int terms = 0;
  for (const opt::FilterPred& f : filters) {
    if (f.rel != rel) continue;
    LEGODB_ASSIGN_OR_RETURN(
        const store::ColumnVector* col,
        ResolveColumnVector(env, rel, f.column, "filter"));
    int cslot = b.AddColumn(rel, col, env.QualifiedColumn(rel, f.column));
    if (f.not_null) {
      b.LoadCol(cslot).TestNotNull();
    } else if (f.value.kind == xq::Constant::Kind::kSymbol) {
      b.LoadCol(cslot).LoadConst(b.AddParam(f.value.symbol)).Cmp(f.op);
    } else {
      LEGODB_ASSIGN_OR_RETURN(Value want, ResolveConstant({}, f.value));
      b.LoadCol(cslot).LoadConst(b.AddConst(std::move(want))).Cmp(f.op);
    }
    if (++terms > 1) b.And();
  }
  return std::move(b).Build();
}

StatusOr<ExprProgram> CompileResiduals(const ExprEnv& env,
                                       const std::vector<opt::JoinEdge>& edges) {
  ExprProgramBuilder b;
  int terms = 0;
  for (const opt::JoinEdge& e : edges) {
    LEGODB_ASSIGN_OR_RETURN(
        const store::ColumnVector* lcol,
        ResolveColumnVector(env, e.left_rel, e.left_column, "residual join"));
    LEGODB_ASSIGN_OR_RETURN(
        const store::ColumnVector* rcol,
        ResolveColumnVector(env, e.right_rel, e.right_column, "residual join"));
    b.LoadCol(b.AddColumn(e.left_rel, lcol,
                          env.QualifiedColumn(e.left_rel, e.left_column)));
    b.LoadCol(b.AddColumn(e.right_rel, rcol,
                          env.QualifiedColumn(e.right_rel, e.right_column)));
    b.Cmp(xq::CompareOp::kEq);
    if (++terms > 1) b.And();
  }
  return std::move(b).Build();
}

}  // namespace legodb::engine
