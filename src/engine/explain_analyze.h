#ifndef LEGODB_ENGINE_EXPLAIN_ANALYZE_H_
#define LEGODB_ENGINE_EXPLAIN_ANALYZE_H_

// EXPLAIN ANALYZE rendering: the per-operator profile a profiled execution
// collected (engine::ExecProfile, one pre-order entry per physical
// operator), shown as the estimated-vs-actual tree the paper's cost-model
// argument rests on. Two views of the same data:
//
//  - ExplainAnalyzeTable: an aligned, indented operator tree for humans —
//    est_rows vs actual rows, q-error, batches pulled, column vectors
//    processed, observed selectivity (output lanes per input lane),
//    index/scan seeks, self and cumulative wall time per operator;
//  - ExplainAnalyzeJson: the same rows as a JSON array, suitable as a
//    structured block inside an obs::Report (Report::AddBlob) so metrics
//    files carry per-query plan diagnostics next to the aggregates.
//
// A profile may span several executed blocks (UNION ALL branches); each
// depth-0 entry starts a new operator tree.

#include <string>

#include "engine/executor.h"

namespace legodb::engine {

// Self (exclusive) milliseconds of the operator at `index`: its inclusive
// time minus its direct children's inclusive time, floored at zero.
double SelfMillis(const ExecProfile& profile, size_t index);

// Aligned indented tree; empty profile renders the header only.
std::string ExplainAnalyzeTable(const ExecProfile& profile);

// JSON array of operator objects ({"op", "label", "depth", "est_rows",
// "est_cost", "rows", "q_error", "batches", "rows_in", "vectors",
// "selectivity", "seeks", "ms", "self_ms"}), valid JSON for any profile.
std::string ExplainAnalyzeJson(const ExecProfile& profile);

}  // namespace legodb::engine

#endif  // LEGODB_ENGINE_EXPLAIN_ANALYZE_H_
