#include "engine/executor.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <memory>
#include <numeric>
#include <unordered_map>
#include <utility>

#include "engine/expr_vm.h"
#include "engine/prepared.h"
#include "obs/obs.h"

namespace legodb::engine {

using store::ColumnVector;
using store::HashIndex;
using store::Row;
using store::StoredTable;

void ExecStats::Add(const ExecStats& other) {
  tuples_processed += other.tuples_processed;
  bytes_read += other.bytes_read;
  seeks += other.seeks;
  rows_out += other.rows_out;
  bytes_out += other.bytes_out;
  bytes_spilled += other.bytes_spilled;
}

double OpActual::QError() const {
  double est = std::max(est_rows, 1.0);
  double act = std::max(static_cast<double>(actual_rows), 1.0);
  return std::max(est / act, act / est);
}

double OpActual::Selectivity() const {
  if (rows_in <= 0) return 0;
  return static_cast<double>(actual_rows) / static_cast<double>(rows_in);
}

namespace {

// A lane whose relation is unbound (not yet joined, or an outer-join miss).
constexpr int32_t kUnboundRow = -1;

// The columnar replacement for the row engine's vector-of-Binding batches:
// one row-index column per base relation of the block (lane -> row position
// in that relation's table). A relation with an empty column is unbound in
// every lane; kUnboundRow marks per-lane misses. Operators touch only the
// columns they process, and no per-tuple allocation happens anywhere.
struct ColumnBatch {
  std::vector<std::vector<int32_t>> rels;
  size_t lanes = 0;

  void Init(size_t nrels) {
    rels.resize(nrels);
    Clear();
  }
  void Clear() {
    for (auto& c : rels) c.clear();
    lanes = 0;
  }
  bool bound(size_t rel) const { return !rels[rel].empty(); }
  // Row index of `rel` at `lane` (kUnboundRow when the column is unbound).
  int32_t RowAt(size_t rel, size_t lane) const {
    return rels[rel].empty() ? kUnboundRow : rels[rel][lane];
  }
};

// Static metric names per operator (rows produced, inclusive wall time).
struct OpMetricNames {
  const char* rows;
  const char* ms;
};

OpMetricNames MetricNames(opt::PhysicalPlan::Kind kind) {
  switch (kind) {
    case opt::PhysicalPlan::Kind::kSeqScan:
      return {"exec.seq_scan.rows", "exec.seq_scan.ms"};
    case opt::PhysicalPlan::Kind::kIndexLookup:
      return {"exec.index_lookup.rows", "exec.index_lookup.ms"};
    case opt::PhysicalPlan::Kind::kHashJoin:
      return {"exec.hash_join.rows", "exec.hash_join.ms"};
    case opt::PhysicalPlan::Kind::kIndexNLJoin:
      return {"exec.index_nl_join.rows", "exec.index_nl_join.ms"};
    case opt::PhysicalPlan::Kind::kProject:
      return {"exec.project.rows", "exec.project.ms"};
  }
  return {"exec.unknown.rows", "exec.unknown.ms"};
}

const char* KindLabel(opt::PhysicalPlan::Kind kind) {
  switch (kind) {
    case opt::PhysicalPlan::Kind::kSeqScan:
      return "SeqScan";
    case opt::PhysicalPlan::Kind::kIndexLookup:
      return "IndexLookup";
    case opt::PhysicalPlan::Kind::kHashJoin:
      return "HashJoin";
    case opt::PhysicalPlan::Kind::kIndexNLJoin:
      return "IndexNLJoin";
    case opt::PhysicalPlan::Kind::kProject:
      return "Project";
  }
  return "Unknown";
}

// Shared state of one block execution: table bindings resolved once, plus
// the owning executor for stats/params.
struct ExecContext {
  Executor* e = nullptr;
  const std::map<std::string, Value>* params = nullptr;
  ExecStats* stats = nullptr;
  const opt::QueryBlock* block = nullptr;
  ExprEnv env;  // env.tables doubles as the block's table list
  size_t vector_size = 1;
  bool timed = false;  // operators accumulate wall time per Next/Open
  // Prepared templates for this plan, or nullptr (normal Open-time
  // compilation). Only set when compiled against this executor's Database.
  const PreparedPrograms* prepared = nullptr;
  // Cooperative interruption (ExecOptions::deadline_ns / ::cancel),
  // polled once per vector. `interruptible` caches "either is set" so the
  // common uninterruptible execution pays one branch per vector.
  int64_t deadline_ns = 0;
  const common::CancelToken* cancel = nullptr;
  bool interruptible = false;

  Status CheckInterrupt() const {
    if (!interruptible) return Status::OK();
    if (cancel != nullptr && cancel->cancelled()) {
      return Status::Cancelled("request cancelled during execution");
    }
    if (deadline_ns != 0 && obs::NowNanos() > deadline_ns) {
      return Status::DeadlineExceeded("deadline exceeded during execution");
    }
    return Status::OK();
  }

  size_t nrels() const { return block->rels.size(); }
  std::vector<StoredTable*>& tables() { return env.tables; }
  const PreparedPrograms::NodePrograms* Prepared(
      const opt::PhysicalPlan* node) const {
    return prepared == nullptr ? nullptr : prepared->Find(node);
  }
};

// A pipelined operator: Next() refills `out` with up to ctx->vector_size
// lanes (join operators may overshoot when one input lane matches several
// rows); zero lanes signal end of stream.
class Operator {
 public:
  Operator(ExecContext* ctx, const opt::PhysicalPlan* node)
      : ctx_(ctx), node_(node) {}
  virtual ~Operator() = default;

  virtual Status Open() = 0;
  virtual Status Next(ColumnBatch* out) = 0;

  // Open/Next wrappers accumulating produced rows, batches, vectors,
  // inclusive wall time and inclusive seeks (child pulls included,
  // mirroring the optimizer's inclusive est_cost).
  Status OpenTimed() {
    if (!ctx_->timed) return Open();
    int64_t t0 = obs::NowNanos();
    double seeks0 = ctx_->stats->seeks;
    double bytes0 = ctx_->stats->bytes_read;
    Status s = Open();
    ns_ += obs::NowNanos() - t0;
    seeks_ += ctx_->stats->seeks - seeks0;
    bytes_ += ctx_->stats->bytes_read - bytes0;
    return s;
  }
  Status NextTimed(ColumnBatch* out) {
    if (!ctx_->timed) return Next(out);
    int64_t t0 = obs::NowNanos();
    double seeks0 = ctx_->stats->seeks;
    double bytes0 = ctx_->stats->bytes_read;
    Status s = Next(out);
    ns_ += obs::NowNanos() - t0;
    seeks_ += ctx_->stats->seeks - seeks0;
    bytes_ += ctx_->stats->bytes_read - bytes0;
    rows_ += static_cast<int64_t>(out->lanes);
    ++batches_;
    if (out->lanes > 0) {
      for (const auto& col : out->rels) {
        if (!col.empty()) ++vectors_;
      }
    }
    return s;
  }

  const opt::PhysicalPlan* node() const { return node_; }
  int64_t rows_produced() const { return rows_; }
  int64_t rows_examined() const { return rows_in_; }
  int64_t batches() const { return batches_; }
  int64_t vectors() const { return vectors_; }
  double seeks() const { return seeks_; }
  double bytes() const { return bytes_; }
  double millis() const { return static_cast<double>(ns_) / 1e6; }

 protected:
  double RowWidth(int rel) const {
    return ctx_->tables()[rel]->meta().RowWidth();
  }
  ExecStats& stats() const { return *ctx_->stats; }
  void CountInput(size_t lanes) {
    rows_in_ += static_cast<int64_t>(lanes);
  }

  ExecContext* ctx_;
  const opt::PhysicalPlan* node_;

 private:
  int64_t rows_ = 0;
  int64_t rows_in_ = 0;
  int64_t batches_ = 0;
  int64_t vectors_ = 0;
  int64_t ns_ = 0;
  double seeks_ = 0;
  double bytes_ = 0;
};

// Shared filtering kernel for the two scan-shaped operators: runs the
// compiled filter over `take` candidate row indices and appends the
// selected ones to `out_col`. `cand` must hold the candidates as int32.
class ScanFilter {
 public:
  // Compiles the filters of `node`'s relation — or, when the plan was
  // prepared, copies the node's template and binds this execution's
  // parameters (no compilation, no catalog lookups).
  Status Compile(const ExecContext& ctx, const opt::PhysicalPlan* node) {
    rel_ = node->rel;
    if (const PreparedPrograms::NodePrograms* p = ctx.Prepared(node)) {
      program_ = p->filter;
      return program_.BindParams(*ctx.params);
    }
    LEGODB_ASSIGN_OR_RETURN(
        program_,
        CompileFilters(ctx.env, node->rel, node->filters, *ctx.params));
    return Status::OK();
  }

  bool empty() const { return program_.empty(); }

  void Apply(const int32_t* cand, size_t take, std::vector<int32_t>* out_col) {
    mask_.resize(take);
    program_.EvalRows(rel_, cand, take, mask_.data());
    for (size_t i = 0; i < take; ++i) {
      if (mask_[i]) out_col->push_back(cand[i]);
    }
  }

  // Evaluates the filter over `cand` and ANDs the result into `mask`.
  void ApplyMask(const int32_t* cand, size_t take, uint8_t* mask) {
    mask_.resize(take);
    program_.EvalRows(rel_, cand, take, mask_.data());
    for (size_t i = 0; i < take; ++i) mask[i] = mask[i] & mask_[i];
  }

 private:
  ExprProgram program_;
  int rel_ = -1;
  std::vector<uint8_t> mask_;
};

class SeqScanOp : public Operator {
 public:
  using Operator::Operator;

  Status Open() override {
    LEGODB_RETURN_IF_ERROR(filter_.Compile(*ctx_, node_));
    width_ = RowWidth(node_->rel);
    paged_ = ctx_->tables()[node_->rel]->paged();
    // The memory backend keeps the modeled per-scan charge (one seek plus
    // width bytes per row below) so its stats — and every golden built on
    // them — are unchanged; the paged backend instead charges the page
    // traffic its reads actually cause (pool faults, below).
    if (!paged_) stats().seeks += 1;
    pos_ = 0;
    return Status::OK();
  }

  Status Next(ColumnBatch* out) override {
    out->Clear();
    StoredTable* table = ctx_->tables()[node_->rel];
    size_t total = table->row_count();
    std::vector<int32_t>& col = out->rels[node_->rel];
    // An empty batch signals end of stream, so keep scanning candidate
    // vectors until at least one row survives or the table is exhausted.
    // A selective filter can reject every candidate vector, so this loop —
    // not just the root pull loop — must poll for deadline/cancellation.
    while (col.empty() && pos_ < total) {
      LEGODB_RETURN_IF_ERROR(ctx_->CheckInterrupt());
      size_t take = std::min(ctx_->vector_size, total - pos_);
      if (paged_) {
        LEGODB_ASSIGN_OR_RETURN(store::TableIo io,
                                table->FetchRowRange(pos_, pos_ + take));
        stats().seeks += io.seeks;
        stats().bytes_read += io.bytes;
      }
      if (filter_.empty()) {
        col.resize(take);
        std::iota(col.begin(), col.end(), static_cast<int32_t>(pos_));
      } else {
        cand_.resize(take);
        std::iota(cand_.begin(), cand_.end(), static_cast<int32_t>(pos_));
        filter_.Apply(cand_.data(), take, &col);
      }
      pos_ += take;
      CountInput(take);
      stats().tuples_processed += static_cast<double>(take);
      if (!paged_) stats().bytes_read += static_cast<double>(take) * width_;
    }
    out->lanes = col.size();
    return Status::OK();
  }

 private:
  ScanFilter filter_;
  std::vector<int32_t> cand_;
  double width_ = 0;
  size_t pos_ = 0;
  bool paged_ = false;
};

class IndexLookupOp : public Operator {
 public:
  using Operator::Operator;

  Status Open() override {
    LEGODB_RETURN_IF_ERROR(filter_.Compile(*ctx_, node_));
    const opt::FilterPred* driver = nullptr;
    for (const auto& f : node_->filters) {
      if (f.rel == node_->rel && f.column == node_->index_column &&
          !f.not_null && f.op == xq::CompareOp::kEq) {
        driver = &f;
        break;
      }
    }
    if (!driver) {
      return Status::Internal("index lookup without driving filter");
    }
    LEGODB_ASSIGN_OR_RETURN(Value key,
                            ResolveConstant(*ctx_->params, driver->value));
    const HashIndex* index = nullptr;
    if (const PreparedPrograms::NodePrograms* prep = ctx_->Prepared(node_)) {
      index = prep->index;
    } else {
      LEGODB_ASSIGN_OR_RETURN(
          index,
          ctx_->tables()[node_->rel]->GetOrBuildIndex(node_->index_column));
    }
    hits_ = &index->Find(key);
    width_ = RowWidth(node_->rel);
    paged_ = ctx_->tables()[node_->rel]->paged();
    if (!paged_) stats().seeks += 1;  // modeled charge; see SeqScanOp::Open
    pos_ = 0;
    return Status::OK();
  }

  Status Next(ColumnBatch* out) override {
    out->Clear();
    std::vector<int32_t>& col = out->rels[node_->rel];
    // As in SeqScan: empty output means EOS, so drain candidate vectors
    // until a row survives the residual filter (polling for interruption,
    // as in SeqScan).
    while (col.empty() && pos_ < hits_->size()) {
      LEGODB_RETURN_IF_ERROR(ctx_->CheckInterrupt());
      size_t take = std::min(ctx_->vector_size, hits_->size() - pos_);
      cand_.resize(take);
      for (size_t i = 0; i < take; ++i) {
        cand_[i] = static_cast<int32_t>((*hits_)[pos_ + i]);
      }
      pos_ += take;
      if (paged_) {
        LEGODB_ASSIGN_OR_RETURN(
            store::TableIo io,
            ctx_->tables()[node_->rel]->FetchRows(cand_.data(), take));
        stats().seeks += io.seeks;
        stats().bytes_read += io.bytes;
      }
      if (filter_.empty()) {
        col.assign(cand_.begin(), cand_.end());
      } else {
        filter_.Apply(cand_.data(), take, &col);
      }
      CountInput(take);
      stats().tuples_processed += static_cast<double>(take);
      if (!paged_) {
        stats().seeks += static_cast<double>(take);
        stats().bytes_read += static_cast<double>(take) * width_;
      }
    }
    out->lanes = col.size();
    return Status::OK();
  }

 private:
  ScanFilter filter_;
  std::vector<int32_t> cand_;
  const std::vector<size_t>* hits_ = nullptr;
  double width_ = 0;
  size_t pos_ = 0;
  bool paged_ = false;
};

// Match-candidate plumbing shared by the two join operators: candidates are
// (probe lane, match ordinal) pairs generated per probe batch, grouped
// contiguously by lane so outer-join misses can be interleaved at the
// right position. After the residual bytecode produces a selection mask,
// EmitLanes builds the (lane, ordinal) emission list — ordinal kUnboundRow
// marks a preserved outer lane — and the join gathers output columns from
// it with tight per-column loops.
struct JoinCandidates {
  std::vector<int32_t> lane;       // probe lane per candidate
  std::vector<int32_t> ord;        // match ordinal per candidate
  std::vector<size_t> group_end;   // per probe lane: end offset in lane/ord
  std::vector<int32_t> emit_lane;  // emission list after mask + outer rules
  std::vector<int32_t> emit_ord;

  void Reset(size_t probe_lanes) {
    lane.clear();
    ord.clear();
    group_end.resize(probe_lanes);
  }

  void Add(size_t probe_lane, int32_t ordinal) {
    lane.push_back(static_cast<int32_t>(probe_lane));
    ord.push_back(ordinal);
  }

  void CloseGroup(size_t probe_lane) { group_end[probe_lane] = ord.size(); }

  // `mask` may be nullptr (all candidates pass).
  void EmitLanes(size_t probe_lanes, const uint8_t* mask, bool left_outer) {
    emit_lane.clear();
    emit_ord.clear();
    size_t start = 0;
    for (size_t l = 0; l < probe_lanes; ++l) {
      size_t end = group_end[l];
      bool matched = false;
      for (size_t c = start; c < end; ++c) {
        if (mask != nullptr && !mask[c]) continue;
        emit_lane.push_back(lane[c]);
        emit_ord.push_back(ord[c]);
        matched = true;
      }
      if (!matched && left_outer) {
        emit_lane.push_back(static_cast<int32_t>(l));
        emit_ord.push_back(kUnboundRow);
      }
      start = end;
    }
  }
};

// A hash-join build side's materialized row-index vectors, written out to
// temp pager pages when they outgrow the spill threshold (a fraction of the
// buffer pool — a build side that dwarfs the pool shouldn't also live on
// the heap as if memory were free). Pages are allocated from and returned
// to the database's pager but bypass the buffer pool: they are private to
// this operator, so pool frames would only evict the shared working set.
// Reads go through a one-page cache; each cache miss is a real pager read,
// charged to the execution's seeks/bytes like any other page fault.
class SpilledBuild {
 public:
  static StatusOr<std::unique_ptr<SpilledBuild>> Create(
      store::Pager* pager, ExecStats* stats,
      const std::vector<std::vector<int32_t>>& cols,
      const std::vector<uint8_t>& bound) {
    std::unique_ptr<SpilledBuild> s(new SpilledBuild(pager));
    const size_t page_size = pager->page_size();
    const size_t ipp = s->ipp_;
    s->pages_.resize(cols.size());
    std::vector<char> buf(page_size);
    for (size_t r = 0; r < cols.size(); ++r) {
      if (r < bound.size() && !bound[r]) continue;
      const std::vector<int32_t>& col = cols[r];
      for (size_t off = 0; off < col.size(); off += ipp) {
        size_t n = std::min(ipp, col.size() - off);
        std::memcpy(buf.data(), col.data() + off, n * sizeof(int32_t));
        std::memset(buf.data() + n * sizeof(int32_t), 0,
                    page_size - n * sizeof(int32_t));
        LEGODB_ASSIGN_OR_RETURN(uint32_t page, pager->Allocate());
        s->pages_[r].push_back(page);
        Status st = pager->Write(page, buf.data());
        if (!st.ok()) return st;  // dtor frees pages written so far
        stats->bytes_spilled += static_cast<double>(page_size);
      }
    }
    return s;
  }

  ~SpilledBuild() {
    for (const auto& rel_pages : pages_) {
      for (uint32_t page : rel_pages) pager_->Free(page);
    }
  }

  // Gathers `ords[0..n)` of relation `rel` into `dst` (negative ordinals
  // become kUnboundRow), charging cache-miss page reads to `stats`.
  Status Gather(ExecStats* stats, size_t rel, const int32_t* ords, size_t n,
                int32_t* dst) {
    const size_t page_size = pager_->page_size();
    for (size_t j = 0; j < n; ++j) {
      int32_t o = ords[j];
      if (o < 0) {
        dst[j] = kUnboundRow;
        continue;
      }
      uint32_t page = pages_[rel][static_cast<size_t>(o) / ipp_];
      if (!cache_valid_ || page != cached_page_) {
        LEGODB_RETURN_IF_ERROR(pager_->Read(page, buf_.data()));
        cached_page_ = page;
        cache_valid_ = true;
        stats->seeks += 1;
        stats->bytes_read += static_cast<double>(page_size);
      }
      std::memcpy(&dst[j],
                  buf_.data() + (static_cast<size_t>(o) % ipp_) *
                                    sizeof(int32_t),
                  sizeof(int32_t));
    }
    return Status::OK();
  }

 private:
  explicit SpilledBuild(store::Pager* pager)
      : pager_(pager),
        ipp_(pager->page_size() / sizeof(int32_t)),
        buf_(pager->page_size()) {}

  store::Pager* pager_;
  size_t ipp_;  // int32 slots per page
  std::vector<std::vector<uint32_t>> pages_;  // per relation
  std::vector<char> buf_;  // one-page read cache
  uint32_t cached_page_ = 0;
  bool cache_valid_ = false;
};

// Hash join: materializes the build (right) side at open, then streams
// probe batches through the hash table. Probe order is preserved and
// matches per probe lane come in build order, so output order is identical
// to the materializing reference executor at any batch size.
//
// When the build side is a bare unfiltered scan of the joined relation,
// the join skips materialization entirely and probes the table's shared
// pre-built hash index (same row order, so same output): repeated queries
// stop re-hashing the build side on every execution. Profiled runs keep
// the materializing path so per-operator actuals reflect the full
// dataflow; stats are charged identically either way.
class HashJoinOp : public Operator {
 public:
  HashJoinOp(ExecContext* ctx, const opt::PhysicalPlan* node,
             std::unique_ptr<Operator> probe, std::unique_ptr<Operator> build)
      : Operator(ctx, node),
        probe_(std::move(probe)),
        build_(std::move(build)) {}

  Status Open() override {
    LEGODB_RETURN_IF_ERROR(probe_->OpenTimed());
    const PreparedPrograms::NodePrograms* prep = ctx_->Prepared(node_);
    if (prep != nullptr) {
      build_key_ = prep->right_key;
      probe_key_ = prep->left_key;
      residuals_ = prep->residuals;
    } else {
      LEGODB_ASSIGN_OR_RETURN(
          build_key_,
          ResolveColumnVector(ctx_->env, node_->right_join_rel,
                              node_->right_join_column, "hash join"));
      LEGODB_ASSIGN_OR_RETURN(
          probe_key_, ResolveColumnVector(ctx_->env, node_->left_join_rel,
                                          node_->left_join_column, "hash join"));
      LEGODB_ASSIGN_OR_RETURN(
          residuals_, CompileResiduals(ctx_->env, node_->residual_joins));
    }
    size_t nrels = ctx_->nrels();
    in_.Init(nrels);
    build_bound_.assign(nrels, 0);
    gather_.resize(nrels);
    relptrs_.assign(nrels, nullptr);

    int build_rel = node_->right_join_rel;
    const opt::PhysicalPlan* b = node_->right.get();
    // The shared-index bypass charges the *modeled* build-side cost, so it
    // only applies to memory tables: a paged build side must run the real
    // scan (and pay its real page traffic).
    if (!ctx_->timed && !ctx_->tables()[build_rel]->paged() && b &&
        b->kind == opt::PhysicalPlan::Kind::kSeqScan &&
        b->rel == build_rel && b->filters.empty()) {
      if (prep != nullptr && prep->index != nullptr) {
        shared_index_ = prep->index;
      } else {
        LEGODB_ASSIGN_OR_RETURN(
            shared_index_, ctx_->tables()[build_rel]->GetOrBuildIndex(
                               node_->right_join_column));
      }
      build_bound_[build_rel] = 1;
      // Charge what the materializing path would have: the build-side scan
      // (one seek, every row read) plus the join's build-input tuples.
      double n = static_cast<double>(ctx_->tables()[build_rel]->row_count());
      stats().seeks += 1;
      stats().tuples_processed += 2 * n;
      stats().bytes_read += n * RowWidth(build_rel);
      return Status::OK();
    }

    // Drain and materialize the build side columnar, then key it by join
    // value through the build relation's column vector.
    LEGODB_RETURN_IF_ERROR(build_->OpenTimed());
    build_cols_.assign(nrels, {});
    ColumnBatch bin;
    bin.Init(nrels);
    size_t count = 0;
    do {
      LEGODB_RETURN_IF_ERROR(build_->NextTimed(&bin));
      for (size_t r = 0; r < nrels; ++r) {
        if (!bin.bound(r)) continue;
        build_bound_[r] = 1;
        build_cols_[r].insert(build_cols_[r].end(), bin.rels[r].begin(),
                              bin.rels[r].end());
      }
      count += bin.lanes;
    } while (bin.lanes > 0);
    build_count_ = count;
    const std::vector<int32_t>* brows =
        build_bound_[build_rel] ? &build_cols_[build_rel] : nullptr;
    // Integer join keys (the common case: ids) key an int64 table directly,
    // skipping Value hashing/equality on every build row and probe lane.
    typed_keys_ = build_key_->typed_int() && probe_key_->typed_int();
    for (size_t i = 0; i < count; ++i) {
      int32_t r = brows ? (*brows)[i] : kUnboundRow;
      if (r < 0 || build_key_->is_null(r)) continue;
      if (typed_keys_) {
        int_table_[build_key_->ints()[r]].push_back(static_cast<int32_t>(i));
      } else {
        table_[build_key_->value(r)].push_back(static_cast<int32_t>(i));
      }
    }
    stats().tuples_processed += static_cast<double>(count);

    // Spill oversized build sides to temp pages (paged backend only): the
    // hash table itself (ordinals) stays in memory, but the per-relation
    // row-index vectors — the bulk of the materialization — move to disk.
    store::Pager* pager = ctx_->tables()[build_rel]->pager();
    if (pager != nullptr) {
      size_t threshold = ctx_->e->options().spill_build_bytes;
      if (threshold == 0) {
        threshold = ctx_->tables()[build_rel]->pool()->capacity() *
                    pager->page_size() / 4;
      }
      size_t build_bytes = 0;
      for (const auto& c : build_cols_) build_bytes += c.size() * sizeof(int32_t);
      if (threshold != std::numeric_limits<size_t>::max() &&
          build_bytes > threshold) {
        LEGODB_ASSIGN_OR_RETURN(
            spill_, SpilledBuild::Create(pager, ctx_->stats, build_cols_,
                                         build_bound_));
        obs::Count("exec.hash_join.spills");
        build_cols_.clear();
        build_cols_.shrink_to_fit();
      }
    }
    return Status::OK();
  }

  Status Next(ColumnBatch* out) override {
    out->Clear();
    const int probe_rel = node_->left_join_rel;
    const int build_rel = node_->right_join_rel;
    while (out->lanes == 0) {
      LEGODB_RETURN_IF_ERROR(probe_->NextTimed(&in_));
      if (in_.lanes == 0) return Status::OK();  // end of stream
      stats().tuples_processed += static_cast<double>(in_.lanes);
      CountInput(in_.lanes);

      cand_.Reset(in_.lanes);
      const std::vector<int32_t>& prow = in_.rels[probe_rel];
      for (size_t l = 0; l < in_.lanes; ++l) {
        int32_t r = prow.empty() ? kUnboundRow : prow[l];
        if (r >= 0 && !probe_key_->is_null(r)) {
          if (shared_index_) {
            for (size_t idx : shared_index_->Find(probe_key_->value(r))) {
              if (build_key_->is_null(idx)) continue;
              cand_.Add(l, static_cast<int32_t>(idx));
            }
          } else if (typed_keys_) {
            if (auto it = int_table_.find(probe_key_->ints()[r]);
                it != int_table_.end()) {
              for (int32_t ordinal : it->second) cand_.Add(l, ordinal);
            }
          } else if (auto it = table_.find(probe_key_->value(r));
                     it != table_.end()) {
            for (int32_t ordinal : it->second) cand_.Add(l, ordinal);
          }
        }
        cand_.CloseGroup(l);
      }

      const uint8_t* mask = nullptr;
      if (!residuals_.empty() && !cand_.ord.empty()) {
        LEGODB_RETURN_IF_ERROR(EvalResiduals(build_rel));
        mask = mask_.data();
      }
      cand_.EmitLanes(in_.lanes, mask, node_->left_outer);

      // Gather output columns from the emission list.
      size_t m = cand_.emit_lane.size();
      for (size_t r = 0; r < in_.rels.size(); ++r) {
        if (!in_.bound(r)) continue;
        const int32_t* src = in_.rels[r].data();
        std::vector<int32_t>& dst = out->rels[r];
        dst.resize(m);
        for (size_t j = 0; j < m; ++j) dst[j] = src[cand_.emit_lane[j]];
      }
      if (shared_index_) {
        out->rels[build_rel] = cand_.emit_ord;
      } else if (spill_) {
        for (size_t r = 0; r < build_bound_.size(); ++r) {
          if (!build_bound_[r]) continue;
          std::vector<int32_t>& dst = out->rels[r];
          dst.resize(m);
          LEGODB_RETURN_IF_ERROR(spill_->Gather(
              ctx_->stats, r, cand_.emit_ord.data(), m, dst.data()));
        }
      } else {
        for (size_t r = 0; r < build_bound_.size(); ++r) {
          if (!build_bound_[r]) continue;
          const int32_t* src = build_cols_[r].data();
          std::vector<int32_t>& dst = out->rels[r];
          dst.resize(m);
          for (size_t j = 0; j < m; ++j) {
            int32_t o = cand_.emit_ord[j];
            dst[j] = o < 0 ? kUnboundRow : src[o];
          }
        }
      }
      out->lanes = m;
    }
    return Status::OK();
  }

 private:
  // Materializes the candidate lanes the residual program reads (probe-side
  // columns gathered by candidate lane, build-side by candidate ordinal)
  // and evaluates it into mask_.
  Status EvalResiduals(int build_rel) {
    size_t c = cand_.ord.size();
    std::fill(relptrs_.begin(), relptrs_.end(), nullptr);
    for (size_t r = 0; r < in_.rels.size(); ++r) {
      if (!in_.bound(r)) continue;
      const int32_t* src = in_.rels[r].data();
      gather_[r].resize(c);
      for (size_t j = 0; j < c; ++j) gather_[r][j] = src[cand_.lane[j]];
      relptrs_[r] = gather_[r].data();
    }
    if (shared_index_) {
      relptrs_[build_rel] = cand_.ord.data();
    } else if (spill_) {
      for (size_t r = 0; r < build_bound_.size(); ++r) {
        if (!build_bound_[r]) continue;
        gather_[r].resize(c);
        LEGODB_RETURN_IF_ERROR(spill_->Gather(ctx_->stats, r,
                                              cand_.ord.data(), c,
                                              gather_[r].data()));
        relptrs_[r] = gather_[r].data();
      }
    } else {
      for (size_t r = 0; r < build_bound_.size(); ++r) {
        if (!build_bound_[r]) continue;
        const int32_t* src = build_cols_[r].data();
        gather_[r].resize(c);
        for (size_t j = 0; j < c; ++j) gather_[r][j] = src[cand_.ord[j]];
        relptrs_[r] = gather_[r].data();
      }
    }
    mask_.resize(c);
    residuals_.Eval(LaneView{relptrs_.data(), relptrs_.size(), c},
                    mask_.data());
    return Status::OK();
  }

  std::unique_ptr<Operator> probe_;
  std::unique_ptr<Operator> build_;
  const ColumnVector* build_key_ = nullptr;
  const ColumnVector* probe_key_ = nullptr;
  ExprProgram residuals_;
  const HashIndex* shared_index_ = nullptr;  // fast path when non-null
  std::unique_ptr<SpilledBuild> spill_;  // build cols on temp pages when set
  std::vector<std::vector<int32_t>> build_cols_;  // materialized build side
  std::vector<uint8_t> build_bound_;
  size_t build_count_ = 0;
  bool typed_keys_ = false;
  std::unordered_map<Value, std::vector<int32_t>, ValueHash> table_;
  std::unordered_map<int64_t, std::vector<int32_t>> int_table_;
  ColumnBatch in_;
  JoinCandidates cand_;
  std::vector<std::vector<int32_t>> gather_;
  std::vector<const int32_t*> relptrs_;
  std::vector<uint8_t> mask_;
};

class IndexNLJoinOp : public Operator {
 public:
  IndexNLJoinOp(ExecContext* ctx, const opt::PhysicalPlan* node,
                std::unique_ptr<Operator> outer)
      : Operator(ctx, node), outer_(std::move(outer)) {}

  Status Open() override {
    LEGODB_RETURN_IF_ERROR(outer_->OpenTimed());
    LEGODB_RETURN_IF_ERROR(filter_.Compile(*ctx_, node_));
    if (const PreparedPrograms::NodePrograms* prep = ctx_->Prepared(node_)) {
      outer_key_ = prep->left_key;
      index_ = prep->index;
      residuals_ = prep->residuals;
    } else {
      LEGODB_ASSIGN_OR_RETURN(
          outer_key_,
          ResolveColumnVector(ctx_->env, node_->left_join_rel,
                              node_->left_join_column, "index join"));
      LEGODB_ASSIGN_OR_RETURN(
          index_,
          ctx_->tables()[node_->rel]->GetOrBuildIndex(node_->index_column));
      LEGODB_ASSIGN_OR_RETURN(
          residuals_, CompileResiduals(ctx_->env, node_->residual_joins));
    }
    width_ = RowWidth(node_->rel);
    paged_ = ctx_->tables()[node_->rel]->paged();
    in_.Init(ctx_->nrels());
    gather_.resize(ctx_->nrels());
    relptrs_.assign(ctx_->nrels(), nullptr);
    return Status::OK();
  }

  Status Next(ColumnBatch* out) override {
    out->Clear();
    const int outer_rel = node_->left_join_rel;
    const int inner_rel = node_->rel;
    while (out->lanes == 0) {
      LEGODB_RETURN_IF_ERROR(outer_->NextTimed(&in_));
      if (in_.lanes == 0) return Status::OK();  // end of stream
      CountInput(in_.lanes);

      cand_.Reset(in_.lanes);
      const std::vector<int32_t>& orow = in_.rels[outer_rel];
      // Memory tables keep the modeled per-probe charges; paged tables are
      // charged the page traffic the matched rows actually cause (below).
      if (!paged_) stats().seeks += static_cast<double>(in_.lanes);
      for (size_t l = 0; l < in_.lanes; ++l) {
        int32_t r = orow.empty() ? kUnboundRow : orow[l];
        if (r >= 0 && !outer_key_->is_null(r)) {
          const std::vector<size_t>& hits = index_->Find(outer_key_->value(r));
          stats().tuples_processed += static_cast<double>(hits.size());
          if (!paged_) {
            stats().seeks += static_cast<double>(hits.size());
            stats().bytes_read += static_cast<double>(hits.size()) * width_;
          }
          for (size_t idx : hits) cand_.Add(l, static_cast<int32_t>(idx));
        }
        cand_.CloseGroup(l);
      }
      if (paged_ && !cand_.ord.empty()) {
        LEGODB_ASSIGN_OR_RETURN(
            store::TableIo io,
            ctx_->tables()[inner_rel]->FetchRows(cand_.ord.data(),
                                                 cand_.ord.size()));
        stats().seeks += io.seeks;
        stats().bytes_read += io.bytes;
      }

      // Combined selection: inner residual filters AND residual join edges,
      // both over the candidate lanes.
      const uint8_t* mask = nullptr;
      size_t c = cand_.ord.size();
      if (c > 0 && (!filter_.empty() || !residuals_.empty())) {
        mask_.assign(c, 1);
        if (!filter_.empty()) {
          filter_.ApplyMask(cand_.ord.data(), c, mask_.data());
        }
        if (!residuals_.empty()) {
          EvalResiduals(inner_rel);
        }
        mask = mask_.data();
      }
      cand_.EmitLanes(in_.lanes, mask, node_->left_outer);

      size_t m = cand_.emit_lane.size();
      for (size_t r = 0; r < in_.rels.size(); ++r) {
        if (!in_.bound(r)) continue;
        const int32_t* src = in_.rels[r].data();
        std::vector<int32_t>& dst = out->rels[r];
        dst.resize(m);
        for (size_t j = 0; j < m; ++j) dst[j] = src[cand_.emit_lane[j]];
      }
      out->rels[inner_rel] = cand_.emit_ord;
      out->lanes = m;
    }
    return Status::OK();
  }

 private:
  void EvalResiduals(int inner_rel) {
    size_t c = cand_.ord.size();
    std::fill(relptrs_.begin(), relptrs_.end(), nullptr);
    for (size_t r = 0; r < in_.rels.size(); ++r) {
      if (!in_.bound(r)) continue;
      const int32_t* src = in_.rels[r].data();
      gather_[r].resize(c);
      for (size_t j = 0; j < c; ++j) gather_[r][j] = src[cand_.lane[j]];
      relptrs_[r] = gather_[r].data();
    }
    relptrs_[inner_rel] = cand_.ord.data();
    rmask_.resize(c);
    residuals_.Eval(LaneView{relptrs_.data(), relptrs_.size(), c},
                    rmask_.data());
    for (size_t j = 0; j < c; ++j) mask_[j] = mask_[j] & rmask_[j];
  }

  std::unique_ptr<Operator> outer_;
  ScanFilter filter_;
  ExprProgram residuals_;
  const ColumnVector* outer_key_ = nullptr;
  const HashIndex* index_ = nullptr;
  double width_ = 0;
  bool paged_ = false;
  ColumnBatch in_;
  JoinCandidates cand_;
  std::vector<std::vector<int32_t>> gather_;
  std::vector<const int32_t*> relptrs_;
  std::vector<uint8_t> mask_;
  std::vector<uint8_t> rmask_;
};

// Builds the operator tree under a projection root, collecting every
// operator (pre-order) for metric/profile flushing after the run.
StatusOr<std::unique_ptr<Operator>> BuildOp(ExecContext* ctx,
                                            const opt::PhysicalPlanPtr& p,
                                            int depth,
                                            std::vector<Operator*>* preorder,
                                            std::vector<int>* depths) {
  if (!p) return Status::Internal("null plan node");
  std::unique_ptr<Operator> op;
  switch (p->kind) {
    case opt::PhysicalPlan::Kind::kSeqScan:
      op = std::make_unique<SeqScanOp>(ctx, p.get());
      break;
    case opt::PhysicalPlan::Kind::kIndexLookup:
      op = std::make_unique<IndexLookupOp>(ctx, p.get());
      break;
    case opt::PhysicalPlan::Kind::kHashJoin: {
      preorder->push_back(nullptr);  // reserve the parent's pre-order slot
      depths->push_back(depth);
      size_t slot = preorder->size() - 1;
      LEGODB_ASSIGN_OR_RETURN(
          std::unique_ptr<Operator> probe,
          BuildOp(ctx, p->left, depth + 1, preorder, depths));
      LEGODB_ASSIGN_OR_RETURN(
          std::unique_ptr<Operator> build,
          BuildOp(ctx, p->right, depth + 1, preorder, depths));
      op = std::make_unique<HashJoinOp>(ctx, p.get(), std::move(probe),
                                        std::move(build));
      (*preorder)[slot] = op.get();
      return op;
    }
    case opt::PhysicalPlan::Kind::kIndexNLJoin: {
      preorder->push_back(nullptr);
      depths->push_back(depth);
      size_t slot = preorder->size() - 1;
      LEGODB_ASSIGN_OR_RETURN(
          std::unique_ptr<Operator> outer,
          BuildOp(ctx, p->left, depth + 1, preorder, depths));
      op = std::make_unique<IndexNLJoinOp>(ctx, p.get(), std::move(outer));
      (*preorder)[slot] = op.get();
      return op;
    }
    case opt::PhysicalPlan::Kind::kProject:
      return Status::Internal("nested projection");
  }
  preorder->push_back(op.get());
  depths->push_back(depth);
  return op;
}

std::string OpLabel(const ExecContext& ctx, const opt::PhysicalPlan& p) {
  std::string label = KindLabel(p.kind);
  auto alias = [&](int rel) {
    return rel >= 0 && rel < static_cast<int>(ctx.block->rels.size())
               ? ctx.block->rels[rel].alias
               : "?";
  };
  switch (p.kind) {
    case opt::PhysicalPlan::Kind::kSeqScan:
      label += "(" + alias(p.rel) + ")";
      break;
    case opt::PhysicalPlan::Kind::kIndexLookup:
      label += "(" + alias(p.rel) + "." + p.index_column + ")";
      break;
    case opt::PhysicalPlan::Kind::kHashJoin:
      label += "(" + alias(p.left_join_rel) + "." + p.left_join_column + "=" +
               alias(p.right_join_rel) + "." + p.right_join_column + ")";
      break;
    case opt::PhysicalPlan::Kind::kIndexNLJoin:
      label += "(" + alias(p.left_join_rel) + "." + p.left_join_column +
               "->" + alias(p.rel) + "." + p.index_column + ")";
      break;
    case opt::PhysicalPlan::Kind::kProject:
      break;
  }
  return label;
}

}  // namespace

class BlockExecutor {
 public:
  BlockExecutor(Executor* e, const opt::QueryBlock& block) {
    ctx_.e = e;
    ctx_.params = &e->params_;
    ctx_.stats = &e->stats_;
    ctx_.block = &block;
    ctx_.vector_size = e->options_.EffectiveVectorSize();
    ctx_.timed =
        e->options_.collect_profile || obs::Current() != nullptr;
    // A prepared set compiled against a different database would hand out
    // foreign column/index pointers; ignore it rather than trust it.
    if (e->options_.prepared != nullptr &&
        e->options_.prepared->database() == e->db_) {
      ctx_.prepared = e->options_.prepared;
    }
    ctx_.deadline_ns = e->options_.deadline_ns;
    ctx_.cancel = e->options_.cancel;
    ctx_.interruptible = ctx_.deadline_ns != 0 || ctx_.cancel != nullptr;
  }

  StatusOr<xq::ResultSet> Run(const opt::PhysicalPlanPtr& plan) {
    Executor* e = ctx_.e;
    const opt::QueryBlock& block = *ctx_.block;
    if (!plan || plan->kind != opt::PhysicalPlan::Kind::kProject) {
      return Status::InvalidArgument("plan root must be a projection");
    }
    for (const auto& rel : block.rels) {
      StoredTable* table = e->db_->FindTable(rel.table);
      if (!table) return Status::NotFound("table '" + rel.table + "'");
      ctx_.tables().push_back(table);
    }
    // A prepared plan carries column/index pointers into table registries
    // that any mutation invalidates; refuse to chase them once stale.
    if (ctx_.prepared != nullptr) {
      LEGODB_RETURN_IF_ERROR(ctx_.prepared->CheckFresh());
    }

    std::vector<Operator*> preorder;
    std::vector<int> depths;
    LEGODB_ASSIGN_OR_RETURN(
        std::unique_ptr<Operator> root,
        BuildOp(&ctx_, plan->child, /*depth=*/1, &preorder, &depths));

    // Resolve projection targets once: a missing column projects NULL (the
    // outer-union publishing encoding relies on heterogeneous outputs).
    // Values materialize from the column shadows, which both backends
    // provide (paged tables have no rows() to address into).
    struct Output {
      int rel = -1;
      int col = -1;
      const ColumnVector* vec = nullptr;
    };
    std::vector<Output> outputs;
    outputs.reserve(block.output.size());
    xq::ResultSet result;
    for (const auto& out : block.output) {
      result.labels.push_back(out.label.empty()
                                  ? (out.rel >= 0 ? out.column : "NULL")
                                  : out.label);
      Output o;
      o.rel = out.rel;
      if (out.rel >= 0) {
        o.col = ctx_.tables()[out.rel]->meta().ColumnIndex(out.column);
        if (o.col >= 0) {
          LEGODB_ASSIGN_OR_RETURN(
              o.vec, ctx_.tables()[out.rel]->GetOrBuildColumn(out.column));
        }
      }
      outputs.push_back(o);
    }

    int64_t t0 = ctx_.timed ? obs::NowNanos() : 0;
    int64_t root_batches = 0;
    {
      // Trace slice for the open phase (predicate compilation, hash-join
      // build); no-op without an ambient registry.
      obs::Span open_span("exec.open");
      LEGODB_RETURN_IF_ERROR(root->OpenTimed());
    }
    {
      // Trace slice for the pull/projection phase, sibling of exec.open.
      // This is the only place lanes materialize back into value rows.
      obs::Span next_span("exec.next");
      ColumnBatch batch;
      batch.Init(ctx_.nrels());
      do {
        LEGODB_RETURN_IF_ERROR(ctx_.CheckInterrupt());
        LEGODB_RETURN_IF_ERROR(root->NextTimed(&batch));
        ++root_batches;
        for (size_t lane = 0; lane < batch.lanes; ++lane) {
          std::vector<Value> row;
          row.reserve(outputs.size());
          for (const Output& o : outputs) {
            int32_t r = o.rel >= 0 && o.col >= 0
                            ? batch.RowAt(static_cast<size_t>(o.rel), lane)
                            : kUnboundRow;
            if (r < 0) {
              row.push_back(Value::MakeNull());
              continue;
            }
            row.push_back(o.vec->value(r));
          }
          for (const Value& v : row) e->stats_.bytes_out += v.ByteSize();
          e->stats_.rows_out += 1;
          result.rows.push_back(std::move(row));
        }
      } while (batch.lanes > 0);
    }
    double total_ms =
        ctx_.timed ? static_cast<double>(obs::NowNanos() - t0) / 1e6 : 0;

    obs::Count("exec.project.rows", static_cast<int64_t>(result.rows.size()));
    if (obs::Current() != nullptr) {
      for (Operator* op : preorder) {
        OpMetricNames names = MetricNames(op->node()->kind);
        obs::Count(names.rows, op->rows_produced());
        obs::Observe(names.ms, op->millis());
      }
    }
    if (e->options_.collect_profile) {
      Operator* root_op = root.get();
      OpActual project;
      project.kind = opt::PhysicalPlan::Kind::kProject;
      project.label = OpLabel(ctx_, *plan);
      project.est_rows = plan->est_rows;
      project.est_cost = plan->est_cost;
      project.actual_rows = static_cast<int64_t>(result.rows.size());
      project.rows_in = root_op->rows_produced();
      project.batches = root_batches;
      project.vectors = root_op->vectors();
      project.seeks = root_op->seeks();
      project.bytes = root_op->bytes();
      project.ms = total_ms;
      project.depth = 0;
      e->profile_.ops.push_back(std::move(project));
      for (size_t i = 0; i < preorder.size(); ++i) {
        Operator* op = preorder[i];
        OpActual actual;
        actual.kind = op->node()->kind;
        actual.label = OpLabel(ctx_, *op->node());
        actual.est_rows = op->node()->est_rows;
        actual.est_cost = op->node()->est_cost;
        actual.actual_rows = op->rows_produced();
        actual.rows_in = op->rows_examined();
        actual.batches = op->batches();
        actual.vectors = op->vectors();
        actual.seeks = op->seeks();
        actual.bytes = op->bytes();
        actual.ms = op->millis();
        actual.depth = depths[i];
        e->profile_.ops.push_back(std::move(actual));
      }
    }
    return result;
  }

 private:
  ExecContext ctx_;
};

StatusOr<xq::ResultSet> Executor::ExecuteBlock(
    const opt::QueryBlock& block, const opt::PhysicalPlanPtr& plan) {
  // A trace slice per executed block (the exec.open / exec.next phase
  // slices nest under it), plus the aggregate histogram/counter.
  obs::Span span("exec.block");
  obs::ScopedTimer timer("exec.block_ms");
  obs::Count("exec.blocks");
  return BlockExecutor(this, block).Run(plan);
}

StatusOr<xq::ResultSet> Executor::ExecuteQuery(
    const opt::RelQuery& query,
    const std::vector<opt::PhysicalPlanPtr>& block_plans) {
  if (block_plans.size() != query.blocks.size()) {
    return Status::InvalidArgument("plan count mismatch");
  }
  profile_.Clear();
  xq::ResultSet result;
  result.labels = query.labels;
  for (size_t i = 0; i < query.blocks.size(); ++i) {
    LEGODB_ASSIGN_OR_RETURN(xq::ResultSet part,
                            ExecuteBlock(query.blocks[i], block_plans[i]));
    if (result.labels.empty()) result.labels = part.labels;
    for (auto& row : part.rows) result.rows.push_back(std::move(row));
  }
  return result;
}

}  // namespace legodb::engine
