#include "engine/executor.h"

#include <algorithm>
#include <memory>
#include <unordered_map>
#include <utility>

#include "obs/obs.h"
#include "xquery/evaluator.h"

namespace legodb::engine {

using store::HashIndex;
using store::Row;
using store::StoredTable;

void ExecStats::Add(const ExecStats& other) {
  tuples_processed += other.tuples_processed;
  bytes_read += other.bytes_read;
  seeks += other.seeks;
  rows_out += other.rows_out;
  bytes_out += other.bytes_out;
}

double OpActual::QError() const {
  double est = std::max(est_rows, 1.0);
  double act = std::max(static_cast<double>(actual_rows), 1.0);
  return std::max(est / act, act / est);
}

namespace {

// One intermediate tuple: a row pointer per base relation (nullptr when the
// relation is not yet joined or missed an outer join).
using Binding = std::vector<const Row*>;
using Batch = std::vector<Binding>;

// Static metric names per operator (rows produced, inclusive wall time).
struct OpMetricNames {
  const char* rows;
  const char* ms;
};

OpMetricNames MetricNames(opt::PhysicalPlan::Kind kind) {
  switch (kind) {
    case opt::PhysicalPlan::Kind::kSeqScan:
      return {"exec.seq_scan.rows", "exec.seq_scan.ms"};
    case opt::PhysicalPlan::Kind::kIndexLookup:
      return {"exec.index_lookup.rows", "exec.index_lookup.ms"};
    case opt::PhysicalPlan::Kind::kHashJoin:
      return {"exec.hash_join.rows", "exec.hash_join.ms"};
    case opt::PhysicalPlan::Kind::kIndexNLJoin:
      return {"exec.index_nl_join.rows", "exec.index_nl_join.ms"};
    case opt::PhysicalPlan::Kind::kProject:
      return {"exec.project.rows", "exec.project.ms"};
  }
  return {"exec.unknown.rows", "exec.unknown.ms"};
}

const char* KindLabel(opt::PhysicalPlan::Kind kind) {
  switch (kind) {
    case opt::PhysicalPlan::Kind::kSeqScan:
      return "SeqScan";
    case opt::PhysicalPlan::Kind::kIndexLookup:
      return "IndexLookup";
    case opt::PhysicalPlan::Kind::kHashJoin:
      return "HashJoin";
    case opt::PhysicalPlan::Kind::kIndexNLJoin:
      return "IndexNLJoin";
    case opt::PhysicalPlan::Kind::kProject:
      return "Project";
  }
  return "Unknown";
}

// Shared state of one block execution: table bindings resolved once, plus
// the owning executor for stats/params.
struct ExecContext {
  Executor* e = nullptr;
  const std::map<std::string, Value>* params = nullptr;
  ExecStats* stats = nullptr;
  const opt::QueryBlock* block = nullptr;
  std::vector<StoredTable*> tables;
  size_t batch_size = 1;
  bool timed = false;  // operators accumulate wall time per Next/Open

  std::string QualifiedColumn(int rel, const std::string& column) const {
    if (rel < 0 || rel >= static_cast<int>(tables.size())) {
      return "rel#" + std::to_string(rel) + "." + column;
    }
    return tables[rel]->meta().name + "." + column;
  }
};

// A filter with its column offset and comparison constant resolved once at
// operator open; unknown columns and unbound parameters fail the open, they
// never silently drop rows.
struct CompiledFilter {
  int col = -1;
  xq::CompareOp op = xq::CompareOp::kEq;
  Value want;
  bool not_null = false;
};

// A residual join edge with both column offsets resolved.
struct CompiledResidual {
  int left_rel = -1;
  int left_col = -1;
  int right_rel = -1;
  int right_col = -1;
};

StatusOr<Value> ResolveConstant(const ExecContext& ctx, const xq::Constant& c) {
  switch (c.kind) {
    case xq::Constant::Kind::kInt:
      return Value::Int(c.int_value);
    case xq::Constant::Kind::kString:
      return xq::CanonicalValue(c.string_value);
    case xq::Constant::Kind::kSymbol: {
      auto it = ctx.params->find(c.symbol);
      if (it == ctx.params->end()) {
        return Status::InvalidArgument("unbound query parameter '" + c.symbol +
                                       "'");
      }
      return it->second;
    }
  }
  return Status::Internal("bad constant");
}

StatusOr<int> ResolveColumn(const ExecContext& ctx, int rel,
                            const std::string& column, const char* what) {
  if (rel < 0 || rel >= static_cast<int>(ctx.tables.size())) {
    return Status::Internal(std::string(what) + " references relation #" +
                            std::to_string(rel) + " outside the block");
  }
  int idx = ctx.tables[rel]->meta().ColumnIndex(column);
  if (idx < 0) {
    return Status::Internal(std::string(what) + " references unknown column '" +
                            ctx.QualifiedColumn(rel, column) +
                            "' (translator/catalog drift)");
  }
  return idx;
}

// Compiles the filters of `filters` that apply to `rel`.
StatusOr<std::vector<CompiledFilter>> CompileFilters(
    const ExecContext& ctx, int rel,
    const std::vector<opt::FilterPred>& filters) {
  std::vector<CompiledFilter> out;
  for (const auto& f : filters) {
    if (f.rel != rel) continue;
    CompiledFilter cf;
    LEGODB_ASSIGN_OR_RETURN(cf.col, ResolveColumn(ctx, rel, f.column, "filter"));
    cf.op = f.op;
    cf.not_null = f.not_null;
    if (!f.not_null) {
      LEGODB_ASSIGN_OR_RETURN(cf.want, ResolveConstant(ctx, f.value));
    }
    out.push_back(std::move(cf));
  }
  return out;
}

bool PassFilters(const Row& row, const std::vector<CompiledFilter>& filters) {
  for (const auto& f : filters) {
    const Value& v = row[f.col];
    if (v.is_null()) return false;
    if (f.not_null) continue;
    if (!xq::ApplyCompare(f.op, v, f.want)) return false;
  }
  return true;
}

StatusOr<std::vector<CompiledResidual>> CompileResiduals(
    const ExecContext& ctx, const std::vector<opt::JoinEdge>& edges) {
  std::vector<CompiledResidual> out;
  for (const auto& e : edges) {
    CompiledResidual cr;
    cr.left_rel = e.left_rel;
    cr.right_rel = e.right_rel;
    LEGODB_ASSIGN_OR_RETURN(
        cr.left_col, ResolveColumn(ctx, e.left_rel, e.left_column,
                                   "residual join"));
    LEGODB_ASSIGN_OR_RETURN(
        cr.right_col, ResolveColumn(ctx, e.right_rel, e.right_column,
                                    "residual join"));
    out.push_back(cr);
  }
  return out;
}

// Extra join predicates beyond the driving hash/index edge.
bool ResidualsPass(const Binding& merged,
                   const std::vector<CompiledResidual>& residuals) {
  for (const auto& r : residuals) {
    const Row* l = merged[r.left_rel];
    const Row* rr = merged[r.right_rel];
    if (!l || !rr) return false;
    const Value& lv = (*l)[r.left_col];
    const Value& rv = (*rr)[r.right_col];
    if (lv.is_null() || rv.is_null() || !(lv == rv)) return false;
  }
  return true;
}

// A pipelined operator: Next() refills `out` with up to ctx->batch_size
// bindings (join operators may overshoot when one input binding matches
// several rows); an empty `out` signals end of stream.
class Operator {
 public:
  Operator(ExecContext* ctx, const opt::PhysicalPlan* node)
      : ctx_(ctx), node_(node) {}
  virtual ~Operator() = default;

  virtual Status Open() = 0;
  virtual Status Next(Batch* out) = 0;

  // Open/Next wrappers accumulating produced rows, batches, inclusive wall
  // time and inclusive seeks (child pulls included, mirroring the
  // optimizer's inclusive est_cost).
  Status OpenTimed() {
    if (!ctx_->timed) return Open();
    int64_t t0 = obs::NowNanos();
    double seeks0 = ctx_->stats->seeks;
    Status s = Open();
    ns_ += obs::NowNanos() - t0;
    seeks_ += ctx_->stats->seeks - seeks0;
    return s;
  }
  Status NextTimed(Batch* out) {
    if (!ctx_->timed) return Next(out);
    int64_t t0 = obs::NowNanos();
    double seeks0 = ctx_->stats->seeks;
    Status s = Next(out);
    ns_ += obs::NowNanos() - t0;
    seeks_ += ctx_->stats->seeks - seeks0;
    rows_ += static_cast<int64_t>(out->size());
    ++batches_;
    return s;
  }

  const opt::PhysicalPlan* node() const { return node_; }
  int64_t rows_produced() const { return rows_; }
  int64_t batches() const { return batches_; }
  double seeks() const { return seeks_; }
  double millis() const { return static_cast<double>(ns_) / 1e6; }

 protected:
  Binding NewBinding(int rel, const Row* row) const {
    Binding b(ctx_->block->rels.size(), nullptr);
    b[rel] = row;
    return b;
  }
  double RowWidth(int rel) const {
    return ctx_->tables[rel]->meta().RowWidth();
  }
  ExecStats& stats() const { return *ctx_->stats; }

  ExecContext* ctx_;
  const opt::PhysicalPlan* node_;

 private:
  int64_t rows_ = 0;
  int64_t batches_ = 0;
  int64_t ns_ = 0;
  double seeks_ = 0;
};

class SeqScanOp : public Operator {
 public:
  using Operator::Operator;

  Status Open() override {
    LEGODB_ASSIGN_OR_RETURN(
        filters_, CompileFilters(*ctx_, node_->rel, node_->filters));
    width_ = RowWidth(node_->rel);
    stats().seeks += 1;
    pos_ = 0;
    return Status::OK();
  }

  Status Next(Batch* out) override {
    out->clear();
    const std::vector<Row>& rows = ctx_->tables[node_->rel]->rows();
    size_t scanned = 0;
    while (pos_ < rows.size() && out->size() < ctx_->batch_size) {
      const Row& row = rows[pos_++];
      ++scanned;
      if (PassFilters(row, filters_)) {
        out->push_back(NewBinding(node_->rel, &row));
      }
    }
    stats().tuples_processed += static_cast<double>(scanned);
    stats().bytes_read += static_cast<double>(scanned) * width_;
    return Status::OK();
  }

 private:
  std::vector<CompiledFilter> filters_;
  double width_ = 0;
  size_t pos_ = 0;
};

class IndexLookupOp : public Operator {
 public:
  using Operator::Operator;

  Status Open() override {
    LEGODB_ASSIGN_OR_RETURN(
        filters_, CompileFilters(*ctx_, node_->rel, node_->filters));
    const opt::FilterPred* driver = nullptr;
    for (const auto& f : node_->filters) {
      if (f.rel == node_->rel && f.column == node_->index_column &&
          !f.not_null && f.op == xq::CompareOp::kEq) {
        driver = &f;
        break;
      }
    }
    if (!driver) {
      return Status::Internal("index lookup without driving filter");
    }
    LEGODB_ASSIGN_OR_RETURN(Value key, ResolveConstant(*ctx_, driver->value));
    LEGODB_ASSIGN_OR_RETURN(
        const HashIndex* index,
        ctx_->tables[node_->rel]->GetOrBuildIndex(node_->index_column));
    hits_ = &index->Find(key);
    width_ = RowWidth(node_->rel);
    stats().seeks += 1;
    pos_ = 0;
    return Status::OK();
  }

  Status Next(Batch* out) override {
    out->clear();
    const std::vector<Row>& rows = ctx_->tables[node_->rel]->rows();
    size_t scanned = 0;
    while (pos_ < hits_->size() && out->size() < ctx_->batch_size) {
      const Row& row = rows[(*hits_)[pos_++]];
      ++scanned;
      if (PassFilters(row, filters_)) {
        out->push_back(NewBinding(node_->rel, &row));
      }
    }
    stats().seeks += static_cast<double>(scanned);
    stats().tuples_processed += static_cast<double>(scanned);
    stats().bytes_read += static_cast<double>(scanned) * width_;
    return Status::OK();
  }

 private:
  std::vector<CompiledFilter> filters_;
  const std::vector<size_t>* hits_ = nullptr;
  double width_ = 0;
  size_t pos_ = 0;
};

// Hash join: materializes the build (right) side at open, then streams
// probe batches through the hash table. Probe order is preserved and
// matches per probe binding come in build order, so output order is
// identical to the materializing reference executor at any batch size.
//
// When the build side is a bare unfiltered scan of the joined relation,
// the join skips materialization entirely and probes the table's shared
// pre-built hash index (same row order, so same output): repeated queries
// stop re-hashing the build side on every execution. Profiled runs keep
// the materializing path so per-operator actuals reflect the full
// dataflow; stats are charged identically either way.
class HashJoinOp : public Operator {
 public:
  HashJoinOp(ExecContext* ctx, const opt::PhysicalPlan* node,
             std::unique_ptr<Operator> probe, std::unique_ptr<Operator> build)
      : Operator(ctx, node),
        probe_(std::move(probe)),
        build_(std::move(build)) {}

  Status Open() override {
    LEGODB_RETURN_IF_ERROR(probe_->OpenTimed());
    LEGODB_ASSIGN_OR_RETURN(
        build_col_, ResolveColumn(*ctx_, node_->right_join_rel,
                                  node_->right_join_column, "hash join"));
    LEGODB_ASSIGN_OR_RETURN(
        probe_col_, ResolveColumn(*ctx_, node_->left_join_rel,
                                  node_->left_join_column, "hash join"));
    LEGODB_ASSIGN_OR_RETURN(residuals_,
                            CompileResiduals(*ctx_, node_->residual_joins));

    int build_rel = node_->right_join_rel;
    const opt::PhysicalPlan* b = node_->right.get();
    if (!ctx_->timed && b && b->kind == opt::PhysicalPlan::Kind::kSeqScan &&
        b->rel == build_rel && b->filters.empty()) {
      LEGODB_ASSIGN_OR_RETURN(
          shared_index_,
          ctx_->tables[build_rel]->GetOrBuildIndex(node_->right_join_column));
      // Charge what the materializing path would have: the build-side scan
      // (one seek, every row read) plus the join's build-input tuples.
      double n = static_cast<double>(ctx_->tables[build_rel]->row_count());
      stats().seeks += 1;
      stats().tuples_processed += 2 * n;
      stats().bytes_read += n * RowWidth(build_rel);
      return Status::OK();
    }

    // Drain and materialize the build side, then key it by join value.
    LEGODB_RETURN_IF_ERROR(build_->OpenTimed());
    Batch in;
    do {
      LEGODB_RETURN_IF_ERROR(build_->NextTimed(&in));
      for (Binding& b2 : in) build_rows_.push_back(std::move(b2));
    } while (!in.empty());
    for (size_t i = 0; i < build_rows_.size(); ++i) {
      const Row* row = build_rows_[i][build_rel];
      if (!row || (*row)[build_col_].is_null()) continue;
      table_[(*row)[build_col_]].push_back(i);
    }
    stats().tuples_processed += static_cast<double>(build_rows_.size());
    return Status::OK();
  }

  Status Next(Batch* out) override {
    out->clear();
    int probe_rel = node_->left_join_rel;
    int build_rel = node_->right_join_rel;
    const std::vector<Row>* build_table =
        shared_index_ ? &ctx_->tables[build_rel]->rows() : nullptr;
    while (out->empty()) {
      LEGODB_RETURN_IF_ERROR(probe_->NextTimed(&in_));
      if (in_.empty()) return Status::OK();  // end of stream
      stats().tuples_processed += static_cast<double>(in_.size());
      for (Binding& l : in_) {
        const Row* row = l[probe_rel];
        bool matched = false;
        if (row && !(*row)[probe_col_].is_null()) {
          const Value& key = (*row)[probe_col_];
          if (shared_index_) {
            for (size_t idx : shared_index_->Find(key)) {
              const Row& brow = (*build_table)[idx];
              if (brow[build_col_].is_null()) continue;
              Binding merged = l;
              merged[build_rel] = &brow;
              if (!ResidualsPass(merged, residuals_)) continue;
              out->push_back(std::move(merged));
              matched = true;
            }
          } else if (auto it = table_.find(key); it != table_.end()) {
            for (size_t idx : it->second) {
              const Binding& r = build_rows_[idx];
              Binding merged = l;
              for (size_t i = 0; i < merged.size(); ++i) {
                if (r[i]) merged[i] = r[i];
              }
              if (!ResidualsPass(merged, residuals_)) continue;
              out->push_back(std::move(merged));
              matched = true;
            }
          }
        }
        // Preserve the probe binding exactly once when no hash match
        // survived the residual predicates.
        if (!matched && node_->left_outer) out->push_back(l);
      }
    }
    return Status::OK();
  }

 private:
  std::unique_ptr<Operator> probe_;
  std::unique_ptr<Operator> build_;
  int build_col_ = -1;
  int probe_col_ = -1;
  std::vector<CompiledResidual> residuals_;
  const HashIndex* shared_index_ = nullptr;  // fast path when non-null
  std::vector<Binding> build_rows_;
  std::unordered_map<Value, std::vector<size_t>, ValueHash> table_;
  Batch in_;
};

class IndexNLJoinOp : public Operator {
 public:
  IndexNLJoinOp(ExecContext* ctx, const opt::PhysicalPlan* node,
                std::unique_ptr<Operator> outer)
      : Operator(ctx, node), outer_(std::move(outer)) {}

  Status Open() override {
    LEGODB_RETURN_IF_ERROR(outer_->OpenTimed());
    LEGODB_ASSIGN_OR_RETURN(
        filters_, CompileFilters(*ctx_, node_->rel, node_->filters));
    LEGODB_ASSIGN_OR_RETURN(
        outer_col_, ResolveColumn(*ctx_, node_->left_join_rel,
                                  node_->left_join_column, "index join"));
    LEGODB_ASSIGN_OR_RETURN(
        index_, ctx_->tables[node_->rel]->GetOrBuildIndex(node_->index_column));
    LEGODB_ASSIGN_OR_RETURN(residuals_,
                            CompileResiduals(*ctx_, node_->residual_joins));
    width_ = RowWidth(node_->rel);
    return Status::OK();
  }

  Status Next(Batch* out) override {
    out->clear();
    int outer_rel = node_->left_join_rel;
    int inner_rel = node_->rel;
    const std::vector<Row>& inner_rows = ctx_->tables[inner_rel]->rows();
    while (out->empty()) {
      LEGODB_RETURN_IF_ERROR(outer_->NextTimed(&in_));
      if (in_.empty()) return Status::OK();  // end of stream
      for (Binding& l : in_) {
        const Row* row = l[outer_rel];
        bool matched = false;
        stats().seeks += 1;
        if (row && !(*row)[outer_col_].is_null()) {
          const std::vector<size_t>& hits = index_->Find((*row)[outer_col_]);
          stats().seeks += static_cast<double>(hits.size());
          stats().tuples_processed += static_cast<double>(hits.size());
          stats().bytes_read += static_cast<double>(hits.size()) * width_;
          for (size_t idx : hits) {
            const Row& irow = inner_rows[idx];
            if (!PassFilters(irow, filters_)) continue;
            Binding merged = l;
            merged[inner_rel] = &irow;
            if (!ResidualsPass(merged, residuals_)) continue;
            out->push_back(std::move(merged));
            matched = true;
          }
        }
        if (!matched && node_->left_outer) out->push_back(l);
      }
    }
    return Status::OK();
  }

 private:
  std::unique_ptr<Operator> outer_;
  std::vector<CompiledFilter> filters_;
  std::vector<CompiledResidual> residuals_;
  const HashIndex* index_ = nullptr;
  int outer_col_ = -1;
  double width_ = 0;
  Batch in_;
};

// Builds the operator tree under a projection root, collecting every
// operator (pre-order) for metric/profile flushing after the run.
StatusOr<std::unique_ptr<Operator>> BuildOp(ExecContext* ctx,
                                            const opt::PhysicalPlanPtr& p,
                                            int depth,
                                            std::vector<Operator*>* preorder,
                                            std::vector<int>* depths) {
  if (!p) return Status::Internal("null plan node");
  std::unique_ptr<Operator> op;
  switch (p->kind) {
    case opt::PhysicalPlan::Kind::kSeqScan:
      op = std::make_unique<SeqScanOp>(ctx, p.get());
      break;
    case opt::PhysicalPlan::Kind::kIndexLookup:
      op = std::make_unique<IndexLookupOp>(ctx, p.get());
      break;
    case opt::PhysicalPlan::Kind::kHashJoin: {
      preorder->push_back(nullptr);  // reserve the parent's pre-order slot
      depths->push_back(depth);
      size_t slot = preorder->size() - 1;
      LEGODB_ASSIGN_OR_RETURN(
          std::unique_ptr<Operator> probe,
          BuildOp(ctx, p->left, depth + 1, preorder, depths));
      LEGODB_ASSIGN_OR_RETURN(
          std::unique_ptr<Operator> build,
          BuildOp(ctx, p->right, depth + 1, preorder, depths));
      op = std::make_unique<HashJoinOp>(ctx, p.get(), std::move(probe),
                                        std::move(build));
      (*preorder)[slot] = op.get();
      return op;
    }
    case opt::PhysicalPlan::Kind::kIndexNLJoin: {
      preorder->push_back(nullptr);
      depths->push_back(depth);
      size_t slot = preorder->size() - 1;
      LEGODB_ASSIGN_OR_RETURN(
          std::unique_ptr<Operator> outer,
          BuildOp(ctx, p->left, depth + 1, preorder, depths));
      op = std::make_unique<IndexNLJoinOp>(ctx, p.get(), std::move(outer));
      (*preorder)[slot] = op.get();
      return op;
    }
    case opt::PhysicalPlan::Kind::kProject:
      return Status::Internal("nested projection");
  }
  preorder->push_back(op.get());
  depths->push_back(depth);
  return op;
}

std::string OpLabel(const ExecContext& ctx, const opt::PhysicalPlan& p) {
  std::string label = KindLabel(p.kind);
  auto alias = [&](int rel) {
    return rel >= 0 && rel < static_cast<int>(ctx.block->rels.size())
               ? ctx.block->rels[rel].alias
               : "?";
  };
  switch (p.kind) {
    case opt::PhysicalPlan::Kind::kSeqScan:
      label += "(" + alias(p.rel) + ")";
      break;
    case opt::PhysicalPlan::Kind::kIndexLookup:
      label += "(" + alias(p.rel) + "." + p.index_column + ")";
      break;
    case opt::PhysicalPlan::Kind::kHashJoin:
      label += "(" + alias(p.left_join_rel) + "." + p.left_join_column + "=" +
               alias(p.right_join_rel) + "." + p.right_join_column + ")";
      break;
    case opt::PhysicalPlan::Kind::kIndexNLJoin:
      label += "(" + alias(p.left_join_rel) + "." + p.left_join_column +
               "->" + alias(p.rel) + "." + p.index_column + ")";
      break;
    case opt::PhysicalPlan::Kind::kProject:
      break;
  }
  return label;
}

}  // namespace

class BlockExecutor {
 public:
  BlockExecutor(Executor* e, const opt::QueryBlock& block) {
    ctx_.e = e;
    ctx_.params = &e->params_;
    ctx_.stats = &e->stats_;
    ctx_.block = &block;
    ctx_.batch_size = std::max<size_t>(1, e->options_.batch_size);
    ctx_.timed =
        e->options_.collect_profile || obs::Current() != nullptr;
  }

  StatusOr<xq::ResultSet> Run(const opt::PhysicalPlanPtr& plan) {
    Executor* e = ctx_.e;
    const opt::QueryBlock& block = *ctx_.block;
    if (!plan || plan->kind != opt::PhysicalPlan::Kind::kProject) {
      return Status::InvalidArgument("plan root must be a projection");
    }
    for (const auto& rel : block.rels) {
      StoredTable* table = e->db_->FindTable(rel.table);
      if (!table) return Status::NotFound("table '" + rel.table + "'");
      ctx_.tables.push_back(table);
    }

    std::vector<Operator*> preorder;
    std::vector<int> depths;
    LEGODB_ASSIGN_OR_RETURN(
        std::unique_ptr<Operator> root,
        BuildOp(&ctx_, plan->child, /*depth=*/1, &preorder, &depths));

    // Resolve projection targets once: a missing column projects NULL (the
    // outer-union publishing encoding relies on heterogeneous outputs).
    struct Output {
      int rel = -1;
      int col = -1;
    };
    std::vector<Output> outputs;
    outputs.reserve(block.output.size());
    xq::ResultSet result;
    for (const auto& out : block.output) {
      result.labels.push_back(out.label.empty()
                                  ? (out.rel >= 0 ? out.column : "NULL")
                                  : out.label);
      Output o;
      o.rel = out.rel;
      if (out.rel >= 0) {
        o.col = ctx_.tables[out.rel]->meta().ColumnIndex(out.column);
      }
      outputs.push_back(o);
    }

    int64_t t0 = ctx_.timed ? obs::NowNanos() : 0;
    int64_t root_batches = 0;
    {
      // Trace slice for the open phase (filter compilation, hash-join
      // build); no-op without an ambient registry.
      obs::Span open_span("exec.open");
      LEGODB_RETURN_IF_ERROR(root->OpenTimed());
    }
    {
      // Trace slice for the pull/projection phase, sibling of exec.open.
      obs::Span next_span("exec.next");
      Batch batch;
      do {
        LEGODB_RETURN_IF_ERROR(root->NextTimed(&batch));
        ++root_batches;
        for (const Binding& binding : batch) {
          std::vector<Value> row;
          row.reserve(outputs.size());
          for (const Output& o : outputs) {
            if (o.rel < 0 || o.col < 0 || binding[o.rel] == nullptr) {
              row.push_back(Value::MakeNull());
              continue;
            }
            row.push_back((*binding[o.rel])[o.col]);
          }
          for (const Value& v : row) e->stats_.bytes_out += v.ByteSize();
          e->stats_.rows_out += 1;
          result.rows.push_back(std::move(row));
        }
      } while (!batch.empty());
    }
    double total_ms =
        ctx_.timed ? static_cast<double>(obs::NowNanos() - t0) / 1e6 : 0;

    obs::Count("exec.project.rows", static_cast<int64_t>(result.rows.size()));
    if (obs::Current() != nullptr) {
      for (Operator* op : preorder) {
        OpMetricNames names = MetricNames(op->node()->kind);
        obs::Count(names.rows, op->rows_produced());
        obs::Observe(names.ms, op->millis());
      }
    }
    if (e->options_.collect_profile) {
      OpActual project;
      project.kind = opt::PhysicalPlan::Kind::kProject;
      project.label = OpLabel(ctx_, *plan);
      project.est_rows = plan->est_rows;
      project.est_cost = plan->est_cost;
      project.actual_rows = static_cast<int64_t>(result.rows.size());
      project.batches = root_batches;
      project.seeks = root->seeks();
      project.ms = total_ms;
      project.depth = 0;
      e->profile_.ops.push_back(std::move(project));
      for (size_t i = 0; i < preorder.size(); ++i) {
        Operator* op = preorder[i];
        OpActual actual;
        actual.kind = op->node()->kind;
        actual.label = OpLabel(ctx_, *op->node());
        actual.est_rows = op->node()->est_rows;
        actual.est_cost = op->node()->est_cost;
        actual.actual_rows = op->rows_produced();
        actual.batches = op->batches();
        actual.seeks = op->seeks();
        actual.ms = op->millis();
        actual.depth = depths[i];
        e->profile_.ops.push_back(std::move(actual));
      }
    }
    return result;
  }

 private:
  ExecContext ctx_;
};

StatusOr<xq::ResultSet> Executor::ExecuteBlock(
    const opt::QueryBlock& block, const opt::PhysicalPlanPtr& plan) {
  // A trace slice per executed block (the exec.open / exec.next phase
  // slices nest under it), plus the aggregate histogram/counter.
  obs::Span span("exec.block");
  obs::ScopedTimer timer("exec.block_ms");
  obs::Count("exec.blocks");
  return BlockExecutor(this, block).Run(plan);
}

StatusOr<xq::ResultSet> Executor::ExecuteQuery(
    const opt::RelQuery& query,
    const std::vector<opt::PhysicalPlanPtr>& block_plans) {
  if (block_plans.size() != query.blocks.size()) {
    return Status::InvalidArgument("plan count mismatch");
  }
  profile_.Clear();
  xq::ResultSet result;
  result.labels = query.labels;
  for (size_t i = 0; i < query.blocks.size(); ++i) {
    LEGODB_ASSIGN_OR_RETURN(xq::ResultSet part,
                            ExecuteBlock(query.blocks[i], block_plans[i]));
    if (result.labels.empty()) result.labels = part.labels;
    for (auto& row : part.rows) result.rows.push_back(std::move(row));
  }
  return result;
}

}  // namespace legodb::engine
