#ifndef LEGODB_ENGINE_EXECUTOR_H_
#define LEGODB_ENGINE_EXECUTOR_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/cancel.h"
#include "common/status.h"
#include "optimizer/plan.h"
#include "storage/database.h"
#include "xquery/result.h"

namespace legodb::engine {

class PreparedPrograms;

// Work actually performed by an execution — the measured counterpart of the
// optimizer's estimates, used to validate the cost model (the paper
// validated against SQL Server; we validate against this engine).
struct ExecStats {
  double tuples_processed = 0;
  double bytes_read = 0;
  double seeks = 0;
  double rows_out = 0;
  double bytes_out = 0;
  // Bytes written to temp pages by hash-join build sides that spilled under
  // buffer-pool pressure (paged backend only).
  double bytes_spilled = 0;

  // Work combined with the same weights as the optimizer's cost formula.
  double WeightedCost(double seek_cost, double read_per_byte,
                      double write_per_byte, double cpu_per_tuple) const {
    return seeks * seek_cost + bytes_read * read_per_byte +
           (bytes_out + bytes_spilled) * write_per_byte +
           tuples_processed * cpu_per_tuple;
  }

  void Add(const ExecStats& other);
};

// Execution knobs.
struct ExecOptions {
  // Lanes pulled per operator Next() call. 1 degenerates to
  // tuple-at-a-time; larger batches amortize per-call overhead.
  size_t batch_size = 1024;
  // Lanes per column vector exchanged between operators; 0 means "same as
  // batch_size" (the engine exchanges exactly one vector per Next()).
  size_t vector_size = 0;
  // Record a per-operator estimated-vs-actual profile for each executed
  // block (see ExecProfile). Off by default: profiles accumulate until
  // ResetProfile(), which loops calling ExecuteBlock would otherwise grow.
  bool collect_profile = false;
  // Prepared per-node bytecode templates and resolved column/index pointers
  // for the plans about to execute (see engine/prepared.h). When set — and
  // compiled against this executor's Database — operators skip Open-time
  // predicate compilation and catalog resolution; otherwise it is ignored.
  // Not owned; must outlive the execution.
  const PreparedPrograms* prepared = nullptr;
  // Absolute obs::NowNanos() deadline (0 = none). Checked once per
  // exchanged vector — including inside the scan operators' candidate
  // loops, where a selective filter can burn through an entire table
  // without returning — so Status::DeadlineExceeded can fire *during*
  // execution, not only before it starts.
  int64_t deadline_ns = 0;
  // Cooperative cancellation, polled at the same per-vector granularity
  // (one relaxed atomic load). When cancelled, execution stops at the next
  // vector boundary with Status::Cancelled. Not owned; must outlive the
  // execution.
  const common::CancelToken* cancel = nullptr;
  // Hash-join build sides larger than this many bytes spill their
  // materialized row-index vectors to temp pages (paged backend only;
  // memory tables never spill). 0 = automatic: a quarter of the buffer
  // pool's capacity in bytes. SIZE_MAX disables spilling.
  size_t spill_build_bytes = 0;

  // The lane count operators actually use.
  size_t EffectiveVectorSize() const {
    size_t n = vector_size != 0 ? vector_size : batch_size;
    return n == 0 ? 1 : n;
  }
};

// One plan operator's estimates next to what execution actually observed.
struct OpActual {
  opt::PhysicalPlan::Kind kind = opt::PhysicalPlan::Kind::kSeqScan;
  std::string label;        // e.g. "SeqScan(show)"
  double est_rows = 0;      // optimizer cardinality estimate
  double est_cost = 0;      // optimizer cost estimate (inclusive of inputs)
  int64_t actual_rows = 0;  // lanes this operator produced
  int64_t rows_in = 0;      // lanes examined (scan candidates / probe input)
  int64_t batches = 0;      // Next() calls answered (incl. the empty EOS)
  int64_t vectors = 0;      // column vectors produced across all batches
  double seeks = 0;         // inclusive index/scan probes (child ops incl.)
  double bytes = 0;         // inclusive bytes read (child ops included)
  double ms = 0;            // inclusive wall time (child pulls included)
  int depth = 0;            // position in the operator tree (pre-order)

  // Symmetric relative cardinality error: max(est/actual, actual/est),
  // with both sides floored at one row. 1.0 = perfect estimate.
  double QError() const;

  // Output lanes per input lane (scans: fraction surviving the filter;
  // joins: fan-out, may exceed 1). Zero input yields 0.
  double Selectivity() const;
};

// Per-operator calibration data for the executed plan(s), in pre-order.
struct ExecProfile {
  std::vector<OpActual> ops;
  void Clear() { ops.clear(); }
};

// Executes physical plans over an in-memory Database as a pipelined,
// vector-at-a-time pull engine: operators exchange columnar batches (one
// row-index column per base relation, no per-tuple allocation), filters and
// residual join predicates run as compiled bytecode over the storage
// layer's column vectors (see engine/expr_vm.h), only hash-join build sides
// materialize, and all column shadows and constants are resolved once per
// operator open (never per row). Rows materialize only at the final
// projection boundary, so results stay bit-identical to ReferenceExecutor.
//
// One Executor serves one query stream on one thread; any number of
// Executors may share a Database concurrently (the storage index and
// column-vector registries are thread-safe, everything else is read-only
// during execution).
class Executor {
 public:
  // `params` binds symbolic query constants (c1, c2, ...).
  explicit Executor(store::Database* db,
                    std::map<std::string, Value> params = {},
                    ExecOptions options = {})
      : db_(db), params_(std::move(params)), options_(options) {}

  // Executes one planned block; returns rows labelled per block.output.
  StatusOr<xq::ResultSet> ExecuteBlock(const opt::QueryBlock& block,
                                       const opt::PhysicalPlanPtr& plan);

  // Executes a whole translated query (UNION ALL of its blocks). Clears the
  // profile first, so profile() afterwards describes exactly this query.
  StatusOr<xq::ResultSet> ExecuteQuery(
      const opt::RelQuery& query,
      const std::vector<opt::PhysicalPlanPtr>& block_plans);

  const ExecStats& stats() const { return stats_; }
  void ResetStats() { stats_ = ExecStats(); }

  // Estimated-vs-actual per operator, populated when
  // ExecOptions::collect_profile is set (appended per executed block).
  const ExecProfile& profile() const { return profile_; }
  void ResetProfile() { profile_.Clear(); }

  const ExecOptions& options() const { return options_; }

 private:
  friend class BlockExecutor;
  store::Database* db_;
  std::map<std::string, Value> params_;
  ExecOptions options_;
  ExecStats stats_;
  ExecProfile profile_;
};

}  // namespace legodb::engine

#endif  // LEGODB_ENGINE_EXECUTOR_H_
