#ifndef LEGODB_ENGINE_EXECUTOR_H_
#define LEGODB_ENGINE_EXECUTOR_H_

#include <map>
#include <string>

#include "common/status.h"
#include "optimizer/plan.h"
#include "storage/database.h"
#include "xquery/result.h"

namespace legodb::engine {

// Work actually performed by an execution — the measured counterpart of the
// optimizer's estimates, used to validate the cost model (the paper
// validated against SQL Server; we validate against this engine).
struct ExecStats {
  double tuples_processed = 0;
  double bytes_read = 0;
  double seeks = 0;
  double rows_out = 0;
  double bytes_out = 0;

  // Work combined with the same weights as the optimizer's cost formula.
  double WeightedCost(double seek_cost, double read_per_byte,
                      double write_per_byte, double cpu_per_tuple) const {
    return seeks * seek_cost + bytes_read * read_per_byte +
           bytes_out * write_per_byte + tuples_processed * cpu_per_tuple;
  }

  void Add(const ExecStats& other);
};

// Interprets physical plans over an in-memory Database. Materializing,
// tuple-at-a-time; intended for correctness validation and cost-model
// calibration, not raw speed.
class Executor {
 public:
  // `params` binds symbolic query constants (c1, c2, ...). The database is
  // non-const because hash indexes build lazily.
  Executor(store::Database* db, std::map<std::string, Value> params = {})
      : db_(db), params_(std::move(params)) {}

  // Executes one planned block; returns rows labelled per block.output.
  StatusOr<xq::ResultSet> ExecuteBlock(const opt::QueryBlock& block,
                                       const opt::PhysicalPlanPtr& plan);

  // Executes a whole translated query (UNION ALL of its blocks).
  StatusOr<xq::ResultSet> ExecuteQuery(
      const opt::RelQuery& query,
      const std::vector<opt::PhysicalPlanPtr>& block_plans);

  const ExecStats& stats() const { return stats_; }
  void ResetStats() { stats_ = ExecStats(); }

 private:
  friend class BlockExecutor;
  store::Database* db_;
  std::map<std::string, Value> params_;
  ExecStats stats_;
};

}  // namespace legodb::engine

#endif  // LEGODB_ENGINE_EXECUTOR_H_
