#ifndef LEGODB_ENGINE_REFERENCE_EXECUTOR_H_
#define LEGODB_ENGINE_REFERENCE_EXECUTOR_H_

#include <map>
#include <string>

#include "engine/executor.h"

namespace legodb::engine {

// The original materializing, operator-at-a-time interpreter: every
// operator produces its full intermediate result before its parent starts,
// and columns are resolved per row. Kept as the semantics baseline — the
// pipelined Executor must return bit-identical ResultSets (see
// tests/engine_equivalence_test.cc) — and as the "before" side of the
// bench/micro_engine speedup measurement. Not intended for production use.
class ReferenceExecutor {
 public:
  // `params` binds symbolic query constants (c1, c2, ...).
  explicit ReferenceExecutor(store::Database* db,
                             std::map<std::string, Value> params = {})
      : db_(db), params_(std::move(params)) {}

  // Executes one planned block; returns rows labelled per block.output.
  StatusOr<xq::ResultSet> ExecuteBlock(const opt::QueryBlock& block,
                                       const opt::PhysicalPlanPtr& plan);

  // Executes a whole translated query (UNION ALL of its blocks).
  StatusOr<xq::ResultSet> ExecuteQuery(
      const opt::RelQuery& query,
      const std::vector<opt::PhysicalPlanPtr>& block_plans);

  const ExecStats& stats() const { return stats_; }
  void ResetStats() { stats_ = ExecStats(); }

 private:
  friend class ReferenceBlockExecutor;
  store::Database* db_;
  std::map<std::string, Value> params_;
  ExecStats stats_;
};

}  // namespace legodb::engine

#endif  // LEGODB_ENGINE_REFERENCE_EXECUTOR_H_
