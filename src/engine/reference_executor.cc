#include "engine/reference_executor.h"

#include <unordered_map>
#include <vector>

#include "obs/obs.h"
#include "xquery/evaluator.h"

namespace legodb::engine {

using store::Row;
using store::StoredTable;

namespace {

// One intermediate tuple: a row pointer per base relation (nullptr when the
// relation is not yet joined or missed an outer join).
using Binding = std::vector<const Row*>;

}  // namespace

class ReferenceBlockExecutor {
 public:
  ReferenceBlockExecutor(ReferenceExecutor* e, const opt::QueryBlock& block)
      : e_(e), block_(block) {}

  StatusOr<xq::ResultSet> Run(const opt::PhysicalPlanPtr& plan) {
    if (!plan || plan->kind != opt::PhysicalPlan::Kind::kProject) {
      return Status::InvalidArgument("plan root must be a projection");
    }
    for (const auto& rel : block_.rels) {
      StoredTable* table = e_->db_->FindTable(rel.table);
      if (!table) return Status::NotFound("table '" + rel.table + "'");
      if (table->paged()) {
        // The reference executor is deliberately row-at-a-time over heap
        // rows; disk equivalence tests compare the paged engine against a
        // memory database loaded from the same document instead.
        return Status::Unsupported(
            "reference executor requires the memory backend (table '" +
            rel.table + "' is paged)");
      }
      tables_.push_back(table);
    }
    LEGODB_ASSIGN_OR_RETURN(std::vector<Binding> bindings, Exec(plan->child));
    xq::ResultSet result;
    for (const auto& out : block_.output) {
      result.labels.push_back(out.label.empty()
                                  ? (out.rel >= 0 ? out.column : "NULL")
                                  : out.label);
    }
    for (const Binding& binding : bindings) {
      std::vector<Value> row;
      row.reserve(block_.output.size());
      for (const auto& out : block_.output) {
        if (out.rel < 0 || binding[out.rel] == nullptr) {
          row.push_back(Value::MakeNull());
          continue;
        }
        int idx = tables_[out.rel]->meta().ColumnIndex(out.column);
        row.push_back(idx >= 0 ? (*binding[out.rel])[idx]
                               : Value::MakeNull());
      }
      for (const Value& v : row) e_->stats_.bytes_out += v.ByteSize();
      e_->stats_.rows_out += 1;
      result.rows.push_back(std::move(row));
    }
    return result;
  }

 private:
  Status UnknownColumn(const char* what, int rel,
                       const std::string& column) const {
    return Status::Internal(std::string(what) +
                            " references unknown column '" +
                            tables_[rel]->meta().name + "." + column +
                            "' (translator/catalog drift)");
  }

  StatusOr<Value> ResolveConstant(const xq::Constant& c) const {
    switch (c.kind) {
      case xq::Constant::Kind::kInt:
        return Value::Int(c.int_value);
      case xq::Constant::Kind::kString:
        return xq::CanonicalValue(c.string_value);
      case xq::Constant::Kind::kSymbol: {
        auto it = e_->params_.find(c.symbol);
        if (it == e_->params_.end()) {
          return Status::InvalidArgument("unbound query parameter '" +
                                         c.symbol + "'");
        }
        return it->second;
      }
    }
    return Status::Internal("bad constant");
  }

  StatusOr<bool> PassFilters(int rel, const Row& row,
                             const std::vector<opt::FilterPred>& filters)
      const {
    for (const auto& f : filters) {
      if (f.rel != rel) continue;
      int idx = tables_[rel]->meta().ColumnIndex(f.column);
      if (idx < 0) return UnknownColumn("filter", rel, f.column);
      if (row[idx].is_null()) return false;
      if (f.not_null) continue;
      LEGODB_ASSIGN_OR_RETURN(Value want, ResolveConstant(f.value));
      if (!xq::ApplyCompare(f.op, row[idx], want)) return false;
    }
    return true;
  }

  // Extra join predicates beyond the driving hash/index edge.
  StatusOr<bool> ResidualsPass(const opt::PhysicalPlan& p,
                               const Binding& merged) const {
    for (const auto& e : p.residual_joins) {
      const Row* l = merged[e.left_rel];
      const Row* r = merged[e.right_rel];
      if (!l || !r) return false;
      int li = tables_[e.left_rel]->meta().ColumnIndex(e.left_column);
      if (li < 0) return UnknownColumn("residual join", e.left_rel,
                                       e.left_column);
      int ri = tables_[e.right_rel]->meta().ColumnIndex(e.right_column);
      if (ri < 0) return UnknownColumn("residual join", e.right_rel,
                                       e.right_column);
      const Value& lv = (*l)[li];
      const Value& rv = (*r)[ri];
      if (lv.is_null() || rv.is_null() || !(lv == rv)) return false;
    }
    return true;
  }

  Binding NewBinding(int rel, const Row* row) const {
    Binding b(block_.rels.size(), nullptr);
    b[rel] = row;
    return b;
  }

  double RowWidth(int rel) const { return tables_[rel]->meta().RowWidth(); }

  StatusOr<std::vector<Binding>> Exec(const opt::PhysicalPlanPtr& p) {
    if (!p) return Status::Internal("null plan node");
    switch (p->kind) {
      case opt::PhysicalPlan::Kind::kSeqScan: {
        const StoredTable& t = *tables_[p->rel];
        e_->stats_.seeks += 1;
        e_->stats_.tuples_processed += static_cast<double>(t.row_count());
        e_->stats_.bytes_read +=
            static_cast<double>(t.row_count()) * RowWidth(p->rel);
        std::vector<Binding> out;
        for (const Row& row : t.rows()) {
          LEGODB_ASSIGN_OR_RETURN(bool pass,
                                  PassFilters(p->rel, row, p->filters));
          if (pass) out.push_back(NewBinding(p->rel, &row));
        }
        return out;
      }
      case opt::PhysicalPlan::Kind::kIndexLookup: {
        StoredTable& t = *tables_[p->rel];
        // Find the driving filter.
        const opt::FilterPred* driver = nullptr;
        for (const auto& f : p->filters) {
          if (f.rel == p->rel && f.column == p->index_column &&
              !f.not_null && f.op == xq::CompareOp::kEq) {
            driver = &f;
            break;
          }
        }
        if (!driver) {
          return Status::Internal("index lookup without driving filter");
        }
        LEGODB_ASSIGN_OR_RETURN(Value key, ResolveConstant(driver->value));
        t.EnsureIndex(p->index_column);
        const std::vector<size_t>* hits = t.Probe(p->index_column, key);
        e_->stats_.seeks += 1;
        std::vector<Binding> out;
        if (!hits) return out;
        e_->stats_.seeks += static_cast<double>(hits->size());
        e_->stats_.tuples_processed += static_cast<double>(hits->size());
        e_->stats_.bytes_read +=
            static_cast<double>(hits->size()) * RowWidth(p->rel);
        for (size_t idx : *hits) {
          const Row& row = t.rows()[idx];
          LEGODB_ASSIGN_OR_RETURN(bool pass,
                                  PassFilters(p->rel, row, p->filters));
          if (pass) out.push_back(NewBinding(p->rel, &row));
        }
        return out;
      }
      case opt::PhysicalPlan::Kind::kHashJoin: {
        LEGODB_ASSIGN_OR_RETURN(std::vector<Binding> probe, Exec(p->left));
        LEGODB_ASSIGN_OR_RETURN(std::vector<Binding> build, Exec(p->right));
        e_->stats_.tuples_processed +=
            static_cast<double>(probe.size() + build.size());
        int build_rel = p->right_join_rel;
        int build_col =
            tables_[build_rel]->meta().ColumnIndex(p->right_join_column);
        if (build_col < 0) {
          return UnknownColumn("hash join", build_rel, p->right_join_column);
        }
        int probe_rel = p->left_join_rel;
        int probe_col =
            tables_[probe_rel]->meta().ColumnIndex(p->left_join_column);
        if (probe_col < 0) {
          return UnknownColumn("hash join", probe_rel, p->left_join_column);
        }
        std::unordered_map<Value, std::vector<const Binding*>, ValueHash>
            table;
        for (const Binding& b : build) {
          const Row* row = b[build_rel];
          if (!row || (*row)[build_col].is_null()) continue;
          table[(*row)[build_col]].push_back(&b);
        }
        std::vector<Binding> out;
        for (const Binding& l : probe) {
          const Row* row = l[probe_rel];
          bool matched = false;
          if (row && !(*row)[probe_col].is_null()) {
            auto it = table.find((*row)[probe_col]);
            if (it != table.end()) {
              for (const Binding* r : it->second) {
                Binding merged = l;
                for (size_t i = 0; i < merged.size(); ++i) {
                  if ((*r)[i]) merged[i] = (*r)[i];
                }
                LEGODB_ASSIGN_OR_RETURN(bool pass, ResidualsPass(*p, merged));
                if (!pass) continue;
                out.push_back(std::move(merged));
                matched = true;
              }
            }
          }
          if (!matched && p->left_outer) out.push_back(l);
        }
        return out;
      }
      case opt::PhysicalPlan::Kind::kIndexNLJoin: {
        LEGODB_ASSIGN_OR_RETURN(std::vector<Binding> outer, Exec(p->left));
        StoredTable& inner = *tables_[p->rel];
        inner.EnsureIndex(p->index_column);
        int outer_rel = p->left_join_rel;
        int outer_col =
            tables_[outer_rel]->meta().ColumnIndex(p->left_join_column);
        if (outer_col < 0) {
          return UnknownColumn("index join", outer_rel, p->left_join_column);
        }
        std::vector<Binding> out;
        for (const Binding& l : outer) {
          const Row* row = l[outer_rel];
          bool matched = false;
          e_->stats_.seeks += 1;
          if (row && !(*row)[outer_col].is_null()) {
            const std::vector<size_t>* hits =
                inner.Probe(p->index_column, (*row)[outer_col]);
            if (hits) {
              e_->stats_.seeks += static_cast<double>(hits->size());
              e_->stats_.tuples_processed +=
                  static_cast<double>(hits->size());
              e_->stats_.bytes_read +=
                  static_cast<double>(hits->size()) * RowWidth(p->rel);
              for (size_t idx : *hits) {
                const Row& irow = inner.rows()[idx];
                LEGODB_ASSIGN_OR_RETURN(
                    bool pass, PassFilters(p->rel, irow, p->filters));
                if (!pass) continue;
                Binding merged = l;
                merged[p->rel] = &irow;
                LEGODB_ASSIGN_OR_RETURN(bool rpass, ResidualsPass(*p, merged));
                if (!rpass) continue;
                out.push_back(std::move(merged));
                matched = true;
              }
            }
          }
          if (!matched && p->left_outer) out.push_back(l);
        }
        return out;
      }
      case opt::PhysicalPlan::Kind::kProject:
        return Status::Internal("nested projection");
    }
    return Status::Internal("unknown plan node");
  }

  ReferenceExecutor* e_;
  const opt::QueryBlock& block_;
  std::vector<StoredTable*> tables_;
};

StatusOr<xq::ResultSet> ReferenceExecutor::ExecuteBlock(
    const opt::QueryBlock& block, const opt::PhysicalPlanPtr& plan) {
  return ReferenceBlockExecutor(this, block).Run(plan);
}

StatusOr<xq::ResultSet> ReferenceExecutor::ExecuteQuery(
    const opt::RelQuery& query,
    const std::vector<opt::PhysicalPlanPtr>& block_plans) {
  if (block_plans.size() != query.blocks.size()) {
    return Status::InvalidArgument("plan count mismatch");
  }
  xq::ResultSet result;
  result.labels = query.labels;
  for (size_t i = 0; i < query.blocks.size(); ++i) {
    LEGODB_ASSIGN_OR_RETURN(xq::ResultSet part,
                            ExecuteBlock(query.blocks[i], block_plans[i]));
    if (result.labels.empty()) result.labels = part.labels;
    for (auto& row : part.rows) result.rows.push_back(std::move(row));
  }
  return result;
}

}  // namespace legodb::engine
