#ifndef LEGODB_ENGINE_PREPARED_H_
#define LEGODB_ENGINE_PREPARED_H_

// Prepared execution state for a cached physical plan.
//
// The executor normally compiles filter/residual bytecode and resolves
// column shadows and hash indexes inside every operator Open(). For a plan
// that will be executed many times (the serving layer's plan cache),
// PreparedPrograms front-loads all of that once per plan: every scan/join
// node gets a compiled *template* program (symbolic constants left as named
// parameter slots, see ExprProgram::BindParams) plus its resolved
// ColumnVector/HashIndex pointers. Executions then copy the template, bind
// that request's parameters, and run — no predicate compilation, no
// catalog lookups, and no storage-registry mutex traffic on the hot path.
//
// A PreparedPrograms is immutable after Compile() and safe to share across
// any number of concurrent executors (lookups are const; executors copy the
// programs they use). It is keyed by plan-node identity, so it is only
// meaningful for the exact plan trees it was compiled from — callers keep
// the PhysicalPlanPtrs alive alongside it (the plan cache stores both in
// one entry). The executor additionally ignores a prepared set whose
// Database differs from its own.

#include <map>
#include <vector>

#include "common/status.h"
#include "engine/expr_vm.h"
#include "optimizer/plan.h"
#include "storage/database.h"

namespace legodb::engine {

class PreparedPrograms {
 public:
  // Everything one operator Open() would otherwise compile or resolve.
  // Unused members stay empty/null for node kinds that don't need them.
  struct NodePrograms {
    ExprProgram filter;     // parameterized filter template (scan kinds)
    ExprProgram residuals;  // residual join edges (join kinds; no params)
    const store::ColumnVector* left_key = nullptr;   // probe/outer join key
    const store::ColumnVector* right_key = nullptr;  // hash-join build key
    const store::HashIndex* index = nullptr;  // lookup/NL-join/shared index
  };

  // Compiles templates for every operator of every block plan. Resolving
  // columns and indexes here doubles as a prewarm: the first concurrent
  // executions never race to lazily build shadows for these plans.
  static StatusOr<PreparedPrograms> Compile(
      store::Database* db, const opt::RelQuery& query,
      const std::vector<opt::PhysicalPlanPtr>& block_plans);

  // The prepared state for `node`, or nullptr if the node is unknown (the
  // executor then falls back to its normal Open-time compilation).
  const NodePrograms* Find(const opt::PhysicalPlan* node) const {
    auto it = by_node_.find(node);
    return it == by_node_.end() ? nullptr : &it->second;
  }

  // OK while every table this plan touches still has the mutation count it
  // had at Compile() time; Internal (naming the table) once any of them has
  // been mutated since. The resolved ColumnVector/HashIndex pointers above
  // dangle after a mutation clears the table registries, so the executor
  // calls this before trusting them.
  Status CheckFresh() const;

  store::Database* database() const { return db_; }
  size_t num_nodes() const { return by_node_.size(); }

 private:
  Status WalkPlan(const ExprEnv& env, const opt::PhysicalPlanPtr& p);

  store::Database* db_ = nullptr;
  std::map<const opt::PhysicalPlan*, NodePrograms> by_node_;
  // (table, mutation count at compile time), deduplicated per table.
  std::vector<std::pair<const store::StoredTable*, uint64_t>> table_versions_;
};

}  // namespace legodb::engine

#endif  // LEGODB_ENGINE_PREPARED_H_
