#include "engine/explain_analyze.h"

#include <cmath>
#include <sstream>

#include "common/table_printer.h"

namespace legodb::engine {

namespace {

const char* KindName(opt::PhysicalPlan::Kind kind) {
  switch (kind) {
    case opt::PhysicalPlan::Kind::kSeqScan:
      return "SeqScan";
    case opt::PhysicalPlan::Kind::kIndexLookup:
      return "IndexLookup";
    case opt::PhysicalPlan::Kind::kHashJoin:
      return "HashJoin";
    case opt::PhysicalPlan::Kind::kIndexNLJoin:
      return "IndexNLJoin";
    case opt::PhysicalPlan::Kind::kProject:
      return "Project";
  }
  return "Unknown";
}

std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "null";
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    if (c == '"' || c == '\\') out->push_back('\\');
    out->push_back(c);
  }
  out->push_back('"');
}

}  // namespace

double SelfMillis(const ExecProfile& profile, size_t index) {
  const OpActual& op = profile.ops[index];
  double self = op.ms;
  for (size_t j = index + 1; j < profile.ops.size(); ++j) {
    if (profile.ops[j].depth <= op.depth) break;
    if (profile.ops[j].depth == op.depth + 1) self -= profile.ops[j].ms;
  }
  return self < 0 ? 0 : self;
}

std::string ExplainAnalyzeTable(const ExecProfile& profile) {
  TablePrinter table({"operator", "est_rows", "rows", "q-err", "batches",
                      "vec", "sel", "seeks", "bytes", "self_ms", "total_ms"});
  for (size_t i = 0; i < profile.ops.size(); ++i) {
    const OpActual& op = profile.ops[i];
    std::string label(2 * static_cast<size_t>(op.depth), ' ');
    label += op.label;
    table.AddRow({label, FormatDouble(op.est_rows, 0),
                  std::to_string(op.actual_rows), FormatDouble(op.QError(), 2),
                  std::to_string(op.batches), std::to_string(op.vectors),
                  FormatDouble(op.Selectivity(), 3), FormatDouble(op.seeks, 0),
                  FormatDouble(op.bytes, 0),
                  FormatDouble(SelfMillis(profile, i), 3),
                  FormatDouble(op.ms, 3)});
  }
  return table.ToString();
}

std::string ExplainAnalyzeJson(const ExecProfile& profile) {
  std::string out = "[";
  for (size_t i = 0; i < profile.ops.size(); ++i) {
    const OpActual& op = profile.ops[i];
    out += i == 0 ? "\n" : ",\n";
    out += "  {\"op\": ";
    AppendJsonString(&out, KindName(op.kind));
    out += ", \"label\": ";
    AppendJsonString(&out, op.label);
    out += ", \"depth\": " + std::to_string(op.depth) +
           ", \"est_rows\": " + JsonNumber(op.est_rows) +
           ", \"est_cost\": " + JsonNumber(op.est_cost) +
           ", \"rows\": " + std::to_string(op.actual_rows) +
           ", \"q_error\": " + JsonNumber(op.QError()) +
           ", \"batches\": " + std::to_string(op.batches) +
           ", \"rows_in\": " + std::to_string(op.rows_in) +
           ", \"vectors\": " + std::to_string(op.vectors) +
           ", \"selectivity\": " + JsonNumber(op.Selectivity()) +
           ", \"seeks\": " + JsonNumber(op.seeks) +
           ", \"bytes\": " + JsonNumber(op.bytes) +
           ", \"ms\": " + JsonNumber(op.ms) +
           ", \"self_ms\": " + JsonNumber(SelfMillis(profile, i)) + "}";
  }
  out += profile.ops.empty() ? "]" : "\n]";
  return out;
}

}  // namespace legodb::engine
