#include "engine/prepared.h"

namespace legodb::engine {

Status PreparedPrograms::WalkPlan(const ExprEnv& env,
                                  const opt::PhysicalPlanPtr& p) {
  if (!p) return Status::Internal("null plan node");
  NodePrograms np;
  switch (p->kind) {
    case opt::PhysicalPlan::Kind::kProject:
      return WalkPlan(env, p->child);
    case opt::PhysicalPlan::Kind::kSeqScan: {
      LEGODB_ASSIGN_OR_RETURN(
          np.filter, CompileFilterTemplate(env, p->rel, p->filters));
      break;
    }
    case opt::PhysicalPlan::Kind::kIndexLookup: {
      LEGODB_ASSIGN_OR_RETURN(
          np.filter, CompileFilterTemplate(env, p->rel, p->filters));
      LEGODB_ASSIGN_OR_RETURN(
          np.index, env.tables[p->rel]->GetOrBuildIndex(p->index_column));
      break;
    }
    case opt::PhysicalPlan::Kind::kHashJoin: {
      LEGODB_ASSIGN_OR_RETURN(
          np.left_key, ResolveColumnVector(env, p->left_join_rel,
                                           p->left_join_column, "hash join"));
      LEGODB_ASSIGN_OR_RETURN(
          np.right_key, ResolveColumnVector(env, p->right_join_rel,
                                            p->right_join_column, "hash join"));
      LEGODB_ASSIGN_OR_RETURN(np.residuals,
                              CompileResiduals(env, p->residual_joins));
      // Mirror the executor's shared-index build-side bypass so the index
      // exists before the first execution needs it.
      const opt::PhysicalPlan* b = p->right.get();
      if (b && b->kind == opt::PhysicalPlan::Kind::kSeqScan &&
          b->rel == p->right_join_rel && b->filters.empty()) {
        LEGODB_ASSIGN_OR_RETURN(
            np.index, env.tables[p->right_join_rel]->GetOrBuildIndex(
                          p->right_join_column));
      }
      by_node_.emplace(p.get(), std::move(np));
      LEGODB_RETURN_IF_ERROR(WalkPlan(env, p->left));
      return WalkPlan(env, p->right);
    }
    case opt::PhysicalPlan::Kind::kIndexNLJoin: {
      LEGODB_ASSIGN_OR_RETURN(
          np.filter, CompileFilterTemplate(env, p->rel, p->filters));
      LEGODB_ASSIGN_OR_RETURN(
          np.left_key, ResolveColumnVector(env, p->left_join_rel,
                                           p->left_join_column, "index join"));
      LEGODB_ASSIGN_OR_RETURN(
          np.index, env.tables[p->rel]->GetOrBuildIndex(p->index_column));
      LEGODB_ASSIGN_OR_RETURN(np.residuals,
                              CompileResiduals(env, p->residual_joins));
      by_node_.emplace(p.get(), std::move(np));
      return WalkPlan(env, p->left);
    }
  }
  by_node_.emplace(p.get(), std::move(np));
  return Status::OK();
}

StatusOr<PreparedPrograms> PreparedPrograms::Compile(
    store::Database* db, const opt::RelQuery& query,
    const std::vector<opt::PhysicalPlanPtr>& block_plans) {
  if (block_plans.size() != query.blocks.size()) {
    return Status::InvalidArgument("plan count mismatch");
  }
  PreparedPrograms prepared;
  prepared.db_ = db;
  for (size_t i = 0; i < query.blocks.size(); ++i) {
    ExprEnv env;
    for (const auto& rel : query.blocks[i].rels) {
      store::StoredTable* table = db->FindTable(rel.table);
      if (!table) return Status::NotFound("table '" + rel.table + "'");
      env.tables.push_back(table);
      bool seen = false;
      for (const auto& [t, version] : prepared.table_versions_) {
        if (t == table) {
          seen = true;
          break;
        }
      }
      if (!seen) {
        prepared.table_versions_.emplace_back(table, table->mutation_count());
      }
    }
    LEGODB_RETURN_IF_ERROR(prepared.WalkPlan(env, block_plans[i]));
  }
  return prepared;
}

Status PreparedPrograms::CheckFresh() const {
  for (const auto& [table, version] : table_versions_) {
    if (table->mutation_count() != version) {
      return Status::Internal("prepared plan is stale: table '" +
                              table->meta().name +
                              "' was mutated after prepare");
    }
  }
  return Status::OK();
}

}  // namespace legodb::engine
