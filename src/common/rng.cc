#include "common/rng.h"

namespace legodb {

uint64_t Rng::Next() {
  state_ ^= state_ >> 12;
  state_ ^= state_ << 25;
  state_ ^= state_ >> 27;
  return state_ * 0x2545f4914f6cdd1dull;
}

uint64_t Rng::Uniform(uint64_t n) { return n == 0 ? 0 : Next() % n; }

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(
                  Uniform(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

std::string Rng::RandomString(size_t len) {
  std::string s(len, 'a');
  for (size_t i = 0; i < len; ++i) {
    s[i] = static_cast<char>('a' + Uniform(26));
  }
  return s;
}

}  // namespace legodb
