#ifndef LEGODB_COMMON_STR_UTIL_H_
#define LEGODB_COMMON_STR_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace legodb {

// Splits `s` on `sep`, keeping empty pieces.
std::vector<std::string> StrSplit(std::string_view s, char sep);

// Joins `pieces` with `sep` between them.
std::string StrJoin(const std::vector<std::string>& pieces,
                    std::string_view sep);

// Removes leading and trailing ASCII whitespace.
std::string_view StrTrim(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

// True if `s` is a (possibly signed) decimal integer literal.
bool IsInteger(std::string_view s);

}  // namespace legodb

#endif  // LEGODB_COMMON_STR_UTIL_H_
