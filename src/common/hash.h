#ifndef LEGODB_COMMON_HASH_H_
#define LEGODB_COMMON_HASH_H_

// Stable 64-bit hashing primitives for fingerprints and cache keys. All
// functions are deterministic across runs and platforms (no std::hash, no
// pointer values), so fingerprints can be compared across processes and
// stored in reports.

#include <cstdint>
#include <cstring>
#include <string_view>

namespace legodb::common {

// FNV-1a 64-bit over raw bytes.
inline uint64_t HashBytes(const void* data, size_t n,
                          uint64_t seed = 0xcbf29ce484222325ull) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

inline uint64_t HashString(std::string_view s,
                           uint64_t seed = 0xcbf29ce484222325ull) {
  // Hash the length first so ("ab","c") and ("a","bc") chains differ.
  uint64_t len = s.size();
  uint64_t h = HashBytes(&len, sizeof(len), seed);
  return HashBytes(s.data(), s.size(), h);
}

// splitmix64 finalizer: decorrelates combined values.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Order-sensitive combination of two 64-bit values.
inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return Mix64(a ^ (Mix64(b) + 0x9e3779b97f4a7c15ull + (a << 6) + (a >> 2)));
}

inline uint64_t HashInt(int64_t v, uint64_t seed) {
  return HashCombine(seed, Mix64(static_cast<uint64_t>(v)));
}

inline uint64_t HashDouble(double v, uint64_t seed) {
  // Normalize -0.0 so equal values hash equally.
  if (v == 0.0) v = 0.0;
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return HashCombine(seed, Mix64(bits));
}

}  // namespace legodb::common

#endif  // LEGODB_COMMON_HASH_H_
