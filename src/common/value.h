#ifndef LEGODB_COMMON_VALUE_H_
#define LEGODB_COMMON_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

namespace legodb {

// A scalar runtime value flowing through the storage and execution engines:
// SQL NULL, a 64-bit integer, or a string. The paper's type system has only
// Integer and String scalars; NULL arises from optional content (Table 1).
class Value {
 public:
  Value() : rep_(Null{}) {}
  static Value MakeNull() { return Value(); }
  static Value Int(int64_t v) { return Value(Rep(v)); }
  static Value Str(std::string v) { return Value(Rep(std::move(v))); }

  bool is_null() const { return std::holds_alternative<Null>(rep_); }
  bool is_int() const { return std::holds_alternative<int64_t>(rep_); }
  bool is_string() const { return std::holds_alternative<std::string>(rep_); }

  int64_t as_int() const { return std::get<int64_t>(rep_); }
  const std::string& as_string() const { return std::get<std::string>(rep_); }

  // Approximate storage footprint in bytes; used by execution-work counters.
  size_t ByteSize() const;

  // Renders the value for display; NULL renders as "NULL".
  std::string ToString() const;

  bool operator==(const Value& other) const { return rep_ == other.rep_; }
  bool operator!=(const Value& other) const { return !(*this == other); }
  // Total order used for deterministic result comparison in tests:
  // NULL < ints < strings.
  bool operator<(const Value& other) const;

  // Three-way comparison in the same total order (-1, 0, +1). Values of
  // different kinds are ordered by kind; predicate evaluation additionally
  // checks kind equality (see Comparable).
  int Compare(const Value& other) const;
  // True when both values are non-null and of the same kind, i.e. an
  // ordered comparison between them is meaningful.
  bool Comparable(const Value& other) const;

 private:
  struct Null {
    bool operator==(const Null&) const { return true; }
  };
  using Rep = std::variant<Null, int64_t, std::string>;

  explicit Value(Rep rep) : rep_(std::move(rep)) {}

  Rep rep_;
};

// Hash support so Values can key hash indexes.
struct ValueHash {
  size_t operator()(const Value& v) const;
};

}  // namespace legodb

#endif  // LEGODB_COMMON_VALUE_H_
