#include "common/table_printer.h"

#include <cstdio>
#include <sstream>

namespace legodb {

std::string FormatDouble(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

void TablePrinter::AddRow(const std::string& label,
                          const std::vector<double>& values, int precision) {
  std::vector<std::string> row;
  row.reserve(values.size() + 1);
  row.push_back(label);
  for (double v : values) row.push_back(FormatDouble(v, precision));
  AddRow(std::move(row));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t i = 0; i < header_.size(); ++i) widths[i] = header_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string();
      line += " " + cell + std::string(widths[i] - cell.size(), ' ') + " |";
    }
    return line + "\n";
  };
  std::string out = render_row(header_);
  std::string sep = "|";
  for (size_t w : widths) sep += std::string(w + 2, '-') + "|";
  out += sep + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void TablePrinter::Print() const { std::fputs(ToString().c_str(), stdout); }

}  // namespace legodb
