#include "common/status.h"

namespace legodb {

namespace {
const char* CodeName(Status::Code code) {
  switch (code) {
    case Status::Code::kOk:
      return "OK";
    case Status::Code::kInvalidArgument:
      return "InvalidArgument";
    case Status::Code::kNotFound:
      return "NotFound";
    case Status::Code::kParseError:
      return "ParseError";
    case Status::Code::kUnsupported:
      return "Unsupported";
    case Status::Code::kInternal:
      return "Internal";
    case Status::Code::kUnavailable:
      return "Unavailable";
    case Status::Code::kDeadlineExceeded:
      return "DeadlineExceeded";
    case Status::Code::kCancelled:
      return "Cancelled";
  }
  return "Unknown";
}
}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = CodeName(code_);
  if (!message_.empty()) {
    result += ": ";
    result += message_;
  }
  return result;
}

}  // namespace legodb
