#include "common/str_util.h"

#include <cctype>

namespace legodb {

std::vector<std::string> StrSplit(std::string_view s, char sep) {
  std::vector<std::string> pieces;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      pieces.emplace_back(s.substr(start));
      break;
    }
    pieces.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return pieces;
}

std::string StrJoin(const std::vector<std::string>& pieces,
                    std::string_view sep) {
  std::string result;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) result += sep;
    result += pieces[i];
  }
  return result;
}

std::string_view StrTrim(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool IsInteger(std::string_view s) {
  if (s.empty()) return false;
  size_t i = (s[0] == '-' || s[0] == '+') ? 1 : 0;
  if (i == s.size()) return false;
  for (; i < s.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(s[i]))) return false;
  }
  return true;
}

}  // namespace legodb
