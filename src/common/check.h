#ifndef LEGODB_COMMON_CHECK_H_
#define LEGODB_COMMON_CHECK_H_

// Invariant-checking macros that stay armed in every build mode.
//
// The repo historically used bare `assert`, which `-DNDEBUG` (any Release
// build) compiles out entirely: a duplicate-table insert or unknown-type
// lookup would silently read past the checked state instead of stopping.
// These macros follow the LevelDB/RocksDB convention:
//
//  - LEGODB_CHECK(cond[, "msg"])   — evaluated in ALL builds; prints the
//    failed expression with file:line and aborts. Use for cheap invariants
//    whose violation means memory-unsafe behaviour would follow.
//  - LEGODB_DCHECK(cond[, "msg"])  — debug builds only; compiles to a
//    no-op (that still type-checks `cond`) under NDEBUG. Use for expensive
//    validation passes on hot paths.
//
// Recoverable conditions — anything reachable from unvalidated input —
// should return Status instead of using either macro.

namespace legodb::internal {

// Prints "LEGODB_CHECK failed: <expr> at <file>:<line>: <msg>" and aborts.
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const char* message);

}  // namespace legodb::internal

#define LEGODB_CHECK(cond, ...)                                      \
  do {                                                               \
    if (!(cond)) {                                                   \
      ::legodb::internal::CheckFailed(__FILE__, __LINE__, #cond,     \
                                      "" __VA_ARGS__);               \
    }                                                                \
  } while (0)

#ifdef NDEBUG
#define LEGODB_DCHECK(cond, ...) \
  do {                           \
    if (false) {                 \
      (void)(cond);              \
    }                            \
  } while (0)
#else
#define LEGODB_DCHECK(...) LEGODB_CHECK(__VA_ARGS__)
#endif

#endif  // LEGODB_COMMON_CHECK_H_
