#include "common/check.h"

#include <cstdio>
#include <cstdlib>

namespace legodb::internal {

void CheckFailed(const char* file, int line, const char* expr,
                 const char* message) {
  std::fprintf(stderr, "LEGODB_CHECK failed: %s at %s:%d%s%s\n", expr, file,
               line, (message != nullptr && message[0] != '\0') ? ": " : "",
               message != nullptr ? message : "");
  std::fflush(stderr);
  std::abort();
}

}  // namespace legodb::internal
