#ifndef LEGODB_COMMON_CANCEL_H_
#define LEGODB_COMMON_CANCEL_H_

#include <atomic>

namespace legodb::common {

// Cooperative cancellation flag shared between a producer of work and the
// code executing it. Cancel() is sticky: once set, every later cancelled()
// poll observes it. The flag carries no payload and no synchronization
// beyond the atomic itself — cancellation is a hint the executing side
// polls at its own granularity (per claimed index in core::ParallelFor,
// per exchanged vector in engine::Executor), so "the work finished anyway"
// is always a legal outcome. Cheap enough to poll in per-vector loops: one
// relaxed atomic load.
class CancelToken {
 public:
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

}  // namespace legodb::common

#endif  // LEGODB_COMMON_CANCEL_H_
