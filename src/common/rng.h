#ifndef LEGODB_COMMON_RNG_H_
#define LEGODB_COMMON_RNG_H_

#include <cstdint>
#include <string>

namespace legodb {

// Deterministic pseudo-random number generator (xorshift64*) so synthetic
// data generation and property tests are reproducible across platforms.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x853c49e6748fea9bull)
      : state_(seed ? seed : 1) {}

  uint64_t Next();

  // Uniform in [0, n). Requires n > 0.
  uint64_t Uniform(uint64_t n);

  // Uniform in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Uniform in [0, 1).
  double NextDouble();

  // True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  // Random lowercase ASCII string of exactly `len` characters.
  std::string RandomString(size_t len);

  // Picks one of `n` buckets; used for selecting among distinct values.
  uint64_t Bucket(uint64_t n) { return Uniform(n); }

 private:
  uint64_t state_;
};

}  // namespace legodb

#endif  // LEGODB_COMMON_RNG_H_
