#include "common/failpoint.h"

#include <atomic>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>

#include "common/hash.h"
#include "common/str_util.h"

namespace legodb::fp {
namespace {

struct Site {
  enum class Mode { kAlways, kNthOnly, kFromNth, kProbability };
  Mode mode = Mode::kAlways;
  int64_t n = 1;         // for kNthOnly / kFromNth (1-based)
  double probability = 0;  // for kProbability
  uint64_t seed = 0;       // for kProbability
  std::atomic<int64_t> hits{0};

  bool Fire(int64_t hit_index) const {
    switch (mode) {
      case Mode::kAlways:
        return true;
      case Mode::kNthOnly:
        return hit_index == n;
      case Mode::kFromNth:
        return hit_index >= n;
      case Mode::kProbability: {
        // Pure function of (seed, hit index): replays deterministically.
        uint64_t h = common::HashCombine(common::Mix64(seed),
                                         static_cast<uint64_t>(hit_index));
        double u = static_cast<double>(h >> 11) * 0x1.0p-53;
        return u < probability;
      }
    }
    return false;
  }
};

struct RegistryState {
  std::mutex mu;
  // unique_ptr: Site addresses stay stable while the mutex is released.
  std::map<std::string, std::unique_ptr<Site>> sites;
};

RegistryState& State() {
  static RegistryState* state = new RegistryState();
  return *state;
}

// Armed-site count, mirrored outside the mutex for the fast path.
std::atomic<int> g_active{0};

Status ParseTerm(const std::string& term) {
  std::string name = term;
  std::unique_ptr<Site> site(new Site());
  size_t eq = term.find('=');
  if (eq != std::string::npos) {
    name = term.substr(0, eq);
    std::string arg = term.substr(eq + 1);
    if (arg.empty()) {
      return Status::InvalidArgument("failpoint term '" + term +
                                     "': empty argument");
    }
    if (arg[0] == 'p') {
      size_t at = arg.find('@');
      char* end = nullptr;
      std::string prob = at == std::string::npos ? arg.substr(1)
                                                 : arg.substr(1, at - 1);
      site->mode = Site::Mode::kProbability;
      site->probability = std::strtod(prob.c_str(), &end);
      if (end == prob.c_str() || *end != '\0' || site->probability < 0 ||
          site->probability > 1) {
        return Status::InvalidArgument("failpoint term '" + term +
                                       "': bad probability");
      }
      if (at != std::string::npos) {
        site->seed = std::strtoull(arg.c_str() + at + 1, &end, 10);
        if (*end != '\0') {
          return Status::InvalidArgument("failpoint term '" + term +
                                         "': bad seed");
        }
      }
    } else {
      bool from_nth = !arg.empty() && arg.back() == '+';
      if (from_nth) arg.pop_back();
      char* end = nullptr;
      site->n = std::strtoll(arg.c_str(), &end, 10);
      if (end == arg.c_str() || *end != '\0' || site->n < 1) {
        return Status::InvalidArgument("failpoint term '" + term +
                                       "': bad hit count");
      }
      site->mode = from_nth ? Site::Mode::kFromNth : Site::Mode::kNthOnly;
    }
  }
  if (name.empty()) {
    return Status::InvalidArgument("failpoint term '" + term +
                                   "': empty site name");
  }
  RegistryState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  auto [it, inserted] = state.sites.emplace(name, nullptr);
  if (inserted) g_active.fetch_add(1, std::memory_order_relaxed);
  it->second = std::move(site);
  return Status::OK();
}

}  // namespace

Status Enable(const std::string& spec) {
  for (const std::string& raw : StrSplit(spec, ';')) {
    for (const std::string& term : StrSplit(raw, ',')) {
      std::string trimmed(StrTrim(term));
      if (trimmed.empty()) continue;
      LEGODB_RETURN_IF_ERROR(ParseTerm(trimmed));
    }
  }
  return Status::OK();
}

void Disable(const std::string& site) {
  RegistryState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  if (state.sites.erase(site) > 0) {
    g_active.fetch_sub(1, std::memory_order_relaxed);
  }
}

void DisableAll() {
  RegistryState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  g_active.fetch_sub(static_cast<int>(state.sites.size()),
                     std::memory_order_relaxed);
  state.sites.clear();
}

bool AnyActive() { return g_active.load(std::memory_order_relaxed) > 0; }

bool Triggered(const char* site) {
  if (!AnyActive()) return false;
  RegistryState& state = State();
  Site* s = nullptr;
  {
    std::lock_guard<std::mutex> lock(state.mu);
    auto it = state.sites.find(site);
    if (it == state.sites.end()) return false;
    s = it->second.get();
  }
  // Sites are only removed under the mutex, but the Site object (owned by
  // unique_ptr) must not be used after Disable; callers disarm sites only
  // when the code under test is quiescent, matching RocksDB's contract.
  int64_t hit = s->hits.fetch_add(1, std::memory_order_relaxed) + 1;
  return s->Fire(hit);
}

int64_t HitCount(const std::string& site) {
  RegistryState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  auto it = state.sites.find(site);
  return it == state.sites.end()
             ? 0
             : it->second->hits.load(std::memory_order_relaxed);
}

std::vector<std::string> ActiveSites() {
  RegistryState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  std::vector<std::string> names;
  names.reserve(state.sites.size());
  for (const auto& [name, site] : state.sites) names.push_back(name);
  return names;
}

void EnableFromEnvOnce() {
  static const Status status = [] {
    const char* spec = std::getenv("LEGODB_FAILPOINTS");
    return spec != nullptr ? Enable(spec) : Status::OK();
  }();
  (void)status;  // a malformed env spec arms nothing (prefix may apply)
}

Status Check(const char* site) {
  if (Triggered(site)) {
    return Status::Internal(std::string("failpoint ") + site + " fired");
  }
  return Status::OK();
}

ScopedFailpoints::ScopedFailpoints(const std::string& spec) {
  // Track which sites this scope arms so destruction disarms exactly them
  // (pre-existing sites with the same name are replaced, then removed —
  // scopes are not expected to nest over the same site).
  status_ = Enable(spec);
  if (status_.ok()) {
    for (const std::string& raw : StrSplit(spec, ';')) {
      for (const std::string& term : StrSplit(raw, ',')) {
        std::string trimmed(StrTrim(term));
        if (trimmed.empty()) continue;
        size_t eq = trimmed.find('=');
        sites_.push_back(eq == std::string::npos ? trimmed
                                                 : trimmed.substr(0, eq));
      }
    }
  }
}

ScopedFailpoints::~ScopedFailpoints() {
  for (const std::string& site : sites_) Disable(site);
}

}  // namespace legodb::fp
