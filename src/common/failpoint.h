#ifndef LEGODB_COMMON_FAILPOINT_H_
#define LEGODB_COMMON_FAILPOINT_H_

// Deterministic fault-injection framework in the RocksDB
// SyncPoint/fail_point style. Production code declares named injection
// sites; tests (or the `--failpoints` CLI flag / LEGODB_FAILPOINTS env
// var) arm a subset of them, forcing rare error paths without mocks.
//
// A spec is a ';'- or ','-separated list of terms:
//
//   site          fire on every hit
//   site=N        fire on the Nth hit only (1-based)
//   site=N+       fire on the Nth hit and every later one
//   site=pP@S     fire with probability P in [0,1], seeded by integer S;
//                 the decision is a pure function of (S, hit index), so a
//                 given hit sequence replays bit-for-bit
//
// Hit indices are assigned by one atomic counter per site, so count-based
// terms are deterministic for a fixed total hit order (serial execution);
// under a thread pool the *total* number of fired hits is deterministic
// but which worker observes the firing hit is not. Sites carry no cost
// while the registry is empty: LEGODB_FAILPOINT compiles to one relaxed
// atomic load.
//
// The site catalog lives in DESIGN.md §10 (Robustness).

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace legodb::fp {

// Arms every term of `spec`. Terms accumulate across calls; re-arming a
// site replaces its term and resets its hit counter.
Status Enable(const std::string& spec);

// Disarms one site / every site.
void Disable(const std::string& site);
void DisableAll();

// True when at least one site is armed (single relaxed atomic load).
bool AnyActive();

// Records a hit at `site` and returns true when it fires. No-op (false)
// when the site is not armed.
bool Triggered(const char* site);

// Hits observed at `site` since it was armed; 0 when not armed.
int64_t HitCount(const std::string& site);

// Names of the currently armed sites, sorted.
std::vector<std::string> ActiveSites();

// Arms the LEGODB_FAILPOINTS environment variable's spec, once per
// process. Safe to call from multiple entry points.
void EnableFromEnvOnce();

// Status-shaped hit: Internal("failpoint <site> fired") when it fires.
Status Check(const char* site);

// RAII activation for one scope (e.g. one search run): arms `spec` on
// construction and disarms exactly those sites on destruction.
class ScopedFailpoints {
 public:
  explicit ScopedFailpoints(const std::string& spec);
  ~ScopedFailpoints();
  ScopedFailpoints(const ScopedFailpoints&) = delete;
  ScopedFailpoints& operator=(const ScopedFailpoints&) = delete;

  // Parse/validation result of the spec ("" arms nothing and is OK).
  const Status& status() const { return status_; }

 private:
  Status status_;
  std::vector<std::string> sites_;
};

}  // namespace legodb::fp

// Error-injection point for Status-returning (or StatusOr-returning)
// functions: returns Internal from the enclosing function when the site
// fires. Free when no failpoint is armed.
#define LEGODB_FAILPOINT(site)                              \
  do {                                                      \
    if (::legodb::fp::AnyActive()) {                        \
      ::legodb::Status _fp_st = ::legodb::fp::Check(site);  \
      if (!_fp_st.ok()) return _fp_st;                      \
    }                                                       \
  } while (0)

#endif  // LEGODB_COMMON_FAILPOINT_H_
