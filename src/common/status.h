#ifndef LEGODB_COMMON_STATUS_H_
#define LEGODB_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "common/check.h"

namespace legodb {

// Result of an operation that can fail. Error handling follows the
// RocksDB/LevelDB idiom: no exceptions cross module boundaries; fallible
// functions return Status (or StatusOr<T> below).
class Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kParseError,
    kUnsupported,
    kInternal,
    kUnavailable,        // transient overload: retry later (admission control)
    kDeadlineExceeded,   // a per-request/per-run time budget ran out
    kCancelled,          // the caller cancelled the request cooperatively
  };

  Status() : code_(Code::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(Code::kParseError, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(Code::kUnsupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(Code::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(Code::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(Code::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(Code::kCancelled, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  // Human-readable rendering, e.g. "ParseError: unexpected token".
  std::string ToString() const;

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  Code code_;
  std::string message_;
};

// Holds either a value of type T or an error Status. Accessing the value of
// an error result aborts in every build mode (programming error): the
// checks below are LEGODB_CHECK, not assert, so an unexamined error cannot
// silently dereference an empty optional under NDEBUG.
template <typename T>
class StatusOr {
 public:
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    LEGODB_CHECK(!status_.ok(), "StatusOr constructed from OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    LEGODB_CHECK(ok(), "StatusOr::value called on error");
    return *value_;
  }
  T& value() & {
    LEGODB_CHECK(ok(), "StatusOr::value called on error");
    return *value_;
  }
  T&& value() && {
    LEGODB_CHECK(ok(), "StatusOr::value called on error");
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace legodb

// Propagates a non-OK Status from an expression to the caller.
#define LEGODB_RETURN_IF_ERROR(expr)            \
  do {                                          \
    ::legodb::Status _st = (expr);              \
    if (!_st.ok()) return _st;                  \
  } while (0)

// Evaluates a StatusOr expression, assigning the value to `lhs` or returning
// the error. `lhs` may include a declaration, e.g. `auto x`.
#define LEGODB_ASSIGN_OR_RETURN(lhs, expr)                         \
  LEGODB_ASSIGN_OR_RETURN_IMPL_(                                   \
      LEGODB_STATUS_CONCAT_(_status_or, __LINE__), lhs, expr)
#define LEGODB_ASSIGN_OR_RETURN_IMPL_(var, lhs, expr) \
  auto var = (expr);                                  \
  if (!var.ok()) return var.status();                 \
  lhs = std::move(var).value()
#define LEGODB_STATUS_CONCAT_(a, b) LEGODB_STATUS_CONCAT_IMPL_(a, b)
#define LEGODB_STATUS_CONCAT_IMPL_(a, b) a##b

#endif  // LEGODB_COMMON_STATUS_H_
