#ifndef LEGODB_COMMON_TABLE_PRINTER_H_
#define LEGODB_COMMON_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace legodb {

// Renders aligned ASCII tables for benchmark-harness output, e.g.
//
//   | query | map1 | map2 |
//   |-------|------|------|
//   | Q1    | 1.00 | 0.83 |
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);
  // Formats a row of doubles with the given precision.
  void AddRow(const std::string& label, const std::vector<double>& values,
              int precision = 2);

  std::string ToString() const;
  // Prints to stdout.
  void Print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Formats a double with fixed precision.
std::string FormatDouble(double v, int precision = 2);

}  // namespace legodb

#endif  // LEGODB_COMMON_TABLE_PRINTER_H_
