#include "common/value.h"

#include <functional>

namespace legodb {

size_t Value::ByteSize() const {
  if (is_null()) return 1;
  if (is_int()) return 8;
  return as_string().size();
}

std::string Value::ToString() const {
  if (is_null()) return "NULL";
  if (is_int()) return std::to_string(as_int());
  return as_string();
}

bool Value::operator<(const Value& other) const {
  auto rank = [](const Rep& r) { return r.index(); };
  if (rank(rep_) != rank(other.rep_)) return rank(rep_) < rank(other.rep_);
  if (is_null()) return false;
  if (is_int()) return as_int() < other.as_int();
  return as_string() < other.as_string();
}

int Value::Compare(const Value& other) const {
  if (*this == other) return 0;
  return *this < other ? -1 : 1;
}

bool Value::Comparable(const Value& other) const {
  if (is_null() || other.is_null()) return false;
  return (is_int() && other.is_int()) || (is_string() && other.is_string());
}

size_t ValueHash::operator()(const Value& v) const {
  if (v.is_null()) return 0x9e3779b97f4a7c15ull;
  if (v.is_int()) return std::hash<int64_t>()(v.as_int());
  return std::hash<std::string>()(v.as_string());
}

}  // namespace legodb
