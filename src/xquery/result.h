#ifndef LEGODB_XQUERY_RESULT_H_
#define LEGODB_XQUERY_RESULT_H_

#include <string>
#include <vector>

#include "common/value.h"

namespace legodb::xq {

// A flat tabular query result, shared between the DOM evaluator and the
// relational execution engine so answers can be compared directly.
struct ResultSet {
  std::vector<std::string> labels;
  std::vector<std::vector<Value>> rows;

  // Sorts rows lexicographically (for order-insensitive comparison).
  void SortRows();

  // Order-insensitive multiset equality of rows (labels not compared).
  bool SameRows(const ResultSet& other) const;

  std::string ToString() const;
};

}  // namespace legodb::xq

#endif  // LEGODB_XQUERY_RESULT_H_
