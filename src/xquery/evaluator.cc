#include "xquery/evaluator.h"

#include <cstdlib>
#include <functional>

#include "common/str_util.h"
#include "xml/writer.h"

namespace legodb::xq {
namespace {

// A path match: an element node, or an attribute value.
struct Item {
  const xml::Node* node = nullptr;
  Value attr_value;
  bool is_attr = false;

  Value ToValue() const {
    if (is_attr) return attr_value;
    return CanonicalValue(node->TextContent());
  }
};

using Env = std::map<std::string, const xml::Node*>;

class Evaluator {
 public:
  Evaluator(const xml::Document& doc,
            const std::map<std::string, Value>& params)
      : doc_(doc), params_(params) {}

  StatusOr<ResultSet> Run(const Query& query) {
    ResultSet result;
    result.labels = QueryLabels(query);
    Env env;
    Status st = EvalQuery(query, env, &result.rows);
    if (!st.ok()) return st;
    return result;
  }

 private:
  Status EvalQuery(const Query& q, const Env& outer,
                   std::vector<std::vector<Value>>* out) {
    return EvalFors(q, 0, outer, out);
  }

  Status EvalFors(const Query& q, size_t idx, const Env& env,
                  std::vector<std::vector<Value>>* out) {
    if (idx == q.fors.size()) {
      LEGODB_ASSIGN_OR_RETURN(bool pass, EvalWhere(q, env));
      if (!pass) return Status::OK();
      return EvalReturn(q, env, out);
    }
    const ForBinding& b = q.fors[idx];
    std::vector<Item> items;
    if (b.from_document) {
      if (!doc_.root) return Status::OK();
      // First step names the root element itself.
      std::vector<Item> current;
      if (!b.steps.empty() && doc_.root->name() == b.steps[0]) {
        current.push_back(Item{doc_.root.get(), {}, false});
        for (size_t i = 1; i < b.steps.size(); ++i) {
          current = Step(current, b.steps[i]);
        }
        items = std::move(current);
      }
    } else {
      auto it = env.find(b.source_var);
      if (it == env.end()) {
        return Status::InvalidArgument("unbound variable $" + b.source_var);
      }
      std::vector<Item> current = {Item{it->second, {}, false}};
      for (const auto& step : b.steps) current = Step(current, step);
      items = std::move(current);
    }
    for (const Item& item : items) {
      if (item.is_attr) continue;  // cannot bind a variable to an attribute
      Env next = env;
      next[b.var] = item.node;
      LEGODB_RETURN_IF_ERROR(EvalFors(q, idx + 1, next, out));
    }
    return Status::OK();
  }

  std::vector<Item> Step(const std::vector<Item>& items,
                         const std::string& step) {
    std::vector<Item> next;
    bool want_attr = StartsWith(step, "@");
    std::string name = want_attr ? step.substr(1) : step;
    for (const Item& item : items) {
      if (item.is_attr || item.node == nullptr) continue;
      if (!want_attr) {
        size_t before = next.size();
        for (const auto& child : item.node->children()) {
          if (child->is_element() && child->name() == name) {
            next.push_back(Item{child.get(), {}, false});
          }
        }
        if (next.size() > before) continue;
      }
      // Attribute access (explicit @name or fallback for plain names).
      if (const std::string* v = item.node->FindAttribute(name)) {
        next.push_back(Item{nullptr, CanonicalValue(*v), true});
      }
    }
    return next;
  }

  std::vector<Item> EvalPath(const Env& env, const PathExpr& p) {
    auto it = env.find(p.var);
    if (it == env.end()) return {};
    std::vector<Item> items = {Item{it->second, {}, false}};
    for (const auto& step : p.steps) items = Step(items, step);
    return items;
  }

  StatusOr<Value> ResolveConstant(const Constant& c) {
    switch (c.kind) {
      case Constant::Kind::kInt:
        return Value::Int(c.int_value);
      case Constant::Kind::kString:
        return CanonicalValue(c.string_value);
      case Constant::Kind::kSymbol: {
        auto it = params_.find(c.symbol);
        if (it == params_.end()) {
          return Status::InvalidArgument("unbound query parameter '" +
                                         c.symbol + "'");
        }
        return it->second;
      }
    }
    return Status::Internal("bad constant");
  }

  StatusOr<bool> EvalWhere(const Query& q, const Env& env) {
    for (const Predicate& pred : q.where) {
      std::vector<Item> lhs = EvalPath(env, pred.lhs);
      bool hit = false;
      if (pred.rhs_is_path) {
        std::vector<Item> rhs = EvalPath(env, pred.rhs_path);
        for (const Item& l : lhs) {
          for (const Item& r : rhs) {
            if (ApplyCompare(pred.op, l.ToValue(), r.ToValue())) {
              hit = true;
              break;
            }
          }
          if (hit) break;
        }
      } else {
        LEGODB_ASSIGN_OR_RETURN(Value rhs, ResolveConstant(pred.rhs_const));
        for (const Item& l : lhs) {
          if (ApplyCompare(pred.op, l.ToValue(), rhs)) {
            hit = true;
            break;
          }
        }
      }
      if (!hit) return false;
    }
    return true;
  }

  // Evaluates one return item into a set of partial rows (each a vector of
  // column values for that item's columns).
  Status EvalItem(const ReturnItem& item, const Env& env,
                  std::vector<std::vector<Value>>* out) {
    switch (item.kind) {
      case ReturnItem::Kind::kPath: {
        if (item.path.steps.empty()) {
          // Publish: serialize the whole subtree.
          auto it = env.find(item.path.var);
          if (it == env.end()) {
            return Status::InvalidArgument("unbound variable $" +
                                           item.path.var);
          }
          out->push_back({Value::Str(xml::Serialize(*it->second, false))});
          return Status::OK();
        }
        // Strict projection semantics (as in the paper's translated plans,
        // e.g. Π_{title,description} σ tv_shows): a row is produced only
        // when every returned path has a value.
        std::vector<Item> matches = EvalPath(env, item.path);
        for (const Item& m : matches) out->push_back({m.ToValue()});
        return Status::OK();
      }
      case ReturnItem::Kind::kSubquery: {
        std::vector<std::vector<Value>> rows;
        LEGODB_RETURN_IF_ERROR(EvalQuery(*item.subquery, env, &rows));
        if (rows.empty()) {
          if (item.subquery->where.empty()) {
            // Left-outer: keep the outer row with NULL inner columns.
            out->push_back(std::vector<Value>(
                QueryLabels(*item.subquery).size(), Value::MakeNull()));
          }
          // else: inner join — no partial rows, outer row is dropped.
          return Status::OK();
        }
        *out = std::move(rows);
        return Status::OK();
      }
      case ReturnItem::Kind::kElement:
        return Status::Internal("element items are flattened before eval");
    }
    return Status::Internal("bad return item");
  }

  Status EvalReturn(const Query& q, const Env& env,
                    std::vector<std::vector<Value>>* out) {
    std::vector<const ReturnItem*> items = q.FlatReturnItems();
    // Cartesian product of per-item row groups.
    std::vector<std::vector<Value>> acc = {{}};
    for (const ReturnItem* item : items) {
      std::vector<std::vector<Value>> group;
      LEGODB_RETURN_IF_ERROR(EvalItem(*item, env, &group));
      if (group.empty()) return Status::OK();  // inner-join drop
      std::vector<std::vector<Value>> next;
      next.reserve(acc.size() * group.size());
      for (const auto& left : acc) {
        for (const auto& right : group) {
          std::vector<Value> row = left;
          row.insert(row.end(), right.begin(), right.end());
          next.push_back(std::move(row));
        }
      }
      acc = std::move(next);
    }
    out->insert(out->end(), acc.begin(), acc.end());
    return Status::OK();
  }

  const xml::Document& doc_;
  const std::map<std::string, Value>& params_;
};

void CollectLabels(const std::vector<ReturnItem>& items,
                   std::vector<std::string>* out) {
  for (const auto& item : items) {
    switch (item.kind) {
      case ReturnItem::Kind::kPath:
        out->push_back(item.path.ToString());
        break;
      case ReturnItem::Kind::kSubquery: {
        std::vector<std::string> inner = QueryLabels(*item.subquery);
        out->insert(out->end(), inner.begin(), inner.end());
        break;
      }
      case ReturnItem::Kind::kElement:
        CollectLabels(item.children, out);
        break;
    }
  }
}

}  // namespace

Value CanonicalValue(const std::string& text) {
  std::string_view trimmed = StrTrim(text);
  if (IsInteger(trimmed)) {
    return Value::Int(std::strtoll(std::string(trimmed).c_str(), nullptr, 10));
  }
  return Value::Str(std::string(trimmed));
}

std::vector<std::string> QueryLabels(const Query& query) {
  std::vector<std::string> labels;
  CollectLabels(query.ret, &labels);
  return labels;
}

StatusOr<ResultSet> EvaluateOnDocument(
    const Query& query, const xml::Document& doc,
    const std::map<std::string, Value>& params) {
  return Evaluator(doc, params).Run(query);
}

}  // namespace legodb::xq
