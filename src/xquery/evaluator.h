#ifndef LEGODB_XQUERY_EVALUATOR_H_
#define LEGODB_XQUERY_EVALUATOR_H_

#include <map>
#include <string>

#include "common/status.h"
#include "xml/dom.h"
#include "xquery/ast.h"
#include "xquery/result.h"

namespace legodb::xq {

// Evaluates a query directly over the XML document tree. This is the
// reference ("ground truth") semantics used to validate the relational
// translation: shred + SQL execution must return the same rows.
//
// Result-shaping semantics (matched exactly by the relational translator):
//  - FOR clauses iterate; a binding with no matches contributes no rows.
//  - WHERE predicates are existential equality over path matches; integer
//    text compares numerically.
//  - Each return path item contributes one column; multiple matches expand
//    into multiple rows (cartesian with the other items); zero matches
//    yield NULL.
//  - A bare `$v` return item publishes the serialized subtree as a string.
//  - A nested FLWR return item joins its rows with the outer row; if it has
//    a WHERE clause it filters the outer row (inner join), otherwise an
//    outer row with no inner matches keeps NULLs (left outer join).
//
// `params` binds the symbolic constants (c1, c2, ...).
StatusOr<ResultSet> EvaluateOnDocument(
    const Query& query, const xml::Document& doc,
    const std::map<std::string, Value>& params = {});

// Canonical scalar value of an XML text: integers parse as Int, everything
// else is Str.
Value CanonicalValue(const std::string& text);

// Column labels a query produces (also used by the relational executor).
std::vector<std::string> QueryLabels(const Query& query);

}  // namespace legodb::xq

#endif  // LEGODB_XQUERY_EVALUATOR_H_
