#ifndef LEGODB_XQUERY_AST_H_
#define LEGODB_XQUERY_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "common/value.h"

namespace legodb::xq {

// A path expression rooted at a bound variable: $v/episode/guest_director.
struct PathExpr {
  std::string var;                 // without the '$'
  std::vector<std::string> steps;  // element/attribute names

  std::string ToString() const;
};

// A literal or symbolic constant. Symbolic constants (the paper's c1, c2,
// ...) stand for an unknown equality-lookup value: the optimizer costs them
// via distinct-value selectivity, and executions bind them via a parameter
// map.
struct Constant {
  enum class Kind { kSymbol, kInt, kString };
  Kind kind = Kind::kSymbol;
  std::string symbol;
  int64_t int_value = 0;
  std::string string_value;

  static Constant Symbol(std::string name);
  static Constant Int(int64_t v);
  static Constant Str(std::string v);
  std::string ToString() const;
};

// Comparison operators supported in WHERE clauses.
enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

// Renders the operator ("=", "!=", "<", ...).
const char* CompareOpName(CompareOp op);
// Applies the operator. Equality is exact typed equality; ordered
// comparisons require both operands non-null and of the same kind —
// mixed-kind or NULL operands satisfy no comparison (including !=).
bool ApplyCompare(CompareOp op, const Value& lhs, const Value& rhs);

// A comparison predicate: path <op> constant, or path = path (value join;
// joins support equality only).
struct Predicate {
  PathExpr lhs;
  CompareOp op = CompareOp::kEq;
  bool rhs_is_path = false;
  Constant rhs_const;
  PathExpr rhs_path;

  std::string ToString() const;
};

// FOR $var IN document("...")/a/b   or   FOR $var IN $w/c/d
struct ForBinding {
  std::string var;
  bool from_document = false;
  std::string source_var;          // when !from_document
  std::vector<std::string> steps;

  std::string ToString() const;
};

struct Query;

// One item of a RETURN clause.
struct ReturnItem {
  enum class Kind {
    kPath,      // $v/title  (or bare $v: publish the whole subtree)
    kSubquery,  // a nested FLWR correlated on outer variables
    kElement,   // <result> items </result> constructor
  };
  Kind kind = Kind::kPath;
  PathExpr path;
  std::shared_ptr<Query> subquery;
  std::string element_name;
  std::vector<ReturnItem> children;
};

// A FLWR query in the supported subset: one or more FOR clauses, an optional
// conjunctive WHERE of equality predicates, and a RETURN of paths, nested
// FLWRs and element constructors. Covers Q1-Q20 of the paper's Appendix C.
struct Query {
  std::vector<ForBinding> fors;
  std::vector<Predicate> where;
  std::vector<ReturnItem> ret;

  std::string ToString() const;

  // All return items flattened (element constructors transparent),
  // depth-first. Subqueries are NOT entered.
  std::vector<const ReturnItem*> FlatReturnItems() const;

  // True if any (recursively reachable) return item publishes a whole
  // variable subtree (bare `$v` path with no steps).
  bool IsPublish() const;
};

}  // namespace legodb::xq

#endif  // LEGODB_XQUERY_AST_H_
