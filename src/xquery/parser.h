#ifndef LEGODB_XQUERY_PARSER_H_
#define LEGODB_XQUERY_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "xquery/ast.h"

namespace legodb::xq {

// Parses the XQuery subset used throughout the paper (Appendix C):
//
//   FOR $v IN document("imdbdata")/imdb/show
//   WHERE $v/title = c1
//   RETURN $v/title, $v/year,
//     FOR $e IN $v/episode
//     WHERE $e/guest_director = c2
//     RETURN $e/name
//
// Keywords are case-insensitive; commas between return items are optional
// (the paper omits them in places); `<name> ... </name>` element
// constructors group return items; identifiers in comparison right-hand
// sides (c1, c2, ...) parse as symbolic constants.
StatusOr<Query> ParseQuery(std::string_view input);

}  // namespace legodb::xq

#endif  // LEGODB_XQUERY_PARSER_H_
