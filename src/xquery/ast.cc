#include "xquery/ast.h"

namespace legodb::xq {

std::string PathExpr::ToString() const {
  std::string out = "$" + var;
  for (const auto& step : steps) out += "/" + step;
  return out;
}

Constant Constant::Symbol(std::string name) {
  Constant c;
  c.kind = Kind::kSymbol;
  c.symbol = std::move(name);
  return c;
}

Constant Constant::Int(int64_t v) {
  Constant c;
  c.kind = Kind::kInt;
  c.int_value = v;
  return c;
}

Constant Constant::Str(std::string v) {
  Constant c;
  c.kind = Kind::kString;
  c.string_value = std::move(v);
  return c;
}

std::string Constant::ToString() const {
  switch (kind) {
    case Kind::kSymbol:
      return symbol;
    case Kind::kInt:
      return std::to_string(int_value);
    case Kind::kString:
      return "\"" + string_value + "\"";
  }
  return "?";
}

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

bool ApplyCompare(CompareOp op, const Value& lhs, const Value& rhs) {
  if (op == CompareOp::kEq) return lhs == rhs;
  if (!lhs.Comparable(rhs)) return false;
  int c = lhs.Compare(rhs);
  switch (op) {
    case CompareOp::kEq:
      return c == 0;
    case CompareOp::kNe:
      return c != 0;
    case CompareOp::kLt:
      return c < 0;
    case CompareOp::kLe:
      return c <= 0;
    case CompareOp::kGt:
      return c > 0;
    case CompareOp::kGe:
      return c >= 0;
  }
  return false;
}

std::string Predicate::ToString() const {
  return lhs.ToString() + " " + CompareOpName(op) + " " +
         (rhs_is_path ? rhs_path.ToString() : rhs_const.ToString());
}

std::string ForBinding::ToString() const {
  std::string out = "FOR $" + var + " IN ";
  out += from_document ? "document(\"*\")" : "$" + source_var;
  for (const auto& step : steps) out += "/" + step;
  return out;
}

namespace {
void RenderItems(const std::vector<ReturnItem>& items, std::string* out) {
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) *out += ", ";
    const ReturnItem& item = items[i];
    switch (item.kind) {
      case ReturnItem::Kind::kPath:
        *out += item.path.ToString();
        break;
      case ReturnItem::Kind::kSubquery:
        *out += "(" + item.subquery->ToString() + ")";
        break;
      case ReturnItem::Kind::kElement:
        *out += "<" + item.element_name + "> ";
        RenderItems(item.children, out);
        *out += " </" + item.element_name + ">";
        break;
    }
  }
}

void FlattenItems(const std::vector<ReturnItem>& items,
                  std::vector<const ReturnItem*>* out) {
  for (const auto& item : items) {
    if (item.kind == ReturnItem::Kind::kElement) {
      FlattenItems(item.children, out);
    } else {
      out->push_back(&item);
    }
  }
}

bool ItemsPublish(const std::vector<ReturnItem>& items) {
  for (const auto& item : items) {
    switch (item.kind) {
      case ReturnItem::Kind::kPath:
        if (item.path.steps.empty()) return true;
        break;
      case ReturnItem::Kind::kSubquery:
        if (item.subquery->IsPublish()) return true;
        break;
      case ReturnItem::Kind::kElement:
        if (ItemsPublish(item.children)) return true;
        break;
    }
  }
  return false;
}
}  // namespace

std::string Query::ToString() const {
  std::string out;
  for (const auto& f : fors) out += f.ToString() + " ";
  if (!where.empty()) {
    out += "WHERE ";
    for (size_t i = 0; i < where.size(); ++i) {
      if (i > 0) out += " AND ";
      out += where[i].ToString();
    }
    out += " ";
  }
  out += "RETURN ";
  RenderItems(ret, &out);
  return out;
}

std::vector<const ReturnItem*> Query::FlatReturnItems() const {
  std::vector<const ReturnItem*> out;
  FlattenItems(ret, &out);
  return out;
}

bool Query::IsPublish() const { return ItemsPublish(ret); }

}  // namespace legodb::xq
