#include "xquery/result.h"

#include <algorithm>

namespace legodb::xq {

namespace {
bool RowLess(const std::vector<Value>& a, const std::vector<Value>& b) {
  return std::lexicographical_compare(a.begin(), a.end(), b.begin(), b.end());
}
}  // namespace

void ResultSet::SortRows() { std::sort(rows.begin(), rows.end(), RowLess); }

bool ResultSet::SameRows(const ResultSet& other) const {
  if (rows.size() != other.rows.size()) return false;
  std::vector<std::vector<Value>> a = rows;
  std::vector<std::vector<Value>> b = other.rows;
  std::sort(a.begin(), a.end(), RowLess);
  std::sort(b.begin(), b.end(), RowLess);
  return a == b;
}

std::string ResultSet::ToString() const {
  std::string out;
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += " | ";
    out += labels[i];
  }
  out += "\n";
  for (const auto& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += " | ";
      out += row[i].ToString();
    }
    out += "\n";
  }
  return out;
}

}  // namespace legodb::xq
