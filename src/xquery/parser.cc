#include "xquery/parser.h"

#include <cctype>
#include <cstdlib>

namespace legodb::xq {
namespace {

struct Token {
  enum class Kind { kIdent, kVar, kNumber, kString, kPunct, kEnd };
  Kind kind = Kind::kEnd;
  std::string text;  // identifier, variable name (no '$'), literal, or punct
  int line = 1;
};

std::string ToUpper(std::string s) {
  for (char& c : s) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return s;
}

class Lexer {
 public:
  explicit Lexer(std::string_view input) : input_(input) { Advance(); }

  const Token& current() const { return current_; }

  void Advance() {
    SkipSpace();
    current_.line = line_;
    if (pos_ >= input_.size()) {
      current_ = Token{Token::Kind::kEnd, "", line_};
      return;
    }
    char c = input_[pos_];
    if (c == '$') {
      ++pos_;
      current_ = Token{Token::Kind::kVar, LexIdent(), line_};
      return;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      current_ = Token{Token::Kind::kIdent, LexIdent(), line_};
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = pos_;
      while (pos_ < input_.size() &&
             std::isdigit(static_cast<unsigned char>(input_[pos_]))) {
        ++pos_;
      }
      current_ = Token{Token::Kind::kNumber,
                       std::string(input_.substr(start, pos_ - start)), line_};
      return;
    }
    if (c == '"' || c == '\'') {
      char quote = c;
      ++pos_;
      size_t start = pos_;
      while (pos_ < input_.size() && input_[pos_] != quote) ++pos_;
      std::string text(input_.substr(start, pos_ - start));
      if (pos_ < input_.size()) ++pos_;
      current_ = Token{Token::Kind::kString, std::move(text), line_};
      return;
    }
    // "</" is one token (element constructor close).
    if (c == '<' && pos_ + 1 < input_.size() && input_[pos_ + 1] == '/') {
      pos_ += 2;
      current_ = Token{Token::Kind::kPunct, "</", line_};
      return;
    }
    ++pos_;
    current_ = Token{Token::Kind::kPunct, std::string(1, c), line_};
  }

 private:
  std::string LexIdent() {
    size_t start = pos_;
    while (pos_ < input_.size() &&
           (std::isalnum(static_cast<unsigned char>(input_[pos_])) ||
            input_[pos_] == '_')) {
      ++pos_;
    }
    return std::string(input_.substr(start, pos_ - start));
  }

  void SkipSpace() {
    while (pos_ < input_.size()) {
      char c = input_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else {
        break;
      }
    }
  }

  std::string_view input_;
  size_t pos_ = 0;
  int line_ = 1;
  Token current_;
};

class Parser {
 public:
  explicit Parser(std::string_view input) : lex_(input) {}

  StatusOr<Query> Parse() {
    auto q = ParseFlwr();
    if (!q.ok()) return q.status();
    if (lex_.current().kind != Token::Kind::kEnd) {
      return Error("trailing input after query");
    }
    return q;
  }

 private:
  bool IsKeyword(std::string_view kw) const {
    return lex_.current().kind == Token::Kind::kIdent &&
           ToUpper(lex_.current().text) == kw;
  }
  bool ConsumeKeyword(std::string_view kw) {
    if (!IsKeyword(kw)) return false;
    lex_.Advance();
    return true;
  }
  bool IsPunct(std::string_view p) const {
    return lex_.current().kind == Token::Kind::kPunct &&
           lex_.current().text == p;
  }
  bool ConsumePunct(std::string_view p) {
    if (!IsPunct(p)) return false;
    lex_.Advance();
    return true;
  }
  Status Error(const std::string& msg) const {
    return Status::ParseError("query line " +
                              std::to_string(lex_.current().line) + ": " +
                              msg);
  }

  StatusOr<Query> ParseFlwr() {
    Query q;
    if (!IsKeyword("FOR")) return Error("expected FOR");
    while (ConsumeKeyword("FOR")) {
      do {
        auto binding = ParseBinding();
        if (!binding.ok()) return binding.status();
        q.fors.push_back(std::move(binding).value());
      } while (ConsumePunct(","));
    }
    if (ConsumeKeyword("WHERE")) {
      do {
        auto pred = ParsePredicate();
        if (!pred.ok()) return pred.status();
        q.where.push_back(std::move(pred).value());
      } while (ConsumeKeyword("AND"));
    }
    if (!ConsumeKeyword("RETURN")) return Error("expected RETURN");
    auto items = ParseReturnItems();
    if (!items.ok()) return items.status();
    q.ret = std::move(items).value();
    if (q.ret.empty()) return Error("empty RETURN clause");
    return q;
  }

  StatusOr<ForBinding> ParseBinding() {
    ForBinding b;
    if (lex_.current().kind != Token::Kind::kVar) {
      return Error("expected variable after FOR");
    }
    b.var = lex_.current().text;
    lex_.Advance();
    // Paper queries write both `$v IN expr` and `$v/played $p` style; we
    // also accept `$outer/path $inner` as `FOR $inner IN $outer/path`.
    if (ConsumeKeyword("IN")) {
      if (ConsumeKeyword("DOCUMENT") || IsKeyword("document")) {
        b.from_document = true;
        if (!ConsumePunct("(")) return Error("expected '(' after document");
        if (lex_.current().kind != Token::Kind::kString) {
          return Error("expected document name string");
        }
        lex_.Advance();
        if (!ConsumePunct(")")) return Error("expected ')'");
      } else if (lex_.current().kind == Token::Kind::kVar) {
        b.source_var = lex_.current().text;
        lex_.Advance();
      } else {
        return Error("expected document(...) or variable in FOR source");
      }
      auto steps = ParseSteps();
      if (!steps.ok()) return steps.status();
      b.steps = std::move(steps).value();
      return b;
    }
    // `FOR $v/episode $e` form: source path hangs off the first variable.
    auto steps = ParseSteps();
    if (!steps.ok()) return steps.status();
    if (lex_.current().kind != Token::Kind::kVar) {
      return Error("expected IN or a bound variable in FOR clause");
    }
    ForBinding inner;
    inner.var = lex_.current().text;
    lex_.Advance();
    inner.source_var = b.var;
    inner.steps = std::move(steps).value();
    return inner;
  }

  StatusOr<std::vector<std::string>> ParseSteps() {
    std::vector<std::string> steps;
    while (ConsumePunct("/")) {
      if (ConsumePunct("@")) {
        if (lex_.current().kind != Token::Kind::kIdent) {
          return Error("expected attribute name after '@'");
        }
        steps.push_back("@" + lex_.current().text);
        lex_.Advance();
        continue;
      }
      if (lex_.current().kind != Token::Kind::kIdent) {
        return Error("expected step name after '/'");
      }
      steps.push_back(lex_.current().text);
      lex_.Advance();
    }
    return steps;
  }

  StatusOr<PathExpr> ParsePathExpr() {
    if (lex_.current().kind != Token::Kind::kVar) {
      return Error("expected variable in path expression");
    }
    PathExpr p;
    p.var = lex_.current().text;
    lex_.Advance();
    auto steps = ParseSteps();
    if (!steps.ok()) return steps.status();
    p.steps = std::move(steps).value();
    return p;
  }

  StatusOr<CompareOp> ParseCompareOp() {
    if (ConsumePunct("=")) return CompareOp::kEq;
    if (ConsumePunct("!")) {
      if (!ConsumePunct("=")) return Error("expected '!='");
      return CompareOp::kNe;
    }
    if (ConsumePunct("<")) {
      return ConsumePunct("=") ? CompareOp::kLe : CompareOp::kLt;
    }
    if (ConsumePunct(">")) {
      return ConsumePunct("=") ? CompareOp::kGe : CompareOp::kGt;
    }
    return Error("expected comparison operator in predicate");
  }

  StatusOr<Predicate> ParsePredicate() {
    Predicate pred;
    auto lhs = ParsePathExpr();
    if (!lhs.ok()) return lhs.status();
    pred.lhs = std::move(lhs).value();
    auto op = ParseCompareOp();
    if (!op.ok()) return op.status();
    pred.op = op.value();
    const Token& t = lex_.current();
    switch (t.kind) {
      case Token::Kind::kVar: {
        auto rhs = ParsePathExpr();
        if (!rhs.ok()) return rhs.status();
        pred.rhs_is_path = true;
        pred.rhs_path = std::move(rhs).value();
        return pred;
      }
      case Token::Kind::kNumber:
        pred.rhs_const = Constant::Int(std::strtoll(t.text.c_str(), nullptr, 10));
        lex_.Advance();
        return pred;
      case Token::Kind::kString:
        pred.rhs_const = Constant::Str(t.text);
        lex_.Advance();
        return pred;
      case Token::Kind::kIdent:
        pred.rhs_const = Constant::Symbol(t.text);
        lex_.Advance();
        return pred;
      default:
        return Error("expected constant or path after '='");
    }
  }

  bool AtItemStart() const {
    return lex_.current().kind == Token::Kind::kVar || IsKeyword("FOR") ||
           (IsPunct("<"));
  }

  StatusOr<std::vector<ReturnItem>> ParseReturnItems() {
    std::vector<ReturnItem> items;
    while (true) {
      if (!AtItemStart()) break;
      auto item = ParseReturnItem();
      if (!item.ok()) return item.status();
      items.push_back(std::move(item).value());
      ConsumePunct(",");  // optional separator
    }
    return items;
  }

  StatusOr<ReturnItem> ParseReturnItem() {
    ReturnItem item;
    if (lex_.current().kind == Token::Kind::kVar) {
      auto path = ParsePathExpr();
      if (!path.ok()) return path.status();
      item.kind = ReturnItem::Kind::kPath;
      item.path = std::move(path).value();
      return item;
    }
    if (IsKeyword("FOR")) {
      auto sub = ParseFlwr();
      if (!sub.ok()) return sub.status();
      item.kind = ReturnItem::Kind::kSubquery;
      item.subquery = std::make_shared<Query>(std::move(sub).value());
      return item;
    }
    if (ConsumePunct("<")) {
      if (lex_.current().kind != Token::Kind::kIdent) {
        return Error("expected element name after '<'");
      }
      item.kind = ReturnItem::Kind::kElement;
      item.element_name = lex_.current().text;
      lex_.Advance();
      if (!ConsumePunct(">")) return Error("expected '>'");
      auto children = ParseReturnItems();
      if (!children.ok()) return children.status();
      item.children = std::move(children).value();
      if (!ConsumePunct("</")) return Error("expected '</'");
      if (lex_.current().kind != Token::Kind::kIdent ||
          lex_.current().text != item.element_name) {
        return Error("mismatched constructor close tag");
      }
      lex_.Advance();
      if (!ConsumePunct(">")) return Error("expected '>'");
      return item;
    }
    return Error("expected return item");
  }

  Lexer lex_;
};

}  // namespace

StatusOr<Query> ParseQuery(std::string_view input) {
  return Parser(input).Parse();
}

}  // namespace legodb::xq
