#include "obs/obs.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <sstream>
#include <thread>

#include "common/table_printer.h"

namespace legodb::obs {

int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// ---- Histogram -----------------------------------------------------------

namespace {

// Inclusive upper bounds of the underflow bucket and every regular bucket,
// computed once so HistogramBucketIndex and the bound accessors can never
// disagree. bounds[i] is the upper bound of bucket i, for i in
// [0, kHistogramNumBuckets - 1); the overflow bucket is unbounded.
const std::array<double, kHistogramNumBuckets - 1>& BucketBounds() {
  static const auto* bounds = [] {
    auto* b = new std::array<double, kHistogramNumBuckets - 1>;
    for (int i = 0; i < kHistogramNumBuckets - 1; ++i) {
      (*b)[i] = std::pow(
          10.0, kHistogramMinExp +
                    static_cast<double>(i) / kHistogramBucketsPerDecade);
    }
    return b;
  }();
  return *bounds;
}

}  // namespace

int HistogramBucketIndex(double value) {
  if (std::isnan(value)) return 0;
  const auto& bounds = BucketBounds();
  auto it = std::lower_bound(bounds.begin(), bounds.end(), value);
  return static_cast<int>(it - bounds.begin());
}

double HistogramBucketUpperBound(int bucket) {
  const auto& bounds = BucketBounds();
  if (bucket < 0) bucket = 0;
  if (bucket >= static_cast<int>(bounds.size())) {
    return std::numeric_limits<double>::infinity();
  }
  return bounds[static_cast<size_t>(bucket)];
}

double HistogramBucketLowerBound(int bucket) {
  return bucket <= 0 ? 0.0 : HistogramBucketUpperBound(bucket - 1);
}

void Histogram::Observe(double value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  ++buckets_[static_cast<size_t>(HistogramBucketIndex(value))];
}

Histogram::Snapshot Histogram::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot s;
  s.count = count_;
  s.sum = sum_;
  s.min = min_;
  s.max = max_;
  for (int i = 0; i < kHistogramNumBuckets; ++i) {
    if (buckets_[static_cast<size_t>(i)] != 0) {
      s.buckets.emplace_back(i, buckets_[static_cast<size_t>(i)]);
    }
  }
  return s;
}

// ---- Registry ------------------------------------------------------------

Counter* Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* Registry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* Registry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return it->second.get();
}

int Registry::BeginSpan(const char* name, int parent, int depth,
                        int64_t start_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  if (spans_.size() >= max_spans_) {
    ++dropped_spans_;
    return -1;
  }
  auto [it, unused] = thread_ids_.emplace(
      std::this_thread::get_id(), static_cast<int>(thread_ids_.size()));
  SpanRecord record;
  record.name = name;
  record.start_ns = start_ns - epoch_ns_;
  record.parent = parent;
  record.depth = depth;
  record.tid = it->second;
  spans_.push_back(std::move(record));
  return static_cast<int>(spans_.size()) - 1;
}

void Registry::EndSpan(int index, int64_t end_ns) {
  if (index < 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  SpanRecord& record = spans_[static_cast<size_t>(index)];
  record.duration_ns = end_ns - epoch_ns_ - record.start_ns;
}

Report Registry::Snapshot() const {
  int64_t now = NowNanos();
  Report report;
  std::lock_guard<std::mutex> lock(mu_);
  report.spans = spans_;
  for (SpanRecord& s : report.spans) {
    // Close still-open spans at snapshot time.
    if (s.duration_ns < 0) s.duration_ns = now - epoch_ns_ - s.start_ns;
  }
  for (const auto& [name, counter] : counters_) {
    report.counters.push_back({name, counter->value()});
  }
  for (const auto& [name, gauge] : gauges_) {
    report.gauges.push_back({name, gauge->value()});
  }
  for (const auto& [name, hist] : histograms_) {
    Histogram::Snapshot s = hist->snapshot();
    Report::HistogramEntry entry{name, s.count, s.sum, s.min, s.max, {}};
    for (const auto& [bucket, count] : s.buckets) {
      entry.buckets.push_back({bucket, count});
    }
    report.histograms.push_back(std::move(entry));
  }
  report.dropped_spans = dropped_spans_;
  return report;
}

// ---- ambient registry & spans --------------------------------------------

namespace {

thread_local Registry* tls_registry = nullptr;

struct ActiveSpan {
  Registry* registry;
  int index;
  int depth;
};
// The thread's stack of open spans (each entry pushed by a Span ctor).
thread_local std::vector<ActiveSpan> tls_span_stack;

}  // namespace

Registry* Current() { return tls_registry; }

ScopedRegistry::ScopedRegistry(Registry* registry) : prev_(tls_registry) {
  tls_registry = registry;
}

ScopedRegistry::~ScopedRegistry() { tls_registry = prev_; }

Span::Span(const char* name, Registry* registry) : registry_(registry) {
  if (!registry_) return;
  int parent = -1;
  int depth = 0;
  if (!tls_span_stack.empty() &&
      tls_span_stack.back().registry == registry_) {
    parent = tls_span_stack.back().index;
    depth = tls_span_stack.back().depth + 1;
  }
  start_ns_ = NowNanos();
  index_ = registry_->BeginSpan(name, parent, depth, start_ns_);
  // Dropped spans (index -1) still push so nesting stays balanced.
  tls_span_stack.push_back({registry_, index_, depth});
}

Span::~Span() {
  if (!registry_) return;
  registry_->EndSpan(index_, NowNanos());
  tls_span_stack.pop_back();
}

// ---- Report: lookups -----------------------------------------------------

int64_t Report::CounterValue(std::string_view name) const {
  for (const auto& c : counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

double Report::GaugeValue(std::string_view name) const {
  for (const auto& g : gauges) {
    if (g.name == name) return g.value;
  }
  return 0;
}

const Report::HistogramEntry* Report::FindHistogram(
    std::string_view name) const {
  for (const auto& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

double Report::SpanTotalMillis(std::string_view name) const {
  double total_ns = 0;
  for (const auto& s : spans) {
    if (s.name == name) total_ns += static_cast<double>(s.duration_ns);
  }
  return total_ns / 1e6;
}

double Report::HistogramEntry::Quantile(double q) const {
  if (count <= 0) return 0;
  q = std::min(1.0, std::max(0.0, q));
  // The extreme order statistics are tracked exactly; only interior
  // quantiles need the bucket estimate.
  if (q <= 0.0) return min;
  if (q >= 1.0) return max;
  double result;
  if (buckets.empty()) {
    // Pre-bucket report (older JSON): all that is known is the range.
    result = min + q * (max - min);
  } else {
    // The observation with 1-based rank ceil(q * count), by bucket walk.
    int64_t rank = static_cast<int64_t>(
        std::ceil(q * static_cast<double>(count)));
    rank = std::max<int64_t>(1, std::min(rank, count));
    int64_t seen = 0;
    int bucket = buckets.back().bucket;
    for (const BucketCount& b : buckets) {
      seen += b.count;
      if (seen >= rank) {
        bucket = b.bucket;
        break;
      }
    }
    double lo = HistogramBucketLowerBound(bucket);
    double hi = HistogramBucketUpperBound(bucket);
    // Geometric bucket midpoint; the unbounded edges fall back to the
    // finite side and the final clamp to the observed range.
    if (!std::isfinite(hi)) {
      result = lo;
    } else if (lo <= 0) {
      result = hi;
    } else {
      result = std::sqrt(lo * hi);
    }
  }
  return std::min(max, std::max(min, result));
}

void Report::SetMeta(std::string_view key, std::string_view value) {
  for (auto& [k, v] : meta) {
    if (k == key) {
      v = std::string(value);
      return;
    }
  }
  meta.emplace_back(std::string(key), std::string(value));
}

std::string Report::MetaValue(std::string_view key) const {
  for (const auto& [k, v] : meta) {
    if (k == key) return v;
  }
  return "";
}

void Report::AddBlob(std::string_view name, std::string raw_json) {
  if (!ValidateJsonText(raw_json).ok()) {
    raw_json = "\"(invalid blob JSON dropped)\"";
  }
  for (auto& [n, v] : blobs) {
    if (n == name) {
      v = std::move(raw_json);
      return;
    }
  }
  blobs.emplace_back(std::string(name), std::move(raw_json));
}

const std::string* Report::FindBlob(std::string_view name) const {
  for (const auto& [n, v] : blobs) {
    if (n == name) return &v;
  }
  return nullptr;
}

// ---- Report: human tables ------------------------------------------------

std::string Report::SpanTable() const {
  TablePrinter table({"span", "start_ms", "ms"});
  for (const auto& s : spans) {
    std::string name(2 * static_cast<size_t>(s.depth), ' ');
    name += s.name;
    // A negative duration marks a span still open when the report was made
    // (hand-written or round-tripped reports; Registry::Snapshot closes its
    // own open spans).
    table.AddRow({name, FormatDouble(static_cast<double>(s.start_ns) / 1e6, 3),
                  s.duration_ns < 0
                      ? "open"
                      : FormatDouble(
                            static_cast<double>(s.duration_ns) / 1e6, 3)});
  }
  if (dropped_spans > 0) {
    table.AddRow({"(dropped " + std::to_string(dropped_spans) + " spans)",
                  "", ""});
  }
  return table.ToString();
}

std::string Report::MetricsTable() const {
  TablePrinter table({"metric", "count", "mean", "min", "max", "sum"});
  for (const auto& c : counters) {
    table.AddRow({c.name, std::to_string(c.value), "", "", "", ""});
  }
  for (const auto& g : gauges) {
    table.AddRow({g.name, "", FormatDouble(g.value, 3), "", "", ""});
  }
  for (const auto& h : histograms) {
    double mean = h.count == 0 ? 0 : h.sum / static_cast<double>(h.count);
    table.AddRow({h.name, std::to_string(h.count), FormatDouble(mean, 3),
                  FormatDouble(h.min, 3), FormatDouble(h.max, 3),
                  FormatDouble(h.sum, 3)});
  }
  return table.ToString();
}

// ---- Report: JSON --------------------------------------------------------

namespace {

void AppendJsonString(std::string* out, std::string_view s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

std::string JsonDouble(double v) {
  // JSON has no literals for non-finite doubles; encode them as strings
  // the parser maps back (a NaN calibration gauge must not corrupt the
  // file).
  if (std::isnan(v)) return "\"NaN\"";
  if (std::isinf(v)) return v > 0 ? "\"Infinity\"" : "\"-Infinity\"";
  // Round-trippable without drowning the file in digits.
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

}  // namespace

std::string Report::ToJson() const {
  std::string out = "{\n  \"spans\": [";
  for (size_t i = 0; i < spans.size(); ++i) {
    const SpanRecord& s = spans[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"name\": ";
    AppendJsonString(&out, s.name);
    out += ", \"start_ns\": " + std::to_string(s.start_ns) +
           ", \"duration_ns\": " + std::to_string(s.duration_ns) +
           ", \"parent\": " + std::to_string(s.parent) +
           ", \"depth\": " + std::to_string(s.depth) +
           ", \"tid\": " + std::to_string(s.tid) + "}";
  }
  out += spans.empty() ? "],\n" : "\n  ],\n";
  out += "  \"counters\": {";
  for (size_t i = 0; i < counters.size(); ++i) {
    out += i == 0 ? "\n    " : ",\n    ";
    AppendJsonString(&out, counters[i].name);
    out += ": " + std::to_string(counters[i].value);
  }
  out += counters.empty() ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  for (size_t i = 0; i < gauges.size(); ++i) {
    out += i == 0 ? "\n    " : ",\n    ";
    AppendJsonString(&out, gauges[i].name);
    out += ": " + JsonDouble(gauges[i].value);
  }
  out += gauges.empty() ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  for (size_t i = 0; i < histograms.size(); ++i) {
    const HistogramEntry& h = histograms[i];
    out += i == 0 ? "\n    " : ",\n    ";
    AppendJsonString(&out, h.name);
    out += ": {\"count\": " + std::to_string(h.count) +
           ", \"sum\": " + JsonDouble(h.sum) +
           ", \"min\": " + JsonDouble(h.min) +
           ", \"max\": " + JsonDouble(h.max);
    if (!h.buckets.empty()) {
      out += ", \"buckets\": {";
      for (size_t b = 0; b < h.buckets.size(); ++b) {
        if (b > 0) out += ", ";
        out += "\"" + std::to_string(h.buckets[b].bucket) +
               "\": " + std::to_string(h.buckets[b].count);
      }
      out += "}";
    }
    out += "}";
  }
  out += histograms.empty() ? "},\n" : "\n  },\n";
  if (!meta.empty()) {
    out += "  \"meta\": {";
    for (size_t i = 0; i < meta.size(); ++i) {
      out += i == 0 ? "\n    " : ",\n    ";
      AppendJsonString(&out, meta[i].first);
      out += ": ";
      AppendJsonString(&out, meta[i].second);
    }
    out += "\n  },\n";
  }
  if (!blobs.empty()) {
    out += "  \"blobs\": {";
    for (size_t i = 0; i < blobs.size(); ++i) {
      out += i == 0 ? "\n    " : ",\n    ";
      AppendJsonString(&out, blobs[i].first);
      out += ": " + blobs[i].second;
    }
    out += "\n  },\n";
  }
  out += "  \"dropped_spans\": " + std::to_string(dropped_spans) + "\n}\n";
  return out;
}

// ---- Report: Chrome trace ------------------------------------------------

std::string Report::ToChromeTrace() const {
  // End of the traced run: the latest finished-span end time. Still-open
  // spans (negative duration) are closed here so every slice has a
  // non-negative "dur".
  int64_t end_ns = 0;
  for (const SpanRecord& s : spans) {
    end_ns = std::max(end_ns,
                      s.start_ns + std::max<int64_t>(s.duration_ns, 0));
  }
  std::string out = "{\"traceEvents\": [\n";
  out += "  {\"ph\": \"M\", \"pid\": 0, \"tid\": 0, \"name\": "
         "\"process_name\", \"args\": {\"name\": \"legodb\"}}";
  int max_tid = -1;
  for (const SpanRecord& s : spans) max_tid = std::max(max_tid, s.tid);
  for (int t = 0; t <= max_tid; ++t) {
    out += ",\n  {\"ph\": \"M\", \"pid\": 0, \"tid\": " + std::to_string(t) +
           ", \"name\": \"thread_name\", \"args\": {\"name\": \"thread " +
           std::to_string(t) + "\"}}";
  }
  for (const SpanRecord& s : spans) {
    int64_t dur_ns =
        s.duration_ns >= 0 ? s.duration_ns
                           : std::max<int64_t>(0, end_ns - s.start_ns);
    out += ",\n  {\"ph\": \"X\", \"pid\": 0, \"tid\": " +
           std::to_string(s.tid) + ", \"name\": ";
    AppendJsonString(&out, s.name);
    out += ", \"cat\": \"span\", \"ts\": " +
           JsonDouble(static_cast<double>(s.start_ns) / 1e3) +
           ", \"dur\": " + JsonDouble(static_cast<double>(dur_ns) / 1e3) +
           ", \"args\": {\"depth\": " + std::to_string(s.depth) + "}}";
  }
  out += "\n], \"displayTimeUnit\": \"ms\"}\n";
  return out;
}

// ---- JSON parsing (the subset ToJson emits) ------------------------------

namespace {

// Minimal recursive-descent JSON reader. Supports objects, arrays, strings,
// numbers, true/false/null — enough to round-trip Report::ToJson and to
// read hand-edited metric files.
class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  StatusOr<Report> ParseReport() {
    SkipWs();
    if (!Consume('{')) return Err("expected '{'");
    Report report;
    bool first = true;
    while (true) {
      SkipWs();
      if (Consume('}')) break;
      if (!first && !Consume(',')) return Err("expected ','");
      first = false;
      SkipWs();
      LEGODB_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWs();
      if (!Consume(':')) return Err("expected ':'");
      SkipWs();
      if (key == "spans") {
        LEGODB_RETURN_IF_ERROR(ParseSpans(&report));
      } else if (key == "counters") {
        LEGODB_RETURN_IF_ERROR(ParseCounters(&report));
      } else if (key == "gauges") {
        LEGODB_RETURN_IF_ERROR(ParseGauges(&report));
      } else if (key == "histograms") {
        LEGODB_RETURN_IF_ERROR(ParseHistograms(&report));
      } else if (key == "meta") {
        LEGODB_RETURN_IF_ERROR(ParseStringMap(&report.meta));
      } else if (key == "blobs") {
        LEGODB_RETURN_IF_ERROR(ParseBlobs(&report));
      } else if (key == "dropped_spans") {
        LEGODB_ASSIGN_OR_RETURN(double v, ParseNumber());
        report.dropped_spans = static_cast<int64_t>(v);
      } else {
        return Err("unknown report key '" + key + "'");
      }
    }
    SkipWs();
    if (pos_ != text_.size()) return Err("trailing characters");
    return report;
  }

 private:
  Status Err(const std::string& msg) const {
    return Status::InvalidArgument("obs report JSON: " + msg + " at offset " +
                                   std::to_string(pos_));
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  StatusOr<std::string> ParseString() {
    if (!Consume('"')) return Err("expected string");
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        char esc = text_[pos_++];
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return Err("bad \\u escape");
            int code = std::stoi(text_.substr(pos_, 4), nullptr, 16);
            pos_ += 4;
            out.push_back(static_cast<char>(code));  // BMP-ASCII subset
            break;
          }
          default:
            return Err("bad escape");
        }
      } else {
        out.push_back(c);
      }
    }
    return Err("unterminated string");
  }

  StatusOr<double> ParseNumber() {
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return Err("expected number");
    return std::strtod(text_.substr(start, pos_ - start).c_str(), nullptr);
  }

  StatusOr<int64_t> ParseInt() {
    LEGODB_ASSIGN_OR_RETURN(double v, ParseNumber());
    return static_cast<int64_t>(v);
  }

  // A double-valued field: a plain number, the string encodings of the
  // non-finite values ("NaN", "Infinity", "-Infinity"), or null (read as
  // NaN) — the decode side of JsonDouble.
  StatusOr<double> ParseDouble() {
    if (pos_ < text_.size() && text_[pos_] == '"') {
      LEGODB_ASSIGN_OR_RETURN(std::string s, ParseString());
      if (s == "NaN") return std::numeric_limits<double>::quiet_NaN();
      if (s == "Infinity") return std::numeric_limits<double>::infinity();
      if (s == "-Infinity") return -std::numeric_limits<double>::infinity();
      return Err("unknown double string '" + s + "'");
    }
    if (ConsumeLiteral("null")) {
      return std::numeric_limits<double>::quiet_NaN();
    }
    return ParseNumber();
  }

  bool ConsumeLiteral(std::string_view lit) {
    if (text_.compare(pos_, lit.size(), lit) == 0) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  // Skips one well-formed JSON value of any shape (used for blob capture
  // and standalone validation).
  Status SkipValue(int depth) {
    if (depth > 256) return Err("nesting too deep");
    SkipWs();
    if (pos_ >= text_.size()) return Err("expected value");
    char c = text_[pos_];
    if (c == '{' || c == '[') {
      char close = c == '{' ? '}' : ']';
      ++pos_;
      bool first = true;
      while (true) {
        SkipWs();
        if (Consume(close)) return Status::OK();
        if (!first && !Consume(',')) return Err("expected ','");
        first = false;
        SkipWs();
        if (close == '}') {
          LEGODB_RETURN_IF_ERROR(ParseString().status());
          SkipWs();
          if (!Consume(':')) return Err("expected ':'");
        }
        LEGODB_RETURN_IF_ERROR(SkipValue(depth + 1));
      }
    }
    if (c == '"') return ParseString().status();
    if (ConsumeLiteral("true") || ConsumeLiteral("false") ||
        ConsumeLiteral("null")) {
      return Status::OK();
    }
    return ParseNumber().status();
  }

  // Captures the raw text of one well-formed JSON value, verbatim.
  StatusOr<std::string> ParseRawValue() {
    SkipWs();
    size_t start = pos_;
    LEGODB_RETURN_IF_ERROR(SkipValue(0));
    return text_.substr(start, pos_ - start);
  }

  // Validates one complete JSON document (any value at the root).
 public:
  Status ValidateWhole() {
    LEGODB_RETURN_IF_ERROR(SkipValue(0));
    SkipWs();
    if (pos_ != text_.size()) return Err("trailing characters");
    return Status::OK();
  }

 private:

  Status ParseSpans(Report* report) {
    if (!Consume('[')) return Err("expected '['");
    bool first = true;
    while (true) {
      SkipWs();
      if (Consume(']')) return Status::OK();
      if (!first && !Consume(',')) return Err("expected ','");
      first = false;
      SkipWs();
      if (!Consume('{')) return Err("expected span object");
      SpanRecord span;
      bool first_field = true;
      while (true) {
        SkipWs();
        if (Consume('}')) break;
        if (!first_field && !Consume(',')) return Err("expected ','");
        first_field = false;
        SkipWs();
        LEGODB_ASSIGN_OR_RETURN(std::string key, ParseString());
        SkipWs();
        if (!Consume(':')) return Err("expected ':'");
        SkipWs();
        if (key == "name") {
          LEGODB_ASSIGN_OR_RETURN(span.name, ParseString());
        } else if (key == "start_ns") {
          LEGODB_ASSIGN_OR_RETURN(span.start_ns, ParseInt());
        } else if (key == "duration_ns") {
          LEGODB_ASSIGN_OR_RETURN(span.duration_ns, ParseInt());
        } else if (key == "parent") {
          LEGODB_ASSIGN_OR_RETURN(int64_t v, ParseInt());
          span.parent = static_cast<int>(v);
        } else if (key == "depth") {
          LEGODB_ASSIGN_OR_RETURN(int64_t v, ParseInt());
          span.depth = static_cast<int>(v);
        } else if (key == "tid") {
          LEGODB_ASSIGN_OR_RETURN(int64_t v, ParseInt());
          span.tid = static_cast<int>(v);
        } else {
          return Err("unknown span key '" + key + "'");
        }
      }
      report->spans.push_back(std::move(span));
    }
  }

  Status ParseCounters(Report* report) {
    if (!Consume('{')) return Err("expected '{'");
    bool first = true;
    while (true) {
      SkipWs();
      if (Consume('}')) return Status::OK();
      if (!first && !Consume(',')) return Err("expected ','");
      first = false;
      SkipWs();
      Report::CounterEntry entry;
      LEGODB_ASSIGN_OR_RETURN(entry.name, ParseString());
      SkipWs();
      if (!Consume(':')) return Err("expected ':'");
      SkipWs();
      LEGODB_ASSIGN_OR_RETURN(entry.value, ParseInt());
      report->counters.push_back(std::move(entry));
    }
  }

  Status ParseGauges(Report* report) {
    if (!Consume('{')) return Err("expected '{'");
    bool first = true;
    while (true) {
      SkipWs();
      if (Consume('}')) return Status::OK();
      if (!first && !Consume(',')) return Err("expected ','");
      first = false;
      SkipWs();
      Report::GaugeEntry entry;
      LEGODB_ASSIGN_OR_RETURN(entry.name, ParseString());
      SkipWs();
      if (!Consume(':')) return Err("expected ':'");
      SkipWs();
      LEGODB_ASSIGN_OR_RETURN(entry.value, ParseDouble());
      report->gauges.push_back(std::move(entry));
    }
  }

  Status ParseHistograms(Report* report) {
    if (!Consume('{')) return Err("expected '{'");
    bool first = true;
    while (true) {
      SkipWs();
      if (Consume('}')) return Status::OK();
      if (!first && !Consume(',')) return Err("expected ','");
      first = false;
      SkipWs();
      Report::HistogramEntry entry;
      LEGODB_ASSIGN_OR_RETURN(entry.name, ParseString());
      SkipWs();
      if (!Consume(':')) return Err("expected ':'");
      SkipWs();
      if (!Consume('{')) return Err("expected histogram object");
      bool first_field = true;
      while (true) {
        SkipWs();
        if (Consume('}')) break;
        if (!first_field && !Consume(',')) return Err("expected ','");
        first_field = false;
        SkipWs();
        LEGODB_ASSIGN_OR_RETURN(std::string key, ParseString());
        SkipWs();
        if (!Consume(':')) return Err("expected ':'");
        SkipWs();
        if (key == "count") {
          LEGODB_ASSIGN_OR_RETURN(entry.count, ParseInt());
        } else if (key == "sum") {
          LEGODB_ASSIGN_OR_RETURN(entry.sum, ParseDouble());
        } else if (key == "min") {
          LEGODB_ASSIGN_OR_RETURN(entry.min, ParseDouble());
        } else if (key == "max") {
          LEGODB_ASSIGN_OR_RETURN(entry.max, ParseDouble());
        } else if (key == "buckets") {
          LEGODB_RETURN_IF_ERROR(ParseBuckets(&entry));
        } else {
          return Err("unknown histogram key '" + key + "'");
        }
      }
      report->histograms.push_back(std::move(entry));
    }
  }

  Status ParseBuckets(Report::HistogramEntry* entry) {
    if (!Consume('{')) return Err("expected buckets object");
    bool first = true;
    while (true) {
      SkipWs();
      if (Consume('}')) return Status::OK();
      if (!first && !Consume(',')) return Err("expected ','");
      first = false;
      SkipWs();
      LEGODB_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWs();
      if (!Consume(':')) return Err("expected ':'");
      SkipWs();
      Report::BucketCount b;
      b.bucket = std::atoi(key.c_str());
      LEGODB_ASSIGN_OR_RETURN(b.count, ParseInt());
      entry->buckets.push_back(b);
    }
  }

  Status ParseStringMap(std::vector<std::pair<std::string, std::string>>* out) {
    if (!Consume('{')) return Err("expected '{'");
    bool first = true;
    while (true) {
      SkipWs();
      if (Consume('}')) return Status::OK();
      if (!first && !Consume(',')) return Err("expected ','");
      first = false;
      SkipWs();
      LEGODB_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWs();
      if (!Consume(':')) return Err("expected ':'");
      SkipWs();
      LEGODB_ASSIGN_OR_RETURN(std::string value, ParseString());
      out->emplace_back(std::move(key), std::move(value));
    }
  }

  Status ParseBlobs(Report* report) {
    if (!Consume('{')) return Err("expected '{'");
    bool first = true;
    while (true) {
      SkipWs();
      if (Consume('}')) return Status::OK();
      if (!first && !Consume(',')) return Err("expected ','");
      first = false;
      SkipWs();
      LEGODB_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWs();
      if (!Consume(':')) return Err("expected ':'");
      LEGODB_ASSIGN_OR_RETURN(std::string raw, ParseRawValue());
      report->blobs.emplace_back(std::move(key), std::move(raw));
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<Report> ReportFromJson(const std::string& json) {
  return JsonParser(json).ParseReport();
}

Status ValidateJsonText(const std::string& text) {
  return JsonParser(text).ValidateWhole();
}

}  // namespace legodb::obs
