#include "obs/obs.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/table_printer.h"

namespace legodb::obs {

int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// ---- Histogram -----------------------------------------------------------

void Histogram::Observe(double value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (s_.count == 0) {
    s_.min = s_.max = value;
  } else {
    s_.min = std::min(s_.min, value);
    s_.max = std::max(s_.max, value);
  }
  ++s_.count;
  s_.sum += value;
}

Histogram::Snapshot Histogram::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return s_;
}

// ---- Registry ------------------------------------------------------------

Counter* Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* Registry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* Registry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return it->second.get();
}

int Registry::BeginSpan(const char* name, int parent, int depth,
                        int64_t start_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  if (spans_.size() >= max_spans_) {
    ++dropped_spans_;
    return -1;
  }
  SpanRecord record;
  record.name = name;
  record.start_ns = start_ns - epoch_ns_;
  record.parent = parent;
  record.depth = depth;
  spans_.push_back(std::move(record));
  return static_cast<int>(spans_.size()) - 1;
}

void Registry::EndSpan(int index, int64_t end_ns) {
  if (index < 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  SpanRecord& record = spans_[static_cast<size_t>(index)];
  record.duration_ns = end_ns - epoch_ns_ - record.start_ns;
}

Report Registry::Snapshot() const {
  int64_t now = NowNanos();
  Report report;
  std::lock_guard<std::mutex> lock(mu_);
  report.spans = spans_;
  for (SpanRecord& s : report.spans) {
    // Close still-open spans at snapshot time.
    if (s.duration_ns < 0) s.duration_ns = now - epoch_ns_ - s.start_ns;
  }
  for (const auto& [name, counter] : counters_) {
    report.counters.push_back({name, counter->value()});
  }
  for (const auto& [name, gauge] : gauges_) {
    report.gauges.push_back({name, gauge->value()});
  }
  for (const auto& [name, hist] : histograms_) {
    Histogram::Snapshot s = hist->snapshot();
    report.histograms.push_back({name, s.count, s.sum, s.min, s.max});
  }
  report.dropped_spans = dropped_spans_;
  return report;
}

// ---- ambient registry & spans --------------------------------------------

namespace {

thread_local Registry* tls_registry = nullptr;

struct ActiveSpan {
  Registry* registry;
  int index;
  int depth;
};
// The thread's stack of open spans (each entry pushed by a Span ctor).
thread_local std::vector<ActiveSpan> tls_span_stack;

}  // namespace

Registry* Current() { return tls_registry; }

ScopedRegistry::ScopedRegistry(Registry* registry) : prev_(tls_registry) {
  tls_registry = registry;
}

ScopedRegistry::~ScopedRegistry() { tls_registry = prev_; }

Span::Span(const char* name, Registry* registry) : registry_(registry) {
  if (!registry_) return;
  int parent = -1;
  int depth = 0;
  if (!tls_span_stack.empty() &&
      tls_span_stack.back().registry == registry_) {
    parent = tls_span_stack.back().index;
    depth = tls_span_stack.back().depth + 1;
  }
  start_ns_ = NowNanos();
  index_ = registry_->BeginSpan(name, parent, depth, start_ns_);
  // Dropped spans (index -1) still push so nesting stays balanced.
  tls_span_stack.push_back({registry_, index_, depth});
}

Span::~Span() {
  if (!registry_) return;
  registry_->EndSpan(index_, NowNanos());
  tls_span_stack.pop_back();
}

// ---- Report: lookups -----------------------------------------------------

int64_t Report::CounterValue(std::string_view name) const {
  for (const auto& c : counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

double Report::GaugeValue(std::string_view name) const {
  for (const auto& g : gauges) {
    if (g.name == name) return g.value;
  }
  return 0;
}

const Report::HistogramEntry* Report::FindHistogram(
    std::string_view name) const {
  for (const auto& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

double Report::SpanTotalMillis(std::string_view name) const {
  double total_ns = 0;
  for (const auto& s : spans) {
    if (s.name == name) total_ns += static_cast<double>(s.duration_ns);
  }
  return total_ns / 1e6;
}

// ---- Report: human tables ------------------------------------------------

std::string Report::SpanTable() const {
  TablePrinter table({"span", "start_ms", "ms"});
  for (const auto& s : spans) {
    std::string name(2 * static_cast<size_t>(s.depth), ' ');
    name += s.name;
    table.AddRow({name, FormatDouble(static_cast<double>(s.start_ns) / 1e6, 3),
                  FormatDouble(static_cast<double>(s.duration_ns) / 1e6, 3)});
  }
  if (dropped_spans > 0) {
    table.AddRow({"(dropped " + std::to_string(dropped_spans) + " spans)",
                  "", ""});
  }
  return table.ToString();
}

std::string Report::MetricsTable() const {
  TablePrinter table({"metric", "count", "mean", "min", "max", "sum"});
  for (const auto& c : counters) {
    table.AddRow({c.name, std::to_string(c.value), "", "", "", ""});
  }
  for (const auto& g : gauges) {
    table.AddRow({g.name, "", FormatDouble(g.value, 3), "", "", ""});
  }
  for (const auto& h : histograms) {
    double mean = h.count == 0 ? 0 : h.sum / static_cast<double>(h.count);
    table.AddRow({h.name, std::to_string(h.count), FormatDouble(mean, 3),
                  FormatDouble(h.min, 3), FormatDouble(h.max, 3),
                  FormatDouble(h.sum, 3)});
  }
  return table.ToString();
}

// ---- Report: JSON --------------------------------------------------------

namespace {

void AppendJsonString(std::string* out, std::string_view s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

std::string JsonDouble(double v) {
  if (!std::isfinite(v)) return "0";
  // Round-trippable without drowning the file in digits.
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

}  // namespace

std::string Report::ToJson() const {
  std::string out = "{\n  \"spans\": [";
  for (size_t i = 0; i < spans.size(); ++i) {
    const SpanRecord& s = spans[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"name\": ";
    AppendJsonString(&out, s.name);
    out += ", \"start_ns\": " + std::to_string(s.start_ns) +
           ", \"duration_ns\": " + std::to_string(s.duration_ns) +
           ", \"parent\": " + std::to_string(s.parent) +
           ", \"depth\": " + std::to_string(s.depth) + "}";
  }
  out += spans.empty() ? "],\n" : "\n  ],\n";
  out += "  \"counters\": {";
  for (size_t i = 0; i < counters.size(); ++i) {
    out += i == 0 ? "\n    " : ",\n    ";
    AppendJsonString(&out, counters[i].name);
    out += ": " + std::to_string(counters[i].value);
  }
  out += counters.empty() ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  for (size_t i = 0; i < gauges.size(); ++i) {
    out += i == 0 ? "\n    " : ",\n    ";
    AppendJsonString(&out, gauges[i].name);
    out += ": " + JsonDouble(gauges[i].value);
  }
  out += gauges.empty() ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  for (size_t i = 0; i < histograms.size(); ++i) {
    const HistogramEntry& h = histograms[i];
    out += i == 0 ? "\n    " : ",\n    ";
    AppendJsonString(&out, h.name);
    out += ": {\"count\": " + std::to_string(h.count) +
           ", \"sum\": " + JsonDouble(h.sum) +
           ", \"min\": " + JsonDouble(h.min) +
           ", \"max\": " + JsonDouble(h.max) + "}";
  }
  out += histograms.empty() ? "},\n" : "\n  },\n";
  out += "  \"dropped_spans\": " + std::to_string(dropped_spans) + "\n}\n";
  return out;
}

// ---- JSON parsing (the subset ToJson emits) ------------------------------

namespace {

// Minimal recursive-descent JSON reader. Supports objects, arrays, strings,
// numbers, true/false/null — enough to round-trip Report::ToJson and to
// read hand-edited metric files.
class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  StatusOr<Report> ParseReport() {
    SkipWs();
    if (!Consume('{')) return Err("expected '{'");
    Report report;
    bool first = true;
    while (true) {
      SkipWs();
      if (Consume('}')) break;
      if (!first && !Consume(',')) return Err("expected ','");
      first = false;
      SkipWs();
      LEGODB_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWs();
      if (!Consume(':')) return Err("expected ':'");
      SkipWs();
      if (key == "spans") {
        LEGODB_RETURN_IF_ERROR(ParseSpans(&report));
      } else if (key == "counters") {
        LEGODB_RETURN_IF_ERROR(ParseCounters(&report));
      } else if (key == "gauges") {
        LEGODB_RETURN_IF_ERROR(ParseGauges(&report));
      } else if (key == "histograms") {
        LEGODB_RETURN_IF_ERROR(ParseHistograms(&report));
      } else if (key == "dropped_spans") {
        LEGODB_ASSIGN_OR_RETURN(double v, ParseNumber());
        report.dropped_spans = static_cast<int64_t>(v);
      } else {
        return Err("unknown report key '" + key + "'");
      }
    }
    SkipWs();
    if (pos_ != text_.size()) return Err("trailing characters");
    return report;
  }

 private:
  Status Err(const std::string& msg) const {
    return Status::InvalidArgument("obs report JSON: " + msg + " at offset " +
                                   std::to_string(pos_));
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  StatusOr<std::string> ParseString() {
    if (!Consume('"')) return Err("expected string");
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        char esc = text_[pos_++];
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return Err("bad \\u escape");
            int code = std::stoi(text_.substr(pos_, 4), nullptr, 16);
            pos_ += 4;
            out.push_back(static_cast<char>(code));  // BMP-ASCII subset
            break;
          }
          default:
            return Err("bad escape");
        }
      } else {
        out.push_back(c);
      }
    }
    return Err("unterminated string");
  }

  StatusOr<double> ParseNumber() {
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return Err("expected number");
    return std::strtod(text_.substr(start, pos_ - start).c_str(), nullptr);
  }

  StatusOr<int64_t> ParseInt() {
    LEGODB_ASSIGN_OR_RETURN(double v, ParseNumber());
    return static_cast<int64_t>(v);
  }

  Status ParseSpans(Report* report) {
    if (!Consume('[')) return Err("expected '['");
    bool first = true;
    while (true) {
      SkipWs();
      if (Consume(']')) return Status::OK();
      if (!first && !Consume(',')) return Err("expected ','");
      first = false;
      SkipWs();
      if (!Consume('{')) return Err("expected span object");
      SpanRecord span;
      bool first_field = true;
      while (true) {
        SkipWs();
        if (Consume('}')) break;
        if (!first_field && !Consume(',')) return Err("expected ','");
        first_field = false;
        SkipWs();
        LEGODB_ASSIGN_OR_RETURN(std::string key, ParseString());
        SkipWs();
        if (!Consume(':')) return Err("expected ':'");
        SkipWs();
        if (key == "name") {
          LEGODB_ASSIGN_OR_RETURN(span.name, ParseString());
        } else if (key == "start_ns") {
          LEGODB_ASSIGN_OR_RETURN(span.start_ns, ParseInt());
        } else if (key == "duration_ns") {
          LEGODB_ASSIGN_OR_RETURN(span.duration_ns, ParseInt());
        } else if (key == "parent") {
          LEGODB_ASSIGN_OR_RETURN(int64_t v, ParseInt());
          span.parent = static_cast<int>(v);
        } else if (key == "depth") {
          LEGODB_ASSIGN_OR_RETURN(int64_t v, ParseInt());
          span.depth = static_cast<int>(v);
        } else {
          return Err("unknown span key '" + key + "'");
        }
      }
      report->spans.push_back(std::move(span));
    }
  }

  Status ParseCounters(Report* report) {
    if (!Consume('{')) return Err("expected '{'");
    bool first = true;
    while (true) {
      SkipWs();
      if (Consume('}')) return Status::OK();
      if (!first && !Consume(',')) return Err("expected ','");
      first = false;
      SkipWs();
      Report::CounterEntry entry;
      LEGODB_ASSIGN_OR_RETURN(entry.name, ParseString());
      SkipWs();
      if (!Consume(':')) return Err("expected ':'");
      SkipWs();
      LEGODB_ASSIGN_OR_RETURN(entry.value, ParseInt());
      report->counters.push_back(std::move(entry));
    }
  }

  Status ParseGauges(Report* report) {
    if (!Consume('{')) return Err("expected '{'");
    bool first = true;
    while (true) {
      SkipWs();
      if (Consume('}')) return Status::OK();
      if (!first && !Consume(',')) return Err("expected ','");
      first = false;
      SkipWs();
      Report::GaugeEntry entry;
      LEGODB_ASSIGN_OR_RETURN(entry.name, ParseString());
      SkipWs();
      if (!Consume(':')) return Err("expected ':'");
      SkipWs();
      LEGODB_ASSIGN_OR_RETURN(entry.value, ParseNumber());
      report->gauges.push_back(std::move(entry));
    }
  }

  Status ParseHistograms(Report* report) {
    if (!Consume('{')) return Err("expected '{'");
    bool first = true;
    while (true) {
      SkipWs();
      if (Consume('}')) return Status::OK();
      if (!first && !Consume(',')) return Err("expected ','");
      first = false;
      SkipWs();
      Report::HistogramEntry entry;
      LEGODB_ASSIGN_OR_RETURN(entry.name, ParseString());
      SkipWs();
      if (!Consume(':')) return Err("expected ':'");
      SkipWs();
      if (!Consume('{')) return Err("expected histogram object");
      bool first_field = true;
      while (true) {
        SkipWs();
        if (Consume('}')) break;
        if (!first_field && !Consume(',')) return Err("expected ','");
        first_field = false;
        SkipWs();
        LEGODB_ASSIGN_OR_RETURN(std::string key, ParseString());
        SkipWs();
        if (!Consume(':')) return Err("expected ':'");
        SkipWs();
        if (key == "count") {
          LEGODB_ASSIGN_OR_RETURN(entry.count, ParseInt());
        } else if (key == "sum") {
          LEGODB_ASSIGN_OR_RETURN(entry.sum, ParseNumber());
        } else if (key == "min") {
          LEGODB_ASSIGN_OR_RETURN(entry.min, ParseNumber());
        } else if (key == "max") {
          LEGODB_ASSIGN_OR_RETURN(entry.max, ParseNumber());
        } else {
          return Err("unknown histogram key '" + key + "'");
        }
      }
      report->histograms.push_back(std::move(entry));
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<Report> ReportFromJson(const std::string& json) {
  return JsonParser(json).ParseReport();
}

}  // namespace legodb::obs
