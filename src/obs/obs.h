#ifndef LEGODB_OBS_OBS_H_
#define LEGODB_OBS_OBS_H_

// Header-light tracing + metrics library for the mapping engine.
//
// Four primitives, all recorded into an obs::Registry:
//  - Span: RAII scoped timer with parent/child nesting (per thread); the
//    finished spans form the trace of a run (search iterations, phases).
//  - Counter: monotonically increasing integer (candidates evaluated,
//    cache hits, rows produced).
//  - Gauge: last-value-wins double for computed results (calibration
//    correlations, q-error summaries).
//  - Histogram: count/sum/min/max aggregate of observed values (per-query
//    planning milliseconds, memo sizes).
//
// Instrumented code does not pass a registry around: it records against the
// thread-local *ambient* registry installed by obs::ScopedRegistry. When no
// registry is installed every primitive is a no-op (no clock reads, no
// locks), so instrumentation in hot paths costs nothing by default.
//
//   obs::Registry registry;
//   {
//     obs::ScopedRegistry scoped(&registry);
//     obs::Span span("search");             // nests under enclosing spans
//     obs::Count("search.cache_hits");      // ambient counter
//     obs::Observe("optimizer.memo_size", 42);
//     obs::ScopedTimer t("optimizer.plan_ms");  // histogram of elapsed ms
//   }
//   obs::Report report = registry.Snapshot();
//   std::cout << report.SpanTable() << report.MetricsTable();
//   std::string json = report.ToJson();     // round-trips via ReportFromJson
//
// Registry, Counter, Gauge and Histogram are thread-safe; span parent/child
// nesting is tracked per thread (spans opened on different threads attach
// to that thread's innermost open span, or become roots).

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/status.h"

namespace legodb::obs {

// Monotonic clock, nanoseconds.
int64_t NowNanos();

// --- Histogram bucket layout ----------------------------------------------
//
// Every histogram shares one fixed log-spaced bucket layout, so bucket
// boundaries are stable across runs and histograms from different runs can
// be merged/compared bucket by bucket:
//
//   bucket 0                          values <= 10^kHistogramMinExp (and
//                                     everything non-positive / NaN)
//   bucket i in [1, kSpan]            (bound(i-1), bound(i)] with
//                                     bound(i) = 10^(kMinExp + i/kPerDecade)
//   bucket kSpan+1 (= kNumBuckets-1)  values > 10^kHistogramMaxExp
//
// Eight buckets per decade gives a worst-case relative quantile error of
// 10^(1/8) ~ 1.33x over the 10^-9 .. 10^9 range (sub-nanosecond to ~11 days
// when the unit is milliseconds).
inline constexpr int kHistogramBucketsPerDecade = 8;
inline constexpr int kHistogramMinExp = -9;
inline constexpr int kHistogramMaxExp = 9;
inline constexpr int kHistogramNumBuckets =
    (kHistogramMaxExp - kHistogramMinExp) * kHistogramBucketsPerDecade + 2;

// Bucket index for a value, in [0, kHistogramNumBuckets).
int HistogramBucketIndex(double value);
// Inclusive upper bound of a bucket (+infinity for the overflow bucket).
double HistogramBucketUpperBound(int bucket);
// Exclusive lower bound of a bucket (0 for the underflow bucket).
double HistogramBucketLowerBound(int bucket);

class Counter {
 public:
  void Add(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

class Histogram {
 public:
  struct Snapshot {
    int64_t count = 0;
    double sum = 0;
    double min = 0;
    double max = 0;
    // Sparse nonzero bucket counts, sorted by bucket index (see the fixed
    // layout above).
    std::vector<std::pair<int, int64_t>> buckets;
    double Mean() const { return count == 0 ? 0 : sum / count; }
  };

  void Observe(double value);
  Snapshot snapshot() const;

 private:
  mutable std::mutex mu_;
  int64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
  std::array<int64_t, kHistogramNumBuckets> buckets_{};
};

// Last-value-wins metric for computed results (calibration correlations,
// q-error summaries): unlike a Counter it holds a double, unlike a
// Histogram it keeps only the most recent value.
class Gauge {
 public:
  void Set(double value) {
    std::lock_guard<std::mutex> lock(mu_);
    value_ = value;
  }
  double value() const {
    std::lock_guard<std::mutex> lock(mu_);
    return value_;
  }

 private:
  mutable std::mutex mu_;
  double value_ = 0;
};

// One finished (or still-open at snapshot time) span.
struct SpanRecord {
  std::string name;
  int64_t start_ns = 0;      // relative to the registry's epoch
  int64_t duration_ns = -1;  // -1 while the span is open
  int parent = -1;           // index into the span list; -1 for roots
  int depth = 0;
  int tid = 0;               // registry-local id of the owning thread
};

// Immutable snapshot of a registry: the trace plus all metrics. Exportable
// as JSON (machines) or aligned tables (humans).
struct Report {
  struct CounterEntry {
    std::string name;
    int64_t value = 0;
  };
  struct BucketCount {
    int bucket = 0;
    int64_t count = 0;
  };
  struct HistogramEntry {
    std::string name;
    int64_t count = 0;
    double sum = 0;
    double min = 0;
    double max = 0;
    // Sparse nonzero bucket counts, sorted by bucket index.
    std::vector<BucketCount> buckets;

    // Quantile estimate from the log-spaced buckets, clamped to [min, max]
    // (so a single observation is exact and q=0/1 return min/max). `q` is
    // clamped to [0, 1]; returns 0 on an empty histogram. Reports parsed
    // from pre-bucket JSON (no bucket data) fall back to linear
    // interpolation between min and max.
    double Quantile(double q) const;
  };
  struct GaugeEntry {
    std::string name;
    double value = 0;
  };

  std::vector<SpanRecord> spans;
  std::vector<CounterEntry> counters;      // sorted by name
  std::vector<GaugeEntry> gauges;          // sorted by name
  std::vector<HistogramEntry> histograms;  // sorted by name
  // Free-form string annotations (workload, git revision, build type, ...)
  // and named raw-JSON sub-documents (EXPLAIN ANALYZE blocks, merged bench
  // reports), both in insertion order.
  std::vector<std::pair<std::string, std::string>> meta;
  std::vector<std::pair<std::string, std::string>> blobs;
  int64_t dropped_spans = 0;               // spans beyond the registry cap

  std::string ToJson() const;
  // Chrome-trace ("traceEvents") JSON loadable by chrome://tracing and
  // Perfetto: one complete slice per span on its owning thread's track,
  // still-open spans closed at the report's end time.
  std::string ToChromeTrace() const;
  // Indented span tree with start/duration columns.
  std::string SpanTable() const;
  // Counters then histograms (count/mean/min/max/sum).
  std::string MetricsTable() const;

  // Lookup helpers; zero / nullptr when absent.
  int64_t CounterValue(std::string_view name) const;
  double GaugeValue(std::string_view name) const;
  const HistogramEntry* FindHistogram(std::string_view name) const;
  // Total duration (ms) of all spans with this name.
  double SpanTotalMillis(std::string_view name) const;

  // Meta annotations: last SetMeta for a key wins; MetaValue returns ""
  // when absent.
  void SetMeta(std::string_view key, std::string_view value);
  std::string MetaValue(std::string_view key) const;

  // Attaches a named raw-JSON document, emitted verbatim under "blobs".
  // `raw_json` must be a valid JSON value (see ValidateJsonText); an
  // invalid blob would corrupt ToJson output, so it is stored as a quoted
  // error string instead. Last AddBlob for a name wins.
  void AddBlob(std::string_view name, std::string raw_json);
  const std::string* FindBlob(std::string_view name) const;
};

// Validates that `text` is exactly one well-formed JSON value (with
// optional surrounding whitespace). Used to gate Report blobs and to check
// exporter output in tests and tooling.
Status ValidateJsonText(const std::string& text);

// Parses a report previously produced by Report::ToJson.
StatusOr<Report> ReportFromJson(const std::string& json);

class Registry {
 public:
  Registry() : epoch_ns_(NowNanos()) {}
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // Finds or creates; returned pointers stay valid for the registry's life.
  Counter* counter(std::string_view name);
  Gauge* gauge(std::string_view name);
  Histogram* histogram(std::string_view name);

  Report Snapshot() const;

  // Caps the recorded trace; further spans are counted as dropped. Guards
  // against unbounded growth when spans are (mis)used in per-tuple paths.
  void set_max_spans(size_t n) { max_spans_ = n; }

  // Span bookkeeping (used by obs::Span). Returns -1 when at the cap.
  int BeginSpan(const char* name, int parent, int depth, int64_t start_ns);
  void EndSpan(int index, int64_t end_ns);

 private:
  const int64_t epoch_ns_;
  mutable std::mutex mu_;
  size_t max_spans_ = 65536;
  int64_t dropped_spans_ = 0;
  // Registry-local ids for span-owning threads, in first-span order (the
  // Chrome-trace exporter groups slices by these).
  std::map<std::thread::id, int> thread_ids_;
  std::vector<SpanRecord> spans_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

// The calling thread's ambient registry (nullptr when none installed).
Registry* Current();

// Installs `registry` as the ambient registry for this thread, restoring
// the previous one on destruction. Scopes nest.
class ScopedRegistry {
 public:
  explicit ScopedRegistry(Registry* registry);
  ~ScopedRegistry();
  ScopedRegistry(const ScopedRegistry&) = delete;
  ScopedRegistry& operator=(const ScopedRegistry&) = delete;

 private:
  Registry* prev_;
};

// RAII scoped timer recording one SpanRecord, nested under the thread's
// innermost open span. `name` must outlive the span (string literals).
class Span {
 public:
  explicit Span(const char* name) : Span(name, Current()) {}
  Span(const char* name, Registry* registry);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  Registry* registry_;
  int index_ = -1;
  int64_t start_ns_ = 0;
};

// Ambient conveniences: no-ops when no registry is installed.
inline void Count(std::string_view name, int64_t delta = 1) {
  if (Registry* r = Current()) r->counter(name)->Add(delta);
}
inline void Observe(std::string_view name, double value) {
  if (Registry* r = Current()) r->histogram(name)->Observe(value);
}
inline void SetGauge(std::string_view name, double value) {
  if (Registry* r = Current()) r->gauge(name)->Set(value);
}

// RAII timer observing elapsed milliseconds into an ambient histogram —
// cheaper than a Span for hot paths called thousands of times (no trace
// entry, just an aggregate).
class ScopedTimer {
 public:
  explicit ScopedTimer(const char* histogram_name)
      : registry_(Current()),
        name_(histogram_name),
        start_ns_(registry_ ? NowNanos() : 0) {}
  ~ScopedTimer() {
    if (registry_) {
      registry_->histogram(name_)->Observe(
          static_cast<double>(NowNanos() - start_ns_) / 1e6);
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Registry* registry_;
  const char* name_;
  int64_t start_ns_;
};

}  // namespace legodb::obs

#endif  // LEGODB_OBS_OBS_H_
