#include "storage/buffer_pool.h"

#include <cstring>
#include <limits>

#include "common/check.h"
#include "obs/obs.h"

namespace legodb::store {

BufferPool::BufferPool(Pager* pager, size_t capacity_pages)
    : pager_(pager), capacity_(capacity_pages == 0 ? 1 : capacity_pages) {}

BufferPool::~BufferPool() {
  // Every guard must be released before the pool dies; a pinned frame here
  // is a use-after-free in waiting.
  for (const auto& [page, frame] : frames_) {
    LEGODB_CHECK(frame->pins == 0, "BufferPool destroyed with pinned pages");
  }
}

BufferPool::PageGuard& BufferPool::PageGuard::operator=(
    PageGuard&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    frame_ = other.frame_;
    page_ = other.page_;
    faulted_ = other.faulted_;
    other.pool_ = nullptr;
    other.frame_ = nullptr;
  }
  return *this;
}

char* BufferPool::PageGuard::data() {
  return static_cast<Frame*>(frame_)->data.get();
}

const char* BufferPool::PageGuard::data() const {
  return static_cast<Frame*>(frame_)->data.get();
}

void BufferPool::PageGuard::MarkDirty() {
  std::lock_guard<std::mutex> lock(pool_->mu_);
  static_cast<Frame*>(frame_)->dirty = true;
}

void BufferPool::PageGuard::Release() {
  if (frame_ != nullptr) {
    pool_->Unpin(frame_);
    pool_ = nullptr;
    frame_ = nullptr;
  }
}

void BufferPool::Unpin(void* frame) {
  std::lock_guard<std::mutex> lock(mu_);
  Frame* f = static_cast<Frame*>(frame);
  LEGODB_CHECK(f->pins > 0, "BufferPool: unpin of an unpinned frame");
  --f->pins;
  if (f->pins == 0) --stats_.pinned;
}

Status BufferPool::EvictOneLocked() {
  // Scan for the least-recently-used unpinned frame. Pools are small (the
  // capacity knob is the whole point), so O(resident) is fine.
  Frame* victim = nullptr;
  uint64_t oldest = std::numeric_limits<uint64_t>::max();
  for (const auto& [page, frame] : frames_) {
    if (frame->pins > 0) continue;
    if (frame->last_use < oldest) {
      oldest = frame->last_use;
      victim = frame.get();
    }
  }
  if (victim == nullptr) {
    return Status::Unavailable(
        "buffer pool exhausted: all " + std::to_string(capacity_) +
        " frames pinned");
  }
  if (victim->dirty) {
    LEGODB_RETURN_IF_ERROR(pager_->Write(victim->page, victim->data.get()));
    stats_.bytes_written += pager_->page_size();
  }
  ++stats_.evictions;
  --stats_.resident;
  obs::Count("storage.pool.evictions");
  frames_.erase(victim->page);
  return Status::OK();
}

StatusOr<BufferPool::PageGuard> BufferPool::Pin(uint32_t page) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = frames_.find(page);
  if (it != frames_.end()) {
    Frame* f = it->second.get();
    f->last_use = ++tick_;
    if (f->pins == 0) ++stats_.pinned;
    ++f->pins;
    ++stats_.hits;
    obs::Count("storage.pool.hits");
    return PageGuard(this, f, page, /*faulted=*/false);
  }
  while (frames_.size() >= capacity_) {
    LEGODB_RETURN_IF_ERROR(EvictOneLocked());
  }
  auto frame = std::make_unique<Frame>();
  frame->page = page;
  frame->data = std::make_unique<char[]>(pager_->page_size());
  Status read = pager_->Read(page, frame->data.get());
  if (!read.ok()) return read;  // frame dropped: pool state unchanged
  frame->last_use = ++tick_;
  frame->pins = 1;
  Frame* f = frame.get();
  frames_.emplace(page, std::move(frame));
  ++stats_.faults;
  stats_.bytes_read += pager_->page_size();
  ++stats_.resident;
  ++stats_.pinned;
  obs::Count("storage.pool.faults");
  return PageGuard(this, f, page, /*faulted=*/true);
}

StatusOr<BufferPool::PageGuard> BufferPool::PinNew(uint32_t page) {
  std::lock_guard<std::mutex> lock(mu_);
  LEGODB_CHECK(frames_.find(page) == frames_.end(),
               "BufferPool::PinNew: page already resident");
  while (frames_.size() >= capacity_) {
    LEGODB_RETURN_IF_ERROR(EvictOneLocked());
  }
  auto frame = std::make_unique<Frame>();
  frame->page = page;
  frame->data = std::make_unique<char[]>(pager_->page_size());
  std::memset(frame->data.get(), 0, pager_->page_size());
  frame->last_use = ++tick_;
  frame->pins = 1;
  frame->dirty = true;
  Frame* f = frame.get();
  frames_.emplace(page, std::move(frame));
  ++stats_.resident;
  ++stats_.pinned;
  return PageGuard(this, f, page, /*faulted=*/false);
}

Status BufferPool::FlushAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [page, frame] : frames_) {
    if (!frame->dirty) continue;
    LEGODB_RETURN_IF_ERROR(pager_->Write(page, frame->data.get()));
    stats_.bytes_written += pager_->page_size();
    frame->dirty = false;
  }
  return Status::OK();
}

void BufferPool::Discard(uint32_t page) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = frames_.find(page);
  if (it == frames_.end()) return;
  LEGODB_CHECK(it->second->pins == 0,
               "BufferPool::Discard: page still pinned");
  --stats_.resident;
  frames_.erase(it);
}

BufferPool::Stats BufferPool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace legodb::store
