#ifndef LEGODB_STORAGE_DATABASE_H_
#define LEGODB_STORAGE_DATABASE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "relational/catalog.h"

namespace legodb::store {

using Row = std::vector<Value>;

// An equality (hash) index over one column of a StoredTable. Immutable once
// built — built under the table's registry lock and published as a const
// pointer, so any number of concurrent queries may probe it without further
// synchronization.
class HashIndex {
 public:
  HashIndex(const std::vector<Row>& rows, int column_index);

  // Row indices whose indexed column equals `key`; empty vector when none.
  const std::vector<size_t>& Find(const Value& key) const {
    auto it = map_.find(key);
    return it == map_.end() ? kEmpty : it->second;
  }

  size_t distinct_keys() const { return map_.size(); }

 private:
  static const std::vector<size_t> kEmpty;
  std::unordered_map<Value, std::vector<size_t>, ValueHash> map_;
};

// A columnar shadow of one StoredTable column: the per-row values of the
// column laid out contiguously, so vectorized operators can run tight
// per-column loops instead of chasing one heap-allocated Row per tuple.
// Immutable once built (same publication contract as HashIndex).
//
// Three parallel views, all indexed by row position:
//  - null_mask(): 1 byte per row, nonzero = SQL NULL;
//  - ints(): the int64 payload, meaningful only when typed_int() — i.e.
//    every non-null value in the column is an integer (catalog drift or
//    mixed-kind data degrade gracefully to the generic view);
//  - values(): a Value pointer per row (into the owning table's rows), the
//    generic fallback for strings and mixed columns.
class ColumnVector {
 public:
  ColumnVector(const std::vector<Row>& rows, int column_index);

  size_t size() const { return vals_.size(); }
  bool typed_int() const { return typed_int_; }

  bool is_null(size_t i) const { return nulls_[i] != 0; }
  const uint8_t* null_mask() const { return nulls_.data(); }
  const int64_t* ints() const { return ints_.data(); }
  const Value& value(size_t i) const { return *vals_[i]; }
  const Value* const* values() const { return vals_.data(); }

 private:
  bool typed_int_ = true;
  std::vector<uint8_t> nulls_;
  std::vector<int64_t> ints_;
  std::vector<const Value*> vals_;
};

// An in-memory heap table with hash indexes, laid out per the catalog's
// column order. Loading (Insert/RemoveLastRows) must be single-threaded and
// finish before query serving starts; after that, any number of threads may
// read rows and fetch/build indexes or column vectors concurrently — both
// registries are internally synchronized, and published HashIndex /
// ColumnVector pointers stay valid until the next mutation.
class StoredTable {
 public:
  explicit StoredTable(rel::Table meta) : meta_(std::move(meta)) {}
  StoredTable(StoredTable&& other) noexcept
      : meta_(std::move(other.meta_)),
        rows_(std::move(other.rows_)),
        indexes_(std::move(other.indexes_)),
        columns_(std::move(other.columns_)) {}

  const rel::Table& meta() const { return meta_; }
  const std::vector<Row>& rows() const { return rows_; }
  size_t row_count() const { return rows_.size(); }

  // Appends a row; must have one value per column. Invalidates indexes and
  // column vectors.
  void Insert(Row row);
  void RemoveLastRows(size_t n);  // shredder rollback support

  // Returns the index on `column`, building it on first use (thread-safe).
  // Internal error when the column does not exist in this table.
  StatusOr<const HashIndex*> GetOrBuildIndex(const std::string& column);

  // Returns the columnar shadow of `column`, building it on first use
  // (thread-safe). Internal error when the column does not exist.
  StatusOr<const ColumnVector*> GetOrBuildColumn(const std::string& column);

  // Legacy convenience used by the reconstructor and tests: builds (or
  // reuses) the index, aborting on unknown columns.
  void EnsureIndex(const std::string& column);
  bool HasIndex(const std::string& column) const;
  // Row indices whose `column` equals `key` (nullptr when no index built;
  // pointer to an empty vector when the key is absent).
  const std::vector<size_t>* Probe(const std::string& column,
                                   const Value& key) const;

 private:
  rel::Table meta_;
  std::vector<Row> rows_;
  mutable std::mutex index_mu_;
  std::map<std::string, std::unique_ptr<HashIndex>> indexes_;
  std::map<std::string, std::unique_ptr<ColumnVector>> columns_;
};

// A relational database instance for one storage configuration.
class Database {
 public:
  // Creates empty tables for every table in the catalog.
  explicit Database(const rel::Catalog& catalog);

  // Movable (the atomic id counter would otherwise delete the default);
  // move only while single-threaded, i.e. before serving starts.
  Database(Database&& other) noexcept
      : tables_(std::move(other.tables_)),
        next_id_(other.next_id_.load(std::memory_order_relaxed)) {}

  StoredTable* FindTable(const std::string& name);
  const StoredTable* FindTable(const std::string& name) const;
  StoredTable& GetTable(const std::string& name);
  const StoredTable& GetTable(const std::string& name) const;

  // Builds the primary-key and foreign-key indexes of every table up front,
  // so concurrent queries never pay (or contend on) a first-use build.
  // Call after loading, before serving.
  Status PrewarmIndexes();

  // Builds the columnar shadow of every column of every table up front —
  // the column-vector counterpart of PrewarmIndexes(). Without this, the
  // first post-startup queries build shadows lazily under the per-table
  // registry mutex, serializing concurrent sessions behind one another.
  Status PrewarmColumns();

  // Fresh unique id for a new row (shared across tables, like the paper's
  // element node ids). Atomic: a Database is documented as shared, and the
  // migrator's shadow loads may run concurrently with other writers of
  // *other* databases — a plain increment here was a latent lost-update
  // bug for any two threads shredding into one database.
  int64_t NextId() { return next_id_.fetch_add(1, std::memory_order_relaxed); }

  // Total number of rows across all tables.
  size_t TotalRows() const;

  std::vector<std::string> table_names() const;

 private:
  std::map<std::string, StoredTable> tables_;
  std::atomic<int64_t> next_id_{1};
};

}  // namespace legodb::store

#endif  // LEGODB_STORAGE_DATABASE_H_
