#ifndef LEGODB_STORAGE_DATABASE_H_
#define LEGODB_STORAGE_DATABASE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "relational/catalog.h"
#include "storage/backend.h"

namespace legodb::store {

using Row = std::vector<Value>;

class ColumnVector;

// An equality (hash) index over one column of a StoredTable. Immutable once
// built — built under the table's registry lock and published as a const
// pointer, so any number of concurrent queries may probe it without further
// synchronization.
class HashIndex {
 public:
  HashIndex(const std::vector<Row>& rows, int column_index);
  // Builds from a columnar shadow — the paged backend's path, where rows
  // live on pages rather than in a Row vector.
  explicit HashIndex(const ColumnVector& column);

  // Row indices whose indexed column equals `key`; empty vector when none.
  const std::vector<size_t>& Find(const Value& key) const {
    auto it = map_.find(key);
    return it == map_.end() ? kEmpty : it->second;
  }

  size_t distinct_keys() const { return map_.size(); }

 private:
  static const std::vector<size_t> kEmpty;
  std::unordered_map<Value, std::vector<size_t>, ValueHash> map_;
};

// A columnar shadow of one StoredTable column: the per-row values of the
// column laid out contiguously, so vectorized operators can run tight
// per-column loops instead of chasing one heap-allocated Row per tuple.
// Immutable once built (same publication contract as HashIndex).
//
// Three parallel views, all indexed by row position:
//  - null_mask(): 1 byte per row, nonzero = SQL NULL;
//  - ints(): the int64 payload, meaningful only when typed_int() — i.e.
//    every non-null value in the column is an integer (catalog drift or
//    mixed-kind data degrade gracefully to the generic view);
//  - values(): a Value pointer per row — into the owning table's rows for
//    the memory backend, or into this vector's own deserialized copies for
//    the paged backend (the owning constructor).
class ColumnVector {
 public:
  ColumnVector(const std::vector<Row>& rows, int column_index);
  // Owning variant: takes the column's values by value (deserialized from
  // pages) and keeps them alive inside the shadow itself.
  explicit ColumnVector(std::vector<Value> owned);

  size_t size() const { return vals_.size(); }
  bool typed_int() const { return typed_int_; }

  bool is_null(size_t i) const { return nulls_[i] != 0; }
  const uint8_t* null_mask() const { return nulls_.data(); }
  const int64_t* ints() const { return ints_.data(); }
  const Value& value(size_t i) const { return *vals_[i]; }
  const Value* const* values() const { return vals_.data(); }

 private:
  void Build();  // fills nulls_/ints_/vals_ from owned_

  bool typed_int_ = true;
  std::vector<Value> owned_;  // paged backend only; empty otherwise
  std::vector<uint8_t> nulls_;
  std::vector<int64_t> ints_;
  std::vector<const Value*> vals_;
};

// Page traffic attributable to one table access: how many buffer-pool
// faults (seeks) it caused and how many bytes those faults read. The memory
// backend always reports zeros — its "IO" stays the modeled per-row charge
// the executor has always used.
struct TableIo {
  double seeks = 0;
  double bytes = 0;
};

// A table laid out per the catalog's column order, with hash indexes and
// columnar shadows. Two physical forms behind one interface:
//
//  - memory (backend == nullptr or MemoryBackend): rows in a heap
//    std::vector<Row>, directly addressable via rows();
//  - paged: rows serialized into fixed-size slotted pages behind the
//    database's buffer pool; a RowLocator (page, slot) per row. rows() is
//    then illegal — readers go through ReadRow()/column shadows, and charge
//    real page traffic via FetchRowRange()/FetchRows().
//
// Loading (Insert/RemoveLastRows) must be single-threaded and finish before
// query serving starts; after that, any number of threads may read rows and
// fetch/build indexes or column vectors concurrently — both registries are
// internally synchronized, and published HashIndex / ColumnVector pointers
// stay valid until the next mutation. Every mutation bumps
// mutation_count(), which prepared plans record and re-check at Open().
class StoredTable {
 public:
  explicit StoredTable(rel::Table meta) : meta_(std::move(meta)) {}
  StoredTable(rel::Table meta, StorageBackend* backend)
      : meta_(std::move(meta)), backend_(backend) {}
  StoredTable(StoredTable&& other) noexcept
      : meta_(std::move(other.meta_)),
        backend_(other.backend_),
        rows_(std::move(other.rows_)),
        locators_(std::move(other.locators_)),
        pages_(std::move(other.pages_)),
        mutations_(other.mutations_.load(std::memory_order_relaxed)),
        indexes_(std::move(other.indexes_)),
        columns_(std::move(other.columns_)) {}

  const rel::Table& meta() const { return meta_; }
  bool paged() const { return backend_ != nullptr && backend_->paged(); }
  BufferPool* pool() const {
    return backend_ == nullptr ? nullptr : backend_->pool();
  }
  Pager* pager() const {
    return backend_ == nullptr ? nullptr : backend_->pager();
  }

  // Direct row access — memory backend only (aborts on a paged table; use
  // ReadRow / column shadows there).
  const std::vector<Row>& rows() const;
  size_t row_count() const {
    return paged() ? locators_.size() : rows_.size();
  }

  // Monotonic mutation counter: bumped by every Insert/RemoveLastRows.
  // Prepared plans snapshot it and refuse to run when it has moved.
  uint64_t mutation_count() const {
    return mutations_.load(std::memory_order_acquire);
  }

  // Appends a row; must have one value per column. Invalidates indexes and
  // column vectors. On the paged backend this serializes the row into the
  // tail slotted page (allocating a fresh page when it does not fit) and
  // can fail on real IO — memory inserts always succeed.
  Status Insert(Row row);
  // Removes the n most recently inserted rows (shredder rollback support).
  Status RemoveLastRows(size_t n);

  // Materializes row `i` as a Row (copy). Works on both backends; the paged
  // read pins the row's page (IO charged to the pool, not attributed — use
  // FetchRows for attribution).
  StatusOr<Row> ReadRow(size_t i) const;

  // Touches the pages holding rows [begin, end) in order, returning the
  // page traffic this call actually caused (pool faults only — resident
  // pages are free). The sequential-scan IO path.
  StatusOr<TableIo> FetchRowRange(size_t begin, size_t end) const;
  // Same for an explicit row-index list (negative entries are skipped —
  // they are unbound lanes). The index-probe IO path.
  StatusOr<TableIo> FetchRows(const int32_t* rows, size_t n) const;

  // Returns the index on `column`, building it on first use (thread-safe).
  // Internal error when the column does not exist in this table.
  StatusOr<const HashIndex*> GetOrBuildIndex(const std::string& column);

  // Returns the columnar shadow of `column`, building it on first use
  // (thread-safe). Internal error when the column does not exist.
  StatusOr<const ColumnVector*> GetOrBuildColumn(const std::string& column);

  // Legacy convenience used by the reconstructor and tests: builds (or
  // reuses) the index, aborting on unknown columns.
  void EnsureIndex(const std::string& column);
  bool HasIndex(const std::string& column) const;
  // Row indices whose `column` equals `key` (nullptr when no index built;
  // pointer to an empty vector when the key is absent).
  const std::vector<size_t>* Probe(const std::string& column,
                                   const Value& key) const;

 private:
  struct RowLocator {
    uint32_t page = 0;
    uint16_t slot = 0;
  };

  // Paged-backend internals (all assume paged()).
  Status InsertPaged(const Row& row);
  StatusOr<Row> ReadRowPaged(size_t i) const;
  StatusOr<const ColumnVector*> GetOrBuildColumnLocked(
      const std::string& column);

  rel::Table meta_;
  StorageBackend* backend_ = nullptr;  // owned by the Database

  std::vector<Row> rows_;  // memory backend only

  // Paged backend: one locator per row, plus the owned pages in order (the
  // tail page is the insertion target).
  std::vector<RowLocator> locators_;
  std::vector<uint32_t> pages_;

  std::atomic<uint64_t> mutations_{0};

  mutable std::mutex index_mu_;
  std::map<std::string, std::unique_ptr<HashIndex>> indexes_;
  std::map<std::string, std::unique_ptr<ColumnVector>> columns_;
};

// A relational database instance for one storage configuration.
class Database {
 public:
  // Creates empty tables for every table in the catalog, on the storage
  // backend `options` describes (in-memory heap tables by default). A paged
  // backend that cannot create its backing file aborts — callers wanting to
  // handle that probe with PagedBackend::Open first.
  explicit Database(const rel::Catalog& catalog,
                    StorageOptions options = StorageOptions());

  // Movable (the atomic id counter would otherwise delete the default);
  // move only while single-threaded, i.e. before serving starts.
  Database(Database&& other) noexcept
      : options_(std::move(other.options_)),
        backend_(std::move(other.backend_)),
        tables_(std::move(other.tables_)),
        next_id_(other.next_id_.load(std::memory_order_relaxed)) {}

  const StorageOptions& storage_options() const { return options_; }
  bool paged() const { return backend_->paged(); }
  // Paged machinery, for metrics and spill paths (nullptr on memory).
  BufferPool* buffer_pool() const { return backend_->pool(); }
  Pager* pager() const { return backend_->pager(); }

  // Write-back + durability barrier (no-op for the memory backend). Called
  // by the shredder after loading.
  Status Flush() { return backend_->Flush(); }

  StoredTable* FindTable(const std::string& name);
  const StoredTable* FindTable(const std::string& name) const;
  StoredTable& GetTable(const std::string& name);
  const StoredTable& GetTable(const std::string& name) const;

  // Builds the primary-key and foreign-key indexes of every table up front,
  // so concurrent queries never pay (or contend on) a first-use build.
  // Call after loading, before serving.
  Status PrewarmIndexes();

  // Builds the columnar shadow of every column of every table up front —
  // the column-vector counterpart of PrewarmIndexes(). Without this, the
  // first post-startup queries build shadows lazily under the per-table
  // registry mutex, serializing concurrent sessions behind one another.
  Status PrewarmColumns();

  // Fresh unique id for a new row (shared across tables, like the paper's
  // element node ids). Atomic: a Database is documented as shared, and the
  // migrator's shadow loads may run concurrently with other writers of
  // *other* databases — a plain increment here was a latent lost-update
  // bug for any two threads shredding into one database.
  int64_t NextId() { return next_id_.fetch_add(1, std::memory_order_relaxed); }

  // Total number of rows across all tables.
  size_t TotalRows() const;

  std::vector<std::string> table_names() const;

 private:
  StorageOptions options_;
  // Declared before tables_: StoredTables point into the backend, so it
  // must be destroyed after them.
  std::unique_ptr<StorageBackend> backend_;
  std::map<std::string, StoredTable> tables_;
  std::atomic<int64_t> next_id_{1};
};

}  // namespace legodb::store

#endif  // LEGODB_STORAGE_DATABASE_H_
