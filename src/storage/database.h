#ifndef LEGODB_STORAGE_DATABASE_H_
#define LEGODB_STORAGE_DATABASE_H_

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "relational/catalog.h"

namespace legodb::store {

using Row = std::vector<Value>;

// An in-memory heap table with optional hash indexes, laid out per the
// catalog's column order.
class StoredTable {
 public:
  explicit StoredTable(rel::Table meta) : meta_(std::move(meta)) {}

  const rel::Table& meta() const { return meta_; }
  const std::vector<Row>& rows() const { return rows_; }
  size_t row_count() const { return rows_.size(); }

  // Appends a row; must have one value per column.
  void Insert(Row row);
  void RemoveLastRows(size_t n);  // shredder rollback support

  // Builds (or reuses) a hash index on `column`; invalidated by inserts.
  void EnsureIndex(const std::string& column);
  bool HasIndex(const std::string& column) const;
  // Row indices whose `column` equals `key` (empty if none / no index).
  const std::vector<size_t>* Probe(const std::string& column,
                                   const Value& key) const;

 private:
  rel::Table meta_;
  std::vector<Row> rows_;
  std::map<std::string,
           std::unordered_map<Value, std::vector<size_t>, ValueHash>>
      indexes_;
};

// A relational database instance for one storage configuration.
class Database {
 public:
  // Creates empty tables for every table in the catalog.
  explicit Database(const rel::Catalog& catalog);

  StoredTable* FindTable(const std::string& name);
  const StoredTable* FindTable(const std::string& name) const;
  StoredTable& GetTable(const std::string& name);
  const StoredTable& GetTable(const std::string& name) const;

  // Fresh unique id for a new row (shared across tables, like the paper's
  // element node ids).
  int64_t NextId() { return next_id_++; }

  // Total number of rows across all tables.
  size_t TotalRows() const;

  std::vector<std::string> table_names() const;

 private:
  std::map<std::string, StoredTable> tables_;
  int64_t next_id_ = 1;
};

}  // namespace legodb::store

#endif  // LEGODB_STORAGE_DATABASE_H_
