#include "storage/database.h"

#include "common/check.h"

namespace legodb::store {

void StoredTable::Insert(Row row) {
  LEGODB_CHECK(row.size() == meta_.columns.size(),
               "StoredTable::Insert: row arity mismatch");
  rows_.push_back(std::move(row));
  indexes_.clear();  // indexes are rebuilt lazily after loading
}

void StoredTable::RemoveLastRows(size_t n) {
  LEGODB_CHECK(n <= rows_.size(),
               "StoredTable::RemoveLastRows: more rows than stored");
  rows_.resize(rows_.size() - n);
  indexes_.clear();
}

void StoredTable::EnsureIndex(const std::string& column) {
  if (indexes_.count(column)) return;
  int idx = meta_.ColumnIndex(column);
  LEGODB_CHECK(idx >= 0, "EnsureIndex: unknown column");
  auto& index = indexes_[column];
  for (size_t i = 0; i < rows_.size(); ++i) {
    const Value& v = rows_[i][idx];
    if (v.is_null()) continue;
    index[v].push_back(i);
  }
}

bool StoredTable::HasIndex(const std::string& column) const {
  return indexes_.count(column) > 0;
}

const std::vector<size_t>* StoredTable::Probe(const std::string& column,
                                              const Value& key) const {
  auto table_it = indexes_.find(column);
  if (table_it == indexes_.end()) return nullptr;
  auto it = table_it->second.find(key);
  if (it == table_it->second.end()) {
    static const std::vector<size_t> kEmpty;
    return &kEmpty;
  }
  return &it->second;
}

Database::Database(const rel::Catalog& catalog) {
  for (const auto& name : catalog.table_names()) {
    tables_.emplace(name, StoredTable(catalog.GetTable(name)));
  }
}

StoredTable* Database::FindTable(const std::string& name) {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : &it->second;
}

const StoredTable* Database::FindTable(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : &it->second;
}

StoredTable& Database::GetTable(const std::string& name) {
  StoredTable* t = FindTable(name);
  LEGODB_CHECK(t != nullptr, "Database::GetTable: unknown table");
  return *t;
}

const StoredTable& Database::GetTable(const std::string& name) const {
  const StoredTable* t = FindTable(name);
  LEGODB_CHECK(t != nullptr, "Database::GetTable: unknown table");
  return *t;
}

size_t Database::TotalRows() const {
  size_t total = 0;
  for (const auto& [name, table] : tables_) total += table.row_count();
  return total;
}

std::vector<std::string> Database::table_names() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  return names;
}

}  // namespace legodb::store
