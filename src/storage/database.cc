#include "storage/database.h"

#include "common/check.h"

namespace legodb::store {

const std::vector<size_t> HashIndex::kEmpty;

HashIndex::HashIndex(const std::vector<Row>& rows, int column_index) {
  for (size_t i = 0; i < rows.size(); ++i) {
    const Value& v = rows[i][static_cast<size_t>(column_index)];
    if (v.is_null()) continue;
    map_[v].push_back(i);
  }
}

ColumnVector::ColumnVector(const std::vector<Row>& rows, int column_index) {
  size_t col = static_cast<size_t>(column_index);
  nulls_.resize(rows.size());
  ints_.resize(rows.size());
  vals_.resize(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    const Value& v = rows[i][col];
    vals_[i] = &v;
    if (v.is_null()) {
      nulls_[i] = 1;
    } else if (v.is_int()) {
      ints_[i] = v.as_int();
    } else {
      typed_int_ = false;
    }
  }
  if (!typed_int_) {
    ints_.clear();
    ints_.shrink_to_fit();
  }
}

void StoredTable::Insert(Row row) {
  LEGODB_CHECK(row.size() == meta_.columns.size(),
               "StoredTable::Insert: row arity mismatch");
  rows_.push_back(std::move(row));
  std::lock_guard<std::mutex> lock(index_mu_);
  indexes_.clear();  // indexes/columns are rebuilt on first use after loading
  columns_.clear();
}

void StoredTable::RemoveLastRows(size_t n) {
  LEGODB_CHECK(n <= rows_.size(),
               "StoredTable::RemoveLastRows: more rows than stored");
  rows_.resize(rows_.size() - n);
  std::lock_guard<std::mutex> lock(index_mu_);
  indexes_.clear();
  columns_.clear();
}

StatusOr<const HashIndex*> StoredTable::GetOrBuildIndex(
    const std::string& column) {
  std::lock_guard<std::mutex> lock(index_mu_);
  auto it = indexes_.find(column);
  if (it != indexes_.end()) return static_cast<const HashIndex*>(it->second.get());
  int idx = meta_.ColumnIndex(column);
  if (idx < 0) {
    return Status::Internal("no column '" + column + "' in table '" +
                            meta_.name + "' to index");
  }
  auto built = std::make_unique<HashIndex>(rows_, idx);
  const HashIndex* result = built.get();
  indexes_.emplace(column, std::move(built));
  return result;
}

StatusOr<const ColumnVector*> StoredTable::GetOrBuildColumn(
    const std::string& column) {
  std::lock_guard<std::mutex> lock(index_mu_);
  auto it = columns_.find(column);
  if (it != columns_.end()) {
    return static_cast<const ColumnVector*>(it->second.get());
  }
  int idx = meta_.ColumnIndex(column);
  if (idx < 0) {
    return Status::Internal("no column '" + column + "' in table '" +
                            meta_.name + "' to vectorize");
  }
  auto built = std::make_unique<ColumnVector>(rows_, idx);
  const ColumnVector* result = built.get();
  columns_.emplace(column, std::move(built));
  return result;
}

void StoredTable::EnsureIndex(const std::string& column) {
  StatusOr<const HashIndex*> index = GetOrBuildIndex(column);
  LEGODB_CHECK(index.ok(), "EnsureIndex: unknown column");
}

bool StoredTable::HasIndex(const std::string& column) const {
  std::lock_guard<std::mutex> lock(index_mu_);
  return indexes_.count(column) > 0;
}

const std::vector<size_t>* StoredTable::Probe(const std::string& column,
                                              const Value& key) const {
  const HashIndex* index = nullptr;
  {
    std::lock_guard<std::mutex> lock(index_mu_);
    auto it = indexes_.find(column);
    if (it == indexes_.end()) return nullptr;
    index = it->second.get();
  }
  return &index->Find(key);
}

Database::Database(const rel::Catalog& catalog) {
  for (const auto& name : catalog.table_names()) {
    tables_.emplace(name, StoredTable(catalog.GetTable(name)));
  }
}

StoredTable* Database::FindTable(const std::string& name) {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : &it->second;
}

const StoredTable* Database::FindTable(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : &it->second;
}

StoredTable& Database::GetTable(const std::string& name) {
  StoredTable* t = FindTable(name);
  LEGODB_CHECK(t != nullptr, "Database::GetTable: unknown table");
  return *t;
}

const StoredTable& Database::GetTable(const std::string& name) const {
  const StoredTable* t = FindTable(name);
  LEGODB_CHECK(t != nullptr, "Database::GetTable: unknown table");
  return *t;
}

Status Database::PrewarmIndexes() {
  for (auto& [name, table] : tables_) {
    if (!table.meta().key_column.empty()) {
      LEGODB_RETURN_IF_ERROR(
          table.GetOrBuildIndex(table.meta().key_column).status());
    }
    for (const auto& fk : table.meta().foreign_keys) {
      LEGODB_RETURN_IF_ERROR(table.GetOrBuildIndex(fk.column).status());
    }
  }
  return Status::OK();
}

Status Database::PrewarmColumns() {
  for (auto& [name, table] : tables_) {
    for (const auto& col : table.meta().columns) {
      LEGODB_RETURN_IF_ERROR(table.GetOrBuildColumn(col.name).status());
    }
  }
  return Status::OK();
}

size_t Database::TotalRows() const {
  size_t total = 0;
  for (const auto& [name, table] : tables_) total += table.row_count();
  return total;
}

std::vector<std::string> Database::table_names() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  return names;
}

}  // namespace legodb::store
