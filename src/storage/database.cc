#include "storage/database.h"

#include <cstring>

#include "common/check.h"

namespace legodb::store {

namespace {

// --- Slotted pages -------------------------------------------------------
//
// Page layout (all offsets in bytes, u16 little-endian via memcpy):
//
//   [0..2)   u16 nslots     number of rows on the page
//   [2..4)   u16 free_off   start of free space (payload grows up from 4)
//   [4..free_off)           row payloads, in slot order
//   ...free space...
//   [page_size - 4*nslots .. page_size)   slot directory, growing DOWN:
//        slot i lives at page_size - 4*(i+1) as {u16 off, u16 len}
//
// A row fits iff free_off + len <= page_size - 4*(nslots+1).
//
// Row payload: per value, a 1-byte tag — 0 = NULL, 1 = int64 (8 bytes),
// 2 = string (u32 length + bytes).

constexpr size_t kPageHeaderBytes = 4;
constexpr size_t kSlotBytes = 4;

uint16_t LoadU16(const char* p) {
  uint16_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

void StoreU16(char* p, uint16_t v) { std::memcpy(p, &v, sizeof(v)); }

uint32_t LoadU32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

void StoreU32(char* p, uint32_t v) { std::memcpy(p, &v, sizeof(v)); }

size_t SerializedSize(const Row& row) {
  size_t n = 0;
  for (const Value& v : row) {
    n += 1;  // tag
    if (v.is_int()) {
      n += 8;
    } else if (v.is_string()) {
      n += 4 + v.as_string().size();
    }
  }
  return n;
}

void SerializeRow(const Row& row, char* out) {
  char* p = out;
  for (const Value& v : row) {
    if (v.is_null()) {
      *p++ = 0;
    } else if (v.is_int()) {
      *p++ = 1;
      int64_t x = v.as_int();
      std::memcpy(p, &x, sizeof(x));
      p += sizeof(x);
    } else {
      *p++ = 2;
      const std::string& s = v.as_string();
      StoreU32(p, static_cast<uint32_t>(s.size()));
      p += 4;
      std::memcpy(p, s.data(), s.size());
      p += s.size();
    }
  }
}

Status DeserializeRow(const char* data, size_t len, size_t ncols, Row* out) {
  out->clear();
  out->reserve(ncols);
  const char* p = data;
  const char* end = data + len;
  for (size_t c = 0; c < ncols; ++c) {
    if (p >= end) return Status::Internal("slotted row truncated (tag)");
    uint8_t tag = static_cast<uint8_t>(*p++);
    switch (tag) {
      case 0:
        out->push_back(Value::MakeNull());
        break;
      case 1: {
        if (end - p < 8) return Status::Internal("slotted row truncated (int)");
        int64_t x;
        std::memcpy(&x, p, sizeof(x));
        p += sizeof(x);
        out->push_back(Value::Int(x));
        break;
      }
      case 2: {
        if (end - p < 4) {
          return Status::Internal("slotted row truncated (string length)");
        }
        uint32_t n = LoadU32(p);
        p += 4;
        if (static_cast<size_t>(end - p) < n) {
          return Status::Internal("slotted row truncated (string payload)");
        }
        out->push_back(Value::Str(std::string(p, n)));
        p += n;
        break;
      }
      default:
        return Status::Internal("slotted row: bad value tag " +
                                std::to_string(tag));
    }
  }
  if (p != end) {
    return Status::Internal("slotted row has trailing bytes");
  }
  return Status::OK();
}

// Locates slot `slot` on a pinned page; validates directory bounds.
Status SlotExtent(const char* page, size_t page_size, uint16_t slot,
                  uint16_t* off, uint16_t* len) {
  uint16_t nslots = LoadU16(page);
  if (slot >= nslots) {
    return Status::Internal("slotted page: slot " + std::to_string(slot) +
                            " out of range (nslots=" + std::to_string(nslots) +
                            ")");
  }
  const char* entry = page + page_size - kSlotBytes * (slot + 1);
  *off = LoadU16(entry);
  *len = LoadU16(entry + 2);
  if (static_cast<size_t>(*off) + static_cast<size_t>(*len) > page_size) {
    return Status::Internal("slotted page: slot extent out of bounds");
  }
  return Status::OK();
}

}  // namespace

const std::vector<size_t> HashIndex::kEmpty;

HashIndex::HashIndex(const std::vector<Row>& rows, int column_index) {
  for (size_t i = 0; i < rows.size(); ++i) {
    const Value& v = rows[i][static_cast<size_t>(column_index)];
    if (v.is_null()) continue;
    map_[v].push_back(i);
  }
}

HashIndex::HashIndex(const ColumnVector& column) {
  for (size_t i = 0; i < column.size(); ++i) {
    if (column.is_null(i)) continue;
    map_[column.value(i)].push_back(i);
  }
}

ColumnVector::ColumnVector(const std::vector<Row>& rows, int column_index) {
  size_t col = static_cast<size_t>(column_index);
  nulls_.resize(rows.size());
  ints_.resize(rows.size());
  vals_.resize(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    const Value& v = rows[i][col];
    vals_[i] = &v;
    if (v.is_null()) {
      nulls_[i] = 1;
    } else if (v.is_int()) {
      ints_[i] = v.as_int();
    } else {
      typed_int_ = false;
    }
  }
  if (!typed_int_) {
    ints_.clear();
    ints_.shrink_to_fit();
  }
}

ColumnVector::ColumnVector(std::vector<Value> owned)
    : owned_(std::move(owned)) {
  Build();
}

void ColumnVector::Build() {
  nulls_.resize(owned_.size());
  ints_.resize(owned_.size());
  vals_.resize(owned_.size());
  for (size_t i = 0; i < owned_.size(); ++i) {
    const Value& v = owned_[i];
    vals_[i] = &v;
    if (v.is_null()) {
      nulls_[i] = 1;
    } else if (v.is_int()) {
      ints_[i] = v.as_int();
    } else {
      typed_int_ = false;
    }
  }
  if (!typed_int_) {
    ints_.clear();
    ints_.shrink_to_fit();
  }
}

const std::vector<Row>& StoredTable::rows() const {
  LEGODB_CHECK(!paged(),
               "StoredTable::rows(): direct row access on a paged table "
               "(use ReadRow / column shadows)");
  return rows_;
}

Status StoredTable::Insert(Row row) {
  LEGODB_CHECK(row.size() == meta_.columns.size(),
               "StoredTable::Insert: row arity mismatch");
  if (paged()) {
    LEGODB_RETURN_IF_ERROR(InsertPaged(row));
  } else {
    rows_.push_back(std::move(row));
  }
  mutations_.fetch_add(1, std::memory_order_acq_rel);
  std::lock_guard<std::mutex> lock(index_mu_);
  indexes_.clear();  // indexes/columns are rebuilt on first use after loading
  columns_.clear();
  return Status::OK();
}

Status StoredTable::InsertPaged(const Row& row) {
  BufferPool* bp = pool();
  Pager* pg = pager();
  const size_t page_size = pg->page_size();
  const size_t len = SerializedSize(row);
  // A fresh page must hold the header, one slot entry, and the payload.
  if (len > page_size - kPageHeaderBytes - kSlotBytes || len > 65535) {
    return Status::Internal("row of " + std::to_string(len) +
                            " bytes does not fit a " +
                            std::to_string(page_size) + "-byte page (table '" +
                            meta_.name + "')");
  }

  BufferPool::PageGuard guard;
  uint32_t page_id = 0;
  if (!pages_.empty()) {
    page_id = pages_.back();
    LEGODB_ASSIGN_OR_RETURN(guard, bp->Pin(page_id));
    uint16_t nslots = LoadU16(guard.data());
    uint16_t free_off = LoadU16(guard.data() + 2);
    if (static_cast<size_t>(free_off) + len >
        page_size - kSlotBytes * (static_cast<size_t>(nslots) + 1)) {
      guard.Release();  // tail page is full; fall through to a fresh page
    }
  }
  if (!guard.valid()) {
    LEGODB_ASSIGN_OR_RETURN(page_id, pg->Allocate());
    auto pinned = bp->PinNew(page_id);
    if (!pinned.ok()) {
      pg->Free(page_id);
      return pinned.status();
    }
    guard = std::move(*pinned);
    StoreU16(guard.data(), 0);
    StoreU16(guard.data() + 2, kPageHeaderBytes);
    pages_.push_back(page_id);
  }

  char* page = guard.data();
  uint16_t nslots = LoadU16(page);
  uint16_t free_off = LoadU16(page + 2);
  SerializeRow(row, page + free_off);
  char* entry = page + page_size - kSlotBytes * (nslots + 1);
  StoreU16(entry, free_off);
  StoreU16(entry + 2, static_cast<uint16_t>(len));
  StoreU16(page, static_cast<uint16_t>(nslots + 1));
  StoreU16(page + 2, static_cast<uint16_t>(free_off + len));
  guard.MarkDirty();

  locators_.push_back(RowLocator{page_id, nslots});
  return Status::OK();
}

Status StoredTable::RemoveLastRows(size_t n) {
  if (paged()) {
    LEGODB_CHECK(n <= locators_.size(),
                 "StoredTable::RemoveLastRows: more rows than stored");
    BufferPool* bp = pool();
    for (size_t k = 0; k < n; ++k) {
      RowLocator loc = locators_.back();
      LEGODB_ASSIGN_OR_RETURN(BufferPool::PageGuard guard, bp->Pin(loc.page));
      char* page = guard.data();
      uint16_t nslots = LoadU16(page);
      LEGODB_CHECK(nslots == loc.slot + 1,
                   "StoredTable::RemoveLastRows: non-LIFO slot state");
      const char* entry =
          page + pager()->page_size() - kSlotBytes * (loc.slot + 1);
      uint16_t off = LoadU16(entry);
      StoreU16(page, static_cast<uint16_t>(nslots - 1));
      StoreU16(page + 2, off);  // reclaim the payload space
      guard.MarkDirty();
      locators_.pop_back();
      if (nslots - 1 == 0 && !pages_.empty() && pages_.back() == loc.page) {
        guard.Release();
        bp->Discard(loc.page);
        pager()->Free(loc.page);
        pages_.pop_back();
      }
    }
  } else {
    LEGODB_CHECK(n <= rows_.size(),
                 "StoredTable::RemoveLastRows: more rows than stored");
    rows_.resize(rows_.size() - n);
  }
  mutations_.fetch_add(1, std::memory_order_acq_rel);
  std::lock_guard<std::mutex> lock(index_mu_);
  indexes_.clear();
  columns_.clear();
  return Status::OK();
}

StatusOr<Row> StoredTable::ReadRow(size_t i) const {
  if (!paged()) {
    if (i >= rows_.size()) {
      return Status::Internal("ReadRow: row index out of range");
    }
    return rows_[i];
  }
  return ReadRowPaged(i);
}

StatusOr<Row> StoredTable::ReadRowPaged(size_t i) const {
  if (i >= locators_.size()) {
    return Status::Internal("ReadRow: row index out of range");
  }
  const RowLocator loc = locators_[i];
  LEGODB_ASSIGN_OR_RETURN(BufferPool::PageGuard guard, pool()->Pin(loc.page));
  uint16_t off = 0;
  uint16_t len = 0;
  LEGODB_RETURN_IF_ERROR(
      SlotExtent(guard.data(), pager()->page_size(), loc.slot, &off, &len));
  Row row;
  LEGODB_RETURN_IF_ERROR(
      DeserializeRow(guard.data() + off, len, meta_.columns.size(), &row));
  return row;
}

StatusOr<TableIo> StoredTable::FetchRowRange(size_t begin, size_t end) const {
  TableIo io;
  if (!paged()) return io;
  BufferPool* bp = pool();
  const double page_bytes = static_cast<double>(pager()->page_size());
  uint32_t last_page = 0;
  bool have_last = false;
  BufferPool::PageGuard guard;  // keeps the current page pinned
  for (size_t i = begin; i < end && i < locators_.size(); ++i) {
    const uint32_t page = locators_[i].page;
    if (have_last && page == last_page) continue;
    guard.Release();  // before pinning the next page: a 1-frame pool must work
    LEGODB_ASSIGN_OR_RETURN(guard, bp->Pin(page));
    if (guard.faulted()) {
      io.seeks += 1;
      io.bytes += page_bytes;
    }
    last_page = page;
    have_last = true;
  }
  return io;
}

StatusOr<TableIo> StoredTable::FetchRows(const int32_t* rows, size_t n) const {
  TableIo io;
  if (!paged()) return io;
  BufferPool* bp = pool();
  const double page_bytes = static_cast<double>(pager()->page_size());
  uint32_t last_page = 0;
  bool have_last = false;
  BufferPool::PageGuard guard;
  for (size_t i = 0; i < n; ++i) {
    if (rows[i] < 0) continue;  // unbound lane
    const size_t r = static_cast<size_t>(rows[i]);
    if (r >= locators_.size()) {
      return Status::Internal("FetchRows: row index out of range");
    }
    const uint32_t page = locators_[r].page;
    if (have_last && page == last_page) continue;
    guard.Release();
    LEGODB_ASSIGN_OR_RETURN(guard, bp->Pin(page));
    if (guard.faulted()) {
      io.seeks += 1;
      io.bytes += page_bytes;
    }
    last_page = page;
    have_last = true;
  }
  return io;
}

StatusOr<const HashIndex*> StoredTable::GetOrBuildIndex(
    const std::string& column) {
  std::lock_guard<std::mutex> lock(index_mu_);
  auto it = indexes_.find(column);
  if (it != indexes_.end()) return static_cast<const HashIndex*>(it->second.get());
  int idx = meta_.ColumnIndex(column);
  if (idx < 0) {
    return Status::Internal("no column '" + column + "' in table '" +
                            meta_.name + "' to index");
  }
  std::unique_ptr<HashIndex> built;
  if (paged()) {
    // Paged tables index via the columnar shadow (one sequential page scan,
    // cached for every later reader).
    LEGODB_ASSIGN_OR_RETURN(const ColumnVector* col,
                            GetOrBuildColumnLocked(column));
    built = std::make_unique<HashIndex>(*col);
  } else {
    built = std::make_unique<HashIndex>(rows_, idx);
  }
  const HashIndex* result = built.get();
  indexes_.emplace(column, std::move(built));
  return result;
}

StatusOr<const ColumnVector*> StoredTable::GetOrBuildColumn(
    const std::string& column) {
  std::lock_guard<std::mutex> lock(index_mu_);
  return GetOrBuildColumnLocked(column);
}

StatusOr<const ColumnVector*> StoredTable::GetOrBuildColumnLocked(
    const std::string& column) {
  auto it = columns_.find(column);
  if (it != columns_.end()) {
    return static_cast<const ColumnVector*>(it->second.get());
  }
  int idx = meta_.ColumnIndex(column);
  if (idx < 0) {
    return Status::Internal("no column '" + column + "' in table '" +
                            meta_.name + "' to vectorize");
  }
  std::unique_ptr<ColumnVector> built;
  if (paged()) {
    // Sequential page scan: deserialize each row once, keep only the
    // requested column. The shadow owns the values it exposes.
    std::vector<Value> owned;
    owned.reserve(locators_.size());
    Row scratch;
    for (size_t i = 0; i < locators_.size(); ++i) {
      const RowLocator loc = locators_[i];
      LEGODB_ASSIGN_OR_RETURN(BufferPool::PageGuard guard,
                              pool()->Pin(loc.page));
      uint16_t off = 0;
      uint16_t len = 0;
      LEGODB_RETURN_IF_ERROR(SlotExtent(guard.data(), pager()->page_size(),
                                        loc.slot, &off, &len));
      LEGODB_RETURN_IF_ERROR(DeserializeRow(guard.data() + off, len,
                                            meta_.columns.size(), &scratch));
      owned.push_back(std::move(scratch[static_cast<size_t>(idx)]));
    }
    built = std::make_unique<ColumnVector>(std::move(owned));
  } else {
    built = std::make_unique<ColumnVector>(rows_, idx);
  }
  const ColumnVector* result = built.get();
  columns_.emplace(column, std::move(built));
  return result;
}

void StoredTable::EnsureIndex(const std::string& column) {
  StatusOr<const HashIndex*> index = GetOrBuildIndex(column);
  LEGODB_CHECK(index.ok(), "EnsureIndex: unknown column");
}

bool StoredTable::HasIndex(const std::string& column) const {
  std::lock_guard<std::mutex> lock(index_mu_);
  return indexes_.count(column) > 0;
}

const std::vector<size_t>* StoredTable::Probe(const std::string& column,
                                              const Value& key) const {
  const HashIndex* index = nullptr;
  {
    std::lock_guard<std::mutex> lock(index_mu_);
    auto it = indexes_.find(column);
    if (it == indexes_.end()) return nullptr;
    index = it->second.get();
  }
  return &index->Find(key);
}

Database::Database(const rel::Catalog& catalog, StorageOptions options)
    : options_(std::move(options)) {
  StatusOr<std::unique_ptr<StorageBackend>> backend = OpenBackend(options_);
  LEGODB_CHECK(backend.ok(), "Database: cannot open storage backend");
  backend_ = std::move(*backend);
  for (const auto& name : catalog.table_names()) {
    tables_.emplace(name, StoredTable(catalog.GetTable(name), backend_.get()));
  }
}

StoredTable* Database::FindTable(const std::string& name) {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : &it->second;
}

const StoredTable* Database::FindTable(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : &it->second;
}

StoredTable& Database::GetTable(const std::string& name) {
  StoredTable* t = FindTable(name);
  LEGODB_CHECK(t != nullptr, "Database::GetTable: unknown table");
  return *t;
}

const StoredTable& Database::GetTable(const std::string& name) const {
  const StoredTable* t = FindTable(name);
  LEGODB_CHECK(t != nullptr, "Database::GetTable: unknown table");
  return *t;
}

Status Database::PrewarmIndexes() {
  for (auto& [name, table] : tables_) {
    if (!table.meta().key_column.empty()) {
      LEGODB_RETURN_IF_ERROR(
          table.GetOrBuildIndex(table.meta().key_column).status());
    }
    for (const auto& fk : table.meta().foreign_keys) {
      LEGODB_RETURN_IF_ERROR(table.GetOrBuildIndex(fk.column).status());
    }
  }
  return Status::OK();
}

Status Database::PrewarmColumns() {
  for (auto& [name, table] : tables_) {
    for (const auto& col : table.meta().columns) {
      LEGODB_RETURN_IF_ERROR(table.GetOrBuildColumn(col.name).status());
    }
  }
  return Status::OK();
}

size_t Database::TotalRows() const {
  size_t total = 0;
  for (const auto& [name, table] : tables_) total += table.row_count();
  return total;
}

std::vector<std::string> Database::table_names() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  return names;
}

}  // namespace legodb::store
