#include "storage/backend.h"

namespace legodb::store {

StatusOr<std::unique_ptr<PagedBackend>> PagedBackend::Open(
    const StorageOptions& options) {
  Pager::Options popts;
  popts.path = options.path;
  popts.page_size = options.page_size;
  LEGODB_ASSIGN_OR_RETURN(std::unique_ptr<Pager> pager, Pager::Open(popts));
  size_t pool_pages = options.pool_pages == 0 ? 1 : options.pool_pages;
  return std::unique_ptr<PagedBackend>(
      new PagedBackend(std::move(pager), pool_pages));
}

StatusOr<std::unique_ptr<StorageBackend>> OpenBackend(
    const StorageOptions& options) {
  if (options.backend == StorageOptions::Backend::kMemory) {
    return std::unique_ptr<StorageBackend>(new MemoryBackend());
  }
  LEGODB_ASSIGN_OR_RETURN(std::unique_ptr<PagedBackend> paged,
                          PagedBackend::Open(options));
  return std::unique_ptr<StorageBackend>(std::move(paged));
}

}  // namespace legodb::store
