#ifndef LEGODB_STORAGE_BACKEND_H_
#define LEGODB_STORAGE_BACKEND_H_

// Storage backend selection for store::Database.
//
// The paper prices configurations in seeks and bytes; this repo long
// validated those estimates against proxy counters over RAM-resident
// tables. StorageBackend makes the physical layer swappable per database:
//
//  - MemoryBackend: the original heap tables (std::vector<Row>); zero IO,
//    modeled stats. The default, and the bit-identity reference.
//  - PagedBackend: fixed-size slotted pages in a backing file behind a
//    pin-count BufferPool with LRU eviction and write-back. Row reads pin
//    real pages; pool faults are real pread traffic, which feeds
//    ExecStats seeks/bytes and the calibration gauges.
//
// Both backends store the same logical rows in the same order, so every
// executor result is bit-identical across them — the equivalence suites
// run against both.

#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/pager.h"

namespace legodb::store {

struct StorageOptions {
  enum class Backend { kMemory, kPaged };
  Backend backend = Backend::kMemory;
  // Paged backend knobs.
  size_t page_size = 8192;  // bytes per slotted page (512 .. 65536)
  size_t pool_pages = 256;  // buffer pool capacity, in pages
  std::string path;         // backing file; empty = anonymous temp file

  static StorageOptions Memory() { return StorageOptions{}; }
  static StorageOptions Paged(size_t page_size = 8192,
                              size_t pool_pages = 256) {
    StorageOptions o;
    o.backend = Backend::kPaged;
    o.page_size = page_size;
    o.pool_pages = pool_pages;
    return o;
  }
};

// One database's physical storage. Owns whatever machinery the backend
// needs (file, buffer pool); StoredTables hold non-owning pointers into it,
// so the backend must outlive them (Database declares it first).
class StorageBackend {
 public:
  virtual ~StorageBackend() = default;

  virtual StorageOptions::Backend kind() const = 0;
  bool paged() const { return kind() == StorageOptions::Backend::kPaged; }

  // Write-back + durability barrier; no-op for the memory backend.
  virtual Status Flush() = 0;

  // Paged machinery (nullptr for the memory backend).
  virtual BufferPool* pool() { return nullptr; }
  virtual Pager* pager() { return nullptr; }
};

class MemoryBackend : public StorageBackend {
 public:
  StorageOptions::Backend kind() const override {
    return StorageOptions::Backend::kMemory;
  }
  Status Flush() override { return Status::OK(); }
};

class PagedBackend : public StorageBackend {
 public:
  static StatusOr<std::unique_ptr<PagedBackend>> Open(
      const StorageOptions& options);

  StorageOptions::Backend kind() const override {
    return StorageOptions::Backend::kPaged;
  }
  Status Flush() override {
    LEGODB_RETURN_IF_ERROR(pool_->FlushAll());
    return pager_->Sync();
  }
  BufferPool* pool() override { return pool_.get(); }
  Pager* pager() override { return pager_.get(); }

 private:
  PagedBackend(std::unique_ptr<Pager> pager, size_t pool_pages)
      : pager_(std::move(pager)),
        pool_(std::make_unique<BufferPool>(pager_.get(), pool_pages)) {}

  std::unique_ptr<Pager> pager_;
  std::unique_ptr<BufferPool> pool_;
};

// Builds the backend described by `options`. Creating the paged backend's
// file can fail; the memory backend cannot.
StatusOr<std::unique_ptr<StorageBackend>> OpenBackend(
    const StorageOptions& options);

}  // namespace legodb::store

#endif  // LEGODB_STORAGE_BACKEND_H_
