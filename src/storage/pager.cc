#include "storage/pager.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

#include "common/failpoint.h"
#include "obs/obs.h"

namespace legodb::store {

namespace {

std::string ErrnoMessage(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

StatusOr<std::unique_ptr<Pager>> Pager::Open(const Options& options) {
  if (options.page_size < 512 || options.page_size > 65536) {
    return Status::InvalidArgument(
        "pager page_size must be in [512, 65536], got " +
        std::to_string(options.page_size));
  }
  int fd = -1;
  std::string path = options.path;
  bool unlink_on_close = false;
  if (path.empty()) {
    // Anonymous temp file: created, then unlinked immediately so the fd is
    // the only reference and the kernel reclaims it on close/crash.
    const char* tmpdir = std::getenv("TMPDIR");
    std::string tmpl = std::string(tmpdir != nullptr ? tmpdir : "/tmp") +
                       "/legodb_pager_XXXXXX";
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    fd = mkstemp(buf.data());
    if (fd < 0) return Status::Internal(ErrnoMessage("mkstemp"));
    ::unlink(buf.data());
  } else {
    fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) {
      return Status::Internal(ErrnoMessage(("open " + path).c_str()));
    }
  }
  return std::unique_ptr<Pager>(
      new Pager(fd, std::move(path), unlink_on_close, options.page_size));
}

Pager::~Pager() {
  if (fd_ >= 0) ::close(fd_);
  if (unlink_on_close_ && !path_.empty()) ::unlink(path_.c_str());
}

uint32_t Pager::page_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return page_count_;
}

StatusOr<uint32_t> Pager::Allocate() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!free_list_.empty()) {
    uint32_t page = free_list_.back();
    free_list_.pop_back();
    return page;
  }
  uint32_t page = page_count_;
  // Extend the file so a read of a never-written page sees zeros instead
  // of a short read.
  if (::ftruncate(fd_, static_cast<off_t>(page_count_ + 1) *
                           static_cast<off_t>(page_size_)) != 0) {
    return Status::Internal(ErrnoMessage("ftruncate"));
  }
  ++page_count_;
  return page;
}

void Pager::Free(uint32_t page) {
  std::lock_guard<std::mutex> lock(mu_);
  free_list_.push_back(page);
}

Status Pager::Read(uint32_t page, char* buf) {
  LEGODB_FAILPOINT("storage.read");
  ssize_t n = ::pread(fd_, buf, page_size_,
                      static_cast<off_t>(page) * static_cast<off_t>(page_size_));
  if (n < 0) return Status::Internal(ErrnoMessage("pread"));
  if (static_cast<size_t>(n) != page_size_) {
    return Status::Internal("short read: page " + std::to_string(page) +
                            " returned " + std::to_string(n) + " of " +
                            std::to_string(page_size_) + " bytes");
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.pages_read;
  }
  obs::Count("storage.pager.reads");
  return Status::OK();
}

Status Pager::Write(uint32_t page, const char* data) {
  LEGODB_FAILPOINT("storage.write");
  ssize_t n = ::pwrite(fd_, data, page_size_,
                       static_cast<off_t>(page) * static_cast<off_t>(page_size_));
  if (n < 0) return Status::Internal(ErrnoMessage("pwrite"));
  if (static_cast<size_t>(n) != page_size_) {
    return Status::Internal("partial write: page " + std::to_string(page) +
                            " wrote " + std::to_string(n) + " of " +
                            std::to_string(page_size_) + " bytes");
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.pages_written;
  }
  obs::Count("storage.pager.writes");
  return Status::OK();
}

Status Pager::Sync() {
  LEGODB_FAILPOINT("storage.flush");
  if (::fsync(fd_) != 0) return Status::Internal(ErrnoMessage("fsync"));
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.syncs;
  }
  return Status::OK();
}

Pager::Stats Pager::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace legodb::store
