#ifndef LEGODB_STORAGE_SHREDDER_H_
#define LEGODB_STORAGE_SHREDDER_H_

#include "common/status.h"
#include "mapping/mapping.h"
#include "storage/database.h"
#include "xml/dom.h"

namespace legodb::store {

// Shreds an XML document into relational rows per the fixed mapping
// rel(ps): one row per named-type instance, node ids as keys, parent ids as
// foreign keys, scalar content in the mapped columns (Section 3.1's
// "corresponding mapping from XML documents to databases").
//
// Matching is greedy with local backtracking over optionals and union
// alternatives, which is complete for the (unambiguous) content models the
// transformations produce. Values are stored canonicalized (integer text as
// integers), matching the DOM evaluator.
//
// Multiple documents may be shredded into the same database; each gets
// fresh node ids. Nothing is inserted if the document does not match.
Status ShredDocument(const xml::Document& doc, const map::Mapping& mapping,
                     Database* db);

}  // namespace legodb::store

#endif  // LEGODB_STORAGE_SHREDDER_H_
