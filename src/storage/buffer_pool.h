#ifndef LEGODB_STORAGE_BUFFER_POOL_H_
#define LEGODB_STORAGE_BUFFER_POOL_H_

// A pin-count buffer pool over a Pager: a bounded set of in-memory page
// frames with LRU eviction of unpinned frames and write-back of dirty ones.
//
// Pin(page) returns a RAII PageGuard holding the frame's pin count; the
// frame cannot be evicted while any guard on it lives (the invariant the
// pager tests assert). A pin that has to read the page from disk is a
// *fault* — the measurable unit of IO the cost model's seek/byte estimates
// are validated against: every fault is one pager read of page_size bytes,
// and PageGuard::faulted() lets callers charge exactly the IO their access
// caused (the pool-wide counters aggregate across concurrent queries and
// so cannot attribute).
//
// Thread-safe: one mutex guards the frame table; frame payloads are stable
// heap blocks (pins outlive map rebalancing). Concurrent readers of one
// page share the frame. Mutation (MarkDirty + writes into data()) is only
// legal while loading is single-threaded, matching StoredTable's contract.

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>

#include "common/status.h"
#include "storage/pager.h"

namespace legodb::store {

class BufferPool {
 public:
  struct Stats {
    uint64_t hits = 0;        // pins served from a resident frame
    uint64_t faults = 0;      // pins that read the page from disk
    uint64_t evictions = 0;   // frames dropped to make room
    uint64_t bytes_read = 0;  // faults * page_size
    uint64_t bytes_written = 0;  // write-back traffic (evictions + flushes)
    size_t resident = 0;      // frames currently held
    size_t pinned = 0;        // frames with at least one pin
  };

  // `capacity_pages` >= 1; the pool never holds more frames than that.
  BufferPool(Pager* pager, size_t capacity_pages);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  class PageGuard {
   public:
    PageGuard() = default;
    PageGuard(PageGuard&& other) noexcept { *this = std::move(other); }
    PageGuard& operator=(PageGuard&& other) noexcept;
    ~PageGuard() { Release(); }

    PageGuard(const PageGuard&) = delete;
    PageGuard& operator=(const PageGuard&) = delete;

    bool valid() const { return frame_ != nullptr; }
    uint32_t page_id() const { return page_; }
    // True when this pin caused a disk read (a pool fault).
    bool faulted() const { return faulted_; }

    char* data();
    const char* data() const;
    // Marks the frame dirty: it is written back on eviction or FlushAll.
    void MarkDirty();

    void Release();

   private:
    friend class BufferPool;
    PageGuard(BufferPool* pool, void* frame, uint32_t page, bool faulted)
        : pool_(pool), frame_(frame), page_(page), faulted_(faulted) {}

    BufferPool* pool_ = nullptr;
    void* frame_ = nullptr;
    uint32_t page_ = 0;
    bool faulted_ = false;
  };

  // Pins `page`, reading it from the pager if not resident. Fails with
  // Unavailable when every frame is pinned (capacity exhausted), or with
  // the pager's error when the fault's read — or an eviction's write-back —
  // fails (the requested page is then *not* resident: clean recovery).
  StatusOr<PageGuard> Pin(uint32_t page);

  // Pins a freshly allocated page without reading it: the frame starts
  // zeroed and dirty. For pages whose on-disk content is garbage.
  StatusOr<PageGuard> PinNew(uint32_t page);

  // Writes every dirty frame back (frames stay resident and clean).
  Status FlushAll();

  // Drops `page`'s frame without write-back (content is abandoned — used
  // when the page itself is freed). No-op if not resident; the page must
  // not be pinned.
  void Discard(uint32_t page);

  Stats stats() const;
  size_t capacity() const { return capacity_; }
  Pager* pager() const { return pager_; }

 private:
  struct Frame {
    uint32_t page = 0;
    std::unique_ptr<char[]> data;
    int pins = 0;
    bool dirty = false;
    uint64_t last_use = 0;  // LRU tick
  };

  // All three run under mu_.
  Status EvictOneLocked();
  void Unpin(void* frame);
  friend class PageGuard;

  Pager* pager_;
  const size_t capacity_;

  mutable std::mutex mu_;
  std::map<uint32_t, std::unique_ptr<Frame>> frames_;
  uint64_t tick_ = 0;
  Stats stats_;
};

}  // namespace legodb::store

#endif  // LEGODB_STORAGE_BUFFER_POOL_H_
