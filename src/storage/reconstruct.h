#ifndef LEGODB_STORAGE_RECONSTRUCT_H_
#define LEGODB_STORAGE_RECONSTRUCT_H_

#include "common/status.h"
#include "mapping/mapping.h"
#include "storage/database.h"
#include "xml/dom.h"

namespace legodb::store {

// Rebuilds the XML content of one type instance (row) and appends it to
// `parent` — the inverse of shredding. Children are fetched via foreign-key
// indexes and emitted in node-id order, which is document order because the
// shredder assigns ids in document order. Builds FK/key indexes on demand
// (hence the non-const Database).
Status ReconstructInstance(Database* db, const map::Mapping& mapping,
                           const std::string& type_name, int64_t id,
                           xml::Node* parent);

// Rebuilds the whole document from the root type's single instance.
// Round-tripping Parse -> Shred -> Reconstruct is the identity on documents
// that are valid under the p-schema (the key correctness property of the
// mapping).
StatusOr<xml::Document> ReconstructDocument(Database* db,
                                            const map::Mapping& mapping);

}  // namespace legodb::store

#endif  // LEGODB_STORAGE_RECONSTRUCT_H_
