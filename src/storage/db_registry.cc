#include "storage/db_registry.h"

#include <chrono>
#include <thread>
#include <utility>

#include "common/check.h"
#include "obs/obs.h"

namespace legodb::store {

DbRegistry::DbRegistry(std::shared_ptr<const map::Mapping> mapping,
                       std::shared_ptr<Database> db)
    : next_generation_(2) {
  LEGODB_CHECK(mapping != nullptr && db != nullptr,
               "DbRegistry needs a loaded mapping and database");
  auto version = std::make_shared<DbVersion>();
  version->generation = 1;
  version->mapping = std::move(mapping);
  version->db = std::move(db);
  current_ = std::move(version);
}

DbVersionPtr DbRegistry::Current() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_;
}

uint64_t DbRegistry::generation() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_->generation;
}

DbVersionPtr DbRegistry::Publish(std::shared_ptr<const map::Mapping> mapping,
                                 std::shared_ptr<Database> db) {
  LEGODB_CHECK(mapping != nullptr && db != nullptr,
               "DbRegistry::Publish needs a loaded mapping and database");
  auto version = std::make_shared<DbVersion>();
  version->mapping = std::move(mapping);
  version->db = std::move(db);
  std::lock_guard<std::mutex> lock(mu_);
  version->generation = next_generation_++;
  current_ = version;
  return version;
}

double DbRegistry::WaitForDrain(const DbVersionPtr& version,
                                double timeout_ms) {
  const int64_t start = obs::NowNanos();
  // use_count == 1 means only the caller's pointer is left. The count can
  // only decrease once the version is out of the registry, so a stale read
  // merely delays one poll round.
  while (version.use_count() > 1) {
    double elapsed = static_cast<double>(obs::NowNanos() - start) / 1e6;
    if (elapsed >= timeout_ms) return timeout_ms;
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  return static_cast<double>(obs::NowNanos() - start) / 1e6;
}

}  // namespace legodb::store
